#include "storage/bptree/pager.h"

#include <cerrno>
#include <cstring>
#include <vector>

#include "storage/store.h"

namespace k2 {

Pager::Pager(std::string path, IoStats* stats)
    : path_(std::move(path)), stats_(stats) {}

Pager::~Pager() { Close(); }

Status Pager::Create() {
  Close();
  file_ = std::fopen(path_.c_str(), "wb+");
  if (file_ == nullptr) {
    return Status::IOError("cannot create " + path_ + ": " +
                           std::strerror(errno));
  }
  num_pages_ = 0;
  last_pos_ = -1;
  return Status::OK();
}

Status Pager::Open() {
  Close();
  file_ = std::fopen(path_.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IOError("cannot open " + path_ + ": " +
                           std::strerror(errno));
  }
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IOError("seek failed on " + path_);
  }
  num_pages_ = static_cast<PageId>(std::ftell(file_) / kPageSize);
  last_pos_ = -1;
  return Status::OK();
}

void Pager::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<PageId> Pager::AllocatePage() {
  if (file_ == nullptr) return Status::Invalid("pager not open");
  static const std::vector<char> zeros(kPageSize, 0);
  PageId pid = num_pages_;
  K2_RETURN_NOT_OK(WritePage(pid, zeros.data()));
  return pid;
}

Status Pager::ReadPage(PageId pid, void* buf) {
  if (file_ == nullptr) return Status::Invalid("pager not open");
  const long pos = static_cast<long>(pid) * static_cast<long>(kPageSize);
  if (pos != last_pos_) {
    if (std::fseek(file_, pos, SEEK_SET) != 0) {
      return Status::IOError("seek failed on " + path_);
    }
    if (stats_ != nullptr) ++stats_->seeks;
  }
  if (std::fread(buf, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("short page read from " + path_);
  }
  last_pos_ = pos + static_cast<long>(kPageSize);
  if (stats_ != nullptr) {
    ++stats_->pages_read;
    stats_->bytes_read += kPageSize;
  }
  return Status::OK();
}

Status Pager::WritePage(PageId pid, const void* buf) {
  if (file_ == nullptr) return Status::Invalid("pager not open");
  const long pos = static_cast<long>(pid) * static_cast<long>(kPageSize);
  if (pos != last_pos_ && std::fseek(file_, pos, SEEK_SET) != 0) {
    return Status::IOError("seek failed on " + path_);
  }
  if (std::fwrite(buf, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("short page write to " + path_);
  }
  last_pos_ = pos + static_cast<long>(kPageSize);
  if (pid >= num_pages_) num_pages_ = pid + 1;
  return Status::OK();
}

}  // namespace k2
