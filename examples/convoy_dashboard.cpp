// Convoy dashboard — the serving layer end to end: movement data streams
// into an OnlineK2HopMiner whose on_closed hook feeds a ConvoyCatalog,
// while a background "dashboard" thread concurrently polls the catalog
// through lock-free snapshots (the epoch/RCU read path). After the stream
// ends, the catalog is reconciled with the authoritative Finalize() result
// and queried the way operators would: who travels with object X? what
// was alive during the rush window? what passed through the depot area?
// top-k by duration and by size, and a composed conjunction of all three
// predicates.
#include <atomic>
#include <iostream>
#include <thread>

#include "common/convoy.h"
#include "core/online.h"
#include "gen/brinkhoff.h"
#include "serve/catalog.h"
#include "serve/query.h"
#include "storage/memory_store.h"

namespace {

void PrintConvoys(const std::string& title,
                  const std::vector<k2::Convoy>& convoys, size_t limit = 5) {
  std::cout << title << " (" << convoys.size() << ")\n";
  for (size_t i = 0; i < std::min(limit, convoys.size()); ++i) {
    const k2::Convoy& v = convoys[i];
    std::cout << "    " << v.objects.size() << " objects, ticks [" << v.start
              << ", " << v.end << "] (" << v.length() << " long): "
              << v.objects.DebugString() << "\n";
  }
  if (convoys.size() > limit) {
    std::cout << "    ... and " << convoys.size() - limit << " more\n";
  }
}

}  // namespace

int main() {
  // City traffic for two simulated hours.
  k2::BrinkhoffParams gen;
  gen.grid.nx = 6;
  gen.grid.ny = 6;
  gen.grid.spacing = 500.0;
  gen.max_time = 120;
  gen.obj_begin = 150;
  gen.obj_time = 4;
  gen.seed = 13;
  const k2::Dataset traffic = k2::GenerateBrinkhoff(gen);
  std::cout << "ingesting " << traffic.DebugString() << "\n";

  const k2::MiningParams params{2, 8, 150.0};

  // Stream the ticks in; every convoy the miner closes is published to the
  // catalog immediately, so the dashboard below serves results while the
  // stream is still running.
  k2::MemoryStore store;
  k2::ConvoyCatalog catalog;
  k2::OnlineK2HopOptions mining_options;
  mining_options.on_closed = catalog.OnClosedHook(&store, /*publish_every=*/1);
  k2::OnlineK2HopMiner miner(&store, params, mining_options);

  // The dashboard thread: a concurrent reader polling published epochs
  // while ingest runs. It never blocks the writer and never takes a lock.
  std::atomic<bool> streaming{true};
  std::atomic<uint64_t> polls{0};
  uint64_t live_epoch = 0;
  size_t live_size = 0;
  std::thread dashboard([&] {
    k2::ConvoyQueryEngine engine(&catalog);
    while (streaming.load(std::memory_order_acquire)) {
      const auto snap = engine.Pin();
      live_epoch = snap->epoch();
      live_size = snap->size();
      polls.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  for (k2::Timestamp t : traffic.timestamps()) {
    const auto status = miner.AppendTick(t, k2::SnapshotPoints(traffic, t));
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
  }
  auto mined = miner.Finalize();
  if (!mined.ok()) {
    std::cerr << mined.status().ToString() << "\n";
    return 1;
  }
  streaming.store(false, std::memory_order_release);
  dashboard.join();
  if (!catalog.hook_status().ok()) {
    std::cerr << catalog.hook_status().ToString() << "\n";
    return 1;
  }
  std::cout << "dashboard thread made " << polls.load()
            << " lock-free polls during ingest; last live view: epoch "
            << live_epoch << " with " << live_size << " convoys\n";

  // Reconcile with the authoritative result (Finalize may subsume an
  // eagerly emitted convoy) and publish the final epoch.
  if (auto s = catalog.ReplaceAll(mined.value(), &store); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const auto snap = catalog.Publish();
  std::cout << "final catalog: epoch " << snap->epoch() << ", " << snap->size()
            << " convoys, " << snap->footprint_points()
            << " footprint points indexed\n\n";

  k2::ConvoyQueryEngine engine(&catalog);

  // The operator questions.
  PrintConvoys("== top 5 longest convoys",
               engine.TopK(k2::ConvoyRank::kLongest, 5));
  std::cout << "\n";
  PrintConvoys("== top 5 largest convoys",
               engine.TopK(k2::ConvoyRank::kLargest, 5));

  if (!snap->empty()) {
    const k2::ObjectId probe = snap->convoy(0).objects.ids().front();
    std::cout << "\n";
    PrintConvoys("== convoys containing object " + std::to_string(probe),
                 engine.ByObject(probe));
  }

  const k2::TimeRange rush{30, 60};
  std::cout << "\n";
  PrintConvoys("== convoys alive during rush window [30, 60]",
               engine.ByTimeWindow(rush));

  // The central quarter of the city.
  const double west = gen.grid.spacing * gen.grid.nx;
  const k2::Rect downtown{west * 0.375, west * 0.375, west * 0.625,
                          west * 0.625};
  std::cout << "\n";
  PrintConvoys("== convoys passing through downtown",
               engine.ByRegion(downtown));

  // Composed: largest convoy that was downtown during the rush window.
  k2::ConvoyQuery query;
  query.time_window = rush;
  query.region = downtown;
  std::cout << "\n";
  PrintConvoys("== downtown during rush, ranked by size",
               engine.TopK(query, k2::ConvoyRank::kLargest, 3));
  return 0;
}
