// Ground-truth recovery: datasets with *planted* convoys (known object sets
// and lifespans) must be recovered exactly by k/2-hop — object set, start
// and end tick — across a sweep of group shapes, parameters and storage
// engines. Complements the random-walk differential tests: here the right
// answer is known by construction, not via an oracle.
#include <gtest/gtest.h>

#include "baselines/vcoda.h"
#include "core/k2hop.h"
#include "gen/synthetic.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::MakeMemStore;

struct PlantedCase {
  uint64_t seed;
  int group_size;
  Timestamp start;
  Timestamp end;
  int num_ticks;
  int noise;
  int m;
  int k;
};

std::string CaseName(const ::testing::TestParamInfo<PlantedCase>& info) {
  const PlantedCase& c = info.param;
  return "seed" + std::to_string(c.seed) + "_g" + std::to_string(c.group_size) +
         "_s" + std::to_string(c.start) + "_e" + std::to_string(c.end) + "_k" +
         std::to_string(c.k);
}

class PlantedTruthTest : public ::testing::TestWithParam<PlantedCase> {
 protected:
  Dataset MakeData() const {
    const PlantedCase& c = GetParam();
    PlantedConvoySpec spec;
    spec.seed = c.seed;
    spec.num_noise_objects = c.noise;
    spec.num_ticks = c.num_ticks;
    spec.member_spacing = 1.0;
    spec.groups = {PlantedGroup{c.group_size, c.start, c.end, 8.0}};
    return GeneratePlantedConvoys(spec);
  }
  Convoy ExpectedConvoy() const {
    const PlantedCase& c = GetParam();
    std::vector<ObjectId> ids;
    for (int i = 0; i < c.group_size; ++i) ids.push_back(i);
    return Convoy(ObjectSet::FromSorted(std::move(ids)), c.start, c.end);
  }
  MiningParams Params() const {
    return MiningParams{GetParam().m, GetParam().k, 2.0};
  }
};

TEST_P(PlantedTruthTest, K2HopRecoversThePlantedConvoy) {
  auto store = MakeMemStore(MakeData());
  auto result = MineK2Hop(store.get(), Params());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Convoy expected = ExpectedConvoy();
  bool found = false;
  for (const Convoy& v : result.value()) {
    if (v == expected) found = true;
  }
  EXPECT_TRUE(found) << "expected " << expected.DebugString() << " in\n"
                     << ConvoysDebugString(result.value());
}

TEST_P(PlantedTruthTest, VcodaStarAgreesWithK2Hop) {
  auto store = MakeMemStore(MakeData());
  auto k2 = MineK2Hop(store.get(), Params());
  auto vc = MineVcoda(store.get(), Params(), true);
  ASSERT_TRUE(k2.ok() && vc.ok());
  EXPECT_SAME_CONVOYS(k2.value(), vc.value());
}

TEST_P(PlantedTruthTest, NothingFoundWhenKExceedsPlantedLength) {
  const PlantedCase& c = GetParam();
  auto store = MakeMemStore(MakeData());
  MiningParams params = Params();
  params.k = static_cast<int>(c.end - c.start + 2);  // one tick too long
  auto result = MineK2Hop(store.get(), params);
  ASSERT_TRUE(result.ok());
  for (const Convoy& v : result.value()) {
    // Noise may coincidentally convoy, but never the planted ids for longer
    // than planted.
    EXPECT_FALSE(v.objects.Contains(0) && v.length() > c.end - c.start + 1)
        << v.DebugString();
  }
}

TEST_P(PlantedTruthTest, RaisingMBeyondGroupSizeHidesIt) {
  const PlantedCase& c = GetParam();
  auto store = MakeMemStore(MakeData());
  MiningParams params = Params();
  params.m = c.group_size + 1;
  auto result = MineK2Hop(store.get(), params);
  ASSERT_TRUE(result.ok());
  const Convoy expected = ExpectedConvoy();
  for (const Convoy& v : result.value()) {
    EXPECT_NE(v, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlantedTruthTest,
    ::testing::Values(
        // Lifespans aligned / misaligned with the benchmark grid.
        PlantedCase{1, 3, 0, 19, 40, 10, 3, 10},
        PlantedCase{2, 3, 1, 20, 40, 10, 3, 10},
        PlantedCase{3, 3, 7, 33, 40, 10, 3, 12},
        PlantedCase{4, 3, 13, 39, 40, 10, 3, 9},
        // Convoy touching the dataset edges.
        PlantedCase{5, 4, 0, 29, 30, 8, 3, 15},
        PlantedCase{6, 4, 10, 29, 30, 8, 3, 11},
        PlantedCase{7, 4, 0, 15, 30, 8, 4, 8},
        // k equal to the planted length (tightest fit).
        PlantedCase{8, 3, 5, 24, 40, 12, 3, 20},
        PlantedCase{9, 5, 3, 30, 40, 12, 3, 28},
        // Small k => dense benchmark grid.
        PlantedCase{10, 3, 6, 21, 36, 10, 2, 2},
        PlantedCase{11, 3, 6, 21, 36, 10, 2, 3},
        // Bigger groups with m below group size.
        PlantedCase{12, 6, 4, 27, 36, 10, 3, 16},
        PlantedCase{13, 6, 4, 27, 36, 10, 5, 16}),
    CaseName);

}  // namespace
}  // namespace k2
