// Page-granular file access for the B+-tree engine: fixed 4 KiB pages,
// explicit read/write/allocate, and IO accounting (seeks, bytes, pages).
#ifndef K2_STORAGE_BPTREE_PAGER_H_
#define K2_STORAGE_BPTREE_PAGER_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/status.h"

namespace k2 {

inline constexpr size_t kPageSize = 4096;
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

struct IoStats;  // from storage/store.h

class Pager {
 public:
  /// `stats` may be null; when set, reads are accounted there.
  explicit Pager(std::string path, IoStats* stats = nullptr);
  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Creates/truncates the backing file for writing a fresh tree.
  Status Create();
  /// Opens an existing file read-only.
  Status Open();
  void Close();

  /// Appends a zeroed page and returns its id.
  Result<PageId> AllocatePage();

  /// Reads page `pid` into `buf` (kPageSize bytes).
  Status ReadPage(PageId pid, void* buf);

  /// Writes `buf` (kPageSize bytes) to page `pid`.
  Status WritePage(PageId pid, const void* buf);

  PageId num_pages() const { return num_pages_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  PageId num_pages_ = 0;
  IoStats* stats_ = nullptr;
  long last_pos_ = -1;  // detect non-sequential access => seek
};

}  // namespace k2

#endif  // K2_STORAGE_BPTREE_PAGER_H_
