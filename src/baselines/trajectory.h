// Trajectory utilities for the CuTS family: Douglas-Peucker polyline
// simplification and the minimum distance between simplified sub-
// trajectories (segment-set distance).
#ifndef K2_BASELINES_TRAJECTORY_H_
#define K2_BASELINES_TRAJECTORY_H_

#include <vector>

#include "common/types.h"

namespace k2 {

/// One vertex of a trajectory polyline.
struct TrajPoint {
  Timestamp t = 0;
  double x = 0.0;
  double y = 0.0;
};

/// Douglas-Peucker simplification with spatial tolerance `epsilon`: returns
/// the retained points (subset of the input, endpoints always kept). Every
/// dropped point lies within `epsilon` of the simplified polyline — the
/// error bound CuTS' filter step relies on.
std::vector<TrajPoint> DouglasPeucker(const std::vector<TrajPoint>& points,
                                      double epsilon);

/// Euclidean distance of point p to the segment (a, b).
double PointSegmentDistance(double px, double py, double ax, double ay,
                            double bx, double by);

/// Minimum spatial distance between two polylines (minimum over all segment
/// pairs; a single-point polyline degenerates to a point).
double PolylineDistance(const std::vector<TrajPoint>& a,
                        const std::vector<TrajPoint>& b);

}  // namespace k2

#endif  // K2_BASELINES_TRAJECTORY_H_
