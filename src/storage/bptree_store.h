// Relational-style store ("k2-RDBMS"): rows clustered in a disk B+-tree on
// the composite key (t, oid). Snapshot scans are leaf-chain range scans;
// point reads are index descents, mostly served from the buffer pool.
#ifndef K2_STORAGE_BPTREE_STORE_H_
#define K2_STORAGE_BPTREE_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/bptree/bptree.h"
#include "storage/store.h"

namespace k2 {

class BPlusTreeStore final : public Store {
 public:
  /// Tree file lives at `path`; `buffer_pool_pages` bounds cache memory.
  explicit BPlusTreeStore(std::string path, size_t buffer_pool_pages = 256);

  std::string name() const override { return "rdbms"; }
  Status BulkLoad(const Dataset& dataset) override;
  Status ScanTimestamp(Timestamp t, std::vector<SnapshotPoint>* out) override;
  Status GetPoints(Timestamp t, const ObjectSet& objects,
                   std::vector<SnapshotPoint>* out) override;
  TimeRange time_range() const override { return time_range_; }
  const std::vector<Timestamp>& timestamps() const override {
    return timestamps_;
  }
  uint64_t num_points() const override { return tree_.num_records(); }

  BPlusTree& tree() { return tree_; }

 private:
  BPlusTree tree_;
  std::vector<Timestamp> timestamps_;
  TimeRange time_range_{0, -1};
};

}  // namespace k2

#endif  // K2_STORAGE_BPTREE_STORE_H_
