#!/usr/bin/env bash
# Runs clang-format over every C++ file. Pass --check to fail on diffs
# (CI-friendly) instead of rewriting in place.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="-i"
if [[ "${1:-}" == "--check" ]]; then
  MODE="--dry-run -Werror"
fi

find src tests bench examples \
  \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) -print0 |
  xargs -0 clang-format $MODE
