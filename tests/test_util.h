// Shared helpers for the test suite: compact dataset construction, miner
// wrappers that CHECK on status, and canonical convoy comparison.
#ifndef K2_TESTS_TEST_UTIL_H_
#define K2_TESTS_TEST_UTIL_H_

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/convoy.h"
#include "common/types.h"
#include "model/dataset.h"
#include "storage/memory_store.h"
#include "storage/store.h"

namespace k2::testing {

/// Builds a dataset from (t, oid, x, y) tuples.
inline Dataset MakeDataset(
    const std::vector<std::tuple<Timestamp, ObjectId, double, double>>& rows) {
  DatasetBuilder builder;
  for (const auto& [t, oid, x, y] : rows) builder.Add(t, oid, x, y);
  return builder.Build();
}

/// 1-D layout helper: objects move along the x axis only; `tracks[oid]` is
/// the per-tick x position (y = 0). All tracks must have equal length.
/// Position kGone means "absent at this tick".
inline constexpr double kGone = 1e18;
inline Dataset MakeTracks(const std::vector<std::vector<double>>& tracks) {
  DatasetBuilder builder;
  for (ObjectId oid = 0; oid < tracks.size(); ++oid) {
    for (size_t t = 0; t < tracks[oid].size(); ++t) {
      if (tracks[oid][t] == kGone) continue;
      builder.Add(static_cast<Timestamp>(t), oid, tracks[oid][t], 0.0);
    }
  }
  return builder.Build();
}

/// Convenience convoy literal.
inline Convoy C(std::initializer_list<ObjectId> ids, Timestamp s,
                Timestamp e) {
  return Convoy(ObjectSet(std::vector<ObjectId>(ids)), s, e);
}

/// Canonical string form of a convoy list for readable failure messages.
inline std::string Str(const std::vector<Convoy>& convoys) {
  std::vector<Convoy> sorted = convoys;
  SortConvoys(&sorted);
  std::string out;
  for (const Convoy& v : sorted) out += v.DebugString() + "\n";
  return out;
}

#define EXPECT_SAME_CONVOYS(a, b) EXPECT_EQ(::k2::testing::Str(a), ::k2::testing::Str(b))

/// Fresh scratch directory under the build tree for disk-backed stores.
inline std::string ScratchDir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("k2hop_test_" + tag)).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Loads `dataset` into a MemoryStore.
inline std::unique_ptr<MemoryStore> MakeMemStore(const Dataset& dataset) {
  auto store = std::make_unique<MemoryStore>();
  K2_CHECK_OK(store->BulkLoad(dataset));
  return store;
}

}  // namespace k2::testing

#endif  // K2_TESTS_TEST_UTIL_H_
