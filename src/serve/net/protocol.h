// k2 wire protocol v1 — the compact length-framed binary protocol spoken
// between k2_server and k2_client (docs/WIRE_PROTOCOL.md is the normative
// spec; this header is its implementation and must stay in sync — CI greps
// every MessageType and WireError enumerator against the doc).
//
// Framing reuses the WAL discipline (storage/lsm/wal.h): every frame is
//
//   [uint32 crc32c(payload)] [uint32 payload_len] [payload bytes]
//
// little-endian, with the payload itself carrying a fixed 8-byte message
// header followed by a message-specific body:
//
//   [uint8 version] [uint8 msg_type] [uint16 reserved=0] [uint32 request_id]
//
// A frame is either accepted whole or rejected with a named WireError;
// errors are connection-scoped — the peer that sent a malformed frame gets
// one kError frame back and its connection is closed, other connections are
// untouched. Payloads are capped (kMaxFramePayload) so a corrupt or hostile
// length field can never drive an allocation.
#ifndef K2_SERVE_NET_PROTOCOL_H_
#define K2_SERVE_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/convoy.h"
#include "common/status.h"
#include "common/types.h"
#include "serve/query.h"

namespace k2::net {

/// Highest (and currently only) protocol version this build speaks. The
/// kHello handshake picks max(client range ∩ server range); a disjoint
/// range is a kBadVersion error.
inline constexpr uint16_t kProtocolVersion = 1;

/// Frame header: crc32c + payload length, 4 bytes each.
inline constexpr size_t kFrameHeaderBytes = 8;
/// Message header inside the payload: version, type, reserved, request id.
inline constexpr size_t kMessageHeaderBytes = 8;
/// Hard cap on one frame's payload. Large enough for a dense ingest tick or
/// a full catalog answer, small enough that a corrupt length field cannot
/// drive a multi-GB allocation. Both sides enforce it on decode; the server
/// additionally enforces it on encode (an oversize answer is an error, not
/// a silently broken frame).
inline constexpr size_t kMaxFramePayload = 16u << 20;

/// Every message of protocol v1. Client-to-server types are requests;
/// server-to-client types are responses. The numeric values are wire
/// format — never renumber, only append.
enum class MessageType : uint8_t {
  kHello = 1,       ///< c→s: version negotiation; MUST be the first message
  kHelloOk = 2,     ///< s→c: negotiated version
  kPing = 3,        ///< c→s: liveness probe, empty body
  kPong = 4,        ///< s→c: reply to kPing, empty body
  kIngest = 5,      ///< c→s: one complete tick of movement data
  kIngestOk = 6,    ///< s→c: ingest accepted (frontier, closed-convoy count)
  kPublish = 7,     ///< c→s: force-publish a new catalog snapshot
  kPublishOk = 8,   ///< s→c: published epoch and convoy count
  kQuery = 9,       ///< c→s: conjunction query (ConvoyQuery encoding)
  kTopK = 10,       ///< c→s: ranked top-k over an optional conjunction
  kConvoys = 11,    ///< s→c: answer to kQuery/kTopK — a convoy list
  kStats = 12,      ///< c→s: server counters probe, empty body
  kStatsOk = 13,    ///< s→c: epoch, catalog size, frontier, ingest counters
  kShutdown = 14,   ///< c→s: request graceful server shutdown
  kShutdownOk = 15, ///< s→c: shutdown acknowledged, connection will close
  kError = 16,      ///< s→c: named failure (WireError + message)
};

/// True when `v` is a defined MessageType value.
bool IsValidMessageType(uint8_t v);
/// "Hello", "IngestOk", ... (enumerator name without the k prefix).
const char* MessageTypeName(MessageType type);

/// Named protocol errors, carried in kError bodies. Frame-level errors
/// (kBadCrc, kOversizeFrame, kTruncatedFrame, kBadVersion, kBadMessageType)
/// are fatal to the connection; request-level errors (kMalformedBody,
/// kUnexpectedMessage, kIngestRejected, kShuttingDown, kInternalError) name
/// a rejected request on a connection that stays usable — except
/// kUnexpectedMessage before a completed handshake, which also closes.
/// Numeric values are wire format — never renumber, only append.
enum class WireError : uint8_t {
  kBadCrc = 1,            ///< frame checksum mismatch
  kOversizeFrame = 2,     ///< payload_len exceeds the decoder's cap
  kTruncatedFrame = 3,    ///< payload shorter than the message header
  kBadVersion = 4,        ///< unsupported protocol version
  kBadMessageType = 5,    ///< msg_type is not a defined MessageType
  kMalformedBody = 6,     ///< body does not parse as its type demands
  kUnexpectedMessage = 7, ///< valid type, wrong direction or state
  kIngestRejected = 8,    ///< the miner refused the tick (message says why)
  kShuttingDown = 9,      ///< server is draining; request not served
  kInternalError = 10,    ///< server-side failure (message says what)
};

const char* WireErrorName(WireError error);

/// One decoded frame: the message header plus the raw body bytes.
struct Frame {
  uint16_t version = kProtocolVersion;
  MessageType type = MessageType::kError;
  uint32_t request_id = 0;
  std::string body;
};

/// Serializes a complete frame (header + CRC) ready for the socket.
std::string EncodeFrame(MessageType type, uint32_t request_id,
                        std::string_view body);

/// Incremental frame decoder over a byte stream. Feed() arbitrary chunks
/// (as read from a socket); Poll() yields complete frames. A malformed
/// stream puts the reader into a sticky error state with a named WireError —
/// the connection must be torn down, there is no resynchronization.
class FrameReader {
 public:
  explicit FrameReader(size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void Feed(const void* data, size_t n);

  enum class Poll {
    kFrame,    ///< *out holds the next frame
    kNeedMore, ///< the buffered bytes do not complete a frame yet
    kError,    ///< sticky; see error() / error_message()
  };
  Poll Next(Frame* out);

  WireError error() const { return error_; }
  const std::string& error_message() const { return error_message_; }
  /// Bytes buffered but not yet consumed by a complete frame.
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  Poll Fail(WireError error, std::string message);

  size_t max_payload_;
  std::string buffer_;
  size_t consumed_ = 0;
  bool failed_ = false;
  WireError error_ = WireError::kInternalError;
  std::string error_message_;
};

// --- typed message bodies -------------------------------------------------
// Encode* builds the body bytes of one message type; Parse* is its inverse
// and returns kInvalid ("MalformedBody: ...") on any length/content
// mismatch, including trailing bytes. Every body round-trips byte-identical
// through its Encode/Parse pair (asserted by tests/serve_net_test.cc).

struct HelloRequest {
  uint16_t min_version = kProtocolVersion;
  uint16_t max_version = kProtocolVersion;
};
std::string EncodeHello(const HelloRequest& hello);
Result<HelloRequest> ParseHello(std::string_view body);

std::string EncodeHelloOk(uint16_t version);
Result<uint16_t> ParseHelloOk(std::string_view body);

struct IngestRequest {
  Timestamp t = 0;
  std::vector<SnapshotPoint> points;
};
std::string EncodeIngest(Timestamp t, std::span<const SnapshotPoint> points);
Result<IngestRequest> ParseIngest(std::string_view body);

struct IngestAck {
  Timestamp frontier = kInvalidTimestamp;
  uint64_t closed_convoys = 0; ///< eagerly closed so far, this stream
};
std::string EncodeIngestAck(const IngestAck& ack);
Result<IngestAck> ParseIngestAck(std::string_view body);

struct PublishAck {
  uint64_t epoch = 0;
  uint64_t convoys = 0;
};
std::string EncodePublishAck(const PublishAck& ack);
Result<PublishAck> ParsePublishAck(std::string_view body);

std::string EncodeQuery(const ConvoyQuery& query);
Result<ConvoyQuery> ParseQuery(std::string_view body);

struct TopKRequest {
  ConvoyQuery query;
  ConvoyRank rank = ConvoyRank::kLongest;
  uint32_t k = 0;
};
std::string EncodeTopK(const TopKRequest& request);
Result<TopKRequest> ParseTopK(std::string_view body);

std::string EncodeConvoys(std::span<const Convoy> convoys);
Result<std::vector<Convoy>> ParseConvoys(std::string_view body);

struct ServerStats {
  uint64_t epoch = 0;            ///< published snapshot epoch
  uint64_t catalog_convoys = 0;  ///< published snapshot size
  Timestamp frontier = kInvalidTimestamp;
  uint64_t ticks_ingested = 0;
  uint64_t closed_convoys = 0;
};
std::string EncodeServerStats(const ServerStats& stats);
Result<ServerStats> ParseServerStats(std::string_view body);

struct ErrorReply {
  WireError error = WireError::kInternalError;
  std::string message;
};
std::string EncodeError(WireError error, std::string_view message);
Result<ErrorReply> ParseError(std::string_view body);

/// A kError reply as a Status: "wire error <Name>: <message>". Frame and
/// handshake errors map to kInvalid, kIngestRejected/kShuttingDown/
/// kInternalError keep their operational flavor.
Status ErrorReplyStatus(const ErrorReply& reply);

}  // namespace k2::net

#endif  // K2_SERVE_NET_PROTOCOL_H_
