// Fig. 8d — T-Drive: effect of varying m.
#include "bench/effect_sweep_common.h"
int main() {
  std::vector<k2::MiningParams> sweep;
  for (int m : {3, 6, 9}) sweep.push_back({m, 200, 60.0});
  return k2::bench::RunEffectSweep("Fig 8d: T-Drive — effect of m (seconds)",
                                   k2::bench::TDrive(), "fig8d", "m", sweep);
}
