// LSM MANIFEST: the single source of truth for which files are live.
// Recovery never trusts a directory listing — an interrupted flush or
// compaction leaves half-written or obsolete files behind, and only the
// MANIFEST says which SSTables belong to which tier and which WAL segments
// still hold unflushed data.
//
// The format is a full snapshot (not a log of edits — table counts at our
// scale make rewrites cheap), human-readable, with a CRC trailer:
//
//   k2lsm-manifest v1
//   next_seq <N>
//   wal <seq>            (one line per live WAL segment, oldest first)
//   table <tier> <seq> <filename> <entries>
//   crc32c <hex of everything above>
//
// Every write goes to MANIFEST.tmp, is fsynced, and renamed over MANIFEST
// (rename + parent-dir fsync = atomic, durable commit point).
#ifndef K2_STORAGE_LSM_MANIFEST_H_
#define K2_STORAGE_LSM_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"

namespace k2::lsm {

inline constexpr char kManifestName[] = "MANIFEST";

struct ManifestTable {
  uint32_t tier = 0;
  uint64_t seq = 0;
  std::string file;  // name within the store directory
  uint64_t num_entries = 0;
};

struct ManifestState {
  uint64_t next_seq = 1;
  std::vector<uint64_t> live_wals;     ///< WAL seqs still holding data.
  std::vector<ManifestTable> tables;   ///< Live SSTables, any order.
};

/// Atomically replaces `dir`/MANIFEST with `state`.
Status WriteManifest(Env* env, const std::string& dir,
                     const ManifestState& state);

/// Reads and validates `dir`/MANIFEST. NotFound when absent (a fresh
/// directory); Invalid with a named message on checksum or parse failure.
Result<ManifestState> ReadManifest(Env* env, const std::string& dir);

}  // namespace k2::lsm

#endif  // K2_STORAGE_LSM_MANIFEST_H_
