#include "storage/lsm/skiplist.h"

#include <cstdlib>
#include <new>

namespace k2::lsm {

SkipList::Node* SkipList::NewNode(uint64_t key, const LsmValue& value,
                                  int level) {
  const size_t bytes = sizeof(Node) + sizeof(Node*) * (level - 1);
  Node* node = static_cast<Node*>(::operator new(bytes));
  node->key = key;
  node->value = value;
  node->level = level;
  for (int i = 0; i < level; ++i) node->next[i] = nullptr;
  return node;
}

void SkipList::FreeAll() {
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->next[0];
    ::operator delete(n);
    n = next;
  }
  head_ = nullptr;
}

void SkipList::Clear() {
  FreeAll();
  head_ = NewNode(0, LsmValue{}, kMaxLevel);
  max_level_ = 1;
  size_ = 0;
}

int SkipList::RandomLevel() {
  int level = 1;
  // p = 1/4 per extra level, as in LevelDB.
  while (level < kMaxLevel && (rng_.Next() & 3) == 0) ++level;
  return level;
}

void SkipList::Put(uint64_t key, const LsmValue& value) {
  Node* update[kMaxLevel];
  Node* node = head_;
  for (int i = max_level_ - 1; i >= 0; --i) {
    while (node->next[i] != nullptr && node->next[i]->key < key) {
      node = node->next[i];
    }
    update[i] = node;
  }
  Node* candidate = node->next[0];
  if (candidate != nullptr && candidate->key == key) {
    candidate->value = value;  // overwrite
    return;
  }
  const int level = RandomLevel();
  if (level > max_level_) {
    for (int i = max_level_; i < level; ++i) update[i] = head_;
    max_level_ = level;
  }
  Node* fresh = NewNode(key, value, level);
  for (int i = 0; i < level; ++i) {
    fresh->next[i] = update[i]->next[i];
    update[i]->next[i] = fresh;
  }
  ++size_;
}

bool SkipList::Get(uint64_t key, LsmValue* value) const {
  const Node* node = FindGreaterOrEqual(key);
  if (node != nullptr && node->key == key) {
    *value = node->value;
    return true;
  }
  return false;
}

const SkipList::Node* SkipList::FindGreaterOrEqual(uint64_t key) const {
  const Node* node = head_;
  for (int i = max_level_ - 1; i >= 0; --i) {
    while (node->next[i] != nullptr && node->next[i]->key < key) {
      node = node->next[i];
    }
  }
  return node->next[0];
}

}  // namespace k2::lsm
