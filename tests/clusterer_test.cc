// Unit tests for the SnapshotClusterer seam: dispatch through MiningParams,
// geometric-through-interface equality with direct DBSCAN, the graph
// clustering core (core/border/noise semantics, first-cluster-wins border
// contention), the co-location clusterer's store-joined semantics, and the
// clusterer-aware parameter validation at every miner entry point.
#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/cmc.h"
#include "cluster/clusterer.h"
#include "cluster/graph_clusterer.h"
#include "cluster/graph_core.h"
#include "cluster/store_clustering.h"
#include "common/rng.h"
#include "core/k2hop.h"
#include "core/online.h"
#include "core/partition.h"
#include "gen/synthetic.h"
#include "model/proximity.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::MakeMemStore;

std::vector<SnapshotPoint> RandomSnapshot(uint64_t seed, size_t n,
                                          double area) {
  Rng rng(seed);
  std::vector<SnapshotPoint> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.push_back(SnapshotPoint{static_cast<ObjectId>(i),
                                   rng.Uniform(0.0, area),
                                   rng.Uniform(0.0, area)});
  }
  return points;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Clusterer that ignores the store and returns a fixed answer — proves the
/// seam dispatches through params.clusterer, not a hard-coded algorithm.
class FixedClusterer final : public SnapshotClusterer {
 public:
  explicit FixedClusterer(std::vector<ObjectSet> answer)
      : answer_(std::move(answer)) {}
  std::string name() const override { return "fixed"; }
  Result<std::vector<ObjectSet>> Cluster(Store*, Timestamp,
                                         const MiningParams&, SnapshotScratch*,
                                         Mutex*) const override {
    return answer_;
  }
  Result<std::vector<ObjectSet>> ReCluster(Store*, Timestamp, const ObjectSet&,
                                           const MiningParams&,
                                           SnapshotScratch*,
                                           Mutex*) const override {
    return answer_;
  }

 private:
  std::vector<ObjectSet> answer_;
};

TEST(ClustererDispatchTest, ParamsClustererWins) {
  const Dataset data = testing::MakeDataset({{0, 1, 0.0, 0.0},
                                             {0, 2, 100.0, 100.0}});
  auto store = MakeMemStore(data);
  const FixedClusterer fixed({ObjectSet::Of({7, 8, 9})});
  MiningParams params;
  params.clusterer = &fixed;

  auto clusters = ClusterSnapshot(store.get(), 0, params);
  ASSERT_TRUE(clusters.ok());
  ASSERT_EQ(clusters.value().size(), 1u);
  EXPECT_EQ(clusters.value()[0], ObjectSet::Of({7, 8, 9}));

  auto re = ReCluster(store.get(), 0, ObjectSet::Of({1}), params);
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(re.value()[0], ObjectSet::Of({7, 8, 9}));
}

TEST(ClustererDispatchTest, DefaultIsGeometricUnlessEnvOverrides) {
  const char* env = std::getenv("K2_CLUSTERER");
  const std::string expected =
      (env != nullptr && std::string(env) == "epsgraph") ? "epsgraph"
                                                         : "geometric";
  EXPECT_EQ(DefaultClusterer()->name(), expected);
  MiningParams params;
  EXPECT_EQ(ResolveClusterer(params), DefaultClusterer());
}

TEST(ClustererDispatchTest, GeometricThroughSeamMatchesDirectDbscan) {
  RandomWalkSpec spec;
  spec.seed = 11;
  spec.num_objects = 60;
  spec.num_ticks = 6;
  spec.area = 80.0;
  const Dataset data = GenerateRandomWalk(spec);
  auto store = MakeMemStore(data);
  const GeometricClusterer geometric;
  MiningParams params{3, 2, 9.0};
  params.clusterer = &geometric;
  for (Timestamp t : data.timestamps()) {
    auto via_seam = ClusterSnapshot(store.get(), t, params);
    ASSERT_TRUE(via_seam.ok());
    std::vector<SnapshotPoint> points = SnapshotPoints(data, t);
    EXPECT_EQ(via_seam.value(), Dbscan(points, params.eps, params.m))
        << "tick " << t;
  }
}

// ---------------------------------------------------------------------------
// Graph core
// ---------------------------------------------------------------------------

/// CSR helper: builds adjacency from an undirected edge list over n nodes.
void BuildCsr(size_t n, const std::vector<std::pair<uint32_t, uint32_t>>& edges,
              std::vector<uint32_t>* offsets, std::vector<uint32_t>* adj) {
  std::vector<std::vector<uint32_t>> rows(n);
  for (const auto& [a, b] : edges) {
    rows[a].push_back(b);
    rows[b].push_back(a);
  }
  offsets->assign(1, 0);
  adj->clear();
  for (size_t i = 0; i < n; ++i) {
    std::sort(rows[i].begin(), rows[i].end());
    adj->insert(adj->end(), rows[i].begin(), rows[i].end());
    offsets->push_back(static_cast<uint32_t>(adj->size()));
  }
}

std::vector<ObjectSet> ClusterEdgeList(
    size_t n, const std::vector<std::pair<uint32_t, uint32_t>>& edges,
    int min_pts) {
  std::vector<uint32_t> offsets, adj;
  BuildCsr(n, edges, &offsets, &adj);
  std::vector<ObjectId> oids(n);
  for (size_t i = 0; i < n; ++i) oids[i] = static_cast<ObjectId>(i);
  GraphClusterScratch scratch;
  return GraphClusters(oids, offsets, adj, min_pts, &scratch);
}

TEST(GraphCoreTest, TriangleIsOneCluster) {
  auto clusters = ClusterEdgeList(3, {{0, 1}, {1, 2}, {0, 2}}, 3);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0], ObjectSet::Of({0, 1, 2}));
}

TEST(GraphCoreTest, PathEndpointsAreBorderPoints) {
  // 0-1-2-3: with min_pts=3, nodes 1 and 2 are core (deg 2 + self), the
  // endpoints are border and join the same cluster.
  auto clusters = ClusterEdgeList(4, {{0, 1}, {1, 2}, {2, 3}}, 3);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0], ObjectSet::Of({0, 1, 2, 3}));
}

TEST(GraphCoreTest, IsolatedAndSparseNodesAreNoise) {
  // Single edge 0-1 with min_pts=3: nobody is core; node 2 is isolated.
  EXPECT_TRUE(ClusterEdgeList(3, {{0, 1}}, 3).empty());
}

TEST(GraphCoreTest, DisconnectedComponentsSplit) {
  auto clusters = ClusterEdgeList(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}}, 3);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], ObjectSet::Of({0, 1, 2}));
  EXPECT_EQ(clusters[1], ObjectSet::Of({3, 4, 5}));
}

TEST(GraphCoreTest, ContendedBorderGoesToFirstCluster) {
  // Two triangles {0,1,2} and {4,5,6}; border node 3 hangs off a core of
  // each (edges 2-3 and 4-3). With min_pts=3, node 3 is not core (deg 2 + 1
  // = 3... so it IS core with min_pts=3) — use min_pts=4 cliques instead.
  // K4s {0,1,2,3} and {5,6,7,8}, border node 4 adjacent to core 3 and core
  // 5 only: deg(4)=2, not core at min_pts=4; first cluster (lower node
  // order) claims it.
  std::vector<std::pair<uint32_t, uint32_t>> edges = {
      {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},  // K4 a
      {5, 6}, {5, 7}, {5, 8}, {6, 7}, {6, 8}, {7, 8},  // K4 b
      {3, 4}, {4, 5}};
  auto clusters = ClusterEdgeList(9, edges, 4);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], ObjectSet::Of({0, 1, 2, 3, 4}));
  EXPECT_EQ(clusters[1], ObjectSet::Of({5, 6, 7, 8}));
}

TEST(GraphCoreTest, ClustersBelowMinPtsAreFiltered) {
  // Star: center 0 with leaves 1..3, min_pts=4 -> center is core with
  // neighbourhood {0,1,2,3}, all leaves border -> cluster size 4 passes.
  // With one fewer leaf the cluster would shrink below min_pts and vanish.
  auto pass = ClusterEdgeList(4, {{0, 1}, {0, 2}, {0, 3}}, 4);
  ASSERT_EQ(pass.size(), 1u);
  EXPECT_EQ(pass[0], ObjectSet::Of({0, 1, 2, 3}));
  EXPECT_TRUE(ClusterEdgeList(3, {{0, 1}, {0, 2}}, 4).empty());
}

// ---------------------------------------------------------------------------
// EpsGraphClusterer == DBSCAN (property, both code paths)
// ---------------------------------------------------------------------------

TEST(EpsGraphClustererTest, MatchesDbscanBruteForceAndGridPaths) {
  SnapshotScratch scratch;
  // n=20 exercises the brute-force path (<= 32), n=200 the grid path.
  for (const size_t n : {0ul, 1ul, 20ul, 200ul}) {
    for (const uint64_t seed : {1, 2, 3, 4, 5}) {
      for (const int min_pts : {2, 3, 5}) {
        const auto points = RandomSnapshot(seed, n, 100.0);
        const double eps = 8.0;
        EXPECT_EQ(EpsGraphClusters(points, eps, min_pts, &scratch),
                  Dbscan(points, eps, min_pts))
            << "n=" << n << " seed=" << seed << " min_pts=" << min_pts;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CoLocationGraphClusterer
// ---------------------------------------------------------------------------

TEST(CoLocationClustererTest, ClustersPresenceStoreAgainstLogEdges) {
  // Tick 0: triangle {1,2,3} plus stray pair {8,9}. Tick 1: only the pair.
  const ProximityLog log = ProximityLog::FromRecords({{0, 1, 2},
                                                      {0, 2, 3},
                                                      {0, 1, 3},
                                                      {0, 8, 9},
                                                      {1, 8, 9}});
  auto store = MakeMemStore(log.PresenceDataset());
  const CoLocationGraphClusterer colocation(&log);
  MiningParams params{3, 2, /*eps=*/0.0};  // eps unused by this substrate
  params.clusterer = &colocation;

  auto t0 = ClusterSnapshot(store.get(), 0, params);
  ASSERT_TRUE(t0.ok());
  ASSERT_EQ(t0.value().size(), 1u);
  EXPECT_EQ(t0.value()[0], ObjectSet::Of({1, 2, 3}));

  auto t1 = ClusterSnapshot(store.get(), 1, params);
  ASSERT_TRUE(t1.ok());
  EXPECT_TRUE(t1.value().empty());  // pair of 2 < m
}

TEST(CoLocationClustererTest, ReClusterRestrictsEdgesToSubset) {
  // K4 {1,2,3,4} at tick 0. Restricted to {1,2,3}, edges to 4 disappear
  // and the triangle remains; restricted to {1,4}, degree drops below m.
  const ProximityLog log = ProximityLog::FromRecords(
      {{0, 1, 2}, {0, 1, 3}, {0, 1, 4}, {0, 2, 3}, {0, 2, 4}, {0, 3, 4}});
  auto store = MakeMemStore(log.PresenceDataset());
  const CoLocationGraphClusterer colocation(&log);
  MiningParams params{3, 2, 0.0};
  params.clusterer = &colocation;

  auto sub = ReCluster(store.get(), 0, ObjectSet::Of({1, 2, 3}), params);
  ASSERT_TRUE(sub.ok());
  ASSERT_EQ(sub.value().size(), 1u);
  EXPECT_EQ(sub.value()[0], ObjectSet::Of({1, 2, 3}));

  auto tiny = ReCluster(store.get(), 0, ObjectSet::Of({1, 4}), params);
  ASSERT_TRUE(tiny.ok());
  EXPECT_TRUE(tiny.value().empty());
}

// ---------------------------------------------------------------------------
// Validation hardening
// ---------------------------------------------------------------------------

TEST(ValidateMiningParamsTest, NamedErrors) {
  MiningParams bad_m{1, 4, 1.0};
  const Status m_err = ValidateMiningParams(bad_m);
  EXPECT_EQ(m_err.code(), StatusCode::kInvalid);
  EXPECT_NE(m_err.message().find("m must be >= 2"), std::string::npos)
      << m_err.message();

  MiningParams bad_k{3, 1, 1.0};
  const Status k_err = ValidateMiningParams(bad_k);
  EXPECT_EQ(k_err.code(), StatusCode::kInvalid);
  EXPECT_NE(k_err.message().find("k must be >= 2"), std::string::npos)
      << k_err.message();

  MiningParams bad_eps{3, 4, 0.0};
  bad_eps.clusterer = nullptr;
  const GeometricClusterer geometric;
  bad_eps.clusterer = &geometric;
  const Status eps_err = ValidateMiningParams(bad_eps);
  EXPECT_EQ(eps_err.code(), StatusCode::kInvalid);
  EXPECT_NE(eps_err.message().find("eps must be > 0"), std::string::npos)
      << eps_err.message();

  EXPECT_TRUE(ValidateMiningParams(MiningParams{2, 2, 0.5}).ok());
}

TEST(ValidateMiningParamsTest, EpsIsClustererSpecific) {
  // The co-location substrate does not interpret eps; eps <= 0 is fine.
  const ProximityLog log = ProximityLog::FromRecords({{0, 1, 2}});
  const CoLocationGraphClusterer colocation(&log);
  MiningParams params{3, 4, 0.0};
  params.clusterer = &colocation;
  EXPECT_TRUE(ValidateMiningParams(params).ok());
}

TEST(ValidateMiningParamsTest, RejectedAtEveryMinerEntryPoint) {
  const Dataset data = testing::MakeDataset({{0, 1, 0.0, 0.0}});
  auto store = MakeMemStore(data);
  const MiningParams bad{1, 2, 1.0};

  EXPECT_EQ(MineK2Hop(store.get(), bad).status().code(),
            StatusCode::kInvalid);
  EXPECT_EQ(MineCmc(store.get(), bad).status().code(), StatusCode::kInvalid);
  EXPECT_EQ(MinePccd(store.get(), bad).status().code(), StatusCode::kInvalid);

  PartitionedK2HopMiner partitioned(store.get(), bad);
  EXPECT_EQ(partitioned.Mine().status().code(), StatusCode::kInvalid);

  MemoryStore empty;
  OnlineK2HopMiner online(&empty, bad);
  EXPECT_EQ(online.Finalize().status().code(), StatusCode::kInvalid);
}

}  // namespace
}  // namespace k2
