// Google-benchmark microbenchmarks of the substrates: DBSCAN, ObjectSet
// intersection, B+-tree point reads / range scans, LSM point reads, skip
// list inserts. These are not paper figures; they size the building blocks.
#include <benchmark/benchmark.h>

#include "cluster/dbscan.h"
#include "common/check.h"
#include "common/rng.h"
#include "gen/synthetic.h"
#include "storage/bptree_store.h"
#include "storage/key.h"
#include "storage/lsm/skiplist.h"
#include "storage/lsm_store.h"

namespace k2 {
namespace {

std::vector<SnapshotPoint> RandomSnapshot(size_t n, double area,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<SnapshotPoint> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back(SnapshotPoint{static_cast<ObjectId>(i),
                                rng.Uniform(0, area), rng.Uniform(0, area)});
  }
  return pts;
}

void BM_DbscanSnapshot(benchmark::State& state) {
  const auto pts = RandomSnapshot(static_cast<size_t>(state.range(0)), 1000.0, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dbscan(pts, 15.0, 3));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DbscanSnapshot)->Arg(16)->Arg(256)->Arg(4096);

void BM_ObjectSetIntersect(benchmark::State& state) {
  std::vector<ObjectId> a, b;
  for (ObjectId i = 0; i < state.range(0); ++i) {
    a.push_back(i * 2);
    b.push_back(i * 3);
  }
  const ObjectSet sa{std::move(a)}, sb{std::move(b)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ObjectSet::Intersect(sa, sb));
  }
}
BENCHMARK(BM_ObjectSetIntersect)->Arg(8)->Arg(128)->Arg(2048);

Dataset MicroDataset() {
  RandomWalkSpec spec;
  spec.num_objects = 200;
  spec.num_ticks = 500;
  spec.area = 5000.0;
  spec.seed = 99;
  return GenerateRandomWalk(spec);
}

void BM_BPlusTreeGet(benchmark::State& state) {
  static BPlusTreeStore* store = [] {
    auto* s = new BPlusTreeStore("/tmp/k2hop_micro_tree.db", 256);
    K2_CHECK_OK(s->BulkLoad(MicroDataset()));
    return s;
  }();
  Rng rng(3);
  std::vector<SnapshotPoint> out;
  for (auto _ : state) {
    const Timestamp t = static_cast<Timestamp>(rng.NextInt(500));
    const ObjectId oid = static_cast<ObjectId>(rng.NextInt(200));
    K2_CHECK_OK(store->GetPoints(t, ObjectSet::Of({oid}), &out));
  }
}
BENCHMARK(BM_BPlusTreeGet);

void BM_BPlusTreeScanTimestamp(benchmark::State& state) {
  static BPlusTreeStore* store = [] {
    auto* s = new BPlusTreeStore("/tmp/k2hop_micro_tree2.db", 256);
    K2_CHECK_OK(s->BulkLoad(MicroDataset()));
    return s;
  }();
  Rng rng(4);
  std::vector<SnapshotPoint> out;
  for (auto _ : state) {
    K2_CHECK_OK(
        store->ScanTimestamp(static_cast<Timestamp>(rng.NextInt(500)), &out));
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_BPlusTreeScanTimestamp);

void BM_LsmGet(benchmark::State& state) {
  static LsmStore* store = [] {
    auto* s = new LsmStore("/tmp/k2hop_micro_lsm");
    K2_CHECK_OK(s->BulkLoad(MicroDataset()));
    return s;
  }();
  Rng rng(5);
  std::vector<SnapshotPoint> out;
  for (auto _ : state) {
    const Timestamp t = static_cast<Timestamp>(rng.NextInt(500));
    const ObjectId oid = static_cast<ObjectId>(rng.NextInt(200));
    K2_CHECK_OK(store->GetPoints(t, ObjectSet::Of({oid}), &out));
  }
}
BENCHMARK(BM_LsmGet);

void BM_SkipListInsert(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    state.PauseTiming();
    lsm::SkipList list;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      list.Put(rng.Next(), lsm::LsmValue{1.0, 2.0});
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SkipListInsert)->Arg(1024)->Arg(16384);

}  // namespace
}  // namespace k2

BENCHMARK_MAIN();
