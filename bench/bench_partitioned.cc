// Partitioned mining benchmark: sweeps shard counts for the time-sharded
// PartitionedK2HopMiner on the Trucks workload (memory + LSMT engines) and
// reports per-phase wall time, seam-stitch behaviour, and speedup against
// batch MineK2Hop. Partitioned output is equality-checked against batch
// in-process for every configuration.
#include "bench/harness.h"

#include <sstream>
#include <thread>

#include "common/check.h"
#include "common/stopwatch.h"
#include "core/partition.h"

using namespace k2;
using namespace k2::bench;

int main(int argc, char** argv) {
  ParseArgs(argc, argv);
  PrintBanner("Partitioned: time-sharded k/2-hop vs batch");
  const Dataset& data = Trucks();
  std::cout << data.DebugString() << "\n\n";
  const MiningParams params{3, 200, 30.0};
  // k2-lint: allow(bench-key-hardware-independent): sizes the worker pool
  // only; every recorded row is keyed by explicit shard/thread columns.
  const int threads = std::max(
      2, static_cast<int>(std::thread::hardware_concurrency()));

  TablePrinter table({"store", "mode", "shards", "threads", "total_s",
                      "shards_s", "stitch_ms", "seams_x", "speedup",
                      "convoys"});
  for (StoreKind kind : {StoreKind::kMemory, StoreKind::kLsm}) {
    auto store = BuildStore(kind, data, "partitioned");

    K2HopStats batch_stats;
    Stopwatch batch_sw;
    auto batch_result = MineK2Hop(store.get(), params, {}, &batch_stats);
    const double batch_seconds = batch_sw.ElapsedSeconds();
    K2_CHECK(batch_result.ok());
    const std::vector<Convoy>& batch_convoys = batch_result.value();
    RecordMiningRun("k2hop", *store, params, batch_seconds,
                    batch_convoys.size(), batch_stats.io);
    table.AddRow({StoreKindName(kind), "batch", "-", "-", Fmt(batch_seconds),
                  "-", "-", "-", "1.00",
                  std::to_string(batch_convoys.size())});

    for (int shards : {1, 2, 4, 8}) {
      PartitionedK2HopOptions options;
      options.num_shards = shards;
      options.num_threads = threads;
      PartitionedK2HopStats stats;
      Stopwatch sw;
      auto mined = MinePartitionedK2Hop(store.get(), params, options, &stats);
      const double seconds = sw.ElapsedSeconds();
      K2_CHECK(mined.ok());
      K2_CHECK(mined.value() == batch_convoys);  // both in canonical order

      table.AddRow({StoreKindName(kind), "partitioned",
                    std::to_string(stats.shards), std::to_string(threads),
                    Fmt(seconds), Fmt(stats.phases.Get("shards")),
                    Fmt(stats.phases.Get("stitch") * 1e3),
                    std::to_string(stats.seams_crossed),
                    Fmt(batch_seconds / seconds, 2),
                    std::to_string(mined.value().size())});

      JsonFields extra;
      extra.Int("shards", stats.shards)
          .Int("threads", static_cast<uint64_t>(threads))
          .Int("seams_crossed", stats.seams_crossed)
          .Int("stitch_replays", stats.stitch_replays)
          .Num("shards_ms", stats.phases.Get("shards") * 1e3)
          .Num("stitch_ms", stats.phases.Get("stitch") * 1e3);
      RecordMiningRun("k2hop-partitioned-s" + std::to_string(shards), *store,
                      params, seconds, mined.value().size(), stats.io, extra);
    }
  }
  table.Print();
  std::cout << "\npartitioned == batch convoy sets for every shard count "
               "(checked in-process); shards_s is the concurrent shard "
               "phase, stitch_ms the sequential seam fold.\n";
  return 0;
}
