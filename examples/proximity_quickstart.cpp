// Coordinate-free convoy mining: when all you have is a co-location log —
// "objects a and b were near each other at tick t" (Bluetooth sightings,
// RFID gates, contact tracing) — there are no positions to run DBSCAN on.
// The CoLocationGraphClusterer plugs into the same miners through the
// SnapshotClusterer seam and clusters each tick's co-location graph
// directly: a convoy is then a group that stays densely co-located for at
// least k ticks.
//
//   $ ./examples/proximity_quickstart
#include <iostream>

#include "cluster/graph_clusterer.h"
#include "common/convoy.h"
#include "core/k2hop.h"
#include "gen/proximity_gen.h"
#include "model/proximity.h"
#include "storage/memory_store.h"

int main() {
  // 1. Get a proximity log: (t, oid_a, oid_b) pair observations. Here a
  //    planted one — 4 badges travelling together for ticks 5..44 among 30
  //    others pinging each other at random. In a real application you would
  //    load one with k2::ReadProximityCsv("pairs.csv").
  k2::PlantedProximitySpec spec;
  spec.num_noise_objects = 30;
  spec.num_ticks = 60;
  spec.noise_pair_prob = 0.01;
  spec.groups = {k2::PlantedProximityGroup{/*size=*/4, /*start=*/5,
                                           /*end=*/44}};
  spec.seed = 2024;
  const k2::ProximityLog log = k2::GeneratePlantedProximity(spec);
  std::cout << "proximity log: " << log.num_pairs() << " pair sightings, "
            << log.num_objects() << " objects\n";

  // 2. Bridge the log into a store: each object incident to an edge at t
  //    becomes a presence row (t, oid) with dummy coordinates. Any storage
  //    engine works — the clusterer only reads which objects are present.
  k2::MemoryStore store(log.PresenceDataset());

  // 3. Mining parameters: m and k mean exactly what they mean for
  //    geometric convoys; eps is ignored — "near" is defined by the log's
  //    edges, and the clusterer condition is degree >= m-1 density
  //    (DBSCAN's core rule on the co-location graph).
  const k2::CoLocationGraphClusterer clusterer(&log);
  k2::MiningParams params{/*m=*/4, /*k=*/30, /*eps=*/0.0};
  params.clusterer = &clusterer;

  // 4. Mine with the unchanged k/2-hop pipeline — pruning, HWMT and all.
  auto result = k2::MineK2Hop(&store, params);
  if (!result.ok()) {
    std::cerr << "mining failed: " << result.status().ToString() << "\n";
    return 1;
  }

  // 5. Use the convoys: ids 0..3 are the planted badge group.
  std::cout << k2::ConvoysDebugString(result.value());
  return 0;
}
