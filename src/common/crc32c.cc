#include "common/crc32c.h"

namespace k2 {

namespace {

struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int j = 0; j < 8; ++j) {
        c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  static const Crc32cTable table;
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~seed;
  for (size_t i = 0; i < n; ++i) {
    c = table.t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace k2
