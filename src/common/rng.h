// Deterministic pseudo-random number generation for dataset generators and
// property tests. SplitMix64: tiny, fast, and good enough for workload
// synthesis; fixed seeds make every test and benchmark reproducible.
#ifndef K2_COMMON_RNG_H_
#define K2_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace k2 {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [0, n); n must be > 0.
  uint64_t NextInt(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextInt(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller.
  double Gaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace k2

#endif  // K2_COMMON_RNG_H_
