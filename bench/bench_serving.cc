// Serving benchmark: builds a ConvoyCatalog from each of the three miner
// sources (batch MineK2Hop, streaming OnlineK2HopMiner via the on_closed
// hook, time-sharded PartitionedK2HopMiner), equality-checks that the
// catalogs answer a probe set identically, and measures query throughput
// (queries/sec) per query type — single-reader and with every hardware
// thread hammering the same catalog through pinned snapshots, the
// concurrent read path the epoch/RCU design exists for.
#include "bench/harness.h"

#include <atomic>
#include <thread>

#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/online.h"
#include "core/partition.h"
#include "serve/catalog.h"
#include "serve/query.h"
#include "storage/memory_store.h"

using namespace k2;
using namespace k2::bench;

namespace {

struct QueryMix {
  std::vector<ObjectId> oids;
  std::vector<TimeRange> windows;
  std::vector<Rect> rects;
  std::vector<ConvoyQuery> conjunctions;
};

QueryMix MakeMix(const Dataset& data, size_t per_type) {
  QueryMix mix;
  Rng rng(777);
  std::vector<ObjectId> all_oids;
  for (const PointRecord& rec : data.records()) all_oids.push_back(rec.oid);
  std::sort(all_oids.begin(), all_oids.end());
  all_oids.erase(std::unique(all_oids.begin(), all_oids.end()),
                 all_oids.end());

  Rect box;
  box.min_x = box.max_x = data.records()[0].x;
  box.min_y = box.max_y = data.records()[0].y;
  for (const PointRecord& rec : data.records()) {
    box.min_x = std::min(box.min_x, rec.x);
    box.max_x = std::max(box.max_x, rec.x);
    box.min_y = std::min(box.min_y, rec.y);
    box.max_y = std::max(box.max_y, rec.y);
  }
  const TimeRange range = data.time_range();
  const auto span = static_cast<uint64_t>(range.length());

  for (size_t i = 0; i < per_type; ++i) {
    mix.oids.push_back(all_oids[rng.NextInt(all_oids.size())]);
    const auto a = static_cast<Timestamp>(range.start + rng.NextInt(span));
    mix.windows.push_back(
        {a, static_cast<Timestamp>(a + rng.NextInt(span / 4 + 1))});
    const double x0 = rng.Uniform(box.min_x, box.max_x);
    const double y0 = rng.Uniform(box.min_y, box.max_y);
    const double max_w = (box.max_x - box.min_x) / 4;
    const double max_h = (box.max_y - box.min_y) / 4;
    mix.rects.push_back(Rect{x0, y0, x0 + rng.Uniform(0.0, max_w),
                             y0 + rng.Uniform(0.0, max_h)});
    ConvoyQuery q;
    q.object = mix.oids.back();
    q.time_window = mix.windows.back();
    if (i % 2 == 0) q.region = mix.rects.back();
    mix.conjunctions.push_back(q);
  }
  return mix;
}

/// Runs `queries` rounds of one query type against a pinned snapshot;
/// returns queries/sec. `sink` defeats dead-code elimination.
template <typename Fn>
double Throughput(size_t rounds, size_t per_round, const Fn& fn) {
  Stopwatch sw;
  size_t sink = 0;
  for (size_t r = 0; r < rounds; ++r) sink += fn();
  const double seconds = sw.ElapsedSeconds();
  K2_CHECK(sink != static_cast<size_t>(-1));  // keep `sink` alive
  return static_cast<double>(rounds * per_round) / std::max(seconds, 1e-9);
}

struct SourceResult {
  std::string name;
  double build_seconds = 0.0;
  std::shared_ptr<const CatalogSnapshot> snap;
  const Store* store = nullptr;    ///< the store that fed this catalog
  const ConvoyCatalog* catalog = nullptr;
};

}  // namespace

int main(int argc, char** argv) {
  ParseArgs(argc, argv);
  PrintBanner("Serving: ConvoyCatalog query throughput");
  const Dataset& data = Trucks();
  std::cout << data.DebugString() << "\n\n";
  const MiningParams params{3, 200, 30.0};

  // --- build one catalog per miner source --------------------------------
  std::vector<SourceResult> sources;

  // build_seconds is uniformly "raw store -> published catalog": mining
  // plus footprint ingest plus the index build.
  auto batch_store = BuildStore(StoreKind::kMemory, data, "serving_batch");
  ConvoyCatalog batch_catalog;
  {
    SourceResult src;
    src.name = "batch";
    src.store = batch_store.get();
    src.catalog = &batch_catalog;
    Stopwatch sw;
    auto batch_mined = MineK2Hop(batch_store.get(), params);
    K2_CHECK(batch_mined.ok());
    K2_CHECK_OK(
        batch_catalog.AddConvoys(batch_mined.value(), batch_store.get()));
    src.snap = batch_catalog.Publish();
    src.build_seconds = sw.ElapsedSeconds();
    sources.push_back(std::move(src));
  }

  MemoryStore stream_store;
  ConvoyCatalog online_catalog;
  {
    SourceResult src;
    src.name = "online";
    src.store = &stream_store;
    src.catalog = &online_catalog;
    OnlineK2HopOptions options;
    options.on_closed = online_catalog.OnClosedHook(&stream_store, 8);
    OnlineK2HopMiner miner(&stream_store, params, options);
    Stopwatch sw;
    for (Timestamp t : data.timestamps()) {
      K2_CHECK_OK(miner.AppendTick(t, SnapshotPoints(data, t)));
    }
    auto final_result = miner.Finalize();
    K2_CHECK(final_result.ok());
    K2_CHECK_OK(online_catalog.hook_status());
    K2_CHECK_OK(online_catalog.ReplaceAll(final_result.value(), &stream_store));
    src.snap = online_catalog.Publish();
    src.build_seconds = sw.ElapsedSeconds();  // includes mining the stream
    sources.push_back(std::move(src));
  }

  auto part_store = BuildStore(StoreKind::kMemory, data, "serving_part");
  ConvoyCatalog part_catalog;
  {
    SourceResult src;
    src.name = "partitioned";
    src.store = part_store.get();
    src.catalog = &part_catalog;
    PartitionedK2HopOptions options;
    options.num_shards = 4;
    Stopwatch sw;
    auto mined = MinePartitionedK2Hop(part_store.get(), params, options);
    K2_CHECK(mined.ok());
    K2_CHECK_OK(part_catalog.AddConvoys(mined.value(), part_store.get()));
    src.snap = part_catalog.Publish();
    src.build_seconds = sw.ElapsedSeconds();
    sources.push_back(std::move(src));
  }

  // --- differential probe: the three catalogs must agree -----------------
  const QueryMix mix = MakeMix(data, 64);
  for (const SourceResult& src : sources) {
    K2_CHECK(src.snap->convoys() == sources[0].snap->convoys());
    std::vector<ConvoyId> expected, got;
    for (size_t i = 0; i < mix.oids.size(); ++i) {
      sources[0].snap->ByObject(mix.oids[i], &expected);
      src.snap->ByObject(mix.oids[i], &got);
      K2_CHECK(got == expected);
      sources[0].snap->ByTimeWindow(mix.windows[i], &expected);
      src.snap->ByTimeWindow(mix.windows[i], &got);
      K2_CHECK(got == expected);
      sources[0].snap->ByRegion(mix.rects[i], &expected);
      src.snap->ByRegion(mix.rects[i], &got);
      K2_CHECK(got == expected);
      ConvoyQueryEngine::FindIds(*sources[0].snap, mix.conjunctions[i],
                                 &expected);
      ConvoyQueryEngine::FindIds(*src.snap, mix.conjunctions[i], &got);
      K2_CHECK(got == expected);
    }
  }
  std::cout << "catalogs from batch/online/partitioned answer the probe mix "
               "identically (checked in-process)\n\n";

  // --- throughput ---------------------------------------------------------
  const size_t rounds = 200;
  // Fixed reader count: it is part of the JSON record key (serve-<src>@rN),
  // and keys must be machine-independent for bench_compare.py to match
  // baseline rows across hosts (hardware_concurrency is not).
  const int mt_readers = 4;
  TablePrinter table({"source", "convoys", "fp_points", "build_s", "by_object",
                      "by_window", "by_region", "topk", "conjunction",
                      "mt_mixed"});

  for (const SourceResult& src : sources) {
    const CatalogSnapshot& snap = *src.snap;
    std::vector<ConvoyId> ids;
    const double q_object =
        Throughput(rounds, mix.oids.size(), [&snap, &mix, &ids] {
          size_t sink = 0;
          for (ObjectId oid : mix.oids) {
            snap.ByObject(oid, &ids);
            sink += ids.size();
          }
          return sink;
        });
    const double q_window =
        Throughput(rounds, mix.windows.size(), [&snap, &mix, &ids] {
          size_t sink = 0;
          for (const TimeRange& w : mix.windows) {
            snap.ByTimeWindow(w, &ids);
            sink += ids.size();
          }
          return sink;
        });
    const double q_region =
        Throughput(rounds, mix.rects.size(), [&snap, &mix, &ids] {
          size_t sink = 0;
          for (const Rect& r : mix.rects) {
            snap.ByRegion(r, &ids);
            sink += ids.size();
          }
          return sink;
        });
    const double q_topk = Throughput(rounds, 2, [&snap, &ids] {
      ConvoyQueryEngine::TopKIds(snap, {}, ConvoyRank::kLongest, 10, &ids);
      const size_t sink = ids.size();
      ConvoyQueryEngine::TopKIds(snap, {}, ConvoyRank::kLargest, 10, &ids);
      return sink + ids.size();
    });
    const double q_conj =
        Throughput(rounds, mix.conjunctions.size(), [&snap, &mix, &ids] {
          size_t sink = 0;
          for (const ConvoyQuery& q : mix.conjunctions) {
            ConvoyQueryEngine::FindIds(snap, q, &ids);
            sink += ids.size();
          }
          return sink;
        });

    // Concurrent mixed load: `mt_readers` workers, each pinning the
    // snapshot once and cycling through the whole mix.
    double q_mt = 0.0;
    double mt_seconds = 0.0;
    {
      const ConvoyCatalog* catalog = src.catalog;
      ThreadPool pool(mt_readers);
      std::atomic<uint64_t> total{0};
      Stopwatch sw;
      pool.ParallelFor(static_cast<size_t>(mt_readers), [&](size_t) {
        ConvoyQueryEngine engine(catalog);
        const auto pinned = engine.Pin();
        std::vector<ConvoyId> local_ids;
        uint64_t done = 0;
        for (size_t r = 0; r < rounds / 4; ++r) {
          for (size_t i = 0; i < mix.oids.size(); ++i) {
            pinned->ByObject(mix.oids[i], &local_ids);
            pinned->ByTimeWindow(mix.windows[i], &local_ids);
            pinned->ByRegion(mix.rects[i], &local_ids);
            ConvoyQueryEngine::FindIds(*pinned, mix.conjunctions[i],
                                       &local_ids);
            done += 4;
          }
        }
        total.fetch_add(done, std::memory_order_relaxed);
      });
      mt_seconds = sw.ElapsedSeconds();
      q_mt = static_cast<double>(total.load()) / std::max(mt_seconds, 1e-9);
    }

    table.AddRow({src.name, std::to_string(snap.size()),
                  std::to_string(snap.footprint_points()),
                  Fmt(src.build_seconds), Fmt(q_object / 1e3, 0) + "k/s",
                  Fmt(q_window / 1e3, 0) + "k/s",
                  Fmt(q_region / 1e3, 0) + "k/s",
                  Fmt(q_topk / 1e3, 0) + "k/s", Fmt(q_conj / 1e3, 0) + "k/s",
                  Fmt(q_mt / 1e3, 0) + "k/s"});

    // Two records per source, reader count in the key: "@r1" for the
    // single-reader sweeps and "@r4" for the concurrent mixed load. Without
    // the suffix, rows at different reader counts collide under
    // bench_compare.py's (bench, miner, store, params) keying.
    JsonFields single;
    single.Str("source", src.name)
        .Int("catalog_convoys", snap.size())
        .Int("footprint_points", snap.footprint_points())
        .Int("readers", 1)
        .Num("qps_by_object", q_object)
        .Num("qps_by_window", q_window)
        .Num("qps_by_region", q_region)
        .Num("qps_topk", q_topk)
        .Num("qps_conjunction", q_conj);
    // Each record carries ITS source's store and that store's IO (mining
    // plus footprint ingest), so per-source cost stays attributable.
    RecordMiningRun("serve-" + src.name + "@r1", *src.store, params,
                    src.build_seconds, snap.size(), src.store->io_stats(),
                    single);
    JsonFields multi;
    multi.Str("source", src.name)
        .Int("catalog_convoys", snap.size())
        .Int("readers", static_cast<uint64_t>(mt_readers))
        .Num("qps_mt_mixed", q_mt);
    RecordMiningRun("serve-" + src.name + "@r" + std::to_string(mt_readers),
                    *src.store, params, mt_seconds, snap.size(),
                    src.store->io_stats(), multi);
  }
  table.Print();
  std::cout << "\nqueries/sec per type against the published snapshot "
               "(by_object/by_window/by_region/topk/conjunction single "
               "reader, mt_mixed = " << mt_readers
            << " concurrent readers on pinned snapshots); build_s for "
               "'online' includes mining the whole stream.\n";
  return 0;
}
