// Fig. 7f — k/2 gain over SPARE on the "NUMA machine" setup (workers 8-32).
#include "bench/spare_gain_common.h"

int main() {
  return k2::bench::RunSpareGainFigure(
      "Fig 7f: k/2 gain over SPARE, NUMA emulation (workers 8-32)",
      {8, 16, 24, 32});
}
