#!/usr/bin/env bash
# CI entry points.
#
#   scripts/ci.sh [build-dir]      configure + build everything + smoke ctest
#                                  (the default gate; gcc or clang)
#   scripts/ci.sh --lint           project lints: scripts/lint_k2.py over the
#                                  tree, then its own unit tests. No compiler
#                                  needed — runs anywhere with python3.
#   scripts/ci.sh --tidy [dir]     clang-tidy over src/ with the checked-in
#                                  .clang-tidy baseline (zero findings =
#                                  pass). Auto-detects a clang-tidy binary
#                                  (override with CLANG_TIDY=...).
#
# When ccache is installed it is used automatically (the CI jobs cache its
# directory across runs, so GoogleTest and the benches stop rebuilding from
# scratch on every push).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

LAUNCHER_ARGS=()
if command -v ccache >/dev/null 2>&1; then
  LAUNCHER_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

run_lint() {
  python3 scripts/lint_k2.py
  python3 scripts/lint_k2_test.py
}

find_clang_tidy() {
  if [ -n "${CLANG_TIDY:-}" ]; then
    echo "$CLANG_TIDY"
    return
  fi
  local candidate
  for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18; do
    if command -v "$candidate" >/dev/null 2>&1; then
      echo "$candidate"
      return
    fi
  done
  echo "scripts/ci.sh --tidy: no clang-tidy binary found" \
    "(looked for clang-tidy{,-20,-19,-18}; set CLANG_TIDY=... to point at" \
    "yours)" >&2
  exit 1
}

run_tidy() {
  local build_dir="${1:-build-tidy}"
  local tidy
  tidy="$(find_clang_tidy)"
  echo "using $tidy ($("$tidy" --version | head -n1))"
  # clang-tidy needs a clang-flavored compilation database: gcc-only flags
  # poison every translation unit, so configure this dir with clang when
  # the main compiler is something else.
  local cc_args=()
  if command -v clang++ >/dev/null 2>&1; then
    cc_args+=(-DCMAKE_CXX_COMPILER=clang++)
  fi
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON -DK2_BUILD_TESTS=OFF \
    -DK2_BUILD_BENCH=OFF -DK2_BUILD_EXAMPLES=OFF \
    "${cc_args[@]}" "${LAUNCHER_ARGS[@]}"
  # The curated .clang-tidy set must stay zero-noise: any finding fails
  # (WarningsAsErrors: '*').
  local runner
  for runner in run-clang-tidy "run-clang-tidy-${tidy##*-}"; do
    if command -v "$runner" >/dev/null 2>&1; then
      "$runner" -clang-tidy-binary "$tidy" -p "$build_dir" -quiet \
        -j "$JOBS" "src/.*\.cc$"
      return
    fi
  done
  # No parallel runner installed: drive clang-tidy directly.
  find src -name '*.cc' -print0 |
    xargs -0 -P "$JOBS" -n 8 "$tidy" -p "$build_dir" --quiet
}

run_build_and_smoke() {
  local build_dir="${1:-build-ci}"
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release "${LAUNCHER_ARGS[@]}"
  cmake --build "$build_dir" -j "$JOBS"
  # Record which kernel implementations this run dispatches to (the K2_SIMD
  # env var caps the level; see src/common/simd.h).
  "$build_dir/src/k2_simd_info"
  ctest --test-dir "$build_dir" -L smoke --output-on-failure -j "$JOBS"
}

case "${1:-}" in
  --lint) run_lint ;;
  --tidy) run_tidy "${2:-}" ;;
  *)      run_build_and_smoke "${1:-}" ;;
esac
