// Fig. 7c — k2-RDBMS vs k2-LSMT on the Brinkhoff workload (the largest
// dataset), absolute seconds per k. Paper: k2-LSMT wins on the largest
// dataset; VCoDA could not finish on it at all.
#include "bench/harness.h"

using namespace k2;
using namespace k2::bench;

int main() {
  PrintBanner("Fig 7c: k2-RDBMS vs k2-LSMT (Brinkhoff)");
  const Dataset& data = Brinkhoff();
  std::cout << data.DebugString() << "\n";
  std::cout << "VCoDA on this dataset: "
            << (VcodaExceedsMemoryBudget(data)
                    ? "DNF (exceeds modelled memory budget, as in the paper)"
                    : "would fit")
            << "\n\n";

  auto rdbms = BuildStore(StoreKind::kBPlusTree, data, "fig7c");
  auto lsmt = BuildStore(StoreKind::kLsm, data, "fig7c");

  TablePrinter table({"k", "k2-RDBMS", "k2-LSMT", "convoys"});
  for (int k : {200, 400, 600, 800, 1000, 1200}) {
    const MiningParams params{3, k, 60.0};
    const MineOutcome r = RunK2(rdbms.get(), params);
    const MineOutcome l = RunK2(lsmt.get(), params);
    table.AddRow({std::to_string(k), Fmt(r.seconds), Fmt(l.seconds),
                  std::to_string(r.convoys)});
  }
  table.Print();
  return 0;
}
