#include "storage/lsm/bloom.h"

#include <algorithm>
#include <cmath>

namespace k2::lsm {

BloomFilter::BloomFilter(size_t expected_keys, int bits_per_key) {
  size_t bits = std::max<size_t>(64, expected_keys * bits_per_key);
  words_.assign((bits + 63) / 64, 0);
  // k = ln(2) * bits/key, clamped to a sane range.
  num_hashes_ = std::clamp(
      static_cast<int>(std::round(bits_per_key * 0.6931)), 1, 12);
}

uint64_t BloomFilter::Mix(uint64_t key) {
  // SplitMix64 finalizer: decorrelates nearby composite keys.
  key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9ULL;
  key = (key ^ (key >> 27)) * 0x94D049BB133111EBULL;
  return key ^ (key >> 31);
}

void BloomFilter::Add(uint64_t key) {
  const uint64_t h = Mix(key);
  const uint64_t delta = (h >> 32) | 1;  // odd => cycles through all bits
  uint64_t bit = h;
  const size_t nbits = num_bits();
  for (int i = 0; i < num_hashes_; ++i) {
    const size_t pos = bit % nbits;
    words_[pos / 64] |= (1ULL << (pos % 64));
    bit += delta;
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  if (words_.empty()) return true;
  const uint64_t h = Mix(key);
  const uint64_t delta = (h >> 32) | 1;
  uint64_t bit = h;
  const size_t nbits = num_bits();
  for (int i = 0; i < num_hashes_; ++i) {
    const size_t pos = bit % nbits;
    if ((words_[pos / 64] & (1ULL << (pos % 64))) == 0) return false;
    bit += delta;
  }
  return true;
}

BloomFilter BloomFilter::FromWords(std::vector<uint64_t> words,
                                   int num_hashes) {
  BloomFilter f;
  f.words_ = std::move(words);
  f.num_hashes_ = num_hashes;
  return f;
}

}  // namespace k2::lsm
