// Typed query API over a ConvoyCatalog. The engine is a thin facade: each
// call pins the latest published snapshot (one lock-free atomic load),
// plans against its indexes, and materializes the answers as Convoy copies
// (safe to hold after the catalog moves on). Hot loops that want zero
// copies — the serving bench, dashboards polling at high rate — pin a
// snapshot themselves and use the static id-level forms.
//
// All predicates compose as conjunctions: a ConvoyQuery is "contains
// object o AND overlaps window [a,b] AND passes through region R" for
// whichever predicates are populated. Results of Find are in canonical
// convoy order; results of TopK are in rank order (metric descending, ties
// by canonical order), so equal catalogs answer byte-identically no matter
// which miner fed them.
#ifndef K2_SERVE_QUERY_H_
#define K2_SERVE_QUERY_H_

#include <optional>
#include <vector>

#include "serve/catalog.h"

namespace k2 {

/// Conjunction of the populated predicates; empty query = everything.
struct ConvoyQuery {
  std::optional<ObjectId> object;
  std::optional<TimeRange> time_window;
  std::optional<Rect> region;

  bool unconstrained() const {
    return !object.has_value() && !time_window.has_value() &&
           !region.has_value();
  }
};

class ConvoyQueryEngine {
 public:
  /// Borrows `catalog`, which must outlive the engine.
  explicit ConvoyQueryEngine(const ConvoyCatalog* catalog)
      : catalog_(catalog) {}

  /// Convoys whose object set contains `oid`, canonical order.
  std::vector<Convoy> ByObject(ObjectId oid) const;
  /// Convoys whose lifespan overlaps `window`, canonical order.
  std::vector<Convoy> ByTimeWindow(TimeRange window) const;
  /// Convoys passing through `region` (any sampled footprint point inside),
  /// canonical order.
  std::vector<Convoy> ByRegion(const Rect& region) const;
  /// The `k` best convoys by `rank` (all of them when k >= size).
  std::vector<Convoy> TopK(ConvoyRank rank, size_t k) const;
  /// Conjunction of every populated predicate, canonical order.
  std::vector<Convoy> Find(const ConvoyQuery& query) const;
  /// The `k` best convoys by `rank` among the conjunction's answers.
  std::vector<Convoy> TopK(const ConvoyQuery& query, ConvoyRank rank,
                           size_t k) const;

  /// The snapshot the next call would pin; hold it and use the id-level
  /// forms below for copy-free, snapshot-consistent query sequences.
  std::shared_ptr<const CatalogSnapshot> Pin() const;

  /// Id-level conjunction against a pinned snapshot; `out` ascending.
  static void FindIds(const CatalogSnapshot& snap, const ConvoyQuery& query,
                      std::vector<ConvoyId>* out);
  /// Id-level TopK against a pinned snapshot; `out` in rank order.
  static void TopKIds(const CatalogSnapshot& snap, const ConvoyQuery& query,
                      ConvoyRank rank, size_t k, std::vector<ConvoyId>* out);

 private:
  std::vector<Convoy> Materialize(const CatalogSnapshot& snap,
                                  const std::vector<ConvoyId>& ids) const;

  const ConvoyCatalog* catalog_;
};

}  // namespace k2

#endif  // K2_SERVE_QUERY_H_
