// Unit tests for the proximity-log model, its generator, and its IO:
// canonicalization, per-tick CSR adjacency views, presence-dataset bridging,
// deterministic planted-clique generation, and CSV/binary round-trips with
// named parse errors.
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/proximity_gen.h"
#include "io/proximity_io.h"
#include "model/proximity.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::ScratchDir;

TEST(ProximityLogTest, CanonicalizesSwapsSelfLoopsAndDuplicates) {
  const ProximityLog log = ProximityLog::FromRecords({
      {0, 2, 1},   // swapped -> (1,2)
      {0, 1, 2},   // duplicate of the above
      {0, 3, 3},   // self-loop: dropped
      {1, 5, 4},   // swapped -> (4,5)
  });
  EXPECT_EQ(log.num_pairs(), 2u);
  EXPECT_EQ(log.num_objects(), 4u);
  EXPECT_EQ(log.time_range(), (TimeRange{0, 1}));
  const std::vector<PairRecord> expected = {{0, 1, 2}, {1, 4, 5}};
  EXPECT_EQ(log.ToRecords(), expected);
}

TEST(ProximityLogTest, EdgesAtYieldsSortedSymmetricRows) {
  const ProximityLog log = ProximityLog::FromRecords(
      {{3, 10, 20}, {3, 10, 30}, {3, 20, 30}, {7, 10, 40}});
  const SnapshotEdges t3 = log.EdgesAt(3);
  ASSERT_EQ(t3.num_nodes(), 3u);
  EXPECT_EQ(t3.num_edges(), 3u);
  EXPECT_EQ(t3.nodes[0], 10u);
  EXPECT_EQ(t3.nodes[1], 20u);
  EXPECT_EQ(t3.nodes[2], 30u);
  const auto row0 = t3.Row(0);
  ASSERT_EQ(row0.size(), 2u);
  EXPECT_EQ(row0[0], 20u);
  EXPECT_EQ(row0[1], 30u);
  EXPECT_EQ(t3.IndexOf(30), 2u);
  EXPECT_EQ(t3.IndexOf(99), SnapshotEdges::npos);

  const SnapshotEdges t7 = log.EdgesAt(7);
  ASSERT_EQ(t7.num_nodes(), 2u);
  EXPECT_EQ(t7.Row(0).size(), 1u);
  EXPECT_EQ(t7.Row(0)[0], 40u);

  EXPECT_TRUE(log.EdgesAt(5).empty());
  EXPECT_TRUE(ProximityLog().EdgesAt(0).empty());
}

TEST(ProximityLogTest, PresenceDatasetListsIncidentObjectsWithZeroCoords) {
  const ProximityLog log =
      ProximityLog::FromRecords({{0, 1, 2}, {0, 2, 3}, {2, 7, 9}});
  const Dataset presence = log.PresenceDataset();
  EXPECT_EQ(presence.num_points(), 5u);  // {1,2,3}@0 + {7,9}@2
  EXPECT_EQ(presence.time_range(), (TimeRange{0, 2}));
  const auto snap0 = presence.Snapshot(0);
  ASSERT_EQ(snap0.size(), 3u);
  EXPECT_EQ(snap0[0].oid, 1u);
  EXPECT_EQ(snap0[2].oid, 3u);
  EXPECT_EQ(snap0[0].x, 0.0);
  EXPECT_EQ(snap0[0].y, 0.0);
  EXPECT_TRUE(presence.Snapshot(1).empty());
}

TEST(ProximityGenTest, IsDeterministicPerSeed) {
  PlantedProximitySpec spec;
  spec.num_noise_objects = 12;
  spec.num_ticks = 15;
  spec.noise_pair_prob = 0.05;
  spec.groups = {{3, 2, 9}};
  spec.seed = 42;
  const ProximityLog a = GeneratePlantedProximity(spec);
  const ProximityLog b = GeneratePlantedProximity(spec);
  EXPECT_EQ(a.ToRecords(), b.ToRecords());
  spec.seed = 43;
  EXPECT_NE(GeneratePlantedProximity(spec).ToRecords(), a.ToRecords());
}

TEST(ProximityGenTest, PlantsCliquesDuringTheirIntervals) {
  PlantedProximitySpec spec;
  spec.num_noise_objects = 5;
  spec.num_ticks = 12;
  spec.noise_pair_prob = 0.0;
  spec.groups = {{4, 3, 8}, {3, 0, 11}};  // ids 0..3 and 4..6
  const ProximityLog log = GeneratePlantedProximity(spec);
  for (Timestamp t = 0; t < spec.num_ticks; ++t) {
    const SnapshotEdges edges = log.EdgesAt(t);
    // Group 1 (ids 4..6) is a triangle every tick.
    const size_t idx4 = edges.IndexOf(4);
    ASSERT_NE(idx4, SnapshotEdges::npos) << "tick " << t;
    EXPECT_EQ(edges.Row(idx4).size(), 2u);
    // Group 0 (ids 0..3) is a K4 only during [3, 8].
    const size_t idx0 = edges.IndexOf(0);
    if (t >= 3 && t <= 8) {
      ASSERT_NE(idx0, SnapshotEdges::npos) << "tick " << t;
      EXPECT_EQ(edges.Row(idx0).size(), 3u) << "tick " << t;
    } else {
      EXPECT_EQ(idx0, SnapshotEdges::npos) << "tick " << t;
    }
  }
}

TEST(ProximityIoTest, CsvRoundTrip) {
  const std::string dir = ScratchDir("proximity_csv");
  PlantedProximitySpec spec;
  spec.num_noise_objects = 10;
  spec.num_ticks = 8;
  spec.noise_pair_prob = 0.1;
  spec.groups = {{3, 1, 6}};
  const ProximityLog log = GeneratePlantedProximity(spec);

  const std::string path = dir + "/pairs.csv";
  ASSERT_TRUE(WriteProximityCsv(log, path).ok());
  auto loaded = ReadProximityCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().ToRecords(), log.ToRecords());
}

TEST(ProximityIoTest, BinaryRoundTrip) {
  const std::string dir = ScratchDir("proximity_bin");
  PlantedProximitySpec spec;
  spec.num_noise_objects = 10;
  spec.num_ticks = 8;
  spec.noise_pair_prob = 0.1;
  spec.groups = {{4, 0, 7}};
  const ProximityLog log = GeneratePlantedProximity(spec);

  const std::string path = dir + "/pairs.bin";
  ASSERT_TRUE(WriteProximityBinary(log, path).ok());
  auto loaded = ReadProximityBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().ToRecords(), log.ToRecords());
}

TEST(ProximityIoTest, CsvNamesRowAndColumnOnParseError) {
  const std::string dir = ScratchDir("proximity_bad");
  const std::string path = dir + "/bad.csv";
  {
    std::ofstream out(path);
    out << "t,oid_a,oid_b\n1,2,3\n2,junk,4\n";
  }
  auto r = ReadProximityCsv(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalid);
  EXPECT_NE(r.status().message().find(":3"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("oid_a"), std::string::npos)
      << r.status().message();
}

TEST(ProximityIoTest, CsvRejectsSelfLoopsAndBadHeaders) {
  const std::string dir = ScratchDir("proximity_bad2");
  const std::string self_loop = dir + "/self.csv";
  {
    std::ofstream out(self_loop);
    out << "t,oid_a,oid_b\n1,5,5\n";
  }
  auto r = ReadProximityCsv(self_loop);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("self-loop"), std::string::npos);

  const std::string bad_header = dir + "/head.csv";
  {
    std::ofstream out(bad_header);
    out << "t,x,y\n1,2,3\n";
  }
  EXPECT_FALSE(ReadProximityCsv(bad_header).ok());
}

TEST(ProximityIoTest, BinaryRejectsWrongMagicAndLyingHeader) {
  const std::string dir = ScratchDir("proximity_bad3");
  const std::string garbage = dir + "/garbage.bin";
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "this is not a proximity log at all";
  }
  EXPECT_FALSE(ReadProximityBinary(garbage).ok());

  // Valid magic but a count far beyond the file size must be rejected
  // before any allocation.
  const std::string lying = dir + "/lying.bin";
  ASSERT_TRUE(
      WriteProximityBinary(ProximityLog::FromRecords({{0, 1, 2}}), lying)
          .ok());
  {
    std::fstream f(lying, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);
    const uint64_t huge = ~0ULL / 2;
    f.write(reinterpret_cast<const char*>(&huge), 8);
  }
  auto r = ReadProximityBinary(lying);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalid);
}

}  // namespace
}  // namespace k2
