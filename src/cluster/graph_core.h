// Density clustering over an explicit proximity graph: DBSCAN with the
// eps-neighbourhood replaced by graph adjacency. A node's neighbourhood is
// itself plus its adjacency row, so a node is core iff degree + 1 >= min_pts
// — exactly the self-counting minPts convention of cluster/dbscan.h. With
// the eps-graph of a point snapshot as input this reproduces RunDbscan's
// labels bit-for-bit (same ascending outer loop, same seed-queue expansion,
// same first-cluster-wins border assignment), which is what the
// cross-implementation differential suite asserts.
#ifndef K2_CLUSTER_GRAPH_CORE_H_
#define K2_CLUSTER_GRAPH_CORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/dbscan.h"
#include "common/object_set.h"
#include "common/types.h"

namespace k2 {

/// Reusable working state for graph clustering runs (one scratch per
/// thread). Also owns the CSR adjacency buffers callers build the induced
/// graph into, so repeated clusterings allocate nothing in steady state.
struct GraphClusterScratch {
  // Caller-built CSR adjacency of the snapshot's induced graph: node i's
  // neighbour indexes (self excluded) are adj[adj_offsets[i] ..
  // adj_offsets[i+1]).
  std::vector<uint32_t> adj_offsets;
  std::vector<uint32_t> adj;
  // Sorted fetched oids, for oid -> node-index joins while building the
  // induced adjacency.
  std::vector<ObjectId> oids;
  // Expansion state.
  std::vector<uint8_t> visited;
  std::vector<uint32_t> seeds;
  DbscanLabels labels;
  std::vector<std::vector<ObjectId>> members;
};

/// Labels the n-node graph held in (adj_offsets, adj); label -1 = noise.
/// Nodes must be presented in ascending object-id order for border
/// assignment to match geometric DBSCAN over the same neighbourhoods.
void ClusterGraphLabelled(size_t n, std::span<const uint32_t> adj_offsets,
                          std::span<const uint32_t> adj, int min_pts,
                          GraphClusterScratch* scratch, DbscanLabels* out);

/// Clusters the graph whose node i carries object id node_oids[i] and
/// returns the (m)-clusters (size >= min_pts) as object-id sets in canonical
/// lexicographic order — the graph analogue of Dbscan().
std::vector<ObjectSet> GraphClusters(std::span<const ObjectId> node_oids,
                                     std::span<const uint32_t> adj_offsets,
                                     std::span<const uint32_t> adj, int min_pts,
                                     GraphClusterScratch* scratch);

}  // namespace k2

#endif  // K2_CLUSTER_GRAPH_CORE_H_
