// Fault-injection tests for the crash-safe LSM write path (smoke tier).
// Covers the building blocks — CRC32C, FaultInjectionEnv semantics, WAL
// framing (including randomized truncation / bit-flip properties), atomic
// SSTable publication with named Open() errors, MANIFEST round-trips — and
// LsmStore recovery basics plus a strided crash-matrix sweep. The exhaustive
// every-failpoint sweep over all fixture families lives in
// lsm_crash_differential_test.cc (slow tier).
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "common/env.h"
#include "common/rng.h"
#include "gen/synthetic.h"
#include "storage/key.h"
#include "storage/lsm/manifest.h"
#include "storage/lsm/sstable.h"
#include "storage/lsm/wal.h"
#include "storage/lsm_store.h"
#include "tests/lsm_crash_util.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::CountCleanOps;
using ::k2::testing::CrashFixture;
using ::k2::testing::CrashScratchDir;
using ::k2::testing::RunCrashIteration;
using ::k2::testing::StreamTicks;
using ::k2::testing::SweepStoreOptions;
using FaultMode = FaultInjectionEnv::FaultMode;

std::string ReadAll(const std::string& path) {
  auto r = Env::Default()->ReadFileToString(path);
  K2_CHECK(r.ok());
  return r.MoveValue();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  K2_CHECK(out.good());
}

// ---------------------------------------------------------------------------
// CRC32C

TEST(Crc32cTest, KnownAnswer) {
  // The canonical CRC-32C check value (RFC 3720 appendix / iSCSI).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, SeedChainsIncrementally) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{17}, data.size()}) {
    const uint32_t part = Crc32c(data.data(), split);
    EXPECT_EQ(Crc32c(data.data() + split, data.size() - split, part), whole)
        << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data = "payload under test";
  const uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); ++byte) {
    data[byte] ^= 0x10;
    EXPECT_NE(Crc32c(data.data(), data.size()), clean) << "byte " << byte;
    data[byte] ^= 0x10;
  }
}

// ---------------------------------------------------------------------------
// FaultInjectionEnv

TEST(FaultInjectionEnvTest, CrashDropsUnsyncedBytes) {
  const std::string dir = CrashScratchDir("env_crash");
  const std::string path = dir + "/f";
  FaultInjectionEnv env;
  auto file_r = env.NewWritableFile(path);
  ASSERT_TRUE(file_r.ok());
  auto file = file_r.MoveValue();
  ASSERT_TRUE(file->Append("AAAA", 4).ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append("BBBB", 4).ok());
  EXPECT_EQ(ReadAll(path), "AAAABBBB");  // in the "page cache"

  env.CrashNow();
  EXPECT_TRUE(env.crashed());
  // Power cut: the unsynced suffix is gone, the env is dead.
  EXPECT_EQ(ReadAll(path), "AAAA");
  EXPECT_FALSE(file->Append("C", 1).ok());
  EXPECT_FALSE(file->Sync().ok());
  EXPECT_FALSE(env.NewWritableFile(dir + "/g").ok());
  EXPECT_FALSE(env.RenameFile(path, dir + "/h").ok());
  EXPECT_FALSE(env.ReadFileToString(path).ok());
}

TEST(FaultInjectionEnvTest, FailOpFiresExactlyOnce) {
  const std::string dir = CrashScratchDir("env_failop");
  FaultInjectionEnv env;
  // Op 0: create. Op 1: append (armed). Op 2+: back to normal.
  env.ArmFault(FaultMode::kFailOp, 1);
  auto file_r = env.NewWritableFile(dir + "/f");
  ASSERT_TRUE(file_r.ok());
  auto file = file_r.MoveValue();
  const Status failed = file->Append("AAAA", 4);
  EXPECT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("injected"), std::string::npos);
  EXPECT_TRUE(env.triggered());
  EXPECT_FALSE(env.crashed());
  // One-shot: the env stays alive and the write never reached the file.
  ASSERT_TRUE(file->Append("BBBB", 4).ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Close().ok());
  EXPECT_EQ(ReadAll(dir + "/f"), "BBBB");
  EXPECT_EQ(env.op_count(), 5u);  // create, append, append, sync, close
}

TEST(FaultInjectionEnvTest, TornWriteKeepsPrefixOfUnsyncedTail) {
  const std::string dir = CrashScratchDir("env_torn");
  const std::string path = dir + "/f";
  FaultInjectionEnv env;
  auto file = env.NewWritableFile(path).MoveValue();
  ASSERT_TRUE(file->Append("AAAA", 4).ok());
  ASSERT_TRUE(file->Sync().ok());
  env.ArmFault(FaultMode::kTornWrite, env.op_count());
  EXPECT_FALSE(file->Append("BBBBBBBB", 8).ok());
  EXPECT_TRUE(env.crashed());
  // synced(4) + half of the torn 8-byte append.
  EXPECT_EQ(ReadAll(path), "AAAABBBB");
}

TEST(FaultInjectionEnvTest, RenameTracksSyncedState) {
  const std::string dir = CrashScratchDir("env_rename");
  FaultInjectionEnv env;
  auto file = env.NewWritableFile(dir + "/f.tmp").MoveValue();
  ASSERT_TRUE(file->Append("DATA", 4).ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Close().ok());
  ASSERT_TRUE(env.RenameFile(dir + "/f.tmp", dir + "/f").ok());
  env.CrashNow();
  // The synced bytes follow the file across the rename.
  EXPECT_EQ(ReadAll(dir + "/f"), "DATA");
}

// ---------------------------------------------------------------------------
// WAL framing

std::vector<std::string> MakeRecords(Rng* rng, size_t n) {
  std::vector<std::string> records;
  for (size_t i = 0; i < n; ++i) {
    std::string payload(rng->NextInt(100), '\0');
    for (char& c : payload) c = static_cast<char>('a' + rng->NextInt(26));
    records.push_back(std::move(payload));
  }
  return records;
}

std::string WriteWal(const std::string& path,
                     const std::vector<std::string>& records) {
  auto wal = lsm::WalWriter::Create(Env::Default(), path).MoveValue();
  for (const std::string& r : records) {
    K2_CHECK_OK(wal->AddRecord(r.data(), r.size()));
  }
  K2_CHECK_OK(wal->Sync());
  K2_CHECK_OK(wal->Close());
  return ReadAll(path);
}

std::vector<std::string> Replayed(const std::string& path) {
  std::vector<std::string> got;
  auto n = lsm::ReplayWal(Env::Default(), path,
                          [&](const char* p, size_t len) {
                            got.emplace_back(p, len);
                          });
  K2_CHECK(n.ok());
  K2_CHECK(n.value() == got.size());
  return got;
}

TEST(WalTest, RoundTrip) {
  const std::string dir = CrashScratchDir("wal_rt");
  Rng rng(11);
  const std::vector<std::string> records = MakeRecords(&rng, 50);
  WriteWal(dir + "/wal", records);
  EXPECT_EQ(Replayed(dir + "/wal"), records);
}

TEST(WalTest, MissingFileIsAnError) {
  const std::string dir = CrashScratchDir("wal_missing");
  auto n = lsm::ReplayWal(Env::Default(), dir + "/nope",
                          [](const char*, size_t) {});
  EXPECT_FALSE(n.ok());
}

// Property: truncating the file at ANY byte recovers exactly the records
// whose frames end at or before the cut — never garbage, never a record
// reordered or skipped.
TEST(WalTest, TruncationRecoversLongestValidPrefix) {
  const std::string dir = CrashScratchDir("wal_trunc");
  constexpr uint64_t kSeed = 20260807;
  Rng rng(kSeed);
  const std::vector<std::string> records = MakeRecords(&rng, 40);
  const std::string bytes = WriteWal(dir + "/wal", records);

  // frame_end[i] = offset one past record i's frame.
  std::vector<size_t> frame_end;
  size_t off = 0;
  for (const std::string& r : records) {
    off += 8 + r.size();  // crc32 + len32 + payload
    frame_end.push_back(off);
  }
  ASSERT_EQ(off, bytes.size());

  auto expected_count = [&](size_t cut) {
    size_t n = 0;
    while (n < frame_end.size() && frame_end[n] <= cut) ++n;
    return n;
  };

  std::vector<size_t> cuts = frame_end;  // every boundary ...
  cuts.push_back(0);
  for (int i = 0; i < 120; ++i) {  // ... plus random interior cuts
    cuts.push_back(rng.NextInt(bytes.size() + 1));
  }
  for (size_t cut : cuts) {
    SCOPED_TRACE("seed=" + std::to_string(kSeed) +
                 " cut=" + std::to_string(cut) + "/" +
                 std::to_string(bytes.size()));
    WriteAll(dir + "/cut", bytes.substr(0, cut));
    const std::vector<std::string> got = Replayed(dir + "/cut");
    ASSERT_EQ(got.size(), expected_count(cut));
    for (size_t i = 0; i < got.size(); ++i) ASSERT_EQ(got[i], records[i]);
  }
}

// Property: flipping any single bit inside record i's frame recovers exactly
// records [0, i) — CRC32C detects all single-bit errors, and a corrupt
// length field can only stop replay, not resurrect later frames.
TEST(WalTest, BitFlipRecoversPrecedingRecords) {
  const std::string dir = CrashScratchDir("wal_flip");
  constexpr uint64_t kSeed = 977;
  Rng rng(kSeed);
  const std::vector<std::string> records = MakeRecords(&rng, 30);
  const std::string bytes = WriteWal(dir + "/wal", records);

  std::vector<size_t> frame_begin;
  size_t off = 0;
  for (const std::string& r : records) {
    frame_begin.push_back(off);
    off += 8 + r.size();
  }

  for (int trial = 0; trial < 150; ++trial) {
    const size_t frame = rng.NextInt(records.size());
    const size_t frame_size = 8 + records[frame].size();
    const size_t byte = frame_begin[frame] + rng.NextInt(frame_size);
    const int bit = static_cast<int>(rng.NextInt(8));
    SCOPED_TRACE("seed=" + std::to_string(kSeed) +
                 " trial=" + std::to_string(trial) +
                 " frame=" + std::to_string(frame) +
                 " byte=" + std::to_string(byte) +
                 " bit=" + std::to_string(bit));
    std::string corrupt = bytes;
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
    WriteAll(dir + "/flip", corrupt);
    const std::vector<std::string> got = Replayed(dir + "/flip");
    ASSERT_EQ(got.size(), frame);
    for (size_t i = 0; i < got.size(); ++i) ASSERT_EQ(got[i], records[i]);
  }
}

// ---------------------------------------------------------------------------
// SSTable atomic publication + Open validation

std::string BuildTable(Env* env, const std::string& path, int keys,
                       Status* out = nullptr) {
  lsm::SSTableBuilder builder(env, path);
  builder.Reserve(static_cast<size_t>(keys));
  Status st;
  for (int i = 0; i < keys && st.ok(); ++i) {
    st = builder.Add(MakeKey(i / 10, static_cast<ObjectId>(i % 10)),
                     lsm::LsmValue{static_cast<double>(i), -1.0});
  }
  if (st.ok()) st = builder.Finish();
  if (out != nullptr) *out = st;
  return path;
}

void ExpectTableComplete(const std::string& path, int keys) {
  IoStats stats;
  auto table_r = lsm::SSTable::Open(path, 1, &stats);
  ASSERT_TRUE(table_r.ok()) << table_r.status().ToString();
  auto table = table_r.MoveValue();
  ASSERT_EQ(table->num_entries(), static_cast<uint64_t>(keys));
  int seen = 0;
  ASSERT_TRUE(table
                  ->Scan(0, ~0ULL,
                         [&](uint64_t key, const lsm::LsmValue& v) {
                           EXPECT_EQ(v.x, static_cast<double>(seen));
                           EXPECT_EQ(key, MakeKey(seen / 10, seen % 10));
                           ++seen;
                         })
                  .ok());
  EXPECT_EQ(seen, keys);
}

// Sweep a crash over every durability op of a table build: afterwards the
// final path either does not exist (at most a .tmp orphan remains) or holds
// a complete, validating table. There is no in-between.
TEST(SSTableCrashTest, PublicationIsAtomicAtEveryFailpoint) {
  constexpr int kKeys = 400;  // 3 blocks
  uint64_t total;
  {
    FaultInjectionEnv env;
    BuildTable(&env, CrashScratchDir("sst_count") + "/t.sst", kKeys);
    total = env.op_count();
  }
  ASSERT_GE(total, 5u);
  for (FaultMode mode : {FaultMode::kCrash, FaultMode::kTornWrite}) {
    for (uint64_t fp = 0; fp < total; ++fp) {
      SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(mode)) +
                   " failpoint=" + std::to_string(fp));
      const std::string dir = CrashScratchDir("sst_sweep");
      const std::string path = dir + "/t.sst";
      FaultInjectionEnv env;
      env.ArmFault(mode, fp);
      Status st;
      BuildTable(&env, path, kKeys, &st);
      ASSERT_FALSE(st.ok()) << "failpoint below total must fail the build";
      if (Env::Default()->FileExists(path)) {
        // The rename happened: the table must be complete and valid.
        ExpectTableComplete(path, kKeys);
      }
    }
  }
}

TEST(SSTableCrashTest, AbandonedBuildRemovesTempFile) {
  const std::string dir = CrashScratchDir("sst_abandon");
  {
    lsm::SSTableBuilder builder(Env::Default(), dir + "/t.sst");
    ASSERT_TRUE(builder.Add(MakeKey(0, 0), lsm::LsmValue{1.0, 2.0}).ok());
    // No Finish(): destructor must clean up.
  }
  EXPECT_FALSE(Env::Default()->FileExists(dir + "/t.sst"));
  EXPECT_FALSE(Env::Default()->FileExists(dir + "/t.sst.tmp"));
}

void ExpectOpenFails(const std::string& path, const std::string& needle) {
  IoStats stats;
  auto r = lsm::SSTable::Open(path, 1, &stats);
  ASSERT_FALSE(r.ok()) << "expected rejection: " << needle;
  EXPECT_EQ(r.status().code(), StatusCode::kInvalid);
  EXPECT_NE(r.status().message().find(needle), std::string::npos)
      << r.status().ToString();
}

TEST(SSTableCrashTest, OpenRejectsCorruptFilesWithNamedErrors) {
  const std::string dir = CrashScratchDir("sst_corrupt");
  const std::string good = BuildTable(Env::Default(), dir + "/t.sst", 400);
  const std::string bytes = ReadAll(good);
  ASSERT_GT(bytes.size(), 100u);

  WriteAll(dir + "/empty.sst", "");
  ExpectOpenFails(dir + "/empty.sst", "truncated SSTable");

  WriteAll(dir + "/short.sst", bytes.substr(0, 10));
  ExpectOpenFails(dir + "/short.sst", "truncated SSTable");

  std::string bad_magic = bytes;
  bad_magic.back() = static_cast<char>(bad_magic.back() ^ 0xFF);
  WriteAll(dir + "/magic.sst", bad_magic);
  ExpectOpenFails(dir + "/magic.sst", "bad SSTable magic");

  // Flip a byte in the index/bloom region: footer still parses, meta CRC
  // catches the damage.
  uint64_t index_offset;
  std::memcpy(&index_offset, bytes.data() + bytes.size() - 40, 8);
  ASSERT_LT(index_offset + 3, bytes.size() - 40);
  std::string bad_meta = bytes;
  bad_meta[index_offset + 3] = static_cast<char>(bad_meta[index_offset + 3] ^ 1);
  WriteAll(dir + "/meta.sst", bad_meta);
  ExpectOpenFails(dir + "/meta.sst", "SSTable meta checksum mismatch");

  // Chop one byte: the 40 bytes now read as a footer are misaligned garbage.
  WriteAll(dir + "/chop.sst", bytes.substr(0, bytes.size() - 1));
  IoStats stats;
  EXPECT_FALSE(lsm::SSTable::Open(dir + "/chop.sst", 1, &stats).ok());
}

// ---------------------------------------------------------------------------
// MANIFEST

TEST(ManifestTest, RoundTrip) {
  const std::string dir = CrashScratchDir("manifest_rt");
  lsm::ManifestState state;
  state.next_seq = 42;
  state.live_wals = {7, 9};
  state.tables = {{0, 5, "sstable_5.sst", 123}, {1, 3, "sstable_3.sst", 456}};
  ASSERT_TRUE(lsm::WriteManifest(Env::Default(), dir, state).ok());
  // No .tmp left behind.
  EXPECT_FALSE(Env::Default()->FileExists(dir + "/MANIFEST.tmp"));

  auto read = lsm::ReadManifest(Env::Default(), dir);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().next_seq, 42u);
  EXPECT_EQ(read.value().live_wals, (std::vector<uint64_t>{7, 9}));
  ASSERT_EQ(read.value().tables.size(), 2u);
  EXPECT_EQ(read.value().tables[0].tier, 0u);
  EXPECT_EQ(read.value().tables[0].seq, 5u);
  EXPECT_EQ(read.value().tables[0].file, "sstable_5.sst");
  EXPECT_EQ(read.value().tables[0].num_entries, 123u);
  EXPECT_EQ(read.value().tables[1].tier, 1u);
}

TEST(ManifestTest, MissingIsNotFound) {
  const std::string dir = CrashScratchDir("manifest_missing");
  auto read = lsm::ReadManifest(Env::Default(), dir);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(ManifestTest, CorruptionIsDetected) {
  const std::string dir = CrashScratchDir("manifest_corrupt");
  lsm::ManifestState state;
  state.next_seq = 9;
  state.tables = {{0, 2, "sstable_2.sst", 10}};
  ASSERT_TRUE(lsm::WriteManifest(Env::Default(), dir, state).ok());
  std::string bytes = ReadAll(dir + "/MANIFEST");

  // Flip a content byte: checksum mismatch.
  std::string flipped = bytes;
  flipped[bytes.find("sstable")] ^= 0x20;
  WriteAll(dir + "/MANIFEST", flipped);
  auto read = lsm::ReadManifest(Env::Default(), dir);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("manifest checksum mismatch"),
            std::string::npos)
      << read.status().ToString();

  // Drop the trailer: parse error.
  WriteAll(dir + "/MANIFEST", bytes.substr(0, bytes.rfind("crc32c")));
  read = lsm::ReadManifest(Env::Default(), dir);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("manifest parse error"),
            std::string::npos)
      << read.status().ToString();
}

// ---------------------------------------------------------------------------
// LsmStore recovery

CrashFixture WalkFixture() {
  RandomWalkSpec spec;
  spec.seed = 7;
  spec.num_objects = 14;
  spec.num_ticks = 36;
  spec.area = 55.0;
  spec.step = 7.0;
  return {"walk", GenerateRandomWalk(spec), MiningParams{2, 4, 10.0}};
}

TEST(LsmStoreCrashTest, SyncedTicksSurvivePowerCut) {
  const CrashFixture fix = WalkFixture();
  const std::string dir = CrashScratchDir("store_power_cut");
  FaultInjectionEnv env;
  {
    LsmStore store(dir, SweepStoreOptions(&env));
    ASSERT_TRUE(store.init_status().ok());
    const std::vector<Timestamp> durable = StreamTicks(&store, fix.data);
    ASSERT_EQ(durable.size(), fix.data.timestamps().size());
    env.CrashNow();  // power cut with the store still open
  }
  LsmStore recovered(dir, SweepStoreOptions(nullptr));
  ASSERT_TRUE(recovered.init_status().ok())
      << recovered.init_status().ToString();
  EXPECT_EQ(recovered.timestamps(), fix.data.timestamps());
  std::vector<SnapshotPoint> points;
  for (Timestamp t : fix.data.timestamps()) {
    ASSERT_TRUE(recovered.ScanTimestamp(t, &points).ok());
    EXPECT_EQ(points, SnapshotPoints(fix.data, t)) << "tick " << t;
  }
}

TEST(LsmStoreCrashTest, UnsyncedPutIsLostSyncedAppendIsNot) {
  const std::string dir = CrashScratchDir("store_unsynced");
  FaultInjectionEnv env;
  {
    LsmStoreOptions options = SweepStoreOptions(&env);
    options.memtable_limit = 1 << 20;  // no flush: durability via WAL only
    LsmStore store(dir, options);
    ASSERT_TRUE(store.init_status().ok());
    for (Timestamp t = 0; t < 5; ++t) {
      ASSERT_TRUE(store.Append(t, {{0, 1.0 * t, 2.0}, {1, 3.0, 4.0}}).ok());
    }
    // Put never syncs: buffered in the WAL writer / page cache only.
    ASSERT_TRUE(store.Put(5, 0, 9.0, 9.0).ok());
    env.CrashNow();
  }
  LsmStore recovered(dir, SweepStoreOptions(nullptr));
  ASSERT_TRUE(recovered.init_status().ok());
  EXPECT_EQ(recovered.timestamps(),
            (std::vector<Timestamp>{0, 1, 2, 3, 4}));
}

TEST(LsmStoreCrashTest, ReopenAfterCleanRunRecoversEverything) {
  const CrashFixture fix = WalkFixture();
  const std::string dir = CrashScratchDir("store_reopen");
  {
    LsmStore store(dir, SweepStoreOptions(nullptr));
    ASSERT_TRUE(store.init_status().ok());
    StreamTicks(&store, fix.data);
    // Destructor closes the WAL without flushing the memtable.
  }
  // Plant orphans that recovery must sweep (not in the MANIFEST).
  WriteAll(dir + "/sstable_999.sst", "garbage");
  WriteAll(dir + "/sstable_998.sst.tmp", "garbage");
  WriteAll(dir + "/wal_997.log", "garbage");

  LsmStore recovered(dir, SweepStoreOptions(nullptr));
  ASSERT_TRUE(recovered.init_status().ok())
      << recovered.init_status().ToString();
  EXPECT_EQ(recovered.timestamps(), fix.data.timestamps());
  EXPECT_FALSE(Env::Default()->FileExists(dir + "/sstable_999.sst"));
  EXPECT_FALSE(Env::Default()->FileExists(dir + "/sstable_998.sst.tmp"));
  EXPECT_FALSE(Env::Default()->FileExists(dir + "/wal_997.log"));

  auto mined = MineK2Hop(&recovered, fix.params);
  ASSERT_TRUE(mined.ok());
  auto batch_store = k2::testing::MakeMemStore(fix.data);
  auto expected = MineK2Hop(batch_store.get(), fix.params);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(mined.value(), expected.value());
}

TEST(LsmStoreCrashTest, WriteErrorIsStickyAndBulkLoadResets) {
  const CrashFixture fix = WalkFixture();
  const std::string dir = CrashScratchDir("store_sticky");
  FaultInjectionEnv env;
  LsmStoreOptions options = SweepStoreOptions(&env);
  options.background_compaction = true;
  options.max_pending_memtables = 1;
  LsmStore store(dir, options);
  ASSERT_TRUE(store.init_status().ok());

  // Fail one op somewhere inside the flush/compaction machinery.
  env.ArmFault(FaultMode::kFailOp, env.op_count() + 40);
  StreamTicks(&store, fix.data);
  Status flush = store.Flush();
  ASSERT_FALSE(flush.ok() && store.write_error().ok())
      << "injected op failure never surfaced";
  // Sticky: writes keep failing, reads keep working.
  EXPECT_FALSE(store.Append(10000, {{0, 1.0, 1.0}}).ok());
  std::vector<SnapshotPoint> points;
  EXPECT_TRUE(store.ScanTimestamp(fix.data.timestamps()[0], &points).ok());

  // BulkLoad wipes state and clears the error (the fault was one-shot).
  ASSERT_TRUE(store.BulkLoad(fix.data).ok());
  EXPECT_TRUE(store.write_error().ok());
  EXPECT_EQ(store.timestamps(), fix.data.timestamps());
  EXPECT_TRUE(store.Append(10000, {{0, 1.0, 1.0}}).ok());
}

// ---------------------------------------------------------------------------
// Crash matrix (strided smoke slice; the full sweep is in the slow suite)

TEST(LsmStoreCrashTest, StridedCrashMatrixSyncMode) {
  const CrashFixture fix = WalkFixture();
  const std::vector<Convoy> expected = [&] {
    auto store = k2::testing::MakeMemStore(fix.data);
    auto r = MineK2Hop(store.get(), fix.params);
    K2_CHECK(r.ok());
    return r.MoveValue();
  }();
  const uint64_t total = CountCleanOps(fix, "smoke", /*background=*/false);
  ASSERT_GT(total, 20u);
  for (FaultMode mode :
       {FaultMode::kCrash, FaultMode::kTornWrite, FaultMode::kFailOp}) {
    for (uint64_t fp = 0; fp < total + 2; fp += 7) {
      RunCrashIteration(fix, mode, fp, expected, /*background=*/false,
                        "smoke_sync");
    }
  }
}

TEST(LsmStoreCrashTest, RandomCrashMatrixBackgroundMode) {
  const CrashFixture fix = WalkFixture();
  const std::vector<Convoy> expected = [&] {
    auto store = k2::testing::MakeMemStore(fix.data);
    auto r = MineK2Hop(store.get(), fix.params);
    K2_CHECK(r.ok());
    return r.MoveValue();
  }();
  const uint64_t total = CountCleanOps(fix, "smoke_bg", /*background=*/true);
  Rng rng(4242);
  for (int i = 0; i < 12; ++i) {
    const auto mode =
        static_cast<FaultMode>(1 + rng.NextInt(3));  // kFailOp..kTornWrite
    const uint64_t fp = rng.NextInt(total + 2);
    RunCrashIteration(fix, mode, fp, expected, /*background=*/true,
                      "smoke_bg");
  }
}

}  // namespace
}  // namespace k2
