// k2_client: a small blocking TCP client for the k2 wire protocol.
//
// Two API levels share one connection:
//
//  * Typed blocking calls (Ping, Ingest, Query, TopK, ...) — one round trip
//    each, the right choice everywhere latency is not the bottleneck.
//  * A pipelined layer (SendPing/SendQuery/... + Flush + Receive) that
//    queues many requests before reading any reply. The server answers a
//    connection's requests strictly in order, so reply N matches the N-th
//    request sent; Receive() hands back raw frames with their request ids
//    for the caller to match up. bench_serving_net's saturation phase and
//    the smoke driver's swap test are built on this layer.
//
// Error handling mirrors the protocol's scoping: a kError reply for a
// request-level failure (MalformedBody, IngestRejected, ...) is returned as
// that call's Status and the connection stays usable; a frame-level error
// (bad CRC on the reply stream, unexpected EOF) marks the connection broken
// — every later call fails fast with the same sticky Status.
#ifndef K2_SERVE_NET_CLIENT_H_
#define K2_SERVE_NET_CLIENT_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/convoy.h"
#include "common/status.h"
#include "common/types.h"
#include "serve/net/protocol.h"
#include "serve/query.h"

namespace k2::net {

struct K2ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Reply frame payload cap (protects the client from a rogue server).
  size_t max_frame_payload = kMaxFramePayload;
};

class K2Client {
 public:
  /// Connects and completes the kHello handshake; the returned client is
  /// ready for requests.
  static Result<std::unique_ptr<K2Client>> Connect(
      const K2ClientOptions& options);
  ~K2Client();

  K2Client(const K2Client&) = delete;
  K2Client& operator=(const K2Client&) = delete;

  uint16_t negotiated_version() const { return negotiated_version_; }
  /// OK while the connection is usable; the sticky transport error after a
  /// frame-level failure.
  Status connection_status() const { return conn_status_; }

  // --- blocking one-round-trip calls -------------------------------------

  Status Ping();
  Result<IngestAck> Ingest(Timestamp t,
                           std::span<const SnapshotPoint> points);
  Result<PublishAck> Publish();
  Result<std::vector<Convoy>> Query(const ConvoyQuery& query);
  Result<std::vector<Convoy>> TopK(const ConvoyQuery& query, ConvoyRank rank,
                                   uint32_t k);
  Result<ServerStats> Stats();
  /// Asks the server to shut down gracefully; the server acknowledges and
  /// then closes this connection.
  Status Shutdown();

  // --- pipelined layer ----------------------------------------------------
  // Send* appends the request to an output buffer and returns its request
  // id; nothing hits the socket until Flush() (or a blocking call above,
  // which flushes first to preserve ordering). Receive() blocks for the
  // next reply frame; replies arrive in request order.

  uint32_t SendPing();
  uint32_t SendIngest(Timestamp t, std::span<const SnapshotPoint> points);
  uint32_t SendPublish();
  uint32_t SendQuery(const ConvoyQuery& query);
  uint32_t SendTopK(const ConvoyQuery& query, ConvoyRank rank, uint32_t k);
  uint32_t SendStats();

  Status Flush();
  Result<Frame> Receive();

 private:
  K2Client(int fd, size_t max_frame_payload);

  uint32_t Enqueue(MessageType type, std::string_view body);
  Status FailConnection(Status status);
  /// Flush + Receive + demand `want` (unwrapping kError replies).
  Result<Frame> RoundTrip(MessageType type, std::string_view body,
                          MessageType want);

  int fd_ = -1;
  FrameReader reader_;
  std::string out_;
  uint32_t next_request_id_ = 1;
  uint16_t negotiated_version_ = 0;
  Status conn_status_ = Status::OK();
};

}  // namespace k2::net

#endif  // K2_SERVE_NET_CLIENT_H_
