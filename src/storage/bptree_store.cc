#include "storage/bptree_store.h"

#include "storage/key.h"

namespace k2 {

namespace {

// Read path shared by the store and its snapshots: serve tick `t` from the
// in-memory delta when it is newer than everything in the tree, else from
// the tree. Appends are time-ordered, so base and delta never share a tick.

bool TickInDelta(const BPlusTree& tree, TimeRange tree_range, Timestamp t) {
  return tree.num_records() == 0 || t > tree_range.end;
}

Status ScanDeltaMain(BPlusTree* tree, const Dataset& delta,
                     TimeRange tree_range, Timestamp t,
                     std::vector<SnapshotPoint>* out, IoStats* stats) {
  out->clear();
  ++stats->snapshot_scans;
  if (TickInDelta(*tree, tree_range, t)) {
    const auto snap = delta.Snapshot(t);
    out->reserve(snap.size());
    for (const PointRecord& rec : snap) {
      out->push_back(SnapshotPoint{rec.oid, rec.x, rec.y});
    }
    stats->scanned_points += out->size();
    stats->bytes_read += snap.size_bytes();
    return Status::OK();
  }
  K2_RETURN_NOT_OK(tree->ScanRange(
      MinKeyOf(t), MaxKeyOf(t), [&](uint64_t key, const BPTreeValue& v) {
        out->push_back(SnapshotPoint{KeyOid(key), v.x, v.y});
      }));
  stats->scanned_points += out->size();
  return Status::OK();
}

Status GetDeltaMainPoints(BPlusTree* tree, const Dataset& delta,
                          TimeRange tree_range, Timestamp t,
                          const ObjectSet& objects,
                          std::vector<SnapshotPoint>* out, IoStats* stats) {
  out->clear();
  stats->point_queries += objects.size();
  if (TickInDelta(*tree, tree_range, t)) {
    for (ObjectId oid : objects) {
      const PointRecord* rec = delta.Find(t, oid);
      if (rec != nullptr) {
        out->push_back(SnapshotPoint{oid, rec->x, rec->y});
        stats->bytes_read += sizeof(PointRecord);
      }
    }
    stats->point_hits += out->size();
    return Status::OK();
  }
  for (ObjectId oid : objects) {
    BPTreeValue v;
    bool found = false;
    K2_RETURN_NOT_OK(tree->Get(MakeKey(t, oid), &v, &found));
    if (found) out->push_back(SnapshotPoint{oid, v.x, v.y});
  }
  stats->point_hits += out->size();
  return Status::OK();
}

/// Read-only view: a private replica of the tree (own pager, buffer pool,
/// IO accounting) plus a borrowed pointer to the parent's immutable delta.
class BPTreeReadSnapshot final : public Store {
 public:
  BPTreeReadSnapshot(const std::string& path, size_t pool_pages,
                     const Dataset* delta, std::vector<Timestamp> timestamps,
                     TimeRange tree_range, TimeRange time_range)
      : tree_(path, pool_pages, &io_stats_),
        delta_(delta),
        timestamps_(std::move(timestamps)),
        tree_range_(tree_range),
        time_range_(time_range) {}

  /// Opens the replica; skipped when the source tree holds no records (a
  /// pure-delta store has no tree file to open, and every read routes to
  /// the delta anyway).
  Status Init(const BPlusTree& source) {
    if (source.num_records() == 0) return Status::OK();
    return tree_.OpenReadReplicaOf(source);
  }

  std::string name() const override { return "rdbms"; }
  Status BulkLoad(const Dataset&) override {
    return Status::Invalid("read snapshot of rdbms is read-only");
  }
  Status Append(Timestamp, const std::vector<SnapshotPoint>&) override {
    return Status::Invalid("read snapshot of rdbms is read-only");
  }
  Status ScanTimestamp(Timestamp t, std::vector<SnapshotPoint>* out) override {
    return ScanDeltaMain(&tree_, *delta_, tree_range_, t, out, &io_stats_);
  }
  Status GetPoints(Timestamp t, const ObjectSet& objects,
                   std::vector<SnapshotPoint>* out) override {
    return GetDeltaMainPoints(&tree_, *delta_, tree_range_, t, objects, out,
                              &io_stats_);
  }
  TimeRange time_range() const override { return time_range_; }
  const std::vector<Timestamp>& timestamps() const override {
    return timestamps_;
  }
  uint64_t num_points() const override {
    return tree_.num_records() + delta_->num_points();
  }

 private:
  BPlusTree tree_;
  const Dataset* delta_;
  std::vector<Timestamp> timestamps_;
  TimeRange tree_range_;
  TimeRange time_range_;
};

}  // namespace

BPlusTreeStore::BPlusTreeStore(std::string path, size_t buffer_pool_pages)
    : tree_(std::move(path), buffer_pool_pages, &io_stats_),
      buffer_pool_pages_(buffer_pool_pages) {}

Status BPlusTreeStore::BulkLoad(const Dataset& dataset) {
  K2_RETURN_NOT_OK(tree_.BuildFrom(dataset));
  delta_ = Dataset();
  timestamps_ = dataset.timestamps();
  tree_range_ = dataset.time_range();
  time_range_ = tree_range_;
  io_stats_.Clear();
  return Status::OK();
}

Status BPlusTreeStore::Append(Timestamp t,
                              const std::vector<SnapshotPoint>& points) {
  K2_RETURN_NOT_OK(CheckAppend(t, points));
  if (points.empty()) return Status::OK();
  K2_RETURN_NOT_OK(delta_.AppendSnapshot(t, points));
  timestamps_.push_back(t);
  if (time_range_.empty()) time_range_.start = t;
  time_range_.end = t;
  return Status::OK();
}

Status BPlusTreeStore::ScanTimestamp(Timestamp t,
                                     std::vector<SnapshotPoint>* out) {
  return ScanDeltaMain(&tree_, delta_, tree_range_, t, out, &io_stats_);
}

Status BPlusTreeStore::GetPoints(Timestamp t, const ObjectSet& objects,
                                 std::vector<SnapshotPoint>* out) {
  return GetDeltaMainPoints(&tree_, delta_, tree_range_, t, objects, out,
                            &io_stats_);
}

Result<std::unique_ptr<Store>> BPlusTreeStore::CreateReadSnapshot() {
  // Same buffer-pool budget as the parent: each snapshot's working set
  // mirrors the parent's, and total snapshot memory stays bounded.
  auto snapshot = std::make_unique<BPTreeReadSnapshot>(
      tree_.path(), buffer_pool_pages_, &delta_, timestamps_, tree_range_,
      time_range_);
  K2_RETURN_NOT_OK(snapshot->Init(tree_));
  return std::unique_ptr<Store>(std::move(snapshot));
}

}  // namespace k2
