#include "common/types.h"

#include <sstream>

namespace k2 {

std::string MiningParams::DebugString() const {
  std::ostringstream os;
  os << "MiningParams{m=" << m << ", k=" << k << ", eps=" << eps << "}";
  return os.str();
}

}  // namespace k2
