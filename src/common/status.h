// Minimal Status / Result error-propagation types, following the Apache
// Arrow idiom: fallible operations (storage, IO) return Status or Result<T>
// instead of throwing; algorithmic code that cannot fail returns values.
#ifndef K2_COMMON_STATUS_H_
#define K2_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace k2 {

enum class StatusCode : int {
  kOk = 0,
  kInvalid = 1,
  kIOError = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kOutOfMemory = 5,
  kNotImplemented = 6,
  kInternal = 7,
};

/// Returns a human-readable name for `code` ("OK", "IOError", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation. Cheap to copy in the OK case.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalid, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result aborts the process (programming error).
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design —
  // `return value;` is the vocabulary of every fallible function.
  Result(T value) : repr_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor): same conversion contract.
  Result(Status status) : repr_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status ok_status = Status::OK();
    if (ok()) return ok_status;
    return std::get<Status>(repr_);
  }

  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& MoveValue() { return std::move(std::get<T>(repr_)); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates a non-OK Status to the caller.
#define K2_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::k2::Status _k2_status = (expr);          \
    if (!_k2_status.ok()) return _k2_status;   \
  } while (false)

#define K2_CONCAT_IMPL(a, b) a##b
#define K2_CONCAT(a, b) K2_CONCAT_IMPL(a, b)

/// Assigns the value of a Result expression to `lhs`, propagating errors.
#define K2_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  auto K2_CONCAT(_k2_result_, __LINE__) = (rexpr);               \
  if (!K2_CONCAT(_k2_result_, __LINE__).ok())                    \
    return K2_CONCAT(_k2_result_, __LINE__).status();            \
  lhs = K2_CONCAT(_k2_result_, __LINE__).MoveValue()

}  // namespace k2

#endif  // K2_COMMON_STATUS_H_
