// Runtime-dispatched SIMD kernel layer for the library's three hottest inner
// loops: the SoA eps-distance scan behind every DBSCAN region query, the
// sorted-set intersection behind the Sec. 4.2 candidate pruning, and the
// CRC-32C guarding every durable byte of the LSM write path.
//
// Dispatch model: the CPU is probed once (first use), picking the widest
// implementation the hardware supports — AVX2, then SSE4.2, then portable
// scalar. The `K2_SIMD` environment variable (`scalar`, `sse42`, `avx2`)
// caps the choice below the hardware maximum, which is how CI forces the
// fallback paths and how bench runs are made attributable.
//
// The scalar-oracle rule: every kernel keeps its portable scalar
// implementation in the dispatch table (`At(Level::kScalar)`), and a SIMD
// variant must be *byte-identical* to it on every input — not "close", not
// "equivalent up to order". tests/simd_test.cc enforces this with
// randomized property suites across unaligned bases, all tail lengths and
// adversarial set shapes; the differential miner suites then prove convoy
// output is unchanged at every dispatch level. To add a kernel: add the
// function pointer here, implement scalar first, wire it into every level's
// table in simd.cc (higher levels may reuse lower ones), then extend the
// property suite.
#ifndef K2_COMMON_SIMD_H_
#define K2_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace k2::simd {

/// Instruction-set levels in strictly increasing capability order. Every
/// level's table is fully populated (lower-level or scalar entries fill the
/// gaps), so callers never see a null kernel.
enum class Level : int {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
};

/// Widest compress-store lane group any kernel uses (AVX2, 8 x u32). The
/// intersect kernel may clobber up to this many entries past the returned
/// count — a partially matched block is re-stored from a fresh base as the
/// other side advances — so its out buffer needs this much slack beyond
/// min(na, nb).
inline constexpr size_t kMaxLaneSlack = 8;

/// The dispatch table. All kernels are pure functions of their arguments —
/// no hidden state — so tables can be compared against each other freely.
struct Kernels {
  /// Appends to `out` the ids of all points within sqrt(eps2) of (qx, qy):
  /// for each j in [0, n) with (xs[j]-qx)^2 + (ys[j]-qy)^2 <= eps2, writes
  /// ids[j]. Returns the number of ids written, in increasing j order.
  /// `out` must have room for n entries: vector kernels compress-store a
  /// full lane group, so up to one lane width of slack past the written
  /// count is clobbered (never past out + n).
  size_t (*eps_scan)(const double* xs, const double* ys, const uint32_t* ids,
                     size_t n, double qx, double qy, double eps2,
                     uint32_t* out);

  /// Intersection of two sorted duplicate-free u32 arrays into `out`
  /// (sorted, unique). Returns the output size (always <= min(na, nb)).
  /// `out` must have room for min(na, nb) + kMaxLaneSlack entries — see
  /// kMaxLaneSlack for why the slack is not optional.
  size_t (*intersect)(const uint32_t* a, size_t na, const uint32_t* b,
                      size_t nb, uint32_t* out);

  /// |a ∩ b| without materializing it.
  size_t (*intersect_size)(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb);

  /// True iff every element of `a` occurs in `b` (both sorted, unique).
  bool (*is_subset)(const uint32_t* a, size_t na, const uint32_t* b,
                    size_t nb);

  /// CRC-32C (Castagnoli) of `n` bytes, continuing from `seed` (0 = fresh;
  /// a previous return value extends the stream).
  uint32_t (*crc32c)(const void* data, size_t n, uint32_t seed);
};

/// Human-readable level name ("scalar", "sse42", "avx2").
const char* LevelName(Level level);

/// True when this machine can run `level` (scalar is always supported).
bool Supported(Level level);

/// The widest level the CPU supports, ignoring the K2_SIMD override.
Level MaxSupportedLevel();

/// The level Active() dispatches to: min(MaxSupportedLevel, K2_SIMD cap).
/// Decided once, on first call; an unknown K2_SIMD value warns on stderr
/// and falls back to auto-detection.
Level ActiveLevel();

/// The dispatched kernel table for this process. Stable for the process
/// lifetime; cheap to call repeatedly.
const Kernels& Active();

/// The kernel table of a specific supported level — the hook the property
/// tests use to pit every implementation against the scalar oracle.
/// Requires Supported(level).
const Kernels& At(Level level);

}  // namespace k2::simd

#endif  // K2_COMMON_SIMD_H_
