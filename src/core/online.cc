#include "core/online.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace k2 {

std::string OnlineK2HopStats::DebugString() const {
  std::ostringstream os;
  os << "OnlineK2HopStats{ticks=" << ticks_ingested
     << ", points=" << points_ingested << ", benchmarks=" << benchmark_points
     << ", windows=" << hop_windows << " (mined " << hop_windows_mined << ")"
     << ", candidate_clusters=" << candidate_clusters
     << ", spanning=" << spanning_convoys << ", merged=" << merged_convoys
     << ", walks=" << walks_started << " (peak open " << open_walks_peak << ")"
     << ", closed=" << closed_convoys << ", open=" << open_convoys
     << ", points_processed=" << points_processed() << "/" << total_points
     << " (pruned " << pruning_ratio() * 100.0 << "%)"
     << ", append_latency{" << append_latency.DebugString() << "}}";
  return os.str();
}

OnlineK2HopMiner::OnlineK2HopMiner(Store* store, const MiningParams& params,
                                   OnlineK2HopOptions options)
    : store_(store),
      params_(params),
      options_(std::move(options)),
      hop_(std::max(1, params.k / 2)),
      merger_(params.m) {
  if (Status valid = ValidateMiningParams(params_); !valid.ok()) {
    status_ = std::move(valid);
  } else if (store_->num_points() != 0) {
    status_ = Status::Invalid(
        "OnlineK2HopMiner requires an empty store; route all data through "
        "AppendTick");
  }
}

Status OnlineK2HopMiner::Mined(const char* phase,
                               const std::function<Status()>& fn) {
  Stopwatch sw;
  const IoStats before = store_->io_stats();
  Status s = fn();
  stats_.phases.Add(phase, sw.ElapsedSeconds());
  stats_.mining_io.Accumulate(IoStats::Delta(store_->io_stats(), before));
  return s;
}

Status OnlineK2HopMiner::AppendTick(Timestamp t,
                                    std::vector<SnapshotPoint> points) {
  K2_RETURN_NOT_OK(status_);
  if (finalized()) {
    return Status::Invalid("AppendTick after Finalize");
  }
  if (frontier_ != kInvalidTimestamp && t <= frontier_) {
    return Status::Invalid("AppendTick out of order: tick " +
                           std::to_string(t) + " is not past the frontier " +
                           std::to_string(frontier_));
  }
  Stopwatch tick_sw;
  std::stable_sort(points.begin(), points.end(),
                   [](const SnapshotPoint& a, const SnapshotPoint& b) {
                     return a.oid < b.oid;
                   });
  points.erase(std::unique(points.begin(), points.end(),
                           [](const SnapshotPoint& a, const SnapshotPoint& b) {
                             return a.oid == b.oid;
                           }),
               points.end());
  if (points.empty()) {
    // A tick nobody reported at is not part of the dataset (it neither
    // advances the frontier nor ends up in the store); batch mining over
    // the final data treats it exactly like a gap.
    ++stats_.empty_ticks;
    return Status::OK();
  }
  {
    Stopwatch sw;
    const IoStats before = store_->io_stats();
    Status append_status = store_->Append(t, points);
    stats_.phases.Add("ingest", sw.ElapsedSeconds());
    stats_.ingest_io.Accumulate(IoStats::Delta(store_->io_stats(), before));
    if (!append_status.ok()) {
      // Precondition failures leave the store untouched and are retryable;
      // anything else may have mutated state mid-way and poisons the miner.
      if (append_status.code() != StatusCode::kInvalid) {
        status_ = append_status;
      }
      return append_status;
    }
  }
  if (frontier_ == kInvalidTimestamp) {
    start_ = t;
    next_benchmark_ = t;
  }
  frontier_ = t;
  ++stats_.ticks_ingested;
  stats_.points_ingested += points.size();
  status_ = Drain();
  const double elapsed = tick_sw.ElapsedSeconds();
  stats_.append_latency.Add(elapsed);
  stats_.append_percentiles.Add(elapsed);
  return status_;
}

Status OnlineK2HopMiner::Drain() {
  // Every tick <= frontier_ is final (appends are strictly increasing), so
  // all benchmark points the frontier has passed can be clustered and their
  // hop-windows mined now.
  while (next_benchmark_ <= frontier_) {
    K2_RETURN_NOT_OK(ProcessBenchmark(next_benchmark_));
    next_benchmark_ += hop_;
  }
  return AdvanceWalks(frontier_);
}

Status OnlineK2HopMiner::ProcessBenchmark(Timestamp b) {
  // Benchmarks land on the arithmetic grid start + i*hop whether or not the
  // tick carries data — an empty snapshot clusters to nothing, exactly as
  // in the batch miner.
  std::vector<ObjectSet> clusters;
  K2_RETURN_NOT_OK(Mined("benchmark", [&]() -> Status {
    auto result = ClusterSnapshot(store_, b, params_, &scratch_);
    K2_RETURN_NOT_OK(result.status());
    clusters = result.MoveValue();
    return Status::OK();
  }));
  ++stats_.benchmark_points;
  if (have_prev_benchmark_) {
    K2_RETURN_NOT_OK(
        CloseWindow(prev_benchmark_, b, prev_benchmark_clusters_, clusters));
  }
  prev_benchmark_clusters_ = std::move(clusters);
  prev_benchmark_ = b;
  have_prev_benchmark_ = true;
  last_benchmark_ = b;
  return Status::OK();
}

Status OnlineK2HopMiner::CloseWindow(Timestamp b_left, Timestamp b_right,
                                     const std::vector<ObjectSet>& left,
                                     const std::vector<ObjectSet>& right) {
  ++stats_.hop_windows;
  std::vector<ObjectSet> candidates;
  {
    Stopwatch sw;
    candidates = options_.candidate_pruning
                     ? CandidateClusters(left, right, params_.m)
                     : left;  // ablation: feed benchmark clusters directly
    stats_.phases.Add("candidates", sw.ElapsedSeconds());
  }
  stats_.candidate_clusters += candidates.size();
  std::vector<ObjectSet> spanning;
  if (!candidates.empty()) {
    ++stats_.hop_windows_mined;
    K2_RETURN_NOT_OK(Mined("HWMT", [&]() -> Status {
      auto result = HwmtSpanning(
          store_, params_, b_left, b_right, candidates,
          options_.hwmt_binary_order,
          /*verify_right_benchmark=*/!options_.candidate_pruning, &scratch_);
      K2_RETURN_NOT_OK(result.status());
      spanning = result.MoveValue();
      return Status::OK();
    }));
  }
  stats_.spanning_convoys += spanning.size();
  std::vector<Convoy> died;
  {
    Stopwatch sw;
    merger_.AddWindow(b_left, spanning, &died);
    stats_.phases.Add("merge", sw.ElapsedSeconds());
  }
  stats_.merged_convoys += died.size();
  for (Convoy& v : died) {
    ++stats_.walks_started;
    walks_.emplace_back(v, +1);
  }
  return Status::OK();
}

Status OnlineK2HopMiner::AdvanceWalks(Timestamp upto) {
  if (walks_.empty()) return Status::OK();
  std::vector<Convoy> completed;
  K2_RETURN_NOT_OK(Mined("extend-right", [&]() -> Status {
    size_t keep = 0;
    for (size_t i = 0; i < walks_.size(); ++i) {
      K2_RETURN_NOT_OK(
          walks_[i].Advance(store_, params_, upto, &completed, &scratch_));
      if (!walks_[i].done()) {
        if (keep != i) walks_[keep] = std::move(walks_[i]);
        ++keep;
      }
    }
    walks_.erase(walks_.begin() + static_cast<ptrdiff_t>(keep), walks_.end());
    return Status::OK();
  }));
  stats_.open_walks_peak = std::max(stats_.open_walks_peak, walks_.size());
  for (Convoy& c : completed) {
    K2_RETURN_NOT_OK(OnRightResult(std::move(c)));
  }
  return Status::OK();
}

Status OnlineK2HopMiner::OnRightResult(Convoy r) {
  if (!right_seen_.insert(r).second) return Status::OK();
  // During Finalize the eager channel stays quiet: everything left is
  // either an open convoy or resolved by the barriers right after.
  if (!options_.eager || finalizing_) return Status::OK();
  K2_ASSIGN_OR_RETURN(const std::vector<Convoy>* lefts, LeftPieces(r));
  for (const Convoy& f : *lefts) {
    if (f.length() < params_.k) continue;
    if (!options_.validate) {
      Emit(f);
      continue;
    }
    K2_ASSIGN_OR_RETURN(const std::vector<Convoy>* pieces, ValidatedPieces(f));
    for (const Convoy& p : *pieces) Emit(p);
  }
  return Status::OK();
}

void OnlineK2HopMiner::Emit(const Convoy& closed) {
  if (!emitted_.insert(closed).second) return;
  closed_.push_back(closed);
  ++stats_.closed_convoys;
  if (options_.on_closed) options_.on_closed(closed);
}

Result<const std::vector<Convoy>*> OnlineK2HopMiner::LeftPieces(
    const Convoy& r) {
  auto it = left_cache_.find(r);
  if (it != left_cache_.end()) return &it->second;
  // Every tick left of r.start is final, so the walk result can never
  // change — compute once, reuse at the Finalize barrier.
  std::vector<Convoy> pieces;
  K2_RETURN_NOT_OK(Mined("extend-left", [&]() -> Status {
    auto result = ExtendLeft(store_, params_, {r}, start_);
    K2_RETURN_NOT_OK(result.status());
    pieces = result.MoveValue();
    return Status::OK();
  }));
  it = left_cache_.emplace(r, std::move(pieces)).first;
  return &it->second;
}

Result<const std::vector<Convoy>*> OnlineK2HopMiner::ValidatedPieces(
    const Convoy& f) {
  auto it = validate_cache_.find(f);
  if (it != validate_cache_.end()) return &it->second;
  std::vector<Convoy> pieces;
  K2_RETURN_NOT_OK(Mined("validation", [&]() -> Status {
    ValidationStats vs;
    auto result = ValidateFullyConnected(store_, {f}, params_,
                                         /*recursive=*/true, &vs);
    K2_RETURN_NOT_OK(result.status());
    pieces = result.MoveValue();
    stats_.validation.candidates_in += vs.candidates_in;
    stats_.validation.fc_accepted += vs.fc_accepted;
    stats_.validation.split_rounds += vs.split_rounds;
    stats_.validation.reclusterings += vs.reclusterings;
    return Status::OK();
  }));
  it = validate_cache_.emplace(f, std::move(pieces)).first;
  return &it->second;
}

Result<std::vector<Convoy>> OnlineK2HopMiner::Finalize() {
  if (final_result_.has_value()) return *final_result_;
  K2_RETURN_NOT_OK(status_);
  finalizing_ = true;
  stats_.total_points = store_->num_points();
  const TimeRange range{start_, frontier_};
  if (stats_.ticks_ingested == 0 || range.length() < params_.k) {
    final_result_.emplace();
    return *final_result_;
  }

  auto fail = [&](Status s) {
    status_ = std::move(s);
    return status_;
  };

  // 1. Flush the merge at the final benchmark point; the still-active
  //    spanning convoys become right-extension seeds like any other death.
  std::vector<Convoy> died;
  {
    Stopwatch sw;
    merger_.Finish(last_benchmark_, &died);
    stats_.phases.Add("merge", sw.ElapsedSeconds());
  }
  stats_.merged_convoys += died.size();
  for (Convoy& v : died) {
    ++stats_.walks_started;
    walks_.emplace_back(v, +1);
  }
  Status s = AdvanceWalks(frontier_);
  if (!s.ok()) return fail(std::move(s));

  // 2. Branches that survived to the frontier are the open convoys: close
  //    them at the dataset boundary, as batch ExtendRight does at range.end.
  std::vector<Convoy> open;
  for (ConvoyExtensionWalk& w : walks_) w.Flush(frontier_, &open);
  walks_.clear();
  stats_.open_convoys = open.size();
  for (Convoy& c : open) {
    s = OnRightResult(std::move(c));
    if (!s.ok()) return fail(std::move(s));
  }

  // 3. Replay the batch pipeline's global barriers over the accumulated
  //    per-convoy results. All heavy per-convoy work (right walks, left
  //    walks, validation) is already cached; only the set algebra runs here.
  MaximalConvoySet rset;
  for (const Convoy& r : right_seen_) rset.Insert(r);
  right_seen_.clear();
  const std::vector<Convoy> right_maximal = rset.TakeSorted();

  MaximalConvoySet lset;
  for (const Convoy& r : right_maximal) {
    auto lp = LeftPieces(r);
    if (!lp.ok()) return fail(lp.status());
    for (const Convoy& f : *lp.value()) lset.Insert(f);
  }
  std::vector<Convoy> merged = FilterMinLength(lset.TakeSorted(), params_.k);

  std::vector<Convoy> result;
  if (!options_.validate) {
    result = std::move(merged);
  } else {
    MaximalConvoySet out;
    for (const Convoy& f : merged) {
      auto vp = ValidatedPieces(f);
      if (!vp.ok()) return fail(vp.status());
      for (const Convoy& p : *vp.value()) out.Insert(p);
    }
    result = out.TakeSorted();
  }
  final_result_ = std::move(result);
  return *final_result_;
}

}  // namespace k2
