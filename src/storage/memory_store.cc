#include "storage/memory_store.h"

namespace k2 {

namespace {

// Read path shared by the store and its snapshots: both serve queries from
// an immutable Dataset, differing only in which IoStats they charge.
Status ScanDataset(const Dataset& dataset, Timestamp t,
                   std::vector<SnapshotPoint>* out, IoStats* stats) {
  out->clear();
  auto snap = dataset.Snapshot(t);
  out->reserve(snap.size());
  for (const PointRecord& rec : snap) {
    out->push_back(SnapshotPoint{rec.oid, rec.x, rec.y});
  }
  ++stats->snapshot_scans;
  stats->scanned_points += out->size();
  stats->bytes_read += snap.size_bytes();
  return Status::OK();
}

Status GetDatasetPoints(const Dataset& dataset, Timestamp t,
                        const ObjectSet& objects,
                        std::vector<SnapshotPoint>* out, IoStats* stats) {
  out->clear();
  auto snap = dataset.Snapshot(t);
  stats->point_queries += objects.size();
  if (snap.empty()) return Status::OK();
  // Merge over the sorted snapshot and the sorted object set.
  auto it = snap.begin();
  for (ObjectId oid : objects) {
    while (it != snap.end() && it->oid < oid) ++it;
    if (it == snap.end()) break;
    if (it->oid == oid) {
      out->push_back(SnapshotPoint{it->oid, it->x, it->y});
      stats->bytes_read += sizeof(PointRecord);
    }
  }
  stats->point_hits += out->size();
  return Status::OK();
}

/// Read-only view over the parent's Dataset. The dataset is immutable while
/// snapshots exist (the CreateReadSnapshot contract), so handles share it by
/// pointer and each keeps private IoStats — zero shared mutable state.
class MemorySnapshotStore final : public Store {
 public:
  explicit MemorySnapshotStore(const Dataset* dataset) : dataset_(dataset) {}

  std::string name() const override { return "memory"; }
  Status BulkLoad(const Dataset&) override {
    return Status::Invalid("read snapshot of memory is read-only");
  }
  Status Append(Timestamp, const std::vector<SnapshotPoint>&) override {
    return Status::Invalid("read snapshot of memory is read-only");
  }
  Status ScanTimestamp(Timestamp t, std::vector<SnapshotPoint>* out) override {
    return ScanDataset(*dataset_, t, out, &io_stats_);
  }
  Status GetPoints(Timestamp t, const ObjectSet& objects,
                   std::vector<SnapshotPoint>* out) override {
    return GetDatasetPoints(*dataset_, t, objects, out, &io_stats_);
  }
  TimeRange time_range() const override { return dataset_->time_range(); }
  const std::vector<Timestamp>& timestamps() const override {
    return dataset_->timestamps();
  }
  uint64_t num_points() const override { return dataset_->num_points(); }

 private:
  const Dataset* dataset_;
};

}  // namespace

MemoryStore::MemoryStore(Dataset dataset) : dataset_(std::move(dataset)) {}

Status MemoryStore::BulkLoad(const Dataset& dataset) {
  dataset_ = dataset;
  io_stats_.Clear();
  return Status::OK();
}

Status MemoryStore::Append(Timestamp t,
                           const std::vector<SnapshotPoint>& points) {
  K2_RETURN_NOT_OK(CheckAppend(t, points));
  return dataset_.AppendSnapshot(t, points);
}

Status MemoryStore::ScanTimestamp(Timestamp t,
                                  std::vector<SnapshotPoint>* out) {
  return ScanDataset(dataset_, t, out, &io_stats_);
}

Status MemoryStore::GetPoints(Timestamp t, const ObjectSet& objects,
                              std::vector<SnapshotPoint>* out) {
  return GetDatasetPoints(dataset_, t, objects, out, &io_stats_);
}

Result<std::unique_ptr<Store>> MemoryStore::CreateReadSnapshot() {
  return std::unique_ptr<Store>(new MemorySnapshotStore(&dataset_));
}

}  // namespace k2
