#include "gen/road_network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"

namespace k2 {

namespace {

double Dist(const RoadNode& a, const RoadNode& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

RoadNetwork RoadNetwork::MakeGrid(const GridSpec& spec, uint64_t seed) {
  K2_CHECK(spec.nx >= 2 && spec.ny >= 2);
  RoadNetwork net;
  Rng rng(seed);

  net.nodes_.resize(static_cast<size_t>(spec.nx) * spec.ny);
  auto node_id = [&](int i, int j) {
    return static_cast<uint32_t>(j * spec.nx + i);
  };
  for (int j = 0; j < spec.ny; ++j) {
    for (int i = 0; i < spec.nx; ++i) {
      RoadNode& n = net.nodes_[node_id(i, j)];
      n.x = i * spec.spacing + rng.Gaussian(0.0, spec.jitter);
      n.y = j * spec.spacing + rng.Gaussian(0.0, spec.jitter);
    }
  }
  net.width_ = (spec.nx - 1) * spec.spacing;
  net.height_ = (spec.ny - 1) * spec.spacing;

  net.adjacency_.resize(net.nodes_.size());
  auto edge_class = [&](int i0, int j0, int i1, int j1) {
    // An edge lies on a highway when the shared row/column index is a
    // multiple of highway_every; main roads halfway between highways.
    if (i0 == i1) {  // vertical edge, column i0
      if (i0 % spec.highway_every == 0) return 2;
      if (i0 % spec.highway_every == spec.highway_every / 2) return 1;
    } else {  // horizontal edge, row j0
      if (j0 % spec.highway_every == 0) return 2;
      if (j0 % spec.highway_every == spec.highway_every / 2) return 1;
    }
    (void)j1;
    return 0;
  };
  auto speed_of = [&](int cls) {
    switch (cls) {
      case 2:
        return spec.highway_speed;
      case 1:
        return spec.main_speed;
      default:
        return spec.side_speed;
    }
  };
  auto add_edge = [&](uint32_t a, uint32_t b, int cls) {
    const double len = Dist(net.nodes_[a], net.nodes_[b]);
    const double speed = speed_of(cls);
    net.adjacency_[a].push_back(RoadEdge{b, len, speed, cls});
    net.adjacency_[b].push_back(RoadEdge{a, len, speed, cls});
    net.num_edges_ += 1;  // undirected edge counted once
    net.max_speed_ = std::max(net.max_speed_, speed);
  };

  for (int j = 0; j < spec.ny; ++j) {
    for (int i = 0; i < spec.nx; ++i) {
      if (i + 1 < spec.nx) {
        const int cls = edge_class(i, j, i + 1, j);
        if (cls > 0 || !rng.Bernoulli(spec.drop_probability)) {
          add_edge(node_id(i, j), node_id(i + 1, j), cls);
        }
      }
      if (j + 1 < spec.ny) {
        const int cls = edge_class(i, j, i, j + 1);
        if (cls > 0 || !rng.Bernoulli(spec.drop_probability)) {
          add_edge(node_id(i, j), node_id(i, j + 1), cls);
        }
      }
    }
  }
  return net;
}

bool RoadNetwork::FindPath(uint32_t src, uint32_t dst,
                           std::vector<uint32_t>* path) const {
  path->clear();
  if (src == dst) {
    path->push_back(src);
    return true;
  }
  // A* on travel time with an admissible straight-line/max-speed heuristic.
  struct QueueEntry {
    double f;
    uint32_t node;
    bool operator>(const QueueEntry& o) const { return f > o.f; }
  };
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> g(nodes_.size(), inf);
  std::vector<uint32_t> parent(nodes_.size(), 0xffffffffu);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      open;
  auto heuristic = [&](uint32_t n) {
    return Dist(nodes_[n], nodes_[dst]) / max_speed_;
  };
  g[src] = 0.0;
  open.push({heuristic(src), src});
  while (!open.empty()) {
    const QueueEntry top = open.top();
    open.pop();
    if (top.node == dst) break;
    if (top.f > g[top.node] + heuristic(top.node) + 1e-9) continue;  // stale
    for (const RoadEdge& e : adjacency_[top.node]) {
      const double cand = g[top.node] + e.length / e.speed;
      if (cand < g[e.to]) {
        g[e.to] = cand;
        parent[e.to] = top.node;
        open.push({cand + heuristic(e.to), e.to});
      }
    }
  }
  if (g[dst] == inf) return false;
  for (uint32_t n = dst; n != src; n = parent[n]) path->push_back(n);
  path->push_back(src);
  std::reverse(path->begin(), path->end());
  return true;
}

uint32_t RoadNetwork::NearestNode(double x, double y) const {
  uint32_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    const double dx = nodes_[i].x - x;
    const double dy = nodes_[i].y - y;
    const double d = dx * dx + dy * dy;
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

PathMover::PathMover(const RoadNetwork* net, std::vector<uint32_t> path)
    : net_(net), path_(std::move(path)) {
  K2_CHECK(!path_.empty());
  position_ = net_->node(path_[0]);
  done_ = path_.size() < 2;
}

RoadNode PathMover::Step() {
  if (done_) return position_;
  // Travel one tick worth of distance, possibly across several legs.
  const RoadEdge* edge = nullptr;
  for (const RoadEdge& e : net_->OutEdges(path_[leg_])) {
    if (e.to == path_[leg_ + 1]) {
      edge = &e;
      break;
    }
  }
  K2_CHECK(edge != nullptr);
  double budget = edge->speed;  // metres this tick (speed of current edge)
  while (budget > 0.0 && !done_) {
    const RoadNode& a = net_->node(path_[leg_]);
    const RoadNode& b = net_->node(path_[leg_ + 1]);
    const double dx = b.x - a.x;
    const double dy = b.y - a.y;
    const double len = std::sqrt(dx * dx + dy * dy);
    const double remaining = len - offset_;
    if (budget < remaining || len == 0.0) {
      offset_ += budget;
      const double f = len == 0.0 ? 1.0 : offset_ / len;
      position_ = RoadNode{a.x + f * dx, a.y + f * dy};
      return position_;
    }
    budget -= remaining;
    ++leg_;
    offset_ = 0.0;
    if (leg_ + 1 >= path_.size()) {
      position_ = net_->node(path_.back());
      done_ = true;
      return position_;
    }
  }
  return position_;
}

}  // namespace k2
