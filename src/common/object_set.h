// ObjectSet: an immutable, sorted, duplicate-free set of object ids with
// merge-based set algebra. The set-wise intersections of benchmark cluster
// sets (paper Sec. 4.2) and every candidate-pruning step run through this
// type, so it is kept deliberately small and cache-friendly.
#ifndef K2_COMMON_OBJECT_SET_H_
#define K2_COMMON_OBJECT_SET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace k2 {

class ObjectSet {
 public:
  ObjectSet() = default;

  /// Builds a set from arbitrary ids: sorts and removes duplicates.
  explicit ObjectSet(std::vector<ObjectId> ids);

  /// Builds a set from ids that are already sorted and unique (checked in
  /// debug builds only).
  static ObjectSet FromSorted(std::vector<ObjectId> ids);

  /// Convenience for tests and examples: ObjectSet::Of({3, 1, 2}).
  static ObjectSet Of(std::initializer_list<ObjectId> ids);

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  bool Contains(ObjectId oid) const;
  bool IsSubsetOf(const ObjectSet& other) const;

  /// Merge-based intersection; O(|a| + |b|).
  static ObjectSet Intersect(const ObjectSet& a, const ObjectSet& b);
  /// Merge-based union; O(|a| + |b|).
  static ObjectSet Union(const ObjectSet& a, const ObjectSet& b);
  /// a \ b.
  static ObjectSet Difference(const ObjectSet& a, const ObjectSet& b);

  /// Size of the intersection without materializing it.
  static size_t IntersectionSize(const ObjectSet& a, const ObjectSet& b);

  const std::vector<ObjectId>& ids() const { return ids_; }
  std::vector<ObjectId>::const_iterator begin() const { return ids_.begin(); }
  std::vector<ObjectId>::const_iterator end() const { return ids_.end(); }

  /// "{1, 2, 5}".
  std::string DebugString() const;

  friend bool operator==(const ObjectSet& a, const ObjectSet& b) {
    return a.ids_ == b.ids_;
  }
  /// Lexicographic order; gives convoy results a canonical order.
  friend bool operator<(const ObjectSet& a, const ObjectSet& b) {
    return a.ids_ < b.ids_;
  }

  /// FNV-1a hash over the id array.
  size_t Hash() const;

 private:
  std::vector<ObjectId> ids_;
};

struct ObjectSetHash {
  size_t operator()(const ObjectSet& s) const { return s.Hash(); }
};

}  // namespace k2

#endif  // K2_COMMON_OBJECT_SET_H_
