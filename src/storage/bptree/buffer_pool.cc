#include "storage/bptree/buffer_pool.h"

#include "common/check.h"
#include "storage/store.h"

namespace k2 {

BufferPool::BufferPool(Pager* pager, size_t capacity, IoStats* stats)
    : pager_(pager), capacity_(capacity == 0 ? 1 : capacity), stats_(stats) {}

Result<const std::byte*> BufferPool::Fetch(PageId pid) {
  auto it = frames_.find(pid);
  if (it != frames_.end()) {
    // Hit: move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    if (stats_ != nullptr) ++stats_->pages_cached;
    return static_cast<const std::byte*>(it->second->data.get());
  }
  // Miss: evict if full, then read.
  if (frames_.size() >= capacity_) {
    Frame& victim = lru_.back();
    frames_.erase(victim.pid);
    lru_.pop_back();
  }
  Frame frame;
  frame.pid = pid;
  frame.data = std::make_unique<std::byte[]>(kPageSize);
  K2_RETURN_NOT_OK(pager_->ReadPage(pid, frame.data.get()));
  lru_.push_front(std::move(frame));
  frames_[pid] = lru_.begin();
  return static_cast<const std::byte*>(lru_.front().data.get());
}

void BufferPool::Clear() {
  lru_.clear();
  frames_.clear();
}

}  // namespace k2
