#include "gen/tdrive.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace k2 {

Dataset GenerateTDrive(const TDriveParams& params) {
  Rng rng(params.seed);
  RoadNetwork net = RoadNetwork::MakeGrid(params.grid, params.seed ^ 0x7d21);

  const int num_taxis =
      std::max(8, static_cast<int>(10357 * params.scale));
  std::vector<uint32_t> hubs;
  for (int h = 0; h < params.num_hubs; ++h) hubs.push_back(net.RandomNode(&rng));
  std::vector<uint32_t> lots;
  for (int l = 0; l < params.num_lots; ++l) lots.push_back(net.RandomNode(&rng));

  DatasetBuilder builder;
  builder.Reserve(static_cast<size_t>(num_taxis) * params.ticks);

  std::vector<uint32_t> path;
  for (int taxi = 0; taxi < num_taxis; ++taxi) {
    const ObjectId oid = static_cast<ObjectId>(taxi);
    uint32_t here = net.RandomNode(&rng);
    Timestamp t = 0;
    // Rest schedule: parked close together at a shared lot for a long
    // stretch — taxis overlapping at the same lot form genuine convoys.
    Timestamp rest_start = -1, rest_end = -1;
    uint32_t rest_lot = 0;
    double rest_dx = 0.0, rest_dy = 0.0;
    if (rng.Bernoulli(params.rest_fraction) && !lots.empty()) {
      rest_start = static_cast<Timestamp>(
          rng.NextInt(static_cast<uint64_t>(params.ticks * 7 / 10) + 1));
      rest_end = std::min<Timestamp>(
          params.ticks - 1,
          rest_start + params.rest_min_ticks +
              static_cast<Timestamp>(rng.NextInt(static_cast<uint64_t>(
                  params.rest_max_ticks - params.rest_min_ticks + 1))));
      rest_lot = lots[rng.NextInt(lots.size())];
      const double angle = rng.Uniform(0.0, 6.283185307179586);
      const double radius = rng.Uniform(2.0, 18.0);
      rest_dx = radius * std::cos(angle);
      rest_dy = radius * std::sin(angle);
    }
    while (t < params.ticks) {
      if (rest_start >= 0 && t >= rest_start && t <= rest_end) {
        const RoadNode& lot = net.node(rest_lot);
        while (t <= rest_end) {
          builder.Add(t, oid,
                      lot.x + rest_dx + rng.Gaussian(0.0, params.gps_noise),
                      lot.y + rest_dy + rng.Gaussian(0.0, params.gps_noise));
          ++t;
        }
        here = rest_lot;
        continue;
      }
      // Choose the next destination: hub-biased.
      uint32_t dst = rng.Bernoulli(params.hub_bias)
                         ? hubs[rng.NextInt(hubs.size())]
                         : net.RandomNode(&rng);
      if (dst == here || !net.FindPath(here, dst, &path) || path.size() < 2) {
        // Stay put one tick and retry.
        const RoadNode& n = net.node(here);
        builder.Add(t, oid, n.x + rng.Gaussian(0.0, params.gps_noise),
                    n.y + rng.Gaussian(0.0, params.gps_noise));
        ++t;
        continue;
      }
      PathMover mover(&net, path);
      while (t < params.ticks) {
        const RoadNode pos = mover.Step();
        builder.Add(t, oid, pos.x + rng.Gaussian(0.0, params.gps_noise),
                    pos.y + rng.Gaussian(0.0, params.gps_noise));
        ++t;
        if (mover.done()) break;
      }
      here = dst;
      // Wait for the next fare.
      const Timestamp wait = t + 2 + static_cast<Timestamp>(rng.NextInt(12));
      const RoadNode& n = net.node(here);
      while (t < std::min<Timestamp>(wait, params.ticks)) {
        builder.Add(t, oid, n.x + rng.Gaussian(0.0, params.gps_noise),
                    n.y + rng.Gaussian(0.0, params.gps_noise));
        ++t;
      }
    }
  }
  return builder.Build();
}

}  // namespace k2
