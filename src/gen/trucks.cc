#include "gen/trucks.h"

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace k2 {

Dataset GenerateTrucks(const TrucksParams& params) {
  Rng rng(params.seed);
  RoadNetwork net = RoadNetwork::MakeGrid(params.grid, params.seed ^ 0x715c);

  // Depots and sites are fixed intersections shared by the whole fleet.
  std::vector<uint32_t> depots, sites;
  for (int d = 0; d < params.num_depots; ++d) depots.push_back(net.RandomNode(&rng));
  for (int s = 0; s < params.num_sites; ++s) sites.push_back(net.RandomNode(&rng));

  DatasetBuilder builder;
  builder.Reserve(static_cast<size_t>(params.num_trajectories) * params.ticks);

  const int wave_ticks = params.wave_minutes * 2;  // 30 s sampling
  // Parked trucks occupy distinct yard slots well apart from each other, so
  // idling at a depot or site does not register as co-movement (only trucks
  // actually driving the same route form convoys).
  const double slot_spacing = 60.0;
  auto slot_offset = [&](ObjectId oid, double* dx, double* dy) {
    *dx = (oid % 16) * slot_spacing;
    *dy = (oid / 16) * slot_spacing;
  };
  std::vector<uint32_t> path;
  for (int traj = 0; traj < params.num_trajectories; ++traj) {
    const ObjectId oid = static_cast<ObjectId>(traj);
    const uint32_t depot = depots[rng.NextInt(depots.size())];
    double slot_dx, slot_dy;
    slot_offset(oid, &slot_dx, &slot_dy);

    // A truck-day is a sequence of delivery round trips; trucks assigned to
    // the same wave and site travel the same route at the same ticks.
    Timestamp t = 0;
    // Wave alignment: departure at a multiple of the wave length.
    Timestamp depart =
        static_cast<Timestamp>(rng.NextInt(4)) * wave_ticks;
    double idle_x = net.node(depot).x + slot_dx;
    double idle_y = net.node(depot).y + slot_dy;
    while (t < params.ticks) {
      // Idle at the depot until departure.
      while (t < std::min<Timestamp>(depart, params.ticks)) {
        builder.Add(t, oid, idle_x + rng.Gaussian(0.0, params.gps_noise),
                    idle_y + rng.Gaussian(0.0, params.gps_noise));
        ++t;
      }
      if (t >= params.ticks) break;

      const uint32_t site = sites[rng.NextInt(sites.size())];
      // Out and back; unroutable pairs (rare) idle the rest of the day.
      if (!net.FindPath(depot, site, &path) || path.size() < 2) {
        depart = params.ticks;
        continue;
      }
      for (int leg = 0; leg < 2 && t < params.ticks; ++leg) {
        PathMover mover(&net, path);
        while (t < params.ticks) {
          const RoadNode pos = mover.Step();
          builder.Add(t, oid, pos.x + rng.Gaussian(0.0, params.gps_noise),
                      pos.y + rng.Gaussian(0.0, params.gps_noise));
          ++t;
          if (mover.done()) break;
        }
        // Unload/load pause at the turn-around point, in the truck's own
        // bay so waiting fleets don't cluster.
        const RoadNode& pause = net.node(leg == 0 ? site : depot);
        const Timestamp pause_until =
            t + 10 + static_cast<Timestamp>(rng.NextInt(20));
        while (t < std::min<Timestamp>(pause_until, params.ticks)) {
          builder.Add(t, oid,
                      pause.x + slot_dx + rng.Gaussian(0.0, params.gps_noise),
                      pause.y + slot_dy + rng.Gaussian(0.0, params.gps_noise));
          ++t;
        }
        std::reverse(path.begin(), path.end());
      }
      // Next round trip starts at the following wave boundary.
      depart = ((t / wave_ticks) + 1) * wave_ticks;
      idle_x = net.node(depot).x + slot_dx;
      idle_y = net.node(depot).y + slot_dy;
    }
  }
  return builder.Build();
}

}  // namespace k2
