// Immutable sorted-string table: 4 KiB data blocks of packed (key, x, y)
// entries, a sparse block index and a bloom filter kept resident, data blocks
// fetched from disk on demand. File layout (format v2):
//
//   [block 0][block 1]...[block B-1]
//   [index: B * {uint64 first_key, uint64 last_key, uint64 offset, u32 count}]
//   [bloom: uint32 num_hashes (top bit = blocked layout), uint32 num_words,
//    words...]
//   [footer: uint64 index_offset, uint64 bloom_offset, uint64 num_entries,
//            uint32 meta_crc32c (over index + bloom), uint32 version,
//            uint64 magic]
//
// Publication is atomic: the builder writes to `<path>.tmp` through an Env,
// fsyncs, closes, and renames onto the final path (rename + parent-dir
// fsync), so a reader can never observe a partially written table under the
// final name. Open() refuses truncated or corrupt files with named errors
// instead of parsing garbage — recovery after a crash depends on it.
#ifndef K2_STORAGE_LSM_SSTABLE_H_
#define K2_STORAGE_LSM_SSTABLE_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "storage/lsm/bloom.h"
#include "storage/lsm/skiplist.h"

namespace k2 {
struct IoStats;
}

namespace k2::lsm {

inline constexpr uint64_t kSstMagic = 0x6b32686f70737374ULL;  // "k2hopsst"
inline constexpr uint32_t kSstFormatVersion = 2;
inline constexpr size_t kBlockEntries = 170;  // 24 B/entry -> ~4 KiB blocks

/// Writes one SSTable; Add() must be called in strictly increasing key order.
/// Nothing appears under the final path until Finish() has fsynced and
/// renamed the temporary file; a crash mid-build leaves at most a `.tmp`
/// orphan that recovery deletes.
class SSTableBuilder {
 public:
  SSTableBuilder(Env* env, std::string path);
  /// Convenience: builds through Env::Default().
  explicit SSTableBuilder(std::string path);
  ~SSTableBuilder();

  Status Add(uint64_t key, const LsmValue& value);
  /// Flushes everything, fsyncs, and atomically publishes the table.
  Status Finish();

  /// Pre-sizes the bloom filter; call before the first Add for best shape.
  void Reserve(size_t expected_keys);

  uint64_t num_entries() const { return num_entries_; }

 private:
  Status FlushBlock();

  struct IndexEntry {
    uint64_t first_key;
    uint64_t last_key;
    uint64_t offset;
    uint32_t count;
  };

  Env* env_;
  std::string path_;      // final path, target of the publishing rename
  std::string tmp_path_;  // path_ + ".tmp", where all writing happens
  std::unique_ptr<WritableFile> file_;
  std::string scratch_;  // per-block serialization buffer
  std::vector<std::pair<uint64_t, LsmValue>> block_;
  std::vector<IndexEntry> index_;
  std::vector<std::pair<uint64_t, LsmValue>> all_entries_;  // for bloom build
  uint64_t offset_ = 0;
  uint64_t num_entries_ = 0;
  uint64_t last_key_ = 0;
  bool has_last_key_ = false;
  size_t bloom_reserve_ = 0;
  Status deferred_error_;
};

/// Read-side handle; index and bloom are resident, blocks are read on demand.
class SSTable {
 public:
  static Result<std::unique_ptr<SSTable>> Open(const std::string& path,
                                               uint64_t seq, IoStats* stats);
  ~SSTable();

  SSTable(const SSTable&) = delete;
  SSTable& operator=(const SSTable&) = delete;

  /// Point lookup; returns true when found. `use_bloom = false` bypasses the
  /// bloom filter (ablation benchmark).
  Result<bool> Get(uint64_t key, LsmValue* value, bool use_bloom = true);

  /// Visits entries with lo <= key <= hi in key order.
  Status Scan(uint64_t lo, uint64_t hi,
              const std::function<void(uint64_t, const LsmValue&)>& fn);

  uint64_t min_key() const { return min_key_; }
  uint64_t max_key() const { return max_key_; }
  uint64_t num_entries() const { return num_entries_; }
  /// Monotone creation sequence number: larger = newer data.
  uint64_t seq() const { return seq_; }
  const std::string& path() const { return path_; }
  /// LSM tier this table lives in (0 = fresh flush, grows with compaction).
  /// Set by the store right after Open — the file format does not record it;
  /// the MANIFEST does. Drives the per-tier fan-out counters in IoStats.
  uint32_t tier() const { return tier_; }
  void set_tier(uint32_t tier) { tier_ = tier; }
  /// Redirects all future IO accounting to `stats` (which must outlive this
  /// table). The store's flush/compaction jobs open freshly built tables
  /// against a job-local IoStats while the store mutex is dropped, then
  /// re-point the handle at the store's shared counters once they re-hold
  /// the lock — Open-time reads must never charge shared stats unlocked.
  void set_io_sink(IoStats* stats) { stats_ = stats; }
  bool Overlaps(uint64_t lo, uint64_t hi) const {
    return num_entries_ > 0 && lo <= max_key_ && hi >= min_key_;
  }

 private:
  SSTable() = default;

  struct IndexEntry {
    uint64_t first_key;
    uint64_t last_key;
    uint64_t offset;
    uint32_t count;
  };

  /// In-memory mirror of one on-disk entry: key + x + y, 24 bytes with no
  /// padding, so whole blocks decode with a single read.
  struct Entry {
    uint64_t key;
    LsmValue value;
  };

  /// Small per-table LRU block cache (the HBase-block-cache analogue of the
  /// paper's LSMT engine). One snapshot tick spans a handful of blocks and
  /// the mining loops re-probe the same tick once per candidate, so a few
  /// resident blocks turn almost all of those repeat reads into hits.
  static constexpr size_t kCachedBlocks = 8;
  struct CachedBlock {
    int64_t index = -1;       // block number, -1 = empty slot
    uint64_t last_used = 0;   // LRU clock value
    std::vector<Entry> entries;
  };

  /// Returns the cache slot holding block `b`, or nullptr on a miss.
  CachedBlock* FindCached(size_t b) {
    for (CachedBlock& cb : cache_) {
      if (cb.index == static_cast<int64_t>(b)) return &cb;
    }
    return nullptr;
  }

  /// Cache-miss path: copies block `b` out of the read-only mmap of the
  /// immutable table file (no syscalls; the copy also keeps the entry array
  /// aligned and type-safe), falling back to fseek/fread when the file
  /// could not be mapped. Evicts the LRU slot.
  Result<const std::vector<Entry>*> LoadBlock(size_t b);

  /// FindCached + LoadBlock, with hit/miss accounting.
  Result<const std::vector<Entry>*> GetBlock(size_t b);

  std::string path_;
  std::FILE* file_ = nullptr;
  const char* map_ = nullptr;  // read-only mmap of the whole file
  size_t map_size_ = 0;
  std::vector<IndexEntry> index_;
  BloomFilter bloom_;
  CachedBlock cache_[kCachedBlocks];
  uint64_t cache_clock_ = 0;
  int64_t last_fetched_block_ = -2;  // -2: nothing fetched yet
  uint64_t num_entries_ = 0;
  uint64_t min_key_ = 0;
  uint64_t max_key_ = 0;
  uint64_t seq_ = 0;
  uint32_t tier_ = 0;
  IoStats* stats_ = nullptr;

  /// Bumps `(*v)[tier_]`, growing the vector to cover this tier.
  void ChargeTier(std::vector<uint64_t>* v) const {
    if (v->size() <= tier_) v->resize(tier_ + 1, 0);
    ++(*v)[tier_];
  }
};

}  // namespace k2::lsm

#endif  // K2_STORAGE_LSM_SSTABLE_H_
