#include "gen/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace k2 {

Dataset GenerateRandomWalk(const RandomWalkSpec& spec) {
  Rng rng(spec.seed);
  DatasetBuilder builder;
  builder.Reserve(static_cast<size_t>(spec.num_objects) * spec.num_ticks);
  std::vector<double> xs(spec.num_objects), ys(spec.num_objects);
  for (int o = 0; o < spec.num_objects; ++o) {
    xs[o] = rng.Uniform(0.0, spec.area);
    ys[o] = rng.Uniform(0.0, spec.area);
  }
  for (Timestamp t = 0; t < spec.num_ticks; ++t) {
    for (int o = 0; o < spec.num_objects; ++o) {
      if (t > 0) {
        xs[o] = std::clamp(xs[o] + rng.Uniform(-spec.step, spec.step), 0.0,
                           spec.area);
        ys[o] = std::clamp(ys[o] + rng.Uniform(-spec.step, spec.step), 0.0,
                           spec.area);
      }
      builder.Add(t, static_cast<ObjectId>(o), xs[o], ys[o]);
    }
  }
  return builder.Build();
}

Dataset GeneratePlantedConvoys(const PlantedConvoySpec& spec) {
  Rng rng(spec.seed);
  DatasetBuilder builder;

  ObjectId next_id = 0;
  for (const PlantedGroup& group : spec.groups) {
    // Leader trajectory for the "together" interval.
    const int span = static_cast<int>(group.end - group.start + 1);
    std::vector<double> lx(span), ly(span);
    double x = rng.Uniform(0.0, spec.area);
    double y = rng.Uniform(0.0, spec.area);
    double heading = rng.Uniform(0.0, 6.283185307179586);
    for (int i = 0; i < span; ++i) {
      heading += rng.Uniform(-0.3, 0.3);
      x += group.speed * std::cos(heading);
      y += group.speed * std::sin(heading);
      lx[i] = x;
      ly[i] = y;
    }
    for (int member = 0; member < group.size; ++member) {
      const ObjectId oid = next_id++;
      // Fixed offset around the leader keeps members within
      // member_spacing of each other for the whole interval.
      const double angle = 6.283185307179586 * member / group.size;
      const double ox = 0.5 * spec.member_spacing * std::cos(angle);
      const double oy = 0.5 * spec.member_spacing * std::sin(angle);
      for (Timestamp t = 0; t < spec.num_ticks; ++t) {
        if (t >= group.start && t <= group.end) {
          const int i = static_cast<int>(t - group.start);
          builder.Add(t, oid, lx[i] + ox, ly[i] + oy);
        } else {
          // Scattered far apart outside the convoy interval: each member
          // sits in its own distant corner so no accidental cluster forms.
          const double fx = spec.area * (10.0 + oid * 7.0) +
                            rng.Uniform(0.0, spec.area * 0.001);
          const double fy = spec.area * (10.0 + t * 3.0);
          builder.Add(t, oid, fx, fy);
        }
      }
    }
  }
  for (int n = 0; n < spec.num_noise_objects; ++n) {
    const ObjectId oid = next_id++;
    double x = rng.Uniform(0.0, spec.area);
    double y = rng.Uniform(0.0, spec.area);
    for (Timestamp t = 0; t < spec.num_ticks; ++t) {
      if (t > 0) {
        x = std::clamp(x + rng.Uniform(-spec.noise_step, spec.noise_step), 0.0,
                       spec.area);
        y = std::clamp(y + rng.Uniform(-spec.noise_step, spec.noise_step), 0.0,
                       spec.area);
      }
      builder.Add(t, oid, x, y);
    }
  }
  return builder.Build();
}

}  // namespace k2
