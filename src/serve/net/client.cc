#include "serve/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace k2::net {
namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

K2Client::K2Client(int fd, size_t max_frame_payload)
    : fd_(fd), reader_(max_frame_payload) {}

K2Client::~K2Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<K2Client>> K2Client::Connect(
    const K2ClientOptions& options) {
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1)
    return Status::Invalid("k2_client: '" + options.host +
                           "' is not an IPv4 address");
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("k2_client: socket");
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status = Errno("k2_client: connect " + options.host + ":" +
                                std::to_string(options.port));
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto client = std::unique_ptr<K2Client>(
      new K2Client(fd, options.max_frame_payload));
  HelloRequest hello;  // defaults: exactly kProtocolVersion
  K2_ASSIGN_OR_RETURN(
      const Frame reply,
      client->RoundTrip(MessageType::kHello, EncodeHello(hello),
                        MessageType::kHelloOk));
  K2_ASSIGN_OR_RETURN(client->negotiated_version_,
                      ParseHelloOk(reply.body));
  return client;
}

uint32_t K2Client::Enqueue(MessageType type, std::string_view body) {
  const uint32_t id = next_request_id_++;
  out_ += EncodeFrame(type, id, body);
  return id;
}

Status K2Client::FailConnection(Status status) {
  if (conn_status_.ok()) conn_status_ = status;
  return conn_status_;
}

Status K2Client::Flush() {
  K2_RETURN_NOT_OK(conn_status_);
  size_t sent = 0;
  while (sent < out_.size()) {
    const ssize_t n =
        ::send(fd_, out_.data() + sent, out_.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return FailConnection(Errno("k2_client: send"));
  }
  out_.clear();
  return Status::OK();
}

Result<Frame> K2Client::Receive() {
  K2_RETURN_NOT_OK(conn_status_);
  Frame frame;
  for (;;) {
    switch (reader_.Next(&frame)) {
      case FrameReader::Poll::kFrame:
        return frame;
      case FrameReader::Poll::kError:
        return FailConnection(Status::Invalid(
            "k2_client: reply stream " +
            std::string(WireErrorName(reader_.error())) + ": " +
            reader_.error_message()));
      case FrameReader::Poll::kNeedMore:
        break;
    }
    char buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      reader_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0)
      return FailConnection(
          Status::IOError("k2_client: server closed the connection"));
    return FailConnection(Errno("k2_client: recv"));
  }
}

Result<Frame> K2Client::RoundTrip(MessageType type, std::string_view body,
                                  MessageType want) {
  Enqueue(type, body);
  K2_RETURN_NOT_OK(Flush());
  K2_ASSIGN_OR_RETURN(Frame reply, Receive());
  if (reply.type == want) return reply;
  if (reply.type == MessageType::kError) {
    K2_ASSIGN_OR_RETURN(const ErrorReply error, ParseError(reply.body));
    return ErrorReplyStatus(error);
  }
  return FailConnection(Status::Invalid(
      std::string("k2_client: expected ") + MessageTypeName(want) +
      ", server sent " + MessageTypeName(reply.type)));
}

Status K2Client::Ping() {
  K2_ASSIGN_OR_RETURN([[maybe_unused]] const Frame reply,
                      RoundTrip(MessageType::kPing, {}, MessageType::kPong));
  return Status::OK();
}

Result<IngestAck> K2Client::Ingest(Timestamp t,
                                   std::span<const SnapshotPoint> points) {
  K2_ASSIGN_OR_RETURN(const Frame reply,
                      RoundTrip(MessageType::kIngest, EncodeIngest(t, points),
                                MessageType::kIngestOk));
  return ParseIngestAck(reply.body);
}

Result<PublishAck> K2Client::Publish() {
  K2_ASSIGN_OR_RETURN(
      const Frame reply,
      RoundTrip(MessageType::kPublish, {}, MessageType::kPublishOk));
  return ParsePublishAck(reply.body);
}

Result<std::vector<Convoy>> K2Client::Query(const ConvoyQuery& query) {
  K2_ASSIGN_OR_RETURN(const Frame reply,
                      RoundTrip(MessageType::kQuery, EncodeQuery(query),
                                MessageType::kConvoys));
  return ParseConvoys(reply.body);
}

Result<std::vector<Convoy>> K2Client::TopK(const ConvoyQuery& query,
                                           ConvoyRank rank, uint32_t k) {
  TopKRequest request{query, rank, k};
  K2_ASSIGN_OR_RETURN(const Frame reply,
                      RoundTrip(MessageType::kTopK, EncodeTopK(request),
                                MessageType::kConvoys));
  return ParseConvoys(reply.body);
}

Result<ServerStats> K2Client::Stats() {
  K2_ASSIGN_OR_RETURN(
      const Frame reply,
      RoundTrip(MessageType::kStats, {}, MessageType::kStatsOk));
  return ParseServerStats(reply.body);
}

Status K2Client::Shutdown() {
  K2_ASSIGN_OR_RETURN(
      [[maybe_unused]] const Frame reply,
      RoundTrip(MessageType::kShutdown, {}, MessageType::kShutdownOk));
  return Status::OK();
}

uint32_t K2Client::SendPing() { return Enqueue(MessageType::kPing, {}); }

uint32_t K2Client::SendIngest(Timestamp t,
                              std::span<const SnapshotPoint> points) {
  return Enqueue(MessageType::kIngest, EncodeIngest(t, points));
}

uint32_t K2Client::SendPublish() {
  return Enqueue(MessageType::kPublish, {});
}

uint32_t K2Client::SendQuery(const ConvoyQuery& query) {
  return Enqueue(MessageType::kQuery, EncodeQuery(query));
}

uint32_t K2Client::SendTopK(const ConvoyQuery& query, ConvoyRank rank,
                            uint32_t k) {
  TopKRequest request{query, rank, k};
  return Enqueue(MessageType::kTopK, EncodeTopK(request));
}

uint32_t K2Client::SendStats() { return Enqueue(MessageType::kStats, {}); }

}  // namespace k2::net
