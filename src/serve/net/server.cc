#include "serve/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "common/mutex.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "core/online.h"
#include "serve/catalog.h"
#include "serve/query.h"
#include "storage/memory_store.h"

namespace k2::net {
namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

/// One client connection, owned by exactly one worker for its whole life.
struct Connection {
  explicit Connection(int fd_in, size_t max_payload)
      : fd(fd_in), reader(max_payload) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  int fd = -1;
  FrameReader reader;
  std::string out;      ///< pending reply bytes, [out_pos, size) unsent
  size_t out_pos = 0;
  bool handshaken = false;
  bool close_after_flush = false;
  bool want_write = false;  ///< EPOLLOUT currently armed
};

}  // namespace

struct K2Server::Impl {
  K2ServerOptions options;
  std::vector<int> listen_fds;
  int shutdown_eventfd = -1;
  std::atomic<bool> shutting_down{false};

  // The serving state every worker shares. Queries go through
  // catalog.snapshot() (lock-free); everything touching the single-writer
  // miner or the catalog's write side serializes on ingest_mu. The store is
  // mutated only through the miner (AppendTick under ingest_mu) and read by
  // the catalog's footprint path inside the same critical sections, so it
  // needs no guard of its own. See docs/ARCHITECTURE.md, "Lock discipline".
  MemoryStore store;
  ConvoyCatalog catalog;
  Mutex ingest_mu;
  /// Set once in Start() before any worker exists, then only dereferenced
  /// under ingest_mu; the guard documents (and under clang enforces) the
  /// single-writer serialization of every miner call.
  std::unique_ptr<OnlineK2HopMiner> miner K2_GUARDED_BY(ingest_mu);
  Status serving_status K2_GUARDED_BY(ingest_mu) = Status::OK();

  ~Impl() {
    for (int fd : listen_fds)
      if (fd >= 0) ::close(fd);
    if (shutdown_eventfd >= 0) ::close(shutdown_eventfd);
  }

  void TriggerShutdown() {
    shutting_down.store(true, std::memory_order_release);
    const uint64_t one = 1;
    // The eventfd stays readable until read — and no worker ever reads it,
    // so a single write wakes every epoll loop, now and on re-poll.
    [[maybe_unused]] ssize_t n =
        ::write(shutdown_eventfd, &one, sizeof(one));
  }

  void Reply(Connection* conn, MessageType type, uint32_t request_id,
             std::string_view body) {
    if (body.size() + kMessageHeaderBytes > options.max_frame_payload) {
      // An answer that cannot be framed must not be sent half-framed.
      const std::string err = EncodeError(
          WireError::kInternalError,
          std::string(MessageTypeName(type)) + " reply of " +
              std::to_string(body.size()) + " bytes exceeds the frame cap");
      conn->out += EncodeFrame(MessageType::kError, request_id, err);
      return;
    }
    conn->out += EncodeFrame(type, request_id, body);
  }

  void ReplyError(Connection* conn, uint32_t request_id, WireError error,
                  std::string_view message, bool fatal) {
    Reply(conn, MessageType::kError, request_id, EncodeError(error, message));
    if (fatal) conn->close_after_flush = true;
  }

  ServerStats CurrentStats() {
    ServerStats stats;
    const auto snap = catalog.snapshot();
    stats.epoch = snap->epoch();
    stats.catalog_convoys = snap->size();
    MutexLock lock(ingest_mu);
    stats.frontier = miner->frontier();
    stats.ticks_ingested = miner->stats().ticks_ingested;
    stats.closed_convoys = miner->closed_convoys().size();
    return stats;
  }

  void HandleIngest(Connection* conn, const Frame& frame) {
    auto parsed = ParseIngest(frame.body);
    if (!parsed.ok()) {
      ReplyError(conn, frame.request_id, WireError::kMalformedBody,
                 parsed.status().message(), /*fatal=*/false);
      return;
    }
    if (shutting_down.load(std::memory_order_acquire)) {
      ReplyError(conn, frame.request_id, WireError::kShuttingDown,
                 "server is draining; tick not ingested", /*fatal=*/false);
      return;
    }
    IngestAck ack;
    {
      MutexLock lock(ingest_mu);
      if (!serving_status.ok()) {
        ReplyError(conn, frame.request_id, WireError::kInternalError,
                   serving_status.ToString(), /*fatal=*/false);
        return;
      }
      IngestRequest& req = parsed.value();
      const Status status = miner->AppendTick(req.t, std::move(req.points));
      if (!status.ok()) {
        // Precondition rejections (kInvalid) leave the miner reusable; any
        // other failure poisoned the stream and becomes sticky server-wide.
        if (status.code() != StatusCode::kInvalid) serving_status = status;
        ReplyError(conn, frame.request_id,
                   status.code() == StatusCode::kInvalid
                       ? WireError::kIngestRejected
                       : WireError::kInternalError,
                   status.ToString(), /*fatal=*/false);
        return;
      }
      if (!catalog.hook_status().ok()) {
        serving_status = catalog.hook_status();
        ReplyError(conn, frame.request_id, WireError::kInternalError,
                   serving_status.ToString(), /*fatal=*/false);
        return;
      }
      ack.frontier = miner->frontier();
      ack.closed_convoys = miner->closed_convoys().size();
    }
    Reply(conn, MessageType::kIngestOk, frame.request_id,
          EncodeIngestAck(ack));
  }

  void HandlePublish(Connection* conn, const Frame& frame) {
    PublishAck ack;
    {
      MutexLock lock(ingest_mu);
      const auto snap = catalog.Publish();
      ack.epoch = snap->epoch();
      ack.convoys = snap->size();
    }
    Reply(conn, MessageType::kPublishOk, frame.request_id,
          EncodePublishAck(ack));
  }

  void HandleQuery(Connection* conn, const Frame& frame) {
    auto parsed = ParseQuery(frame.body);
    if (!parsed.ok()) {
      ReplyError(conn, frame.request_id, WireError::kMalformedBody,
                 parsed.status().message(), /*fatal=*/false);
      return;
    }
    // Lock-free read path: pin one snapshot, answer, drop the pin. The
    // Convoy copies below detach the reply from the snapshot's lifetime.
    const auto snap = catalog.snapshot();
    std::vector<ConvoyId> ids;
    ConvoyQueryEngine::FindIds(*snap, parsed.value(), &ids);
    std::vector<Convoy> convoys;
    convoys.reserve(ids.size());
    for (ConvoyId id : ids) convoys.push_back(snap->convoy(id));
    Reply(conn, MessageType::kConvoys, frame.request_id,
          EncodeConvoys(convoys));
  }

  void HandleTopK(Connection* conn, const Frame& frame) {
    auto parsed = ParseTopK(frame.body);
    if (!parsed.ok()) {
      ReplyError(conn, frame.request_id, WireError::kMalformedBody,
                 parsed.status().message(), /*fatal=*/false);
      return;
    }
    const TopKRequest& req = parsed.value();
    const auto snap = catalog.snapshot();
    std::vector<ConvoyId> ids;
    ConvoyQueryEngine::TopKIds(*snap, req.query, req.rank, req.k, &ids);
    std::vector<Convoy> convoys;
    convoys.reserve(ids.size());
    for (ConvoyId id : ids) convoys.push_back(snap->convoy(id));
    Reply(conn, MessageType::kConvoys, frame.request_id,
          EncodeConvoys(convoys));
  }

  void HandleFrame(Connection* conn, const Frame& frame) {
    if (!conn->handshaken) {
      if (frame.type != MessageType::kHello) {
        ReplyError(conn, frame.request_id, WireError::kUnexpectedMessage,
                   std::string(MessageTypeName(frame.type)) +
                       " before the Hello handshake",
                   /*fatal=*/true);
        return;
      }
      auto hello = ParseHello(frame.body);
      if (!hello.ok()) {
        ReplyError(conn, frame.request_id, WireError::kMalformedBody,
                   hello.status().message(), /*fatal=*/true);
        return;
      }
      if (hello.value().min_version > kProtocolVersion ||
          hello.value().max_version < kProtocolVersion) {
        ReplyError(conn, frame.request_id, WireError::kBadVersion,
                   "client speaks versions [" +
                       std::to_string(hello.value().min_version) + ", " +
                       std::to_string(hello.value().max_version) +
                       "], server speaks " + std::to_string(kProtocolVersion),
                   /*fatal=*/true);
        return;
      }
      conn->handshaken = true;
      Reply(conn, MessageType::kHelloOk, frame.request_id,
            EncodeHelloOk(kProtocolVersion));
      return;
    }
    switch (frame.type) {
      case MessageType::kPing:
        Reply(conn, MessageType::kPong, frame.request_id, {});
        return;
      case MessageType::kIngest:
        HandleIngest(conn, frame);
        return;
      case MessageType::kPublish:
        HandlePublish(conn, frame);
        return;
      case MessageType::kQuery:
        HandleQuery(conn, frame);
        return;
      case MessageType::kTopK:
        HandleTopK(conn, frame);
        return;
      case MessageType::kStats:
        Reply(conn, MessageType::kStatsOk, frame.request_id,
              EncodeServerStats(CurrentStats()));
        return;
      case MessageType::kShutdown:
        Reply(conn, MessageType::kShutdownOk, frame.request_id, {});
        conn->close_after_flush = true;
        TriggerShutdown();
        return;
      default:
        // kHello twice, or a server-to-client type sent by the client.
        ReplyError(conn, frame.request_id, WireError::kUnexpectedMessage,
                   std::string(MessageTypeName(frame.type)) +
                       " is not a valid client request here",
                   /*fatal=*/true);
        return;
    }
  }

  /// Handles every complete frame currently buffered. Returns false when
  /// the connection entered a fatal state (kError already queued).
  void ProcessFrames(Connection* conn) {
    Frame frame;
    while (!conn->close_after_flush) {
      const FrameReader::Poll poll = conn->reader.Next(&frame);
      if (poll == FrameReader::Poll::kNeedMore) return;
      if (poll == FrameReader::Poll::kError) {
        ReplyError(conn, 0, conn->reader.error(),
                   conn->reader.error_message(), /*fatal=*/true);
        return;
      }
      HandleFrame(conn, frame);
    }
  }

  /// Non-blocking send of the pending reply bytes; returns false on a dead
  /// socket.
  bool FlushOut(Connection* conn) {
    while (conn->out_pos < conn->out.size()) {
      const ssize_t n =
          ::send(conn->fd, conn->out.data() + conn->out_pos,
                 conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_pos += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;  // peer is gone
    }
    conn->out.clear();
    conn->out_pos = 0;
    return true;
  }

  /// Blocking flush with a deadline — the shutdown drain path.
  void FlushDeadline(Connection* conn, int timeout_ms) {
    Stopwatch sw;
    while (conn->out_pos < conn->out.size()) {
      if (!FlushOut(conn)) return;
      if (conn->out_pos >= conn->out.size()) return;
      const int elapsed_ms = static_cast<int>(sw.ElapsedSeconds() * 1e3);
      if (elapsed_ms >= timeout_ms) return;
      struct pollfd pfd = {conn->fd, POLLOUT, 0};
      ::poll(&pfd, 1, timeout_ms - elapsed_ms);
    }
  }

  void WorkerLoop(size_t worker_index) {
    const int listen_fd = listen_fds[worker_index];
    const int ep = ::epoll_create1(EPOLL_CLOEXEC);
    if (ep < 0) return;
    struct epoll_event ev = {};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd;
    ::epoll_ctl(ep, EPOLL_CTL_ADD, listen_fd, &ev);
    ev.data.fd = shutdown_eventfd;
    ::epoll_ctl(ep, EPOLL_CTL_ADD, shutdown_eventfd, &ev);

    std::unordered_map<int, std::unique_ptr<Connection>> conns;

    auto close_conn = [&](int fd) {
      ::epoll_ctl(ep, EPOLL_CTL_DEL, fd, nullptr);
      conns.erase(fd);  // destructor closes the socket
    };
    auto update_interest = [&](Connection* conn) {
      const bool want_write = conn->out_pos < conn->out.size();
      if (want_write == conn->want_write) return;
      struct epoll_event cev = {};
      cev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
      cev.data.fd = conn->fd;
      ::epoll_ctl(ep, EPOLL_CTL_MOD, conn->fd, &cev);
      conn->want_write = want_write;
    };

    struct epoll_event events[64];
    bool stop = false;
    while (!stop) {
      const int n = ::epoll_wait(ep, events, 64, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n && !stop; ++i) {
        const int fd = events[i].data.fd;
        if (fd == shutdown_eventfd) {
          stop = true;
          continue;
        }
        if (fd == listen_fd) {
          for (;;) {
            const int cfd = ::accept4(listen_fd, nullptr, nullptr,
                                      SOCK_NONBLOCK | SOCK_CLOEXEC);
            if (cfd < 0) break;
            if (shutting_down.load(std::memory_order_acquire)) {
              ::close(cfd);
              continue;
            }
            const int one = 1;
            ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            auto conn = std::make_unique<Connection>(
                cfd, options.max_frame_payload);
            struct epoll_event cev = {};
            cev.events = EPOLLIN;
            cev.data.fd = cfd;
            if (::epoll_ctl(ep, EPOLL_CTL_ADD, cfd, &cev) == 0)
              conns.emplace(cfd, std::move(conn));
          }
          continue;
        }
        auto it = conns.find(fd);
        if (it == conns.end()) continue;
        Connection* conn = it->second.get();

        bool dead = false;
        bool peer_closed = false;
        if (events[i].events & (EPOLLHUP | EPOLLERR)) peer_closed = true;
        if (events[i].events & EPOLLIN) {
          char buf[64 * 1024];
          for (;;) {
            const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
            if (r > 0) {
              conn->reader.Feed(buf, static_cast<size_t>(r));
              continue;
            }
            if (r == 0) {
              peer_closed = true;
              break;
            }
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            dead = true;
            break;
          }
        }
        if (dead) {
          close_conn(fd);
          continue;
        }
        ProcessFrames(conn);
        if (!FlushOut(conn)) {
          close_conn(fd);
          continue;
        }
        const bool drained = conn->out_pos >= conn->out.size();
        if ((peer_closed || conn->close_after_flush) && drained) {
          close_conn(fd);
          continue;
        }
        if (peer_closed && !drained) {
          // Peer half-closed but replies are still pending: keep the fd
          // until the flush completes (or the send fails).
          conn->close_after_flush = true;
        }
        update_interest(conn);
      }
    }

    // Stop accepting first: closing the listener RSTs any connection the
    // kernel queued but no worker ever saw, so post-shutdown clients get a
    // clean refusal instead of a silent black hole. Each worker owns its
    // slot, so writing -1 here does not race the other workers.
    ::epoll_ctl(ep, EPOLL_CTL_DEL, listen_fd, nullptr);
    ::close(listen_fd);
    listen_fds[worker_index] = -1;

    // Drain: every request already received in full is answered; reply
    // buffers flush under the deadline; then everything closes. No new
    // bytes are read, so requests torn mid-frame simply vanish.
    for (auto& [fd, conn] : conns) {
      ProcessFrames(conn.get());
      FlushDeadline(conn.get(), options.drain_timeout_ms);
      ::epoll_ctl(ep, EPOLL_CTL_DEL, fd, nullptr);
    }
    conns.clear();
    ::close(ep);
  }
};

K2ServerOptions K2ServerOptions::FromEnv() {
  K2ServerOptions options;
  if (const char* host = std::getenv("K2_SERVER_HOST"))
    if (*host != '\0') options.host = host;
  options.port =
      static_cast<uint16_t>(EnvInt("K2_SERVER_PORT", options.port));
  options.num_workers = EnvInt("K2_SERVER_WORKERS", options.num_workers);
  options.publish_every = static_cast<size_t>(
      EnvInt("K2_SERVER_PUBLISH_EVERY",
             static_cast<int>(options.publish_every)));
  const int max_mb = EnvInt(
      "K2_SERVER_MAX_FRAME_MB",
      static_cast<int>(options.max_frame_payload >> 20));
  if (max_mb > 0)
    options.max_frame_payload = static_cast<size_t>(max_mb) << 20;
  options.drain_timeout_ms =
      EnvInt("K2_SERVER_DRAIN_TIMEOUT_MS", options.drain_timeout_ms);
  return options;
}

K2Server::K2Server(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

Result<std::unique_ptr<K2Server>> K2Server::Start(K2ServerOptions options) {
  if (options.publish_every == 0) options.publish_every = 1;
  int workers = options.num_workers;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) workers = 1;
    if (workers > 16) workers = 16;
  }

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1)
    return Status::Invalid("k2_server: '" + options.host +
                           "' is not an IPv4 address");

  auto impl = std::make_unique<Impl>();
  impl->options = options;
  impl->shutdown_eventfd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (impl->shutdown_eventfd < 0) return Errno("k2_server: eventfd");

  uint16_t bound_port = options.port;
  for (int i = 0; i < workers; ++i) {
    const int fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) return Errno("k2_server: socket");
    impl->listen_fds.push_back(fd);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0)
      return Errno("k2_server: SO_REUSEPORT");
    // Listener 0 resolves port 0 to a concrete ephemeral port; the other
    // SO_REUSEPORT listeners then bind that same port.
    addr.sin_port = htons(bound_port);
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0)
      return Errno("k2_server: bind " + options.host + ":" +
                   std::to_string(bound_port));
    if (i == 0 && bound_port == 0) {
      struct sockaddr_in actual = {};
      socklen_t len = sizeof(actual);
      if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&actual),
                        &len) != 0)
        return Errno("k2_server: getsockname");
      bound_port = ntohs(actual.sin_port);
    }
    if (::listen(fd, 512) != 0) return Errno("k2_server: listen");
  }

  // The miner must see an empty store; both are freshly constructed here.
  OnlineK2HopOptions mining;
  mining.on_closed =
      impl->catalog.OnClosedHook(&impl->store, options.publish_every);
  {
    // No worker thread exists yet; the lock satisfies miner's guard.
    MutexLock lock(impl->ingest_mu);
    impl->miner = std::make_unique<OnlineK2HopMiner>(&impl->store,
                                                     options.params, mining);
  }
  // Epoch 1 exists before the first ingest, so early readers pin an empty
  // published snapshot instead of racing the first on_closed publish.
  impl->catalog.Publish();

  auto server = std::unique_ptr<K2Server>(new K2Server(std::move(impl)));
  server->port_ = bound_port;
  server->running_.store(true, std::memory_order_release);
  for (int i = 0; i < workers; ++i) {
    Impl* impl_ptr = server->impl_.get();
    const size_t index = static_cast<size_t>(i);
    server->workers_.emplace_back(
        [impl_ptr, index] { impl_ptr->WorkerLoop(index); });
  }
  return server;
}

K2Server::~K2Server() {
  RequestShutdown();
  Wait();
}

void K2Server::RequestShutdown() { impl_->TriggerShutdown(); }

void K2Server::Wait() {
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
  running_.store(false, std::memory_order_release);
}

int K2Server::shutdown_fd() const { return impl_->shutdown_eventfd; }

Status K2Server::serving_status() const {
  MutexLock lock(impl_->ingest_mu);
  return impl_->serving_status;
}

ServerStats K2Server::stats() const { return impl_->CurrentStats(); }

}  // namespace k2::net
