// Property suites for the runtime-dispatched SIMD kernel layer: every
// vector implementation must be byte-identical to the scalar oracle on
// randomized inputs covering unaligned bases, all tail lengths up to well
// past 2x the widest lane group, adversarial set shapes (overlap-heavy,
// disjoint, skewed enough to take the gallop path, equal, empty), and
// extreme NaN-free coordinates. Run under K2_SIMD=scalar|sse42|avx2 the
// suites still pass: they pit At(level) against At(kScalar) directly, for
// every level the host supports.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "cluster/grid_index.h"
#include "common/crc32c.h"
#include "common/object_set.h"
#include "common/simd.h"
#include "common/types.h"

namespace k2 {
namespace {

constexpr uint32_t kSentinel = 0xDEADBEEFu;

std::vector<simd::Level> SupportedVectorLevels() {
  std::vector<simd::Level> levels;
  for (simd::Level level : {simd::Level::kSse42, simd::Level::kAvx2}) {
    if (simd::Supported(level)) levels.push_back(level);
  }
  return levels;
}

// Sorted duplicate-free draw of up to `max_size` values from [0, universe).
std::vector<uint32_t> RandomSet(std::mt19937* rng, size_t max_size,
                                uint32_t universe) {
  std::uniform_int_distribution<size_t> size_dist(0, max_size);
  std::uniform_int_distribution<uint32_t> value_dist(0, universe - 1);
  std::vector<uint32_t> v(size_dist(*rng));
  for (auto& x : v) x = value_dist(*rng);
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

// ---------------------------------------------------------------------------
// Dispatch plumbing
// ---------------------------------------------------------------------------

TEST(SimdDispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(simd::Supported(simd::Level::kScalar));
  EXPECT_STREQ(simd::LevelName(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::LevelName(simd::Level::kSse42), "sse42");
  EXPECT_STREQ(simd::LevelName(simd::Level::kAvx2), "avx2");
}

TEST(SimdDispatchTest, ActiveLevelIsSupportedAndStable) {
  const simd::Level active = simd::ActiveLevel();
  EXPECT_TRUE(simd::Supported(active));
  EXPECT_LE(static_cast<int>(active),
            static_cast<int>(simd::MaxSupportedLevel()));
  EXPECT_EQ(&simd::Active(), &simd::At(active));
}

TEST(SimdDispatchTest, EveryLevelTableFullyPopulated) {
  for (simd::Level level :
       {simd::Level::kScalar, simd::Level::kSse42, simd::Level::kAvx2}) {
    if (!simd::Supported(level)) continue;
    const simd::Kernels& k = simd::At(level);
    EXPECT_NE(k.eps_scan, nullptr);
    EXPECT_NE(k.intersect, nullptr);
    EXPECT_NE(k.intersect_size, nullptr);
    EXPECT_NE(k.is_subset, nullptr);
    EXPECT_NE(k.crc32c, nullptr);
  }
}

// ---------------------------------------------------------------------------
// eps_scan
// ---------------------------------------------------------------------------

class EpsScanProperty : public ::testing::Test {
 protected:
  // Runs one randomized comparison: scalar vs `level` on identical input,
  // from an `offset`-element-unaligned base, checking count, payload, and
  // that nothing was written at or past index n.
  void Check(simd::Level level, std::mt19937* rng, size_t n, size_t offset,
             double coord_scale) {
    std::uniform_real_distribution<double> coord(-coord_scale, coord_scale);
    // Slack before (alignment offset) and after (overrun detection).
    std::vector<double> xs(offset + n), ys(offset + n);
    std::vector<uint32_t> ids(offset + n);
    for (size_t j = 0; j < offset + n; ++j) {
      xs[j] = coord(*rng);
      ys[j] = coord(*rng);
      ids[j] = static_cast<uint32_t>(j) * 7u + 1u;
    }
    const double qx = coord(*rng);
    const double qy = coord(*rng);
    // eps2 spans "matches nothing" to "matches everything".
    std::uniform_real_distribution<double> frac(0.0, 2.0);
    const double eps2 = frac(*rng) * coord_scale * coord_scale;

    constexpr size_t kPad = 16;
    std::vector<uint32_t> want(n + kPad, kSentinel);
    std::vector<uint32_t> got(n + kPad, kSentinel);
    const size_t want_n = simd::At(simd::Level::kScalar)
                              .eps_scan(xs.data() + offset, ys.data() + offset,
                                        ids.data() + offset, n, qx, qy, eps2,
                                        want.data());
    const size_t got_n = simd::At(level).eps_scan(
        xs.data() + offset, ys.data() + offset, ids.data() + offset, n, qx,
        qy, eps2, got.data());
    ASSERT_EQ(got_n, want_n) << "level=" << simd::LevelName(level)
                             << " n=" << n << " offset=" << offset;
    for (size_t j = 0; j < got_n; ++j) {
      ASSERT_EQ(got[j], want[j]) << "level=" << simd::LevelName(level)
                                 << " n=" << n << " at " << j;
    }
    // The compress-store slack contract: writes stay strictly below out + n.
    for (size_t j = n; j < n + kPad; ++j) {
      ASSERT_EQ(got[j], kSentinel)
          << "level=" << simd::LevelName(level) << " wrote past out+" << n;
    }
  }
};

TEST_F(EpsScanProperty, MatchesScalarOnAllTailLengthsAndAlignments) {
  std::mt19937 rng(20260807);
  for (simd::Level level : SupportedVectorLevels()) {
    // Every length 0..2x the widest lane group and beyond, every base
    // misalignment 0..3 elements.
    for (size_t n = 0; n <= 40; ++n) {
      for (size_t offset = 0; offset < 4; ++offset) {
        Check(level, &rng, n, offset, 100.0);
      }
    }
    // Larger random shapes.
    std::uniform_int_distribution<size_t> n_dist(41, 512);
    for (int it = 0; it < 200; ++it) {
      Check(level, &rng, n_dist(rng), it % 4, 100.0);
    }
  }
}

TEST_F(EpsScanProperty, MatchesScalarOnExtremeCoordinates) {
  std::mt19937 rng(7);
  for (simd::Level level : SupportedVectorLevels()) {
    for (const double scale : {1e-12, 1e-3, 1e6, 1e150, 1e300}) {
      for (int it = 0; it < 50; ++it) {
        Check(level, &rng, 37, it % 4, scale);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// intersect / intersect_size / is_subset
// ---------------------------------------------------------------------------

struct SetCase {
  std::vector<uint32_t> a, b;
  std::string tag;
};

std::vector<SetCase> AdversarialSetCases(std::mt19937* rng) {
  std::vector<SetCase> cases;
  // Overlap-heavy: both drawn from a universe barely larger than the sets.
  for (int it = 0; it < 120; ++it) {
    cases.push_back({RandomSet(rng, 64, 80), RandomSet(rng, 64, 80),
                     "overlap-heavy"});
  }
  // Sparse: large universe, occasional matches.
  for (int it = 0; it < 80; ++it) {
    cases.push_back(
        {RandomSet(rng, 128, 1 << 20), RandomSet(rng, 128, 1 << 20),
         "sparse"});
  }
  // Disjoint by construction: a in even, b in odd values.
  for (int it = 0; it < 40; ++it) {
    SetCase c{RandomSet(rng, 64, 1000), RandomSet(rng, 64, 1000), "disjoint"};
    for (auto& x : c.a) x *= 2;
    for (auto& x : c.b) x = x * 2 + 1;
    cases.push_back(std::move(c));
  }
  // Skewed hard enough to take the gallop path, both directions.
  for (int it = 0; it < 40; ++it) {
    cases.push_back(
        {RandomSet(rng, 4, 1 << 16), RandomSet(rng, 2000, 1 << 16),
         "gallop-ab"});
    cases.push_back(
        {RandomSet(rng, 2000, 1 << 16), RandomSet(rng, 4, 1 << 16),
         "gallop-ba"});
  }
  // Subset by construction: a is a sample of b.
  for (int it = 0; it < 60; ++it) {
    SetCase c;
    c.b = RandomSet(rng, 200, 4000);
    std::uniform_int_distribution<int> keep(0, 2);
    for (uint32_t x : c.b) {
      if (keep(*rng) == 0) c.a.push_back(x);
    }
    c.tag = "subset";
    cases.push_back(std::move(c));
  }
  // Near-subset: one element of a perturbed off b.
  for (int it = 0; it < 60; ++it) {
    SetCase c;
    c.b = RandomSet(rng, 200, 4000);
    for (size_t j = 0; j < c.b.size(); j += 2) c.a.push_back(c.b[j]);
    if (!c.a.empty()) {
      std::uniform_int_distribution<size_t> pick(0, c.a.size() - 1);
      c.a[pick(*rng)] += 1;  // may or may not still be in b
      std::sort(c.a.begin(), c.a.end());
      c.a.erase(std::unique(c.a.begin(), c.a.end()), c.a.end());
    }
    c.tag = "near-subset";
    cases.push_back(std::move(c));
  }
  // Equal, empty-vs-nonempty, both-empty, single elements.
  const auto fixed = RandomSet(rng, 100, 1000);
  cases.push_back({fixed, fixed, "equal"});
  cases.push_back({{}, fixed, "empty-a"});
  cases.push_back({fixed, {}, "empty-b"});
  cases.push_back({{}, {}, "both-empty"});
  cases.push_back({{42}, fixed, "singleton"});
  // All tail lengths around the 8-lane block boundary.
  for (size_t na = 0; na <= 20; ++na) {
    for (size_t nb : {size_t{0}, size_t{7}, size_t{8}, size_t{9}, size_t{16},
                      size_t{17}}) {
      cases.push_back({RandomSet(rng, na, 32), RandomSet(rng, nb, 32),
                       "tail-sweep"});
    }
  }
  return cases;
}

TEST(SetKernelProperty, IntersectMatchesScalarOracle) {
  std::mt19937 rng(123);
  const auto cases = AdversarialSetCases(&rng);
  for (simd::Level level : SupportedVectorLevels()) {
    const simd::Kernels& k = simd::At(level);
    const simd::Kernels& oracle = simd::At(simd::Level::kScalar);
    for (const SetCase& c : cases) {
      const size_t cap = std::min(c.a.size(), c.b.size());
      constexpr size_t kPad = 16;
      std::vector<uint32_t> want(cap + simd::kMaxLaneSlack + kPad, kSentinel);
      std::vector<uint32_t> got(cap + simd::kMaxLaneSlack + kPad, kSentinel);
      const size_t want_n = oracle.intersect(c.a.data(), c.a.size(),
                                             c.b.data(), c.b.size(),
                                             want.data());
      const size_t got_n = k.intersect(c.a.data(), c.a.size(), c.b.data(),
                                       c.b.size(), got.data());
      ASSERT_EQ(got_n, want_n)
          << "level=" << simd::LevelName(level) << " tag=" << c.tag;
      ASSERT_LE(got_n, cap);
      for (size_t j = 0; j < got_n; ++j) {
        ASSERT_EQ(got[j], want[j])
            << "level=" << simd::LevelName(level) << " tag=" << c.tag;
      }
      // Slack contract: writes stay within min(na, nb) + kMaxLaneSlack.
      for (size_t j = cap + simd::kMaxLaneSlack; j < got.size(); ++j) {
        ASSERT_EQ(got[j], kSentinel)
            << "level=" << simd::LevelName(level) << " tag=" << c.tag
            << " wrote past min(na, nb) + kMaxLaneSlack";
      }
    }
  }
}

TEST(SetKernelProperty, IntersectSizeAndSubsetMatchScalarOracle) {
  std::mt19937 rng(456);
  const auto cases = AdversarialSetCases(&rng);
  for (simd::Level level : SupportedVectorLevels()) {
    const simd::Kernels& k = simd::At(level);
    const simd::Kernels& oracle = simd::At(simd::Level::kScalar);
    for (const SetCase& c : cases) {
      ASSERT_EQ(
          k.intersect_size(c.a.data(), c.a.size(), c.b.data(), c.b.size()),
          oracle.intersect_size(c.a.data(), c.a.size(), c.b.data(),
                                c.b.size()))
          << "level=" << simd::LevelName(level) << " tag=" << c.tag;
      ASSERT_EQ(k.is_subset(c.a.data(), c.a.size(), c.b.data(), c.b.size()),
                oracle.is_subset(c.a.data(), c.a.size(), c.b.data(),
                                 c.b.size()))
          << "level=" << simd::LevelName(level) << " tag=" << c.tag
          << " (a subset of b)";
      ASSERT_EQ(k.is_subset(c.b.data(), c.b.size(), c.a.data(), c.a.size()),
                oracle.is_subset(c.b.data(), c.b.size(), c.a.data(),
                                 c.a.size()))
          << "level=" << simd::LevelName(level) << " tag=" << c.tag
          << " (b subset of a)";
    }
  }
}

// The public ObjectSet algebra rides the dispatched kernels; pin it against
// the std:: reference algorithms on the same adversarial shapes.
TEST(SetKernelProperty, ObjectSetAlgebraMatchesStdReference) {
  std::mt19937 rng(789);
  const auto cases = AdversarialSetCases(&rng);
  for (const SetCase& c : cases) {
    const ObjectSet a = ObjectSet::FromSorted(c.a);
    const ObjectSet b = ObjectSet::FromSorted(c.b);
    std::vector<uint32_t> want;
    std::set_intersection(c.a.begin(), c.a.end(), c.b.begin(), c.b.end(),
                          std::back_inserter(want));
    EXPECT_EQ(ObjectSet::Intersect(a, b).ids(), want) << c.tag;
    EXPECT_EQ(ObjectSet::IntersectionSize(a, b), want.size()) << c.tag;
    EXPECT_EQ(a.IsSubsetOf(b),
              c.a.size() <= c.b.size() &&
                  std::includes(c.b.begin(), c.b.end(), c.a.begin(),
                                c.a.end()))
        << c.tag;
  }
}

// ---------------------------------------------------------------------------
// crc32c
// ---------------------------------------------------------------------------

TEST(CrcKernelProperty, MatchesScalarOnAllShortLengths) {
  std::mt19937 rng(1);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<uint32_t> seed_dist;
  for (simd::Level level : SupportedVectorLevels()) {
    const simd::Kernels& k = simd::At(level);
    const simd::Kernels& oracle = simd::At(simd::Level::kScalar);
    for (size_t n = 0; n <= 200; ++n) {
      std::vector<uint8_t> data(n + 8);
      for (auto& x : data) x = static_cast<uint8_t>(byte(rng));
      const uint32_t seed = (n % 3 == 0) ? 0u : seed_dist(rng);
      for (size_t offset = 0; offset < 8; offset += (n % 2) ? 3 : 1) {
        ASSERT_EQ(k.crc32c(data.data() + offset, n, seed),
                  oracle.crc32c(data.data() + offset, n, seed))
            << "level=" << simd::LevelName(level) << " n=" << n
            << " offset=" << offset;
      }
    }
  }
}

TEST(CrcKernelProperty, MatchesScalarAcrossStreamInterleaveBoundaries) {
  std::mt19937 rng(2);
  std::uniform_int_distribution<int> byte(0, 255);
  // 3 * 1024 is the interleave block; hit every boundary behavior.
  const size_t kBlock = 3 * 1024;
  for (simd::Level level : SupportedVectorLevels()) {
    const simd::Kernels& k = simd::At(level);
    const simd::Kernels& oracle = simd::At(simd::Level::kScalar);
    for (const size_t n :
         {kBlock - 1, kBlock, kBlock + 1, kBlock + 7, 2 * kBlock - 3,
          2 * kBlock, 3 * kBlock + 5, size_t{100000}}) {
      std::vector<uint8_t> data(n);
      for (auto& x : data) x = static_cast<uint8_t>(byte(rng));
      ASSERT_EQ(k.crc32c(data.data(), n, 0),
                oracle.crc32c(data.data(), n, 0))
          << "level=" << simd::LevelName(level) << " n=" << n;
      ASSERT_EQ(k.crc32c(data.data(), n, 0x12345678u),
                oracle.crc32c(data.data(), n, 0x12345678u))
          << "level=" << simd::LevelName(level) << " n=" << n << " seeded";
    }
  }
}

TEST(CrcKernelProperty, SeedChainingEqualsOneShot) {
  std::mt19937 rng(3);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<size_t> split_dist;
  for (simd::Level level : SupportedVectorLevels()) {
    const simd::Kernels& k = simd::At(level);
    for (const size_t n : {size_t{1}, size_t{100}, size_t{5000}}) {
      std::vector<uint8_t> data(n);
      for (auto& x : data) x = static_cast<uint8_t>(byte(rng));
      const size_t split = split_dist(rng) % (n + 1);
      const uint32_t whole = k.crc32c(data.data(), n, 0);
      const uint32_t part = k.crc32c(data.data(), split, 0);
      ASSERT_EQ(k.crc32c(data.data() + split, n - split, part), whole)
          << "level=" << simd::LevelName(level) << " n=" << n
          << " split=" << split;
    }
  }
}

TEST(CrcKernelProperty, PublicEntryPointKnownAnswer) {
  // RFC 3720 test vector: CRC-32C of 32 zero bytes.
  const uint8_t zeros[32] = {};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
  // "123456789" is the classic check value.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

// ---------------------------------------------------------------------------
// GridIndex::NeighborsBatch ≡ per-point Neighbors
// ---------------------------------------------------------------------------

TEST(NeighborsBatchProperty, EqualsPerPointNeighbors) {
  std::mt19937 rng(44);
  std::uniform_real_distribution<double> coord(0.0, 100.0);
  for (int it = 0; it < 20; ++it) {
    std::uniform_int_distribution<size_t> n_dist(1, 400);
    const size_t n = n_dist(rng);
    std::vector<SnapshotPoint> points(n);
    for (size_t i = 0; i < n; ++i) {
      points[i] = {static_cast<ObjectId>(i), coord(rng), coord(rng)};
    }
    const double eps = 3.0;
    GridIndex grid(points, eps);

    std::vector<uint32_t> queries;
    std::uniform_int_distribution<int> pick(0, 2);
    for (size_t i = 0; i < n; ++i) {
      if (pick(rng) == 0) queries.push_back(static_cast<uint32_t>(i));
    }

    std::vector<uint32_t> flat, offsets;
    grid.NeighborsBatch(queries, eps, &flat, &offsets);
    ASSERT_EQ(offsets.size(), queries.size() + 1);
    for (size_t q = 0; q < queries.size(); ++q) {
      std::vector<uint32_t> want;
      grid.Neighbors(queries[q], eps, &want);
      const std::vector<uint32_t> got(flat.begin() + offsets[q],
                                      flat.begin() + offsets[q + 1]);
      ASSERT_EQ(got, want) << "query " << q;
    }
  }
}

}  // namespace
}  // namespace k2
