#include "cluster/dbscan.h"

#include <algorithm>
#include <optional>

#include "cluster/grid_index.h"

namespace k2 {

namespace {

// Region query used below: grid-indexed for large snapshots, brute force
// for the tiny re-clusterings that dominate HWMT / extension / validation
// (building a hash grid for 3-10 points costs more than scanning them).
constexpr size_t kBruteForceThreshold = 32;

void BruteForceNeighbors(std::span<const SnapshotPoint> points, size_t i,
                         double eps, std::vector<uint32_t>* out) {
  const double eps2 = eps * eps;
  const SnapshotPoint& p = points[i];
  for (size_t j = 0; j < points.size(); ++j) {
    const double dx = points[j].x - p.x;
    const double dy = points[j].y - p.y;
    if (dx * dx + dy * dy <= eps2) out->push_back(static_cast<uint32_t>(j));
  }
}

// Shared worker: labels every point, returns labels + cluster count.
DbscanLabels RunDbscan(std::span<const SnapshotPoint> points, double eps,
                       int min_pts) {
  DbscanLabels out;
  const size_t n = points.size();
  out.label.assign(n, -1);
  if (n == 0 || min_pts <= 0) return out;

  std::optional<GridIndex> index;
  if (n > kBruteForceThreshold) index.emplace(points, eps);
  auto region_query = [&](size_t i, std::vector<uint32_t>* nbrs) {
    nbrs->clear();
    if (index.has_value()) {
      index->Neighbors(i, eps, nbrs);
    } else {
      BruteForceNeighbors(points, i, eps, nbrs);
    }
  };

  std::vector<bool> visited(n, false);
  std::vector<uint32_t> neighbors;
  std::vector<uint32_t> seeds;

  for (size_t i = 0; i < n; ++i) {
    if (visited[i]) continue;
    visited[i] = true;
    region_query(i, &neighbors);
    if (neighbors.size() < static_cast<size_t>(min_pts)) continue;  // noise or border

    const int32_t cluster = out.num_clusters++;
    out.label[i] = cluster;
    seeds.assign(neighbors.begin(), neighbors.end());
    // Classic ExpandCluster: the seed list grows while new core points are
    // discovered; border points get the cluster of the first core reaching
    // them.
    for (size_t s = 0; s < seeds.size(); ++s) {
      const uint32_t j = seeds[s];
      if (!visited[j]) {
        visited[j] = true;
        region_query(j, &neighbors);
        if (neighbors.size() >= static_cast<size_t>(min_pts)) {
          seeds.insert(seeds.end(), neighbors.begin(), neighbors.end());
        }
      }
      if (out.label[j] < 0) out.label[j] = cluster;
    }
  }
  return out;
}

std::vector<ObjectSet> LabelsToClusters(std::span<const SnapshotPoint> points,
                                        const DbscanLabels& labels,
                                        int min_pts) {
  std::vector<std::vector<ObjectId>> members(labels.num_clusters);
  for (size_t i = 0; i < points.size(); ++i) {
    if (labels.label[i] >= 0) {
      members[labels.label[i]].push_back(points[i].oid);
    }
  }
  std::vector<ObjectSet> clusters;
  clusters.reserve(members.size());
  for (auto& ids : members) {
    if (ids.size() < static_cast<size_t>(min_pts)) continue;
    clusters.emplace_back(std::move(ids));
  }
  std::sort(clusters.begin(), clusters.end());
  return clusters;
}

}  // namespace

std::vector<ObjectSet> Dbscan(std::span<const SnapshotPoint> points,
                              double eps, int min_pts) {
  DbscanLabels labels = RunDbscan(points, eps, min_pts);
  return LabelsToClusters(points, labels, min_pts);
}

std::vector<ObjectSet> DbscanSubset(std::span<const SnapshotPoint> points,
                                    const ObjectSet& subset, double eps,
                                    int min_pts) {
  std::vector<SnapshotPoint> filtered;
  filtered.reserve(subset.size());
  for (const SnapshotPoint& p : points) {
    if (subset.Contains(p.oid)) filtered.push_back(p);
  }
  return Dbscan(filtered, eps, min_pts);
}

DbscanLabels DbscanLabelled(std::span<const SnapshotPoint> points, double eps,
                            int min_pts) {
  return RunDbscan(points, eps, min_pts);
}

}  // namespace k2
