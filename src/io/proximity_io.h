// Proximity-log interchange: CSV (for importing real co-location traces —
// Bluetooth sightings, Wi-Fi session joins — as `(t, oid_a, oid_b)` rows)
// and a fixed-width binary format for fast reload between bench runs.
#ifndef K2_IO_PROXIMITY_IO_H_
#define K2_IO_PROXIMITY_IO_H_

#include <string>

#include "common/status.h"
#include "model/proximity.h"

namespace k2 {

/// Writes "t,oid_a,oid_b" rows with a header line, in canonical order.
Status WriteProximityCsv(const ProximityLog& log, const std::string& path);

/// Reads a CSV produced by WriteProximityCsv (or any file with a
/// t,oid_a,oid_b header in any column order). Rows that fail to parse, and
/// self-loop rows (oid_a == oid_b), yield an error; unordered duplicates
/// are canonicalized like ProximityLog::FromRecords.
Result<ProximityLog> ReadProximityCsv(const std::string& path);

/// Binary round-trip: a small header plus packed PairRecords.
Status WriteProximityBinary(const ProximityLog& log, const std::string& path);
Result<ProximityLog> ReadProximityBinary(const std::string& path);

}  // namespace k2

#endif  // K2_IO_PROXIMITY_IO_H_
