// Synthetic road network shared by the Brinkhoff-style, Trucks-like and
// T-Drive-like generators: a jittered grid with street classes (side street,
// main road, highway), per-class speeds, and an A* shortest-time router.
// This substitutes the Brinkhoff generator's real map input (DESIGN.md,
// substitution table).
#ifndef K2_GEN_ROAD_NETWORK_H_
#define K2_GEN_ROAD_NETWORK_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace k2 {

struct RoadNode {
  double x = 0.0;
  double y = 0.0;
};

struct RoadEdge {
  uint32_t to = 0;
  double length = 0.0;       // metres
  double speed = 0.0;        // metres per tick
  int edge_class = 0;        // 0 = side street, 1 = main road, 2 = highway
};

class RoadNetwork {
 public:
  struct GridSpec {
    int nx = 20;
    int ny = 20;
    double spacing = 500.0;     // metres between neighbouring intersections
    double jitter = 80.0;       // positional noise on intersections
    int highway_every = 5;      // every n-th row/column is a highway
    double side_speed = 120.0;  // metres per tick
    double main_speed = 240.0;
    double highway_speed = 420.0;
    double drop_probability = 0.08;  // removal rate for side-street edges
  };

  /// Builds a perturbed-grid network; deterministic given `seed`.
  static RoadNetwork MakeGrid(const GridSpec& spec, uint64_t seed);

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return num_edges_; }
  const RoadNode& node(uint32_t id) const { return nodes_[id]; }
  const std::vector<RoadEdge>& OutEdges(uint32_t id) const {
    return adjacency_[id];
  }

  /// Bounding box of the node set.
  double width() const { return width_; }
  double height() const { return height_; }

  /// A* over travel time. Returns false when `dst` is unreachable. The path
  /// includes both endpoints.
  bool FindPath(uint32_t src, uint32_t dst, std::vector<uint32_t>* path) const;

  /// Node closest to (x, y); linear scan, used only during setup.
  uint32_t NearestNode(double x, double y) const;

  /// A uniformly random node id.
  uint32_t RandomNode(Rng* rng) const {
    return static_cast<uint32_t>(rng->NextInt(nodes_.size()));
  }

 private:
  std::vector<RoadNode> nodes_;
  std::vector<std::vector<RoadEdge>> adjacency_;
  size_t num_edges_ = 0;
  double width_ = 0.0;
  double height_ = 0.0;
  double max_speed_ = 1.0;
};

/// Moves an object along a node path at per-edge speeds; positions are
/// sampled once per tick. Interpolates linearly along edges.
class PathMover {
 public:
  PathMover(const RoadNetwork* net, std::vector<uint32_t> path);

  /// Advances one tick and returns the new position; `done()` turns true
  /// when the destination has been reached.
  RoadNode Step();
  RoadNode Position() const { return position_; }
  bool done() const { return done_; }

 private:
  const RoadNetwork* net_;
  std::vector<uint32_t> path_;
  size_t leg_ = 0;           // index into path_ of the current edge start
  double offset_ = 0.0;      // metres travelled along the current leg
  RoadNode position_;
  bool done_ = false;
};

}  // namespace k2

#endif  // K2_GEN_ROAD_NETWORK_H_
