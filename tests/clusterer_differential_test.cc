// Differential proof obligations of the pluggable clustering substrate:
//
//  1. The geometric clusterer THROUGH the SnapshotClusterer seam is
//     byte-identical to the default MineK2Hop path on every fixture.
//  2. The graph core fed a snapshot's materialized eps-graph reproduces
//     DBSCAN's clusters exactly — per snapshot (EpsGraphClusterer and
//     CoLocationGraphClusterer over eps-pairs) and through whole mining
//     runs (MineK2Hop with the epsgraph clusterer).
//  3. The coordinate-free end-to-end scenario: all three miners (batch,
//     online, partitioned) over a presence store + co-location clusterer
//     produce byte-identical convoys, and recover planted cliques exactly.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/clusterer.h"
#include "cluster/dbscan.h"
#include "cluster/graph_clusterer.h"
#include "cluster/store_clustering.h"
#include "core/k2hop.h"
#include "core/online.h"
#include "core/partition.h"
#include "gen/proximity_gen.h"
#include "gen/synthetic.h"
#include "model/proximity.h"
#include "storage/lsm_store.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::MakeMemStore;
using ::k2::testing::ScratchDir;
using ::k2::testing::Str;

// ---------------------------------------------------------------------------
// Geometric fixtures (random walks)
// ---------------------------------------------------------------------------

struct GeoCase {
  uint64_t seed;
  int num_objects;
  int num_ticks;
  double area;
  int m;
  int k;
  double eps;
};

std::string GeoCaseName(const ::testing::TestParamInfo<GeoCase>& info) {
  const GeoCase& c = info.param;
  return "seed" + std::to_string(c.seed) + "_n" +
         std::to_string(c.num_objects) + "_t" + std::to_string(c.num_ticks) +
         "_m" + std::to_string(c.m) + "_k" + std::to_string(c.k);
}

class ClustererGeoDifferentialTest : public ::testing::TestWithParam<GeoCase> {
 protected:
  Dataset MakeData() const {
    const GeoCase& c = GetParam();
    RandomWalkSpec spec;
    spec.seed = c.seed;
    spec.num_objects = c.num_objects;
    spec.num_ticks = c.num_ticks;
    spec.area = c.area;
    spec.step = c.area / 8.0;
    return GenerateRandomWalk(spec);
  }
  MiningParams Params() const {
    const GeoCase& c = GetParam();
    return MiningParams{c.m, c.k, c.eps};
  }
};

TEST_P(ClustererGeoDifferentialTest, SeamRoutedMinersMatchDefault) {
  const Dataset data = MakeData();
  auto store = MakeMemStore(data);
  const MiningParams params = Params();
  auto expected = MineK2Hop(store.get(), params);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  const GeometricClusterer geometric;
  MiningParams via_geometric = params;
  via_geometric.clusterer = &geometric;
  auto geo = MineK2Hop(store.get(), via_geometric);
  ASSERT_TRUE(geo.ok()) << geo.status().ToString();
  EXPECT_EQ(geo.value(), expected.value()) << "geometric-through-seam\n"
                                           << Str(geo.value());

  const EpsGraphClusterer epsgraph;
  MiningParams via_graph = params;
  via_graph.clusterer = &epsgraph;
  auto graph = MineK2Hop(store.get(), via_graph);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph.value(), expected.value())
      << "epsgraph:\n"
      << Str(graph.value()) << "expected:\n"
      << Str(expected.value());
}

TEST_P(ClustererGeoDifferentialTest, PerSnapshotThreeWayAgreement) {
  const Dataset data = MakeData();
  const MiningParams params = Params();

  // Materialize eps-pairs per tick; the co-location clusterer over them
  // must agree with geometric DBSCAN on every snapshot.
  std::vector<PairRecord> pairs;
  for (Timestamp t : data.timestamps()) {
    const auto snap = data.Snapshot(t);
    for (size_t i = 0; i < snap.size(); ++i) {
      for (size_t j = i + 1; j < snap.size(); ++j) {
        const double dx = snap[i].x - snap[j].x;
        const double dy = snap[i].y - snap[j].y;
        if (dx * dx + dy * dy <= params.eps * params.eps) {
          pairs.push_back(PairRecord{t, snap[i].oid, snap[j].oid});
        }
      }
    }
  }
  const ProximityLog log = ProximityLog::FromRecords(std::move(pairs));
  auto presence_store = MakeMemStore(log.PresenceDataset());
  const CoLocationGraphClusterer colocation(&log);
  MiningParams graph_params = params;
  graph_params.clusterer = &colocation;

  SnapshotScratch scratch;
  for (Timestamp t : data.timestamps()) {
    const std::vector<SnapshotPoint> points = SnapshotPoints(data, t);
    const std::vector<ObjectSet> dbscan =
        Dbscan(points, params.eps, params.m);
    EXPECT_EQ(EpsGraphClusters(points, params.eps, params.m, &scratch),
              dbscan)
        << "epsgraph tick " << t;
    auto via_log = ClusterSnapshot(presence_store.get(), t, graph_params);
    ASSERT_TRUE(via_log.ok());
    EXPECT_EQ(via_log.value(), dbscan) << "colocation tick " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, ClustererGeoDifferentialTest,
    ::testing::Values(GeoCase{1, 30, 24, 60.0, 2, 3, 8.0},
                      GeoCase{2, 40, 30, 50.0, 3, 4, 7.0},
                      GeoCase{3, 60, 20, 40.0, 2, 2, 5.0},
                      GeoCase{4, 25, 40, 80.0, 4, 5, 12.0},
                      GeoCase{5, 80, 16, 45.0, 3, 3, 6.0},
                      GeoCase{6, 50, 50, 70.0, 2, 6, 9.0}),
    GeoCaseName);

// ---------------------------------------------------------------------------
// Coordinate-free end to end (proximity logs)
// ---------------------------------------------------------------------------

struct ProxCase {
  uint64_t seed;
  int num_noise;
  int num_ticks;
  double noise_prob;
  std::vector<PlantedProximityGroup> groups;
  int m;
  int k;
};

std::string ProxCaseName(const ::testing::TestParamInfo<ProxCase>& info) {
  const ProxCase& c = info.param;
  return "seed" + std::to_string(c.seed) + "_noise" +
         std::to_string(c.num_noise) + "_t" + std::to_string(c.num_ticks) +
         "_g" + std::to_string(c.groups.size()) + "_m" + std::to_string(c.m) +
         "_k" + std::to_string(c.k);
}

class ProximityDifferentialTest : public ::testing::TestWithParam<ProxCase> {
 protected:
  ProximityLog MakeLog() const {
    const ProxCase& c = GetParam();
    PlantedProximitySpec spec;
    spec.seed = c.seed;
    spec.num_noise_objects = c.num_noise;
    spec.num_ticks = c.num_ticks;
    spec.noise_pair_prob = c.noise_prob;
    spec.groups = c.groups;
    return GeneratePlantedProximity(spec);
  }
  MiningParams Params(const CoLocationGraphClusterer* clusterer) const {
    const ProxCase& c = GetParam();
    MiningParams params{c.m, c.k, /*eps=*/0.0};
    params.clusterer = clusterer;
    return params;
  }
};

TEST_P(ProximityDifferentialTest, BatchOnlinePartitionedAreByteIdentical) {
  const ProximityLog log = MakeLog();
  const Dataset presence = log.PresenceDataset();
  const CoLocationGraphClusterer colocation(&log);
  const MiningParams params = Params(&colocation);
  const std::string tag = ProxCaseName(
      ::testing::TestParamInfo<ProxCase>(GetParam(), 0));

  // Batch, on both a memory store and the full LSM engine.
  auto mem_store = MakeMemStore(presence);
  auto batch = MineK2Hop(mem_store.get(), params);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  {
    LsmStoreOptions options;
    auto lsm = std::make_unique<LsmStore>(
        ScratchDir("prox_diff_" + tag) + "/lsmt", options);
    ASSERT_TRUE(lsm->init_status().ok());
    ASSERT_TRUE(lsm->BulkLoad(presence).ok());
    auto lsm_batch = MineK2Hop(lsm.get(), params);
    ASSERT_TRUE(lsm_batch.ok()) << lsm_batch.status().ToString();
    EXPECT_EQ(lsm_batch.value(), batch.value()) << "lsmt vs memory";
  }

  // Online: stream presence ticks, finalize.
  {
    MemoryStore stream_store;
    OnlineK2HopMiner miner(&stream_store, params);
    for (Timestamp t : presence.timestamps()) {
      ASSERT_TRUE(miner.AppendTick(t, SnapshotPoints(presence, t)).ok())
          << "tick " << t;
    }
    auto online = miner.Finalize();
    ASSERT_TRUE(online.ok()) << online.status().ToString();
    EXPECT_EQ(online.value(), batch.value())
        << "online:\n"
        << Str(online.value()) << "batch:\n"
        << Str(batch.value());
  }

  // Partitioned, a few shard counts.
  for (const int shards : {2, 3, 5}) {
    PartitionedK2HopOptions options;
    options.num_shards = shards;
    auto partitioned = MinePartitionedK2Hop(mem_store.get(), params, options);
    ASSERT_TRUE(partitioned.ok()) << partitioned.status().ToString();
    EXPECT_EQ(partitioned.value(), batch.value())
        << "partitioned P=" << shards;
  }
}

TEST_P(ProximityDifferentialTest, NoiselessLogsRecoverPlantedTruthExactly) {
  const ProxCase& c = GetParam();
  if (c.noise_prob > 0.0) GTEST_SKIP() << "exact truth needs a noiseless log";
  const ProximityLog log = MakeLog();
  const CoLocationGraphClusterer colocation(&log);
  auto store = MakeMemStore(log.PresenceDataset());
  auto mined = MineK2Hop(store.get(), Params(&colocation));
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();

  std::vector<Convoy> expected;
  ObjectId next_id = 0;
  for (const PlantedProximityGroup& g : c.groups) {
    std::vector<ObjectId> ids;
    for (int i = 0; i < g.size; ++i) ids.push_back(next_id++);
    if (g.size >= c.m && g.end - g.start + 1 >= c.k) {
      expected.emplace_back(ObjectSet(ids), g.start, g.end);
    }
  }
  EXPECT_SAME_CONVOYS(mined.value(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, ProximityDifferentialTest,
    ::testing::Values(
        // Noiseless: exact planted recovery + miner equality.
        ProxCase{1, 10, 30, 0.0, {{3, 4, 20}, {4, 10, 29}}, 3, 4},
        ProxCase{2, 8, 40, 0.0, {{5, 0, 15}, {3, 20, 39}, {4, 5, 34}}, 3, 5},
        ProxCase{3, 0, 25, 0.0, {{2, 0, 24}}, 2, 3},
        // Noisy: adversarial for the miners' pruning; equality only.
        ProxCase{4, 25, 36, 0.03, {{3, 2, 18}, {4, 12, 33}}, 3, 4},
        ProxCase{5, 40, 30, 0.05, {{4, 0, 29}}, 2, 3},
        ProxCase{6, 30, 48, 0.02, {{5, 6, 28}, {3, 30, 47}}, 3, 6}),
    ProxCaseName);

}  // namespace
}  // namespace k2
