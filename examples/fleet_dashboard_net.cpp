// Fleet dashboard over the wire — the network serving layer end to end in
// one process: a real k2_server (epoll event loop on an ephemeral loopback
// port), a feeder connection streaming city traffic through kIngest, and a
// dashboard connection that concurrently tails the live catalog with
// ConvoyQuery round trips — exactly how an operations screen would sit on
// a production k2_server, just without the second machine.
//
// The wire protocol is specified in docs/WIRE_PROTOCOL.md; server knobs
// and deployment guidance live in docs/OPERATIONS.md.
#include <atomic>
#include <iostream>
#include <thread>

#include "common/convoy.h"
#include "gen/brinkhoff.h"
#include "model/dataset.h"
#include "serve/net/client.h"
#include "serve/net/server.h"
#include "serve/query.h"

namespace {

void PrintConvoys(const std::string& title,
                  const std::vector<k2::Convoy>& convoys, size_t limit = 5) {
  std::cout << title << " (" << convoys.size() << ")\n";
  for (size_t i = 0; i < std::min(limit, convoys.size()); ++i) {
    const k2::Convoy& v = convoys[i];
    std::cout << "    " << v.objects.size() << " objects, ticks [" << v.start
              << ", " << v.end << "] (" << v.length()
              << " long): " << v.objects.DebugString() << "\n";
  }
  if (convoys.size() > limit) {
    std::cout << "    ... and " << convoys.size() - limit << " more\n";
  }
}

}  // namespace

int main() {
  // City traffic for two simulated hours.
  k2::BrinkhoffParams gen;
  gen.grid.nx = 6;
  gen.grid.ny = 6;
  gen.grid.spacing = 500.0;
  gen.max_time = 120;
  gen.obj_begin = 150;
  gen.obj_time = 4;
  gen.seed = 13;
  const k2::Dataset traffic = k2::GenerateBrinkhoff(gen);
  std::cout << "fleet: " << traffic.DebugString() << "\n";

  // A real server on an ephemeral loopback port: thread-per-core epoll
  // workers, ingest wired into an online k/2-hop miner, every closed
  // convoy published to the live catalog immediately.
  k2::net::K2ServerOptions options;
  options.port = 0;
  options.params = k2::MiningParams{2, 8, 150.0};
  options.publish_every = 1;
  auto server = k2::net::K2Server::Start(options);
  if (!server.ok()) {
    std::cerr << "server start failed: " << server.status().ToString() << "\n";
    return 1;
  }
  std::cout << "k2_server on 127.0.0.1:" << server.value()->port() << " ("
            << server.value()->num_workers() << " workers)\n\n";

  // The dashboard tails the live catalog over its own connection while the
  // feeder below is still streaming: lock-free snapshot reads server-side,
  // so neither connection ever blocks the other.
  std::atomic<bool> done{false};
  std::thread dashboard([&] {
    auto client = k2::net::K2Client::Connect({"127.0.0.1",
                                              server.value()->port()});
    if (!client.ok()) return;
    uint64_t last_seen = 0;
    while (!done.load(std::memory_order_acquire)) {
      auto stats = client.value()->Stats();
      if (stats.ok() && stats.value().catalog_convoys != last_seen) {
        last_seen = stats.value().catalog_convoys;
        std::cout << "  [live] tick " << stats.value().frontier << ": "
                  << last_seen << " convoys on the board\n";
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  // Feeder: one tick per kIngest round trip, like a fleet gateway would.
  {
    auto feeder = k2::net::K2Client::Connect({"127.0.0.1",
                                              server.value()->port()});
    if (!feeder.ok()) {
      std::cerr << "feeder connect failed\n";
      return 1;
    }
    for (k2::Timestamp t : traffic.timestamps()) {
      auto ack = feeder.value()->Ingest(t, k2::SnapshotPoints(traffic, t));
      if (!ack.ok()) {
        std::cerr << "ingest failed: " << ack.status().ToString() << "\n";
        return 1;
      }
    }
    auto published = feeder.value()->Publish();
    if (!published.ok()) return 1;
    std::cout << "\nstream complete: epoch " << published.value().epoch
              << ", " << published.value().convoys << " convoys published\n\n";
  }
  done.store(true, std::memory_order_release);
  dashboard.join();

  // The operator console: every query type, over the wire.
  auto console = k2::net::K2Client::Connect({"127.0.0.1",
                                             server.value()->port()});
  if (!console.ok()) return 1;
  k2::net::K2Client& client = *console.value();

  k2::ConvoyQuery by_object;
  by_object.object = 3;
  if (auto r = client.Query(by_object); r.ok())
    PrintConvoys("convoys containing vehicle 3", r.value());

  k2::ConvoyQuery rush;
  rush.time_window = k2::TimeRange{30, 60};
  if (auto r = client.Query(rush); r.ok())
    PrintConvoys("alive during the rush window [30, 60]", r.value());

  k2::ConvoyQuery depot;
  depot.region = k2::Rect{0.0, 0.0, 1000.0, 1000.0};
  if (auto r = client.Query(depot); r.ok())
    PrintConvoys("passing the depot area", r.value());

  if (auto r = client.TopK({}, k2::ConvoyRank::kLongest, 3); r.ok())
    PrintConvoys("top 3 by duration", r.value());

  k2::ConvoyQuery composed = rush;
  composed.region = depot.region;
  if (auto r = client.TopK(composed, k2::ConvoyRank::kLargest, 3); r.ok())
    PrintConvoys("largest in rush window AND depot area", r.value());

  // Graceful shutdown: in-flight queries drain before the catalog dies.
  if (!client.Shutdown().ok()) return 1;
  server.value()->Wait();
  std::cout << "\nserver drained and shut down cleanly\n";
  return 0;
}
