// Clustering primitives expressed against the Store interface — the two data
// access patterns of k/2-hop (Sec. 5): full-snapshot clustering at benchmark
// points and restricted re-clustering of candidate objects elsewhere. Both
// dispatch through the SnapshotClusterer carried by MiningParams (defaulting
// to the geometric DBSCAN substrate), so every miner calling these functions
// works on any clustering substrate unchanged.
#ifndef K2_CLUSTER_STORE_CLUSTERING_H_
#define K2_CLUSTER_STORE_CLUSTERING_H_

#include <vector>

#include "cluster/clusterer.h"
#include "common/mutex.h"
#include "common/object_set.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/store.h"

namespace k2 {

/// Scans the full snapshot at `t` and returns its clusters under
/// `params` (for the default geometric clusterer: the (m,eps)-clusters).
///
/// The scratch overloads reuse `scratch` across calls (allocation-free in
/// steady state). Store implementations are not thread-safe: when several
/// threads share one store, pass the same `store_mu` to every call and only
/// the fetch is serialized — clustering runs outside the lock.
Result<std::vector<ObjectSet>> ClusterSnapshot(Store* store, Timestamp t,
                                               const MiningParams& params);
Result<std::vector<ObjectSet>> ClusterSnapshot(Store* store, Timestamp t,
                                               const MiningParams& params,
                                               SnapshotScratch* scratch,
                                               Mutex* store_mu = nullptr);

/// reCluster(DB[t]|O): fetches only the points of `objects` at `t` (random
/// point reads) and clusters them. This is the pruned access path.
Result<std::vector<ObjectSet>> ReCluster(Store* store, Timestamp t,
                                         const ObjectSet& objects,
                                         const MiningParams& params);
Result<std::vector<ObjectSet>> ReCluster(Store* store, Timestamp t,
                                         const ObjectSet& objects,
                                         const MiningParams& params,
                                         SnapshotScratch* scratch,
                                         Mutex* store_mu = nullptr);

}  // namespace k2

#endif  // K2_CLUSTER_STORE_CLUSTERING_H_
