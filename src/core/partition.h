// Time-sharded partitioned k/2-hop mining. The pipeline is embarrassingly
// parallel across the timeline once spanning convoys can be stitched back
// together (the partition-and-merge idea of the authors' DCM follow-up):
// the ⌊k/2⌋ benchmark grid is split into P contiguous shards of hop-windows,
// each shard runs the full per-window pipeline (benchmark clustering,
// candidate clusters, HWMT, local DCM merge) against its own read snapshot
// of the store, and a sequential stitch walks the shard seams, carrying the
// spanning-convoy fold state across boundaries. Extension walks and FC
// validation then fan out per convoy, and the batch maximality barriers are
// replayed over the gathered results — the output is byte-identical to
// batch MineK2Hop for every shard and thread count (asserted by the
// partitioned differential suite).
//
// A shard is the distribution unit: it touches only its own tick slice
// (plus the shared boundary benchmarks) through a self-contained store
// handle, so moving a shard to another process needs nothing but its plan
// entry and the seam exchange of (spanning sets, active fold state).
#ifndef K2_CORE_PARTITION_H_
#define K2_CORE_PARTITION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/k2hop.h"

namespace k2 {

struct PartitionedK2HopOptions {
  /// Number of time shards; 0 = one per worker thread. Always clamped to
  /// the number of hop-windows (a shard mines at least one window).
  int num_shards = 0;
  /// Worker threads driving shards and per-convoy extension/validation;
  /// 0 = hardware_concurrency, 1 = sequential (still sharded and stitched,
  /// which is what the differential suite exercises).
  int num_threads = 0;
  /// Same ablation switches as K2HopOptions; keep them equal to the batch
  /// run being compared against.
  bool hwmt_binary_order = true;
  bool candidate_pruning = true;
  bool validate = true;
};

/// One shard of the plan: a contiguous run of hop-windows of the global
/// benchmark grid.
struct ShardPlan {
  size_t first_window = 0;  ///< index into the global window sequence
  size_t num_windows = 0;
  /// Tick range the shard reads for its windows:
  /// [benchmarks[first_window], benchmarks[first_window + num_windows]].
  /// Adjacent shards share the boundary benchmark tick — each re-clusters
  /// it independently, which is the ⌊k/2⌋-aligned overlap margin that
  /// makes shards self-contained.
  TimeRange ticks;

  size_t num_benchmarks() const { return num_windows + 1; }
};

/// Splits the `benchmarks.size() - 1` hop-windows into at most `num_shards`
/// contiguous shards with near-equal window counts (earlier shards take the
/// remainder). Fewer shards come back when there are fewer windows than
/// requested; an empty plan when there is no window at all.
std::vector<ShardPlan> PlanShards(const std::vector<Timestamp>& benchmarks,
                                  int num_shards);

/// Per-shard outcome, for the bench tables and seam diagnostics.
struct ShardRunStats {
  TimeRange ticks;
  HopWindowPipelineStats pipeline;
  size_t local_merged = 0;  ///< convoys that died inside the shard's fold
  size_t seam_active = 0;   ///< fold entries still spanning the right seam
  double seconds = 0.0;     ///< shard wall time (overlaps other shards)
  IoStats io;               ///< IO through the shard's snapshot
};

struct PartitionedK2HopStats {
  /// Wall time per phase: "plan" (planning + snapshot setup), "shards"
  /// (the concurrent per-shard pipelines, wall not CPU), "stitch",
  /// "extend-right", "extend-left", "validation".
  PhaseTimer phases;
  size_t shards = 0;
  size_t benchmark_points = 0;  ///< global grid size
  size_t hop_windows = 0;
  size_t seams = 0;          ///< shard boundaries (shards - 1)
  size_t seams_crossed = 0;  ///< seams with a convoy spanning them
  size_t stitch_replays = 0; ///< shards replayed through the global fold
  size_t adopted_folds = 0;  ///< shards whose local fold was adopted as-is
  size_t spanning_convoys = 0;
  size_t merged_convoys = 0;
  size_t prevalidation_convoys = 0;
  ValidationStats validation;
  /// Store IO: parent-store delta plus every snapshot's own counters
  /// (excluding snapshot setup), so Table-5 style pruning numbers stay
  /// comparable with the batch miner.
  IoStats io;
  uint64_t total_points = 0;
  std::vector<ShardRunStats> shard_runs;

  uint64_t points_processed() const { return io.points_read(); }
  double pruning_ratio() const { return PruningRatio(io, total_points); }
  std::string DebugString() const;
};

/// Mines all maximal fully connected (m,eps)-convoys with lifespan >= k by
/// sharding the timeline. Byte-identical to MineK2Hop over the same store
/// and parameters for every option combination.
class PartitionedK2HopMiner {
 public:
  /// `store` is borrowed and must outlive the miner; it must not be
  /// mutated while Mine() runs (snapshots of it are live).
  PartitionedK2HopMiner(Store* store, const MiningParams& params,
                        PartitionedK2HopOptions options = {});

  /// Runs the partitioned pipeline once. May be called repeatedly (each
  /// call resets the stats).
  Result<std::vector<Convoy>> Mine();

  const PartitionedK2HopStats& stats() const { return stats_; }

 private:
  Store* store_;
  MiningParams params_;
  PartitionedK2HopOptions options_;
  PartitionedK2HopStats stats_;
};

/// Convenience one-shot wrapper; `stats` may be null.
Result<std::vector<Convoy>> MinePartitionedK2Hop(
    Store* store, const MiningParams& params,
    const PartitionedK2HopOptions& options = {},
    PartitionedK2HopStats* stats = nullptr);

}  // namespace k2

#endif  // K2_CORE_PARTITION_H_
