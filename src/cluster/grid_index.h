// Uniform-grid spatial index over one snapshot. With cell size = eps, the
// eps-neighbourhood of a point is contained in the 3x3 block of cells around
// it, so DBSCAN's region queries run in expected O(1) per point instead of
// the O(n) scan that the paper identifies as the bottleneck of the baselines.
#ifndef K2_CLUSTER_GRID_INDEX_H_
#define K2_CLUSTER_GRID_INDEX_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace k2 {

class GridIndex {
 public:
  /// Indexes `points` with square cells of side `cell_size` (> 0). The span
  /// must stay alive for the lifetime of the index.
  GridIndex(std::span<const SnapshotPoint> points, double cell_size);

  /// Appends to `out` the indices of all points within `eps` of point `i`
  /// (including `i` itself), matching NH(p, eps) of paper Sec. 3.1.
  /// `eps` must be <= the cell size used at construction.
  void Neighbors(size_t i, double eps, std::vector<uint32_t>* out) const;

  /// Same query for an arbitrary location.
  void NeighborsOf(double x, double y, double eps,
                   std::vector<uint32_t>* out) const;

  size_t num_points() const { return points_.size(); }
  size_t num_cells() const { return cells_.size(); }

 private:
  /// Packs a signed cell coordinate pair into one 64-bit map key.
  static uint64_t PackKey(int64_t cx, int64_t cy) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(cy));
  }

  int64_t CellCoord(double v) const {
    return static_cast<int64_t>(std::floor(v / cell_size_));
  }

  std::span<const SnapshotPoint> points_;
  double cell_size_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> cells_;
};

}  // namespace k2

#endif  // K2_CLUSTER_GRID_INDEX_H_
