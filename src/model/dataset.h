// In-memory canonical representation of a movement dataset: records sorted
// by the composite key (t, oid) with a per-timestamp extent directory, so a
// snapshot (all objects at one tick, paper Sec. 3.2) is an O(1) slice.
#ifndef K2_MODEL_DATASET_H_
#define K2_MODEL_DATASET_H_

#include <cstddef>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace k2 {

/// Time-ordered movement dataset. Immutable except for AppendSnapshot,
/// which grows the dataset at the time frontier without disturbing any
/// existing record (the streaming ingest path).
class Dataset {
 public:
  Dataset() = default;

  /// Records in (t, oid) order.
  const std::vector<PointRecord>& records() const { return records_; }
  size_t num_points() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Number of distinct object ids.
  size_t num_objects() const { return object_ids_.size(); }

  /// Inclusive tick range covered by the data; empty range when no records.
  TimeRange time_range() const { return time_range_; }

  /// Distinct timestamps that actually carry data, ascending.
  const std::vector<Timestamp>& timestamps() const { return timestamps_; }

  /// All records at tick `t`; empty span when the tick carries no data.
  std::span<const PointRecord> Snapshot(Timestamp t) const;

  /// Position of object `oid` at tick `t`, or nullptr when absent.
  const PointRecord* Find(Timestamp t, ObjectId oid) const;

  /// Restriction DB|O of the dataset to the given objects (Def. 4),
  /// optionally also restricted to ticks in `range`.
  Dataset Restrict(const std::vector<ObjectId>& sorted_oids,
                   TimeRange range) const;

  /// Appends one complete snapshot at tick `t`, which must be strictly
  /// greater than time_range().end; `points` must be sorted by oid and
  /// duplicate-free. Empty snapshots are a no-op (a tick without data is
  /// not part of the dataset). All invariants (extent directory, object
  /// count, time range) are maintained incrementally.
  Status AppendSnapshot(Timestamp t,
                        const std::vector<SnapshotPoint>& points);

  /// One-line summary: points, objects, tick range.
  std::string DebugString() const;

 private:
  friend class DatasetBuilder;

  std::vector<PointRecord> records_;
  // extent_[i] = first record index of timestamps_[i]; extent_ has one extra
  // trailing entry equal to records_.size().
  std::vector<size_t> extents_;
  std::vector<Timestamp> timestamps_;
  std::unordered_set<ObjectId> object_ids_;
  TimeRange time_range_{0, -1};
};

/// The snapshot of `dataset` at tick `t` as the oid-sorted SnapshotPoint
/// vector Store::Append expects — the bridge from a materialized dataset to
/// the streaming ingest path.
std::vector<SnapshotPoint> SnapshotPoints(const Dataset& dataset, Timestamp t);

/// Accumulates rows in any order and finalizes them into a Dataset.
class DatasetBuilder {
 public:
  void Add(Timestamp t, ObjectId oid, double x, double y) {
    rows_.push_back(PointRecord{t, oid, x, y});
  }
  void Add(const PointRecord& rec) { rows_.push_back(rec); }

  void Reserve(size_t n) { rows_.reserve(n); }
  size_t size() const { return rows_.size(); }

  /// Sorts by (t, oid), drops duplicate (t, oid) keys (keeping the first
  /// occurrence), builds the extent directory, and returns the dataset.
  /// The builder is left empty.
  Dataset Build();

 private:
  std::vector<PointRecord> rows_;
};

}  // namespace k2

#endif  // K2_MODEL_DATASET_H_
