// Wire-protocol and k2_server tests: property/fuzz coverage of the frame
// codec (random frames round-trip byte-identical; truncated, bit-flipped,
// and oversize frames fail with named errors and never yield a frame), and
// in-process end-to-end coverage of K2Server + K2Client — differential
// query answers vs ConvoyQueryEngine, pipelining, error scoping, and
// graceful shutdown. The smoke tier runs under ASan/UBSan and TSan in CI.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "common/rng.h"
#include "core/online.h"
#include "gen/synthetic.h"
#include "model/dataset.h"
#include "serve/catalog.h"
#include "serve/net/client.h"
#include "serve/net/protocol.h"
#include "serve/net/server.h"
#include "serve/query.h"
#include "storage/memory_store.h"
#include "tests/test_util.h"

namespace k2::net {
namespace {

constexpr MessageType kAllTypes[] = {
    MessageType::kHello,    MessageType::kHelloOk,  MessageType::kPing,
    MessageType::kPong,     MessageType::kIngest,   MessageType::kIngestOk,
    MessageType::kPublish,  MessageType::kPublishOk, MessageType::kQuery,
    MessageType::kTopK,     MessageType::kConvoys,  MessageType::kStats,
    MessageType::kStatsOk,  MessageType::kShutdown, MessageType::kShutdownOk,
    MessageType::kError,
};

std::string RandomBytes(Rng* rng, size_t n) {
  std::string bytes(n, '\0');
  for (char& c : bytes) c = static_cast<char>(rng->NextInt(256));
  return bytes;
}

bool IsFrameLevelError(WireError error) {
  switch (error) {
    case WireError::kBadCrc:
    case WireError::kOversizeFrame:
    case WireError::kTruncatedFrame:
    case WireError::kBadVersion:
    case WireError::kBadMessageType:
      return true;
    default:
      return false;
  }
}

// --- frame codec properties ----------------------------------------------

TEST(FrameCodec, RandomFramesRoundTripThroughRandomChunks) {
  Rng rng(1);
  for (int iter = 0; iter < 200; ++iter) {
    const MessageType type = kAllTypes[rng.NextInt(std::size(kAllTypes))];
    const uint32_t request_id = static_cast<uint32_t>(rng.Next());
    const std::string body = RandomBytes(&rng, rng.NextInt(600));
    const std::string wire = EncodeFrame(type, request_id, body);

    FrameReader reader;
    Frame frame;
    size_t fed = 0;
    while (fed < wire.size()) {
      ASSERT_EQ(reader.Next(&frame), FrameReader::Poll::kNeedMore);
      const size_t chunk =
          std::min(wire.size() - fed, 1 + rng.NextInt(40));
      reader.Feed(wire.data() + fed, chunk);
      fed += chunk;
    }
    ASSERT_EQ(reader.Next(&frame), FrameReader::Poll::kFrame);
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.request_id, request_id);
    EXPECT_EQ(frame.body, body);
    EXPECT_EQ(frame.version, kProtocolVersion);
    // Re-encoding the decoded frame reproduces the wire bytes exactly.
    EXPECT_EQ(EncodeFrame(frame.type, frame.request_id, frame.body), wire);
    EXPECT_EQ(reader.Next(&frame), FrameReader::Poll::kNeedMore);
    EXPECT_EQ(reader.buffered(), 0u);
  }
}

TEST(FrameCodec, ManyFramesBackToBack) {
  Rng rng(2);
  std::string wire;
  std::vector<std::string> bodies;
  for (int i = 0; i < 50; ++i) {
    bodies.push_back(RandomBytes(&rng, rng.NextInt(100)));
    wire += EncodeFrame(MessageType::kPing, static_cast<uint32_t>(i),
                        bodies.back());
  }
  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  Frame frame;
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(reader.Next(&frame), FrameReader::Poll::kFrame);
    EXPECT_EQ(frame.request_id, static_cast<uint32_t>(i));
    EXPECT_EQ(frame.body, bodies[i]);
  }
  EXPECT_EQ(reader.Next(&frame), FrameReader::Poll::kNeedMore);
}

TEST(FrameCodec, EveryTruncationOfAValidFrameNeedsMore) {
  const std::string wire =
      EncodeFrame(MessageType::kQuery, 7, EncodeQuery(ConvoyQuery{}));
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameReader reader;
    reader.Feed(wire.data(), cut);
    Frame frame;
    ASSERT_EQ(reader.Next(&frame), FrameReader::Poll::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(FrameCodec, BitFlipsNeverYieldAFrame) {
  Rng rng(3);
  const std::string body = RandomBytes(&rng, 64);
  const std::string wire = EncodeFrame(MessageType::kIngestOk, 99, body);
  for (size_t i = 0; i < wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = wire;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
      FrameReader reader;
      reader.Feed(corrupt.data(), corrupt.size());
      Frame frame;
      const FrameReader::Poll poll = reader.Next(&frame);
      ASSERT_NE(poll, FrameReader::Poll::kFrame)
          << "bit " << bit << " of byte " << i;
      if (poll == FrameReader::Poll::kError) {
        EXPECT_TRUE(IsFrameLevelError(reader.error()))
            << WireErrorName(reader.error());
        EXPECT_FALSE(reader.error_message().empty());
        // Errors are sticky: the reader never recovers.
        EXPECT_EQ(reader.Next(&frame), FrameReader::Poll::kError);
      }
      // kNeedMore is legal only for flips in the length field that grew
      // the frame; nothing was delivered either way.
    }
  }
}

TEST(FrameCodec, OversizePayloadIsANamedError) {
  FrameReader reader(/*max_payload=*/1024);
  const std::string wire =
      EncodeFrame(MessageType::kPing, 1, std::string(2048, 'x'));
  reader.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.Next(&frame), FrameReader::Poll::kError);
  EXPECT_EQ(reader.error(), WireError::kOversizeFrame);
}

TEST(FrameCodec, PayloadShorterThanMessageHeaderIsANamedError) {
  // Hand-rolled header declaring a 3-byte payload: too short to carry the
  // 8-byte message header, rejected before any CRC work.
  std::string wire;
  const uint32_t crc = 0xdeadbeef;
  const uint32_t len = 3;
  wire.append(reinterpret_cast<const char*>(&crc), 4);
  wire.append(reinterpret_cast<const char*>(&len), 4);
  wire.append("abc", 3);
  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.Next(&frame), FrameReader::Poll::kError);
  EXPECT_EQ(reader.error(), WireError::kTruncatedFrame);
}

std::string HandRolledFrame(uint8_t version, uint8_t type,
                            uint32_t request_id, std::string_view body) {
  std::string payload;
  payload.push_back(static_cast<char>(version));
  payload.push_back(static_cast<char>(type));
  payload.append(2, '\0');
  payload.append(reinterpret_cast<const char*>(&request_id), 4);
  payload.append(body);
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::string wire;
  wire.append(reinterpret_cast<const char*>(&crc), 4);
  wire.append(reinterpret_cast<const char*>(&len), 4);
  wire.append(payload);
  return wire;
}

TEST(FrameCodec, WrongVersionIsANamedError) {
  const std::string wire = HandRolledFrame(9, 3, 1, {});
  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.Next(&frame), FrameReader::Poll::kError);
  EXPECT_EQ(reader.error(), WireError::kBadVersion);
}

TEST(FrameCodec, UndefinedMessageTypeIsANamedError) {
  const std::string wire = HandRolledFrame(1, 42, 1, {});
  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.Next(&frame), FrameReader::Poll::kError);
  EXPECT_EQ(reader.error(), WireError::kBadMessageType);
}

// --- typed body round-trips ----------------------------------------------

ConvoyQuery RandomQuery(Rng* rng) {
  ConvoyQuery query;
  if (rng->Bernoulli(0.5))
    query.object = static_cast<ObjectId>(rng->NextInt(1000));
  if (rng->Bernoulli(0.5)) {
    const Timestamp start = static_cast<Timestamp>(rng->NextInt(100));
    query.time_window =
        TimeRange{start, start + static_cast<Timestamp>(rng->NextInt(50))};
  }
  if (rng->Bernoulli(0.5)) {
    const double x = rng->Uniform(-100, 100);
    const double y = rng->Uniform(-100, 100);
    query.region = Rect{x, y, x + rng->Uniform(0, 50), y + rng->Uniform(0, 50)};
  }
  return query;
}

TEST(TypedBodies, QueryRoundTripsByteIdentical) {
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const ConvoyQuery query = RandomQuery(&rng);
    const std::string body = EncodeQuery(query);
    auto parsed = ParseQuery(body);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(EncodeQuery(parsed.value()), body);
  }
}

TEST(TypedBodies, TopKRoundTripsByteIdentical) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    TopKRequest request;
    request.query = RandomQuery(&rng);
    request.rank =
        rng.Bernoulli(0.5) ? ConvoyRank::kLongest : ConvoyRank::kLargest;
    request.k = static_cast<uint32_t>(rng.NextInt(1000));
    const std::string body = EncodeTopK(request);
    auto parsed = ParseTopK(body);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(EncodeTopK(parsed.value()), body);
  }
}

TEST(TypedBodies, IngestRoundTripsByteIdentical) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    std::vector<SnapshotPoint> points;
    const size_t n = rng.NextInt(50);
    for (size_t j = 0; j < n; ++j)
      points.push_back({static_cast<ObjectId>(j * 2),
                        rng.Uniform(-1000, 1000), rng.Uniform(-1000, 1000)});
    const Timestamp t = static_cast<Timestamp>(rng.NextInt(1000));
    const std::string body = EncodeIngest(t, points);
    auto parsed = ParseIngest(body);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed.value().t, t);
    ASSERT_EQ(parsed.value().points.size(), points.size());
    EXPECT_EQ(EncodeIngest(parsed.value().t, parsed.value().points), body);
  }
}

TEST(TypedBodies, ConvoysRoundTripByteIdentical) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    std::vector<Convoy> convoys;
    const size_t n = rng.NextInt(10);
    for (size_t j = 0; j < n; ++j) {
      std::vector<ObjectId> ids;
      const size_t m = 1 + rng.NextInt(8);
      for (size_t o = 0; o < m; ++o)
        ids.push_back(static_cast<ObjectId>(rng.NextInt(100)));
      const Timestamp start = static_cast<Timestamp>(rng.NextInt(100));
      convoys.emplace_back(ObjectSet(std::move(ids)), start,
                           start + static_cast<Timestamp>(rng.NextInt(20)));
    }
    const std::string body = EncodeConvoys(convoys);
    auto parsed = ParseConvoys(body);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ASSERT_EQ(parsed.value().size(), convoys.size());
    for (size_t j = 0; j < convoys.size(); ++j)
      EXPECT_EQ(parsed.value()[j], convoys[j]);
    EXPECT_EQ(EncodeConvoys(parsed.value()), body);
  }
}

TEST(TypedBodies, ScalarMessagesRoundTrip) {
  {
    const std::string body = EncodeHello({1, 3});
    auto parsed = ParseHello(body);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().min_version, 1);
    EXPECT_EQ(parsed.value().max_version, 3);
    EXPECT_EQ(EncodeHello(parsed.value()), body);
  }
  {
    auto parsed = ParseHelloOk(EncodeHelloOk(1));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), 1);
  }
  {
    IngestAck ack;
    ack.frontier = 41;
    ack.closed_convoys = 7;
    auto parsed = ParseIngestAck(EncodeIngestAck(ack));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().frontier, 41);
    EXPECT_EQ(parsed.value().closed_convoys, 7u);
  }
  {
    PublishAck ack;
    ack.epoch = 5;
    ack.convoys = 12;
    auto parsed = ParsePublishAck(EncodePublishAck(ack));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().epoch, 5u);
    EXPECT_EQ(parsed.value().convoys, 12u);
  }
  {
    ServerStats stats;
    stats.epoch = 3;
    stats.catalog_convoys = 9;
    stats.frontier = 77;
    stats.ticks_ingested = 100;
    stats.closed_convoys = 11;
    auto parsed = ParseServerStats(EncodeServerStats(stats));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().epoch, 3u);
    EXPECT_EQ(parsed.value().frontier, 77);
    EXPECT_EQ(parsed.value().closed_convoys, 11u);
  }
  {
    auto parsed = ParseError(EncodeError(WireError::kBadCrc, "boom"));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().error, WireError::kBadCrc);
    EXPECT_EQ(parsed.value().message, "boom");
    EXPECT_FALSE(ErrorReplyStatus(parsed.value()).ok());
  }
}

TEST(TypedBodies, HostileBodiesFailCleanly) {
  Rng rng(8);
  // Random garbage through every parser: parse either succeeds or returns
  // kInvalid; it must never crash or over-read (ASan enforces the latter).
  for (int i = 0; i < 500; ++i) {
    const std::string garbage = RandomBytes(&rng, rng.NextInt(120));
    (void)ParseHello(garbage);
    (void)ParseHelloOk(garbage);
    (void)ParseIngest(garbage);
    (void)ParseIngestAck(garbage);
    (void)ParsePublishAck(garbage);
    (void)ParseQuery(garbage);
    (void)ParseTopK(garbage);
    (void)ParseConvoys(garbage);
    (void)ParseServerStats(garbage);
    (void)ParseError(garbage);
  }
  // Targeted hostile inputs with known rejections.
  {
    // Ingest whose count field lies about the body length.
    std::string body = EncodeIngest(3, {});
    body[4] = 100;  // count = 100, zero point bytes follow
    EXPECT_FALSE(ParseIngest(body).ok());
  }
  {
    // Query with an undefined predicate mask bit.
    std::string body = EncodeQuery(ConvoyQuery{});
    body[0] = static_cast<char>(0x80);
    EXPECT_FALSE(ParseQuery(body).ok());
  }
  {
    // Trailing bytes are rejected on every typed parse.
    EXPECT_FALSE(ParseQuery(EncodeQuery(ConvoyQuery{}) + "x").ok());
    EXPECT_FALSE(ParseHello(EncodeHello({1, 1}) + "x").ok());
    EXPECT_FALSE(ParseConvoys(EncodeConvoys({}) + "x").ok());
  }
  {
    // Hello with an inverted version range.
    EXPECT_FALSE(ParseHello(EncodeHello({3, 1})).ok());
  }
}

// --- end-to-end over loopback --------------------------------------------

K2ServerOptions TestServerOptions() {
  K2ServerOptions options;
  options.port = 0;  // ephemeral
  options.num_workers = 2;
  options.params = MiningParams{3, 4, 60.0};
  options.publish_every = 1;
  return options;
}

std::unique_ptr<K2Client> MustConnect(const K2Server& server) {
  auto client = K2Client::Connect({"127.0.0.1", server.port()});
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return client.ok() ? std::move(client.value()) : nullptr;
}

TEST(K2ServerTest, StartsAndStopsWithoutClients) {
  auto server = K2Server::Start(TestServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_GT(server.value()->port(), 0);
  EXPECT_EQ(server.value()->num_workers(), 2);
  server.value()->RequestShutdown();
  server.value()->Wait();
  EXPECT_FALSE(server.value()->running());
}

TEST(K2ServerTest, HandshakePingAndEmptyStats) {
  auto server = K2Server::Start(TestServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = MustConnect(*server.value());
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->negotiated_version(), kProtocolVersion);
  EXPECT_TRUE(client->Ping().ok());
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().ticks_ingested, 0u);
  EXPECT_EQ(stats.value().catalog_convoys, 0u);
}

TEST(K2ServerTest, WireAnswersMatchInProcessEngine) {
  auto server = K2Server::Start(TestServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = MustConnect(*server.value());
  ASSERT_NE(client, nullptr);

  // In-process reference with the identical publish cadence.
  MemoryStore store;
  ConvoyCatalog catalog;
  OnlineK2HopOptions hook;
  hook.on_closed = catalog.OnClosedHook(&store, 1);
  OnlineK2HopMiner miner(&store, MiningParams{3, 4, 60.0}, hook);
  catalog.Publish();

  PlantedConvoySpec spec;
  spec.num_noise_objects = 10;
  spec.num_ticks = 30;
  spec.seed = 11;
  spec.groups = {{3, 2, 20, 8.0}, {4, 5, 28, 6.0}};
  const Dataset dataset = GeneratePlantedConvoys(spec);
  for (Timestamp t : dataset.timestamps()) {
    const std::vector<SnapshotPoint> points = SnapshotPoints(dataset, t);
    auto ack = client->Ingest(t, points);
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    ASSERT_TRUE(miner.AppendTick(t, points).ok());
  }
  ASSERT_TRUE(client->Publish().ok());
  catalog.Publish();

  const ConvoyQueryEngine engine(&catalog);
  std::vector<ConvoyQuery> queries;
  queries.emplace_back();
  ConvoyQuery q;
  q.object = ObjectId{0};
  queries.push_back(q);
  q = ConvoyQuery{};
  q.time_window = TimeRange{5, 25};
  queries.push_back(q);
  q = ConvoyQuery{};
  q.region = Rect{0.0, 0.0, 8000.0, 8000.0};
  queries.push_back(q);
  q.object = ObjectId{1};
  q.time_window = TimeRange{0, 30};
  queries.push_back(q);  // conjunction of all three predicates
  for (const ConvoyQuery& query : queries) {
    auto wire = client->Query(query);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    EXPECT_EQ(wire.value(), engine.Find(query));
  }
  auto top = client->TopK(ConvoyQuery{}, ConvoyRank::kLongest, 3);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  EXPECT_EQ(top.value(), engine.TopK(ConvoyQuery{}, ConvoyRank::kLongest, 3));
}

TEST(K2ServerTest, RejectedTickKeepsConnectionUsable) {
  auto server = K2Server::Start(TestServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = MustConnect(*server.value());
  ASSERT_NE(client, nullptr);
  const std::vector<SnapshotPoint> tick = {{1, 0.0, 0.0}};
  ASSERT_TRUE(client->Ingest(10, tick).ok());
  // Out-of-order tick: rejected by the miner, relayed as IngestRejected.
  auto rejected = client->Ingest(5, tick);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().ToString().find("IngestRejected"),
            std::string::npos)
      << rejected.status().ToString();
  // The connection — and the server — keep working.
  EXPECT_TRUE(client->Ping().ok());
  const std::vector<SnapshotPoint> next_tick = {{1, 1.0, 0.0}};
  EXPECT_TRUE(client->Ingest(11, next_tick).ok());
  EXPECT_TRUE(server.value()->serving_status().ok());
}

TEST(K2ServerTest, CorruptFrameGetsNamedErrorAndClose) {
  auto server = K2Server::Start(TestServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.value()->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  std::string hello = EncodeFrame(MessageType::kHello, 1, EncodeHello({1, 1}));
  hello[1] = static_cast<char>(hello[1] ^ 0x10);  // corrupt the CRC field
  ASSERT_EQ(::send(fd, hello.data(), hello.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(hello.size()));

  FrameReader reader;
  Frame frame;
  bool got_error = false;
  bool closed = false;
  char buf[4096];
  for (int i = 0; i < 1000 && !closed; ++i) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) {
      closed = true;
      break;
    }
    ASSERT_GT(n, 0);
    reader.Feed(buf, static_cast<size_t>(n));
    while (reader.Next(&frame) == FrameReader::Poll::kFrame) {
      ASSERT_EQ(frame.type, MessageType::kError);
      auto parsed = ParseError(frame.body);
      ASSERT_TRUE(parsed.ok());
      EXPECT_EQ(parsed.value().error, WireError::kBadCrc);
      got_error = true;
    }
  }
  ::close(fd);
  EXPECT_TRUE(got_error);
  EXPECT_TRUE(closed);
  // The server survives and keeps serving fresh connections.
  auto client = MustConnect(*server.value());
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Ping().ok());
}

TEST(K2ServerTest, PipelinedRepliesArriveInRequestOrder) {
  auto server = K2Server::Start(TestServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = MustConnect(*server.value());
  ASSERT_NE(client, nullptr);

  std::vector<uint32_t> ids;
  for (int i = 0; i < 32; ++i) {
    if (i % 2 == 0) {
      ids.push_back(client->SendPing());
    } else {
      ids.push_back(client->SendQuery(ConvoyQuery{}));
    }
  }
  ASSERT_TRUE(client->Flush().ok());
  for (size_t i = 0; i < ids.size(); ++i) {
    auto reply = client->Receive();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply.value().request_id, ids[i]);
    EXPECT_EQ(reply.value().type, i % 2 == 0 ? MessageType::kPong
                                             : MessageType::kConvoys);
  }
}

TEST(K2ServerTest, ConcurrentReadersDuringIngest) {
  auto server = K2Server::Start(TestServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::atomic<bool> stop{false};
  std::atomic<int> reader_failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&server, &stop, &reader_failures] {
      auto client = K2Client::Connect({"127.0.0.1", server.value()->port()});
      if (!client.ok()) {
        reader_failures.fetch_add(1);
        return;
      }
      ConvoyQuery window;
      window.time_window = TimeRange{0, 100};
      while (!stop.load(std::memory_order_acquire)) {
        if (!client.value()->Query(ConvoyQuery{}).ok() ||
            !client.value()->TopK(window, ConvoyRank::kLargest, 4).ok()) {
          reader_failures.fetch_add(1);
          return;
        }
      }
    });
  }

  auto writer = MustConnect(*server.value());
  ASSERT_NE(writer, nullptr);
  RandomWalkSpec spec;
  spec.num_objects = 24;
  spec.num_ticks = 40;
  spec.area = 120.0;  // dense: plenty of convoys close and publish
  spec.seed = 13;
  const Dataset dataset = GenerateRandomWalk(spec);
  for (Timestamp t : dataset.timestamps()) {
    auto ack = writer->Ingest(t, SnapshotPoints(dataset, t));
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_TRUE(server.value()->serving_status().ok());
}

TEST(K2ServerTest, ShutdownMessageDrainsGracefully) {
  auto server = K2Server::Start(TestServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = MustConnect(*server.value());
  ASSERT_NE(client, nullptr);
  const std::vector<SnapshotPoint> tick = {{1, 0.0, 0.0}, {2, 1.0, 0.0}};
  ASSERT_TRUE(client->Ingest(1, tick).ok());
  EXPECT_TRUE(client->Shutdown().ok());
  server.value()->Wait();
  EXPECT_FALSE(server.value()->running());
  EXPECT_TRUE(server.value()->serving_status().ok());
  // Post-shutdown connections are refused or die; either way, no answer.
  auto late = K2Client::Connect({"127.0.0.1", server.value()->port()});
  if (late.ok()) {
    EXPECT_FALSE(late.value()->Ping().ok());
  }
}

TEST(K2ServerTest, HelloVersionMismatchIsRejected) {
  auto server = K2Server::Start(TestServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.value()->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string hello =
      EncodeFrame(MessageType::kHello, 1, EncodeHello({17, 99}));
  ASSERT_EQ(::send(fd, hello.data(), hello.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(hello.size()));
  FrameReader reader;
  Frame frame;
  char buf[4096];
  bool got_reply = false;
  while (!got_reply) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    reader.Feed(buf, static_cast<size_t>(n));
    if (reader.Next(&frame) == FrameReader::Poll::kFrame) got_reply = true;
  }
  ::close(fd);
  ASSERT_EQ(frame.type, MessageType::kError);
  auto parsed = ParseError(frame.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().error, WireError::kBadVersion);
}

}  // namespace
}  // namespace k2::net
