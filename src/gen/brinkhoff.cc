#include "gen/brinkhoff.h"

#include <memory>
#include <sstream>
#include <vector>

#include "common/rng.h"

namespace k2 {

std::string BrinkhoffStats::DebugString() const {
  std::ostringstream os;
  os << "BrinkhoffStats{nodes=" << num_nodes << ", edges=" << num_edges
     << ", width=" << data_space_width << ", height=" << data_space_height
     << ", max_time=" << max_time << ", moving_objects=" << moving_objects
     << ", points=" << points << "}";
  return os.str();
}

Dataset GenerateBrinkhoff(const BrinkhoffParams& params,
                          BrinkhoffStats* stats) {
  Rng rng(params.seed);
  RoadNetwork net = RoadNetwork::MakeGrid(params.grid, params.seed ^ 0x9e37);

  struct ActiveObject {
    ObjectId oid;
    PathMover mover;
  };
  std::vector<ActiveObject> active;
  DatasetBuilder builder;
  ObjectId next_oid = 0;
  uint64_t points = 0;

  auto spawn = [&](int count) {
    std::vector<uint32_t> path;
    for (int i = 0; i < count; ++i) {
      // Retry until a routable source/destination pair is found; the grid is
      // well connected so a couple of attempts suffice.
      for (int attempt = 0; attempt < 8; ++attempt) {
        const uint32_t src = net.RandomNode(&rng);
        const uint32_t dst = net.RandomNode(&rng);
        if (src != dst && net.FindPath(src, dst, &path)) {
          active.push_back(ActiveObject{next_oid++, PathMover(&net, path)});
          break;
        }
      }
    }
  };

  spawn(params.obj_begin);
  for (Timestamp t = 0; t < params.max_time; ++t) {
    if (t > 0) spawn(params.obj_time);
    size_t write = 0;
    for (size_t i = 0; i < active.size(); ++i) {
      ActiveObject& obj = active[i];
      const RoadNode pos =
          t == 0 ? obj.mover.Position() : obj.mover.Step();
      builder.Add(t, obj.oid, pos.x + rng.Gaussian(0.0, params.gps_noise),
                  pos.y + rng.Gaussian(0.0, params.gps_noise));
      ++points;
      // Objects disappear after reporting their destination once.
      if (!obj.mover.done()) {
        if (write != i) active[write] = std::move(active[i]);
        ++write;
      }
    }
    active.erase(active.begin() + write, active.end());
  }

  if (stats != nullptr) {
    stats->num_nodes = net.num_nodes();
    stats->num_edges = net.num_edges();
    stats->data_space_width = net.width();
    stats->data_space_height = net.height();
    stats->max_time = params.max_time;
    stats->moving_objects = next_oid;
    stats->points = points;
  }
  return builder.Build();
}

}  // namespace k2
