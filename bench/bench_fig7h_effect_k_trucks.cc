// Fig. 7h — Trucks: effect of varying k on the runtime of VCoDA, VCoDA*,
// k2-File, k2-RDBMS and k2-LSMT. Expected shape: the VCoDA variants are flat
// in k (they touch every point regardless), while the k2-* variants get
// faster as k grows (fewer benchmark points, more pruning).
#include "bench/harness.h"

using namespace k2;
using namespace k2::bench;

int main() {
  PrintBanner("Fig 7h: Trucks — effect of k (time in seconds)");
  const Dataset& data = Trucks();
  std::cout << data.DebugString() << "\n\n";

  auto file_store = BuildStore(StoreKind::kFile, data, "fig7h");
  auto rdbms = BuildStore(StoreKind::kBPlusTree, data, "fig7h");
  auto lsmt = BuildStore(StoreKind::kLsm, data, "fig7h");

  TablePrinter table({"k", "VCoDA", "VCoDA*", "k2-File", "k2-RDBMS",
                      "k2-LSMT", "convoys"});
  for (int k : {200, 400, 600, 800, 1000, 1200}) {
    const MiningParams params{3, k, 30.0};
    const MineOutcome vcoda = RunVcoda(file_store.get(), params, false);
    const MineOutcome vcoda_star = RunVcoda(file_store.get(), params, true);
    const MineOutcome k2_file = RunK2(file_store.get(), params);
    const MineOutcome k2_rdbms = RunK2(rdbms.get(), params);
    const MineOutcome k2_lsmt = RunK2(lsmt.get(), params);
    table.AddRow({std::to_string(k), Fmt(vcoda.seconds), Fmt(vcoda_star.seconds),
                  Fmt(k2_file.seconds), Fmt(k2_rdbms.seconds),
                  Fmt(k2_lsmt.seconds), std::to_string(k2_lsmt.convoys)});
  }
  table.Print();
  return 0;
}
