// Streaming ingest benchmark: feeds the Trucks workload tick by tick
// through OnlineK2HopMiner (ingest routed via Store::Append) and reports
// amortized per-tick latency, ingest throughput, and the Finalize() tail —
// against the batch MineK2Hop wall time over the same bulk-loaded data.
// The online result is differential-checked against batch in-process.
#include "bench/harness.h"

#include <filesystem>
#include <sstream>

#include "common/check.h"
#include "common/stopwatch.h"
#include "core/online.h"

using namespace k2;
using namespace k2::bench;

int main(int argc, char** argv) {
  ParseArgs(argc, argv);
  PrintBanner("Streaming: online k/2-hop ingest vs batch");
  const Dataset& data = Trucks();
  std::cout << data.DebugString() << "\n\n";
  const MiningParams params{3, 200, 30.0};

  TablePrinter table({"store", "mode", "total_s", "per_tick_ms", "max_tick_ms",
                      "finalize_s", "closed", "open", "convoys"});
  for (StoreKind kind : {StoreKind::kMemory, StoreKind::kLsm}) {
    // Batch reference: bulk load + one-shot mine (keeping the convoy list
    // so the online result can be compared set-for-set, not just counted).
    auto batch_store = BuildStore(kind, data, "streaming_batch");
    K2HopStats batch_stats;
    Stopwatch batch_sw;
    auto batch_result = MineK2Hop(batch_store.get(), params, {}, &batch_stats);
    const double batch_seconds = batch_sw.ElapsedSeconds();
    K2_CHECK(batch_result.ok());
    const std::vector<Convoy>& batch_convoys = batch_result.value();
    RecordMiningRun("k2hop", *batch_store, params, batch_seconds,
                    batch_convoys.size(), batch_stats.io);
    table.AddRow({StoreKindName(kind), "batch", Fmt(batch_seconds),
                  Fmt(batch_seconds * 1e3 /
                      static_cast<double>(data.timestamps().size())),
                  "-", "-", "-", "-", std::to_string(batch_convoys.size())});

    // Streaming: empty store, tick-by-tick Append + incremental mining.
    const std::string dir = std::string("/tmp/k2hop_bench/stores/streaming_") +
                            StoreKindName(kind);
    std::filesystem::remove_all(dir);
    auto store_result = CreateStore(kind, dir);
    K2_CHECK(store_result.ok());
    std::unique_ptr<Store> store = store_result.MoveValue();
    OnlineK2HopMiner miner(store.get(), params);
    Stopwatch sw;
    for (Timestamp t : data.timestamps()) {
      K2_CHECK_OK(miner.AppendTick(t, SnapshotPoints(data, t)));
    }
    const double ingest_seconds = sw.ElapsedSeconds();
    Stopwatch finalize_sw;
    auto result = miner.Finalize();
    const double finalize_seconds = finalize_sw.ElapsedSeconds();
    K2_CHECK(result.ok());
    K2_CHECK(result.value() == batch_convoys);  // both in canonical order
    const OnlineK2HopStats& stats = miner.stats();

    table.AddRow(
        {StoreKindName(kind), "online", Fmt(ingest_seconds + finalize_seconds),
         Fmt(stats.append_latency.mean() * 1e3),
         Fmt(stats.append_latency.max() * 1e3), Fmt(finalize_seconds),
         std::to_string(stats.closed_convoys),
         std::to_string(stats.open_convoys),
         std::to_string(result.value().size())});

    JsonFields extra;
    extra.Int("ticks", stats.ticks_ingested)
        .Int("points_ingested", stats.points_ingested)
        .Num("append_ms_mean", stats.append_latency.mean() * 1e3)
        .Num("append_ms_max", stats.append_latency.max() * 1e3)
        .Num("finalize_ms", finalize_seconds * 1e3)
        .Int("closed_eagerly", stats.closed_convoys)
        .Int("open_at_finalize", stats.open_convoys);
    RecordMiningRun("k2hop-online", *store, params,
                    ingest_seconds + finalize_seconds, result.value().size(),
                    stats.mining_io, extra);
  }
  table.Print();
  std::cout << "\nonline == batch convoy sets (checked in-process); "
               "per_tick_ms amortizes ingest + incremental mining.\n";
  return 0;
}
