#include "storage/lsm/bloom.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace k2::lsm {

BloomFilter::BloomFilter(size_t expected_keys, int bits_per_key) {
  // Cache-line-blocked layout (cf. RocksDB): the first hash selects one
  // 512-bit block, all probes land inside it. A negative lookup — the common
  // case on the LSM point-read path, one MayContain per key per table —
  // costs one cache miss instead of num_hashes_. The bit count is rounded
  // to a power of two so block selection is a mask, not a 64-bit modulo.
  const size_t bits =
      std::bit_ceil(std::max<size_t>(kBlockBits, expected_keys * bits_per_key));
  words_.assign(bits / 64, 0);
  blocked_ = true;
  // k = ln(2) * bits/key, clamped to a sane range.
  num_hashes_ = std::clamp(
      static_cast<int>(std::round(bits_per_key * 0.6931)), 1, 12);
}

uint64_t BloomFilter::Mix(uint64_t key) {
  // SplitMix64 finalizer: decorrelates nearby composite keys.
  key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9ULL;
  key = (key ^ (key >> 27)) * 0x94D049BB133111EBULL;
  return key ^ (key >> 31);
}

void BloomFilter::Add(uint64_t key) {
  const uint64_t h = Mix(key);
  const uint64_t delta = (h >> 32) | 1;  // odd => cycles through all bits
  uint64_t bit = h;
  if (blocked_) {
    // Upper hash bits pick the block, lower bits walk inside it; the two
    // streams are nearly independent, which keeps the per-block FP rate
    // close to an unblocked filter of the same density.
    const size_t block = (h >> 17) & (words_.size() / kBlockWords - 1);
    uint64_t* word = words_.data() + block * kBlockWords;
    for (int i = 0; i < num_hashes_; ++i) {
      const size_t pos = bit & (kBlockBits - 1);
      word[pos / 64] |= (1ULL << (pos % 64));
      bit += delta;
    }
    return;
  }
  // Flat layout: only filters deserialized from pre-blocked-era files, kept
  // probe-compatible with the binaries that wrote them.
  const size_t nbits = num_bits();
  for (int i = 0; i < num_hashes_; ++i) {
    const size_t pos = bit % nbits;
    words_[pos / 64] |= (1ULL << (pos % 64));
    bit += delta;
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  if (words_.empty()) return true;
  const uint64_t h = Mix(key);
  const uint64_t delta = (h >> 32) | 1;
  uint64_t bit = h;
  if (blocked_) {
    const size_t block = (h >> 17) & (words_.size() / kBlockWords - 1);
    const uint64_t* word = words_.data() + block * kBlockWords;
    for (int i = 0; i < num_hashes_; ++i) {
      const size_t pos = bit & (kBlockBits - 1);
      if ((word[pos / 64] & (1ULL << (pos % 64))) == 0) return false;
      bit += delta;
    }
    return true;
  }
  const size_t nbits = num_bits();
  for (int i = 0; i < num_hashes_; ++i) {
    const size_t pos = bit % nbits;
    if ((words_[pos / 64] & (1ULL << (pos % 64))) == 0) return false;
    bit += delta;
  }
  return true;
}

BloomFilter BloomFilter::FromWords(std::vector<uint64_t> words,
                                   uint32_t num_hashes_word) {
  BloomFilter f;
  f.words_ = std::move(words);
  f.blocked_ = (num_hashes_word & kBlockedLayoutFlag) != 0;
  f.num_hashes_ = static_cast<int>(num_hashes_word & ~kBlockedLayoutFlag);
  return f;
}

}  // namespace k2::lsm
