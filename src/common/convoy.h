// Convoy value type and the maximal-set maintenance used by the paper's
// `update()` operation (Sec. 4.4 / Algorithm 3): the result set never holds a
// convoy that is a sub-convoy of another member.
#ifndef K2_COMMON_CONVOY_H_
#define K2_COMMON_CONVOY_H_

#include <string>
#include <vector>

#include "common/object_set.h"
#include "common/types.h"

namespace k2 {

/// A convoy candidate or result: objects `objects` moving together over the
/// inclusive tick interval [start, end] (Def. 3).
struct Convoy {
  ObjectSet objects;
  Timestamp start = 0;
  Timestamp end = -1;

  Convoy() = default;
  Convoy(ObjectSet objs, Timestamp s, Timestamp e)
      : objects(std::move(objs)), start(s), end(e) {}

  /// Lifespan length |T(v)| in ticks.
  int64_t length() const {
    return end < start ? 0 : static_cast<int64_t>(end) - start + 1;
  }
  TimeRange lifespan() const { return {start, end}; }

  /// Def. 5: O(this) ⊆ O(w) and T(this) ⊆ T(w).
  bool IsSubConvoyOf(const Convoy& w) const {
    return start >= w.start && end <= w.end && objects.IsSubsetOf(w.objects);
  }
  bool IsStrictSubConvoyOf(const Convoy& w) const {
    return IsSubConvoyOf(w) && !(*this == w);
  }

  /// "({1, 2, 3}, [4, 9])".
  std::string DebugString() const;

  friend bool operator==(const Convoy& a, const Convoy& b) {
    return a.start == b.start && a.end == b.end && a.objects == b.objects;
  }
  /// Canonical order: by start, end, then object set.
  friend bool operator<(const Convoy& a, const Convoy& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.end != b.end) return a.end < b.end;
    return a.objects < b.objects;
  }
};

/// Result-set container enforcing Def. 6-style maximality: `Insert` is the
/// paper's `update()` — the new convoy is dropped when dominated by a member,
/// and members dominated by it are evicted.
class MaximalConvoySet {
 public:
  /// Returns true when `v` entered the set (i.e. was not dominated).
  bool Insert(Convoy v);

  size_t size() const { return convoys_.size(); }
  bool empty() const { return convoys_.empty(); }
  const std::vector<Convoy>& convoys() const { return convoys_; }

  /// Moves the content out in canonical sorted order.
  std::vector<Convoy> TakeSorted();

 private:
  std::vector<Convoy> convoys_;
};

/// Sorts into the canonical order used to compare miner outputs.
void SortConvoys(std::vector<Convoy>* convoys);

/// Removes every convoy that is a strict sub-convoy of another element and
/// removes exact duplicates; returns the surviving convoys in canonical
/// order.
std::vector<Convoy> FilterMaximal(std::vector<Convoy> convoys);

/// Drops convoys shorter than `k` ticks.
std::vector<Convoy> FilterMinLength(std::vector<Convoy> convoys, int k);

/// Multi-line dump for examples and debugging.
std::string ConvoysDebugString(const std::vector<Convoy>& convoys);

}  // namespace k2

#endif  // K2_COMMON_CONVOY_H_
