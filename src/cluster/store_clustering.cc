#include "cluster/store_clustering.h"

namespace k2 {

namespace {

SnapshotScratch* ThreadLocalSnapshotScratch() {
  static thread_local SnapshotScratch scratch;
  return &scratch;
}

}  // namespace

Result<std::vector<ObjectSet>> ClusterSnapshot(Store* store, Timestamp t,
                                               const MiningParams& params,
                                               SnapshotScratch* scratch,
                                               Mutex* store_mu) {
  return ResolveClusterer(params)->Cluster(store, t, params, scratch,
                                           store_mu);
}

Result<std::vector<ObjectSet>> ClusterSnapshot(Store* store, Timestamp t,
                                               const MiningParams& params) {
  return ClusterSnapshot(store, t, params, ThreadLocalSnapshotScratch());
}

Result<std::vector<ObjectSet>> ReCluster(Store* store, Timestamp t,
                                         const ObjectSet& objects,
                                         const MiningParams& params,
                                         SnapshotScratch* scratch,
                                         Mutex* store_mu) {
  return ResolveClusterer(params)->ReCluster(store, t, objects, params,
                                             scratch, store_mu);
}

Result<std::vector<ObjectSet>> ReCluster(Store* store, Timestamp t,
                                         const ObjectSet& objects,
                                         const MiningParams& params) {
  return ReCluster(store, t, objects, params, ThreadLocalSnapshotScratch());
}

}  // namespace k2
