// Fig. 8j — number of pre-validation convoys fed to the validation step,
// k2-LSMT vs VCoDA, per k. Paper: the difference is small, which is why the
// validation-time saving of k/2-hop is insignificant (Sec. 6.3.9).
#include "bench/harness.h"

using namespace k2;
using namespace k2::bench;

int main() {
  PrintBanner("Fig 8j: pre-validation convoy count");
  const Dataset& data = Trucks();
  std::cout << data.DebugString() << "\n\n";
  auto lsmt = BuildStore(StoreKind::kLsm, data, "fig8j");
  auto file_store = BuildStore(StoreKind::kFile, data, "fig8j");

  TablePrinter table({"k", "k2-LSMT", "VCoDA"});
  for (int k : {200, 400, 600, 800, 1000, 1200}) {
    const MiningParams params{3, k, 30.0};
    K2HopStats k2_stats;
    RunK2(lsmt.get(), params, &k2_stats);
    VcodaStats vcoda_stats;
    RunVcoda(file_store.get(), params, true, &vcoda_stats);
    table.AddRow({std::to_string(k),
                  std::to_string(k2_stats.prevalidation_convoys),
                  std::to_string(vcoda_stats.prevalidation_convoys)});
  }
  table.Print();
  return 0;
}
