#include "baselines/spare.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/clusterer.h"
#include "cluster/dbscan.h"

namespace k2 {

namespace {

/// (tick, cluster-id) membership timeline of one object, tick-ascending.
using Timeline = std::vector<std::pair<Timestamp, int32_t>>;

/// Longest run of consecutive ticks in a tick-ascending list.
int64_t MaxConsecutiveRun(const std::vector<Timestamp>& ticks) {
  int64_t best = 0, cur = 0;
  for (size_t i = 0; i < ticks.size(); ++i) {
    cur = (i > 0 && ticks[i] == ticks[i - 1] + 1) ? cur + 1 : 1;
    best = std::max(best, cur);
  }
  return best;
}

/// Emits every maximal run of length >= k as a convoy of `objects`.
void EmitRuns(const std::vector<Timestamp>& ticks, const ObjectSet& objects,
              int k, std::vector<Convoy>* out) {
  size_t i = 0;
  while (i < ticks.size()) {
    size_t j = i;
    while (j + 1 < ticks.size() && ticks[j + 1] == ticks[j] + 1) ++j;
    if (static_cast<int64_t>(j - i + 1) >= k) {
      out->emplace_back(objects, ticks[i], ticks[j]);
    }
    i = j + 1;
  }
}

struct StarContext {
  const std::vector<ObjectId>* universe;
  const std::vector<Timeline>* timelines;  // indexed by universe position
  const std::vector<std::vector<uint32_t>>* stars;  // forward neighbours
  const MiningParams* params;
  std::atomic<uint64_t>* dfs_budget;
  std::atomic<bool>* budget_exhausted;
};

/// DFS apriori enumeration inside the star of `root`. `members` are universe
/// positions (ascending, starting with root); `ticks` carries the ticks at
/// which all members share root's cluster.
void Enumerate(const StarContext& ctx, uint32_t root,
               std::vector<uint32_t>* members, std::vector<Timestamp>* ticks,
               size_t next_index, std::vector<Convoy>* out) {
  if (ctx.dfs_budget->fetch_sub(1) == 0) {
    ctx.budget_exhausted->store(true);
    return;
  }
  if (ctx.budget_exhausted->load(std::memory_order_relaxed)) return;

  if (members->size() >= static_cast<size_t>(ctx.params->m)) {
    std::vector<ObjectId> ids;
    ids.reserve(members->size());
    for (uint32_t pos : *members) ids.push_back((*ctx.universe)[pos]);
    EmitRuns(*ticks, ObjectSet(std::move(ids)), ctx.params->k, out);
  }
  const std::vector<uint32_t>& star = (*ctx.stars)[root];
  const Timeline& root_tl = (*ctx.timelines)[root];
  for (size_t i = next_index; i < star.size(); ++i) {
    const uint32_t w = star[i];
    // new_ticks = {t in ticks : cid_w(t) == cid_root(t)}; merge-join over
    // the two tick-sorted sequences.
    std::vector<Timestamp> new_ticks;
    const Timeline& w_tl = (*ctx.timelines)[w];
    size_t a = 0, b = 0, r = 0;
    for (Timestamp t : *ticks) {
      while (a < w_tl.size() && w_tl[a].first < t) ++a;
      if (a == w_tl.size()) break;
      if (w_tl[a].first != t) continue;
      while (r < root_tl.size() && root_tl[r].first < t) ++r;
      if (r < root_tl.size() && root_tl[r].first == t &&
          root_tl[r].second == w_tl[a].second) {
        new_ticks.push_back(t);
      }
    }
    (void)b;
    if (MaxConsecutiveRun(new_ticks) < ctx.params->k) continue;  // apriori prune
    members->push_back(w);
    std::vector<Timestamp> saved = std::move(*ticks);
    *ticks = std::move(new_ticks);
    Enumerate(ctx, root, members, ticks, i + 1, out);
    *ticks = std::move(saved);
    members->pop_back();
  }
}

}  // namespace

Result<std::vector<Convoy>> MineSpare(Store* store, const MiningParams& params,
                                      const SpareOptions& options,
                                      SpareStats* stats) {
  K2_RETURN_NOT_OK(ValidateMiningParams(params));
  SpareStats local;
  SpareStats* s = stats != nullptr ? stats : &local;
  const int workers = std::max(1, options.num_workers);

  // ---- Phase 1: snapshot clustering (the "preprocessing" MapReduce stage).
  Stopwatch sw;
  const std::vector<Timestamp> ticks = store->timestamps();
  std::vector<std::vector<SnapshotPoint>> snapshots(ticks.size());
  for (size_t i = 0; i < ticks.size(); ++i) {
    K2_RETURN_NOT_OK(store->ScanTimestamp(ticks[i], &snapshots[i]));
  }
  std::vector<DbscanLabels> labels(ticks.size());
  {
    std::atomic<size_t> next{0};
    auto cluster_worker = [&]() {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= ticks.size()) return;
        labels[i] = DbscanLabelled(snapshots[i], params.eps, params.m);
      }
    };
    std::vector<std::thread> pool;
    for (int w = 0; w < workers; ++w) pool.emplace_back(cluster_worker);
    for (std::thread& t : pool) t.join();
  }
  s->phases.Add("clustering", sw.ElapsedSeconds());

  // ---- Build per-object timelines and the co-clustering edge set.
  sw.Restart();
  std::vector<ObjectId> universe;
  std::unordered_map<ObjectId, uint32_t> position;
  std::vector<Timeline> timelines;
  auto position_of = [&](ObjectId oid) {
    auto [it, inserted] =
        position.try_emplace(oid, static_cast<uint32_t>(universe.size()));
    if (inserted) {
      universe.push_back(oid);
      timelines.emplace_back();
    }
    return it->second;
  };
  // Cluster-size filter: a cluster smaller than m can never host a convoy.
  struct RunTracker {
    Timestamp prev = kInvalidTimestamp;
    int32_t run = 0;
    bool edge = false;
  };
  std::unordered_map<uint64_t, RunTracker> pair_runs;
  std::vector<std::vector<uint32_t>> cluster_members;
  for (size_t i = 0; i < ticks.size(); ++i) {
    const Timestamp t = ticks[i];
    cluster_members.assign(labels[i].num_clusters, {});
    for (size_t p = 0; p < snapshots[i].size(); ++p) {
      const int32_t cid = labels[i].label[p];
      if (cid < 0) continue;
      cluster_members[cid].push_back(position_of(snapshots[i][p].oid));
    }
    for (int32_t cid = 0; cid < labels[i].num_clusters; ++cid) {
      auto& members = cluster_members[cid];
      if (members.size() < static_cast<size_t>(params.m)) continue;
      std::sort(members.begin(), members.end());
      for (uint32_t pos : members) timelines[pos].emplace_back(t, cid);
      for (size_t a = 0; a < members.size(); ++a) {
        for (size_t b = a + 1; b < members.size(); ++b) {
          const uint64_t key =
              (static_cast<uint64_t>(members[a]) << 32) | members[b];
          RunTracker& tracker = pair_runs[key];
          tracker.run = (tracker.prev == t - 1) ? tracker.run + 1 : 1;
          tracker.prev = t;
          if (tracker.run >= params.k) tracker.edge = true;
        }
      }
    }
  }
  std::vector<std::vector<uint32_t>> stars(universe.size());
  for (const auto& [key, tracker] : pair_runs) {
    if (!tracker.edge) continue;
    stars[key >> 32].push_back(static_cast<uint32_t>(key & 0xffffffffu));
    ++s->edges;
  }
  for (auto& star : stars) std::sort(star.begin(), star.end());
  s->stars = universe.size();
  s->phases.Add("edges", sw.ElapsedSeconds());

  // ---- Phase 2: apriori enumeration per star, in parallel.
  sw.Restart();
  std::atomic<uint64_t> budget{options.enumeration_budget};
  std::atomic<bool> exhausted{false};
  std::vector<std::vector<Convoy>> worker_results(workers);
  {
    std::atomic<uint32_t> next{0};
    auto enum_worker = [&](int w) {
      StarContext ctx{&universe, &timelines, &stars,
                      &params,   &budget,    &exhausted};
      for (;;) {
        const uint32_t root = next.fetch_add(1);
        if (root >= stars.size()) return;
        if (stars[root].size() + 1 < static_cast<size_t>(params.m)) continue;
        std::vector<uint32_t> members{root};
        std::vector<Timestamp> root_ticks;
        for (const auto& [t, cid] : timelines[root]) root_ticks.push_back(t);
        Enumerate(ctx, root, &members, &root_ticks, 0, &worker_results[w]);
      }
    };
    std::vector<std::thread> pool;
    for (int w = 0; w < workers; ++w) pool.emplace_back(enum_worker, w);
    for (std::thread& t : pool) t.join();
  }
  s->dfs_nodes = options.enumeration_budget -
                 std::min(options.enumeration_budget, budget.load());
  s->budget_exhausted = exhausted.load();

  std::vector<Convoy> all;
  for (auto& wr : worker_results) {
    std::move(wr.begin(), wr.end(), std::back_inserter(all));
  }
  std::vector<Convoy> result = FilterMaximal(std::move(all));
  s->phases.Add("enumeration", sw.ElapsedSeconds());
  return result;
}

}  // namespace k2
