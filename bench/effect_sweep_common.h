// Shared driver for the Fig. 7h / 8a-8h parameter-effect figures: runtime of
// the five miners (VCoDA, VCoDA*, k2-File, k2-RDBMS, k2-LSMT) while one
// mining parameter sweeps. On datasets over the modelled memory budget the
// VCoDA columns print DNF, reproducing the paper's crashes.
#ifndef K2_BENCH_EFFECT_SWEEP_COMMON_H_
#define K2_BENCH_EFFECT_SWEEP_COMMON_H_

#include "bench/harness.h"

namespace k2::bench {

inline int RunEffectSweep(const std::string& title, const Dataset& data,
                          const std::string& tag,
                          const std::string& swept_name,
                          const std::vector<MiningParams>& sweep) {
  PrintBanner(title);
  std::cout << data.DebugString() << "\n\n";
  const bool vcoda_fits = !VcodaExceedsMemoryBudget(data);

  auto file_store = BuildStore(StoreKind::kFile, data, tag);
  auto rdbms = BuildStore(StoreKind::kBPlusTree, data, tag);
  auto lsmt = BuildStore(StoreKind::kLsm, data, tag);

  TablePrinter table({swept_name, "VCoDA", "VCoDA*", "k2-File", "k2-RDBMS",
                      "k2-LSMT", "convoys"});
  for (const MiningParams& params : sweep) {
    std::string swept;
    if (swept_name == "k") swept = std::to_string(params.k);
    if (swept_name == "m") swept = std::to_string(params.m);
    if (swept_name == "eps") swept = Fmt(params.eps, 1);
    std::string vcoda = "DNF(mem)", vcoda_star = "DNF(mem)";
    if (vcoda_fits) {
      vcoda = Fmt(RunVcoda(file_store.get(), params, false).seconds);
      vcoda_star = Fmt(RunVcoda(file_store.get(), params, true).seconds);
    }
    const MineOutcome k2_file = RunK2(file_store.get(), params);
    const MineOutcome k2_rdbms = RunK2(rdbms.get(), params);
    const MineOutcome k2_lsmt = RunK2(lsmt.get(), params);
    table.AddRow({swept, vcoda, vcoda_star, Fmt(k2_file.seconds),
                  Fmt(k2_rdbms.seconds), Fmt(k2_lsmt.seconds),
                  std::to_string(k2_rdbms.convoys)});
  }
  table.Print();
  return 0;
}

}  // namespace k2::bench

#endif  // K2_BENCH_EFFECT_SWEEP_COMMON_H_
