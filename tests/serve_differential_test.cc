// Serving differential: a ConvoyCatalog fed from batch MineK2Hop, from
// OnlineK2HopMiner (incrementally via on_closed + ReplaceAll after
// Finalize), and from PartitionedK2HopMiner must answer EVERY query
// identically — ByObject over all object ids, ByTimeWindow over a sweep of
// windows, ByRegion over a grid of rects, TopK under both metrics, and
// random conjunctions. This is the serving-layer analogue of the miner
// differential suites: the miners are already proven byte-identical, so
// any divergence here is a catalog/index bug.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/k2hop.h"
#include "core/online.h"
#include "core/partition.h"
#include "gen/brinkhoff.h"
#include "gen/synthetic.h"
#include "serve/catalog.h"
#include "serve/query.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::MakeMemStore;
using ::k2::testing::Str;

struct FedCatalog {
  std::string source;
  std::unique_ptr<MemoryStore> store;  // keeps footprint reads alive
  std::unique_ptr<ConvoyCatalog> catalog;
  std::shared_ptr<const CatalogSnapshot> snap;
};

FedCatalog FeedFromBatch(const Dataset& data, const MiningParams& params) {
  FedCatalog fed;
  fed.source = "batch";
  fed.store = MakeMemStore(data);
  auto mined = MineK2Hop(fed.store.get(), params);
  K2_CHECK(mined.ok());
  fed.catalog = std::make_unique<ConvoyCatalog>();
  K2_CHECK_OK(fed.catalog->AddConvoys(mined.value(), fed.store.get()));
  fed.snap = fed.catalog->Publish();
  return fed;
}

FedCatalog FeedFromOnline(const Dataset& data, const MiningParams& params) {
  FedCatalog fed;
  fed.source = "online";
  fed.store = std::make_unique<MemoryStore>();
  fed.catalog = std::make_unique<ConvoyCatalog>();
  OnlineK2HopOptions options;
  // Publish on every closed convoy: the catalog lives through many interim
  // epochs before the reconcile, like a real serving deployment would.
  options.on_closed = fed.catalog->OnClosedHook(fed.store.get(), 1);
  OnlineK2HopMiner miner(fed.store.get(), params, options);
  for (Timestamp t : data.timestamps()) {
    K2_CHECK_OK(miner.AppendTick(t, SnapshotPoints(data, t)));
  }
  auto final_result = miner.Finalize();
  K2_CHECK(final_result.ok());
  K2_CHECK_OK(fed.catalog->hook_status());
  K2_CHECK_OK(fed.catalog->ReplaceAll(final_result.value(), fed.store.get()));
  fed.snap = fed.catalog->Publish();
  return fed;
}

FedCatalog FeedFromPartitioned(const Dataset& data,
                               const MiningParams& params) {
  FedCatalog fed;
  fed.source = "partitioned";
  fed.store = MakeMemStore(data);
  PartitionedK2HopOptions options;
  options.num_shards = 3;
  options.num_threads = 2;
  auto mined = MinePartitionedK2Hop(fed.store.get(), params, options);
  K2_CHECK(mined.ok());
  fed.catalog = std::make_unique<ConvoyCatalog>();
  K2_CHECK_OK(fed.catalog->AddConvoys(mined.value(), fed.store.get()));
  fed.snap = fed.catalog->Publish();
  return fed;
}

/// Bounding box of the dataset, for region probes.
Rect BoundingBox(const Dataset& data) {
  Rect box;
  if (data.empty()) return box;
  box.min_x = box.max_x = data.records()[0].x;
  box.min_y = box.max_y = data.records()[0].y;
  for (const PointRecord& rec : data.records()) {
    box.min_x = std::min(box.min_x, rec.x);
    box.max_x = std::max(box.max_x, rec.x);
    box.min_y = std::min(box.min_y, rec.y);
    box.max_y = std::max(box.max_y, rec.y);
  }
  return box;
}

/// Materializes ids so failure messages show convoys, not indexes.
std::vector<Convoy> Resolve(const CatalogSnapshot& snap,
                            const std::vector<ConvoyId>& ids) {
  std::vector<Convoy> out;
  out.reserve(ids.size());
  for (ConvoyId id : ids) out.push_back(snap.convoy(id));
  return out;
}

void ExpectIdenticalAnswers(const std::vector<FedCatalog>& fed,
                            const Dataset& data) {
  const CatalogSnapshot& reference = *fed[0].snap;

  // The snapshots themselves must be identical convoy-for-convoy (the
  // miners are byte-identical) and footprint-for-footprint.
  for (const FedCatalog& other : fed) {
    ASSERT_EQ(other.snap->convoys(), reference.convoys())
        << fed[0].source << " vs " << other.source << "\nref:\n"
        << Str(reference.convoys()) << "other:\n"
        << Str(other.snap->convoys());
    EXPECT_EQ(other.snap->footprint_points(), reference.footprint_points())
        << fed[0].source << " vs " << other.source;
  }

  std::vector<ConvoyId> expected, got;

  // ByObject: every object id that occurs in the data, plus a stranger.
  std::vector<ObjectId> oids;
  for (const PointRecord& rec : data.records()) oids.push_back(rec.oid);
  std::sort(oids.begin(), oids.end());
  oids.erase(std::unique(oids.begin(), oids.end()), oids.end());
  oids.push_back(1u << 30);
  for (ObjectId oid : oids) {
    reference.ByObject(oid, &expected);
    for (const FedCatalog& other : fed) {
      other.snap->ByObject(oid, &got);
      ASSERT_EQ(got, expected) << other.source << ": ByObject(" << oid << ")";
    }
  }

  // ByTimeWindow: a sweep of windows over (and beyond) the tick range.
  const TimeRange range = data.time_range();
  const Timestamp span = static_cast<Timestamp>(range.length());
  const Timestamp step = std::max<Timestamp>(1, span / 13);
  for (Timestamp a = range.start - step; a <= range.end + step; a += step) {
    for (Timestamp width : {Timestamp{0}, step, static_cast<Timestamp>(
                                                    2 * step + 1),
                            span}) {
      const TimeRange window{a, static_cast<Timestamp>(a + width)};
      reference.ByTimeWindow(window, &expected);
      for (const FedCatalog& other : fed) {
        other.snap->ByTimeWindow(window, &got);
        ASSERT_EQ(Resolve(*other.snap, got), Resolve(reference, expected))
            << other.source << ": ByTimeWindow([" << window.start << ","
            << window.end << "])";
      }
    }
  }

  // ByRegion: a grid of rects tiling the bounding box at two granularities,
  // plus the whole box and a far-away rect.
  const Rect box = BoundingBox(data);
  std::vector<Rect> rects = {box,
                             Rect{box.max_x + 100.0, box.max_y + 100.0,
                                  box.max_x + 200.0, box.max_y + 200.0}};
  for (int cells : {3, 7}) {
    const double w = (box.max_x - box.min_x) / cells;
    const double h = (box.max_y - box.min_y) / cells;
    for (int i = 0; i < cells; ++i) {
      for (int j = 0; j < cells; ++j) {
        rects.push_back(Rect{box.min_x + i * w, box.min_y + j * h,
                             box.min_x + (i + 1) * w,
                             box.min_y + (j + 1) * h});
      }
    }
  }
  for (const Rect& rect : rects) {
    reference.ByRegion(rect, &expected);
    for (const FedCatalog& other : fed) {
      other.snap->ByRegion(rect, &got);
      ASSERT_EQ(got, expected)
          << other.source << ": ByRegion([" << rect.min_x << "," << rect.min_y
          << "," << rect.max_x << "," << rect.max_y << "])";
    }
  }

  // TopK under both metrics, k from 1 to beyond the catalog size.
  for (ConvoyRank rank : {ConvoyRank::kLongest, ConvoyRank::kLargest}) {
    for (size_t k : {size_t{1}, size_t{3}, reference.size(),
                     reference.size() + 5}) {
      ConvoyQueryEngine::TopKIds(reference, {}, rank, k, &expected);
      for (const FedCatalog& other : fed) {
        ConvoyQueryEngine::TopKIds(*other.snap, {}, rank, k, &got);
        ASSERT_EQ(got, expected) << other.source << ": TopK(k=" << k << ")";
      }
    }
  }

  // Random conjunctions (object AND window AND region in every subset).
  Rng rng(4242);
  for (int trial = 0; trial < 60; ++trial) {
    ConvoyQuery query;
    if (rng.NextInt(2) == 0 && !oids.empty()) {
      query.object = oids[rng.NextInt(oids.size())];
    }
    if (rng.NextInt(2) == 0) {
      const Timestamp a = static_cast<Timestamp>(
          range.start + static_cast<Timestamp>(rng.NextInt(
                            static_cast<uint64_t>(span) + 1)));
      query.time_window =
          TimeRange{a, static_cast<Timestamp>(
                           a + static_cast<Timestamp>(rng.NextInt(
                                   static_cast<uint64_t>(span) + 1)))};
    }
    if (rng.NextInt(2) == 0) {
      const double x0 = rng.Uniform(box.min_x, box.max_x);
      const double y0 = rng.Uniform(box.min_y, box.max_y);
      query.region = Rect{x0, y0, x0 + rng.Uniform(0.0, box.max_x - box.min_x),
                          y0 + rng.Uniform(0.0, box.max_y - box.min_y)};
    }
    ConvoyQueryEngine::FindIds(reference, query, &expected);
    for (const FedCatalog& other : fed) {
      ConvoyQueryEngine::FindIds(*other.snap, query, &got);
      ASSERT_EQ(got, expected) << other.source << ": conjunction trial "
                               << trial;
    }
    ConvoyQueryEngine::TopKIds(reference, query, ConvoyRank::kLargest, 4,
                               &expected);
    for (const FedCatalog& other : fed) {
      ConvoyQueryEngine::TopKIds(*other.snap, query, ConvoyRank::kLargest, 4,
                                 &got);
      ASSERT_EQ(got, expected) << other.source << ": top-k conjunction trial "
                               << trial;
    }
  }
}

void RunDifferential(const Dataset& data, const MiningParams& params) {
  std::vector<FedCatalog> fed;
  fed.push_back(FeedFromBatch(data, params));
  fed.push_back(FeedFromOnline(data, params));
  fed.push_back(FeedFromPartitioned(data, params));
  ASSERT_FALSE(fed[0].snap->empty())
      << "degenerate differential: no convoys mined";
  ExpectIdenticalAnswers(fed, data);
}

TEST(ServeDifferentialTest, RandomWalks) {
  for (const uint64_t seed : {11u, 57u}) {
    RandomWalkSpec spec;
    spec.seed = seed;
    spec.num_objects = 24;
    spec.num_ticks = 60;
    spec.area = 40.0;
    spec.step = 5.0;
    const Dataset data = GenerateRandomWalk(spec);
    RunDifferential(data, MiningParams{2, 6, 6.0});
  }
}

TEST(ServeDifferentialTest, GappedTickStream) {
  RandomWalkSpec spec;
  spec.seed = 23;
  spec.num_objects = 20;
  spec.num_ticks = 80;
  spec.area = 40.0;
  spec.step = 5.0;
  const Dataset walk = GenerateRandomWalk(spec);
  DatasetBuilder builder;
  for (const PointRecord& rec : walk.records()) {
    if (rec.t % 7 == 1) continue;  // drop whole ticks
    builder.Add(rec);
  }
  RunDifferential(builder.Build(), MiningParams{2, 6, 6.0});
}

TEST(ServeDifferentialTest, Brinkhoff) {
  BrinkhoffParams params;
  params.grid.nx = 6;
  params.grid.ny = 6;
  params.grid.spacing = 500.0;
  params.max_time = 90;
  params.obj_begin = 120;
  params.obj_time = 4;
  params.seed = 5;
  const Dataset data = GenerateBrinkhoff(params);
  RunDifferential(data, MiningParams{2, 6, 150.0});  // 42 convoys
}

TEST(ServeDifferentialTest, CoarseFootprintStrideStaysIdentical) {
  // A catalog with stride > 1 samples fewer footprint points; all three
  // sources must still agree with each other at that stride.
  RandomWalkSpec spec;
  spec.seed = 91;
  spec.num_objects = 18;
  spec.num_ticks = 50;
  spec.area = 30.0;
  spec.step = 4.0;
  const Dataset data = GenerateRandomWalk(spec);
  const MiningParams params{2, 6, 5.0};

  CatalogOptions coarse;
  coarse.footprint_stride = 3;

  std::vector<FedCatalog> fed;
  // Batch with coarse stride.
  {
    FedCatalog f;
    f.source = "batch-coarse";
    f.store = MakeMemStore(data);
    auto mined = MineK2Hop(f.store.get(), params);
    K2_CHECK(mined.ok());
    f.catalog = std::make_unique<ConvoyCatalog>(coarse);
    K2_CHECK_OK(f.catalog->AddConvoys(mined.value(), f.store.get()));
    f.snap = f.catalog->Publish();
    fed.push_back(std::move(f));
  }
  // Partitioned with coarse stride.
  {
    FedCatalog f;
    f.source = "partitioned-coarse";
    f.store = MakeMemStore(data);
    auto mined = MinePartitionedK2Hop(f.store.get(), params, {});
    K2_CHECK(mined.ok());
    f.catalog = std::make_unique<ConvoyCatalog>(coarse);
    K2_CHECK_OK(f.catalog->AddConvoys(mined.value(), f.store.get()));
    f.snap = f.catalog->Publish();
    fed.push_back(std::move(f));
  }
  ASSERT_FALSE(fed[0].snap->empty());
  ExpectIdenticalAnswers(fed, data);
}

}  // namespace
}  // namespace k2
