// Unit tests for the k/2-hop phases, including the paper's own worked
// examples: the Sec. 4.2 candidate-cluster intersection, the Table 2 / Fig. 6
// HWMT run, and the Fig. 5 / Table 3 merge.
#include <gtest/gtest.h>

#include "baselines/gold.h"
#include "cluster/store_clustering.h"
#include "common/rng.h"
#include "core/k2hop.h"
#include "gen/synthetic.h"
#include "storage/memory_store.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::C;
using ::k2::testing::kGone;
using ::k2::testing::MakeMemStore;
using ::k2::testing::MakeTracks;

// ---------------------------------------------------------------------------
// BenchmarkPoints (Lemma 3 coverage)
// ---------------------------------------------------------------------------

TEST(BenchmarkPointsTest, SpacingIsFloorKHalf) {
  EXPECT_EQ(BenchmarkPoints({0, 16}, 8),
            (std::vector<Timestamp>{0, 4, 8, 12, 16}));
  EXPECT_EQ(BenchmarkPoints({0, 10}, 5),
            (std::vector<Timestamp>{0, 2, 4, 6, 8, 10}));
}

TEST(BenchmarkPointsTest, KEqualTwoMakesEveryTickABenchmark) {
  EXPECT_EQ(BenchmarkPoints({3, 6}, 2), (std::vector<Timestamp>{3, 4, 5, 6}));
}

TEST(BenchmarkPointsTest, EmptyRange) {
  EXPECT_TRUE(BenchmarkPoints({0, -1}, 8).empty());
}

TEST(BenchmarkPointsTest, Lemma3EveryKWindowContainsTwoConsecutive) {
  // For any placement of a length-k interval inside the range, at least two
  // consecutive benchmark points must fall inside it.
  for (int k = 2; k <= 12; ++k) {
    const TimeRange range{0, 60};
    const std::vector<Timestamp> b = BenchmarkPoints(range, k);
    for (Timestamp s = range.start; s + k - 1 <= range.end; ++s) {
      const Timestamp e = s + k - 1;
      int longest_consecutive = 0, run = 0;
      for (size_t i = 0; i < b.size(); ++i) {
        if (b[i] >= s && b[i] <= e) {
          run = (i > 0 && b[i - 1] >= s) ? run + 1 : 1;
          longest_consecutive = std::max(longest_consecutive, run);
        }
      }
      ASSERT_GE(longest_consecutive, 2)
          << "k=" << k << " window [" << s << "," << e << "]";
    }
  }
}

// ---------------------------------------------------------------------------
// CandidateClusters — the paper's Sec. 4.2 example
// ---------------------------------------------------------------------------

TEST(CandidateClustersTest, PaperSection42Example) {
  // C1 = {{a,b,c,d},{e,f,g,h},{i,j,k}}, C2 = {{a,b,c},{d,e},{f,g,h},{i,j}}
  // with a..k = 1..11; for m=3 the candidate set is {{a,b,c},{f,g,h}}.
  const std::vector<ObjectSet> c1 = {ObjectSet::Of({1, 2, 3, 4}),
                                     ObjectSet::Of({5, 6, 7, 8}),
                                     ObjectSet::Of({9, 10, 11})};
  const std::vector<ObjectSet> c2 = {
      ObjectSet::Of({1, 2, 3}), ObjectSet::Of({4, 5}), ObjectSet::Of({6, 7, 8}),
      ObjectSet::Of({9, 10})};
  const std::vector<ObjectSet> cc = CandidateClusters(c1, c2, 3);
  ASSERT_EQ(cc.size(), 2u);
  EXPECT_EQ(cc[0], ObjectSet::Of({1, 2, 3}));
  EXPECT_EQ(cc[1], ObjectSet::Of({6, 7, 8}));
}

// Reference implementation of CandidateClusters before the hash-join
// rewrite: all-pairs merge intersections. The randomized property test
// below pins the rewrite to it on disjoint cluster sets.
std::vector<ObjectSet> CandidateClustersAllPairs(
    const std::vector<ObjectSet>& left, const std::vector<ObjectSet>& right,
    int m) {
  std::vector<ObjectSet> out;
  for (const ObjectSet& a : left) {
    for (const ObjectSet& b : right) {
      ObjectSet x = ObjectSet::Intersect(a, b);
      if (x.size() >= static_cast<size_t>(m)) out.push_back(std::move(x));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Random partition of a subset of [0, universe) into disjoint clusters —
// the shape DBSCAN output always has within one tick.
std::vector<ObjectSet> RandomDisjointClusters(Rng* rng, ObjectId universe,
                                              int max_clusters) {
  std::vector<ObjectId> ids;
  for (ObjectId oid = 0; oid < universe; ++oid) {
    if (rng->NextInt(3) != 0) ids.push_back(oid);  // ~2/3 of objects present
  }
  // Shuffle, then cut into random contiguous chunks.
  for (size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rng->NextInt(i)]);
  }
  std::vector<ObjectSet> clusters;
  size_t at = 0;
  const int n_clusters = 1 + static_cast<int>(rng->NextInt(max_clusters));
  for (int c = 0; c < n_clusters && at < ids.size(); ++c) {
    const size_t remaining = ids.size() - at;
    const size_t take = c + 1 == n_clusters
                            ? remaining
                            : 1 + rng->NextInt(remaining);
    clusters.push_back(ObjectSet(std::vector<ObjectId>(
        ids.begin() + at, ids.begin() + at + take)));
    at += take;
  }
  return clusters;
}

TEST(CandidateClustersTest, HashJoinMatchesAllPairsOnRandomPartitions) {
  Rng rng(20260726);
  for (int trial = 0; trial < 200; ++trial) {
    const ObjectId universe = 2 + static_cast<ObjectId>(rng.NextInt(60));
    const std::vector<ObjectSet> left =
        RandomDisjointClusters(&rng, universe, 6);
    const std::vector<ObjectSet> right =
        RandomDisjointClusters(&rng, universe, 6);
    const int m = 2 + static_cast<int>(rng.NextInt(4));
    const std::vector<ObjectSet> joined = CandidateClusters(left, right, m);
    const std::vector<ObjectSet> reference =
        CandidateClustersAllPairs(left, right, m);
    ASSERT_EQ(joined, reference)
        << "trial " << trial << ": universe=" << universe << " m=" << m
        << " left=" << left.size() << " right=" << right.size();
  }
}

TEST(CandidateClustersTest, EmptyWhenNothingSurvives) {
  EXPECT_TRUE(CandidateClusters({ObjectSet::Of({1, 2})},
                                {ObjectSet::Of({3, 4})}, 2)
                  .empty());
}

// ---------------------------------------------------------------------------
// HWMT — the paper's Fig. 6 / Table 2 example
// ---------------------------------------------------------------------------

// Objects a..j=0..9, x,y,z=10,11,12, m,n,o=13,14,15. Benchmarks b0=0, b1=8
// (k=16). At t=0: {a..j}, {x,y,z}, {m,n,o} cluster; at t=8: {a,b,c,d} and
// {x,y,z}. Candidates: {a,b,c,d} and {x,y,z}. Inside the window {a,b,c,d}
// stay together while {x,y,z} disperse at t=4 => HWMT returns {{a,b,c,d}}.
class HwmtPaperExample : public ::testing::Test {
 protected:
  Dataset MakeData() {
    std::vector<std::vector<double>> tracks;
    // a,b,c,d: together the whole window at x = 0,1,2,3 (eps=1.5 chain).
    for (int i = 0; i < 4; ++i) tracks.push_back(std::vector<double>(9, i * 1.0));
    // e..j: with the a-cluster at t=0 only, then far away, each on its own.
    for (int i = 4; i < 10; ++i) {
      std::vector<double> track(9, 1000.0 + i * 500.0);
      track[0] = 4.0 + (i - 4) * 1.0;
      tracks.push_back(track);
    }
    // x,y,z (10..12): together at t=0..3 and at t=8, dispersed at t=4..7.
    for (int i = 10; i < 13; ++i) {
      std::vector<double> track(9, 0.0);
      for (int t = 0; t <= 8; ++t) {
        const double base = 100.0 + (i - 10) * 1.0;
        if (t >= 4 && t <= 7) {
          track[t] = 2000.0 + i * 300.0 + t * 7.0;  // dispersed
        } else {
          track[t] = base;
        }
      }
      tracks.push_back(track);
    }
    // m,n,o (13..15): together at t=0 only, absent afterwards.
    for (int i = 13; i < 16; ++i) {
      std::vector<double> track(9, kGone);
      track[0] = 200.0 + (i - 13) * 1.0;
      tracks.push_back(track);
    }
    return MakeTracks(tracks);
  }
  const MiningParams params_{3, 16, 1.5};
};

TEST_F(HwmtPaperExample, CandidateClustersMatchPaper) {
  auto store = MakeMemStore(MakeData());
  auto c0 = ClusterSnapshot(store.get(), 0, params_);
  auto c8 = ClusterSnapshot(store.get(), 8, params_);
  ASSERT_TRUE(c0.ok() && c8.ok());
  ASSERT_EQ(c0.value().size(), 3u);  // {a..j}, {x,y,z}, {m,n,o}
  ASSERT_EQ(c8.value().size(), 2u);  // {a,b,c,d}, {x,y,z}
  const auto cc = CandidateClusters(c0.value(), c8.value(), params_.m);
  ASSERT_EQ(cc.size(), 2u);
  EXPECT_EQ(cc[0], ObjectSet::Of({0, 1, 2, 3}));
  EXPECT_EQ(cc[1], ObjectSet::Of({10, 11, 12}));
}

TEST_F(HwmtPaperExample, HwmtPrunesCoincidentalCluster) {
  auto store = MakeMemStore(MakeData());
  const std::vector<ObjectSet> cc = {ObjectSet::Of({0, 1, 2, 3}),
                                     ObjectSet::Of({10, 11, 12})};
  auto spanning = HwmtSpanning(store.get(), params_, 0, 8, cc);
  ASSERT_TRUE(spanning.ok());
  ASSERT_EQ(spanning.value().size(), 1u);
  EXPECT_EQ(spanning.value()[0], ObjectSet::Of({0, 1, 2, 3}));
}

TEST_F(HwmtPaperExample, LeftToRightOrderFindsTheSameSpanningConvoys) {
  auto store = MakeMemStore(MakeData());
  const std::vector<ObjectSet> cc = {ObjectSet::Of({0, 1, 2, 3}),
                                     ObjectSet::Of({10, 11, 12})};
  auto binary = HwmtSpanning(store.get(), params_, 0, 8, cc, true);
  auto linear = HwmtSpanning(store.get(), params_, 0, 8, cc, false);
  ASSERT_TRUE(binary.ok() && linear.ok());
  EXPECT_EQ(binary.value(), linear.value());
}

TEST(HwmtTest, EmptyCandidatesShortCircuit) {
  auto store = MakeMemStore(MakeTracks({{0, 0, 0}, {0, 0, 0}}));
  auto spanning = HwmtSpanning(store.get(), {2, 2, 1.0}, 0, 2, {});
  ASSERT_TRUE(spanning.ok());
  EXPECT_TRUE(spanning.value().empty());
}

TEST(HwmtTest, AdjacentBenchmarksHaveNoInterior) {
  // Hop = 1: candidates pass through untouched (no interior ticks).
  auto store = MakeMemStore(MakeTracks({{0, 0}, {0.5, 0.5}}));
  const std::vector<ObjectSet> cc = {ObjectSet::Of({0, 1})};
  auto spanning = HwmtSpanning(store.get(), {2, 2, 1.0}, 0, 1, cc);
  ASSERT_TRUE(spanning.ok());
  EXPECT_EQ(spanning.value(), cc);
}

// ---------------------------------------------------------------------------
// Merge — the paper's Fig. 5 / Table 3 example
// ---------------------------------------------------------------------------

TEST(MergeTest, PaperTable3Example) {
  // Objects a..k = 1..11. Four hop-windows [b0,b1],[b1,b2],[b2,b3],[b3,b4].
  // H0: {a,b,c,d}, {e,f,g,h}, {i,j,k}
  // H1: {a,b,c,d}, {e,f},{g,h}
  // H2: {a,b,e,f}, {c,d,g,h}, {i,j,k}
  // H3: {a,b}, {c,d,g,h}, {e,f}
  const std::vector<Timestamp> benchmarks{0, 4, 8, 12, 16};
  const std::vector<std::vector<ObjectSet>> spanning = {
      {ObjectSet::Of({1, 2, 3, 4}), ObjectSet::Of({5, 6, 7, 8}),
       ObjectSet::Of({9, 10, 11})},
      {ObjectSet::Of({1, 2, 3, 4}), ObjectSet::Of({5, 6}),
       ObjectSet::Of({7, 8})},
      {ObjectSet::Of({1, 2, 5, 6}), ObjectSet::Of({3, 4, 7, 8}),
       ObjectSet::Of({9, 10, 11})},
      {ObjectSet::Of({1, 2}), ObjectSet::Of({3, 4, 7, 8}),
       ObjectSet::Of({5, 6})},
  };
  const std::vector<Convoy> merged =
      MergeSpanningConvoys(spanning, benchmarks, 2);
  // Expected maximal spanning convoys (Table 3, final column plus the
  // finished rows of earlier columns):
  const std::vector<Convoy> expected = FilterMaximal({
      C({1, 2, 3, 4}, 0, 8),   // {a,b,c,d} [b0,b2]
      C({5, 6, 7, 8}, 0, 4),   // {e,f,g,h} [b0,b1]
      C({9, 10, 11}, 0, 4),    // {i,j,k}   [b0,b1]
      C({1, 2}, 0, 16),        // {a,b}     [b0,b4]
      C({3, 4}, 0, 16),        // {c,d}     [b0,b4]
      C({5, 6}, 0, 16),        // {e,f}     [b0,b4]
      C({7, 8}, 0, 16),        // {g,h}     [b0,b4]
      C({3, 4, 7, 8}, 8, 16),  // {c,d,g,h} [b2,b4]
      C({1, 2, 5, 6}, 8, 12),  // {a,b,e,f} [b2,b3]
      C({9, 10, 11}, 8, 12),   // {i,j,k}   [b2,b3]
  });
  EXPECT_SAME_CONVOYS(merged, expected);
}

TEST(MergeTest, EmptyWindowBreaksChains) {
  const std::vector<Timestamp> benchmarks{0, 4, 8};
  const std::vector<std::vector<ObjectSet>> spanning = {
      {ObjectSet::Of({1, 2})}, {}};
  const auto merged = MergeSpanningConvoys(spanning, benchmarks, 2);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], C({1, 2}, 0, 4));
}

TEST(MergeTest, NoWindows) {
  EXPECT_TRUE(MergeSpanningConvoys({}, {0}, 2).empty());
}

// ---------------------------------------------------------------------------
// Extension
// ---------------------------------------------------------------------------

TEST(ExtendTest, RightExtensionFindsActualEnd) {
  // {0,1} together t=0..6, apart from t=7.
  auto store = MakeMemStore(MakeTracks({{0, 0, 0, 0, 0, 0, 0, 50, 50, 50},
                                        {0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5,
                                         99, 99, 99}}));
  auto out = ExtendRight(store.get(), {2, 4, 1.0}, {C({0, 1}, 0, 4)}, 9);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value()[0], C({0, 1}, 0, 6));
}

TEST(ExtendTest, LeftExtensionFindsActualStart) {
  auto store = MakeMemStore(MakeTracks({{50, 0, 0, 0, 0, 0}, {99, 0.5, 0.5, 0.5, 0.5, 0.5}}));
  auto out = ExtendLeft(store.get(), {2, 3, 1.0}, {C({0, 1}, 3, 5)}, 0);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value()[0], C({0, 1}, 1, 5));
}

TEST(ExtendTest, SplitDuringExtensionKeepsBothPieces) {
  // {0,1,2} together t=0..3; at t=4..5 only {0,1} stay together.
  auto store = MakeMemStore(MakeTracks({{0, 0, 0, 0, 0, 0},
                                        {0.5, 0.5, 0.5, 0.5, 0.5, 0.5},
                                        {1.0, 1.0, 1.0, 1.0, 77, 77}}));
  auto out = ExtendRight(store.get(), {2, 2, 1.0}, {C({0, 1, 2}, 0, 3)}, 5);
  ASSERT_TRUE(out.ok());
  const std::vector<Convoy> expected = {C({0, 1}, 0, 5), C({0, 1, 2}, 0, 3)};
  EXPECT_SAME_CONVOYS(out.value(), expected);
}

TEST(ExtendTest, ExtensionStopsAtDatasetBoundary) {
  auto store = MakeMemStore(MakeTracks({{0, 0, 0}, {0.5, 0.5, 0.5}}));
  auto out = ExtendRight(store.get(), {2, 2, 1.0}, {C({0, 1}, 0, 1)}, 2);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value()[0], C({0, 1}, 0, 2));
}

// ---------------------------------------------------------------------------
// End-to-end driver behaviour
// ---------------------------------------------------------------------------

TEST(K2HopTest, RangeShorterThanKYieldsNothing) {
  auto store = MakeMemStore(MakeTracks({{0, 0}, {0.5, 0.5}}));
  auto out = MineK2Hop(store.get(), {2, 5, 1.0});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
}

TEST(K2HopTest, InvalidParamsRejected) {
  auto store = MakeMemStore(MakeTracks({{0, 0}}));
  EXPECT_FALSE(MineK2Hop(store.get(), {1, 5, 1.0}).ok());
  EXPECT_FALSE(MineK2Hop(store.get(), {2, 0, 1.0}).ok());
  EXPECT_FALSE(MineK2Hop(store.get(), {2, 5, -1.0}).ok());
}

TEST(K2HopTest, StatsAreFilled) {
  // A clean convoy over 12 ticks plus scattered noise.
  std::vector<std::vector<double>> tracks = {
      std::vector<double>(12, 0.0), std::vector<double>(12, 0.5)};
  for (int n = 0; n < 6; ++n) {
    std::vector<double> noise;
    for (int t = 0; t < 12; ++t) noise.push_back(500.0 + 97.0 * n + 13.0 * t);
    tracks.push_back(noise);
  }
  auto store = MakeMemStore(MakeTracks(tracks));
  K2HopStats stats;
  auto out = MineK2Hop(store.get(), {2, 6, 1.0}, {}, &stats);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value()[0], C({0, 1}, 0, 11));

  EXPECT_EQ(stats.benchmark_points, 4u);  // ticks 0,3,6,9 with k=6
  EXPECT_EQ(stats.hop_windows, 3u);
  EXPECT_GT(stats.candidate_clusters, 0u);
  EXPECT_GT(stats.prevalidation_convoys, 0u);
  EXPECT_EQ(stats.total_points, store->num_points());
  EXPECT_GT(stats.points_processed(), 0u);
  EXPECT_GT(stats.pruning_ratio(), 0.0);  // noise was pruned
  EXPECT_GT(stats.phases.Total(), 0.0);
  EXPECT_GE(stats.phases.Get("HWMT"), 0.0);
}

TEST(K2HopTest, PrunesNoiseObjectsFromPointReads) {
  // 2 convoy objects + 30 noise objects; HWMT point reads should only ever
  // touch candidate objects, so the pruning ratio must be high.
  std::vector<std::vector<double>> tracks = {std::vector<double>(20, 0.0),
                                             std::vector<double>(20, 0.4)};
  for (int n = 0; n < 30; ++n) {
    std::vector<double> noise;
    for (int t = 0; t < 20; ++t) noise.push_back(300.0 + n * 41.0 + t * 17.0);
    tracks.push_back(noise);
  }
  auto store = MakeMemStore(MakeTracks(tracks));
  K2HopStats stats;
  auto out = MineK2Hop(store.get(), {2, 8, 1.0}, {}, &stats);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_GT(stats.pruning_ratio(), 0.5);
}

TEST(K2HopTest, ValidateFalseReturnsPartiallyConnectedCandidates) {
  auto store = MakeMemStore(MakeTracks({std::vector<double>(10, 0.0),
                                        std::vector<double>(10, 0.5)}));
  K2HopOptions options;
  options.validate = false;
  auto out = MineK2Hop(store.get(), {2, 4, 1.0}, options);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value()[0], C({0, 1}, 0, 9));
}

TEST(K2HopTest, ResultsAreIdenticalForEveryThreadCount) {
  // The parallel pipeline must be exactly result-equivalent: benchmark
  // clustering and hop-window verification are gathered by index, so any
  // num_threads yields byte-identical convoy lists. Dense random walks are
  // the adversarial input (chance convoys, splits, merges).
  for (uint64_t seed : {7u, 19u, 42u}) {
    RandomWalkSpec spec;
    spec.num_objects = 24;
    spec.num_ticks = 40;
    spec.area = 24.0;
    spec.step = 3.0;
    spec.seed = seed;
    auto store = MakeMemStore(GenerateRandomWalk(spec));
    const MiningParams params{3, 6, 7.0};

    K2HopOptions options;
    options.num_threads = 1;
    auto sequential = MineK2Hop(store.get(), params, options);
    ASSERT_TRUE(sequential.ok());
    ASSERT_FALSE(sequential.value().empty()) << "weak test input, seed=" << seed;

    for (int threads : {2, 8}) {
      options.num_threads = threads;
      auto parallel = MineK2Hop(store.get(), params, options);
      ASSERT_TRUE(parallel.ok());
      EXPECT_EQ(parallel.value(), sequential.value())
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace k2
