// Brinkhoff-style network-based moving-object generator (paper Sec. 6.2.3,
// Table 4): objects appear over time, route over a road network at per-edge
// speeds, and disappear at their destination. Parameter names mirror the
// original generator (ObjBegin, ObjTime, MaxTime).
#ifndef K2_GEN_BRINKHOFF_H_
#define K2_GEN_BRINKHOFF_H_

#include <cstdint>
#include <string>

#include "gen/road_network.h"
#include "model/dataset.h"

namespace k2 {

struct BrinkhoffParams {
  RoadNetwork::GridSpec grid;
  int max_time = 1000;     ///< simulation ticks ("MaxTime")
  int obj_begin = 400;     ///< objects alive at tick 0 ("ObjBegin")
  int obj_time = 4;        ///< objects spawned per tick ("ObjTime")
  double gps_noise = 2.0;  ///< metres of positional noise per sample
  uint64_t seed = 42;
};

/// Properties of a generated dataset, printed by the Table-4 bench.
struct BrinkhoffStats {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  double data_space_width = 0.0;
  double data_space_height = 0.0;
  int max_time = 0;
  uint64_t moving_objects = 0;
  uint64_t points = 0;

  std::string DebugString() const;
};

/// Runs the simulation; `stats` may be null.
Dataset GenerateBrinkhoff(const BrinkhoffParams& params,
                          BrinkhoffStats* stats = nullptr);

}  // namespace k2

#endif  // K2_GEN_BRINKHOFF_H_
