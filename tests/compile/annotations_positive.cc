// Positive control for the thread-annotation compile checks: disciplined
// locking through k2::Mutex/MutexLock must build warning-free under BOTH
// compilers — clang with the analysis live and gcc with the annotations
// compiled out to nothing. If this file fails, the macro layer itself is
// broken and the negative checks below prove nothing.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() K2_EXCLUDES(mu_) {
    k2::MutexLock lock(mu_);
    IncrementLocked();
  }
  int Get() K2_EXCLUDES(mu_) {
    k2::MutexLock lock(mu_);
    return value_;
  }

 private:
  void IncrementLocked() K2_REQUIRES(mu_) { ++value_; }

  k2::Mutex mu_;
  int value_ K2_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.Get() == 1 ? 0 : 1;
}
