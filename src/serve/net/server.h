// k2_server core: a thread-per-core epoll event loop serving the wire
// protocol (serve/net/protocol.h) over TCP.
//
// Architecture. Start() binds `num_workers` listening sockets to the same
// address with SO_REUSEPORT — the kernel load-balances incoming connections
// across them — and runs one worker thread per listener. Each worker owns
// its own epoll instance and every connection it accepted for that
// connection's whole life: no cross-thread handoff, no shared poll state,
// no locks on the query path. Workers answer kQuery/kTopK off the catalog's
// lock-free SnapshotCell read path (one pinned snapshot per request);
// ingest-side messages (kIngest/kPublish, and kStats' miner counters)
// serialize on one mutex around the single OnlineK2HopMiner + catalog
// writer, exactly matching the miner's single-writer contract. That mutex
// (Impl::ingest_mu) and every other lock in the tree are annotated for
// clang's thread-safety analysis and tabulated — guards, acquisition
// order, and the lock-free reader invariant — in docs/ARCHITECTURE.md,
// section "Lock discipline".
//
// Shutdown. RequestShutdown() (also triggered by a kShutdown message or
// the binary's SIGINT/SIGTERM handler) stops all accepting, then each
// worker drains: every fully received request is still answered, reply
// buffers are flushed under a bounded deadline, and only after every worker
// has exited does the server tear down the catalog — so no in-flight query
// can observe a dying catalog. Bytes of requests still incomplete at
// shutdown are discarded (the client sees a clean close with no reply).
//
// Error scoping. A malformed frame (bad CRC, oversize, bad version, bad
// type) earns the sender one kError frame and a close of THAT connection;
// request-level failures (malformed body, rejected tick) are kError replies
// on a connection that stays open. Neither disturbs other connections or
// the server.
#ifndef K2_SERVE_NET_SERVER_H_
#define K2_SERVE_NET_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "serve/net/protocol.h"

namespace k2::net {

struct K2ServerOptions {
  /// IPv4 address to bind. The default serves loopback only; bind 0.0.0.0
  /// explicitly to expose the server.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Worker threads == SO_REUSEPORT listeners; 0 = one per hardware thread.
  int num_workers = 0;
  /// Mining parameters of the stream fed through kIngest.
  MiningParams params{2, 8, 150.0};
  /// Republish the catalog snapshot every N eagerly closed convoys (the
  /// OnClosedHook cadence); kPublish forces one regardless.
  size_t publish_every = 1;
  /// Per-connection frame payload cap (decode side).
  size_t max_frame_payload = kMaxFramePayload;
  /// Shutdown drain: max milliseconds each worker spends flushing one
  /// connection's pending replies before closing it anyway.
  int drain_timeout_ms = 2000;

  /// Applies the K2_SERVER_* environment knobs (PORT, HOST, WORKERS,
  /// PUBLISH_EVERY, MAX_FRAME_MB, DRAIN_TIMEOUT_MS — see
  /// docs/OPERATIONS.md) over the built-in defaults. Command-line flags in
  /// k2_server override the result.
  static K2ServerOptions FromEnv();
};

/// A running server. Construction via Start() fully binds, listens, and
/// launches the workers; destruction requests shutdown and joins them.
class K2Server {
 public:
  static Result<std::unique_ptr<K2Server>> Start(K2ServerOptions options);
  ~K2Server();

  K2Server(const K2Server&) = delete;
  K2Server& operator=(const K2Server&) = delete;

  /// The bound TCP port (resolves port 0 to the actual ephemeral port).
  uint16_t port() const { return port_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Begins graceful shutdown and returns immediately; idempotent. Safe to
  /// call from any thread. (The k2_server binary calls it from a signal
  /// handler via the self-wake eventfd, which is async-signal-safe.)
  void RequestShutdown();
  /// Blocks until every worker has drained and exited.
  void Wait();
  /// True from Start() until the last worker exits.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// File descriptor of the shutdown eventfd — write(2) any 8-byte value to
  /// trigger shutdown from a signal handler without touching this object's
  /// non-atomic state.
  int shutdown_fd() const;

  /// Serving-side health: OK, or the first sticky miner/catalog-hook error
  /// (such failures also surface to clients as kError InternalError).
  Status serving_status() const;

  /// Aggregate counters, as reported to clients via kStats.
  ServerStats stats() const;

 private:
  struct Impl;
  explicit K2Server(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
  std::vector<std::thread> workers_;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
};

}  // namespace k2::net

#endif  // K2_SERVE_NET_SERVER_H_
