#include "cluster/dbscan.h"

#include <algorithm>

#include "common/simd.h"

namespace k2 {

namespace {

// Region query used below: grid-indexed for large snapshots, brute force
// for the tiny re-clusterings that dominate HWMT / extension / validation
// (rebuilding even a flat grid for 3-10 points costs more than scanning
// them).
constexpr size_t kBruteForceThreshold = 32;

// Brute-force region query over the scratch's SoA mirror, through the same
// dispatched eps-scan kernel as the grid path. The kernel needs room for
// all n candidates (compress-store slack), so the vector is grown to the
// upper bound and trimmed to the matches written.
void BruteForceNeighbors(const DbscanScratch& scratch, double qx, double qy,
                         double eps, std::vector<uint32_t>* out) {
  const size_t n = scratch.bf_ids.size();
  const size_t written = out->size();
  out->resize(written + n);
  const size_t cnt = simd::Active().eps_scan(
      scratch.bf_xs.data(), scratch.bf_ys.data(), scratch.bf_ids.data(), n,
      qx, qy, eps * eps, out->data() + written);
  out->resize(written + cnt);
}

DbscanScratch* ThreadLocalScratch() {
  static thread_local DbscanScratch scratch;
  return &scratch;
}

// Shared worker: labels every point into scratch->labels (reused storage).
void RunDbscan(std::span<const SnapshotPoint> points, double eps, int min_pts,
               DbscanScratch* scratch, DbscanLabels* out) {
  const size_t n = points.size();
  out->label.assign(n, -1);
  out->num_clusters = 0;
  if (n == 0 || min_pts <= 0) return;

  const bool use_grid = n > kBruteForceThreshold;
  if (use_grid) {
    // Cell size = eps keeps every eps region query inside the GridIndex
    // contract (queries are only valid for eps <= the Build() cell size).
    scratch->grid.Build(points, eps);
  } else {
    scratch->bf_xs.resize(n);
    scratch->bf_ys.resize(n);
    scratch->bf_ids.resize(n);
    for (size_t j = 0; j < n; ++j) {
      scratch->bf_xs[j] = points[j].x;
      scratch->bf_ys[j] = points[j].y;
      scratch->bf_ids[j] = static_cast<uint32_t>(j);
    }
  }
  auto region_query = [&](size_t i, std::vector<uint32_t>* nbrs) {
    nbrs->clear();
    if (use_grid) {
      scratch->grid.Neighbors(i, eps, nbrs);
    } else {
      BruteForceNeighbors(*scratch, points[i].x, points[i].y, eps, nbrs);
    }
  };
  // Batched region query: fills flat CSR neighbor lists for a whole slice
  // of the seed queue, so the grid's row segments stay cache-hot across
  // queries that came from one neighborhood.
  auto region_query_batch = [&](std::span<const uint32_t> queries,
                                std::vector<uint32_t>* flat,
                                std::vector<uint32_t>* offsets) {
    if (use_grid) {
      scratch->grid.NeighborsBatch(queries, eps, flat, offsets);
      return;
    }
    flat->clear();
    offsets->clear();
    offsets->push_back(0);
    for (const uint32_t q : queries) {
      BruteForceNeighbors(*scratch, points[q].x, points[q].y, eps, flat);
      offsets->push_back(static_cast<uint32_t>(flat->size()));
    }
  };

  scratch->visited.assign(n, 0);
  std::vector<uint32_t>& neighbors = scratch->neighbors;
  std::vector<uint32_t>& seeds = scratch->seeds;
  std::vector<uint32_t>& batch = scratch->batch;
  std::vector<uint32_t>& flat = scratch->nbr_flat;
  std::vector<uint32_t>& offsets = scratch->nbr_offsets;

  for (size_t i = 0; i < n; ++i) {
    if (scratch->visited[i]) continue;
    scratch->visited[i] = 1;
    region_query(i, &neighbors);
    if (neighbors.size() < static_cast<size_t>(min_pts)) continue;  // noise or border

    const int32_t cluster = out->num_clusters++;
    out->label[i] = cluster;
    seeds.assign(neighbors.begin(), neighbors.end());
    // Batched ExpandCluster: each round takes the current tail of the seed
    // queue, marks its unvisited points, batch-fills their neighbor lists,
    // and appends the core points' neighbors. Labels are identical to the
    // one-seed-at-a-time loop: every enqueued point gets this cluster (or
    // keeps an earlier one), core-ness is a property of the point alone,
    // and the set of points ever enqueued is the density-connected closure
    // regardless of expansion order — visit marks and appends also happen
    // in the same queue order as the classic loop.
    for (size_t s = 0; s < seeds.size();) {
      const size_t end = seeds.size();
      batch.clear();
      for (size_t t = s; t < end; ++t) {
        const uint32_t j = seeds[t];
        if (out->label[j] < 0) out->label[j] = cluster;
        if (!scratch->visited[j]) {
          scratch->visited[j] = 1;
          batch.push_back(j);
        }
      }
      if (!batch.empty()) {
        region_query_batch(batch, &flat, &offsets);
        for (size_t b = 0; b < batch.size(); ++b) {
          const uint32_t lo = offsets[b];
          const uint32_t hi = offsets[b + 1];
          if (hi - lo >= static_cast<uint32_t>(min_pts)) {
            seeds.insert(seeds.end(), flat.begin() + lo, flat.begin() + hi);
          }
        }
      }
      s = end;
    }
  }
}

std::vector<ObjectSet> LabelsToClusters(std::span<const SnapshotPoint> points,
                                        const DbscanLabels& labels,
                                        int min_pts, DbscanScratch* scratch) {
  const size_t k = static_cast<size_t>(labels.num_clusters);
  std::vector<std::vector<ObjectId>>& members = scratch->members;
  if (members.size() < k) members.resize(k);
  for (size_t c = 0; c < k; ++c) members[c].clear();
  for (size_t i = 0; i < points.size(); ++i) {
    if (labels.label[i] >= 0) {
      members[labels.label[i]].push_back(points[i].oid);
    }
  }
  std::vector<ObjectSet> clusters;
  clusters.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    if (members[c].size() < static_cast<size_t>(min_pts)) continue;
    clusters.emplace_back(members[c]);
  }
  std::sort(clusters.begin(), clusters.end());
  return clusters;
}

}  // namespace

std::vector<ObjectSet> Dbscan(std::span<const SnapshotPoint> points,
                              double eps, int min_pts,
                              DbscanScratch* scratch) {
  RunDbscan(points, eps, min_pts, scratch, &scratch->labels);
  return LabelsToClusters(points, scratch->labels, min_pts, scratch);
}

std::vector<ObjectSet> Dbscan(std::span<const SnapshotPoint> points,
                              double eps, int min_pts) {
  return Dbscan(points, eps, min_pts, ThreadLocalScratch());
}

std::vector<ObjectSet> DbscanSubset(std::span<const SnapshotPoint> points,
                                    const ObjectSet& subset, double eps,
                                    int min_pts, DbscanScratch* scratch) {
  std::vector<SnapshotPoint>& filtered = scratch->filtered;
  filtered.clear();
  for (const SnapshotPoint& p : points) {
    if (subset.Contains(p.oid)) filtered.push_back(p);
  }
  return Dbscan(filtered, eps, min_pts, scratch);
}

std::vector<ObjectSet> DbscanSubset(std::span<const SnapshotPoint> points,
                                    const ObjectSet& subset, double eps,
                                    int min_pts) {
  return DbscanSubset(points, subset, eps, min_pts, ThreadLocalScratch());
}

void DbscanLabelled(std::span<const SnapshotPoint> points, double eps,
                    int min_pts, DbscanScratch* scratch, DbscanLabels* out) {
  RunDbscan(points, eps, min_pts, scratch, out);
}

DbscanLabels DbscanLabelled(std::span<const SnapshotPoint> points, double eps,
                            int min_pts) {
  DbscanLabels out;
  RunDbscan(points, eps, min_pts, ThreadLocalScratch(), &out);
  return out;
}

}  // namespace k2
