#include "baselines/validation.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "baselines/sweep.h"
#include "cluster/store_clustering.h"

namespace k2 {

std::vector<Timestamp> BinarySubdivisionOrder(TimeRange range) {
  std::vector<Timestamp> order;
  if (range.empty()) return order;
  order.push_back(range.start);
  if (range.end != range.start) order.push_back(range.end);
  // BFS over segments; the midpoint of each segment is emitted, then the two
  // halves are queued. Every interior tick is the midpoint of exactly one
  // segment of the subdivision.
  std::deque<TimeRange> queue{range};
  while (!queue.empty()) {
    const TimeRange seg = queue.front();
    queue.pop_front();
    if (seg.end - seg.start < 2) continue;
    const Timestamp mid = seg.start + (seg.end - seg.start) / 2;
    order.push_back(mid);
    queue.push_back({seg.start, mid});
    queue.push_back({mid, seg.end});
  }
  return order;
}

namespace {

uint64_t ConvoyKey(const Convoy& v) {
  uint64_t h = v.objects.Hash();
  h ^= (static_cast<uint64_t>(static_cast<uint32_t>(v.start)) << 32) |
       static_cast<uint32_t>(v.end);
  h *= 0x9E3779B97F4A7C15ULL;
  return h;
}

/// Per-candidate context: re-clusterings of DB[t]|O, probed lazily and
/// cached so the fallback sweep reuses what the fast path computed.
class RestrictionProber {
 public:
  RestrictionProber(Store* store, const Convoy& candidate,
                    const MiningParams& params, ValidationStats* stats,
                    SnapshotScratch* scratch)
      : store_(store),
        candidate_(candidate),
        params_(params),
        stats_(stats),
        scratch_(scratch) {}

  /// True when DB[t]|O clusters to exactly {O} for every t (FC property).
  Result<bool> IsFullyConnected() {
    for (Timestamp t : BinarySubdivisionOrder(candidate_.lifespan())) {
      K2_ASSIGN_OR_RETURN(const std::vector<ObjectSet>* cs, ClustersAt(t));
      if (cs->size() != 1 || (*cs)[0] != candidate_.objects) return false;
    }
    return true;
  }

  /// Maximal convoys of the restricted dataset with lifespan >= k.
  Result<std::vector<Convoy>> SweepRestriction() {
    if (stats_ != nullptr) ++stats_->split_rounds;
    SweepOptions options;
    options.min_length = params_.k;
    return MaximalConvoySweep(
        [this](Timestamp t, std::vector<ObjectSet>* out) -> Status {
          K2_ASSIGN_OR_RETURN(const std::vector<ObjectSet>* cs, ClustersAt(t));
          *out = *cs;
          return Status::OK();
        },
        candidate_.lifespan(), params_.m, options);
  }

 private:
  Result<const std::vector<ObjectSet>*> ClustersAt(Timestamp t) {
    auto it = cache_.find(t);
    if (it == cache_.end()) {
      K2_ASSIGN_OR_RETURN(
          std::vector<ObjectSet> cs,
          ReCluster(store_, t, candidate_.objects, params_, scratch_));
      if (stats_ != nullptr) ++stats_->reclusterings;
      it = cache_.emplace(t, std::move(cs)).first;
    }
    return &it->second;
  }

  Store* store_;
  const Convoy& candidate_;
  const MiningParams& params_;
  ValidationStats* stats_;
  SnapshotScratch* scratch_;
  std::unordered_map<Timestamp, std::vector<ObjectSet>> cache_;
};

}  // namespace

Result<std::vector<Convoy>> ValidateFullyConnected(
    Store* store, std::vector<Convoy> candidates, const MiningParams& params,
    bool recursive, ValidationStats* stats) {
  if (stats != nullptr) stats->candidates_in = candidates.size();
  MaximalConvoySet accepted;
  SnapshotScratch scratch;
  std::deque<Convoy> work(candidates.begin(), candidates.end());
  std::unordered_set<uint64_t> seen;

  while (!work.empty()) {
    Convoy v = std::move(work.front());
    work.pop_front();
    if (v.objects.size() < static_cast<size_t>(params.m) ||
        v.length() < params.k) {
      continue;
    }
    if (!seen.insert(ConvoyKey(v)).second) continue;

    RestrictionProber prober(store, v, params, stats, &scratch);
    K2_ASSIGN_OR_RETURN(bool is_fc, prober.IsFullyConnected());
    if (is_fc) {
      if (stats != nullptr) ++stats->fc_accepted;
      accepted.Insert(std::move(v));
      continue;
    }
    K2_ASSIGN_OR_RETURN(std::vector<Convoy> pieces, prober.SweepRestriction());
    if (recursive) {
      for (Convoy& piece : pieces) work.push_back(std::move(piece));
    } else {
      // Original one-pass DCVal: split results are emitted unvalidated
      // (recursive = false is only ever entered with first-level
      // candidates, since nothing is pushed back).
      for (Convoy& piece : pieces) accepted.Insert(std::move(piece));
    }
  }
  return accepted.TakeSorted();
}

}  // namespace k2
