#include "cluster/graph_core.h"

#include <algorithm>

namespace k2 {

void ClusterGraphLabelled(size_t n, std::span<const uint32_t> adj_offsets,
                          std::span<const uint32_t> adj, int min_pts,
                          GraphClusterScratch* scratch, DbscanLabels* out) {
  out->label.assign(n, -1);
  out->num_clusters = 0;
  if (n == 0 || min_pts <= 0) return;

  scratch->visited.assign(n, 0);
  std::vector<uint32_t>& seeds = scratch->seeds;
  auto degree = [&](uint32_t j) { return adj_offsets[j + 1] - adj_offsets[j]; };
  auto row = [&](uint32_t j) {
    return adj.subspan(adj_offsets[j], degree(j));
  };

  // Same traversal as RunDbscan with the neighbourhood N(i) = {i} ∪ adj(i):
  // ascending outer loop, core iff |N(i)| >= min_pts (i.e. deg + 1), seed
  // queue expansion where every dequeued node joins the cluster unless an
  // earlier cluster claimed it first. Self is omitted from the queue — it is
  // already visited and labelled, so enqueueing it would be a no-op.
  for (size_t i = 0; i < n; ++i) {
    if (scratch->visited[i]) continue;
    scratch->visited[i] = 1;
    if (degree(static_cast<uint32_t>(i)) + 1 < static_cast<uint32_t>(min_pts)) {
      continue;  // noise or border
    }
    const int32_t cluster = out->num_clusters++;
    out->label[i] = cluster;
    const auto r = row(static_cast<uint32_t>(i));
    seeds.assign(r.begin(), r.end());
    for (size_t s = 0; s < seeds.size(); ++s) {
      const uint32_t j = seeds[s];
      if (out->label[j] < 0) out->label[j] = cluster;
      if (!scratch->visited[j]) {
        scratch->visited[j] = 1;
        if (degree(j) + 1 >= static_cast<uint32_t>(min_pts)) {
          const auto rj = row(j);
          seeds.insert(seeds.end(), rj.begin(), rj.end());
        }
      }
    }
  }
}

std::vector<ObjectSet> GraphClusters(std::span<const ObjectId> node_oids,
                                     std::span<const uint32_t> adj_offsets,
                                     std::span<const uint32_t> adj, int min_pts,
                                     GraphClusterScratch* scratch) {
  ClusterGraphLabelled(node_oids.size(), adj_offsets, adj, min_pts, scratch,
                       &scratch->labels);
  const DbscanLabels& labels = scratch->labels;
  const size_t k = static_cast<size_t>(labels.num_clusters);
  std::vector<std::vector<ObjectId>>& members = scratch->members;
  if (members.size() < k) members.resize(k);
  for (size_t c = 0; c < k; ++c) members[c].clear();
  for (size_t i = 0; i < node_oids.size(); ++i) {
    if (labels.label[i] >= 0) members[labels.label[i]].push_back(node_oids[i]);
  }
  std::vector<ObjectSet> clusters;
  clusters.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    if (members[c].size() < static_cast<size_t>(min_pts)) continue;
    clusters.emplace_back(members[c]);
  }
  std::sort(clusters.begin(), clusters.end());
  return clusters;
}

}  // namespace k2
