// DBSCAN over one snapshot, producing the (m,eps)-clusters of paper Def. 2:
// maximal density-connected object sets of size >= m. A point counts itself
// in its eps-neighbourhood (Sec. 3.1), matching the original DBSCAN minPts
// convention used by all convoy papers.
//
// Every entry point has a DbscanScratch overload: the scratch owns all
// working state (grid index, visited bytes, seed queue, neighbor buffer,
// label array), so repeated clusterings through one scratch — the per-tick
// re-clusterings that dominate HWMT / extension / validation — allocate
// nothing in steady state. The scratch-free overloads reuse a thread-local
// scratch and are therefore equally allocation-free after warm-up.
#ifndef K2_CLUSTER_DBSCAN_H_
#define K2_CLUSTER_DBSCAN_H_

#include <span>
#include <vector>

#include "cluster/grid_index.h"
#include "common/object_set.h"
#include "common/types.h"

namespace k2 {

/// Per-point cluster labels; -1 = noise. Exposed for tests and for SPARE's
/// snapshot-clustering phase, which needs cluster identities, not just sets.
struct DbscanLabels {
  std::vector<int32_t> label;  // parallel to the input span
  int32_t num_clusters = 0;
};

/// Reusable working state for DBSCAN runs. One scratch serves one thread;
/// create one per worker when clustering concurrently. Contents are
/// implementation details.
struct DbscanScratch {
  GridIndex grid;
  std::vector<uint8_t> visited;
  std::vector<uint32_t> neighbors;
  std::vector<uint32_t> seeds;
  DbscanLabels labels;
  std::vector<std::vector<ObjectId>> members;
  std::vector<SnapshotPoint> filtered;
  // Batched-expansion buffers: the unvisited slice of the seed queue and
  // the flat neighbor lists (CSR offsets) its region queries fill.
  std::vector<uint32_t> batch;
  std::vector<uint32_t> nbr_flat;
  std::vector<uint32_t> nbr_offsets;
  // SoA mirror of small snapshots so the brute-force region query runs the
  // same dispatched eps-scan kernel as the grid path.
  std::vector<double> bf_xs, bf_ys;
  std::vector<uint32_t> bf_ids;
};

/// Clusters the snapshot and returns the (m,eps)-clusters as object-id sets
/// in canonical (lexicographic) order. Border points are attached to the
/// first cluster whose core reaches them, per the original DBSCAN.
std::vector<ObjectSet> Dbscan(std::span<const SnapshotPoint> points,
                              double eps, int min_pts);
std::vector<ObjectSet> Dbscan(std::span<const SnapshotPoint> points,
                              double eps, int min_pts,
                              DbscanScratch* scratch);

/// DBSCAN restricted to snapshot points whose object id occurs in `subset`
/// (the reCluster(DB[t]|O) primitive of Algorithm 2 / Sec. 4.3).
std::vector<ObjectSet> DbscanSubset(std::span<const SnapshotPoint> points,
                                    const ObjectSet& subset, double eps,
                                    int min_pts);
std::vector<ObjectSet> DbscanSubset(std::span<const SnapshotPoint> points,
                                    const ObjectSet& subset, double eps,
                                    int min_pts, DbscanScratch* scratch);

DbscanLabels DbscanLabelled(std::span<const SnapshotPoint> points, double eps,
                            int min_pts);
/// Zero-alloc variant: labels land in `out` (storage reused across calls).
void DbscanLabelled(std::span<const SnapshotPoint> points, double eps,
                    int min_pts, DbscanScratch* scratch, DbscanLabels* out);

}  // namespace k2

#endif  // K2_CLUSTER_DBSCAN_H_
