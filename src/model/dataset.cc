#include "model/dataset.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace k2 {

std::span<const PointRecord> Dataset::Snapshot(Timestamp t) const {
  auto it = std::lower_bound(timestamps_.begin(), timestamps_.end(), t);
  if (it == timestamps_.end() || *it != t) return {};
  size_t i = static_cast<size_t>(it - timestamps_.begin());
  return std::span<const PointRecord>(records_.data() + extents_[i],
                                      extents_[i + 1] - extents_[i]);
}

const PointRecord* Dataset::Find(Timestamp t, ObjectId oid) const {
  auto snap = Snapshot(t);
  auto it = std::lower_bound(
      snap.begin(), snap.end(), oid,
      [](const PointRecord& r, ObjectId o) { return r.oid < o; });
  if (it == snap.end() || it->oid != oid) return nullptr;
  return &*it;
}

Dataset Dataset::Restrict(const std::vector<ObjectId>& sorted_oids,
                          TimeRange range) const {
  DatasetBuilder builder;
  for (const PointRecord& rec : records_) {
    if (!range.Contains(rec.t)) continue;
    if (!std::binary_search(sorted_oids.begin(), sorted_oids.end(), rec.oid)) {
      continue;
    }
    builder.Add(rec);
  }
  return builder.Build();
}

std::string Dataset::DebugString() const {
  std::ostringstream os;
  os << "Dataset{points=" << num_points() << ", objects=" << num_objects()
     << ", ticks=[" << time_range_.start << ", " << time_range_.end << "]}";
  return os.str();
}

Dataset DatasetBuilder::Build() {
  Dataset ds;
  std::stable_sort(rows_.begin(), rows_.end(), RecordKeyLess);
  rows_.erase(std::unique(rows_.begin(), rows_.end(),
                          [](const PointRecord& a, const PointRecord& b) {
                            return a.t == b.t && a.oid == b.oid;
                          }),
              rows_.end());
  ds.records_ = std::move(rows_);
  rows_.clear();

  std::unordered_set<ObjectId> object_ids;
  for (size_t i = 0; i < ds.records_.size(); ++i) {
    const PointRecord& rec = ds.records_[i];
    if (i == 0 || rec.t != ds.records_[i - 1].t) {
      ds.timestamps_.push_back(rec.t);
      ds.extents_.push_back(i);
    }
    object_ids.insert(rec.oid);
  }
  ds.extents_.push_back(ds.records_.size());
  ds.num_objects_ = object_ids.size();
  if (!ds.records_.empty()) {
    ds.time_range_ = {ds.timestamps_.front(), ds.timestamps_.back()};
  }
  return ds;
}

}  // namespace k2
