// Log-Structured Merge-tree store ("k2-LSMT", paper Sec. 5.2): skip-list
// memtable, immutable SSTables, size-tiered compaction. Because the composite
// key is (t, oid), all rows of a timestamp are co-located, so a benchmark
// scan is one range read with a single seek, while point reads use per-table
// bloom filters — precisely the access mix k/2-hop generates.
//
// Crash safety: every mutation is framed into a write-ahead log before it
// touches the memtable (Append fdatasyncs the WAL per tick by default), the
// MANIFEST records the live SSTables per tier plus the WAL segments still
// holding unflushed data, and SSTables are published atomically (tmp + fsync
// + rename). Reopening a directory replays the longest valid WAL prefix on
// top of the MANIFEST's tables — the recovery path the fault-injection crash
// matrix in tests/lsm_crash_*.cc sweeps op by op.
//
// Tail latency: a full memtable is handed off as an immutable run to a
// background thread that builds the SSTable and runs the compaction cascade,
// so the foreground Put/Append path never absorbs a flush or merge spike
// (LsmStoreOptions::background_compaction, on by default).
#ifndef K2_STORAGE_LSM_STORE_H_
#define K2_STORAGE_LSM_STORE_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "storage/lsm/manifest.h"
#include "storage/lsm/skiplist.h"
#include "storage/lsm/sstable.h"
#include "storage/lsm/wal.h"
#include "storage/store.h"

namespace k2 {

struct LsmStoreOptions {
  /// Memtable entries before an automatic flush.
  size_t memtable_limit = 128 * 1024;
  /// Tables per tier before they are merged into the next tier.
  size_t tier_fanout = 4;
  /// Ablation switch: disable bloom filters on the read path.
  bool use_bloom = true;
  /// File-system shim for every write-path IO (WAL, SSTable build,
  /// MANIFEST); nullptr = Env::Default(). The fault-injection tests
  /// substitute a FaultInjectionEnv here.
  Env* env = nullptr;
  /// fdatasync the WAL once per Append() tick, making the tick durable
  /// before Append returns (~1 ms on commodity storage). Put() never syncs;
  /// its records become durable at the next Append, Flush, or rotation
  /// sync. Disabling trades per-tick durability for raw ingest speed.
  bool wal_sync_every_append = true;
  /// Run flush + compaction on a background thread (immutable-memtable
  /// handoff). Disabled, the same jobs run synchronously inside the write
  /// path — the deterministic mode the crash-matrix tests sweep.
  bool background_compaction = true;
  /// Ingest backpressure: a write that needs to rotate blocks while this
  /// many immutable memtables are already queued for flush.
  size_t max_pending_memtables = 2;
  /// WAL policy. wal.segment_bytes > 0 enables size-based segment rotation:
  /// the active segment is sealed and a new one chained onto the same
  /// memtable once it passes the cap, bounding single-file size (and torn
  /// tails to the last segment) independently of memtable_limit. With the
  /// default 0, segments rotate only with the memtable.
  lsm::WalOptions wal;
};

class LsmStore final : public Store {
 public:
  using Options = LsmStoreOptions;

  /// Opens (or creates) the store in `dir`, recovering MANIFEST + WAL state
  /// left by a previous process. A recovery failure is sticky: every
  /// subsequent operation returns it (see init_status()).
  explicit LsmStore(std::string dir, Options options = {});
  ~LsmStore() override;

  std::string name() const override { return "lsmt"; }
  /// Replaces all content with `dataset`, routing rows through the normal
  /// write path (flushes and compactions happen for real) but WITHOUT WAL
  /// logging: a bulk rebuild has nothing durable to promise until it
  /// returns, at which point the final Flush has published every row as
  /// SSTables + MANIFEST — stronger than WAL durability. A crash mid-load
  /// recovers some clean prefix of the dataset's rows.
  Status BulkLoad(const Dataset& dataset) override;
  Status Append(Timestamp t, const std::vector<SnapshotPoint>& points) override;
  Status ScanTimestamp(Timestamp t, std::vector<SnapshotPoint>* out) override;
  Status GetPoints(Timestamp t, const ObjectSet& objects,
                   std::vector<SnapshotPoint>* out) override;
  TimeRange time_range() const override;
  const std::vector<Timestamp>& timestamps() const override;
  uint64_t num_points() const override { return num_points_; }

  /// Native snapshot: drains background work, then opens a private SSTable
  /// handle (own mmap, block cache, bloom, IO accounting) per immutable
  /// table file and freezes the memtable into a sorted run, so concurrent
  /// readers share nothing mutable.
  Result<std::unique_ptr<Store>> CreateReadSnapshot() override;

  /// Single-row insert ("fast data inserts" requirement (3) of Sec. 5);
  /// WAL-logged, rotates the memtable automatically when full.
  Status Put(Timestamp t, ObjectId oid, double x, double y);

  /// Rotates a non-empty memtable out and blocks until every queued flush
  /// and compaction has completed (and been committed to the MANIFEST).
  Status Flush();

  /// First error of recovery-on-open, sticky across all operations.
  const Status& init_status() const { return init_status_; }
  /// First unrecovered write-path error (WAL, flush, compaction, MANIFEST),
  /// sticky: later writes fail with it, reads keep working.
  Status write_error() const;

  size_t num_sstables() const;
  size_t num_tiers() const;
  /// WAL segments feeding the active memtable (>= 1 once writable; grows
  /// with size-based rotation, resets when the memtable rotates).
  size_t active_wal_segments() const;
  /// Entries in the active (mutable) memtable.
  size_t memtable_entries() const;
  uint64_t compactions_run() const;
  /// IO performed by flush/compaction reading their merge inputs — kept out
  /// of io_stats() so query-path pruning accounting stays clean.
  IoStats background_io_stats() const;

 private:
  /// An immutable memtable queued for flush, together with the WAL segments
  /// whose records it holds (deleted once the flush is committed).
  struct PendingMemtable {
    std::shared_ptr<const lsm::SkipList> mem;
    std::vector<uint64_t> wal_seqs;
  };

  // All Locked methods require mu_ held; the job methods (FlushFrontLocked,
  // CompactLocked) drop it around file IO and re-take it to install results.
  Status Recover();
  Status WritableLocked() const;
  std::string TableFilePath(uint64_t seq) const;
  std::string WalFilePath(uint64_t seq) const;
  lsm::ManifestState ManifestSnapshotLocked() const;
  Status WriteManifestLocked();
  Status OpenActiveWalLocked(bool fresh_wal_set);
  Status WalAppendLocked(Timestamp t, const std::vector<SnapshotPoint>& points,
                         bool sync);
  void ApplyPutLocked(Timestamp t, ObjectId oid, double x, double y);
  Status MaybeRotateLocked(std::unique_lock<std::mutex>& lock);
  Status RotateMemtableLocked(std::unique_lock<std::mutex>& lock);
  Status RotateWalSegmentLocked();
  /// Blocks until queued work is done (background) or runs it inline (sync
  /// mode); returns the sticky write error if one surfaced.
  Status DrainLocked(std::unique_lock<std::mutex>& lock);
  Status FlushFrontLocked(std::unique_lock<std::mutex>& lock);
  Status CompactLocked(std::unique_lock<std::mutex>& lock);
  void RebuildFlatViewLocked();
  /// Fills `mems` (active memtable first, then pending newest-first) and
  /// returns the count. The caller must size `mems` for 1 + pending_.size();
  /// reads use a stack buffer since backpressure bounds the pending queue.
  size_t CollectMemsLocked(const lsm::SkipList** mems) const;
  void StartWorker();
  void StopWorker();
  void WorkerMain();

  std::string dir_;
  Options options_;
  Env* env_;
  Status init_status_;

  /// One lock guards every piece of shared LSM state below. Foreground
  /// reads hold it across the whole read (the store contract already
  /// serializes readers externally; this lock only fences the background
  /// thread), the worker holds it only while installing results.
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< Signals the worker: work or stop.
  std::condition_variable drain_cv_;  ///< Signals waiters: job finished.

  std::unique_ptr<lsm::SkipList> memtable_;  ///< Active, foreground-written.
  std::vector<uint64_t> active_wal_seqs_;    ///< WAL segments feeding it.
  std::unique_ptr<lsm::WalWriter> wal_;
  std::deque<PendingMemtable> pending_;  ///< Oldest first, awaiting flush.

  /// tiers_[i] = tables of tier i, oldest first. Tier number grows with
  /// table size (size-tiered compaction).
  std::vector<std::vector<std::unique_ptr<lsm::SSTable>>> tiers_;
  /// All tables, newest first; rebuilt when the tier structure changes.
  std::vector<lsm::SSTable*> flat_newest_first_;
  uint64_t next_seq_ = 1;
  uint64_t num_points_ = 0;
  uint64_t compactions_run_ = 0;
  Status write_error_;
  /// True while BulkLoad streams rows in: WAL logging is skipped (see
  /// BulkLoad's durability note), everything else behaves normally.
  bool bulk_loading_ = false;
  IoStats bg_io_;  ///< Merge-input reads of flush/compaction jobs.

  std::thread worker_;
  bool worker_started_ = false;
  bool worker_busy_ = false;
  bool stop_ = false;

  /// Sorted, duplicate-free tick list, maintained eagerly on mutation
  /// (Put/BulkLoad) so the const read path never writes shared state —
  /// timestamps() used to rebuild a cache lazily inside a const method, a
  /// data race under the parallel mining pipeline's concurrent metadata
  /// reads.
  std::vector<Timestamp> tick_cache_;

  /// Reused per-Append WAL record serialization buffer.
  std::string wal_scratch_;
};

}  // namespace k2

#endif  // K2_STORAGE_LSM_STORE_H_
