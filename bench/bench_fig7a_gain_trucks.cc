// Fig. 7a — performance gain of k2-RDBMS and k2-LSMT over VCoDA* on the
// Trucks workload, as bands (min/median/mean/max over an (m, eps) grid) per
// k. Paper: k2-RDBMS up to ~8x on Trucks.
#include "bench/harness.h"

using namespace k2;
using namespace k2::bench;

int main() {
  PrintBanner("Fig 7a: gain over VCoDA* (Trucks)");
  const Dataset& data = Trucks();
  std::cout << data.DebugString() << "\n\n";

  auto file_store = BuildStore(StoreKind::kFile, data, "fig7a");
  auto rdbms = BuildStore(StoreKind::kBPlusTree, data, "fig7a");
  auto lsmt = BuildStore(StoreKind::kLsm, data, "fig7a");

  const std::vector<int> ms = {3, 6};
  const std::vector<double> epss = {30.0, 120.0};

  TablePrinter table({"k", "engine", "min", "median", "mean", "max"});
  for (int k : {200, 400, 600, 1000}) {
    std::vector<double> rdbms_gain, lsmt_gain;
    for (int m : ms) {
      for (double eps : epss) {
        const MiningParams params{m, k, eps};
        const double vcoda = RunVcoda(file_store.get(), params, true).seconds;
        rdbms_gain.push_back(vcoda /
                             std::max(1e-6, RunK2(rdbms.get(), params).seconds));
        lsmt_gain.push_back(vcoda /
                            std::max(1e-6, RunK2(lsmt.get(), params).seconds));
      }
    }
    const GainBand rb = Band(rdbms_gain);
    const GainBand lb = Band(lsmt_gain);
    table.AddRow({std::to_string(k), "k2-RDBMS", Fmt(rb.min, 2), Fmt(rb.median, 2),
                  Fmt(rb.mean, 2), Fmt(rb.max, 2)});
    table.AddRow({std::to_string(k), "k2-LSMT", Fmt(lb.min, 2), Fmt(lb.median, 2),
                  Fmt(lb.mean, 2), Fmt(lb.max, 2)});
  }
  table.Print();
  return 0;
}
