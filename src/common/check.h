// CHECK-style invariant macros (Google style): violations are programming
// errors and abort the process with a diagnostic.
#ifndef K2_COMMON_CHECK_H_
#define K2_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace k2::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "K2_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace k2::internal

#define K2_CHECK(cond)                                             \
  do {                                                             \
    if (!(cond)) ::k2::internal::CheckFailed(__FILE__, __LINE__, #cond); \
  } while (false)

#define K2_CHECK_OK(expr)                                                  \
  do {                                                                     \
    ::k2::Status _k2_check_status = (expr);                                \
    if (!_k2_check_status.ok())                                            \
      ::k2::internal::CheckFailed(__FILE__, __LINE__,                      \
                                  _k2_check_status.ToString().c_str());    \
  } while (false)

// Debug-only contract check: compiled out under NDEBUG (release builds),
// aborts like K2_CHECK otherwise. For hot-path preconditions that are cheap
// to state but too expensive (or too late) to re-validate in production.
#ifdef NDEBUG
#define K2_DCHECK(cond) \
  do {                  \
  } while (false)
#else
#define K2_DCHECK(cond) K2_CHECK(cond)
#endif

#endif  // K2_COMMON_CHECK_H_
