// Fig. 8k — effect of convoy count on k/2-hop runtime: planted-convoy
// datasets with increasing numbers of groups (all else equal). Paper: time
// generally grows with the number of convoys found, because less data can
// be pruned.
#include "bench/harness.h"
#include "gen/synthetic.h"

using namespace k2;
using namespace k2::bench;

int main() {
  PrintBanner("Fig 8k: effect of convoy count (planted workload)");

  TablePrinter table({"planted", "found", "k2-RDBMS", "k2-LSMT"});
  for (int groups : {0, 4, 8, 16, 32, 64}) {
    PlantedConvoySpec spec;
    spec.num_noise_objects = 300;
    spec.num_ticks = 600;
    spec.area = 30000.0;
    spec.noise_step = 120.0;
    spec.member_spacing = 4.0;
    spec.seed = 1234 + groups;
    for (int g = 0; g < groups; ++g) {
      PlantedGroup group;
      group.size = 3 + g % 3;
      group.start = (g * 37) % 300;
      group.end = group.start + 150 + (g * 13) % 120;
      spec.groups.push_back(group);
    }
    const Dataset data = GeneratePlantedConvoys(spec);
    auto rdbms = BuildStore(StoreKind::kBPlusTree, data, "fig8k");
    auto lsmt = BuildStore(StoreKind::kLsm, data, "fig8k");
    const MiningParams params{3, 100, 10.0};
    const MineOutcome r = RunK2(rdbms.get(), params);
    const MineOutcome l = RunK2(lsmt.get(), params);
    table.AddRow({std::to_string(groups), std::to_string(r.convoys),
                  Fmt(r.seconds), Fmt(l.seconds)});
  }
  table.Print();
  return 0;
}
