#!/usr/bin/env python3
"""Bench regression guard: diffs a fresh bench snapshot against a baseline.

Usage: bench_compare.py BASELINE.json FRESH.json [--tolerance X] [--min-ms Y]

Both files are bench_snapshot.sh outputs. Records are matched by
(bench, miner, store, m, k, eps) plus occurrence index (some benches emit
several records under one key, in deterministic order). The guard fails —
exit 1 — when:

  * the two snapshots were taken at different K2_BENCH_SCALEs
    (wall times and convoy counts are only comparable at equal scale);
  * a baseline record has no match in the fresh snapshot;
  * convoy counts differ (mining output is deterministic at equal scale:
    any drift is a correctness bug, no tolerance);
  * a record's wall time exceeds baseline * tolerance (default 2.0,
    override with --tolerance or K2_BENCH_TIME_TOL), ignoring records
    where both sides are under --min-ms (default 5 ms, pure noise);
  * a latency-percentile field (any numeric key ending in _p50, _p99 or
    _p999, e.g. the streaming bench's append_ms_p99) exceeds baseline *
    tolerance, ignoring fields where both sides are under --min-pct-ms
    (default 1 ms). Tail percentiles guard the ingest path: a compaction
    or flush moving back onto the foreground shows up here first.

Records only present in the fresh snapshot (newly added benches) and large
speedups are reported but never fail the guard — regenerate and commit the
snapshot to make them the new baseline.
"""

import argparse
import json
import os
import sys
from collections import defaultdict


def load(path):
    """Loads a snapshot, failing with a clear message (not a traceback) when
    the file is missing or holds malformed JSON."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        sys.exit(f"bench_compare: {path} is not valid JSON "
                 f"(line {err.lineno} column {err.colno}: {err.msg}); "
                 "regenerate it with scripts/bench_snapshot.sh")
    if not isinstance(doc, dict) or not isinstance(doc.get("records"), list):
        sys.exit(f"bench_compare: {path} is not a bench_snapshot.sh output "
                 "(expected an object with a 'records' array)")
    return doc


def keyed(records):
    """Maps (bench, miner, store, m, k, eps, occurrence) -> record."""
    counts = defaultdict(int)
    out = {}
    for rec in records:
        p = rec.get("params", {})
        base = (rec.get("bench"), rec.get("miner"), rec.get("store"),
                p.get("m"), p.get("k"), p.get("eps"))
        out[base + (counts[base],)] = rec
        counts[base] += 1
    return out


PERCENTILE_SUFFIXES = ("_p50", "_p99", "_p999")


def percentile_fields(base, live):
    """Sorted numeric latency-percentile keys present in both records."""
    fields = []
    for key, value in base.items():
        if (key.endswith(PERCENTILE_SUFFIXES)
                and isinstance(value, (int, float))
                and isinstance(live.get(key), (int, float))):
            fields.append(key)
    return sorted(fields)


def fmt_key(key):
    bench, miner, store, m, k, eps, occ = key
    tag = f"{bench}/{miner}/{store} m={m} k={k} eps={eps}"
    return tag if occ == 0 else f"{tag} #{occ + 1}"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("K2_BENCH_TIME_TOL", "2.0")),
        help="max allowed wall-time ratio fresh/baseline (default 2.0)")
    parser.add_argument(
        "--min-ms",
        type=float,
        default=5.0,
        help="skip wall-time checks when both sides are below this (ms)")
    parser.add_argument(
        "--min-pct-ms",
        type=float,
        default=1.0,
        help="skip percentile-field checks when both sides are below this (ms)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    failures = []
    notes = []

    if baseline.get("scale") != fresh.get("scale"):
        failures.append(
            f"scale mismatch: baseline {baseline.get('scale')} vs fresh "
            f"{fresh.get('scale')} — run bench_snapshot.sh at the baseline's "
            "K2_BENCH_SCALE")

    base_records = keyed(baseline.get("records", []))
    fresh_records = keyed(fresh.get("records", []))

    for key, base in sorted(base_records.items(), key=lambda kv: fmt_key(kv[0])):
        tag = fmt_key(key)
        live = fresh_records.get(key)
        if live is None:
            failures.append(f"{tag}: record missing from fresh snapshot")
            continue
        if base.get("convoys") != live.get("convoys"):
            failures.append(
                f"{tag}: convoy count drifted {base.get('convoys')} -> "
                f"{live.get('convoys')} (must be exact)")
        for field in percentile_fields(base, live):
            base_p = float(base[field])
            live_p = float(live[field])
            if base_p < args.min_pct_ms and live_p < args.min_pct_ms:
                continue
            if live_p > base_p * args.tolerance:
                failures.append(
                    f"{tag}: {field} {base_p:.3f} ms -> {live_p:.3f} ms "
                    f"({live_p / max(base_p, 1e-9):.2f}x > "
                    f"{args.tolerance:.1f}x tolerance)")
        base_ms = float(base.get("wall_ms", 0.0))
        live_ms = float(live.get("wall_ms", 0.0))
        if base_ms < args.min_ms and live_ms < args.min_ms:
            continue
        if live_ms > base_ms * args.tolerance:
            failures.append(
                f"{tag}: wall time {base_ms:.1f} ms -> {live_ms:.1f} ms "
                f"({live_ms / max(base_ms, 1e-9):.2f}x > "
                f"{args.tolerance:.1f}x tolerance)")
        elif base_ms > live_ms * args.tolerance:
            notes.append(
                f"{tag}: {live_ms / max(base_ms, 1e-9):.2f}x of baseline "
                f"({base_ms:.1f} -> {live_ms:.1f} ms) — consider committing "
                "a fresh snapshot")

    for key in sorted(set(fresh_records) - set(base_records), key=fmt_key):
        notes.append(f"{fmt_key(key)}: new record (not in baseline)")

    checked = len(base_records)
    print(f"bench_compare: {checked} baseline records, "
          f"{len(failures)} failure(s), {len(notes)} note(s); "
          f"tolerance {args.tolerance:.1f}x, floor {args.min_ms:.1f} ms")
    for note in notes:
        print(f"  note: {note}")
    for failure in failures:
        print(f"  FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
