#include "baselines/trajectory.h"

#include <algorithm>
#include <cmath>

namespace k2 {

double PointSegmentDistance(double px, double py, double ax, double ay,
                            double bx, double by) {
  const double dx = bx - ax;
  const double dy = by - ay;
  const double len2 = dx * dx + dy * dy;
  double t = 0.0;
  if (len2 > 0.0) {
    t = std::clamp(((px - ax) * dx + (py - ay) * dy) / len2, 0.0, 1.0);
  }
  const double cx = ax + t * dx;
  const double cy = ay + t * dy;
  return std::hypot(px - cx, py - cy);
}

namespace {

void DpRecurse(const std::vector<TrajPoint>& pts, size_t lo, size_t hi,
               double epsilon, std::vector<bool>* keep) {
  if (hi <= lo + 1) return;
  double worst = -1.0;
  size_t worst_idx = lo;
  for (size_t i = lo + 1; i < hi; ++i) {
    const double d = PointSegmentDistance(pts[i].x, pts[i].y, pts[lo].x,
                                          pts[lo].y, pts[hi].x, pts[hi].y);
    if (d > worst) {
      worst = d;
      worst_idx = i;
    }
  }
  if (worst <= epsilon) return;  // everything in between is close enough
  (*keep)[worst_idx] = true;
  DpRecurse(pts, lo, worst_idx, epsilon, keep);
  DpRecurse(pts, worst_idx, hi, epsilon, keep);
}

/// Minimum distance between two segments (p1,p2) and (q1,q2).
double SegmentSegmentDistance(const TrajPoint& p1, const TrajPoint& p2,
                              const TrajPoint& q1, const TrajPoint& q2) {
  // Proper intersection => distance 0; otherwise the minimum is attained at
  // an endpoint against the other segment.
  auto orient = [](const TrajPoint& a, const TrajPoint& b, const TrajPoint& c) {
    return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
  };
  const double o1 = orient(p1, p2, q1);
  const double o2 = orient(p1, p2, q2);
  const double o3 = orient(q1, q2, p1);
  const double o4 = orient(q1, q2, p2);
  if (((o1 > 0) != (o2 > 0)) && ((o3 > 0) != (o4 > 0))) return 0.0;
  double d = PointSegmentDistance(p1.x, p1.y, q1.x, q1.y, q2.x, q2.y);
  d = std::min(d, PointSegmentDistance(p2.x, p2.y, q1.x, q1.y, q2.x, q2.y));
  d = std::min(d, PointSegmentDistance(q1.x, q1.y, p1.x, p1.y, p2.x, p2.y));
  d = std::min(d, PointSegmentDistance(q2.x, q2.y, p1.x, p1.y, p2.x, p2.y));
  return d;
}

}  // namespace

std::vector<TrajPoint> DouglasPeucker(const std::vector<TrajPoint>& points,
                                      double epsilon) {
  if (points.size() <= 2) return points;
  std::vector<bool> keep(points.size(), false);
  keep.front() = keep.back() = true;
  DpRecurse(points, 0, points.size() - 1, epsilon, &keep);
  std::vector<TrajPoint> out;
  for (size_t i = 0; i < points.size(); ++i) {
    if (keep[i]) out.push_back(points[i]);
  }
  return out;
}

double PolylineDistance(const std::vector<TrajPoint>& a,
                        const std::vector<TrajPoint>& b) {
  if (a.empty() || b.empty()) return std::numeric_limits<double>::infinity();
  auto segment_count = [](const std::vector<TrajPoint>& p) {
    return p.size() < 2 ? size_t{1} : p.size() - 1;
  };
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < segment_count(a); ++i) {
    const TrajPoint& a1 = a[i];
    const TrajPoint& a2 = a[std::min(i + 1, a.size() - 1)];
    for (size_t j = 0; j < segment_count(b); ++j) {
      const TrajPoint& b1 = b[j];
      const TrajPoint& b2 = b[std::min(j + 1, b.size() - 1)];
      best = std::min(best, SegmentSegmentDistance(a1, a2, b1, b2));
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

}  // namespace k2
