#include "cluster/grid_index.h"

#include <cmath>

#include "common/check.h"

namespace k2 {

GridIndex::GridIndex(std::span<const SnapshotPoint> points, double cell_size)
    : points_(points), cell_size_(cell_size) {
  K2_CHECK(cell_size > 0.0);
  cells_.reserve(points.size());
  for (size_t i = 0; i < points_.size(); ++i) {
    uint64_t key = PackKey(CellCoord(points_[i].x), CellCoord(points_[i].y));
    cells_[key].push_back(static_cast<uint32_t>(i));
  }
}

void GridIndex::Neighbors(size_t i, double eps,
                          std::vector<uint32_t>* out) const {
  NeighborsOf(points_[i].x, points_[i].y, eps, out);
}

void GridIndex::NeighborsOf(double x, double y, double eps,
                            std::vector<uint32_t>* out) const {
  const double eps2 = eps * eps;
  const int64_t cx = CellCoord(x);
  const int64_t cy = CellCoord(y);
  for (int64_t dx = -1; dx <= 1; ++dx) {
    for (int64_t dy = -1; dy <= 1; ++dy) {
      auto it = cells_.find(PackKey(cx + dx, cy + dy));
      if (it == cells_.end()) continue;
      for (uint32_t j : it->second) {
        const SnapshotPoint& q = points_[j];
        const double ddx = q.x - x;
        const double ddy = q.y - y;
        if (ddx * ddx + ddy * ddy <= eps2) out->push_back(j);
      }
    }
  }
}

}  // namespace k2
