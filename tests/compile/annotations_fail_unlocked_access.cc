// Negative-compile proof: reading a K2_GUARDED_BY field without holding
// its mutex MUST fail under clang -Werror=thread-safety. tests/CMakeLists
// try_compiles this at configure time and aborts the build if it compiles
// — that would mean the analysis gate is silently off.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  int Get() { return value_; }  // no lock: the bug this gate exists for

 private:
  k2::Mutex mu_;
  int value_ K2_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  return counter.Get();
}
