// Uniform-grid spatial index over one snapshot. With cell size = eps, the
// eps-neighbourhood of a point is contained in the 3x3 block of cells around
// it, so DBSCAN's region queries run in expected O(1) per point instead of
// the O(n) scan that the paper identifies as the bottleneck of the baselines.
//
// Layout: flat sorted CSR over the snapshot's bounding box. Points are
// counting-sorted into cells (`cell_starts_` / `point_ids_`), cells are
// row-major with x as the minor dimension, and coordinates are kept as
// structure-of-arrays (`xs_` / `ys_`) in CSR order. A region query scans
// three contiguous row segments — no hashing, no per-cell vectors, and the
// inner distance loop vectorizes.
#ifndef K2_CLUSTER_GRID_INDEX_H_
#define K2_CLUSTER_GRID_INDEX_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace k2 {

class GridIndex {
 public:
  /// An empty index; call Build() before querying.
  GridIndex() = default;

  /// Indexes `points` with square cells of side >= `cell_size` (> 0).
  GridIndex(std::span<const SnapshotPoint> points, double cell_size) {
    Build(points, cell_size);
  }

  /// (Re)indexes `points`, reusing previously allocated buffers — rebuilding
  /// the same GridIndex across snapshots is allocation-free in steady state.
  /// The effective cell size is grown above `cell_size` when the bounding
  /// box would otherwise shatter into more than ~4x|points| cells, which
  /// keeps memory linear for any eps; queries stay correct for any
  /// `eps` <= the requested `cell_size`.
  void Build(std::span<const SnapshotPoint> points, double cell_size);

  /// Appends to `out` the indices of all points within `eps` of point `i`
  /// (including `i` itself), matching NH(p, eps) of paper Sec. 3.1.
  ///
  /// Contract: `eps` must be <= the cell size requested at Build() — the
  /// query scans only the 3x3 cell block around the point, so a larger eps
  /// silently drops neighbors beyond that block. Enforced with a debug
  /// CHECK (K2_DCHECK) here and in NeighborsOf; release builds trust the
  /// caller. Use Region() for radius-independent rectangle queries.
  void Neighbors(size_t i, double eps, std::vector<uint32_t>* out) const {
    NeighborsOf(px_[i], py_[i], eps, out);
  }

  /// Same query for an arbitrary location. Same `eps` contract as
  /// Neighbors(): debug-CHECKed against the Build() cell size.
  void NeighborsOf(double x, double y, double eps,
                   std::vector<uint32_t>* out) const;

  /// Batched Neighbors(): for each point index in `queries`, appends its
  /// eps-neighborhood to `flat`; on return, query q's neighbors occupy
  /// `[(*offsets)[q], (*offsets)[q + 1])` of `flat`. Both outputs are
  /// overwritten (not appended to). Byte-identical to calling Neighbors()
  /// per query — this exists so DBSCAN can fill a whole seed queue's
  /// neighbor lists in one pass: consecutive seeds come from one
  /// neighborhood, so the row segments they scan stay cache-hot across the
  /// batch. Same `eps` contract as Neighbors().
  void NeighborsBatch(std::span<const uint32_t> queries, double eps,
                      std::vector<uint32_t>* flat,
                      std::vector<uint32_t>* offsets) const;

  /// Appends to `out` the indices of all points inside `rect` (inclusive
  /// bounds), in CSR scan order (row-major by cell, snapshot order within a
  /// cell). Exact for any cell size — the rect test is applied per point —
  /// so the eps the grid was built for does not constrain region queries
  /// (the serving layer's footprint index relies on this).
  void Region(const Rect& rect, std::vector<uint32_t>* out) const;

  size_t num_points() const { return px_.size(); }
  /// Number of non-empty cells.
  size_t num_cells() const { return num_occupied_cells_; }

 private:
  int64_t CellX(double x) const {
    return static_cast<int64_t>(std::floor((x - min_x_) * inv_cell_));
  }
  int64_t CellY(double y) const {
    return static_cast<int64_t>(std::floor((y - min_y_) * inv_cell_));
  }

  // Grid geometry. inv_cell_ = 1 / effective cell size. requested_cell_ is
  // the cell size the caller asked Build() for (the effective size only
  // grows above it), kept to debug-CHECK the eps query contract.
  double min_x_ = 0.0, min_y_ = 0.0;
  double inv_cell_ = 0.0;
  double requested_cell_ = 0.0;
  int64_t nx_ = 0, ny_ = 0;
  size_t num_occupied_cells_ = 0;

  // CSR: points of cell c occupy [cell_starts_[c], cell_starts_[c + 1]) of
  // point_ids_ / xs_ / ys_. point_ids_ holds the original point indices;
  // xs_ / ys_ their coordinates, so the distance scan never touches the
  // input array.
  std::vector<uint32_t> cell_starts_;  // nx_ * ny_ + 1 entries
  std::vector<uint32_t> point_ids_;
  std::vector<double> xs_, ys_;

  // Input coordinates in original order, for Neighbors(i, ...).
  std::vector<double> px_, py_;

  // Build-time scratch, kept to make rebuilds allocation-free.
  std::vector<uint32_t> cell_of_;
};

}  // namespace k2

#endif  // K2_CLUSTER_GRID_INDEX_H_
