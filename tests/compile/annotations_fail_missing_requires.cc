// Negative-compile proof: calling a K2_REQUIRES(mu) function without
// holding mu MUST fail under clang -Werror=thread-safety. Paired with
// annotations_fail_unlocked_access.cc; see tests/CMakeLists.txt.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() { IncrementLocked(); }  // mu_ not held: must not compile

 private:
  void IncrementLocked() K2_REQUIRES(mu_) { ++value_; }

  k2::Mutex mu_;
  int value_ K2_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
