// k2_server — the convoy-serving network daemon. Binds a TCP port, ingests
// movement ticks over the k2 wire protocol into an online k/2-hop miner,
// and answers convoy queries lock-free off published catalog snapshots.
//
//   k2_server [--host A] [--port N] [--workers N] [--m N] [--k N]
//             [--eps F] [--publish-every N] [--drain-timeout-ms N]
//
// Flags override the K2_SERVER_* environment knobs (docs/OPERATIONS.md);
// SIGINT/SIGTERM trigger the same graceful drain as a kShutdown message.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "serve/net/server.h"

namespace {

// The signal handler may only touch async-signal-safe state: it writes one
// 8-byte value to the server's shutdown eventfd.
volatile sig_atomic_t g_shutdown_fd = -1;

void OnSignal(int) {
  const int fd = g_shutdown_fd;
  if (fd < 0) return;
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(fd, &one, sizeof(one));
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host A] [--port N] [--workers N] [--m N] [--k N]\n"
      "          [--eps F] [--publish-every N] [--drain-timeout-ms N]\n"
      "Serves the k2 wire protocol (docs/WIRE_PROTOCOL.md). Flags override\n"
      "the K2_SERVER_* environment knobs (docs/OPERATIONS.md).\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  k2::net::K2ServerOptions options = k2::net::K2ServerOptions::FromEnv();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      options.host = value();
    } else if (arg == "--port") {
      options.port = static_cast<uint16_t>(std::atoi(value()));
    } else if (arg == "--workers") {
      options.num_workers = std::atoi(value());
    } else if (arg == "--m") {
      options.params.m = std::atoi(value());
    } else if (arg == "--k") {
      options.params.k = std::atoi(value());
    } else if (arg == "--eps") {
      options.params.eps = std::atof(value());
    } else if (arg == "--publish-every") {
      options.publish_every = static_cast<size_t>(std::atoll(value()));
    } else if (arg == "--drain-timeout-ms") {
      options.drain_timeout_ms = std::atoi(value());
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  auto server = k2::net::K2Server::Start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "k2_server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }

  g_shutdown_fd = server.value()->shutdown_fd();
  struct sigaction sa = {};
  sa.sa_handler = OnSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  std::printf("k2_server: listening on %s:%u (%d workers, m=%d k=%d eps=%g)\n",
              options.host.c_str(), server.value()->port(),
              server.value()->num_workers(), options.params.m,
              options.params.k, options.params.eps);
  std::fflush(stdout);

  server.value()->Wait();

  const k2::Status health = server.value()->serving_status();
  if (!health.ok()) {
    std::fprintf(stderr, "k2_server: exited degraded: %s\n",
                 health.ToString().c_str());
    return 1;
  }
  std::printf("k2_server: drained and shut down cleanly\n");
  return 0;
}
