#!/usr/bin/env bash
# Runs clang-format over every C++ file. Pass --check to fail on diffs
# (the CI format gate) instead of rewriting in place. Set CLANG_FORMAT to
# pin a specific binary (e.g. CLANG_FORMAT=clang-format-18).
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
MODE="-i"
if [[ "${1:-}" == "--check" ]]; then
  MODE="--dry-run -Werror"
fi

find src tests bench examples \
  \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) -print0 |
  xargs -0 "$CLANG_FORMAT" $MODE
