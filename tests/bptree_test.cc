// White-box tests for the B+-tree engine: key packing, multi-level builds,
// leaf-chain scans, and buffer-pool behaviour.
#include <gtest/gtest.h>

#include "model/dataset.h"
#include "storage/bptree/bptree.h"
#include "storage/key.h"
#include "storage/store.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::ScratchDir;

Dataset SequentialDataset(int num_ticks, int objects_per_tick) {
  DatasetBuilder builder;
  for (Timestamp t = 0; t < num_ticks; ++t) {
    for (ObjectId o = 0; o < static_cast<ObjectId>(objects_per_tick); ++o) {
      builder.Add(t, o, t * 1000.0 + o, -static_cast<double>(o));
    }
  }
  return builder.Build();
}

TEST(KeyPackingTest, OrderPreservedAcrossSignBoundary) {
  // Unsigned comparison of packed keys must match (t, oid) order even for
  // negative timestamps.
  EXPECT_LT(MakeKey(-5, 10), MakeKey(-5, 11));
  EXPECT_LT(MakeKey(-5, 0xffffffffu), MakeKey(-4, 0));
  EXPECT_LT(MakeKey(-1, 0xffffffffu), MakeKey(0, 0));
  EXPECT_LT(MakeKey(0, 0xffffffffu), MakeKey(1, 0));
  EXPECT_LT(MakeKey(7, 3), MakeKey(8, 0));
}

TEST(KeyPackingTest, RoundTrips) {
  for (Timestamp t : {-100, -1, 0, 1, 12345}) {
    for (ObjectId oid : {0u, 7u, 0xffffffffu}) {
      const uint64_t key = MakeKey(t, oid);
      EXPECT_EQ(KeyTime(key), t);
      EXPECT_EQ(KeyOid(key), oid);
    }
  }
}

TEST(KeyPackingTest, MinMaxKeyBracketTimestamp) {
  EXPECT_LT(MakeKey(4, 0xffffffffu), MinKeyOf(5));
  EXPECT_LE(MinKeyOf(5), MakeKey(5, 0));
  EXPECT_LE(MakeKey(5, 0xffffffffu), MaxKeyOf(5));
  EXPECT_LT(MaxKeyOf(5), MinKeyOf(6));
}

class BPlusTreeTest : public ::testing::Test {
 protected:
  std::unique_ptr<BPlusTree> Build(const Dataset& ds, size_t pool_pages = 64) {
    dir_ = ScratchDir("bptree");
    auto tree = std::make_unique<BPlusTree>(dir_ + "/t.db", pool_pages,
                                            &stats_);
    K2_CHECK_OK(tree->BuildFrom(ds));
    return tree;
  }
  IoStats stats_;
  std::string dir_;
};

TEST_F(BPlusTreeTest, SingleLeafTree) {
  auto tree = Build(SequentialDataset(2, 3));  // 6 records, one leaf
  EXPECT_EQ(tree->height(), 1u);
  BPTreeValue v;
  bool found = false;
  ASSERT_TRUE(tree->Get(MakeKey(1, 2), &v, &found).ok());
  ASSERT_TRUE(found);
  EXPECT_DOUBLE_EQ(v.x, 1002.0);
  ASSERT_TRUE(tree->Get(MakeKey(1, 3), &v, &found).ok());
  EXPECT_FALSE(found);
}

TEST_F(BPlusTreeTest, MultiLevelBuildAndLookup) {
  // 60 ticks x 100 objects = 6000 records > 170/leaf -> internal levels.
  const Dataset ds = SequentialDataset(60, 100);
  auto tree = Build(ds);
  EXPECT_GE(tree->height(), 2u);
  EXPECT_EQ(tree->num_records(), 6000u);
  BPTreeValue v;
  bool found = false;
  for (const PointRecord& rec : ds.records()) {
    ASSERT_TRUE(tree->Get(MakeKey(rec.t, rec.oid), &v, &found).ok());
    ASSERT_TRUE(found) << "t=" << rec.t << " oid=" << rec.oid;
    ASSERT_DOUBLE_EQ(v.x, rec.x);
  }
  // Probe keys that are definitely absent.
  ASSERT_TRUE(tree->Get(MakeKey(60, 0), &v, &found).ok());
  EXPECT_FALSE(found);
  ASSERT_TRUE(tree->Get(MakeKey(-1, 0), &v, &found).ok());
  EXPECT_FALSE(found);
}

TEST_F(BPlusTreeTest, RangeScanCrossesLeaves) {
  const Dataset ds = SequentialDataset(10, 100);  // 100/tick > leaf/2
  auto tree = Build(ds);
  size_t count = 0;
  uint64_t prev_key = 0;
  ASSERT_TRUE(tree->ScanRange(MinKeyOf(3), MaxKeyOf(5),
                              [&](uint64_t key, const BPTreeValue&) {
                                if (count > 0) {
                                  EXPECT_GT(key, prev_key);
                                }
                                prev_key = key;
                                ++count;
                              })
                  .ok());
  EXPECT_EQ(count, 300u);
}

TEST_F(BPlusTreeTest, EmptyRangeScan) {
  auto tree = Build(SequentialDataset(5, 5));
  size_t count = 0;
  ASSERT_TRUE(tree->ScanRange(MinKeyOf(99), MaxKeyOf(99),
                              [&](uint64_t, const BPTreeValue&) { ++count; })
                  .ok());
  EXPECT_EQ(count, 0u);
}

TEST_F(BPlusTreeTest, EmptyTree) {
  auto tree = Build(DatasetBuilder().Build());
  BPTreeValue v;
  bool found = true;
  ASSERT_TRUE(tree->Get(MakeKey(0, 0), &v, &found).ok());
  EXPECT_FALSE(found);
}

TEST_F(BPlusTreeTest, TinyBufferPoolStillCorrectButReadsMore) {
  const Dataset ds = SequentialDataset(40, 100);
  auto big_pool = Build(ds, 512);
  stats_.Clear();
  BPTreeValue v;
  bool found;
  for (int probe = 0; probe < 200; ++probe) {
    ASSERT_TRUE(
        big_pool->Get(MakeKey(probe % 40, (probe * 17) % 100), &v, &found)
            .ok());
    ASSERT_TRUE(found);
  }
  const uint64_t big_pool_reads = stats_.pages_read;

  auto tiny_pool = Build(ds, 2);
  stats_.Clear();
  for (int probe = 0; probe < 200; ++probe) {
    ASSERT_TRUE(
        tiny_pool->Get(MakeKey(probe % 40, (probe * 17) % 100), &v, &found)
            .ok());
    ASSERT_TRUE(found);
  }
  EXPECT_GT(stats_.pages_read, big_pool_reads);
  EXPECT_GT(stats_.pages_cached, 0u);
}

TEST_F(BPlusTreeTest, DropCachesForcesReread) {
  auto tree = Build(SequentialDataset(5, 5));
  BPTreeValue v;
  bool found;
  ASSERT_TRUE(tree->Get(MakeKey(0, 0), &v, &found).ok());
  stats_.Clear();
  ASSERT_TRUE(tree->Get(MakeKey(0, 0), &v, &found).ok());
  EXPECT_EQ(stats_.pages_read, 0u);  // warm
  tree->DropCaches();
  ASSERT_TRUE(tree->Get(MakeKey(0, 0), &v, &found).ok());
  EXPECT_GT(stats_.pages_read, 0u);  // cold again
}

TEST_F(BPlusTreeTest, PageGeometryConstants) {
  // 24-byte leaf entries and 12-byte internal entries in 4 KiB pages; the
  // internal capacity must leave room for the (n + 1)-th child pointer.
  EXPECT_EQ(BPlusTree::kLeafCapacity, 170u);
  EXPECT_EQ(BPlusTree::kInternalCapacity, 339u);
  EXPECT_LE(16 + 8 * BPlusTree::kInternalCapacity +
                4 * (BPlusTree::kInternalCapacity + 1),
            kPageSize);
}

TEST_F(BPlusTreeTest, ThreeLevelTreeFullCoverage) {
  // Enough records to force height 3 (> 170 * 339 rows would need leaves
  // beyond one internal node; 64,600 rows = 380 leaves > 339 children).
  DatasetBuilder builder;
  for (Timestamp t = 0; t < 340; ++t) {
    for (ObjectId o = 0; o < 190; ++o) {
      builder.Add(t, o, t * 2.0, o * 3.0);
    }
  }
  const Dataset ds = builder.Build();
  auto tree = Build(ds);
  EXPECT_GE(tree->height(), 3u);
  // Every tick must scan to exactly 190 rows — this is the regression test
  // for the internal-page child-array overflow (descends through the last
  // child slot of full internal nodes).
  for (Timestamp t = 0; t < 340; ++t) {
    size_t n = 0;
    ASSERT_TRUE(tree->ScanRange(MinKeyOf(t), MaxKeyOf(t),
                                [&](uint64_t, const BPTreeValue&) { ++n; })
                    .ok());
    ASSERT_EQ(n, 190u) << "tick " << t;
  }
}

}  // namespace
}  // namespace k2
