// Parameterized conformance tests: every storage engine must behave exactly
// like the in-memory oracle for scans and point reads, and must account IO.
#include <memory>

#include <gtest/gtest.h>

#include "gen/synthetic.h"
#include "storage/store.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::MakeDataset;
using ::k2::testing::ScratchDir;

class StoreConformanceTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  std::unique_ptr<Store> Make(const std::string& tag) {
    auto result = CreateStore(
        GetParam(), ScratchDir(std::string("store_") + tag + "_" +
                               StoreKindName(GetParam())));
    K2_CHECK(result.ok());
    return result.MoveValue();
  }
};

TEST_P(StoreConformanceTest, NameMatchesKind) {
  auto store = Make("name");
  EXPECT_EQ(store->name(), StoreKindName(GetParam()));
}

TEST_P(StoreConformanceTest, EmptyStoreBehaviour) {
  auto store = Make("empty");
  ASSERT_TRUE(store->BulkLoad(DatasetBuilder().Build()).ok());
  EXPECT_EQ(store->num_points(), 0u);
  EXPECT_TRUE(store->time_range().empty());
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(store->ScanTimestamp(0, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(store->GetPoints(0, ObjectSet::Of({1, 2}), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_P(StoreConformanceTest, ScanReturnsSnapshotInOidOrder) {
  auto store = Make("scan");
  const Dataset ds =
      MakeDataset({{0, 3, 3, 0}, {0, 1, 1, 0}, {1, 2, 2, 0}, {3, 1, 9, 9}});
  ASSERT_TRUE(store->BulkLoad(ds).ok());
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(store->ScanTimestamp(0, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].oid, 1u);
  EXPECT_EQ(out[1].oid, 3u);
  EXPECT_DOUBLE_EQ(out[1].x, 3.0);
  // Missing tick scans come back empty but OK.
  ASSERT_TRUE(store->ScanTimestamp(2, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_P(StoreConformanceTest, GetPointsSkipsAbsentObjects) {
  auto store = Make("get");
  const Dataset ds = MakeDataset({{0, 1, 1, 0}, {0, 5, 5, 0}, {1, 5, 6, 0}});
  ASSERT_TRUE(store->BulkLoad(ds).ok());
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(store->GetPoints(0, ObjectSet::Of({1, 2, 5, 9}), &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].oid, 1u);
  EXPECT_EQ(out[1].oid, 5u);
  EXPECT_DOUBLE_EQ(out[1].x, 5.0);
}

TEST_P(StoreConformanceTest, MatchesMemoryOracleOnRandomData) {
  RandomWalkSpec spec;
  spec.num_objects = 25;
  spec.num_ticks = 40;
  spec.seed = 77;
  const Dataset ds = GenerateRandomWalk(spec);
  auto store = Make("oracle");
  ASSERT_TRUE(store->BulkLoad(ds).ok());
  auto oracle = ::k2::testing::MakeMemStore(ds);

  EXPECT_EQ(store->num_points(), oracle->num_points());
  EXPECT_EQ(store->time_range(), oracle->time_range());
  EXPECT_EQ(store->timestamps(), oracle->timestamps());

  std::vector<SnapshotPoint> got, want;
  for (Timestamp t = -1; t <= 41; ++t) {
    ASSERT_TRUE(store->ScanTimestamp(t, &got).ok());
    ASSERT_TRUE(oracle->ScanTimestamp(t, &want).ok());
    ASSERT_EQ(got.size(), want.size()) << "tick " << t;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].oid, want[i].oid);
      EXPECT_DOUBLE_EQ(got[i].x, want[i].x);
      EXPECT_DOUBLE_EQ(got[i].y, want[i].y);
    }
    const ObjectSet probe = ObjectSet::Of({0, 3, 7, 11, 24, 99});
    ASSERT_TRUE(store->GetPoints(t, probe, &got).ok());
    ASSERT_TRUE(oracle->GetPoints(t, probe, &want).ok());
    ASSERT_EQ(got.size(), want.size()) << "tick " << t;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].oid, want[i].oid);
      EXPECT_DOUBLE_EQ(got[i].x, want[i].x);
    }
  }
}

TEST_P(StoreConformanceTest, IoStatsAdvanceOnQueries) {
  auto store = Make("stats");
  const Dataset ds = MakeDataset({{0, 1, 1, 0}, {0, 2, 2, 0}});
  ASSERT_TRUE(store->BulkLoad(ds).ok());
  store->io_stats().Clear();
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(store->ScanTimestamp(0, &out).ok());
  EXPECT_EQ(store->io_stats().snapshot_scans, 1u);
  EXPECT_EQ(store->io_stats().scanned_points, 2u);
  ASSERT_TRUE(store->GetPoints(0, ObjectSet::Of({1}), &out).ok());
  EXPECT_EQ(store->io_stats().point_queries, 1u);
  EXPECT_EQ(store->io_stats().point_hits, 1u);
}

TEST_P(StoreConformanceTest, BulkLoadReplacesContent) {
  auto store = Make("reload");
  ASSERT_TRUE(store->BulkLoad(MakeDataset({{0, 1, 1, 1}})).ok());
  ASSERT_TRUE(store->BulkLoad(MakeDataset({{5, 9, 2, 2}})).ok());
  EXPECT_EQ(store->num_points(), 1u);
  EXPECT_EQ(store->time_range(), (TimeRange{5, 5}));
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(store->ScanTimestamp(0, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(store->ScanTimestamp(5, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].oid, 9u);
}

TEST_P(StoreConformanceTest, NegativeTimestamps) {
  auto store = Make("negative");
  const Dataset ds = MakeDataset({{-10, 1, 1, 0}, {-9, 1, 2, 0}, {0, 1, 3, 0}});
  ASSERT_TRUE(store->BulkLoad(ds).ok());
  EXPECT_EQ(store->time_range(), (TimeRange{-10, 0}));
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(store->ScanTimestamp(-9, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].x, 2.0);
  ASSERT_TRUE(store->GetPoints(-10, ObjectSet::Of({1}), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].x, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, StoreConformanceTest,
                         ::testing::Values(StoreKind::kMemory, StoreKind::kFile,
                                           StoreKind::kBPlusTree,
                                           StoreKind::kLsm),
                         [](const ::testing::TestParamInfo<StoreKind>& info) {
                           return StoreKindName(info.param);
                         });

}  // namespace
}  // namespace k2
