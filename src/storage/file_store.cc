#include "storage/file_store.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

namespace k2 {

static_assert(sizeof(PointRecord) == 24,
              "PointRecord must be 24 bytes for the fixed-width row format");

namespace {

// Read path shared by the store and its snapshots. Each caller owns its
// FILE* (file position), scratch buffer, and IoStats, so handles never
// contend; the extent directory is identical across them.

Status ReadRowsAt(std::FILE* file, const std::string& path,
                  uint64_t row_offset, uint64_t count,
                  std::vector<PointRecord>* scratch, IoStats* stats) {
  scratch->resize(count);
  if (count == 0) return Status::OK();
  if (std::fseek(file, static_cast<long>(row_offset * sizeof(PointRecord)),
                 SEEK_SET) != 0) {
    return Status::IOError("seek failed in " + path);
  }
  ++stats->seeks;
  if (std::fread(scratch->data(), sizeof(PointRecord), count, file) != count) {
    return Status::IOError("short read from " + path);
  }
  stats->bytes_read += count * sizeof(PointRecord);
  return Status::OK();
}

Status ScanFlatFile(std::FILE* file, const std::string& path,
                    const std::vector<Timestamp>& timestamps,
                    const std::vector<FileStore::Extent>& extents, Timestamp t,
                    std::vector<SnapshotPoint>* out,
                    std::vector<PointRecord>* scratch, IoStats* stats) {
  out->clear();
  if (file == nullptr) return Status::Invalid("FileStore not loaded");
  auto it = std::lower_bound(timestamps.begin(), timestamps.end(), t);
  ++stats->snapshot_scans;
  if (it == timestamps.end() || *it != t) return Status::OK();
  const FileStore::Extent& ext = extents[it - timestamps.begin()];
  K2_RETURN_NOT_OK(
      ReadRowsAt(file, path, ext.row_offset, ext.count, scratch, stats));
  out->reserve(ext.count);
  for (const PointRecord& rec : *scratch) {
    out->push_back(SnapshotPoint{rec.oid, rec.x, rec.y});
  }
  stats->scanned_points += out->size();
  return Status::OK();
}

Status GetFlatFilePoints(std::FILE* file, const std::string& path,
                         const std::vector<Timestamp>& timestamps,
                         const std::vector<FileStore::Extent>& extents,
                         Timestamp t, const ObjectSet& objects,
                         std::vector<SnapshotPoint>* out,
                         std::vector<PointRecord>* scratch, IoStats* stats) {
  out->clear();
  if (file == nullptr) return Status::Invalid("FileStore not loaded");
  stats->point_queries += objects.size();
  auto it = std::lower_bound(timestamps.begin(), timestamps.end(), t);
  if (it == timestamps.end() || *it != t) return Status::OK();
  // No secondary index: a point read pays for the whole timestamp extent.
  const FileStore::Extent& ext = extents[it - timestamps.begin()];
  K2_RETURN_NOT_OK(
      ReadRowsAt(file, path, ext.row_offset, ext.count, scratch, stats));
  auto rec_it = scratch->begin();
  for (ObjectId oid : objects) {
    while (rec_it != scratch->end() && rec_it->oid < oid) ++rec_it;
    if (rec_it == scratch->end()) break;
    if (rec_it->oid == oid) {
      out->push_back(SnapshotPoint{rec_it->oid, rec_it->x, rec_it->y});
    }
  }
  stats->point_hits += out->size();
  return Status::OK();
}

/// Read-only view with a private FILE*, scratch, and extent-directory copy;
/// nothing is shared with the parent once constructed.
class FileReadSnapshot final : public Store {
 public:
  FileReadSnapshot(std::FILE* file, std::string path,
                   std::vector<Timestamp> timestamps,
                   std::vector<FileStore::Extent> extents, TimeRange range,
                   uint64_t num_points)
      : file_(file),
        path_(std::move(path)),
        timestamps_(std::move(timestamps)),
        extents_(std::move(extents)),
        time_range_(range),
        num_points_(num_points) {}

  ~FileReadSnapshot() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  std::string name() const override { return "file"; }
  Status BulkLoad(const Dataset&) override {
    return Status::Invalid("read snapshot of file is read-only");
  }
  Status Append(Timestamp, const std::vector<SnapshotPoint>&) override {
    return Status::Invalid("read snapshot of file is read-only");
  }
  Status ScanTimestamp(Timestamp t, std::vector<SnapshotPoint>* out) override {
    return ScanFlatFile(file_, path_, timestamps_, extents_, t, out, &scratch_,
                        &io_stats_);
  }
  Status GetPoints(Timestamp t, const ObjectSet& objects,
                   std::vector<SnapshotPoint>* out) override {
    return GetFlatFilePoints(file_, path_, timestamps_, extents_, t, objects,
                             out, &scratch_, &io_stats_);
  }
  TimeRange time_range() const override { return time_range_; }
  const std::vector<Timestamp>& timestamps() const override {
    return timestamps_;
  }
  uint64_t num_points() const override { return num_points_; }

 private:
  std::FILE* file_;
  std::string path_;
  std::vector<Timestamp> timestamps_;
  std::vector<FileStore::Extent> extents_;
  std::vector<PointRecord> scratch_;
  TimeRange time_range_;
  uint64_t num_points_;
};

}  // namespace

FileStore::FileStore(std::string path) : path_(std::move(path)) {}

FileStore::~FileStore() {
  if (file_ != nullptr) std::fclose(file_);
  if (append_file_ != nullptr) std::fclose(append_file_);
}

Status FileStore::BulkLoad(const Dataset& dataset) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (append_file_ != nullptr) {
    std::fclose(append_file_);
    append_file_ = nullptr;
  }
  std::FILE* out = std::fopen(path_.c_str(), "wb");
  if (out == nullptr) {
    return Status::IOError("cannot create " + path_ + ": " +
                           std::strerror(errno));
  }
  const auto& records = dataset.records();
  if (!records.empty() &&
      std::fwrite(records.data(), sizeof(PointRecord), records.size(), out) !=
          records.size()) {
    std::fclose(out);
    return Status::IOError("short write to " + path_);
  }
  std::fclose(out);

  file_ = std::fopen(path_.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IOError("cannot reopen " + path_ + ": " +
                           std::strerror(errno));
  }

  timestamps_.clear();
  extents_.clear();
  for (size_t i = 0; i < records.size(); ++i) {
    if (i == 0 || records[i].t != records[i - 1].t) {
      timestamps_.push_back(records[i].t);
      extents_.push_back(Extent{i, 0});
    }
    ++extents_.back().count;
  }
  num_points_ = records.size();
  time_range_ = dataset.time_range();
  io_stats_.Clear();
  return Status::OK();
}

Status FileStore::Append(Timestamp t,
                         const std::vector<SnapshotPoint>& points) {
  K2_RETURN_NOT_OK(CheckAppend(t, points));
  if (points.empty()) return Status::OK();
  // The write handle persists across ticks (one open, not one per append).
  // Its first open truncates ("wb") so a stale file surviving at path_ from
  // an earlier run cannot shift the extent directory off its physical
  // offsets; reopens after a rollback append ("ab"). The separate write
  // handle is safe with the buffered read handle because every read seeks
  // first (ReadRows).
  if (append_file_ == nullptr) {
    append_file_ = std::fopen(path_.c_str(), num_points_ == 0 ? "wb" : "ab");
    if (append_file_ == nullptr) {
      return Status::IOError("cannot append to " + path_ + ": " +
                             std::strerror(errno));
    }
  }
  std::vector<PointRecord> rows;
  rows.reserve(points.size());
  for (const SnapshotPoint& p : points) {
    rows.push_back(PointRecord{t, p.oid, p.x, p.y});
  }
  const bool ok =
      std::fwrite(rows.data(), sizeof(PointRecord), rows.size(),
                  append_file_) == rows.size() &&
      std::fflush(append_file_) == 0;
  if (!ok) {
    // Roll the file back to the last consistent tick boundary; otherwise
    // the orphaned rows would shift every later extent off its physical
    // offset and reads would return misaligned records.
    std::fclose(append_file_);
    append_file_ = nullptr;
    std::error_code ec;
    std::filesystem::resize_file(path_, num_points_ * sizeof(PointRecord), ec);
    return Status::IOError("short append to " + path_);
  }
  if (file_ == nullptr) {
    file_ = std::fopen(path_.c_str(), "rb");
    if (file_ == nullptr) {
      std::fclose(append_file_);
      append_file_ = nullptr;
      std::error_code ec;
      std::filesystem::resize_file(path_, num_points_ * sizeof(PointRecord),
                                   ec);
      return Status::IOError("cannot open " + path_ + " for reading: " +
                             std::strerror(errno));
    }
  }
  timestamps_.push_back(t);
  extents_.push_back(Extent{num_points_, rows.size()});
  if (num_points_ == 0) time_range_.start = t;
  time_range_.end = t;
  num_points_ += rows.size();
  return Status::OK();
}

Status FileStore::ScanTimestamp(Timestamp t, std::vector<SnapshotPoint>* out) {
  return ScanFlatFile(file_, path_, timestamps_, extents_, t, out, &scratch_,
                      &io_stats_);
}

Status FileStore::GetPoints(Timestamp t, const ObjectSet& objects,
                            std::vector<SnapshotPoint>* out) {
  return GetFlatFilePoints(file_, path_, timestamps_, extents_, t, objects,
                           out, &scratch_, &io_stats_);
}

Result<std::unique_ptr<Store>> FileStore::CreateReadSnapshot() {
  // Mirror the parent's loaded state exactly: an unloaded parent fails its
  // reads, so the snapshot does too (file == nullptr); a loaded-but-empty
  // parent answers reads with empty results, so the snapshot needs a real
  // handle on the (empty) file.
  std::FILE* file = nullptr;
  if (file_ != nullptr) {
    file = std::fopen(path_.c_str(), "rb");
    if (file == nullptr) {
      return Status::IOError("cannot open " + path_ +
                             " for snapshot reads: " + std::strerror(errno));
    }
  }
  return std::unique_ptr<Store>(new FileReadSnapshot(
      file, path_, timestamps_, extents_, time_range_, num_points_));
}

uint64_t FileStore::file_size_bytes() const {
  return num_points_ * sizeof(PointRecord);
}

}  // namespace k2
