#include "storage/memory_store.h"

namespace k2 {

MemoryStore::MemoryStore(Dataset dataset) : dataset_(std::move(dataset)) {}

Status MemoryStore::BulkLoad(const Dataset& dataset) {
  dataset_ = dataset;
  io_stats_.Clear();
  return Status::OK();
}

Status MemoryStore::Append(Timestamp t,
                           const std::vector<SnapshotPoint>& points) {
  K2_RETURN_NOT_OK(CheckAppend(t, points));
  return dataset_.AppendSnapshot(t, points);
}

Status MemoryStore::ScanTimestamp(Timestamp t,
                                  std::vector<SnapshotPoint>* out) {
  out->clear();
  auto snap = dataset_.Snapshot(t);
  out->reserve(snap.size());
  for (const PointRecord& rec : snap) {
    out->push_back(SnapshotPoint{rec.oid, rec.x, rec.y});
  }
  ++io_stats_.snapshot_scans;
  io_stats_.scanned_points += out->size();
  io_stats_.bytes_read += snap.size_bytes();
  return Status::OK();
}

Status MemoryStore::GetPoints(Timestamp t, const ObjectSet& objects,
                              std::vector<SnapshotPoint>* out) {
  out->clear();
  auto snap = dataset_.Snapshot(t);
  io_stats_.point_queries += objects.size();
  if (snap.empty()) return Status::OK();
  // Merge over the sorted snapshot and the sorted object set.
  auto it = snap.begin();
  for (ObjectId oid : objects) {
    while (it != snap.end() && it->oid < oid) ++it;
    if (it == snap.end()) break;
    if (it->oid == oid) {
      out->push_back(SnapshotPoint{it->oid, it->x, it->y});
      io_stats_.bytes_read += sizeof(PointRecord);
    }
  }
  io_stats_.point_hits += out->size();
  return Status::OK();
}

}  // namespace k2
