#include "storage/lsm/manifest.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/crc32c.h"

namespace k2::lsm {

namespace {
constexpr char kMagicLine[] = "k2lsm-manifest v1";
}  // namespace

Status WriteManifest(Env* env, const std::string& dir,
                     const ManifestState& state) {
  std::ostringstream body;
  body << kMagicLine << "\n";
  body << "next_seq " << state.next_seq << "\n";
  for (uint64_t seq : state.live_wals) body << "wal " << seq << "\n";
  for (const ManifestTable& t : state.tables) {
    body << "table " << t.tier << " " << t.seq << " " << t.file << " "
         << t.num_entries << "\n";
  }
  std::string text = body.str();
  char trailer[32];
  std::snprintf(trailer, sizeof(trailer), "crc32c %08x\n",
                Crc32c(text.data(), text.size()));
  text += trailer;

  const std::string tmp = dir + "/" + kManifestName + ".tmp";
  const std::string final_path = dir + "/" + kManifestName;
  K2_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                      env->NewWritableFile(tmp));
  K2_RETURN_NOT_OK(file->Append(text.data(), text.size()));
  K2_RETURN_NOT_OK(file->Sync());
  K2_RETURN_NOT_OK(file->Close());
  return env->RenameFile(tmp, final_path);
}

Result<ManifestState> ReadManifest(Env* env, const std::string& dir) {
  const std::string path = dir + "/" + kManifestName;
  if (!env->FileExists(path)) {
    return Status::NotFound("no MANIFEST in " + dir);
  }
  K2_ASSIGN_OR_RETURN(std::string text, env->ReadFileToString(path));

  // Split off and verify the CRC trailer (the last line).
  const size_t last_nl = text.find_last_of('\n');
  if (last_nl == std::string::npos || last_nl + 1 != text.size()) {
    return Status::Invalid("manifest parse error: missing trailer in " + path);
  }
  const size_t prev_nl = text.find_last_of('\n', last_nl - 1);
  const size_t trailer_start = prev_nl == std::string::npos ? 0 : prev_nl + 1;
  const std::string trailer = text.substr(trailer_start, last_nl - trailer_start);
  uint32_t stored_crc = 0;
  if (std::sscanf(trailer.c_str(), "crc32c %" SCNx32, &stored_crc) != 1) {
    return Status::Invalid("manifest parse error: bad trailer in " + path);
  }
  const uint32_t actual_crc = Crc32c(text.data(), trailer_start);
  if (actual_crc != stored_crc) {
    return Status::Invalid("manifest checksum mismatch in " + path);
  }

  ManifestState state;
  std::istringstream in(text.substr(0, trailer_start));
  std::string line;
  if (!std::getline(in, line) || line != kMagicLine) {
    return Status::Invalid("manifest parse error: bad header in " + path);
  }
  bool have_next_seq = false;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "next_seq") {
      fields >> state.next_seq;
      have_next_seq = !fields.fail();
    } else if (tag == "wal") {
      uint64_t seq = 0;
      fields >> seq;
      if (fields.fail()) {
        return Status::Invalid("manifest parse error: bad wal line in " + path);
      }
      state.live_wals.push_back(seq);
    } else if (tag == "table") {
      ManifestTable t;
      fields >> t.tier >> t.seq >> t.file >> t.num_entries;
      if (fields.fail()) {
        return Status::Invalid("manifest parse error: bad table line in " +
                               path);
      }
      state.tables.push_back(std::move(t));
    } else {
      return Status::Invalid("manifest parse error: unknown tag '" + tag +
                             "' in " + path);
    }
  }
  if (!have_next_seq) {
    return Status::Invalid("manifest parse error: missing next_seq in " + path);
  }
  return state;
}

}  // namespace k2::lsm
