// Fig. 8b — Brinkhoff: effect of varying k. VCoDA exceeds the modelled
// memory budget on this dataset (the paper reports an OOM crash).
#include "bench/effect_sweep_common.h"
int main() {
  std::vector<k2::MiningParams> sweep;
  for (int k : {200, 400, 600, 800, 1000, 1200}) sweep.push_back({3, k, 60.0});
  return k2::bench::RunEffectSweep("Fig 8b: Brinkhoff — effect of k (seconds)",
                                   k2::bench::Brinkhoff(), "fig8b", "k", sweep);
}
