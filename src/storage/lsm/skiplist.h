// Skip list keyed by the packed (t, oid) key — the LSM memtable structure.
// Single-threaded by design (the mining pipeline is sequential, like the
// paper's implementation); expected O(log n) insert/lookup, ordered scans.
#ifndef K2_STORAGE_LSM_SKIPLIST_H_
#define K2_STORAGE_LSM_SKIPLIST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"

namespace k2::lsm {

struct LsmValue {
  double x = 0.0;
  double y = 0.0;
};

class SkipList {
 public:
  SkipList() : rng_(0x5eed5eedULL), head_(NewNode(0, LsmValue{}, kMaxLevel)) {}

  /// Inserts or overwrites.
  void Put(uint64_t key, const LsmValue& value);

  /// Returns true and fills `*value` when present.
  bool Get(uint64_t key, LsmValue* value) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// In-order visit of entries with lo <= key <= hi.
  template <typename Fn>
  void Scan(uint64_t lo, uint64_t hi, Fn&& fn) const {
    const Node* node = FindGreaterOrEqual(lo);
    while (node != nullptr && node->key <= hi) {
      fn(node->key, node->value);
      node = node->next[0];
    }
  }

  /// In-order visit of all entries.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Node* n = head_->next[0]; n != nullptr; n = n->next[0]) {
      fn(n->key, n->value);
    }
  }

  void Clear();

 private:
  static constexpr int kMaxLevel = 16;

  struct Node {
    uint64_t key;
    LsmValue value;
    int level;
    Node* next[1];  // over-allocated to `level` entries
  };

  Node* NewNode(uint64_t key, const LsmValue& value, int level);
  void FreeAll();
  const Node* FindGreaterOrEqual(uint64_t key) const;
  int RandomLevel();

  Rng rng_;
  Node* head_;
  int max_level_ = 1;
  size_t size_ = 0;

 public:
  ~SkipList() { FreeAll(); }
  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;
};

}  // namespace k2::lsm

#endif  // K2_STORAGE_LSM_SKIPLIST_H_
