// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum guarding every durable byte of the LSM write path: WAL record
// frames, the SSTable footer's metadata region, and the MANIFEST trailer.
// Castagnoli rather than the zlib polynomial for its better burst-error
// detection — and because SSE4.2 implements exactly this polynomial in
// hardware. The implementation runtime-dispatches through common/simd.h
// (hardware crc32 with 3-way stream interleave when available, table-driven
// software fallback otherwise); K2_SIMD=scalar forces the fallback.
#ifndef K2_COMMON_CRC32C_H_
#define K2_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace k2 {

/// CRC-32C of `n` bytes starting at `data`, continuing from `seed` (pass 0
/// for a fresh checksum; pass a previous return value to extend it).
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

}  // namespace k2

#endif  // K2_COMMON_CRC32C_H_
