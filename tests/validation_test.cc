// Validation (Algorithm 4 / HWMT*): binary subdivision order, FC acceptance,
// recursive splitting, and the one-pass DCVal bug the paper corrects.
#include <algorithm>

#include <gtest/gtest.h>

#include "baselines/gold.h"
#include "baselines/validation.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::C;
using ::k2::testing::MakeMemStore;
using ::k2::testing::MakeTracks;

// ---------------------------------------------------------------------------
// BinarySubdivisionOrder
// ---------------------------------------------------------------------------

TEST(BinarySubdivisionOrderTest, CoversEveryTickExactlyOnce) {
  for (Timestamp len : {1, 2, 3, 4, 5, 8, 13, 16, 31}) {
    const TimeRange range{10, 10 + len - 1};
    std::vector<Timestamp> order = BinarySubdivisionOrder(range);
    ASSERT_EQ(order.size(), static_cast<size_t>(len)) << "len=" << len;
    std::vector<Timestamp> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (Timestamp i = 0; i < len; ++i) ASSERT_EQ(sorted[i], 10 + i);
  }
}

TEST(BinarySubdivisionOrderTest, EndpointsComeFirstThenMidpoint) {
  const std::vector<Timestamp> order = BinarySubdivisionOrder({0, 8});
  ASSERT_GE(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 8);
  EXPECT_EQ(order[2], 4);  // root of the mining tree = the middle
}

TEST(BinarySubdivisionOrderTest, EmptyAndSingle) {
  EXPECT_TRUE(BinarySubdivisionOrder({1, 0}).empty());
  EXPECT_EQ(BinarySubdivisionOrder({5, 5}), (std::vector<Timestamp>{5}));
}

TEST(BinarySubdivisionOrderTest, MatchesPaperFigure4LevelOrder) {
  // Window [0,8] (Table 2): probe order of interior ticks is 4, then 2, 6,
  // then 1, 3, 5, 7 — level by level.
  const std::vector<Timestamp> order = BinarySubdivisionOrder({0, 8});
  const std::vector<Timestamp> expected{0, 8, 4, 2, 6, 1, 3, 5, 7};
  EXPECT_EQ(order, expected);
}

// ---------------------------------------------------------------------------
// ValidateFullyConnected
// ---------------------------------------------------------------------------

TEST(ValidationTest, AcceptsFullyConnectedCandidate) {
  auto store = MakeMemStore(MakeTracks({{0, 0, 0, 0}, {0.5, 0.5, 0.5, 0.5}}));
  ValidationStats stats;
  auto out = ValidateFullyConnected(store.get(), {C({0, 1}, 0, 3)},
                                    {2, 2, 1.0}, true, &stats);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value()[0], C({0, 1}, 0, 3));
  EXPECT_EQ(stats.fc_accepted, 1u);
  EXPECT_EQ(stats.split_rounds, 0u);
}

TEST(ValidationTest, DropsTooSmallOrTooShortCandidates) {
  auto store = MakeMemStore(MakeTracks({{0, 0}, {0.5, 0.5}}));
  auto out = ValidateFullyConnected(store.get(), {C({0}, 0, 1), C({0, 1}, 0, 0)},
                                    {2, 2, 1.0}, true);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
}

// The paper's Sec. 4.6 scenario: candidate (abcd,[0,5]) where object d is
// connected to abc only through object e at tick 2; e is not part of the
// candidate, so the true FC convoy is (abc,[0,5]).
class BridgeScenario : public ::testing::Test {
 protected:
  std::unique_ptr<MemoryStore> MakeStore() {
    // Objects: a=0,b=1,c=2 chained at x=0,0.9,1.8 all ticks.
    // d=3 at x=3.6 (within eps of nothing but e at tick 2; at other ticks
    // x=2.7 -> chained to c directly).
    // e=4 sits at x=2.7 at tick 2 bridging c(1.8) and d(3.6); far otherwise.
    std::vector<std::vector<double>> tracks = {
        {0, 0, 0, 0, 0, 0},
        {0.9, 0.9, 0.9, 0.9, 0.9, 0.9},
        {1.8, 1.8, 1.8, 1.8, 1.8, 1.8},
        {2.7, 2.7, 3.6, 2.7, 2.7, 2.7},   // d drifts out at tick 2
        {50, 50, 2.7, 50, 50, 50},        // e bridges at tick 2 only
    };
    return MakeMemStore(MakeTracks(tracks));
  }
  const MiningParams params_{2, 4, 1.0};
};

TEST_F(BridgeScenario, RecursiveValidationSplitsToTrueFcConvoys) {
  auto store = MakeStore();
  ValidationStats stats;
  auto out = ValidateFullyConnected(store.get(), {C({0, 1, 2, 3}, 0, 5)},
                                    params_, true, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(stats.split_rounds, 0u);
  // The restriction to {a,b,c,d} is NOT a convoy over [0,5] (at tick 2, d is
  // 1.8 from c with no bridge inside the candidate set). Recursive
  // validation finds the pieces; gold confirms them.
  const auto gold = GoldFullyConnectedConvoys(store->dataset(), params_);
  EXPECT_SAME_CONVOYS(out.value(), gold);
  // And the headline piece is (abc + d rejoining): ({0,1,2,3},[3,5]) is too
  // short (k=4), so ({0,1,2},[0,5]) must be in the output.
  bool found_abc = false;
  for (const Convoy& v : out.value()) {
    if (v == C({0, 1, 2}, 0, 5)) found_abc = true;
  }
  EXPECT_TRUE(found_abc);
}

TEST_F(BridgeScenario, OnePassDcvalEmitsUnvalidatedSplits) {
  // One-pass DCVal (VCoDA) emits split pieces without re-validating them.
  // Construction: a and c are never within eps of each other, but are
  // bridged by b during ticks 0-1 and by d during ticks 2-5. The restricted
  // sweep of candidate {a,b,c,d} therefore emits the piece ({a,c},[0,5]) —
  // which is NOT fully connected. Recursive validation re-validates and
  // drops it; one-pass DCVal leaks it.
  std::vector<std::vector<double>> tracks = {
      {0, 0, 0, 0, 0, 0},                  // a
      {0.9, 0.9, 52, 53, 54, 55},          // b: bridge at ticks 0-1 only
      {1.8, 1.8, 1.8, 1.8, 1.8, 1.8},      // c
      {70, 71, 0.9, 0.9, 0.9, 0.9},        // d: bridge at ticks 2-5 only
  };
  auto store = MakeMemStore(MakeTracks(tracks));
  const MiningParams params{2, 3, 1.0};
  const Convoy candidate = C({0, 1, 2, 3}, 0, 5);

  auto recursive =
      ValidateFullyConnected(store.get(), {candidate}, params, true);
  auto one_pass =
      ValidateFullyConnected(store.get(), {candidate}, params, false);
  ASSERT_TRUE(recursive.ok() && one_pass.ok());
  const auto gold = GoldFullyConnectedConvoys(store->dataset(), params);
  // Gold restricted to sub-convoys of the candidate:
  std::vector<Convoy> gold_in_candidate;
  for (const Convoy& v : gold) {
    if (v.IsSubConvoyOf(candidate)) gold_in_candidate.push_back(v);
  }
  EXPECT_SAME_CONVOYS(recursive.value(), gold_in_candidate);

  // The one-pass result must contain at least one convoy that is NOT fully
  // connected (the documented bug).
  bool emitted_non_fc = false;
  for (const Convoy& v : one_pass.value()) {
    bool in_gold = false;
    for (const Convoy& g : gold) {
      if (v == g) in_gold = true;
    }
    if (!in_gold) emitted_non_fc = true;
  }
  EXPECT_TRUE(emitted_non_fc);
}

TEST(ValidationTest, DuplicateCandidatesProcessedOnce) {
  auto store = MakeMemStore(MakeTracks({{0, 0, 0}, {0.5, 0.5, 0.5}}));
  ValidationStats stats;
  auto out = ValidateFullyConnected(
      store.get(), {C({0, 1}, 0, 2), C({0, 1}, 0, 2)}, {2, 2, 1.0}, true,
      &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 1u);
  EXPECT_EQ(stats.fc_accepted, 1u);
}

}  // namespace
}  // namespace k2
