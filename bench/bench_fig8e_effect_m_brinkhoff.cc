// Fig. 8e — Brinkhoff: effect of varying m (k2-* only; VCoDA DNF).
#include "bench/effect_sweep_common.h"
int main() {
  std::vector<k2::MiningParams> sweep;
  for (int m : {3, 6, 9}) sweep.push_back({m, 200, 60.0});
  return k2::bench::RunEffectSweep("Fig 8e: Brinkhoff — effect of m (seconds)",
                                   k2::bench::Brinkhoff(), "fig8e", "m", sweep);
}
