#!/usr/bin/env python3
"""Project-specific structural lints for the k2 tree.

clang-tidy and the thread-safety analysis catch language-level mistakes;
this linter enforces k2's own cross-file contracts — the rules a reviewer
would otherwise have to re-check by hand on every PR:

  validate-mining-params      every public miner entry point (a free
                              function named Mine*) calls
                              ValidateMiningParams before touching data
  no-atomic-shared-ptr        std::atomic<std::shared_ptr<...>> is banned
                              (libstdc++ implements it with a spinlock;
                              the serving layer's SnapshotCell exists
                              precisely to avoid that — see
                              src/serve/catalog.h)
  lsm-io-through-env          write-path file IO inside src/storage/lsm/
                              goes through the Env seam, never raw
                              fopen/open — otherwise the fault-injection
                              crash matrix silently stops covering it
  bench-key-hardware-independent
                              bench code never derives values from
                              std::thread::hardware_concurrency without a
                              justification, because a recorded row keyed
                              by host parallelism breaks cross-host
                              snapshot comparison (scripts/bench_compare.py)
  protocol-enum-coverage      every MessageType / WireError enumerator in
                              protocol.h is handled somewhere in
                              protocol.cc (name tables, decoder, fatality
                              classification)
  nolint-format               clang-tidy suppressions must name the check
                              and justify it: "NOLINT(check): reason".
                              A bare NOLINT silences everything forever.
  no-naked-no-analysis        every K2_NO_THREAD_SAFETY_ANALYSIS carries a
                              nearby prose comment containing the word
                              "invariant" explaining why the unchecked
                              access cannot race

Deliberate exceptions are written in the code, next to the code:

    // k2-lint: allow(<rule>): <justification>

The allowance must name the rule and give a non-empty justification; it
covers findings on the same line or within the next three lines (so a
two-line comment directly above the construct works).

Usage:  scripts/lint_k2.py [--root DIR]
Exits non-zero and prints `file:line: [rule] message` per finding.
"""

import argparse
import os
import re
import sys

ALLOW_RE = re.compile(r"//\s*k2-lint:\s*allow\(([a-z0-9-]+)\)\s*:\s*(\S.*)")
ALLOW_BAD_RE = re.compile(r"//\s*k2-lint:")
# An allowance on line N covers findings on lines N..N+ALLOW_SPAN.
ALLOW_SPAN = 3

MINER_DEF_RE = re.compile(
    r"^(?:Result<[^;{}]*>|Status)\s+(Mine[A-Z]\w*)\s*\(", re.MULTILINE
)
ATOMIC_SHARED_RE = re.compile(r"std::atomic\s*<\s*std::shared_ptr")
RAW_IO_RE = re.compile(r"(?:\bfopen\s*\(|::open\s*\(|\bcreat\s*\()")
HWC_RE = re.compile(r"hardware_concurrency")
NOLINT_RE = re.compile(r"NOLINT")
NOLINT_OK_RE = re.compile(r"NOLINT(?:NEXTLINE)?\([\w.,*-]+\)\s*:\s*\S")
NO_ANALYSIS_RE = re.compile(r"K2_NO_THREAD_SAFETY_ANALYSIS")
ENUM_RE = re.compile(r"enum\s+class\s+(MessageType|WireError)[^{]*\{([^}]*)\}",
                     re.DOTALL)
ENUMERATOR_RE = re.compile(r"^\s*(k\w+)\s*=", re.MULTILINE)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments(text):
    """Blanks out // and /* */ comments, preserving line structure (every
    newline survives so line numbers keep matching the original)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'":
            # Skip string/char literals so quoted "// ..." is not a comment.
            quote = c
            out.append(c)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append(text[i])
                    i += 1
                if i < n:
                    out.append(text[i] if text[i] != "\n" else "\n")
                    i += 1
            if i < n:
                out.append(text[i])
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, root, relpath):
        self.rel = relpath
        with open(os.path.join(root, relpath), encoding="utf-8") as f:
            self.text = f.read()
        self.code = strip_comments(self.text)
        self.lines = self.text.splitlines()
        self.code_lines = self.code.splitlines()
        # rule -> set of covered line numbers (1-based).
        self.allowances = {}
        self.bad_allowances = []
        for lineno, line in enumerate(self.lines, 1):
            m = ALLOW_RE.search(line)
            if m:
                covered = self.allowances.setdefault(m.group(1), set())
                covered.update(range(lineno, lineno + ALLOW_SPAN + 1))
            elif ALLOW_BAD_RE.search(line):
                self.bad_allowances.append(lineno)

    def allowed(self, rule, lineno):
        return lineno in self.allowances.get(rule, set())

    def line_of_offset(self, offset):
        # Offsets come from self.code; stripping preserves newlines, so
        # counting them there maps back to original line numbers.
        return self.code.count("\n", 0, offset) + 1


def walk_sources(root, subdirs, exts=(".h", ".cc")):
    for subdir in subdirs:
        base = os.path.join(root, subdir)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(exts):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def function_body(code, open_paren):
    """Given the offset of a definition's opening '(', returns (body, end)
    of the brace-delimited body, or (None, None) for a declaration."""
    depth, i = 0, open_paren
    while i < len(code):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                break
        i += 1
    i += 1
    while i < len(code) and (code[i].isspace() or
                             code.startswith(("const", "noexcept"), i)):
        i += 5 if code.startswith("const", i) else \
            8 if code.startswith("noexcept", i) else 1
    if i >= len(code) or code[i] != "{":
        return None, None
    depth, start = 0, i
    while i < len(code):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return code[start:i + 1], i
        i += 1
    return None, None


def check_validate_mining_params(sf, findings):
    if not sf.rel.endswith(".cc"):
        return
    for m in MINER_DEF_RE.finditer(sf.code):
        name = m.group(1)
        lineno = sf.line_of_offset(m.start())
        body, _ = function_body(sf.code, sf.code.index("(", m.start()))
        if body is None:
            continue  # declaration
        if "ValidateMiningParams" in body:
            continue
        if sf.allowed("validate-mining-params", lineno):
            continue
        findings.append(Finding(
            sf.rel, lineno, "validate-mining-params",
            f"public miner entry {name}() never calls "
            "ValidateMiningParams; validate first or add a justified "
            "k2-lint allowance"))


def check_atomic_shared_ptr(sf, findings):
    for lineno, line in enumerate(sf.code_lines, 1):
        if ATOMIC_SHARED_RE.search(line):
            if sf.allowed("no-atomic-shared-ptr", lineno):
                continue
            findings.append(Finding(
                sf.rel, lineno, "no-atomic-shared-ptr",
                "std::atomic<std::shared_ptr> is a libstdc++ spinlock in "
                "disguise; use the SnapshotCell pattern "
                "(src/serve/catalog.h) instead"))


def check_lsm_raw_io(sf, findings):
    if not sf.rel.startswith(os.path.join("src", "storage", "lsm") + os.sep):
        return
    for lineno, line in enumerate(sf.code_lines, 1):
        if RAW_IO_RE.search(line):
            if sf.allowed("lsm-io-through-env", lineno):
                continue
            findings.append(Finding(
                sf.rel, lineno, "lsm-io-through-env",
                "raw file IO inside src/storage/lsm/ bypasses the Env "
                "fault-injection seam; route it through Env (common/env.h) "
                "or justify with a k2-lint allowance"))


def check_bench_hardware_keys(sf, findings):
    if not sf.rel.startswith("bench" + os.sep):
        return
    for lineno, line in enumerate(sf.code_lines, 1):
        if HWC_RE.search(line):
            if sf.allowed("bench-key-hardware-independent", lineno):
                continue
            findings.append(Finding(
                sf.rel, lineno, "bench-key-hardware-independent",
                "hardware_concurrency in bench code risks keying a "
                "recorded row by host parallelism, which breaks "
                "bench_compare.py across machines; justify with a k2-lint "
                "allowance stating why no record key derives from it"))


def check_nolint_format(sf, findings):
    for lineno, line in enumerate(sf.lines, 1):
        if NOLINT_RE.search(line) and not NOLINT_OK_RE.search(line):
            findings.append(Finding(
                sf.rel, lineno, "nolint-format",
                "bare NOLINT silences every check with no audit trail; "
                "write NOLINT(<check>): <reason>"))


def check_no_analysis_invariant(sf, findings):
    if sf.rel.endswith(os.path.join("common", "thread_annotations.h")):
        return  # the definition site
    for lineno, line in enumerate(sf.code_lines, 1):
        if not NO_ANALYSIS_RE.search(line):
            continue
        window = sf.lines[max(0, lineno - 11):lineno]
        if any("invariant" in w.lower() for w in window):
            continue
        if sf.allowed("no-naked-no-analysis", lineno):
            continue
        findings.append(Finding(
            sf.rel, lineno, "no-naked-no-analysis",
            "K2_NO_THREAD_SAFETY_ANALYSIS without a nearby prose "
            "invariant: state, in a comment containing the word "
            "'invariant', why the unchecked access cannot race"))


def check_protocol_coverage(root, findings):
    header = os.path.join("src", "serve", "net", "protocol.h")
    impl = os.path.join("src", "serve", "net", "protocol.cc")
    if not os.path.exists(os.path.join(root, header)):
        return
    with open(os.path.join(root, header), encoding="utf-8") as f:
        header_text = strip_comments(f.read())
    try:
        with open(os.path.join(root, impl), encoding="utf-8") as f:
            impl_text = strip_comments(f.read())
    except FileNotFoundError:
        findings.append(Finding(header, 1, "protocol-enum-coverage",
                                "protocol.h has no protocol.cc next to it"))
        return
    for m in ENUM_RE.finditer(header_text):
        enum_name, body = m.group(1), m.group(2)
        for e in ENUMERATOR_RE.finditer(body):
            qualified = f"{enum_name}::{e.group(1)}"
            if qualified not in impl_text:
                lineno = header_text.count("\n", 0, m.start()) + 1
                findings.append(Finding(
                    header, lineno, "protocol-enum-coverage",
                    f"{qualified} is declared on the wire but never "
                    "handled in protocol.cc — name table, decoder, and "
                    "fatality classification must all know it"))


def check_allowance_syntax(sf, findings):
    for lineno in sf.bad_allowances:
        findings.append(Finding(
            sf.rel, lineno, "nolint-format",
            "malformed k2-lint comment; write "
            "`// k2-lint: allow(<rule>): <justification>`"))


def run(root, subdirs=("src", "tests", "bench", "tools", "examples")):
    findings = []
    for rel in walk_sources(root, subdirs):
        sf = SourceFile(root, rel)
        check_allowance_syntax(sf, findings)
        check_validate_mining_params(sf, findings)
        check_atomic_shared_ptr(sf, findings)
        check_lsm_raw_io(sf, findings)
        check_bench_hardware_keys(sf, findings)
        check_nolint_format(sf, findings)
        check_no_analysis_invariant(sf, findings)
    check_protocol_coverage(root, findings)
    return findings


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="tree to lint (default: the repo this script lives in)")
    args = parser.parse_args()
    findings = run(args.root)
    for f in findings:
        print(f)
    if findings:
        print(f"lint_k2: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint_k2: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
