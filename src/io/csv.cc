#include "io/csv.h"

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace k2 {

namespace {

constexpr uint64_t kBinaryMagic = 0x6b32686f70646174ULL;  // "k2hopdat"

/// Strips surrounding whitespace — in particular the '\r' that getline
/// leaves on every line of a CRLF (Windows-exported) file, which used to
/// make the header match fail ("y\r" != "y").
std::string Trim(const std::string& s) {
  const char* ws = " \t\r\n";
  const size_t begin = s.find_first_not_of(ws);
  if (begin == std::string::npos) return "";
  const size_t end = s.find_last_not_of(ws);
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> SplitComma(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) fields.push_back(Trim(field));
  return fields;
}

/// Whole-field numeric parse via std::from_chars: no exceptions, no
/// locale, and — unlike the std::sto* family this replaced — no silent
/// acceptance of trailing junk ("5abc" used to parse as 5, and a malformed
/// field threw std::invalid_argument through the whole process). A leading
/// '+' is still accepted for compatibility (std::sto* allowed it;
/// from_chars alone does not).
template <typename T>
bool ParseField(const std::string& field, T* out) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  if (begin != end && *begin == '+' && begin + 1 != end &&
      *(begin + 1) != '-') {
    ++begin;
  }
  if (begin == end) return false;
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

Status RowParseError(const std::string& path, size_t line_no,
                     const char* column, const std::string& field) {
  return Status::Invalid(path + ":" + std::to_string(line_no) + ": column '" +
                         column + "': cannot parse '" + field +
                         "' as a number");
}

}  // namespace

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot create " + path);
  out << "t,oid,x,y\n";
  for (const PointRecord& rec : dataset.records()) {
    out << rec.t << ',' << rec.oid << ',' << rec.x << ',' << rec.y << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<Dataset> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) return Status::Invalid(path + " is empty");

  // Header: locate the four columns by name.
  const std::vector<std::string> header = SplitComma(line);
  int col_t = -1, col_oid = -1, col_x = -1, col_y = -1;
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == "t" || header[i] == "timestamp") col_t = i;
    if (header[i] == "oid" || header[i] == "id") col_oid = i;
    if (header[i] == "x" || header[i] == "lon") col_x = i;
    if (header[i] == "y" || header[i] == "lat") col_y = i;
  }
  if (col_t < 0 || col_oid < 0 || col_x < 0 || col_y < 0) {
    return Status::Invalid(path + ": header must name t, oid, x, y columns");
  }

  DatasetBuilder builder;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r\n") == std::string::npos) continue;
    const std::vector<std::string> fields = SplitComma(line);
    const size_t needed = static_cast<size_t>(
        std::max(std::max(col_t, col_oid), std::max(col_x, col_y)) + 1);
    if (fields.size() < needed) {
      return Status::Invalid(path + ":" + std::to_string(line_no) +
                             ": too few fields");
    }
    Timestamp t = 0;
    ObjectId oid = 0;
    double x = 0.0, y = 0.0;
    if (!ParseField(fields[col_t], &t)) {
      return RowParseError(path, line_no, "t", fields[col_t]);
    }
    if (!ParseField(fields[col_oid], &oid)) {
      return RowParseError(path, line_no, "oid", fields[col_oid]);
    }
    if (!ParseField(fields[col_x], &x)) {
      return RowParseError(path, line_no, "x", fields[col_x]);
    }
    if (!ParseField(fields[col_y], &y)) {
      return RowParseError(path, line_no, "y", fields[col_y]);
    }
    builder.Add(t, oid, x, y);
  }
  return builder.Build();
}

Status WriteBinary(const Dataset& dataset, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    return Status::IOError("cannot create " + path + ": " +
                           std::strerror(errno));
  }
  const uint64_t count = dataset.num_points();
  bool ok = std::fwrite(&kBinaryMagic, 8, 1, out) == 1 &&
            std::fwrite(&count, 8, 1, out) == 1;
  if (ok && count > 0) {
    ok = std::fwrite(dataset.records().data(), sizeof(PointRecord), count,
                     out) == count;
  }
  std::fclose(out);
  if (!ok) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<Dataset> ReadBinary(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return Status::IOError("cannot open " + path + ": " + std::strerror(errno));
  }
  uint64_t magic = 0, count = 0;
  if (std::fread(&magic, 8, 1, in) != 1 || std::fread(&count, 8, 1, in) != 1 ||
      magic != kBinaryMagic) {
    std::fclose(in);
    return Status::Invalid(path + ": not a k2hop binary dataset");
  }
  // Validate the header count against the actual file size before sizing
  // the read buffer: a truncated or corrupt header would otherwise demand
  // an arbitrarily large allocation.
  std::error_code ec;
  const uint64_t file_size = std::filesystem::file_size(path, ec);
  constexpr uint64_t kHeaderBytes = 16;
  if (ec || file_size < kHeaderBytes ||
      count > (file_size - kHeaderBytes) / sizeof(PointRecord)) {
    std::fclose(in);
    return Status::Invalid(path + ": header claims " + std::to_string(count) +
                           " records but the file has only " +
                           std::to_string(file_size) + " bytes");
  }
  std::vector<PointRecord> records(count);
  if (count > 0 &&
      std::fread(records.data(), sizeof(PointRecord), count, in) != count) {
    std::fclose(in);
    return Status::IOError("short read from " + path);
  }
  std::fclose(in);
  DatasetBuilder builder;
  builder.Reserve(records.size());
  for (const PointRecord& rec : records) builder.Add(rec);
  return builder.Build();
}

}  // namespace k2
