#include "common/object_set.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/simd.h"

namespace k2 {

ObjectSet::ObjectSet(std::vector<ObjectId> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

ObjectSet ObjectSet::FromSorted(std::vector<ObjectId> ids) {
  assert(std::is_sorted(ids.begin(), ids.end()));
  assert(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  ObjectSet s;
  s.ids_ = std::move(ids);
  return s;
}

ObjectSet ObjectSet::Of(std::initializer_list<ObjectId> ids) {
  return ObjectSet(std::vector<ObjectId>(ids));
}

bool ObjectSet::Contains(ObjectId oid) const {
  return std::binary_search(ids_.begin(), ids_.end(), oid);
}

bool ObjectSet::IsSubsetOf(const ObjectSet& other) const {
  return simd::Active().is_subset(ids_.data(), ids_.size(), other.ids_.data(),
                                  other.ids_.size());
}

ObjectSet ObjectSet::Intersect(const ObjectSet& a, const ObjectSet& b) {
  // min(na, nb) result entries plus the kernel's compress-store slack.
  std::vector<ObjectId> out(std::min(a.size(), b.size()) +
                            simd::kMaxLaneSlack);
  const size_t n = simd::Active().intersect(a.ids_.data(), a.size(),
                                            b.ids_.data(), b.size(),
                                            out.data());
  out.resize(n);
  return FromSorted(std::move(out));
}

ObjectSet ObjectSet::Union(const ObjectSet& a, const ObjectSet& b) {
  std::vector<ObjectId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.ids_.begin(), a.ids_.end(), b.ids_.begin(), b.ids_.end(),
                 std::back_inserter(out));
  return FromSorted(std::move(out));
}

ObjectSet ObjectSet::Difference(const ObjectSet& a, const ObjectSet& b) {
  std::vector<ObjectId> out;
  out.reserve(a.size());
  std::set_difference(a.ids_.begin(), a.ids_.end(), b.ids_.begin(),
                      b.ids_.end(), std::back_inserter(out));
  return FromSorted(std::move(out));
}

size_t ObjectSet::IntersectionSize(const ObjectSet& a, const ObjectSet& b) {
  return simd::Active().intersect_size(a.ids_.data(), a.size(), b.ids_.data(),
                                       b.size());
}

std::string ObjectSet::DebugString() const {
  std::ostringstream os;
  os << '{';
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (i > 0) os << ", ";
    os << ids_[i];
  }
  os << '}';
  return os.str();
}

size_t ObjectSet::Hash() const {
  // FNV-1a over the raw id bytes.
  size_t h = 1469598103934665603ULL;
  for (ObjectId id : ids_) {
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (id >> shift) & 0xffu;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace k2
