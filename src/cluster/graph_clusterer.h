// Graph-substrate SnapshotClusterer implementations.
//
// CoLocationGraphClusterer mines the coordinate-free proximity workload: the
// store holds presence records (one zeroed point per object incident to a
// pair at each tick — ProximityLog::PresenceDataset), so every Store engine,
// read snapshot, WAL, and the miners' IO accounting work unchanged, and the
// clusterer joins fetched presence back against the log's per-tick CSR
// adjacency for the edges. Restricting edges to the fetched objects is the
// graph analogue of reCluster(DB[t]|O) — the degree check over the induced
// rows is the cheap pruning that replaces grid-cell distance filtering.
//
// EpsGraphClusterer is the cross-implementation oracle: it materializes each
// snapshot's eps-graph from coordinates (GridIndex for large snapshots,
// brute force below the same threshold DBSCAN uses) and clusters it with the
// graph core, so its output must be byte-identical to GeometricClusterer on
// every input — the property the differential suite (and the
// K2_CLUSTERER=epsgraph CI leg) checks.
#ifndef K2_CLUSTER_GRAPH_CLUSTERER_H_
#define K2_CLUSTER_GRAPH_CLUSTERER_H_

#include <string>
#include <vector>

#include "cluster/clusterer.h"
#include "common/mutex.h"
#include "model/proximity.h"

namespace k2 {

/// Clusters per-tick co-location graphs from a ProximityLog. The log is
/// borrowed and must outlive the clusterer; `eps` in MiningParams is
/// ignored (proximity is defined by the log, not a radius).
class CoLocationGraphClusterer final : public SnapshotClusterer {
 public:
  explicit CoLocationGraphClusterer(const ProximityLog* log) : log_(log) {}

  std::string name() const override { return "colocation-graph"; }
  Result<std::vector<ObjectSet>> Cluster(
      Store* store, Timestamp t, const MiningParams& params,
      SnapshotScratch* scratch, Mutex* store_mu = nullptr) const override;
  Result<std::vector<ObjectSet>> ReCluster(
      Store* store, Timestamp t, const ObjectSet& objects,
      const MiningParams& params, SnapshotScratch* scratch,
      Mutex* store_mu = nullptr) const override;

 private:
  const ProximityLog* log_;
};

/// Geometric clustering routed through the graph core: materializes the
/// snapshot's eps-graph from point coordinates and graph-clusters it.
/// Byte-identical to GeometricClusterer by construction; exists as the
/// differential oracle for the graph substrate.
class EpsGraphClusterer final : public SnapshotClusterer {
 public:
  std::string name() const override { return "epsgraph"; }
  Status ValidateParams(const MiningParams& params) const override;
  Result<std::vector<ObjectSet>> Cluster(
      Store* store, Timestamp t, const MiningParams& params,
      SnapshotScratch* scratch, Mutex* store_mu = nullptr) const override;
  Result<std::vector<ObjectSet>> ReCluster(
      Store* store, Timestamp t, const ObjectSet& objects,
      const MiningParams& params, SnapshotScratch* scratch,
      Mutex* store_mu = nullptr) const override;
};

/// Builds the eps-graph of `points` into scratch->graph (CSR, self
/// excluded) and returns its clusters. Exposed for the differential tests.
std::vector<ObjectSet> EpsGraphClusters(std::span<const SnapshotPoint> points,
                                        double eps, int min_pts,
                                        SnapshotScratch* scratch);

}  // namespace k2

#endif  // K2_CLUSTER_GRAPH_CLUSTERER_H_
