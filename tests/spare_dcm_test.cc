// Unit tests for the parallel baselines: DCM partition merge and SPARE
// enumeration behaviour (worker invariance, budget safety valve).
#include <gtest/gtest.h>

#include "baselines/dcm.h"
#include "baselines/spare.h"
#include "gen/synthetic.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::C;
using ::k2::testing::MakeMemStore;
using ::k2::testing::MakeTracks;

// ---------------------------------------------------------------------------
// DCM
// ---------------------------------------------------------------------------

TEST(DcmMergeTest, FusesBorderPiecesAcrossPartitions) {
  // Convoy {1,2} spans [0,9]; pieces live in two partitions.
  const std::vector<TimeRange> ranges{{0, 4}, {5, 9}};
  std::vector<std::vector<Convoy>> parts{{C({1, 2}, 0, 4)},
                                         {C({1, 2}, 5, 9)}};
  const auto merged = DcmMergePartitions(parts, ranges, {2, 6, 1.0});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], C({1, 2}, 0, 9));
}

TEST(DcmMergeTest, IntersectionShrinksAcrossBoundary) {
  const std::vector<TimeRange> ranges{{0, 4}, {5, 9}};
  std::vector<std::vector<Convoy>> parts{{C({1, 2, 3}, 0, 4)},
                                         {C({2, 3, 4}, 5, 9)}};
  const auto merged = DcmMergePartitions(parts, ranges, {2, 8, 1.0});
  // Only {2,3} survives the full span, length 10 >= 8; the pieces
  // themselves are shorter than k and dropped.
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], C({2, 3}, 0, 9));
}

TEST(DcmMergeTest, NonTouchingPiecesDoNotFuse) {
  const std::vector<TimeRange> ranges{{0, 4}, {5, 9}};
  std::vector<std::vector<Convoy>> parts{{C({1, 2}, 0, 3)},   // ends early
                                         {C({1, 2}, 6, 9)}};  // starts late
  const auto merged = DcmMergePartitions(parts, ranges, {2, 4, 1.0});
  // Each piece stands alone; both are length 4 = k.
  EXPECT_EQ(merged.size(), 2u);
}

TEST(DcmMergeTest, ChainsThroughThreePartitions) {
  const std::vector<TimeRange> ranges{{0, 2}, {3, 5}, {6, 8}};
  std::vector<std::vector<Convoy>> parts{
      {C({1, 2}, 0, 2)}, {C({1, 2}, 3, 5)}, {C({1, 2}, 6, 8)}};
  const auto merged = DcmMergePartitions(parts, ranges, {2, 9, 1.0});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], C({1, 2}, 0, 8));
}

TEST(DcmTest, WorkerCountDoesNotChangeResults) {
  RandomWalkSpec spec;
  spec.num_objects = 12;
  spec.num_ticks = 24;
  spec.area = 50.0;
  spec.seed = 17;
  const Dataset ds = GenerateRandomWalk(spec);
  auto store = MakeMemStore(ds);
  const MiningParams params{2, 4, 9.0};

  DcmOptions serial;
  serial.num_partitions = 4;
  serial.num_workers = 1;
  auto a = MineDcm(store.get(), params, serial);
  DcmOptions parallel;
  parallel.num_partitions = 4;
  parallel.num_workers = 4;
  auto b = MineDcm(store.get(), params, parallel);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_SAME_CONVOYS(a.value(), b.value());
}

TEST(DcmTest, SinglePartitionEqualsPlainSweep) {
  auto store = MakeMemStore(MakeTracks({{0, 0, 0, 0}, {0.5, 0.5, 0.5, 0.5}}));
  DcmOptions options;
  options.num_partitions = 1;
  auto out = MineDcm(store.get(), {2, 3, 1.0}, options);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value()[0], C({0, 1}, 0, 3));
}

TEST(DcmTest, MorePartitionsThanTicks) {
  auto store = MakeMemStore(MakeTracks({{0, 0}, {0.5, 0.5}}));
  DcmOptions options;
  options.num_partitions = 10;
  auto out = MineDcm(store.get(), {2, 2, 1.0}, options);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value()[0], C({0, 1}, 0, 1));
}

// ---------------------------------------------------------------------------
// SPARE
// ---------------------------------------------------------------------------

TEST(SpareTest, FindsSimpleConvoy) {
  auto store = MakeMemStore(MakeTracks(
      {{0, 0, 0, 0}, {0.5, 0.5, 0.5, 0.5}, {70, 71, 72, 73}}));
  SpareStats stats;
  auto out = MineSpare(store.get(), {2, 3, 1.0}, {}, &stats);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value()[0], C({0, 1}, 0, 3));
  EXPECT_GT(stats.stars, 0u);
  EXPECT_EQ(stats.edges, 1u);
  EXPECT_FALSE(stats.budget_exhausted);
}

TEST(SpareTest, EdgePruneDropsShortCoTravel) {
  // Objects co-cluster for only 2 consecutive ticks; k = 3 => no edge, no
  // convoys, and the enumeration never runs.
  auto store = MakeMemStore(
      MakeTracks({{0, 0, 40, 40, 40}, {0.5, 0.5, 80, 80, 80}}));
  SpareStats stats;
  auto out = MineSpare(store.get(), {2, 3, 1.0}, {}, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
  EXPECT_EQ(stats.edges, 0u);
}

TEST(SpareTest, WorkerCountDoesNotChangeResults) {
  RandomWalkSpec spec;
  spec.num_objects = 10;
  spec.num_ticks = 20;
  spec.area = 40.0;
  spec.seed = 23;
  const Dataset ds = GenerateRandomWalk(spec);
  auto store = MakeMemStore(ds);
  const MiningParams params{2, 4, 8.0};
  SpareOptions one;
  one.num_workers = 1;
  SpareOptions four;
  four.num_workers = 4;
  auto a = MineSpare(store.get(), params, one);
  auto b = MineSpare(store.get(), params, four);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_SAME_CONVOYS(a.value(), b.value());
}

TEST(SpareTest, BudgetExhaustionIsFlaggedNotFatal) {
  // A clique of 12 objects together for a long time: the enumeration space
  // is 2^12; a budget of 100 nodes must trip the safety valve.
  std::vector<std::vector<double>> tracks;
  for (int i = 0; i < 12; ++i) {
    tracks.push_back(std::vector<double>(10, i * 0.5));
  }
  auto store = MakeMemStore(MakeTracks(tracks));
  SpareOptions options;
  options.enumeration_budget = 100;
  SpareStats stats;
  auto out = MineSpare(store.get(), {2, 5, 1.0}, options, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(stats.budget_exhausted);
}

TEST(SpareTest, PhaseTimersPopulated) {
  auto store = MakeMemStore(MakeTracks({{0, 0, 0}, {0.5, 0.5, 0.5}}));
  SpareStats stats;
  ASSERT_TRUE(MineSpare(store.get(), {2, 2, 1.0}, {}, &stats).ok());
  EXPECT_GE(stats.phases.Get("clustering"), 0.0);
  EXPECT_GE(stats.phases.Get("enumeration"), 0.0);
  EXPECT_EQ(stats.phases.phases().size(), 3u);
}

}  // namespace
}  // namespace k2
