#include "baselines/sweep.h"

#include <unordered_map>
#include <utility>

#include "cluster/dbscan.h"
#include "model/dataset.h"

namespace k2 {

ClustersAtFn DatasetClustersFn(const Dataset* dataset,
                               const MiningParams& params) {
  return [dataset, params](Timestamp t, std::vector<ObjectSet>* out) -> Status {
    std::vector<SnapshotPoint> points;
    for (const PointRecord& rec : dataset->Snapshot(t)) {
      points.push_back(SnapshotPoint{rec.oid, rec.x, rec.y});
    }
    *out = Dbscan(points, params.eps, params.m);
    return Status::OK();
  };
}

namespace {

/// Active candidates: object set -> earliest start time. Keeping only the
/// earliest start per set is sound because a later-started duplicate is
/// always a sub-convoy of the earlier one.
using CandidateMap = std::unordered_map<ObjectSet, Timestamp, ObjectSetHash>;

void AddCandidate(CandidateMap* map, ObjectSet set, Timestamp start) {
  auto [it, inserted] = map->try_emplace(std::move(set), start);
  if (!inserted && start < it->second) it->second = start;
}

}  // namespace

Result<std::vector<Convoy>> MaximalConvoySweep(const ClustersAtFn& clusters_at,
                                               TimeRange range, int m,
                                               const SweepOptions& options) {
  std::vector<Convoy> emitted;
  CandidateMap active;
  std::vector<ObjectSet> clusters;

  auto keep = [&](const Convoy& v) {
    if (v.length() >= options.min_length) return true;
    if (options.keep_left_border && v.start == range.start) return true;
    if (options.keep_right_border && v.end == range.end) return true;
    return false;
  };

  for (Timestamp t = range.start; t <= range.end; ++t) {
    clusters.clear();
    K2_RETURN_NOT_OK(clusters_at(t, &clusters));
    CandidateMap next;
    for (auto& [set, start] : active) {
      bool fully_extended = false;
      for (const ObjectSet& c : clusters) {
        ObjectSet x = ObjectSet::Intersect(set, c);
        if (x.size() < static_cast<size_t>(m)) continue;
        if (x == set) fully_extended = true;
        AddCandidate(&next, std::move(x), start);
      }
      if (!fully_extended) {
        Convoy v(set, start, t - 1);
        if (keep(v)) emitted.push_back(std::move(v));
      }
    }
    // Corrected candidate maintenance: every cluster opens a candidate, even
    // when it extended an existing one. Guard against callers handing in
    // sub-(m,eps)-clusters — Def. 2 requires size >= m.
    for (const ObjectSet& c : clusters) {
      if (c.size() >= static_cast<size_t>(m)) AddCandidate(&next, c, t);
    }
    active = std::move(next);
  }
  for (auto& [set, start] : active) {
    Convoy v(set, start, range.end);
    if (keep(v)) emitted.push_back(std::move(v));
  }
  return FilterMaximal(std::move(emitted));
}

}  // namespace k2
