// Kernel microbenches for the runtime-dispatched SIMD layer: neighbor-scan
// throughput (Mpts/s), sorted-set intersection (Melem/s), and CRC-32C
// (GB/s), each measured at the scalar oracle level and at the dispatched
// level of this machine. Rows land in the --json flow keyed by the
// machine-independent store names "scalar" and "dispatched" (the concrete
// level is an extra field), so bench_compare.py can track them PR over PR
// on any runner. Before timing, every dispatched kernel is checked against
// the scalar oracle on the bench inputs — a wrong kernel fails the bench,
// it does not post fast numbers.
#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "bench/harness.h"
#include "common/check.h"
#include "common/simd.h"
#include "common/stopwatch.h"

namespace k2::bench {
namespace {

// Defeats dead-code elimination of the timed loops.
volatile uint64_t g_sink = 0;

struct Measurement {
  double seconds = 0.0;
  double throughput = 0.0;  // unit depends on the kernel
};

struct EpsWorkload {
  std::vector<double> xs, ys;
  std::vector<uint32_t> ids;
  std::vector<double> qx, qy;
  double eps2 = 0.0;
  int reps = 0;
};

EpsWorkload MakeEpsWorkload() {
  EpsWorkload w;
  const size_t n = 4096;
  const size_t queries = 256;
  std::mt19937 rng(20260807);
  std::uniform_real_distribution<double> coord(0.0, 100.0);
  w.xs.resize(n);
  w.ys.resize(n);
  w.ids.resize(n);
  for (size_t j = 0; j < n; ++j) {
    w.xs[j] = coord(rng);
    w.ys[j] = coord(rng);
    w.ids[j] = static_cast<uint32_t>(j);
  }
  for (size_t q = 0; q < queries; ++q) {
    w.qx.push_back(coord(rng));
    w.qy.push_back(coord(rng));
  }
  w.eps2 = 2.0 * 2.0;
  w.reps = 30;
  return w;
}

Measurement RunEpsScan(const simd::Kernels& k, const EpsWorkload& w) {
  std::vector<uint32_t> out(w.xs.size());
  Measurement m;
  Stopwatch sw;
  for (int rep = 0; rep < w.reps; ++rep) {
    for (size_t q = 0; q < w.qx.size(); ++q) {
      g_sink = g_sink + k.eps_scan(w.xs.data(), w.ys.data(), w.ids.data(),
                                   w.xs.size(), w.qx[q], w.qy[q], w.eps2,
                                   out.data());
    }
  }
  m.seconds = sw.ElapsedSeconds();
  const double points = static_cast<double>(w.xs.size()) *
                        static_cast<double>(w.qx.size()) * w.reps;
  m.throughput = points / m.seconds / 1e6;  // Mpts/s
  return m;
}

struct SetWorkload {
  std::vector<uint32_t> a, b;
  int reps = 0;
};

SetWorkload MakeSetWorkload() {
  SetWorkload w;
  std::mt19937 rng(42);
  std::uniform_int_distribution<uint32_t> value(0, 16383);
  auto draw = [&] {
    std::vector<uint32_t> v(6000);
    for (auto& x : v) x = value(rng);
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
  };
  w.a = draw();
  w.b = draw();
  w.reps = 3000;
  return w;
}

Measurement RunIntersect(const simd::Kernels& k, const SetWorkload& w) {
  std::vector<uint32_t> out(std::min(w.a.size(), w.b.size()) +
                            simd::kMaxLaneSlack);
  Measurement m;
  Stopwatch sw;
  for (int rep = 0; rep < w.reps; ++rep) {
    g_sink = g_sink + k.intersect(w.a.data(), w.a.size(), w.b.data(),
                                  w.b.size(), out.data());
  }
  m.seconds = sw.ElapsedSeconds();
  const double elems =
      static_cast<double>(w.a.size() + w.b.size()) * w.reps;
  m.throughput = elems / m.seconds / 1e6;  // Melem/s
  return m;
}

struct CrcWorkload {
  std::vector<uint8_t> data;
  int reps = 0;
};

CrcWorkload MakeCrcWorkload() {
  CrcWorkload w;
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> byte(0, 255);
  w.data.resize(8 << 20);
  for (auto& x : w.data) x = static_cast<uint8_t>(byte(rng));
  w.reps = 20;
  return w;
}

Measurement RunCrc(const simd::Kernels& k, const CrcWorkload& w) {
  Measurement m;
  Stopwatch sw;
  for (int rep = 0; rep < w.reps; ++rep) {
    g_sink = g_sink + k.crc32c(w.data.data(), w.data.size(), 0);
  }
  m.seconds = sw.ElapsedSeconds();
  const double bytes = static_cast<double>(w.data.size()) * w.reps;
  m.throughput = bytes / m.seconds / 1e9;  // GB/s
  return m;
}

// Differential sanity on the bench inputs: the dispatched kernels must
// agree with the scalar oracle before their numbers mean anything.
void CheckAgainstOracle(const simd::Kernels& k, const EpsWorkload& eps,
                        const SetWorkload& sets, const CrcWorkload& crc) {
  const simd::Kernels& oracle = simd::At(simd::Level::kScalar);
  std::vector<uint32_t> got(eps.xs.size()), want(eps.xs.size());
  for (size_t q = 0; q < eps.qx.size(); ++q) {
    const size_t want_n =
        oracle.eps_scan(eps.xs.data(), eps.ys.data(), eps.ids.data(),
                        eps.xs.size(), eps.qx[q], eps.qy[q], eps.eps2,
                        want.data());
    const size_t got_n =
        k.eps_scan(eps.xs.data(), eps.ys.data(), eps.ids.data(),
                   eps.xs.size(), eps.qx[q], eps.qy[q], eps.eps2, got.data());
    K2_CHECK(got_n == want_n);
    for (size_t j = 0; j < got_n; ++j) K2_CHECK(got[j] == want[j]);
  }
  got.assign(std::min(sets.a.size(), sets.b.size()) + simd::kMaxLaneSlack, 0);
  want.assign(got.size(), 0);
  const size_t want_n = oracle.intersect(sets.a.data(), sets.a.size(),
                                         sets.b.data(), sets.b.size(),
                                         want.data());
  const size_t got_n = k.intersect(sets.a.data(), sets.a.size(),
                                   sets.b.data(), sets.b.size(), got.data());
  K2_CHECK(got_n == want_n);
  for (size_t j = 0; j < got_n; ++j) K2_CHECK(got[j] == want[j]);
  K2_CHECK(k.crc32c(crc.data.data(), crc.data.size(), 0) ==
           oracle.crc32c(crc.data.data(), crc.data.size(), 0));
}

void Record(const char* kernel, const char* row_store, simd::Level level,
            const Measurement& m, double speedup, const char* unit) {
  JsonFields extra;
  extra.Str("simd_level", simd::LevelName(level))
      .Num(unit, m.throughput)
      .Num("speedup_vs_scalar", speedup);
  RecordBenchRow(std::string("kernel:") + kernel, row_store, MiningParams{},
                 m.seconds, /*convoys=*/0, IoStats{}, extra);
}

}  // namespace

int Main(int argc, char** argv) {
  ParseArgs(argc, argv);
  PrintBanner("SIMD kernel microbenches (scalar vs dispatched)");
  const simd::Level active = simd::ActiveLevel();
  std::cout << "dispatched level: " << simd::LevelName(active)
            << " (cpu max " << simd::LevelName(simd::MaxSupportedLevel())
            << ", K2_SIMD "
            << (std::getenv("K2_SIMD") ? std::getenv("K2_SIMD") : "unset")
            << ")\n";

  const EpsWorkload eps = MakeEpsWorkload();
  const SetWorkload sets = MakeSetWorkload();
  const CrcWorkload crc = MakeCrcWorkload();
  const simd::Kernels& scalar = simd::At(simd::Level::kScalar);
  const simd::Kernels& dispatched = simd::Active();
  CheckAgainstOracle(dispatched, eps, sets, crc);

  TablePrinter table({"kernel", "unit", "scalar", "dispatched", "speedup"});

  const Measurement eps_scalar = RunEpsScan(scalar, eps);
  const Measurement eps_disp = RunEpsScan(dispatched, eps);
  double speedup = eps_disp.throughput / eps_scalar.throughput;
  Record("eps_scan", "scalar", simd::Level::kScalar, eps_scalar, 1.0,
         "mpts_per_s");
  Record("eps_scan", "dispatched", active, eps_disp, speedup, "mpts_per_s");
  table.AddRow({"eps_scan", "Mpts/s", Fmt(eps_scalar.throughput, 1),
                Fmt(eps_disp.throughput, 1), Fmt(speedup, 2) + "x"});

  const Measurement int_scalar = RunIntersect(scalar, sets);
  const Measurement int_disp = RunIntersect(dispatched, sets);
  speedup = int_disp.throughput / int_scalar.throughput;
  Record("intersect", "scalar", simd::Level::kScalar, int_scalar, 1.0,
         "melem_per_s");
  Record("intersect", "dispatched", active, int_disp, speedup, "melem_per_s");
  table.AddRow({"intersect", "Melem/s", Fmt(int_scalar.throughput, 1),
                Fmt(int_disp.throughput, 1), Fmt(speedup, 2) + "x"});

  const Measurement crc_scalar = RunCrc(scalar, crc);
  const Measurement crc_disp = RunCrc(dispatched, crc);
  speedup = crc_disp.throughput / crc_scalar.throughput;
  Record("crc32c", "scalar", simd::Level::kScalar, crc_scalar, 1.0,
         "gb_per_s");
  Record("crc32c", "dispatched", active, crc_disp, speedup, "gb_per_s");
  table.AddRow({"crc32c", "GB/s", Fmt(crc_scalar.throughput, 2),
                Fmt(crc_disp.throughput, 2), Fmt(speedup, 2) + "x"});

  table.Print();
  return 0;
}

}  // namespace k2::bench

int main(int argc, char** argv) { return k2::bench::Main(argc, argv); }
