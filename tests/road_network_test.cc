// Road network and path-mover tests for the generator substrate.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/road_network.h"

namespace k2 {
namespace {

RoadNetwork SmallGrid(uint64_t seed = 1) {
  RoadNetwork::GridSpec spec;
  spec.nx = 8;
  spec.ny = 8;
  spec.spacing = 100.0;
  spec.jitter = 5.0;
  spec.highway_every = 4;
  return RoadNetwork::MakeGrid(spec, seed);
}

TEST(RoadNetworkTest, GridHasExpectedNodeCount) {
  const RoadNetwork net = SmallGrid();
  EXPECT_EQ(net.num_nodes(), 64u);
  EXPECT_GT(net.num_edges(), 60u);
  EXPECT_GT(net.width(), 0.0);
  EXPECT_GT(net.height(), 0.0);
}

TEST(RoadNetworkTest, EdgesHavePositiveSpeedAndLength) {
  const RoadNetwork net = SmallGrid();
  for (uint32_t n = 0; n < net.num_nodes(); ++n) {
    for (const RoadEdge& e : net.OutEdges(n)) {
      EXPECT_GT(e.speed, 0.0);
      EXPECT_GE(e.length, 0.0);
      EXPECT_GE(e.edge_class, 0);
      EXPECT_LE(e.edge_class, 2);
    }
  }
}

TEST(RoadNetworkTest, HighwaysAreFasterThanSideStreets) {
  const RoadNetwork net = SmallGrid();
  double side = 0.0, highway = 0.0;
  for (uint32_t n = 0; n < net.num_nodes(); ++n) {
    for (const RoadEdge& e : net.OutEdges(n)) {
      if (e.edge_class == 0) side = e.speed;
      if (e.edge_class == 2) highway = e.speed;
    }
  }
  ASSERT_GT(side, 0.0);
  ASSERT_GT(highway, 0.0);
  EXPECT_GT(highway, side);
}

TEST(RoadNetworkTest, PathIsConnectedThroughAdjacentNodes) {
  const RoadNetwork net = SmallGrid();
  std::vector<uint32_t> path;
  ASSERT_TRUE(net.FindPath(0, static_cast<uint32_t>(net.num_nodes() - 1), &path));
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), net.num_nodes() - 1);
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    bool adjacent = false;
    for (const RoadEdge& e : net.OutEdges(path[i])) {
      if (e.to == path[i + 1]) adjacent = true;
    }
    ASSERT_TRUE(adjacent) << "hop " << i;
  }
}

TEST(RoadNetworkTest, TrivialPath) {
  const RoadNetwork net = SmallGrid();
  std::vector<uint32_t> path;
  ASSERT_TRUE(net.FindPath(5, 5, &path));
  EXPECT_EQ(path, (std::vector<uint32_t>{5}));
}

TEST(RoadNetworkTest, AStarPrefersFasterRoutes) {
  // Travel time along the returned path should never exceed the direct
  // side-street path time (A* optimizes time, not distance).
  const RoadNetwork net = SmallGrid(7);
  std::vector<uint32_t> path;
  ASSERT_TRUE(net.FindPath(9, 54, &path));
  double time = 0.0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    for (const RoadEdge& e : net.OutEdges(path[i])) {
      if (e.to == path[i + 1]) {
        time += e.length / e.speed;
        break;
      }
    }
  }
  EXPECT_GT(time, 0.0);
  EXPECT_LT(time, 100.0);
}

TEST(RoadNetworkTest, NearestNodeFindsClosest) {
  const RoadNetwork net = SmallGrid();
  const uint32_t n = net.NearestNode(net.node(10).x, net.node(10).y);
  EXPECT_EQ(n, 10u);
}

TEST(PathMoverTest, ReachesDestinationAndStops) {
  const RoadNetwork net = SmallGrid();
  std::vector<uint32_t> path;
  ASSERT_TRUE(net.FindPath(0, 63, &path));
  PathMover mover(&net, path);
  int steps = 0;
  while (!mover.done() && steps < 10000) {
    mover.Step();
    ++steps;
  }
  ASSERT_TRUE(mover.done());
  EXPECT_NEAR(mover.Position().x, net.node(63).x, 1e-6);
  EXPECT_NEAR(mover.Position().y, net.node(63).y, 1e-6);
  // Further steps are no-ops.
  const RoadNode before = mover.Position();
  mover.Step();
  EXPECT_DOUBLE_EQ(mover.Position().x, before.x);
}

TEST(PathMoverTest, ProgressIsMonotoneTowardNextNode) {
  const RoadNetwork net = SmallGrid();
  std::vector<uint32_t> path;
  ASSERT_TRUE(net.FindPath(0, 7, &path));
  PathMover mover(&net, path);
  double prev_dist = 1e18;
  for (int i = 0; i < 5 && !mover.done(); ++i) {
    const RoadNode pos = mover.Step();
    const RoadNode& goal = net.node(7);
    const double d = std::hypot(pos.x - goal.x, pos.y - goal.y);
    EXPECT_LE(d, prev_dist + 1e-9);
    prev_dist = d;
  }
}

TEST(PathMoverTest, SinglePointPathIsImmediatelyDone) {
  const RoadNetwork net = SmallGrid();
  PathMover mover(&net, {3});
  EXPECT_TRUE(mover.done());
}

}  // namespace
}  // namespace k2
