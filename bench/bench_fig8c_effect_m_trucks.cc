// Fig. 8c — Trucks: effect of varying m; k2-* get faster with larger m.
#include "bench/effect_sweep_common.h"
int main() {
  std::vector<k2::MiningParams> sweep;
  for (int m : {3, 6, 9}) sweep.push_back({m, 200, 30.0});
  return k2::bench::RunEffectSweep("Fig 8c: Trucks — effect of m (seconds)",
                                   k2::bench::Trucks(), "fig8c", "m", sweep);
}
