#include "serve/catalog.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

namespace k2 {
namespace detail {

// Invariant (analysis off): the ingress bump + active_ re-check guarantee
// the writer cannot begin overwriting slot s before our egress bump — the
// copy of `snap` below races with nothing. This function and Store() are
// the only two accessors the Slot capability admits; see the class comment.
std::shared_ptr<const CatalogSnapshot> SnapshotCell::Load() const
    K2_NO_THREAD_SAFETY_ANALYSIS {
  for (;;) {
    const int s = active_.load(std::memory_order_seq_cst);
    slots_[s].ingress.fetch_add(1, std::memory_order_seq_cst);
    if (active_.load(std::memory_order_seq_cst) == s) {
      // The re-check read the toggle that made slot s active (or a later
      // state in which s still is): the writer's last write to this slot
      // happens-before the toggle, so the copy below is race-free — and the
      // writer cannot start overwriting s again before our egress bump.
      std::shared_ptr<const CatalogSnapshot> snap = slots_[s].snap;
      slots_[s].egress.fetch_add(1, std::memory_order_seq_cst);
      return snap;
    }
    // Writer toggled between our two loads: back out and re-enter.
    slots_[s].egress.fetch_add(1, std::memory_order_seq_cst);
  }
}

// Invariant (analysis off): K2_REQUIRES(writer_mu) makes us the only
// writer, and the ingress/egress drain loop below orders every reader's
// copy of the retired slot strictly before the overwrite — the write to
// `snap` races with nothing.
void SnapshotCell::Store(std::shared_ptr<const CatalogSnapshot> next,
                         const Mutex& /*writer_mu: capability token only*/)
    K2_NO_THREAD_SAFETY_ANALYSIS {
  const int retired = 1 - active_.load(std::memory_order_relaxed);
  // Wait out readers still inside the retired slot (they entered before the
  // previous toggle; each only holds the slot for one pointer copy). Their
  // egress increments synchronize-with these loads, ordering every such
  // copy strictly before the overwrite below.
  while (slots_[retired].ingress.load(std::memory_order_seq_cst) !=
         slots_[retired].egress.load(std::memory_order_seq_cst)) {
    std::this_thread::yield();
  }
  slots_[retired].snap = std::move(next);
  active_.store(retired, std::memory_order_seq_cst);
}

}  // namespace detail

void CatalogSnapshot::ByObject(ObjectId oid, std::vector<ConvoyId>* out) const {
  out->clear();
  const auto it = std::lower_bound(obj_oids_.begin(), obj_oids_.end(), oid);
  if (it == obj_oids_.end() || *it != oid) return;
  const size_t i = static_cast<size_t>(it - obj_oids_.begin());
  out->assign(obj_postings_.begin() + obj_starts_[i],
              obj_postings_.begin() + obj_starts_[i + 1]);
}

void CatalogSnapshot::ByTimeWindow(TimeRange window,
                                   std::vector<ConvoyId>* out) const {
  out->clear();
  if (convoys_.empty() || window.empty()) return;
  // Overlap = start <= window.end AND end >= window.start. convoys_ is
  // start-sorted, so the first conjunct is a prefix cut; the segment tree
  // reports the second inside that prefix in ascending id order.
  const size_t limit = static_cast<size_t>(
      std::upper_bound(convoys_.begin(), convoys_.end(), window.end,
                       [](Timestamp t, const Convoy& c) {
                         return t < c.start;
                       }) -
      convoys_.begin());
  if (limit == 0) return;
  ReportOverlaps(1, 0, seg_size_, window.start, limit, out);
}

void CatalogSnapshot::ReportOverlaps(size_t node, size_t lo, size_t hi,
                                     Timestamp min_end, size_t limit,
                                     std::vector<ConvoyId>* out) const {
  if (lo >= limit || seg_max_end_[node] < min_end) return;
  if (hi - lo == 1) {
    if (lo < convoys_.size()) out->push_back(static_cast<ConvoyId>(lo));
    return;
  }
  const size_t mid = lo + (hi - lo) / 2;
  ReportOverlaps(2 * node, lo, mid, min_end, limit, out);
  ReportOverlaps(2 * node + 1, mid, hi, min_end, limit, out);
}

void CatalogSnapshot::ByRegion(const Rect& region,
                               std::vector<ConvoyId>* out) const {
  out->clear();
  if (fp_convoy_.empty() || region.empty()) return;
  std::vector<uint32_t> hits;
  grid_.Region(region, &hits);
  out->reserve(hits.size());
  for (uint32_t p : hits) out->push_back(fp_convoy_[p]);
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

bool CatalogSnapshot::RankBefore(ConvoyRank rank, ConvoyId a,
                                 ConvoyId b) const {
  if (rank == ConvoyRank::kLongest) {
    const int64_t la = convoys_[a].length(), lb = convoys_[b].length();
    if (la != lb) return la > lb;
  } else {
    const size_t sa = convoys_[a].objects.size(),
                 sb = convoys_[b].objects.size();
    if (sa != sb) return sa > sb;
  }
  return a < b;
}

ConvoyCatalog::ConvoyCatalog(CatalogOptions options)
    : options_(std::move(options)) {
  // Epoch 0: an empty snapshot, so snapshot() is never null. No other
  // thread can exist yet, but Store demands the writer capability.
  MutexLock lock(writer_mu_);
  snapshot_.Store(
      std::shared_ptr<const CatalogSnapshot>(new CatalogSnapshot()),
      writer_mu_);
}

Status ConvoyCatalog::AddConvoys(std::span<const Convoy> convoys,
                                 Store* store) {
  MutexLock lock(writer_mu_);
  for (const Convoy& convoy : convoys) {
    K2_RETURN_NOT_OK(AddLocked(convoy, store));
  }
  return Status::OK();
}

Status ConvoyCatalog::AddConvoy(const Convoy& convoy, Store* store) {
  MutexLock lock(writer_mu_);
  return AddLocked(convoy, store);
}

Status ConvoyCatalog::AddLocked(const Convoy& convoy, Store* store) {
  if (entries_.find(convoy) != entries_.end()) return Status::OK();
  std::vector<FootprintPoint> footprint;
  K2_RETURN_NOT_OK(ComputeFootprint(convoy, store, &footprint));
  entries_.emplace(convoy, std::move(footprint));
  return Status::OK();
}

Status ConvoyCatalog::ReplaceAll(std::span<const Convoy> convoys,
                                 Store* store) {
  MutexLock lock(writer_mu_);
  // Build the replacement aside (copying reusable footprints) so an error
  // mid-way leaves the current content untouched.
  std::map<Convoy, std::vector<FootprintPoint>> next;
  for (const Convoy& convoy : convoys) {
    if (next.find(convoy) != next.end()) continue;
    const auto it = entries_.find(convoy);
    if (it != entries_.end()) {
      next.emplace(convoy, it->second);
      continue;
    }
    std::vector<FootprintPoint> footprint;
    K2_RETURN_NOT_OK(ComputeFootprint(convoy, store, &footprint));
    next.emplace(convoy, std::move(footprint));
  }
  entries_ = std::move(next);
  return Status::OK();
}

Status ConvoyCatalog::ComputeFootprint(const Convoy& convoy, Store* store,
                                       std::vector<FootprintPoint>* out) const {
  const int64_t stride = std::max(1, options_.footprint_stride);
  std::vector<SnapshotPoint> buf;
  Timestamp t = convoy.start;
  while (true) {
    K2_RETURN_NOT_OK(store->GetPoints(t, convoy.objects, &buf));
    for (const SnapshotPoint& p : buf) out->push_back({p.x, p.y});
    if (t >= convoy.end) break;
    // Always land on the final tick (arithmetic in 64 bits: the clamp must
    // not overflow for lifespans near the Timestamp range edge).
    t = static_cast<int64_t>(convoy.end) - t <= stride
            ? convoy.end
            : static_cast<Timestamp>(t + stride);
  }
  return Status::OK();
}

std::shared_ptr<const CatalogSnapshot> ConvoyCatalog::Publish() {
  MutexLock lock(writer_mu_);
  return PublishLocked();
}

std::shared_ptr<const CatalogSnapshot> ConvoyCatalog::PublishLocked() {
  std::shared_ptr<CatalogSnapshot> snap(new CatalogSnapshot());
  snap->epoch_ = ++epoch_;
  const size_t n = entries_.size();
  snap->convoys_.reserve(n);

  std::vector<std::pair<ObjectId, ConvoyId>> postings;
  std::vector<SnapshotPoint> fp_points;
  for (const auto& [convoy, footprint] : entries_) {  // canonical order
    const ConvoyId id = static_cast<ConvoyId>(snap->convoys_.size());
    for (ObjectId oid : convoy.objects) postings.emplace_back(oid, id);
    for (const FootprintPoint& p : footprint) {
      fp_points.push_back({0, p.x, p.y});
      snap->fp_convoy_.push_back(id);
    }
    snap->convoys_.push_back(convoy);
  }

  // Interval index: max-end segment tree over the start-sorted convoys.
  snap->seg_size_ = 1;
  while (snap->seg_size_ < std::max<size_t>(n, 1)) snap->seg_size_ *= 2;
  snap->seg_max_end_.assign(2 * snap->seg_size_, kInvalidTimestamp);
  for (size_t i = 0; i < n; ++i) {
    snap->seg_max_end_[snap->seg_size_ + i] = snap->convoys_[i].end;
  }
  for (size_t i = snap->seg_size_ - 1; i > 0; --i) {
    snap->seg_max_end_[i] =
        std::max(snap->seg_max_end_[2 * i], snap->seg_max_end_[2 * i + 1]);
  }

  // Inverted object index: CSR postings, ids ascending per oid (the sort is
  // by (oid, id) and ids were appended in ascending order).
  std::sort(postings.begin(), postings.end());
  snap->obj_postings_.reserve(postings.size());
  for (const auto& [oid, id] : postings) {
    if (snap->obj_oids_.empty() || snap->obj_oids_.back() != oid) {
      snap->obj_oids_.push_back(oid);
      snap->obj_starts_.push_back(
          static_cast<uint32_t>(snap->obj_postings_.size()));
    }
    snap->obj_postings_.push_back(id);
  }
  snap->obj_starts_.push_back(
      static_cast<uint32_t>(snap->obj_postings_.size()));

  // Spatial footprint grid. Default cell side targets about one footprint
  // point per cell; GridIndex::Build grows it further if the bounding box
  // would shatter (degenerate: all points coincident -> side 1).
  if (!fp_points.empty()) {
    double cell = options_.grid_cell_size;
    if (cell <= 0.0) {
      double min_x = fp_points[0].x, max_x = fp_points[0].x;
      double min_y = fp_points[0].y, max_y = fp_points[0].y;
      for (const SnapshotPoint& p : fp_points) {
        min_x = std::min(min_x, p.x);
        max_x = std::max(max_x, p.x);
        min_y = std::min(min_y, p.y);
        max_y = std::max(max_y, p.y);
      }
      const double area = (max_x - min_x) * (max_y - min_y);
      cell = area > 0.0
                 ? std::sqrt(area / static_cast<double>(fp_points.size()))
                 : std::max(max_x - min_x, max_y - min_y);
      if (cell <= 0.0) cell = 1.0;
    }
    snap->grid_.Build(fp_points, cell);
  }

  // Rank orders: metric descending, ties by ascending id.
  snap->by_length_.resize(n);
  snap->by_size_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    snap->by_length_[i] = snap->by_size_[i] = static_cast<ConvoyId>(i);
  }
  const CatalogSnapshot* s = snap.get();
  std::sort(snap->by_length_.begin(), snap->by_length_.end(),
            [s](ConvoyId a, ConvoyId b) {
              return s->RankBefore(ConvoyRank::kLongest, a, b);
            });
  std::sort(snap->by_size_.begin(), snap->by_size_.end(),
            [s](ConvoyId a, ConvoyId b) {
              return s->RankBefore(ConvoyRank::kLargest, a, b);
            });

  std::shared_ptr<const CatalogSnapshot> published = std::move(snap);
  snapshot_.Store(published, writer_mu_);
  return published;
}

size_t ConvoyCatalog::pending_size() const {
  MutexLock lock(writer_mu_);
  return entries_.size();
}

Status ConvoyCatalog::hook_status() const {
  MutexLock lock(writer_mu_);
  return hook_status_;
}

std::function<void(const Convoy&)> ConvoyCatalog::OnClosedHook(
    Store* store, size_t publish_every) {
  return [this, store, publish_every, ingested = size_t{0}](
             const Convoy& convoy) mutable {
    MutexLock lock(writer_mu_);
    const Status status = AddLocked(convoy, store);
    if (!status.ok()) {
      if (hook_status_.ok()) hook_status_ = status;
      return;
    }
    if (publish_every > 0 && ++ingested % publish_every == 0) PublishLocked();
  };
}

}  // namespace k2
