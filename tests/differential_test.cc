// Differential correctness: on randomized small datasets, the production
// miners must agree with the brute-force gold oracles:
//   * PCCD == GoldMaximalConvoys       (partially connected spec)
//   * k/2-hop == VCoDA* == GoldFullyConnectedConvoys (FC spec, Def. 8)
//   * k/2-hop output is identical across all four storage engines.
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "baselines/cmc.h"
#include "baselines/cuts.h"
#include "baselines/dcm.h"
#include "baselines/gold.h"
#include "baselines/spare.h"
#include "baselines/vcoda.h"
#include "core/k2hop.h"
#include "gen/synthetic.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::MakeMemStore;
using ::k2::testing::ScratchDir;
using ::k2::testing::Str;

struct DiffCase {
  uint64_t seed;
  int num_objects;
  int num_ticks;
  double area;   // smaller => denser => more clusters
  int m;
  int k;
  double eps;
};

std::string CaseName(const ::testing::TestParamInfo<DiffCase>& info) {
  const DiffCase& c = info.param;
  return "seed" + std::to_string(c.seed) + "_n" +
         std::to_string(c.num_objects) + "_t" + std::to_string(c.num_ticks) +
         "_m" + std::to_string(c.m) + "_k" + std::to_string(c.k);
}

class DifferentialTest : public ::testing::TestWithParam<DiffCase> {
 protected:
  Dataset MakeData() const {
    const DiffCase& c = GetParam();
    RandomWalkSpec spec;
    spec.seed = c.seed;
    spec.num_objects = c.num_objects;
    spec.num_ticks = c.num_ticks;
    spec.area = c.area;
    spec.step = c.area / 8.0;
    return GenerateRandomWalk(spec);
  }
  MiningParams Params() const {
    const DiffCase& c = GetParam();
    return MiningParams{c.m, c.k, c.eps};
  }
};

TEST_P(DifferentialTest, PccdMatchesGoldMaximalConvoys) {
  const Dataset data = MakeData();
  auto store = MakeMemStore(data);
  auto result = MinePccd(store.get(), Params());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_SAME_CONVOYS(result.value(), GoldMaximalConvoys(data, Params()));
}

TEST_P(DifferentialTest, DcmMatchesGoldMaximalConvoys) {
  const Dataset data = MakeData();
  auto store = MakeMemStore(data);
  DcmOptions options;
  options.num_partitions = 3;
  options.num_workers = 2;
  auto result = MineDcm(store.get(), Params(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_SAME_CONVOYS(result.value(), GoldMaximalConvoys(data, Params()));
}

TEST_P(DifferentialTest, SpareMatchesGoldMaximalConvoys) {
  const Dataset data = MakeData();
  auto store = MakeMemStore(data);
  SpareOptions options;
  options.num_workers = 2;
  SpareStats stats;
  auto result = MineSpare(store.get(), Params(), options, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(stats.budget_exhausted);
  EXPECT_SAME_CONVOYS(result.value(), GoldMaximalConvoys(data, Params()));
}

TEST_P(DifferentialTest, CutsMatchesGoldMaximalConvoys) {
  const Dataset data = MakeData();
  auto store = MakeMemStore(data);
  auto result = MineCuts(store.get(), Params());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_SAME_CONVOYS(result.value(), GoldMaximalConvoys(data, Params()));
}

TEST_P(DifferentialTest, VcodaStarMatchesGoldFullyConnected) {
  const Dataset data = MakeData();
  auto store = MakeMemStore(data);
  auto result = MineVcoda(store.get(), Params(), /*corrected=*/true);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_SAME_CONVOYS(result.value(),
                      GoldFullyConnectedConvoys(data, Params()));
}

TEST_P(DifferentialTest, K2HopMatchesGoldFullyConnected) {
  const Dataset data = MakeData();
  auto store = MakeMemStore(data);
  auto result = MineK2Hop(store.get(), Params());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_SAME_CONVOYS(result.value(),
                      GoldFullyConnectedConvoys(data, Params()));
}

TEST_P(DifferentialTest, K2HopAgreesAcrossStorageEngines) {
  const Dataset data = MakeData();
  auto mem = MakeMemStore(data);
  auto expected = MineK2Hop(mem.get(), Params());
  ASSERT_TRUE(expected.ok());
  const std::string dir = ScratchDir(
      "diff_" + std::to_string(GetParam().seed) + "_" +
      std::to_string(GetParam().num_objects) + std::to_string(GetParam().k));
  for (StoreKind kind :
       {StoreKind::kFile, StoreKind::kBPlusTree, StoreKind::kLsm}) {
    auto store_result = CreateStore(kind, dir + "/" + StoreKindName(kind));
    ASSERT_TRUE(store_result.ok()) << store_result.status().ToString();
    std::unique_ptr<Store> store = store_result.MoveValue();
    ASSERT_TRUE(store->BulkLoad(data).ok());
    auto result = MineK2Hop(store.get(), Params());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_SAME_CONVOYS(result.value(), expected.value())
        << "engine: " << store->name();
  }
}

TEST_P(DifferentialTest, K2HopLeftToRightHwmtOrderAgrees) {
  const Dataset data = MakeData();
  auto store = MakeMemStore(data);
  K2HopOptions options;
  options.hwmt_binary_order = false;
  auto result = MineK2Hop(store.get(), Params(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_SAME_CONVOYS(result.value(),
                      GoldFullyConnectedConvoys(data, Params()));
}

TEST_P(DifferentialTest, K2HopWithoutCandidatePruningAgrees) {
  const Dataset data = MakeData();
  auto store = MakeMemStore(data);
  K2HopOptions options;
  options.candidate_pruning = false;
  auto result = MineK2Hop(store.get(), Params(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_SAME_CONVOYS(result.value(),
                      GoldFullyConnectedConvoys(data, Params()));
}

// Dense random walks: lots of accidental clusters, splits and merges.
INSTANTIATE_TEST_SUITE_P(
    DenseRandomWalks, DifferentialTest,
    ::testing::Values(
        DiffCase{1, 8, 14, 40.0, 2, 3, 8.0}, DiffCase{2, 8, 14, 40.0, 2, 4, 8.0},
        DiffCase{3, 9, 12, 50.0, 3, 3, 10.0},
        DiffCase{4, 10, 16, 60.0, 2, 5, 9.0},
        DiffCase{5, 10, 10, 45.0, 3, 4, 12.0},
        DiffCase{6, 7, 20, 35.0, 2, 6, 7.0},
        DiffCase{7, 12, 12, 70.0, 2, 4, 10.0},
        DiffCase{8, 12, 15, 55.0, 3, 5, 11.0},
        DiffCase{9, 6, 24, 30.0, 2, 8, 8.0},
        DiffCase{10, 11, 13, 65.0, 2, 3, 9.0}),
    CaseName);

// Sparse walks: few clusters, tests the "nothing to find" paths.
INSTANTIATE_TEST_SUITE_P(
    SparseRandomWalks, DifferentialTest,
    ::testing::Values(DiffCase{21, 8, 15, 400.0, 2, 4, 8.0},
                      DiffCase{22, 10, 18, 500.0, 3, 5, 10.0},
                      DiffCase{23, 12, 12, 600.0, 2, 3, 9.0},
                      DiffCase{24, 9, 20, 450.0, 2, 6, 7.0}),
    CaseName);

// Larger k relative to the tick count: benchmark points become sparse and
// hop-windows wide.
INSTANTIATE_TEST_SUITE_P(
    WideHopWindows, DifferentialTest,
    ::testing::Values(DiffCase{31, 8, 24, 45.0, 2, 10, 8.0},
                      DiffCase{32, 8, 30, 45.0, 2, 12, 8.0},
                      DiffCase{33, 10, 26, 55.0, 3, 9, 10.0},
                      DiffCase{34, 9, 21, 50.0, 2, 7, 9.0},
                      DiffCase{35, 10, 28, 50.0, 2, 11, 9.0}),
    CaseName);

}  // namespace
}  // namespace k2
