// Log-Structured Merge-tree store ("k2-LSMT", paper Sec. 5.2): skip-list
// memtable, immutable SSTables, size-tiered compaction. Because the composite
// key is (t, oid), all rows of a timestamp are co-located, so a benchmark
// scan is one range read with a single seek, while point reads use per-table
// bloom filters — precisely the access mix k/2-hop generates.
#ifndef K2_STORAGE_LSM_STORE_H_
#define K2_STORAGE_LSM_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/lsm/skiplist.h"
#include "storage/lsm/sstable.h"
#include "storage/store.h"

namespace k2 {

struct LsmStoreOptions {
  /// Memtable entries before an automatic flush.
  size_t memtable_limit = 128 * 1024;
  /// Tables per tier before they are merged into the next tier.
  size_t tier_fanout = 4;
  /// Ablation switch: disable bloom filters on the read path.
  bool use_bloom = true;
};

class LsmStore final : public Store {
 public:
  using Options = LsmStoreOptions;

  /// SSTable files live under `dir` (created on demand).
  explicit LsmStore(std::string dir, Options options = {});

  std::string name() const override { return "lsmt"; }
  Status BulkLoad(const Dataset& dataset) override;
  Status Append(Timestamp t, const std::vector<SnapshotPoint>& points) override;
  Status ScanTimestamp(Timestamp t, std::vector<SnapshotPoint>* out) override;
  Status GetPoints(Timestamp t, const ObjectSet& objects,
                   std::vector<SnapshotPoint>* out) override;
  TimeRange time_range() const override;
  const std::vector<Timestamp>& timestamps() const override;
  uint64_t num_points() const override { return num_points_; }

  /// Native snapshot: opens a private SSTable handle (own mmap, block
  /// cache, bloom, IO accounting) per immutable table file and freezes the
  /// memtable into a sorted run, so concurrent readers share nothing
  /// mutable.
  Result<std::unique_ptr<Store>> CreateReadSnapshot() override;

  /// Single-row insert ("fast data inserts" requirement (3) of Sec. 5);
  /// flushes / compacts automatically.
  Status Put(Timestamp t, ObjectId oid, double x, double y);

  /// Forces the memtable out to a fresh SSTable.
  Status Flush();

  size_t num_sstables() const;
  size_t num_tiers() const { return tiers_.size(); }
  size_t memtable_entries() const { return memtable_.size(); }
  uint64_t compactions_run() const { return compactions_run_; }

 private:
  Status MaybeFlush();
  /// Merges any tier that reached the fanout into the next tier.
  Status MaybeCompact();
  /// Sort-merges `tables` (newest-wins on duplicate keys) into one new
  /// SSTable and returns it.
  Result<std::unique_ptr<lsm::SSTable>> MergeTables(
      const std::vector<std::unique_ptr<lsm::SSTable>>& tables);
  std::string NextTablePath();
  void RebuildFlatView();

  std::string dir_;
  Options options_;
  lsm::SkipList memtable_;
  /// tiers_[i] = tables of tier i, oldest first. Tier number grows with
  /// table size (size-tiered compaction).
  std::vector<std::vector<std::unique_ptr<lsm::SSTable>>> tiers_;
  /// All tables, newest first; rebuilt when the tier structure changes.
  std::vector<lsm::SSTable*> flat_newest_first_;
  uint64_t next_seq_ = 1;
  uint64_t num_points_ = 0;
  uint64_t compactions_run_ = 0;

  /// Sorted, duplicate-free tick list, maintained eagerly on mutation
  /// (Put/BulkLoad) so the const read path never writes shared state —
  /// timestamps() used to rebuild a cache lazily inside a const method, a
  /// data race under the parallel mining pipeline's concurrent metadata
  /// reads.
  std::vector<Timestamp> tick_cache_;
};

}  // namespace k2

#endif  // K2_STORAGE_LSM_STORE_H_
