// Bloom filter over packed (t, oid) keys; one filter per SSTable lets point
// reads skip tables that cannot contain the key (counted in IoStats as
// bloom_negative).
#ifndef K2_STORAGE_LSM_BLOOM_H_
#define K2_STORAGE_LSM_BLOOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace k2::lsm {

class BloomFilter {
 public:
  BloomFilter() = default;

  /// Sizes the filter for `expected_keys` at `bits_per_key` (default 10
  /// bits/key ~ 1% false positives).
  explicit BloomFilter(size_t expected_keys, int bits_per_key = 10);

  void Add(uint64_t key);
  bool MayContain(uint64_t key) const;

  /// Serialized form: the raw word array (for embedding in SSTable files).
  const std::vector<uint64_t>& words() const { return words_; }
  int num_hashes() const { return num_hashes_; }

  /// Rebuilds from a serialized word array.
  static BloomFilter FromWords(std::vector<uint64_t> words, int num_hashes);

  size_t num_bits() const { return words_.size() * 64; }

 private:
  static uint64_t Mix(uint64_t key);

  std::vector<uint64_t> words_;
  int num_hashes_ = 1;
};

}  // namespace k2::lsm

#endif  // K2_STORAGE_LSM_BLOOM_H_
