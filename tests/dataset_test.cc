// Unit tests for the Dataset model: builder normalization, snapshot slices,
// point lookup, restriction.
#include <gtest/gtest.h>

#include "model/dataset.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::MakeDataset;

TEST(DatasetBuilderTest, SortsByTimeThenOid) {
  const Dataset ds = MakeDataset({{2, 1, 0, 0}, {1, 2, 0, 0}, {1, 1, 0, 0}});
  ASSERT_EQ(ds.num_points(), 3u);
  EXPECT_EQ(ds.records()[0].t, 1);
  EXPECT_EQ(ds.records()[0].oid, 1u);
  EXPECT_EQ(ds.records()[1].oid, 2u);
  EXPECT_EQ(ds.records()[2].t, 2);
}

TEST(DatasetBuilderTest, DropsDuplicateKeysKeepingFirst) {
  DatasetBuilder builder;
  builder.Add(1, 1, 10.0, 0.0);
  builder.Add(1, 1, 99.0, 0.0);
  const Dataset ds = builder.Build();
  ASSERT_EQ(ds.num_points(), 1u);
  EXPECT_DOUBLE_EQ(ds.records()[0].x, 10.0);
}

TEST(DatasetBuilderTest, BuilderIsReusableAfterBuild) {
  DatasetBuilder builder;
  builder.Add(0, 0, 0, 0);
  const Dataset first = builder.Build();
  EXPECT_EQ(first.num_points(), 1u);
  builder.Add(5, 5, 0, 0);
  const Dataset second = builder.Build();
  EXPECT_EQ(second.num_points(), 1u);
  EXPECT_EQ(second.records()[0].t, 5);
}

TEST(DatasetTest, EmptyDataset) {
  const Dataset ds = DatasetBuilder().Build();
  EXPECT_TRUE(ds.empty());
  EXPECT_EQ(ds.num_objects(), 0u);
  EXPECT_TRUE(ds.time_range().empty());
  EXPECT_TRUE(ds.Snapshot(0).empty());
  EXPECT_EQ(ds.Find(0, 0), nullptr);
}

TEST(DatasetTest, SnapshotSlices) {
  const Dataset ds = MakeDataset(
      {{0, 1, 1, 1}, {0, 2, 2, 2}, {2, 1, 3, 3}});  // tick 1 missing
  EXPECT_EQ(ds.Snapshot(0).size(), 2u);
  EXPECT_TRUE(ds.Snapshot(1).empty());
  EXPECT_EQ(ds.Snapshot(2).size(), 1u);
  EXPECT_TRUE(ds.Snapshot(99).empty());
  EXPECT_EQ(ds.timestamps(), (std::vector<Timestamp>{0, 2}));
  EXPECT_EQ(ds.time_range(), (TimeRange{0, 2}));
}

TEST(DatasetTest, NumObjectsCountsDistinctIds) {
  const Dataset ds = MakeDataset({{0, 7, 0, 0}, {1, 7, 0, 0}, {1, 9, 0, 0}});
  EXPECT_EQ(ds.num_objects(), 2u);
}

TEST(DatasetTest, FindLocatesRecords) {
  const Dataset ds = MakeDataset({{0, 1, 1, 2}, {0, 3, 3, 4}, {1, 3, 5, 6}});
  const PointRecord* rec = ds.Find(0, 3);
  ASSERT_NE(rec, nullptr);
  EXPECT_DOUBLE_EQ(rec->x, 3.0);
  EXPECT_EQ(ds.Find(0, 2), nullptr);
  EXPECT_EQ(ds.Find(5, 3), nullptr);
}

TEST(DatasetTest, RestrictFiltersObjectsAndTime) {
  const Dataset ds = MakeDataset({{0, 1, 0, 0},
                                  {0, 2, 0, 0},
                                  {1, 1, 0, 0},
                                  {1, 2, 0, 0},
                                  {2, 1, 0, 0}});
  const Dataset sub = ds.Restrict({1}, TimeRange{1, 2});
  EXPECT_EQ(sub.num_points(), 2u);
  EXPECT_EQ(sub.num_objects(), 1u);
  EXPECT_EQ(sub.time_range(), (TimeRange{1, 2}));
}

TEST(DatasetTest, NegativeTimestampsSupported) {
  const Dataset ds = MakeDataset({{-5, 1, 0, 0}, {-3, 1, 0, 0}});
  EXPECT_EQ(ds.time_range(), (TimeRange{-5, -3}));
  EXPECT_EQ(ds.Snapshot(-5).size(), 1u);
}

TEST(DatasetTest, DebugStringMentionsShape) {
  const Dataset ds = MakeDataset({{0, 1, 0, 0}});
  const std::string s = ds.DebugString();
  EXPECT_NE(s.find("points=1"), std::string::npos);
  EXPECT_NE(s.find("objects=1"), std::string::npos);
}

}  // namespace
}  // namespace k2
