// CMC — Convoy Mining using Clustering (Jeung et al., VLDB 2008) — and PCCD
// — Partially Connected Convoy Discovery (Yoon & Shahabi, ICDMW 2009), the
// corrected version of CMC. Both mine *partially connected* convoys: convoy
// objects may be density-connected through outsiders (paper Sec. 2).
#ifndef K2_BASELINES_CMC_H_
#define K2_BASELINES_CMC_H_

#include <vector>

#include "baselines/sweep.h"
#include "common/convoy.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/store.h"

namespace k2 {

/// Builds a ClustersAtFn that scans + clusters snapshots of `store`. The
/// store reference must outlive the returned callable.
ClustersAtFn StoreClustersFn(Store* store, const MiningParams& params);

/// Original CMC. Carries its published recall bug: a cluster that extended
/// some candidate does not open a fresh candidate of its own, so convoys
/// that start inside a bigger transient cluster are missed
/// (tests/cmc_test.cc constructs the counterexample).
Result<std::vector<Convoy>> MineCmc(Store* store, const MiningParams& params);

/// PCCD: the corrected sweep; finds exactly the maximal partially connected
/// convoys with lifespan >= k.
Result<std::vector<Convoy>> MinePccd(Store* store, const MiningParams& params);

}  // namespace k2

#endif  // K2_BASELINES_CMC_H_
