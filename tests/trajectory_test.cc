// Douglas-Peucker and polyline-distance tests (CuTS substrate).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/trajectory.h"

namespace k2 {
namespace {

std::vector<TrajPoint> Line(std::initializer_list<std::pair<double, double>> pts) {
  std::vector<TrajPoint> out;
  Timestamp t = 0;
  for (const auto& [x, y] : pts) out.push_back(TrajPoint{t++, x, y});
  return out;
}

TEST(PointSegmentDistanceTest, BasicCases) {
  // Perpendicular foot inside the segment.
  EXPECT_DOUBLE_EQ(PointSegmentDistance(0, 1, -1, 0, 1, 0), 1.0);
  // Foot beyond an endpoint: distance to the nearest endpoint (0, 1).
  EXPECT_DOUBLE_EQ(PointSegmentDistance(3, 4, 0, 0, 0, 1), std::sqrt(18.0));
  // Degenerate segment = point distance.
  EXPECT_DOUBLE_EQ(PointSegmentDistance(3, 4, 0, 0, 0, 0), 5.0);
  // On the segment.
  EXPECT_DOUBLE_EQ(PointSegmentDistance(0.5, 0, 0, 0, 1, 0), 0.0);
}

TEST(DouglasPeuckerTest, StraightLineCollapsesToEndpoints) {
  const auto simplified =
      DouglasPeucker(Line({{0, 0}, {1, 0.001}, {2, -0.001}, {3, 0}, {4, 0}}), 0.1);
  ASSERT_EQ(simplified.size(), 2u);
  EXPECT_EQ(simplified.front().t, 0);
  EXPECT_EQ(simplified.back().t, 4);
}

TEST(DouglasPeuckerTest, CornerIsKept) {
  const auto simplified =
      DouglasPeucker(Line({{0, 0}, {1, 0}, {2, 0}, {2, 1}, {2, 2}}), 0.1);
  ASSERT_EQ(simplified.size(), 3u);
  EXPECT_DOUBLE_EQ(simplified[1].x, 2.0);
  EXPECT_DOUBLE_EQ(simplified[1].y, 0.0);
}

TEST(DouglasPeuckerTest, ErrorBoundHolds) {
  // Every dropped point must lie within epsilon of the simplified polyline.
  std::vector<TrajPoint> zigzag;
  for (int i = 0; i < 50; ++i) {
    zigzag.push_back(TrajPoint{i, i * 1.0, (i % 5) * 0.8});
  }
  const double epsilon = 1.0;
  const auto simplified = DouglasPeucker(zigzag, epsilon);
  for (const TrajPoint& p : zigzag) {
    double best = 1e18;
    for (size_t s = 0; s + 1 < simplified.size(); ++s) {
      best = std::min(best, PointSegmentDistance(p.x, p.y, simplified[s].x,
                                                 simplified[s].y,
                                                 simplified[s + 1].x,
                                                 simplified[s + 1].y));
    }
    EXPECT_LE(best, epsilon + 1e-9);
  }
}

TEST(DouglasPeuckerTest, TinyInputsPassThrough) {
  EXPECT_TRUE(DouglasPeucker({}, 1.0).empty());
  EXPECT_EQ(DouglasPeucker(Line({{1, 2}}), 1.0).size(), 1u);
  EXPECT_EQ(DouglasPeucker(Line({{1, 2}, {3, 4}}), 1.0).size(), 2u);
}

TEST(PolylineDistanceTest, IntersectingPolylinesHaveZeroDistance) {
  const auto a = Line({{0, 0}, {2, 2}});
  const auto b = Line({{0, 2}, {2, 0}});
  EXPECT_DOUBLE_EQ(PolylineDistance(a, b), 0.0);
}

TEST(PolylineDistanceTest, ParallelSegments) {
  const auto a = Line({{0, 0}, {10, 0}});
  const auto b = Line({{0, 3}, {10, 3}});
  EXPECT_DOUBLE_EQ(PolylineDistance(a, b), 3.0);
}

TEST(PolylineDistanceTest, PointVersusSegment) {
  const auto a = Line({{5, 5}});
  const auto b = Line({{0, 0}, {10, 0}});
  EXPECT_DOUBLE_EQ(PolylineDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(PolylineDistance(b, a), 5.0);
}

TEST(PolylineDistanceTest, EmptyPolylineIsInfinitelyFar) {
  const auto a = Line({{0, 0}});
  EXPECT_TRUE(std::isinf(PolylineDistance(a, {})));
}

TEST(PolylineDistanceTest, SymmetricAndNonNegative) {
  const auto a = Line({{0, 0}, {4, 1}, {8, 0}});
  const auto b = Line({{1, 5}, {6, 3}});
  EXPECT_DOUBLE_EQ(PolylineDistance(a, b), PolylineDistance(b, a));
  EXPECT_GE(PolylineDistance(a, b), 0.0);
}

}  // namespace
}  // namespace k2
