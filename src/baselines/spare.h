// SPARE — Star Partitioning and ApRiori Enumerator (Fan et al., PVLDB 2016),
// the state-of-the-art parallel co-movement framework the paper compares
// against (Figs. 7d-7f), specialized to the convoy predicate (consecutive
// lifespan >= k). Two phases, as in the Spark implementation:
//   1. snapshot clustering of every tick (the cost SPARE treats as
//      preprocessing and the paper shows dominates);
//   2. star partitioning of the co-clustering graph + apriori enumeration
//      within each star.
// Workers emulate Spark executors with threads (DESIGN.md substitutions).
#ifndef K2_BASELINES_SPARE_H_
#define K2_BASELINES_SPARE_H_

#include <cstdint>
#include <vector>

#include "common/convoy.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/types.h"
#include "storage/store.h"

namespace k2 {

struct SpareOptions {
  int num_workers = 1;  ///< parallelism of both phases ("cores" in Fig. 7d-f)
  /// Safety cap on apriori DFS nodes; exhausted => partial result flagged in
  /// the stats (the enumeration is worst-case exponential).
  uint64_t enumeration_budget = 50'000'000;
};

struct SpareStats {
  PhaseTimer phases;  ///< "clustering", "edges", "enumeration"
  size_t stars = 0;
  size_t edges = 0;
  uint64_t dfs_nodes = 0;
  bool budget_exhausted = false;
};

/// Mines maximal partially connected convoys with lifespan >= k (same
/// specification as PCCD / DCM).
Result<std::vector<Convoy>> MineSpare(Store* store, const MiningParams& params,
                                      const SpareOptions& options = {},
                                      SpareStats* stats = nullptr);

}  // namespace k2

#endif  // K2_BASELINES_SPARE_H_
