// Small work-stealing thread pool used to parallelize the embarrassingly
// parallel loops of the mining pipeline (benchmark-point clustering and
// hop-window verification in MineK2Hop). Each worker owns a deque: it pops
// its own tasks LIFO (cache-warm) and steals from the other workers FIFO
// (oldest first), so nested submissions from inside tasks stay local while
// idle workers drain the global backlog.
#ifndef K2_COMMON_THREAD_POOL_H_
#define K2_COMMON_THREAD_POOL_H_

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace k2 {

class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads; 0 (or negative) means
  /// hardware_concurrency. The calling thread is not a worker, but
  /// ParallelFor runs tasks on it as well.
  explicit ThreadPool(int num_workers = 0);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Enqueues a fire-and-forget task. Called from inside a pool task, the
  /// submission lands on the submitting worker's own deque.
  void Submit(std::function<void()> task) K2_EXCLUDES(wake_mu_);

  /// Enqueues a task whose result (or exception) is delivered via a future.
  template <typename F>
  auto Async(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    Submit([task] { (*task)(); });
    return future;
  }

  /// Runs fn(slot, i) for every i in [0, n), distributing indices over the
  /// workers plus the calling thread, and blocks until all n calls finished.
  /// `slot` identifies the concurrent runner (0 <= slot <= num_workers()), so
  /// callers can hand each runner its own scratch state. A nested call from
  /// inside a ParallelFor body runs inline, reusing the enclosing
  /// invocation's slot — slot-keyed scratch stays exclusive to one thread.
  /// The first exception thrown by fn is rethrown here after all indices
  /// completed.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn)
      K2_EXCLUDES(wake_mu_);

  /// Convenience overload without the slot id.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn)
      K2_EXCLUDES(wake_mu_);

  /// Blocks until every task submitted so far has finished.
  void Wait() K2_EXCLUDES(wake_mu_);

 private:
  struct WorkerQueue {
    Mutex mu;
    std::deque<std::function<void()>> tasks K2_GUARDED_BY(mu);
  };

  void WorkerMain(size_t index) K2_EXCLUDES(wake_mu_);
  bool TryRunOneTask(size_t self) K2_EXCLUDES(wake_mu_);
  bool PopFrom(size_t queue_index, bool lifo, std::function<void()>* task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Lock order: a thread never holds wake_mu_ and a WorkerQueue::mu at the
  // same time (push/pop finish before the wake/idle handshake starts).
  Mutex wake_mu_;
  CondVar wake_cv_;
  CondVar idle_cv_;
  std::atomic<size_t> queued_{0};    // tasks sitting in some deque
  std::atomic<size_t> inflight_{0};  // tasks popped but not yet finished
  std::atomic<bool> stop_{false};
  std::atomic<size_t> next_queue_{0};  // round-robin for external Submits
};

}  // namespace k2

#endif  // K2_COMMON_THREAD_POOL_H_
