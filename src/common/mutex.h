// Annotated mutex wrappers for clang thread-safety analysis.
//
// std::mutex carries no capability attributes, so locks taken through it
// are invisible to -Wthread-safety. k2::Mutex is a zero-overhead wrapper
// that declares the capability; k2::MutexLock is the RAII guard (with
// explicit Unlock()/Lock() for drop-the-lock-around-IO sections); and
// k2::CondVar is a condition variable whose Wait(Mutex&) demands the lock
// at compile time. Everything inlines to the underlying std:: calls, so
// the gcc build (annotations compiled out) is identical to using
// std::mutex / std::unique_lock / std::condition_variable directly.
//
// Usage conventions checked across the tree:
//  - fields: `std::vector<T> items_ K2_GUARDED_BY(mu_);`
//  - private "Locked" helpers: `void FooLocked() K2_REQUIRES(mu_);`
//  - public entry points that take the lock: `void Foo() K2_EXCLUDES(mu_);`
//  - condvar predicate loops are open-coded (`while (!pred) cv_.Wait(mu_);`)
//    because the analyzer does not propagate capabilities into lambdas.
#ifndef K2_COMMON_MUTEX_H_
#define K2_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace k2 {

class K2_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() K2_ACQUIRE() { mu_.lock(); }
  void Unlock() K2_RELEASE() { mu_.unlock(); }
  bool TryLock() K2_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII guard; relockable so IO sections can drop the lock:
//
//   MutexLock lock(mu_);
//   ...
//   lock.Unlock();   // analyzer knows mu_ is no longer held
//   DoSlowIo();
//   lock.Lock();
class K2_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) K2_ACQUIRE(mu) : mu_(mu), owned_(true) {
    mu_.Lock();
  }
  ~MutexLock() K2_RELEASE() {
    if (owned_) mu_.Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Lock() K2_ACQUIRE() {
    mu_.Lock();
    owned_ = true;
  }
  void Unlock() K2_RELEASE() {
    mu_.Unlock();
    owned_ = false;
  }

 private:
  Mutex& mu_;
  bool owned_;
};

// Condition variable over k2::Mutex. Wait() requires the capability, so the
// classic bug of waiting on a condvar without holding its mutex is a
// compile error under clang. Built on condition_variable_any with a thin
// BasicLockable adapter; the adapter's lock()/unlock() run inside wait()
// where the analyzer already accounts for the capability, hence the
// NO_THREAD_SAFETY_ANALYSIS on those two forwarding calls.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases mu, blocks, and reacquires mu before returning.
  void Wait(Mutex& mu) K2_REQUIRES(mu) {
    LockAdapter adapter{mu};
    cv_.wait(adapter);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  struct LockAdapter {
    Mutex& mu;
    // Invariant: only ever invoked by cv_.wait() below, which is called
    // with `mu` held (enforced by Wait's K2_REQUIRES) and returns with it
    // reacquired — the capability state is unchanged across Wait().
    void lock() K2_NO_THREAD_SAFETY_ANALYSIS { mu.Lock(); }
    void unlock() K2_NO_THREAD_SAFETY_ANALYSIS { mu.Unlock(); }
  };

  std::condition_variable_any cv_;
};

}  // namespace k2

#endif  // K2_COMMON_MUTEX_H_
