#include "model/proximity.h"

#include <algorithm>
#include <sstream>

namespace k2 {

size_t SnapshotEdges::IndexOf(ObjectId oid) const {
  auto it = std::lower_bound(nodes.begin(), nodes.end(), oid);
  if (it == nodes.end() || *it != oid) return npos;
  return static_cast<size_t>(it - nodes.begin());
}

ProximityLog ProximityLog::FromRecords(std::vector<PairRecord> records) {
  for (PairRecord& r : records) {
    if (r.a > r.b) std::swap(r.a, r.b);
  }
  std::erase_if(records, [](const PairRecord& r) { return r.a == r.b; });
  std::sort(records.begin(), records.end(), PairKeyLess);
  records.erase(std::unique(records.begin(), records.end()), records.end());

  ProximityLog log;
  log.num_pairs_ = records.size();
  if (records.empty()) return log;
  log.time_range_ = {records.front().t, records.back().t};

  // Directed edge list: each canonical pair contributes both directions, so
  // sorting by (t, src, dst) groups each node's neighbour row contiguously
  // and already ascending.
  struct Directed {
    Timestamp t;
    ObjectId src;
    ObjectId dst;
  };
  std::vector<Directed> edges;
  edges.reserve(records.size() * 2);
  for (const PairRecord& r : records) {
    edges.push_back({r.t, r.a, r.b});
    edges.push_back({r.t, r.b, r.a});
    log.object_ids_.insert(r.a);
    log.object_ids_.insert(r.b);
  }
  std::sort(edges.begin(), edges.end(),
            [](const Directed& x, const Directed& y) {
              if (x.t != y.t) return x.t < y.t;
              if (x.src != y.src) return x.src < y.src;
              return x.dst < y.dst;
            });

  log.neighbors_.reserve(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    const Directed& e = edges[i];
    const bool new_tick = log.timestamps_.empty() || log.timestamps_.back() != e.t;
    if (new_tick) {
      log.timestamps_.push_back(e.t);
      log.node_extents_.push_back(log.nodes_.size());
    }
    if (new_tick || log.nodes_.back() != e.src) {
      log.nodes_.push_back(e.src);
      log.nbr_offsets_.push_back(log.neighbors_.size());
    }
    log.neighbors_.push_back(e.dst);
  }
  log.node_extents_.push_back(log.nodes_.size());
  log.nbr_offsets_.push_back(log.neighbors_.size());
  return log;
}

SnapshotEdges ProximityLog::EdgesAt(Timestamp t) const {
  auto it = std::lower_bound(timestamps_.begin(), timestamps_.end(), t);
  if (it == timestamps_.end() || *it != t) return SnapshotEdges{};
  const size_t i = static_cast<size_t>(it - timestamps_.begin());
  const size_t lo = node_extents_[i];
  const size_t hi = node_extents_[i + 1];
  SnapshotEdges view;
  view.nodes = std::span<const ObjectId>(nodes_).subspan(lo, hi - lo);
  view.offsets = std::span<const size_t>(nbr_offsets_).subspan(lo, hi - lo + 1);
  view.neighbors = std::span<const ObjectId>(neighbors_)
                       .subspan(nbr_offsets_[lo], nbr_offsets_[hi] - nbr_offsets_[lo]);
  return view;
}

std::vector<PairRecord> ProximityLog::ToRecords() const {
  std::vector<PairRecord> out;
  out.reserve(num_pairs_);
  for (size_t i = 0; i < timestamps_.size(); ++i) {
    for (size_t j = node_extents_[i]; j < node_extents_[i + 1]; ++j) {
      const ObjectId src = nodes_[j];
      for (size_t e = nbr_offsets_[j]; e < nbr_offsets_[j + 1]; ++e) {
        if (src < neighbors_[e]) {
          out.push_back(PairRecord{timestamps_[i], src, neighbors_[e]});
        }
      }
    }
  }
  return out;
}

Dataset ProximityLog::PresenceDataset() const {
  DatasetBuilder builder;
  builder.Reserve(nodes_.size());
  for (size_t i = 0; i < timestamps_.size(); ++i) {
    for (size_t j = node_extents_[i]; j < node_extents_[i + 1]; ++j) {
      builder.Add(timestamps_[i], nodes_[j], 0.0, 0.0);
    }
  }
  return builder.Build();
}

std::string ProximityLog::DebugString() const {
  std::ostringstream os;
  os << "ProximityLog{pairs=" << num_pairs_ << " objects=" << num_objects()
     << " ticks=[" << time_range_.start << "," << time_range_.end << "]}";
  return os.str();
}

}  // namespace k2
