#include "storage/bptree_store.h"

#include "storage/key.h"

namespace k2 {

BPlusTreeStore::BPlusTreeStore(std::string path, size_t buffer_pool_pages)
    : tree_(std::move(path), buffer_pool_pages, &io_stats_) {}

Status BPlusTreeStore::BulkLoad(const Dataset& dataset) {
  K2_RETURN_NOT_OK(tree_.BuildFrom(dataset));
  delta_ = Dataset();
  timestamps_ = dataset.timestamps();
  tree_range_ = dataset.time_range();
  time_range_ = tree_range_;
  io_stats_.Clear();
  return Status::OK();
}

Status BPlusTreeStore::Append(Timestamp t,
                              const std::vector<SnapshotPoint>& points) {
  K2_RETURN_NOT_OK(CheckAppend(t, points));
  if (points.empty()) return Status::OK();
  K2_RETURN_NOT_OK(delta_.AppendSnapshot(t, points));
  timestamps_.push_back(t);
  if (time_range_.empty()) time_range_.start = t;
  time_range_.end = t;
  return Status::OK();
}

Status BPlusTreeStore::ScanTimestamp(Timestamp t,
                                     std::vector<SnapshotPoint>* out) {
  out->clear();
  ++io_stats_.snapshot_scans;
  if (InDelta(t)) {
    const auto snap = delta_.Snapshot(t);
    out->reserve(snap.size());
    for (const PointRecord& rec : snap) {
      out->push_back(SnapshotPoint{rec.oid, rec.x, rec.y});
    }
    io_stats_.scanned_points += out->size();
    io_stats_.bytes_read += snap.size_bytes();
    return Status::OK();
  }
  K2_RETURN_NOT_OK(tree_.ScanRange(
      MinKeyOf(t), MaxKeyOf(t), [&](uint64_t key, const BPTreeValue& v) {
        out->push_back(SnapshotPoint{KeyOid(key), v.x, v.y});
      }));
  io_stats_.scanned_points += out->size();
  return Status::OK();
}

Status BPlusTreeStore::GetPoints(Timestamp t, const ObjectSet& objects,
                                 std::vector<SnapshotPoint>* out) {
  out->clear();
  io_stats_.point_queries += objects.size();
  if (InDelta(t)) {
    for (ObjectId oid : objects) {
      const PointRecord* rec = delta_.Find(t, oid);
      if (rec != nullptr) {
        out->push_back(SnapshotPoint{oid, rec->x, rec->y});
        io_stats_.bytes_read += sizeof(PointRecord);
      }
    }
    io_stats_.point_hits += out->size();
    return Status::OK();
  }
  for (ObjectId oid : objects) {
    BPTreeValue v;
    bool found = false;
    K2_RETURN_NOT_OK(tree_.Get(MakeKey(t, oid), &v, &found));
    if (found) out->push_back(SnapshotPoint{oid, v.x, v.y});
  }
  io_stats_.point_hits += out->size();
  return Status::OK();
}

}  // namespace k2
