#include "common/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace k2 {

namespace {

Status ErrnoError(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

// ---------------------------------------------------------------------------
// POSIX implementation
// ---------------------------------------------------------------------------

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : WritableFile(std::move(path)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t n) override {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      const ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return ErrnoError("write failed on", path_);
      }
      p += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return ErrnoError("fdatasync failed on", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoError("close failed on", path_);
    return Status::OK();
  }

 private:
  int fd_;
};

/// Fsyncs the directory containing `path` so a just-completed rename or
/// create survives a crash of the file system's metadata journal.
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return ErrnoError("cannot open directory", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoError("fsync failed on directory", dir);
  return Status::OK();
}

class PosixEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return ErrnoError("cannot create", path);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(path, fd));
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoError("cannot rename " + from + " to", to);
    }
    return SyncParentDir(to);
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return ErrnoError("cannot remove", path);
    }
    return Status::OK();
  }

  Status CreateDirs(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) return Status::IOError("cannot create " + dir + ": " + ec.message());
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    std::error_code ec;
    return std::filesystem::exists(path, ec);
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoError("cannot open", path);
    std::string out;
    char buf[1 << 16];
    for (;;) {
      const ssize_t r = ::read(fd, buf, sizeof(buf));
      if (r < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return ErrnoError("read failed on", path);
      }
      if (r == 0) break;
      out.append(buf, static_cast<size_t>(r));
    }
    ::close(fd);
    return out;
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      names.push_back(entry.path().filename().string());
    }
    if (ec) return Status::IOError("cannot list " + dir + ": " + ec.message());
    return names;
  }
};

Status DeadEnvError() {
  return Status::IOError("fault-injection env is down (simulated crash)");
}

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();  // never destroyed: shared by stores
  return env;
}

// ---------------------------------------------------------------------------
// FaultInjectionEnv
// ---------------------------------------------------------------------------

/// Write-through wrapper that charges durability ops to the env and tracks
/// the synced-vs-unsynced split per file.
class FaultInjectionFile final : public WritableFile {
 public:
  FaultInjectionFile(FaultInjectionEnv* env, std::string path,
                     std::unique_ptr<WritableFile> base)
      : WritableFile(std::move(path)), env_(env), base_(std::move(base)) {}

  Status Append(const void* data, size_t n) override {
    MutexLock lock(env_->mu_);
    if (env_->crashed_) return DeadEnvError();
    const uint64_t op = env_->op_count_++;
    const bool fire =
        env_->armed_ && !env_->triggered_ && op >= env_->fail_at_op_;
    if (fire && env_->mode_ == FaultMode::kFailOp) {
      env_->triggered_ = true;
      env_->armed_ = false;
      return Status::IOError("injected append failure at op " +
                             std::to_string(op));
    }
    K2_RETURN_NOT_OK(base_->Append(data, n));
    env_->files_[path_].size += n;
    if (fire) {
      // kCrash loses every unsynced byte of every file; kTornWrite keeps a
      // prefix of this file's unsynced region (a write torn mid-way).
      env_->triggered_ = true;
      env_->CrashLocked(env_->mode_ == FaultMode::kTornWrite ? path_
                                                             : std::string());
      return Status::IOError("injected crash during append at op " +
                             std::to_string(op));
    }
    return Status::OK();
  }

  Status Sync() override {
    MutexLock lock(env_->mu_);
    K2_RETURN_NOT_OK(env_->BeforeOpLocked());
    K2_RETURN_NOT_OK(base_->Sync());
    auto& st = env_->files_[path_];
    st.synced_size = st.size;
    return Status::OK();
  }

  Status Close() override {
    MutexLock lock(env_->mu_);
    K2_RETURN_NOT_OK(env_->BeforeOpLocked());
    return base_->Close();
  }

 private:
  using FaultMode = FaultInjectionEnv::FaultMode;
  FaultInjectionEnv* const env_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base)
    : base_(base != nullptr ? base : Env::Default()) {}

void FaultInjectionEnv::ArmFault(FaultMode mode, uint64_t fail_at_op) {
  MutexLock lock(mu_);
  mode_ = mode;
  fail_at_op_ = fail_at_op;
  armed_ = mode != FaultMode::kNone;
  triggered_ = false;
  crashed_ = false;
}

uint64_t FaultInjectionEnv::op_count() const {
  MutexLock lock(mu_);
  return op_count_;
}

bool FaultInjectionEnv::triggered() const {
  MutexLock lock(mu_);
  return triggered_;
}

bool FaultInjectionEnv::crashed() const {
  MutexLock lock(mu_);
  return crashed_;
}

void FaultInjectionEnv::CrashNow() {
  MutexLock lock(mu_);
  if (!crashed_) CrashLocked(std::string());
}

Status FaultInjectionEnv::BeforeOpLocked(const std::string& appending_path) {
  if (crashed_) return DeadEnvError();
  const uint64_t op = op_count_++;
  if (!armed_ || triggered_ || op < fail_at_op_) return Status::OK();
  triggered_ = true;
  switch (mode_) {
    case FaultMode::kFailOp:
      armed_ = false;
      return Status::IOError("injected failure at op " + std::to_string(op));
    case FaultMode::kCrash:
    case FaultMode::kTornWrite:
      // A torn write only makes sense mid-Append (handled in the file
      // wrapper); on any other op both modes are a clean power cut.
      CrashLocked(appending_path);
      return Status::IOError("injected crash at op " + std::to_string(op));
    case FaultMode::kNone:
      break;
  }
  return Status::OK();
}

void FaultInjectionEnv::CrashLocked(const std::string& torn_path) {
  crashed_ = true;
  for (auto& [path, st] : files_) {
    uint64_t keep = st.synced_size;
    if (path == torn_path && st.size > st.synced_size) {
      // Half of the unsynced region survives, at least one byte, so the
      // recovered file ends mid-record — the torn-write shape WAL framing
      // and SSTable footer validation must reject cleanly.
      const uint64_t unsynced = st.size - st.synced_size;
      keep = st.synced_size + std::max<uint64_t>(1, unsynced / 2);
    }
    if (keep < st.size) {
      ::truncate(path.c_str(), static_cast<off_t>(keep));
      st.size = keep;
    }
  }
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  {
    MutexLock lock(mu_);
    K2_RETURN_NOT_OK(BeforeOpLocked());
    files_[path] = FileState{};  // O_TRUNC semantics: fresh, nothing durable
  }
  auto base_file = base_->NewWritableFile(path);
  if (!base_file.ok()) return base_file.status();
  return std::unique_ptr<WritableFile>(
      new FaultInjectionFile(this, path, base_file.MoveValue()));
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  MutexLock lock(mu_);
  K2_RETURN_NOT_OK(BeforeOpLocked());
  K2_RETURN_NOT_OK(base_->RenameFile(from, to));
  auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = it->second;
    files_.erase(it);
  }
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  MutexLock lock(mu_);
  K2_RETURN_NOT_OK(BeforeOpLocked());
  K2_RETURN_NOT_OK(base_->RemoveFile(path));
  files_.erase(path);
  return Status::OK();
}

Status FaultInjectionEnv::CreateDirs(const std::string& dir) {
  MutexLock lock(mu_);
  if (crashed_) return DeadEnvError();
  return base_->CreateDirs(dir);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  MutexLock lock(mu_);
  if (crashed_) return false;
  return base_->FileExists(path);
}

Result<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  MutexLock lock(mu_);
  if (crashed_) return DeadEnvError();
  return base_->ReadFileToString(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& dir) {
  MutexLock lock(mu_);
  if (crashed_) return DeadEnvError();
  return base_->ListDir(dir);
}

}  // namespace k2
