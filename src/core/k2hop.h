// k/2-hop — the paper's contribution (Sec. 4). Benchmark points every
// ⌊k/2⌋ ticks are fully clustered; everything else touches only candidate
// objects: candidate clusters (set-wise intersection of adjacent benchmark
// cluster sets), HWMT verification inside hop-windows, DCM merge across
// windows, right/left extension to exact lifespans, and recursive FC
// validation.
#ifndef K2_CORE_K2HOP_H_
#define K2_CORE_K2HOP_H_

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/validation.h"
#include "cluster/store_clustering.h"
#include "common/convoy.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/types.h"
#include "storage/store.h"

namespace k2 {

class ThreadPool;

struct K2HopOptions {
  /// HWMT probes hop-window ticks in binary-subdivision (farthest-first)
  /// order; false = naive left-to-right (ablation bench).
  bool hwmt_binary_order = true;
  /// Intersect adjacent benchmark cluster sets into candidate clusters
  /// (Lemma 5); false = feed benchmark clusters directly to HWMT and verify
  /// the right benchmark inside the window (ablation bench).
  bool candidate_pruning = true;
  /// Run the final FC validation; false stops after extension and returns
  /// the (partially connected) extended candidates.
  bool validate = true;
  /// Worker threads for the two embarrassingly parallel phases (benchmark
  /// clustering and hop-window verification). 0 = hardware_concurrency,
  /// except that small stores (< 64k points) run sequentially because the
  /// pool costs more than it saves there; 1 = fully sequential (today's
  /// single-threaded behaviour); an explicit value > 1 always uses the
  /// pool. Results are
  /// byte-identical for every thread count: per-item outputs are gathered by
  /// benchmark/window index and the store is the only shared state (its
  /// accesses are serialized; clustering runs outside the lock).
  int num_threads = 0;
};

struct K2HopStats {
  /// Wall time per phase, in the paper's Fig. 8i vocabulary: "benchmark",
  /// "candidates", "HWMT", "merge", "extend-right", "extend-left",
  /// "validation".
  PhaseTimer phases;
  size_t benchmark_points = 0;
  size_t hop_windows = 0;
  size_t hop_windows_mined = 0;  ///< windows with a non-empty candidate set
  size_t candidate_clusters = 0;
  size_t spanning_convoys = 0;   ///< 1st-order spanning convoys (all windows)
  size_t merged_convoys = 0;     ///< maximal spanning convoys after merge
  size_t prevalidation_convoys = 0;  ///< Fig. 8j series
  ValidationStats validation;
  IoStats io;               ///< store IO consumed by the run
  uint64_t total_points = 0;  ///< rows in the store

  /// The paper's "points processed" (Table 5).
  uint64_t points_processed() const { return io.points_read(); }
  /// Fraction of the dataset never touched (Table 5's pruning %).
  double pruning_ratio() const { return PruningRatio(io, total_points); }
  std::string DebugString() const;
};

/// Mines all maximal fully connected (m,eps)-convoys with lifespan >= k
/// (Algorithm 1). `stats` may be null.
Result<std::vector<Convoy>> MineK2Hop(Store* store, const MiningParams& params,
                                      const K2HopOptions& options = {},
                                      K2HopStats* stats = nullptr);

// --- individual phases, exposed for tests and ablations -------------------

/// Benchmark ticks start + i*⌊k/2⌋ covering the store's range.
std::vector<Timestamp> BenchmarkPoints(TimeRange range, int k);

/// Candidate clusters CC_i of one hop-window: pairwise intersections of the
/// adjacent benchmark cluster sets, keeping sets of size >= m (Sec. 4.2).
/// `right` must be pairwise disjoint (clusters of one tick always are) —
/// the implementation joins through an object-id -> right-cluster map in
/// O(total ids) instead of intersecting all pairs.
std::vector<ObjectSet> CandidateClusters(const std::vector<ObjectSet>& left,
                                         const std::vector<ObjectSet>& right,
                                         int m);

/// Counters of one MineHopWindows run (a subset of K2HopStats, so callers
/// can fold several runs — one per shard — into their own totals).
struct HopWindowPipelineStats {
  PhaseTimer phases;  ///< "benchmark", "candidates", "HWMT"
  size_t benchmark_points = 0;
  size_t hop_windows = 0;
  size_t hop_windows_mined = 0;
  size_t candidate_clusters = 0;
  size_t spanning_convoys = 0;
};

/// Steps 1–3 of the k/2-hop pipeline — benchmark-point clustering,
/// candidate clusters, HWMT — over an injected benchmark sub-sequence:
/// `benchmarks` may be any contiguous slice of the global ⌊k/2⌋ grid, which
/// is how the partitioned miner runs the same pipeline per time shard.
/// Fills `spanning->at(w)` with the spanning convoys of the window
/// [benchmarks[w], benchmarks[w+1]] for w in [0, benchmarks.size() - 1).
///
/// With `pool`, benchmark clustering and window verification fan out over
/// the pool (store fetches serialized by `store_mu`, results gathered by
/// index — output is identical for every pool size); without it the run is
/// sequential and `store_mu` may be null. `scratches` (optional) must hold
/// one slot per concurrent runner (pool workers + 1, or 1 when sequential).
/// `stats` may be null.
Status MineHopWindows(Store* store, const MiningParams& params,
                      std::span<const Timestamp> benchmarks,
                      const K2HopOptions& options,
                      std::vector<std::vector<ObjectSet>>* spanning,
                      HopWindowPipelineStats* stats = nullptr,
                      ThreadPool* pool = nullptr, Mutex* store_mu = nullptr,
                      std::vector<SnapshotScratch>* scratches = nullptr);

/// HWMT (Algorithm 2): verifies candidates at every tick strictly inside
/// (b_left, b_right); when `verify_right_benchmark`, b_right is probed too
/// (used by the no-pruning ablation). Returns the surviving object sets.
/// `scratch` (optional) makes repeated calls allocation-free; `store_mu`
/// (optional) serializes store access when windows are verified
/// concurrently.
Result<std::vector<ObjectSet>> HwmtSpanning(
    Store* store, const MiningParams& params, Timestamp b_left,
    Timestamp b_right, const std::vector<ObjectSet>& candidates,
    bool binary_order = true, bool verify_right_benchmark = false,
    SnapshotScratch* scratch = nullptr, Mutex* store_mu = nullptr);

/// DCM merge (Sec. 4.4): folds per-window spanning convoys left to right
/// into maximal spanning convoys. `spanning[i]` spans
/// [benchmarks[i], benchmarks[i+1]].
std::vector<Convoy> MergeSpanningConvoys(
    const std::vector<std::vector<ObjectSet>>& spanning,
    const std::vector<Timestamp>& benchmarks, int m);

/// Incremental form of the DCM merge: feed the spanning convoys of one
/// closed hop-window at a time, left to right. A merged spanning convoy is
/// surfaced ("dies") the moment it fails to extend into the next window, so
/// the online miner can hand it to extension without waiting for the rest
/// of the stream. Feeding every window and then Finish() yields exactly the
/// convoy set of MergeSpanningConvoys (which is implemented on top of this
/// class): dominance between merged convoys can only occur between convoys
/// dying at the same window — an earlier death can never be dominated by a
/// later one, because an object set that dies at window w cannot have a
/// superset still spanning w.
class SpanningConvoyMerger {
 public:
  /// Object set -> earliest tick the set has been spanning since.
  using StartMap = std::unordered_map<ObjectSet, Timestamp, ObjectSetHash>;

  explicit SpanningConvoyMerger(int m) : m_(m) {}

  /// Folds the window that starts at benchmark `window_start`; appends to
  /// `*died` the merged spanning convoys (maximal among this window's
  /// deaths) whose lifespan ends at `window_start`.
  void AddWindow(Timestamp window_start, const std::vector<ObjectSet>& spanning,
                 std::vector<Convoy>* died);

  /// Ends the fold: appends every still-active convoy, closed at the final
  /// benchmark point `last_benchmark`, to `*died`.
  void Finish(Timestamp last_benchmark, std::vector<Convoy>* died);

  size_t active_size() const { return active_.size(); }

  /// State transfer for the partitioned seam stitch: a shard's local fold
  /// ends with an active map describing every convoy still spanning its
  /// right boundary; when nothing crossed into the shard, that map IS the
  /// global fold state at the seam and the stitcher adopts it wholesale
  /// instead of replaying the shard's windows.
  StartMap TakeActive() { return std::move(active_); }
  void SetActive(StartMap active) { active_ = std::move(active); }

 private:
  int m_;
  StartMap active_;
};

/// Resumable tick-by-tick extension of one convoy (Algorithm 3 and its
/// mirror — the inner loop of ExtendRight / ExtendLeft). `dir` = +1 walks
/// from seed.end toward larger ticks, -1 from seed.start toward smaller
/// ticks. Advance() consumes ticks up to a bound and may be called again
/// with a larger bound as more final ticks become available (the online
/// miner suspends right-walks at the ingest frontier and resumes them per
/// appended tick). Branches whose objects stop clustering together are
/// appended to `*completed` as finished convoys; Flush() closes the
/// surviving branches at the dataset boundary.
class ConvoyExtensionWalk {
 public:
  ConvoyExtensionWalk(const Convoy& seed, int dir);

  bool done() const { return frontier_.empty(); }
  /// The next tick Advance() will probe.
  Timestamp next_tick() const { return next_t_; }
  size_t num_branches() const { return frontier_.size(); }

  /// Probes ticks from next_tick() through `upto` (inclusive, in walk
  /// direction), stopping early once every branch has died.
  Status Advance(Store* store, const MiningParams& params, Timestamp upto,
                 std::vector<Convoy>* completed,
                 SnapshotScratch* scratch = nullptr);

  /// Closes every surviving branch at `limit` (the dataset boundary); the
  /// walk is done() afterwards.
  void Flush(Timestamp limit, std::vector<Convoy>* completed);

 private:
  int dir_;
  Timestamp other_side_;  ///< fixed boundary on the non-walking side
  Timestamp next_t_;
  std::vector<ObjectSet> frontier_;  ///< live branches, sorted + unique
};

/// Algorithm 3 and its mirror: extends each convoy tick-by-tick until its
/// objects stop clustering together; splits continue as smaller convoys.
Result<std::vector<Convoy>> ExtendRight(Store* store,
                                        const MiningParams& params,
                                        std::vector<Convoy> convoys,
                                        Timestamp dataset_end);
Result<std::vector<Convoy>> ExtendLeft(Store* store, const MiningParams& params,
                                       std::vector<Convoy> convoys,
                                       Timestamp dataset_start);

}  // namespace k2

#endif  // K2_CORE_K2HOP_H_
