// Shared infrastructure for the paper-reproduction benchmarks: the three
// standard workloads (DESIGN.md substitution table), store construction,
// timed mining runs, and paper-style table printing.
//
// Every bench binary prints the rows/series of one table or figure of the
// paper. Dataset sizes default to laptop scale; set K2_BENCH_SCALE to grow
// them (e.g. K2_BENCH_SCALE=4 quadruples object counts).
#ifndef K2_BENCH_HARNESS_H_
#define K2_BENCH_HARNESS_H_

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/vcoda.h"
#include "core/k2hop.h"
#include "gen/brinkhoff.h"
#include "model/dataset.h"
#include "storage/store.h"

namespace k2::bench {

/// Parses the shared bench CLI flags; call first in main(). Supported:
///   --json <path>   write every timed mining run as a JSON record
///                   ({bench, miner, store, params, wall_ms, convoys,
///                   io_stats}) to <path> (a JSON array) at process exit.
/// The bench name in the records is argv[0]'s basename.
void ParseArgs(int argc, char** argv);

/// Global size multiplier from K2_BENCH_SCALE (default 1.0).
double ScaleFactor();

/// The paper's three workloads at bench scale; generated once per process
/// and cached as binary files under /tmp/k2hop_bench across binaries.
const Dataset& Trucks();
const Dataset& TDrive();
const Dataset& Brinkhoff();
/// Smaller Brinkhoff sibling (~1/4 the points) for the Fig. 8l size pair.
const Dataset& BrinkhoffSmall();

/// Regenerates the Brinkhoff network to report its properties (Table 4).
BrinkhoffStats BrinkhoffProperties();

/// Builds and bulk-loads a store; disk engines live under /tmp/k2hop_bench.
std::unique_ptr<Store> BuildStore(StoreKind kind, const Dataset& data,
                                  const std::string& tag);

/// One timed mining run.
struct MineOutcome {
  double seconds = 0.0;
  size_t convoys = 0;
  bool dnf = false;       ///< did not finish (models the paper's crashes)
  std::string note;       ///< e.g. "mem-budget" for a modelled OOM
};

MineOutcome RunK2(Store* store, const MiningParams& params,
                  K2HopStats* stats = nullptr,
                  const K2HopOptions& options = {});

/// Escapes `s` for embedding inside a JSON string literal: backslash,
/// double quote, and control characters. Every string the --json sink
/// writes goes through this — a quoted or backslashed path in argv[0] or a
/// store name must not corrupt the snapshot file.
std::string JsonEscape(const std::string& s);

/// Typed extra fields for RecordMiningRun. Values are rendered as JSON
/// numbers (non-finite mapped to null) or escaped strings, so no
/// caller-assembled JSON is ever spliced into the record verbatim.
class JsonFields {
 public:
  JsonFields& Num(const std::string& key, double value);
  JsonFields& Int(const std::string& key, uint64_t value);
  JsonFields& Str(const std::string& key, const std::string& value);

  bool empty() const { return json_.empty(); }
  /// ",\"key\":value..." — splices after the record's fixed fields.
  const std::string& json() const { return json_; }

 private:
  std::string json_;
};

/// Appends one mining-run record to the --json sink (no-op without --json).
void RecordMiningRun(const std::string& miner, const Store& store,
                     const MiningParams& params, double seconds,
                     size_t convoys, const IoStats& io,
                     const JsonFields& extra = {});

/// Store-less variant for rows that are not mining runs (e.g. the kernel
/// microbenches): `store_name` fills the record's store key directly. Keys
/// must be machine-independent — bench_compare.py fails on baseline rows
/// missing from a fresh snapshot, so never key a row by a hardware-derived
/// value (put those in `extra` instead).
void RecordBenchRow(const std::string& miner, const std::string& store_name,
                    const MiningParams& params, double seconds,
                    size_t convoys, const IoStats& io,
                    const JsonFields& extra = {});
MineOutcome RunVcoda(Store* store, const MiningParams& params, bool corrected,
                     VcodaStats* stats = nullptr);
MineOutcome RunSpare(Store* store, const MiningParams& params, int workers);
MineOutcome RunDcm(Store* store, const MiningParams& params, int partitions,
                   int workers);

/// Models the paper's 6 GiB JVM heap: VCoDA materializes every candidate of
/// every timestamp, so beyond a row budget the paper's run crashed with OOM
/// (Sec. 6.3.1). Row budget via K2_VCODA_ROW_BUDGET (default 1.5 M).
bool VcodaExceedsMemoryBudget(const Dataset& data);

/// min/max/mean/median of a gain series (the bands of Figs. 7a/7b).
struct GainBand {
  double min = 0.0, max = 0.0, mean = 0.0, median = 0.0;
};
GainBand Band(std::vector<double> gains);

/// Fixed-width aligned text table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os = std::cout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Shorthand numeric formatting ("12.3", "0.004", "DNF").
std::string Fmt(double v, int precision = 3);

/// Prints the standard bench banner (dataset shapes, scale factor).
void PrintBanner(const std::string& title);

}  // namespace k2::bench

#endif  // K2_BENCH_HARNESS_H_
