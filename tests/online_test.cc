// Unit tests for the online/streaming k/2-hop miner: the incremental merge
// and extension-walk building blocks, the append lifecycle, eager closed
// emission vs. open convoys, and small streaming-vs-batch equivalences
// (the heavy randomized equivalence lives in online_differential_test.cc).
#include <gtest/gtest.h>

#include "core/k2hop.h"
#include "core/online.h"
#include "gen/synthetic.h"
#include "storage/lsm_store.h"
#include "storage/memory_store.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::C;
using ::k2::testing::kGone;
using ::k2::testing::MakeDataset;
using ::k2::testing::MakeMemStore;
using ::k2::testing::MakeTracks;
using ::k2::testing::ScratchDir;
using ::k2::testing::Str;


/// Streams `data` tick by tick into a fresh miner over `store`.
Status Stream(const Dataset& data, OnlineK2HopMiner* miner) {
  for (Timestamp t : data.timestamps()) {
    K2_RETURN_NOT_OK(miner->AppendTick(t, SnapshotPoints(data, t)));
  }
  return Status::OK();
}

std::vector<Convoy> BatchMine(const Dataset& data, const MiningParams& params,
                              const K2HopOptions& options = {}) {
  auto store = MakeMemStore(data);
  auto result = MineK2Hop(store.get(), params, options);
  K2_CHECK(result.ok());
  return result.MoveValue();
}

// ---------------------------------------------------------------------------
// SpanningConvoyMerger — incremental merge equals the batch fold
// ---------------------------------------------------------------------------

TEST(SpanningConvoyMergerTest, IncrementalEqualsBatchOnPaperTable3) {
  const std::vector<Timestamp> benchmarks{0, 4, 8, 12, 16};
  const std::vector<std::vector<ObjectSet>> spanning = {
      {ObjectSet::Of({1, 2, 3, 4}), ObjectSet::Of({5, 6, 7, 8}),
       ObjectSet::Of({9, 10, 11})},
      {ObjectSet::Of({1, 2, 3, 4}), ObjectSet::Of({5, 6}),
       ObjectSet::Of({7, 8})},
      {ObjectSet::Of({1, 2, 5, 6}), ObjectSet::Of({3, 4, 7, 8}),
       ObjectSet::Of({9, 10, 11})},
      {ObjectSet::Of({1, 2}), ObjectSet::Of({3, 4, 7, 8}),
       ObjectSet::Of({5, 6})},
  };
  const std::vector<Convoy> batch =
      MergeSpanningConvoys(spanning, benchmarks, 2);

  SpanningConvoyMerger merger(2);
  std::vector<Convoy> died;
  for (size_t w = 0; w < spanning.size(); ++w) {
    merger.AddWindow(benchmarks[w], spanning[w], &died);
  }
  merger.Finish(benchmarks.back(), &died);
  EXPECT_SAME_CONVOYS(died, batch);
}

TEST(SpanningConvoyMergerTest, DeathSurfacesAtItsWindow) {
  SpanningConvoyMerger merger(2);
  std::vector<Convoy> died;
  merger.AddWindow(0, {ObjectSet::Of({1, 2})}, &died);
  EXPECT_TRUE(died.empty());
  merger.AddWindow(4, {}, &died);  // empty window kills the active convoy
  ASSERT_EQ(died.size(), 1u);
  EXPECT_EQ(died[0], C({1, 2}, 0, 4));
  died.clear();
  merger.Finish(8, &died);
  EXPECT_TRUE(died.empty());
}

// ---------------------------------------------------------------------------
// ConvoyExtensionWalk — suspended/resumed walks equal one-shot extension
// ---------------------------------------------------------------------------

TEST(ConvoyExtensionWalkTest, ResumedAdvanceEqualsOneShotExtendRight) {
  // {0,1,2} together t=0..3; {0,1} continue through t=5; all apart after.
  auto store = MakeMemStore(MakeTracks({{0, 0, 0, 0, 0, 0, 70, 70},
                                        {0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 99, 99},
                                        {1.0, 1.0, 1.0, 1.0, 44, 44, 44, 44}}));
  const MiningParams params{2, 2, 1.0};
  const Convoy seed = C({0, 1, 2}, 0, 3);

  auto batch = ExtendRight(store.get(), params, {seed}, 7);
  ASSERT_TRUE(batch.ok());

  std::vector<Convoy> completed;
  ConvoyExtensionWalk walk(seed, +1);
  for (Timestamp upto = 4; upto <= 7; ++upto) {  // one tick at a time
    ASSERT_TRUE(
        walk.Advance(store.get(), params, upto, &completed, nullptr).ok());
  }
  walk.Flush(7, &completed);
  MaximalConvoySet set;
  for (Convoy& c : completed) set.Insert(std::move(c));
  EXPECT_SAME_CONVOYS(set.TakeSorted(), batch.value());
}

TEST(ConvoyExtensionWalkTest, SuspendsAtTheBoundAndReportsNextTick) {
  auto store = MakeMemStore(
      MakeTracks({std::vector<double>(10, 0.0), std::vector<double>(10, 0.5)}));
  ConvoyExtensionWalk walk(C({0, 1}, 0, 2), +1);
  std::vector<Convoy> completed;
  ASSERT_TRUE(
      walk.Advance(store.get(), {2, 2, 1.0}, 5, &completed, nullptr).ok());
  EXPECT_FALSE(walk.done());
  EXPECT_EQ(walk.next_tick(), 6);
  EXPECT_TRUE(completed.empty());
  EXPECT_EQ(walk.num_branches(), 1u);
}

// ---------------------------------------------------------------------------
// Append lifecycle
// ---------------------------------------------------------------------------

TEST(OnlineK2HopTest, RejectsOutOfOrderAppends) {
  MemoryStore store;
  OnlineK2HopMiner miner(&store, {2, 4, 1.0});
  ASSERT_TRUE(miner.AppendTick(5, {{1, 0, 0}, {2, 0.5, 0}}).ok());
  auto bad = miner.AppendTick(5, {{1, 0, 0}});
  EXPECT_EQ(bad.code(), StatusCode::kInvalid);
  bad = miner.AppendTick(3, {{1, 0, 0}});
  EXPECT_EQ(bad.code(), StatusCode::kInvalid);
  // The miner stays usable after a rejected (not-applied) append.
  EXPECT_TRUE(miner.AppendTick(6, {{1, 0, 0}, {2, 0.5, 0}}).ok());
}

TEST(OnlineK2HopTest, RejectsAppendAfterFinalizeAndIsIdempotent) {
  MemoryStore store;
  OnlineK2HopMiner miner(&store, {2, 2, 1.0});
  ASSERT_TRUE(miner.AppendTick(0, {{1, 0, 0}, {2, 0.5, 0}}).ok());
  ASSERT_TRUE(miner.AppendTick(1, {{1, 0, 0}, {2, 0.5, 0}}).ok());
  auto first = miner.Finalize();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(miner.finalized());
  EXPECT_EQ(miner.AppendTick(2, {{1, 0, 0}}).code(), StatusCode::kInvalid);
  auto second = miner.Finalize();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());
}

TEST(OnlineK2HopTest, RejectsNonEmptyStoreAndInvalidParams) {
  auto loaded = MakeMemStore(MakeTracks({{0, 0}, {1, 1}}));
  OnlineK2HopMiner miner(loaded.get(), {2, 2, 1.0});
  EXPECT_EQ(miner.AppendTick(9, {{1, 0, 0}}).code(), StatusCode::kInvalid);

  MemoryStore empty;
  OnlineK2HopMiner bad_params(&empty, {1, 2, 1.0});
  EXPECT_EQ(bad_params.AppendTick(0, {{1, 0, 0}}).code(),
            StatusCode::kInvalid);
  EXPECT_FALSE(bad_params.Finalize().ok());
}

TEST(OnlineK2HopTest, EmptyTickIsANoop) {
  MemoryStore store;
  OnlineK2HopMiner miner(&store, {2, 2, 1.0});
  ASSERT_TRUE(miner.AppendTick(0, {{1, 0, 0}, {2, 0.5, 0}}).ok());
  ASSERT_TRUE(miner.AppendTick(1, {}).ok());
  EXPECT_EQ(miner.frontier(), 0);  // an empty tick is not part of the data
  EXPECT_EQ(miner.stats().empty_ticks, 1u);
  ASSERT_TRUE(miner.AppendTick(1, {{1, 0, 0}, {2, 0.5, 0}}).ok());
  auto result = miner.Finalize();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0], C({1, 2}, 0, 1));
}

TEST(OnlineK2HopTest, EmptyStreamAndShortRangeYieldNothing) {
  MemoryStore store;
  OnlineK2HopMiner miner(&store, {2, 4, 1.0});
  auto empty = miner.Finalize();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());

  MemoryStore store2;
  OnlineK2HopMiner short_range(&store2, {2, 4, 1.0});
  ASSERT_TRUE(short_range.AppendTick(0, {{1, 0, 0}, {2, 0.5, 0}}).ok());
  ASSERT_TRUE(short_range.AppendTick(1, {{1, 0, 0}, {2, 0.5, 0}}).ok());
  auto result = short_range.Finalize();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());  // range length 2 < k = 4
}

// ---------------------------------------------------------------------------
// Streaming equals batch
// ---------------------------------------------------------------------------

TEST(OnlineK2HopTest, MatchesBatchOnSimpleTracks) {
  // A convoy that ends mid-stream, one alive to the end, and noise.
  const Dataset data = MakeTracks({
      {0, 0, 0, 0, 0, 0, 80, 80, 80, 80, 80, 80},       // with 1 until t=5
      {0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 7, 7, 7, 7, 7, 7},  // with 0, then 2
      {7.5, 7.5, 7.5, 7.5, 7.5, 7.5, 7.5, 7.5, 7.5, 7.5, 7.5, 7.5},
      {300, 412, 250, 999, 640, 111, 222, 333, 444, 555, 666, 777},
  });
  const MiningParams params{2, 4, 1.0};
  MemoryStore store;
  OnlineK2HopMiner miner(&store, params);
  ASSERT_TRUE(Stream(data, &miner).ok());
  auto streamed = miner.Finalize();
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(Str(streamed.value()), Str(BatchMine(data, params)));
  EXPECT_GT(miner.stats().open_convoys, 0u);  // {1,2} is alive at the end
}

TEST(OnlineK2HopTest, MatchesBatchWithTickGaps) {
  // Ticks 0..4 and 9..14 carry data; 5..8 are a gap.
  DatasetBuilder builder;
  for (Timestamp t = 0; t <= 14; ++t) {
    if (t > 4 && t < 9) continue;
    builder.Add(t, 1, 0.0, 0.0);
    builder.Add(t, 2, 0.5, 0.0);
    builder.Add(t, 3, 400.0 + 31.0 * t, 0.0);
  }
  const Dataset data = builder.Build();
  const MiningParams params{2, 3, 1.0};
  MemoryStore store;
  OnlineK2HopMiner miner(&store, params);
  ASSERT_TRUE(Stream(data, &miner).ok());
  auto streamed = miner.Finalize();
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(Str(streamed.value()), Str(BatchMine(data, params)));
}

TEST(OnlineK2HopTest, MatchesBatchWhenLengthIsNotAMultipleOfHop) {
  // k = 6 -> hop 3; 14 ticks (0..13) leave a 1-tick tail after the last
  // benchmark at 12.
  const Dataset data = MakeTracks({std::vector<double>(14, 0.0),
                                   std::vector<double>(14, 0.5),
                                   std::vector<double>(14, 5.0)});
  const MiningParams params{2, 6, 1.0};
  MemoryStore store;
  OnlineK2HopMiner miner(&store, params);
  ASSERT_TRUE(Stream(data, &miner).ok());
  auto streamed = miner.Finalize();
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(Str(streamed.value()), Str(BatchMine(data, params)));
}

TEST(OnlineK2HopTest, MatchesBatchOnLsmStoreWithIngestFlushes) {
  RandomWalkSpec spec;
  spec.num_objects = 12;
  spec.num_ticks = 24;
  spec.area = 50.0;
  spec.step = 6.0;
  spec.seed = 1234;
  const Dataset data = GenerateRandomWalk(spec);
  const MiningParams params{2, 5, 9.0};

  // Tiny memtable so appends exercise flush + compaction mid-stream.
  LsmStoreOptions options;
  options.memtable_limit = 64;
  options.tier_fanout = 2;
  LsmStore store(ScratchDir("online_lsm") + "/lsm", options);
  OnlineK2HopMiner miner(&store, params);
  ASSERT_TRUE(Stream(data, &miner).ok());
  EXPECT_GT(store.num_sstables(), 0u);
  auto streamed = miner.Finalize();
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(Str(streamed.value()), Str(BatchMine(data, params)));
}

TEST(OnlineK2HopTest, EagerOffMatchesEagerOn) {
  RandomWalkSpec spec;
  spec.num_objects = 10;
  spec.num_ticks = 20;
  spec.area = 40.0;
  spec.step = 5.0;
  spec.seed = 77;
  const Dataset data = GenerateRandomWalk(spec);
  const MiningParams params{2, 4, 8.0};

  std::vector<Convoy> results[2];
  for (bool eager : {false, true}) {
    MemoryStore store;
    OnlineK2HopOptions options;
    options.eager = eager;
    OnlineK2HopMiner miner(&store, params, options);
    ASSERT_TRUE(Stream(data, &miner).ok());
    auto result = miner.Finalize();
    ASSERT_TRUE(result.ok());
    results[eager ? 1 : 0] = result.MoveValue();
    if (!eager) {
      EXPECT_TRUE(miner.closed_convoys().empty());
    }
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(OnlineK2HopTest, AblationOptionsMatchBatch) {
  RandomWalkSpec spec;
  spec.num_objects = 9;
  spec.num_ticks = 18;
  spec.area = 45.0;
  spec.step = 5.5;
  spec.seed = 402;
  const Dataset data = GenerateRandomWalk(spec);
  const MiningParams params{2, 4, 9.0};

  struct Case {
    bool hwmt_binary_order;
    bool candidate_pruning;
    bool validate;
  };
  for (const Case& c : {Case{false, true, true}, Case{true, false, true},
                        Case{true, true, false}}) {
    K2HopOptions batch_options;
    batch_options.hwmt_binary_order = c.hwmt_binary_order;
    batch_options.candidate_pruning = c.candidate_pruning;
    batch_options.validate = c.validate;

    OnlineK2HopOptions online_options;
    online_options.hwmt_binary_order = c.hwmt_binary_order;
    online_options.candidate_pruning = c.candidate_pruning;
    online_options.validate = c.validate;

    MemoryStore store;
    OnlineK2HopMiner miner(&store, params, online_options);
    ASSERT_TRUE(Stream(data, &miner).ok());
    auto streamed = miner.Finalize();
    ASSERT_TRUE(streamed.ok());
    EXPECT_EQ(Str(streamed.value()),
              Str(BatchMine(data, params, batch_options)))
        << "binary=" << c.hwmt_binary_order
        << " pruning=" << c.candidate_pruning << " validate=" << c.validate;
  }
}

// ---------------------------------------------------------------------------
// Eager closed emission and stats
// ---------------------------------------------------------------------------

TEST(OnlineK2HopTest, EmitsClosedConvoyBeforeFinalize) {
  // {1,2} together ticks 0..7, far apart afterwards; plenty of stream left
  // after the convoy dies so its right walk completes before the end.
  DatasetBuilder builder;
  for (Timestamp t = 0; t <= 19; ++t) {
    builder.Add(t, 1, t <= 7 ? 0.0 : 500.0 + 20.0 * t, 0.0);
    builder.Add(t, 2, t <= 7 ? 0.5 : 900.0 - 20.0 * t, 0.0);
  }
  const Dataset data = builder.Build();
  const MiningParams params{2, 3, 1.0};

  MemoryStore store;
  std::vector<Convoy> callback_seen;
  OnlineK2HopOptions options;
  options.on_closed = [&](const Convoy& v) { callback_seen.push_back(v); };
  OnlineK2HopMiner miner(&store, params, options);
  ASSERT_TRUE(Stream(data, &miner).ok());

  const Convoy expected = C({1, 2}, 0, 7);
  ASSERT_EQ(miner.closed_convoys().size(), 1u);
  EXPECT_EQ(miner.closed_convoys()[0], expected);
  EXPECT_EQ(callback_seen, miner.closed_convoys());
  EXPECT_EQ(miner.stats().closed_convoys, 1u);

  auto result = miner.Finalize();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0], expected);
  EXPECT_EQ(miner.stats().open_convoys, 0u);
}

TEST(OnlineK2HopTest, StatsAreFilled) {
  std::vector<std::vector<double>> tracks = {std::vector<double>(12, 0.0),
                                             std::vector<double>(12, 0.5)};
  for (int n = 0; n < 6; ++n) {
    std::vector<double> noise;
    for (int t = 0; t < 12; ++t) noise.push_back(500.0 + 97.0 * n + 13.0 * t);
    tracks.push_back(noise);
  }
  const Dataset data = MakeTracks(tracks);
  const MiningParams params{2, 6, 1.0};

  MemoryStore store;
  OnlineK2HopMiner miner(&store, params);
  ASSERT_TRUE(Stream(data, &miner).ok());
  auto result = miner.Finalize();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);

  const OnlineK2HopStats& stats = miner.stats();
  EXPECT_EQ(stats.ticks_ingested, 12u);
  EXPECT_EQ(stats.points_ingested, data.num_points());
  EXPECT_EQ(stats.total_points, data.num_points());
  EXPECT_EQ(stats.benchmark_points, 4u);  // ticks 0,3,6,9 with k=6
  EXPECT_EQ(stats.hop_windows, 3u);
  EXPECT_GT(stats.candidate_clusters, 0u);
  EXPECT_GT(stats.merged_convoys, 0u);
  EXPECT_EQ(stats.append_latency.count(), 12u);
  EXPECT_GT(stats.append_latency.total(), 0.0);
  EXPECT_GT(stats.points_processed(), 0u);
  EXPECT_GT(stats.pruning_ratio(), 0.0);  // noise objects were never re-read
  EXPECT_GT(stats.phases.Get("benchmark"), 0.0);
  EXPECT_FALSE(stats.DebugString().empty());

  // Batch agreement on the same data, for good measure.
  EXPECT_EQ(Str(result.value()), Str(BatchMine(data, params)));
}

}  // namespace
}  // namespace k2
