// Composite clustered key (t, oid) packed into one order-preserving uint64,
// the key layout shared by the B+-tree and LSM engines (paper Sec. 5.2:
// "we create a composite key (t,oid) ... the data is sorted by keys").
#ifndef K2_STORAGE_KEY_H_
#define K2_STORAGE_KEY_H_

#include <cstdint>
#include <limits>

#include "common/types.h"

namespace k2 {

/// Packs (t, oid); the sign bit of t is flipped so that unsigned comparison
/// of packed keys matches signed comparison of timestamps.
inline uint64_t MakeKey(Timestamp t, ObjectId oid) {
  const uint32_t biased_t = static_cast<uint32_t>(t) ^ 0x80000000u;
  return (static_cast<uint64_t>(biased_t) << 32) | oid;
}

inline Timestamp KeyTime(uint64_t key) {
  return static_cast<Timestamp>(static_cast<uint32_t>(key >> 32) ^
                                0x80000000u);
}

inline ObjectId KeyOid(uint64_t key) {
  return static_cast<ObjectId>(key & 0xffffffffu);
}

/// Smallest and largest keys of tick `t`: the range scanned by
/// ScanTimestamp ("from (t,0) to (t,max(oid))").
inline uint64_t MinKeyOf(Timestamp t) { return MakeKey(t, 0); }
inline uint64_t MaxKeyOf(Timestamp t) {
  return MakeKey(t, std::numeric_limits<ObjectId>::max());
}

}  // namespace k2

#endif  // K2_STORAGE_KEY_H_
