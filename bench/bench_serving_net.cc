// Network-serving benchmark: stands up a real in-process k2_server (epoll +
// SO_REUSEPORT workers), streams the Trucks workload through kIngest over
// one connection, then measures the wire query path with 64 concurrent
// client connections:
//
//  * latency phase — every connection issues blocking round-trip queries
//    (object/window/region/conjunction/topk mix); reports p50/p99/p999 of
//    the per-request round-trip time, the numbers the drift gate watches;
//  * saturation phase — every connection pipelines batches of requests
//    (depth 64) as fast as the server answers, reporting aggregate
//    queries/sec at full load.
//
// Records are keyed machine-independently (serve-net-lat@c64 /
// serve-net-sat@c64 — the connection count is fixed, never derived from
// hardware_concurrency).
#include "bench/harness.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "serve/net/client.h"
#include "serve/net/server.h"
#include "serve/query.h"

using namespace k2;
using namespace k2::bench;

namespace {

constexpr int kConnections = 64;   ///< part of the record key, keep fixed
constexpr int kPipelineDepth = 64;
constexpr int kLatencyRoundsPerConn = 300;
constexpr int kSaturationBatchesPerConn = 40;

struct WireMix {
  std::vector<ObjectId> oids;
  std::vector<TimeRange> windows;
  std::vector<Rect> rects;
  std::vector<ConvoyQuery> conjunctions;
};

WireMix MakeWireMix(const Dataset& data, size_t per_type) {
  WireMix mix;
  Rng rng(777);
  std::vector<ObjectId> all_oids;
  for (const PointRecord& rec : data.records()) all_oids.push_back(rec.oid);
  std::sort(all_oids.begin(), all_oids.end());
  all_oids.erase(std::unique(all_oids.begin(), all_oids.end()),
                 all_oids.end());
  Rect box;
  box.min_x = box.max_x = data.records()[0].x;
  box.min_y = box.max_y = data.records()[0].y;
  for (const PointRecord& rec : data.records()) {
    box.min_x = std::min(box.min_x, rec.x);
    box.max_x = std::max(box.max_x, rec.x);
    box.min_y = std::min(box.min_y, rec.y);
    box.max_y = std::max(box.max_y, rec.y);
  }
  const TimeRange range = data.time_range();
  const auto span = static_cast<uint64_t>(range.length());
  for (size_t i = 0; i < per_type; ++i) {
    mix.oids.push_back(all_oids[rng.NextInt(all_oids.size())]);
    const auto a = static_cast<Timestamp>(range.start + rng.NextInt(span));
    mix.windows.push_back(
        {a, static_cast<Timestamp>(a + rng.NextInt(span / 4 + 1))});
    const double x0 = rng.Uniform(box.min_x, box.max_x);
    const double y0 = rng.Uniform(box.min_y, box.max_y);
    mix.rects.push_back(Rect{x0, y0,
                             x0 + rng.Uniform(0.0, (box.max_x - box.min_x) / 4),
                             y0 + rng.Uniform(0.0, (box.max_y - box.min_y) / 4)});
    ConvoyQuery q;
    q.object = mix.oids.back();
    q.time_window = mix.windows.back();
    if (i % 2 == 0) q.region = mix.rects.back();
    mix.conjunctions.push_back(q);
  }
  return mix;
}

/// The i-th request of a connection's deterministic query schedule.
ConvoyQuery MixQuery(const WireMix& mix, size_t i) {
  const size_t slot = i % mix.oids.size();
  ConvoyQuery q;
  switch (i % 4) {
    case 0:
      q.object = mix.oids[slot];
      break;
    case 1:
      q.time_window = mix.windows[slot];
      break;
    case 2:
      q.region = mix.rects[slot];
      break;
    default:
      q = mix.conjunctions[slot];
      break;
  }
  return q;
}

double Percentile(std::vector<double>* sorted_in_place, double p) {
  std::vector<double>& v = *sorted_in_place;
  if (v.empty()) return 0.0;
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(v.size())));
  if (rank == 0) rank = 1;
  if (rank > v.size()) rank = v.size();
  return v[rank - 1];
}

}  // namespace

int main(int argc, char** argv) {
  ParseArgs(argc, argv);
  PrintBanner("Serving over the wire: k2_server latency and saturation qps");
  const Dataset& data = Trucks();
  std::cout << data.DebugString() << "\n\n";
  // Smaller k than the in-process serving bench: the wire path has no
  // Finalize endpoint, so the catalog holds eagerly closed convoys — k/2
  // must fit inside the stream many times over for the catalog to fill.
  const MiningParams params{3, 30, 30.0};

  net::K2ServerOptions options;
  options.port = 0;
  options.params = params;
  options.publish_every = 64;
  auto started = net::K2Server::Start(options);
  K2_CHECK(started.ok());
  net::K2Server& server = *started.value();

  // --- ingest the whole stream over one connection ------------------------
  double ingest_seconds = 0.0;
  uint64_t catalog_convoys = 0;
  {
    auto feeder = net::K2Client::Connect({"127.0.0.1", server.port()});
    K2_CHECK(feeder.ok());
    Stopwatch sw;
    for (Timestamp t : data.timestamps()) {
      auto ack = feeder.value()->Ingest(t, SnapshotPoints(data, t));
      K2_CHECK(ack.ok());
    }
    auto published = feeder.value()->Publish();
    K2_CHECK(published.ok());
    ingest_seconds = sw.ElapsedSeconds();
    catalog_convoys = published.value().convoys;
  }
  std::cout << "ingested " << data.timestamps().size()
            << " ticks over the wire in " << Fmt(ingest_seconds)
            << "s; catalog holds " << catalog_convoys
            << " eagerly closed convoys\n\n";
  K2_CHECK(catalog_convoys > 0);

  const WireMix mix = MakeWireMix(data, 64);

  // --- latency phase: blocking round trips on 64 connections --------------
  std::vector<double> latencies_ms;
  double latency_seconds = 0.0;
  {
    Mutex mu;
    std::vector<std::thread> threads;
    std::atomic<bool> failed{false};
    Stopwatch sw;
    for (int c = 0; c < kConnections; ++c) {
      threads.emplace_back([&, c] {
        auto client = net::K2Client::Connect({"127.0.0.1", server.port()});
        if (!client.ok()) {
          failed.store(true);
          return;
        }
        std::vector<double> local;
        local.reserve(kLatencyRoundsPerConn);
        for (int i = 0; i < kLatencyRoundsPerConn; ++i) {
          const ConvoyQuery q =
              MixQuery(mix, static_cast<size_t>(c) * 7919 + i);
          Stopwatch rt;
          const bool ok = (i % 16 == 15)
                              ? client.value()
                                    ->TopK(q, ConvoyRank::kLongest, 10)
                                    .ok()
                              : client.value()->Query(q).ok();
          if (!ok) {
            failed.store(true);
            return;
          }
          local.push_back(rt.ElapsedMillis());
        }
        MutexLock lock(mu);
        latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
      });
    }
    for (std::thread& t : threads) t.join();
    latency_seconds = sw.ElapsedSeconds();
    K2_CHECK(!failed.load());
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double p50 = Percentile(&latencies_ms, 50);
  const double p99 = Percentile(&latencies_ms, 99);
  const double p999 = Percentile(&latencies_ms, 99.9);
  const double rt_qps =
      static_cast<double>(latencies_ms.size()) / std::max(latency_seconds, 1e-9);

  // --- saturation phase: pipelined batches on 64 connections --------------
  double saturation_seconds = 0.0;
  uint64_t saturation_replies = 0;
  {
    std::vector<std::thread> threads;
    std::atomic<bool> failed{false};
    std::atomic<uint64_t> replies{0};
    Stopwatch sw;
    for (int c = 0; c < kConnections; ++c) {
      threads.emplace_back([&, c] {
        auto client = net::K2Client::Connect({"127.0.0.1", server.port()});
        if (!client.ok()) {
          failed.store(true);
          return;
        }
        uint64_t done = 0;
        for (int b = 0; b < kSaturationBatchesPerConn; ++b) {
          for (int i = 0; i < kPipelineDepth; ++i) {
            client.value()->SendQuery(
                MixQuery(mix, static_cast<size_t>(c) * 104729 +
                                  static_cast<size_t>(b) * kPipelineDepth + i));
          }
          if (!client.value()->Flush().ok()) {
            failed.store(true);
            return;
          }
          for (int i = 0; i < kPipelineDepth; ++i) {
            if (!client.value()->Receive().ok()) {
              failed.store(true);
              return;
            }
            ++done;
          }
        }
        replies.fetch_add(done, std::memory_order_relaxed);
      });
    }
    for (std::thread& t : threads) t.join();
    saturation_seconds = sw.ElapsedSeconds();
    K2_CHECK(!failed.load());
    saturation_replies = replies.load();
  }
  const double sat_qps =
      static_cast<double>(saturation_replies) /
      std::max(saturation_seconds, 1e-9);

  server.RequestShutdown();
  server.Wait();
  K2_CHECK(server.serving_status().ok());

  TablePrinter table({"phase", "conns", "requests", "wall_s", "qps",
                      "p50_ms", "p99_ms", "p999_ms"});
  table.AddRow({"round-trip", std::to_string(kConnections),
                std::to_string(latencies_ms.size()), Fmt(latency_seconds),
                Fmt(rt_qps / 1e3, 0) + "k/s", Fmt(p50), Fmt(p99), Fmt(p999)});
  table.AddRow({"pipelined", std::to_string(kConnections),
                std::to_string(saturation_replies), Fmt(saturation_seconds),
                Fmt(sat_qps / 1e3, 0) + "k/s", "-", "-", "-"});
  table.Print();
  std::cout << "\nround-trip = blocking request/reply per connection "
               "(latency-bound); pipelined = depth-" << kPipelineDepth
            << " batches per connection (throughput-bound); all answers "
               "served lock-free off pinned snapshots by "
            << server.num_workers() << " epoll workers.\n";

  // Connection count lives in the record key: rows at different
  // concurrency levels must never collide under the drift gate's keying.
  JsonFields latency_extra;
  latency_extra.Int("connections", kConnections)
      .Int("catalog_convoys", catalog_convoys)
      .Num("qps_roundtrip", rt_qps)
      .Num("rt_ms_p50", p50)
      .Num("rt_ms_p99", p99)
      .Num("rt_ms_p999", p999);
  RecordBenchRow("serve-net-lat@c" + std::to_string(kConnections), "memory",
                 params, latency_seconds, catalog_convoys, IoStats{},
                 latency_extra);
  JsonFields saturation_extra;
  saturation_extra.Int("connections", kConnections)
      .Int("pipeline_depth", kPipelineDepth)
      .Int("catalog_convoys", catalog_convoys)
      .Num("qps_saturation", sat_qps);
  RecordBenchRow("serve-net-sat@c" + std::to_string(kConnections), "memory",
                 params, saturation_seconds, catalog_convoys, IoStats{},
                 saturation_extra);
  return 0;
}
