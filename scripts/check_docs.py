#!/usr/bin/env python3
"""Documentation cross-checks, run in CI.

1. Protocol coverage: every MessageType and WireError enumerator declared in
   src/serve/net/protocol.h must be mentioned by name in
   docs/WIRE_PROTOCOL.md, so the normative spec can never silently fall
   behind the implementation when a new message or error is added.

2. Link integrity: every relative markdown link in README.md and docs/*.md
   must resolve to a file that exists in the repo (external http(s) links
   and pure #anchors are skipped).

Exits non-zero with one line per violation.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
PROTOCOL_H = ROOT / "src" / "serve" / "net" / "protocol.h"
WIRE_DOC = ROOT / "docs" / "WIRE_PROTOCOL.md"


def enumerators(header_text: str, enum_name: str) -> list[str]:
    """Enumerator names of `enum class <enum_name>` in a C++ header."""
    m = re.search(
        r"enum\s+class\s+" + re.escape(enum_name) + r"\b[^{]*\{(.*?)\}",
        header_text,
        re.DOTALL,
    )
    if not m:
        sys.exit(f"error: enum class {enum_name} not found in {PROTOCOL_H}")
    names = re.findall(r"^\s*(k\w+)\s*=", m.group(1), re.MULTILINE)
    if not names:
        sys.exit(f"error: no enumerators parsed for {enum_name}")
    return names


def check_protocol_doc() -> list[str]:
    problems = []
    if not WIRE_DOC.exists():
        return [f"{WIRE_DOC.relative_to(ROOT)}: missing"]
    header = PROTOCOL_H.read_text()
    doc = WIRE_DOC.read_text()
    for enum_name in ("MessageType", "WireError"):
        for name in enumerators(header, enum_name):
            if name not in doc:
                problems.append(
                    f"docs/WIRE_PROTOCOL.md: {enum_name}::{name} is in "
                    f"protocol.h but never mentioned in the spec"
                )
    return problems


# [text](target) — excluding images is unnecessary; image targets must
# resolve too. Inline code spans are stripped first so examples like
# `[id](file)` in prose do not count.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
FENCE_RE = re.compile(r"^```.*?^```", re.DOTALL | re.MULTILINE)


def check_links() -> list[str]:
    problems = []
    docs = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))
    for doc in docs:
        if not doc.exists():
            continue
        text = FENCE_RE.sub("", doc.read_text())
        text = CODE_SPAN_RE.sub("", text)
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(ROOT)}: broken relative link "
                    f"({target})"
                )
    return problems


def main() -> int:
    problems = check_protocol_doc() + check_links()
    for p in problems:
        print(p, file=sys.stderr)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("check_docs: protocol spec covers every enumerator; all links ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
