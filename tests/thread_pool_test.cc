// Unit tests for the work-stealing ThreadPool: task completion, exception
// propagation, nested submission, and ParallelFor index coverage.
#include "common/thread_pool.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace k2 {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, AsyncDeliversValue) {
  ThreadPool pool(2);
  auto future = pool.Async([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, AsyncPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.Async(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, NestedSubmitCompletes) {
  ThreadPool pool(3);
  std::atomic<int> inner_done{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&pool, &inner_done] {
      pool.Submit([&inner_done] { inner_done.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(inner_done.load(), 20);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForSlotsAreWithinRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> slot_hits(pool.num_workers() + 1);
  pool.ParallelFor(200, [&](size_t slot, size_t) {
    ASSERT_LT(slot, slot_hits.size());
    slot_hits[slot].fetch_add(1);
  });
  int total = 0;
  for (auto& h : slot_hits) total += h.load();
  EXPECT_EQ(total, 200);
  // No assertion on slot 0's share: helpers may legally drain every index
  // before the calling thread claims one.
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstException) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  EXPECT_THROW(pool.ParallelFor(64,
                                [&](size_t i) {
                                  if (i == 13) {
                                    throw std::runtime_error("boom");
                                  }
                                  done.fetch_add(1);
                                }),
               std::runtime_error);
  // Every non-throwing index still ran: an exception skips no work.
  EXPECT_EQ(done.load(), 63);
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, SingleWorkerPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.ParallelFor(10, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace k2
