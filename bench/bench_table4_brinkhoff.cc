// Table 4 — properties of the generated Brinkhoff dataset, in the paper's
// vocabulary (ObjBegin, ObjTime, MaxTime, nodes, edges, data space, moving
// objects, points).
#include "bench/harness.h"

using namespace k2;
using namespace k2::bench;

int main() {
  PrintBanner("Table 4: Brinkhoff dataset properties");
  const BrinkhoffStats stats = BrinkhoffProperties();
  const Dataset& data = Brinkhoff();

  TablePrinter table({"Property", "Value"});
  table.AddRow({"MaxTime", std::to_string(stats.max_time)});
  table.AddRow({"number of nodes", std::to_string(stats.num_nodes)});
  table.AddRow({"number of edges", std::to_string(stats.num_edges)});
  table.AddRow({"data space width (m)", Fmt(stats.data_space_width, 0)});
  table.AddRow({"data space height (m)", Fmt(stats.data_space_height, 0)});
  table.AddRow({"moving objects", std::to_string(stats.moving_objects)});
  table.AddRow({"points", std::to_string(stats.points)});
  table.AddRow({"points (cached dataset)", std::to_string(data.num_points())});
  table.AddRow({"distinct ticks", std::to_string(data.timestamps().size())});
  table.Print();
  return 0;
}
