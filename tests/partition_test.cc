// Unit tests for the partitioned miner: shard planning over the benchmark
// grid, seam edge cases for the stitcher (convoys spanning a boundary,
// convoys shorter than the overlap margin, empty shards, more shards than
// ticks), and exact equality with batch MineK2Hop in every configuration.
#include <memory>

#include <gtest/gtest.h>

#include "core/partition.h"
#include "gen/synthetic.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::C;
using ::k2::testing::MakeMemStore;
using ::k2::testing::MakeTracks;
using ::k2::testing::Str;

std::vector<Convoy> BatchMine(Store* store, const MiningParams& params) {
  auto result = MineK2Hop(store, params);
  K2_CHECK(result.ok());
  return result.MoveValue();
}

/// Mines `store` partitioned with the given shard count and asserts exact
/// (byte-identical) equality with batch; returns the stats for inspection.
PartitionedK2HopStats ExpectMatchesBatch(Store* store,
                                         const MiningParams& params,
                                         int num_shards, int num_threads = 1) {
  const std::vector<Convoy> expected = BatchMine(store, params);
  PartitionedK2HopOptions options;
  options.num_shards = num_shards;
  options.num_threads = num_threads;
  PartitionedK2HopStats stats;
  auto mined = MinePartitionedK2Hop(store, params, options, &stats);
  EXPECT_TRUE(mined.ok()) << mined.status().ToString();
  EXPECT_EQ(mined.value(), expected)
      << "shards=" << num_shards << " threads=" << num_threads
      << "\npartitioned:\n"
      << Str(mined.value()) << "batch:\n"
      << Str(expected);
  return stats;
}

// ---------------------------------------------------------------------------
// PlanShards
// ---------------------------------------------------------------------------

TEST(PlanShardsTest, CoversAllWindowsContiguouslyWithSharedBoundaries) {
  // 9 benchmarks = 8 windows over ticks 0..40, hop 5.
  std::vector<Timestamp> benchmarks;
  for (Timestamp b = 0; b <= 40; b += 5) benchmarks.push_back(b);
  const std::vector<ShardPlan> plan = PlanShards(benchmarks, 3);
  ASSERT_EQ(plan.size(), 3u);
  // Near-equal split: 3 + 3 + 2 windows, remainder to the earlier shards.
  EXPECT_EQ(plan[0].num_windows, 3u);
  EXPECT_EQ(plan[1].num_windows, 3u);
  EXPECT_EQ(plan[2].num_windows, 2u);
  size_t next = 0;
  for (const ShardPlan& shard : plan) {
    EXPECT_EQ(shard.first_window, next);
    next += shard.num_windows;
    // Tick ranges are ⌊k/2⌋-aligned: both ends sit on the benchmark grid.
    EXPECT_EQ(shard.ticks.start, benchmarks[shard.first_window]);
    EXPECT_EQ(shard.ticks.end,
              benchmarks[shard.first_window + shard.num_windows]);
  }
  EXPECT_EQ(next, benchmarks.size() - 1);
  // The overlap margin: adjacent shards share exactly the boundary
  // benchmark tick.
  for (size_t i = 0; i + 1 < plan.size(); ++i) {
    EXPECT_EQ(plan[i].ticks.end, plan[i + 1].ticks.start);
  }
}

TEST(PlanShardsTest, ClampsToWindowCount) {
  const std::vector<Timestamp> benchmarks = {0, 5, 10};  // 2 windows
  const std::vector<ShardPlan> plan = PlanShards(benchmarks, 50);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].num_windows, 1u);
  EXPECT_EQ(plan[1].num_windows, 1u);
}

TEST(PlanShardsTest, DegenerateGrids) {
  EXPECT_TRUE(PlanShards({}, 4).empty());
  EXPECT_TRUE(PlanShards({7}, 4).empty());  // one benchmark, no window
  const std::vector<ShardPlan> one = PlanShards({0, 3}, 4);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].num_windows, 1u);
}

// ---------------------------------------------------------------------------
// Merger state transfer
// ---------------------------------------------------------------------------

TEST(SpanningConvoyMergerTest, ActiveStateRoundTripsAcrossInstances) {
  // Fold two windows in one merger vs. folding the first, moving the state
  // into a second merger, and folding the rest there: identical deaths.
  const std::vector<ObjectSet> w0 = {ObjectSet::Of({1, 2, 3})};
  const std::vector<ObjectSet> w1 = {ObjectSet::Of({1, 2})};
  const std::vector<ObjectSet> w2 = {ObjectSet::Of({9, 10})};

  std::vector<Convoy> expected;
  SpanningConvoyMerger whole(2);
  whole.AddWindow(0, w0, &expected);
  whole.AddWindow(5, w1, &expected);
  whole.AddWindow(10, w2, &expected);
  whole.Finish(15, &expected);

  std::vector<Convoy> stitched;
  SpanningConvoyMerger left(2);
  left.AddWindow(0, w0, &stitched);
  SpanningConvoyMerger right(2);
  right.SetActive(left.TakeActive());
  EXPECT_EQ(left.active_size(), 0u);
  right.AddWindow(5, w1, &stitched);
  right.AddWindow(10, w2, &stitched);
  right.Finish(15, &stitched);

  EXPECT_EQ(Str(stitched), Str(expected));
}

// ---------------------------------------------------------------------------
// Seam edge cases
// ---------------------------------------------------------------------------

TEST(PartitionSeamTest, ConvoyExactlySpanningAShardBoundary) {
  // Two objects together for all 20 ticks; k = 8 gives hop 4 and benchmark
  // grid 0,4,8,12,16 — with 2 shards the seam at tick 8 cuts the convoy in
  // the middle, so the stitch must carry it across and report the full
  // lifespan [0, 19].
  std::vector<std::vector<double>> tracks(3);
  for (int t = 0; t < 20; ++t) {
    tracks[0].push_back(t * 10.0);
    tracks[1].push_back(t * 10.0 + 0.5);
    tracks[2].push_back(1000.0 + t * 50.0);  // loner far away
  }
  auto store = MakeMemStore(MakeTracks(tracks));
  const MiningParams params{2, 8, 2.0};

  const PartitionedK2HopStats stats =
      ExpectMatchesBatch(store.get(), params, /*num_shards=*/2);
  EXPECT_EQ(stats.shards, 2u);
  EXPECT_EQ(stats.seams_crossed, 1u);   // the convoy spans the seam
  EXPECT_EQ(stats.stitch_replays, 1u);  // shard 2 had to be replayed

  auto mined = MinePartitionedK2Hop(store.get(), params,
                                    {.num_shards = 2, .num_threads = 1});
  ASSERT_TRUE(mined.ok());
  ASSERT_EQ(mined.value().size(), 1u);
  EXPECT_EQ(mined.value()[0], C({0, 1}, 0, 19));
}

TEST(PartitionSeamTest, ConvoyShorterThanTheOverlapMargin) {
  // A group together for only 3 ticks straddling the seam — shorter than
  // the ⌊k/2⌋ = 4 overlap margin and shorter than k, so it must appear in
  // neither result; the stitcher must not resurrect or extend it.
  std::vector<std::vector<double>> tracks(3);
  for (int t = 0; t < 17; ++t) {
    const bool together = t >= 7 && t <= 9;  // seam for k=8 sits at tick 8
    tracks[0].push_back(t * 10.0);
    tracks[1].push_back(together ? t * 10.0 + 0.5 : 500.0 + t * 40.0);
    tracks[2].push_back(together ? t * 10.0 + 1.0 : -900.0 - t * 40.0);
  }
  auto store = MakeMemStore(MakeTracks(tracks));
  const MiningParams params{2, 8, 2.0};

  const PartitionedK2HopStats stats =
      ExpectMatchesBatch(store.get(), params, /*num_shards=*/2);
  EXPECT_EQ(stats.shards, 2u);
  auto mined = MinePartitionedK2Hop(store.get(), params, {.num_shards = 2});
  ASSERT_TRUE(mined.ok());
  EXPECT_TRUE(mined.value().empty()) << Str(mined.value());
}

TEST(PartitionSeamTest, EmptyShardWithNoBenchmarkPoints) {
  // Ticks 12..23 carry no data at all: with k = 6 (hop 3) and 3 shards the
  // middle shard's benchmarks all cluster to nothing. The stitcher must
  // pass the dead zone through and keep the two outer convoys intact.
  std::vector<std::vector<double>> tracks(2);
  for (int t = 0; t < 36; ++t) {
    const bool gap = t >= 12 && t < 24;
    tracks[0].push_back(gap ? ::k2::testing::kGone : t * 1.0);
    tracks[1].push_back(gap ? ::k2::testing::kGone : t * 1.0 + 0.5);
  }
  auto store = MakeMemStore(MakeTracks(tracks));
  const MiningParams params{2, 6, 2.0};

  ExpectMatchesBatch(store.get(), params, /*num_shards=*/3);
  auto mined = MinePartitionedK2Hop(store.get(), params, {.num_shards = 3});
  ASSERT_TRUE(mined.ok());
  // Both sides of the gap survive as separate convoys.
  EXPECT_EQ(mined.value(), (std::vector<Convoy>{C({0, 1}, 0, 11),
                                                C({0, 1}, 24, 35)}))
      << Str(mined.value());
}

TEST(PartitionSeamTest, ShardCountLargerThanTickCount) {
  // 10 ticks, k = 4 → 5 windows; asking for 64 shards must clamp to one
  // window per shard and still reproduce batch exactly.
  std::vector<std::vector<double>> tracks(3);
  for (int t = 0; t < 10; ++t) {
    tracks[0].push_back(t * 5.0);
    tracks[1].push_back(t * 5.0 + 0.4);
    tracks[2].push_back(t < 5 ? t * 5.0 + 0.8 : 400.0);
  }
  auto store = MakeMemStore(MakeTracks(tracks));
  const MiningParams params{2, 4, 2.0};

  const PartitionedK2HopStats stats =
      ExpectMatchesBatch(store.get(), params, /*num_shards=*/64);
  EXPECT_EQ(stats.shards, stats.hop_windows);
  EXPECT_GT(stats.shards, 1u);
}

// ---------------------------------------------------------------------------
// Shard/thread-count determinism
// ---------------------------------------------------------------------------

TEST(PartitionTest, IdenticalForEveryShardAndThreadCount) {
  for (uint64_t seed : {5u, 21u}) {
    RandomWalkSpec spec;
    spec.num_objects = 18;
    spec.num_ticks = 30;
    spec.area = 30.0;
    spec.step = 4.0;
    spec.seed = seed;
    auto store = MakeMemStore(GenerateRandomWalk(spec));
    const MiningParams params{2, 5, 6.0};
    ASSERT_FALSE(BatchMine(store.get(), params).empty())
        << "weak test input, seed=" << seed;
    for (int shards : {1, 2, 3, 7}) {
      for (int threads : {1, 4}) {
        ExpectMatchesBatch(store.get(), params, shards, threads);
      }
    }
  }
}

TEST(PartitionTest, StatsAreFilled) {
  RandomWalkSpec spec;
  spec.num_objects = 16;
  spec.num_ticks = 24;
  spec.area = 25.0;
  spec.step = 3.0;
  spec.seed = 3;
  auto store = MakeMemStore(GenerateRandomWalk(spec));
  const MiningParams params{2, 6, 6.0};

  PartitionedK2HopStats stats;
  auto mined = MinePartitionedK2Hop(store.get(), params,
                                    {.num_shards = 3, .num_threads = 2},
                                    &stats);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(stats.shards, 3u);
  EXPECT_EQ(stats.seams, 2u);
  EXPECT_EQ(stats.shard_runs.size(), 3u);
  EXPECT_EQ(stats.adopted_folds + stats.stitch_replays, 3u);
  EXPECT_EQ(stats.hop_windows, stats.benchmark_points - 1);
  size_t shard_windows = 0;
  for (const ShardRunStats& run : stats.shard_runs) {
    shard_windows += run.pipeline.hop_windows;
    EXPECT_FALSE(run.ticks.empty());
  }
  EXPECT_EQ(shard_windows, stats.hop_windows);
  EXPECT_GT(stats.total_points, 0u);
  EXPECT_GT(stats.io.points_read(), 0u);  // all mining IO is visible
  EXPECT_GT(stats.phases.Get("shards"), 0.0);
}

TEST(PartitionTest, InvalidParamsRejected) {
  auto store = MakeMemStore(MakeTracks({{0.0, 1.0}}));
  EXPECT_FALSE(MinePartitionedK2Hop(store.get(), {1, 2, 1.0}).ok());
  EXPECT_FALSE(MinePartitionedK2Hop(store.get(), {2, 2, -1.0}).ok());
}

TEST(PartitionTest, ShortDatasetYieldsNothing) {
  auto store = MakeMemStore(MakeTracks({{0.0, 1.0}, {0.5, 1.5}}));
  auto mined = MinePartitionedK2Hop(store.get(), {2, 5, 2.0});
  ASSERT_TRUE(mined.ok());
  EXPECT_TRUE(mined.value().empty());
}

}  // namespace
}  // namespace k2
