// Small synthetic generators used by tests and micro-benches: independent
// random walks (no structure) and planted convoys (known ground truth).
#ifndef K2_GEN_SYNTHETIC_H_
#define K2_GEN_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "model/dataset.h"

namespace k2 {

struct RandomWalkSpec {
  int num_objects = 10;
  int num_ticks = 20;
  double area = 100.0;   // square side, metres
  double step = 5.0;     // max movement per tick
  uint64_t seed = 1;
};

/// Independent uniform random walks in a square; clusters and convoys occur
/// only by chance. This is the adversarial input for differential tests:
/// with a small area the space is dense and every edge case of the miners
/// (splits, merges, border points) is exercised.
Dataset GenerateRandomWalk(const RandomWalkSpec& spec);

struct PlantedGroup {
  int size = 3;              // objects in the group
  Timestamp start = 0;       // first tick the group is together
  Timestamp end = 0;         // last tick together (inclusive)
  double speed = 8.0;        // group leader speed per tick
};

struct PlantedConvoySpec {
  int num_noise_objects = 20;
  int num_ticks = 50;
  double area = 10000.0;     // large area => noise rarely forms convoys
  double noise_step = 50.0;
  double member_spacing = 1.0;  // distance of members from their leader
  std::vector<PlantedGroup> groups;
  uint64_t seed = 1;
};

/// Noise objects plus groups that travel together during [start, end] and
/// scatter to distant random positions outside that interval. Object ids:
/// group members first (group 0 gets ids 0..size-1, etc.), then noise.
Dataset GeneratePlantedConvoys(const PlantedConvoySpec& spec);

}  // namespace k2

#endif  // K2_GEN_SYNTHETIC_H_
