// Brute-force reference miners for differential testing: enumerate every
// object subset and every tick, check the convoy / FC-convoy property
// literally against the definitions (Defs. 3-8), and keep maximal results.
// Exponential in the object count — the universe is capped — but entirely
// definition-driven, with no shared code or shared assumptions with the
// production miners.
#ifndef K2_BASELINES_GOLD_H_
#define K2_BASELINES_GOLD_H_

#include <vector>

#include "common/convoy.h"
#include "common/types.h"
#include "model/dataset.h"

namespace k2 {

/// Hard cap on dataset object count accepted by the gold miners.
inline constexpr size_t kGoldMaxObjects = 22;

/// All maximal (partially connected) convoys with lifespan >= k: the
/// specification PCCD / SPARE / DCM must match.
std::vector<Convoy> GoldMaximalConvoys(const Dataset& dataset,
                                       const MiningParams& params);

/// All maximal fully connected convoys with lifespan >= k (Def. 8): the
/// specification k/2-hop and VCoDA* must match.
std::vector<Convoy> GoldFullyConnectedConvoys(const Dataset& dataset,
                                              const MiningParams& params);

}  // namespace k2

#endif  // K2_BASELINES_GOLD_H_
