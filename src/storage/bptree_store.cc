#include "storage/bptree_store.h"

#include "storage/key.h"

namespace k2 {

BPlusTreeStore::BPlusTreeStore(std::string path, size_t buffer_pool_pages)
    : tree_(std::move(path), buffer_pool_pages, &io_stats_) {}

Status BPlusTreeStore::BulkLoad(const Dataset& dataset) {
  K2_RETURN_NOT_OK(tree_.BuildFrom(dataset));
  timestamps_ = dataset.timestamps();
  time_range_ = dataset.time_range();
  return Status::OK();
}

Status BPlusTreeStore::ScanTimestamp(Timestamp t,
                                     std::vector<SnapshotPoint>* out) {
  out->clear();
  ++io_stats_.snapshot_scans;
  K2_RETURN_NOT_OK(tree_.ScanRange(
      MinKeyOf(t), MaxKeyOf(t), [&](uint64_t key, const BPTreeValue& v) {
        out->push_back(SnapshotPoint{KeyOid(key), v.x, v.y});
      }));
  io_stats_.scanned_points += out->size();
  return Status::OK();
}

Status BPlusTreeStore::GetPoints(Timestamp t, const ObjectSet& objects,
                                 std::vector<SnapshotPoint>* out) {
  out->clear();
  io_stats_.point_queries += objects.size();
  for (ObjectId oid : objects) {
    BPTreeValue v;
    bool found = false;
    K2_RETURN_NOT_OK(tree_.Get(MakeKey(t, oid), &v, &found));
    if (found) out->push_back(SnapshotPoint{oid, v.x, v.y});
  }
  io_stats_.point_hits += out->size();
  return Status::OK();
}

}  // namespace k2
