#include "storage/lsm/sstable.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define K2_SSTABLE_HAS_MMAP 1
#endif

#include "common/crc32c.h"
#include "storage/store.h"

namespace k2::lsm {

namespace {

// One on-disk entry: key + x + y, 24 bytes.
constexpr size_t kEntrySize = 24;
constexpr size_t kIndexEntrySize = 28;  // first_key + last_key + offset + count
// index_offset + bloom_offset + num_entries + meta_crc + version + magic.
constexpr size_t kFooterSize = 8 + 8 + 8 + 4 + 4 + 8;

void AppendRaw(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

}  // namespace

// ---------------------------------------------------------------------------
// SSTableBuilder
// ---------------------------------------------------------------------------

SSTableBuilder::SSTableBuilder(Env* env, std::string path)
    : env_(env), path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  auto file = env_->NewWritableFile(tmp_path_);
  if (!file.ok()) {
    deferred_error_ = file.status();
  } else {
    file_ = file.MoveValue();
  }
}

SSTableBuilder::SSTableBuilder(std::string path)
    : SSTableBuilder(Env::Default(), std::move(path)) {}

SSTableBuilder::~SSTableBuilder() {
  // Abandoned build (error or never Finished): drop the temporary file so
  // nothing half-written survives under any name. Best-effort.
  if (file_ != nullptr) {
    file_->Close();
    env_->RemoveFile(tmp_path_);
  }
}

void SSTableBuilder::Reserve(size_t expected_keys) {
  bloom_reserve_ = expected_keys;
  all_entries_.reserve(expected_keys);
}

Status SSTableBuilder::Add(uint64_t key, const LsmValue& value) {
  K2_RETURN_NOT_OK(deferred_error_);
  if (has_last_key_ && key <= last_key_) {
    return Status::Invalid("SSTable keys must be strictly increasing");
  }
  last_key_ = key;
  has_last_key_ = true;
  block_.emplace_back(key, value);
  all_entries_.emplace_back(key, value);
  ++num_entries_;
  if (block_.size() >= kBlockEntries) return FlushBlock();
  return Status::OK();
}

Status SSTableBuilder::FlushBlock() {
  if (block_.empty()) return Status::OK();
  IndexEntry entry;
  entry.first_key = block_.front().first;
  entry.last_key = block_.back().first;
  entry.offset = offset_;
  entry.count = static_cast<uint32_t>(block_.size());
  scratch_.clear();
  for (const auto& [key, value] : block_) {
    AppendRaw(&scratch_, &key, 8);
    AppendRaw(&scratch_, &value.x, 8);
    AppendRaw(&scratch_, &value.y, 8);
  }
  Status s = file_->Append(scratch_.data(), scratch_.size());
  if (!s.ok()) {
    deferred_error_ = s;
    return s;
  }
  offset_ += block_.size() * kEntrySize;
  index_.push_back(entry);
  block_.clear();
  return Status::OK();
}

Status SSTableBuilder::Finish() {
  K2_RETURN_NOT_OK(deferred_error_);
  K2_RETURN_NOT_OK(FlushBlock());

  // Metadata region (index + bloom), checksummed as one unit so a torn
  // write anywhere in it is detected by Open().
  const uint64_t index_offset = offset_;
  std::string meta;
  for (const IndexEntry& e : index_) {
    AppendRaw(&meta, &e.first_key, 8);
    AppendRaw(&meta, &e.last_key, 8);
    AppendRaw(&meta, &e.offset, 8);
    AppendRaw(&meta, &e.count, 4);
  }
  const uint64_t bloom_offset = index_offset + index_.size() * kIndexEntrySize;

  BloomFilter bloom(std::max<size_t>(bloom_reserve_, all_entries_.size()));
  for (const auto& [key, value] : all_entries_) bloom.Add(key);
  const uint32_t num_hashes = bloom.num_hashes_for_disk();
  const uint32_t num_words = static_cast<uint32_t>(bloom.words().size());
  AppendRaw(&meta, &num_hashes, 4);
  AppendRaw(&meta, &num_words, 4);
  AppendRaw(&meta, bloom.words().data(), num_words * 8);

  const uint32_t meta_crc = Crc32c(meta.data(), meta.size());
  AppendRaw(&meta, &index_offset, 8);
  AppendRaw(&meta, &bloom_offset, 8);
  AppendRaw(&meta, &num_entries_, 8);
  AppendRaw(&meta, &meta_crc, 4);
  AppendRaw(&meta, &kSstFormatVersion, 4);
  AppendRaw(&meta, &kSstMagic, 8);

  Status s = file_->Append(meta.data(), meta.size());
  if (s.ok()) s = file_->Sync();
  if (s.ok()) s = file_->Close();
  if (!s.ok()) {
    deferred_error_ = s;
    return s;  // dtor removes the tmp file
  }
  file_ = nullptr;
  // The commit point: until this rename lands, the table does not exist.
  s = env_->RenameFile(tmp_path_, path_);
  if (!s.ok()) {
    deferred_error_ = s;
    env_->RemoveFile(tmp_path_);
  }
  return s;
}

// ---------------------------------------------------------------------------
// SSTable (reader)
// ---------------------------------------------------------------------------

SSTable::~SSTable() {
#ifdef K2_SSTABLE_HAS_MMAP
  if (map_ != nullptr) {
    munmap(const_cast<char*>(map_), map_size_);
  }
#endif
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<SSTable>> SSTable::Open(const std::string& path,
                                               uint64_t seq, IoStats* stats) {
  std::unique_ptr<SSTable> table(new SSTable());
  table->path_ = path;
  table->seq_ = seq;
  table->stats_ = stats;
  // k2-lint: allow(lsm-io-through-env): read path — Env only shims
  // write-path IO for fault injection; reads go straight to libc + mmap.
  table->file_ = std::fopen(path.c_str(), "rb");
  if (table->file_ == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::FILE* f = table->file_;
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IOError("size seek failed on " + path);
  }
  const long end = std::ftell(f);
  if (end < 0) {
    return Status::IOError("size probe failed on " + path);
  }
  const uint64_t file_size = static_cast<uint64_t>(end);
  if (file_size < kFooterSize) {
    return Status::Invalid("truncated SSTable (no footer) in " + path);
  }

  if (std::fseek(f, -static_cast<long>(kFooterSize), SEEK_END) != 0) {
    return Status::IOError("footer seek failed on " + path);
  }
  uint64_t index_offset, bloom_offset, num_entries, magic;
  uint32_t meta_crc, version;
  if (std::fread(&index_offset, 8, 1, f) != 1 ||
      std::fread(&bloom_offset, 8, 1, f) != 1 ||
      std::fread(&num_entries, 8, 1, f) != 1 ||
      std::fread(&meta_crc, 4, 1, f) != 1 ||
      std::fread(&version, 4, 1, f) != 1 || std::fread(&magic, 8, 1, f) != 1) {
    return Status::IOError("footer read failed on " + path);
  }
  if (magic != kSstMagic) {
    return Status::Invalid("bad SSTable magic in " + path);
  }
  if (version != kSstFormatVersion) {
    return Status::Invalid("unsupported SSTable version " +
                           std::to_string(version) + " in " + path);
  }
  const uint64_t meta_end = file_size - kFooterSize;
  if (index_offset > bloom_offset || bloom_offset > meta_end ||
      (bloom_offset - index_offset) % kIndexEntrySize != 0 ||
      meta_end - bloom_offset < 8) {
    return Status::Invalid("SSTable footer offsets out of range in " + path);
  }

  // Read the whole metadata region and verify its checksum before trusting
  // a single field of it.
  const size_t meta_size = static_cast<size_t>(meta_end - index_offset);
  std::vector<char> meta(meta_size);
  if (std::fseek(f, static_cast<long>(index_offset), SEEK_SET) != 0) {
    return Status::IOError("index seek failed on " + path);
  }
  if (meta_size > 0 && std::fread(meta.data(), 1, meta_size, f) != meta_size) {
    return Status::IOError("index read failed on " + path);
  }
  if (Crc32c(meta.data(), meta.size()) != meta_crc) {
    return Status::Invalid("SSTable meta checksum mismatch in " + path);
  }

  table->num_entries_ = num_entries;
  const size_t num_blocks = (bloom_offset - index_offset) / kIndexEntrySize;
  table->index_.resize(num_blocks);
  const char* p = meta.data();
  uint64_t counted = 0;
  for (IndexEntry& e : table->index_) {
    std::memcpy(&e.first_key, p, 8);
    std::memcpy(&e.last_key, p + 8, 8);
    std::memcpy(&e.offset, p + 16, 8);
    std::memcpy(&e.count, p + 24, 4);
    p += kIndexEntrySize;
    if (e.offset + uint64_t{e.count} * kEntrySize > index_offset) {
      return Status::Invalid("SSTable block index out of range in " + path);
    }
    counted += e.count;
  }
  if (counted != num_entries) {
    return Status::Invalid("SSTable entry count mismatch in " + path);
  }

  uint32_t num_hashes, num_words;
  std::memcpy(&num_hashes, p, 4);
  std::memcpy(&num_words, p + 4, 4);
  p += 8;
  if (meta_end - bloom_offset != 8 + uint64_t{num_words} * 8) {
    return Status::Invalid("SSTable bloom size mismatch in " + path);
  }
  std::vector<uint64_t> words(num_words);
  if (num_words > 0) std::memcpy(words.data(), p, size_t{num_words} * 8);
  table->bloom_ = BloomFilter::FromWords(std::move(words), num_hashes);

  if (!table->index_.empty()) {
    table->min_key_ = table->index_.front().first_key;
    table->max_key_ = table->index_.back().last_key;
  }

#ifdef K2_SSTABLE_HAS_MMAP
  // Tables are immutable once built: map the whole file read-only so block
  // fetches are page-cache copies instead of fseek+fread syscall pairs. On
  // mapping failure the stdio handle stays as the fallback read path.
  if (file_size > 0) {
    void* map = mmap(nullptr, static_cast<size_t>(file_size), PROT_READ,
                     MAP_PRIVATE, fileno(f), 0);
    if (map != MAP_FAILED) {
      table->map_ = static_cast<const char*>(map);
      table->map_size_ = static_cast<size_t>(file_size);
    }
  }
#endif
  return table;
}

Result<const std::vector<SSTable::Entry>*> SSTable::GetBlock(size_t b) {
  if (CachedBlock* cb = FindCached(b)) {
    cb->last_used = ++cache_clock_;
    if (stats_ != nullptr) ++stats_->pages_cached;
    return &cb->entries;
  }
  return LoadBlock(b);
}

Result<const std::vector<SSTable::Entry>*> SSTable::LoadBlock(size_t b) {
  // Evict the least recently used slot (empty slots sort first).
  CachedBlock* victim = &cache_[0];
  for (CachedBlock& cb : cache_) {
    if (cb.last_used < victim->last_used) victim = &cb;
  }
  const IndexEntry& e = index_[b];
  victim->index = -1;  // invalid while being overwritten
  victim->entries.resize(e.count);
  // Entry mirrors the on-disk block byte-for-byte, so the block decodes
  // with a single copy straight into the entry array.
  static_assert(sizeof(Entry) == kEntrySize &&
                std::is_trivially_copyable_v<Entry>);
  const size_t nbytes = e.count * kEntrySize;
  if (map_ != nullptr) {
    if (e.offset + nbytes > map_size_) {
      return Status::IOError("block out of mapped range on " + path_);
    }
    std::memcpy(victim->entries.data(), map_ + e.offset, nbytes);
  } else {
    if (std::fseek(file_, static_cast<long>(e.offset), SEEK_SET) != 0) {
      return Status::IOError("block seek failed on " + path_);
    }
    if (std::fread(victim->entries.data(), kEntrySize, e.count, file_) !=
        e.count) {
      return Status::IOError("block read failed on " + path_);
    }
  }
  if (stats_ != nullptr) {
    // A fetch of anything but the next contiguous block repositions the
    // medium; sequential scans charge one seek for the whole run.
    if (static_cast<int64_t>(b) != last_fetched_block_ + 1) ++stats_->seeks;
    ++stats_->pages_read;
    stats_->bytes_read += nbytes;
  }
  last_fetched_block_ = static_cast<int64_t>(b);
  victim->index = static_cast<int64_t>(b);
  victim->last_used = ++cache_clock_;
  return &victim->entries;
}

Result<bool> SSTable::Get(uint64_t key, LsmValue* value, bool use_bloom) {
  if (num_entries_ == 0 || key < min_key_ || key > max_key_) return false;
  // Binary search the resident index for the block whose last_key >= key.
  size_t lo = 0, hi = index_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (index_[mid].last_key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == index_.size() || index_[lo].first_key > key) return false;
  // The bloom filter gates only the block fetch: when the candidate block
  // is already cached, probing the block directly is cheaper than probing
  // the filter — and the point queries of one GetPoints batch land in the
  // same block almost every time.
  const std::vector<Entry>* entries;
  if (CachedBlock* cb = FindCached(lo)) {
    cb->last_used = ++cache_clock_;
    if (stats_ != nullptr) ++stats_->pages_cached;
    entries = &cb->entries;
  } else {
    if (use_bloom && !bloom_.MayContain(key)) {
      if (stats_ != nullptr) {
        ++stats_->bloom_negative;
        ChargeTier(&stats_->tier_bloom_skipped);
      }
      return false;
    }
    K2_ASSIGN_OR_RETURN(entries, LoadBlock(lo));
  }
  if (stats_ != nullptr) {
    ++stats_->sstables_touched;
    ChargeTier(&stats_->tier_sstables_touched);
  }
  auto it = std::lower_bound(
      entries->begin(), entries->end(), key,
      [](const Entry& entry, uint64_t k) { return entry.key < k; });
  if (it != entries->end() && it->key == key) {
    *value = it->value;
    return true;
  }
  return false;
}

Status SSTable::Scan(uint64_t lo, uint64_t hi,
                     const std::function<void(uint64_t, const LsmValue&)>& fn) {
  if (!Overlaps(lo, hi)) return Status::OK();
  if (stats_ != nullptr) {
    ++stats_->sstables_touched;
    ChargeTier(&stats_->tier_sstables_touched);
  }
  // First block that can contain lo.
  size_t b = 0, b_hi = index_.size();
  while (b < b_hi) {
    const size_t mid = (b + b_hi) / 2;
    if (index_[mid].last_key < lo) {
      b = mid + 1;
    } else {
      b_hi = mid;
    }
  }
  for (; b < index_.size() && index_[b].first_key <= hi; ++b) {
    K2_ASSIGN_OR_RETURN(const std::vector<Entry>* entries, GetBlock(b));
    for (const Entry& entry : *entries) {
      if (entry.key < lo) continue;
      if (entry.key > hi) return Status::OK();
      fn(entry.key, entry.value);
    }
  }
  return Status::OK();
}

}  // namespace k2::lsm
