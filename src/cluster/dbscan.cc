#include "cluster/dbscan.h"

#include <algorithm>

namespace k2 {

namespace {

// Region query used below: grid-indexed for large snapshots, brute force
// for the tiny re-clusterings that dominate HWMT / extension / validation
// (rebuilding even a flat grid for 3-10 points costs more than scanning
// them).
constexpr size_t kBruteForceThreshold = 32;

void BruteForceNeighbors(std::span<const SnapshotPoint> points, size_t i,
                         double eps, std::vector<uint32_t>* out) {
  const double eps2 = eps * eps;
  const SnapshotPoint& p = points[i];
  for (size_t j = 0; j < points.size(); ++j) {
    const double dx = points[j].x - p.x;
    const double dy = points[j].y - p.y;
    if (dx * dx + dy * dy <= eps2) out->push_back(static_cast<uint32_t>(j));
  }
}

DbscanScratch* ThreadLocalScratch() {
  static thread_local DbscanScratch scratch;
  return &scratch;
}

// Shared worker: labels every point into scratch->labels (reused storage).
void RunDbscan(std::span<const SnapshotPoint> points, double eps, int min_pts,
               DbscanScratch* scratch, DbscanLabels* out) {
  const size_t n = points.size();
  out->label.assign(n, -1);
  out->num_clusters = 0;
  if (n == 0 || min_pts <= 0) return;

  const bool use_grid = n > kBruteForceThreshold;
  if (use_grid) scratch->grid.Build(points, eps);
  auto region_query = [&](size_t i, std::vector<uint32_t>* nbrs) {
    nbrs->clear();
    if (use_grid) {
      scratch->grid.Neighbors(i, eps, nbrs);
    } else {
      BruteForceNeighbors(points, i, eps, nbrs);
    }
  };

  scratch->visited.assign(n, 0);
  std::vector<uint32_t>& neighbors = scratch->neighbors;
  std::vector<uint32_t>& seeds = scratch->seeds;

  for (size_t i = 0; i < n; ++i) {
    if (scratch->visited[i]) continue;
    scratch->visited[i] = 1;
    region_query(i, &neighbors);
    if (neighbors.size() < static_cast<size_t>(min_pts)) continue;  // noise or border

    const int32_t cluster = out->num_clusters++;
    out->label[i] = cluster;
    seeds.assign(neighbors.begin(), neighbors.end());
    // Classic ExpandCluster: the seed list grows while new core points are
    // discovered; border points get the cluster of the first core reaching
    // them.
    for (size_t s = 0; s < seeds.size(); ++s) {
      const uint32_t j = seeds[s];
      if (!scratch->visited[j]) {
        scratch->visited[j] = 1;
        region_query(j, &neighbors);
        if (neighbors.size() >= static_cast<size_t>(min_pts)) {
          seeds.insert(seeds.end(), neighbors.begin(), neighbors.end());
        }
      }
      if (out->label[j] < 0) out->label[j] = cluster;
    }
  }
}

std::vector<ObjectSet> LabelsToClusters(std::span<const SnapshotPoint> points,
                                        const DbscanLabels& labels,
                                        int min_pts, DbscanScratch* scratch) {
  const size_t k = static_cast<size_t>(labels.num_clusters);
  std::vector<std::vector<ObjectId>>& members = scratch->members;
  if (members.size() < k) members.resize(k);
  for (size_t c = 0; c < k; ++c) members[c].clear();
  for (size_t i = 0; i < points.size(); ++i) {
    if (labels.label[i] >= 0) {
      members[labels.label[i]].push_back(points[i].oid);
    }
  }
  std::vector<ObjectSet> clusters;
  clusters.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    if (members[c].size() < static_cast<size_t>(min_pts)) continue;
    clusters.emplace_back(members[c]);
  }
  std::sort(clusters.begin(), clusters.end());
  return clusters;
}

}  // namespace

std::vector<ObjectSet> Dbscan(std::span<const SnapshotPoint> points,
                              double eps, int min_pts,
                              DbscanScratch* scratch) {
  RunDbscan(points, eps, min_pts, scratch, &scratch->labels);
  return LabelsToClusters(points, scratch->labels, min_pts, scratch);
}

std::vector<ObjectSet> Dbscan(std::span<const SnapshotPoint> points,
                              double eps, int min_pts) {
  return Dbscan(points, eps, min_pts, ThreadLocalScratch());
}

std::vector<ObjectSet> DbscanSubset(std::span<const SnapshotPoint> points,
                                    const ObjectSet& subset, double eps,
                                    int min_pts, DbscanScratch* scratch) {
  std::vector<SnapshotPoint>& filtered = scratch->filtered;
  filtered.clear();
  for (const SnapshotPoint& p : points) {
    if (subset.Contains(p.oid)) filtered.push_back(p);
  }
  return Dbscan(filtered, eps, min_pts, scratch);
}

std::vector<ObjectSet> DbscanSubset(std::span<const SnapshotPoint> points,
                                    const ObjectSet& subset, double eps,
                                    int min_pts) {
  return DbscanSubset(points, subset, eps, min_pts, ThreadLocalScratch());
}

void DbscanLabelled(std::span<const SnapshotPoint> points, double eps,
                    int min_pts, DbscanScratch* scratch, DbscanLabels* out) {
  RunDbscan(points, eps, min_pts, scratch, out);
}

DbscanLabels DbscanLabelled(std::span<const SnapshotPoint> points, double eps,
                            int min_pts) {
  DbscanLabels out;
  RunDbscan(points, eps, min_pts, ThreadLocalScratch(), &out);
  return out;
}

}  // namespace k2
