#include "common/simd.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define K2_SIMD_X86 1
#include <immintrin.h>
#else
#define K2_SIMD_X86 0
#endif

namespace k2::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar kernels — the dispatch fallback and the differential oracle every
// vector implementation is tested byte-identical against.
// ---------------------------------------------------------------------------

size_t EpsScanScalar(const double* xs, const double* ys, const uint32_t* ids,
                     size_t n, double qx, double qy, double eps2,
                     uint32_t* out) {
  size_t cnt = 0;
  for (size_t j = 0; j < n; ++j) {
    const double dx = xs[j] - qx;
    const double dy = ys[j] - qy;
    if (dx * dx + dy * dy <= eps2) out[cnt++] = ids[j];
  }
  return cnt;
}

size_t IntersectScalar(const uint32_t* a, size_t na, const uint32_t* b,
                       size_t nb, uint32_t* out) {
  size_t i = 0, j = 0, cnt = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[cnt++] = a[i];
      ++i;
      ++j;
    }
  }
  return cnt;
}

size_t IntersectSizeScalar(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb) {
  size_t i = 0, j = 0, cnt = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++cnt;
      ++i;
      ++j;
    }
  }
  return cnt;
}

bool IsSubsetScalar(const uint32_t* a, size_t na, const uint32_t* b,
                    size_t nb) {
  if (na > nb) return false;
  size_t j = 0;
  for (size_t i = 0; i < na; ++i) {
    while (j < nb && b[j] < a[i]) ++j;
    if (j == nb || b[j] != a[i]) return false;
    ++j;
  }
  return true;
}

uint32_t Crc32cScalar(const void* data, size_t n, uint32_t seed) {
  // Table-driven software CRC-32C (Castagnoli, reflected 0x82F63B78).
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~seed;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

// ---------------------------------------------------------------------------
// Galloping intersection for heavily skewed set sizes (the small set probes
// the big one by exponential + binary search instead of merging through it).
// Shared by the vector levels; set results are unique, so this matches the
// scalar merge byte-for-byte.
// ---------------------------------------------------------------------------

// Smallest index in [lo, ng) with g[index] >= v, assuming g sorted.
size_t GallopLowerBound(const uint32_t* g, size_t ng, size_t lo, uint32_t v) {
  size_t step = 1;
  size_t hi = lo;
  while (hi < ng && g[hi] < v) {
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  hi = std::min(hi, ng);
  return static_cast<size_t>(std::lower_bound(g + lo, g + hi, v) - g);
}

// Skew ratio beyond which probing beats block-merging.
constexpr size_t kGallopRatio = 32;

size_t IntersectGallop(const uint32_t* s, size_t ns, const uint32_t* g,
                       size_t ng, uint32_t* out) {
  size_t j = 0, cnt = 0;
  for (size_t i = 0; i < ns && j < ng; ++i) {
    j = GallopLowerBound(g, ng, j, s[i]);
    if (j < ng && g[j] == s[i]) {
      out[cnt++] = s[i];
      ++j;
    }
  }
  return cnt;
}

size_t IntersectSizeGallop(const uint32_t* s, size_t ns, const uint32_t* g,
                           size_t ng) {
  size_t j = 0, cnt = 0;
  for (size_t i = 0; i < ns && j < ng; ++i) {
    j = GallopLowerBound(g, ng, j, s[i]);
    if (j < ng && g[j] == s[i]) {
      ++cnt;
      ++j;
    }
  }
  return cnt;
}

bool IsSubsetGallop(const uint32_t* a, size_t na, const uint32_t* b,
                    size_t nb) {
  size_t j = 0;
  for (size_t i = 0; i < na; ++i) {
    j = GallopLowerBound(b, nb, j, a[i]);
    if (j == nb || b[j] != a[i]) return false;
    ++j;
  }
  return true;
}

#if K2_SIMD_X86

// ---------------------------------------------------------------------------
// Compress-store lookup tables: for an L-bit match mask, the shuffle that
// packs the matching 32-bit lanes to the front of the register. Built once
// at load time (the 8-lane table is 256 x 8 permute indices).
// ---------------------------------------------------------------------------

struct CompressTables {
  alignas(16) uint8_t lanes4[16][16];   // byte shuffle for _mm_shuffle_epi8
  alignas(32) uint32_t lanes8[256][8];  // dword permute for vpermd

  CompressTables() {
    for (int m = 0; m < 16; ++m) {
      int o = 0;
      for (int l = 0; l < 4; ++l) {
        if (m & (1 << l)) {
          for (int byte = 0; byte < 4; ++byte) {
            lanes4[m][o * 4 + byte] = static_cast<uint8_t>(l * 4 + byte);
          }
          ++o;
        }
      }
      for (; o < 4; ++o) {
        for (int byte = 0; byte < 4; ++byte) {
          lanes4[m][o * 4 + byte] = 0x80;  // zero-fill the slack lanes
        }
      }
    }
    for (int m = 0; m < 256; ++m) {
      int o = 0;
      for (int l = 0; l < 8; ++l) {
        if (m & (1 << l)) lanes8[m][o++] = static_cast<uint32_t>(l);
      }
      for (; o < 8; ++o) lanes8[m][o] = 0;
    }
  }
};

const CompressTables kCompress;

// ---------------------------------------------------------------------------
// CRC-32C combine support: a GF(2) operator matrix that advances a CRC over
// N zero bytes, zlib crc32_combine style, specialized to the Castagnoli
// polynomial. Used to stitch the three interleaved hardware-CRC streams
// back into one running checksum.
// ---------------------------------------------------------------------------

uint32_t Gf2MatrixTimes(const uint32_t* mat, uint32_t vec) {
  uint32_t sum = 0;
  int i = 0;
  while (vec != 0) {
    if (vec & 1) sum ^= mat[i];
    vec >>= 1;
    ++i;
  }
  return sum;
}

void Gf2MatrixSquare(uint32_t* square, const uint32_t* mat) {
  for (int i = 0; i < 32; ++i) square[i] = Gf2MatrixTimes(mat, mat[i]);
}

// Advances finalized CRC `crc` over `len` zero bytes (zlib crc32_combine_
// with crc2 = 0, Castagnoli polynomial).
uint32_t CrcShiftZeros(uint32_t crc, size_t len) {
  if (len == 0) return crc;
  uint32_t even[32], odd[32];
  odd[0] = 0x82F63B78u;  // reflected CRC-32C polynomial: operator "x^1"
  uint32_t row = 1;
  for (int i = 1; i < 32; ++i) {
    odd[i] = row;
    row <<= 1;
  }
  Gf2MatrixSquare(even, odd);  // x^2
  Gf2MatrixSquare(odd, even);  // x^4
  do {
    Gf2MatrixSquare(even, odd);  // x^8, x^32, ... : one byte, then squares
    if (len & 1) crc = Gf2MatrixTimes(even, crc);
    len >>= 1;
    if (len == 0) break;
    Gf2MatrixSquare(odd, even);
    if (len & 1) crc = Gf2MatrixTimes(odd, crc);
    len >>= 1;
  } while (len != 0);
  return crc;
}

// Bytes per interleaved stream. Long enough to amortize the combine, short
// enough that WAL-record-sized appends (a few KiB) still hit the fast path.
constexpr size_t kCrcStride = 1024;

// Operator advancing a finalized CRC by kCrcStride zero bytes; columns are
// the images of the 32 basis vectors.
const uint32_t* CrcStrideOperator() {
  static const auto op = [] {
    std::array<uint32_t, 32> m{};
    for (int i = 0; i < 32; ++i) m[i] = CrcShiftZeros(1u << i, kCrcStride);
    return m;
  }();
  return op.data();
}

// ---------------------------------------------------------------------------
// SSE4.2 kernels
// ---------------------------------------------------------------------------

__attribute__((target("sse4.2,popcnt"))) size_t EpsScanSse42(
    const double* xs, const double* ys, const uint32_t* ids, size_t n,
    double qx, double qy, double eps2, uint32_t* out) {
  size_t cnt = 0, j = 0;
  const __m128d vqx = _mm_set1_pd(qx);
  const __m128d vqy = _mm_set1_pd(qy);
  const __m128d ve = _mm_set1_pd(eps2);
  for (; j + 4 <= n; j += 4) {
    const __m128d dx0 = _mm_sub_pd(_mm_loadu_pd(xs + j), vqx);
    const __m128d dy0 = _mm_sub_pd(_mm_loadu_pd(ys + j), vqy);
    const __m128d dx1 = _mm_sub_pd(_mm_loadu_pd(xs + j + 2), vqx);
    const __m128d dy1 = _mm_sub_pd(_mm_loadu_pd(ys + j + 2), vqy);
    const __m128d d0 =
        _mm_add_pd(_mm_mul_pd(dx0, dx0), _mm_mul_pd(dy0, dy0));
    const __m128d d1 =
        _mm_add_pd(_mm_mul_pd(dx1, dx1), _mm_mul_pd(dy1, dy1));
    const int m = _mm_movemask_pd(_mm_cmple_pd(d0, ve)) |
                  (_mm_movemask_pd(_mm_cmple_pd(d1, ve)) << 2);
    if (m != 0) {
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + j));
      const __m128i shuf = _mm_load_si128(
          reinterpret_cast<const __m128i*>(kCompress.lanes4[m]));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + cnt),
                       _mm_shuffle_epi8(v, shuf));
      cnt += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(m)));
    }
  }
  for (; j < n; ++j) {
    const double dx = xs[j] - qx;
    const double dy = ys[j] - qy;
    if (dx * dx + dy * dy <= eps2) out[cnt++] = ids[j];
  }
  return cnt;
}

__attribute__((target("sse4.2,popcnt"))) size_t IntersectSse42(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
    uint32_t* out) {
  if (na * kGallopRatio < nb) return IntersectGallop(a, na, b, nb, out);
  if (nb * kGallopRatio < na) return IntersectGallop(b, nb, a, na, out);
  size_t i = 0, j = 0, cnt = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i cmp = _mm_cmpeq_epi32(va, vb);
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    const int m = _mm_movemask_ps(_mm_castsi128_ps(cmp));
    if (m != 0) {
      const __m128i shuf = _mm_load_si128(
          reinterpret_cast<const __m128i*>(kCompress.lanes4[m]));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + cnt),
                       _mm_shuffle_epi8(va, shuf));
      cnt += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(m)));
    }
    const uint32_t amax = a[i + 3];
    const uint32_t bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[cnt++] = a[i];
      ++i;
      ++j;
    }
  }
  return cnt;
}

__attribute__((target("sse4.2,popcnt"))) size_t IntersectSizeSse42(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb) {
  if (na * kGallopRatio < nb) return IntersectSizeGallop(a, na, b, nb);
  if (nb * kGallopRatio < na) return IntersectSizeGallop(b, nb, a, na);
  size_t i = 0, j = 0, cnt = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i cmp = _mm_cmpeq_epi32(va, vb);
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    cnt += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(cmp)))));
    const uint32_t amax = a[i + 3];
    const uint32_t bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++cnt;
      ++i;
      ++j;
    }
  }
  return cnt;
}

__attribute__((target("sse4.2,popcnt"))) bool IsSubsetSse42(const uint32_t* a,
                                                            size_t na,
                                                            const uint32_t* b,
                                                            size_t nb) {
  if (na > nb) return false;
  if (na * kGallopRatio < nb) return IsSubsetGallop(a, na, b, nb);
  size_t i = 0, j = 0;
  unsigned acc = 0;  // match bits of the in-flight a block
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i cmp = _mm_cmpeq_epi32(va, vb);
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    acc |= static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(cmp)));
    const uint32_t amax = a[i + 3];
    const uint32_t bmax = b[j + 3];
    if (amax <= bmax) {
      // The block is fully resolved: later b values exceed bmax >= amax.
      if (acc != 0xFu) return false;
      i += 4;
      acc = 0;
    }
    if (bmax <= amax) j += 4;
  }
  // Lanes of the in-flight block that already matched (acc) were satisfied
  // by b values before j; the rest can only match at or after j.
  for (unsigned l = 0; l < 4 && i + l < na; ++l) {
    if (acc & (1u << l)) continue;
    const uint32_t v = a[i + l];
    while (j < nb && b[j] < v) ++j;
    if (j == nb || b[j] != v) return false;
    ++j;
  }
  i = std::min(i + 4, na);
  return IsSubsetScalar(a + i, na - i, b + j, nb - j);
}

// Raw-state hardware CRC over a short range: `crc` is the inverted running
// state, returned in the same domain.
__attribute__((target("sse4.2"))) uint32_t Crc32cHwRaw(const uint8_t* p,
                                                       size_t n,
                                                       uint32_t crc) {
  uint64_t c = crc;
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    c = _mm_crc32_u64(c, w);
    p += 8;
    n -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  while (n > 0) {
    c32 = _mm_crc32_u8(c32, *p++);
    --n;
  }
  return c32;
}

__attribute__((target("sse4.2"))) uint32_t Crc32cSse42(const void* data,
                                                       size_t n,
                                                       uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~seed;
  if (n >= 3 * kCrcStride) {
    // 3-way stream interleave: the crc32 instruction has 3-cycle latency
    // but 1-cycle throughput, so three independent streams keep the unit
    // saturated; the GF(2) stride operator stitches them back together.
    const uint32_t* op = CrcStrideOperator();
    do {
      uint64_t c0 = c;
      uint64_t c1 = 0xFFFFFFFFu;
      uint64_t c2 = 0xFFFFFFFFu;
      for (size_t i = 0; i < kCrcStride; i += 8) {
        uint64_t w0, w1, w2;
        std::memcpy(&w0, p + i, 8);
        std::memcpy(&w1, p + kCrcStride + i, 8);
        std::memcpy(&w2, p + 2 * kCrcStride + i, 8);
        c0 = _mm_crc32_u64(c0, w0);
        c1 = _mm_crc32_u64(c1, w1);
        c2 = _mm_crc32_u64(c2, w2);
      }
      const uint32_t f0 = ~static_cast<uint32_t>(c0);
      const uint32_t f1 = ~static_cast<uint32_t>(c1);
      const uint32_t f2 = ~static_cast<uint32_t>(c2);
      uint32_t combined = Gf2MatrixTimes(op, f0) ^ f1;
      combined = Gf2MatrixTimes(op, combined) ^ f2;
      c = ~combined;
      p += 3 * kCrcStride;
      n -= 3 * kCrcStride;
    } while (n >= 3 * kCrcStride);
  }
  return ~Crc32cHwRaw(p, n, c);
}

// ---------------------------------------------------------------------------
// AVX2 kernels
// ---------------------------------------------------------------------------

__attribute__((target("avx2,popcnt"))) size_t EpsScanAvx2(
    const double* xs, const double* ys, const uint32_t* ids, size_t n,
    double qx, double qy, double eps2, uint32_t* out) {
  size_t cnt = 0, j = 0;
  const __m256d vqx = _mm256_set1_pd(qx);
  const __m256d vqy = _mm256_set1_pd(qy);
  const __m256d ve = _mm256_set1_pd(eps2);
  for (; j + 8 <= n; j += 8) {
    const __m256d dx0 = _mm256_sub_pd(_mm256_loadu_pd(xs + j), vqx);
    const __m256d dy0 = _mm256_sub_pd(_mm256_loadu_pd(ys + j), vqy);
    const __m256d dx1 = _mm256_sub_pd(_mm256_loadu_pd(xs + j + 4), vqx);
    const __m256d dy1 = _mm256_sub_pd(_mm256_loadu_pd(ys + j + 4), vqy);
    const __m256d d0 =
        _mm256_add_pd(_mm256_mul_pd(dx0, dx0), _mm256_mul_pd(dy0, dy0));
    const __m256d d1 =
        _mm256_add_pd(_mm256_mul_pd(dx1, dx1), _mm256_mul_pd(dy1, dy1));
    const int m =
        _mm256_movemask_pd(_mm256_cmp_pd(d0, ve, _CMP_LE_OQ)) |
        (_mm256_movemask_pd(_mm256_cmp_pd(d1, ve, _CMP_LE_OQ)) << 4);
    if (m != 0) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + j));
      const __m256i perm = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kCompress.lanes8[m]));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + cnt),
                          _mm256_permutevar8x32_epi32(v, perm));
      cnt += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(m)));
    }
  }
  for (; j < n; ++j) {
    const double dx = xs[j] - qx;
    const double dy = ys[j] - qy;
    if (dx * dx + dy * dy <= eps2) out[cnt++] = ids[j];
  }
  return cnt;
}

// All-pairs equality mask of va against the 8 rotations of vb; returns the
// 8-bit movemask on the va side. The rotations come from immediate-operand
// shuffles only — one 128-bit lane swap plus six alignr — so the hot loop
// issues no index-vector loads: rotating 8 dwords left by r is a 4r-byte
// alignr over the (swapped, original) lane pair, and rotating by 4 is the
// swap itself.
__attribute__((target("avx2"))) inline unsigned MatchMask8(__m256i va,
                                                           __m256i vb) {
  const __m256i sw = _mm256_permute2x128_si256(vb, vb, 0x01);
  __m256i cmp = _mm256_cmpeq_epi32(va, vb);
  cmp = _mm256_or_si256(cmp,
                        _mm256_cmpeq_epi32(va, _mm256_alignr_epi8(sw, vb, 4)));
  cmp = _mm256_or_si256(cmp,
                        _mm256_cmpeq_epi32(va, _mm256_alignr_epi8(sw, vb, 8)));
  cmp = _mm256_or_si256(cmp,
                        _mm256_cmpeq_epi32(va, _mm256_alignr_epi8(sw, vb, 12)));
  cmp = _mm256_or_si256(cmp, _mm256_cmpeq_epi32(va, sw));
  cmp = _mm256_or_si256(cmp,
                        _mm256_cmpeq_epi32(va, _mm256_alignr_epi8(vb, sw, 4)));
  cmp = _mm256_or_si256(cmp,
                        _mm256_cmpeq_epi32(va, _mm256_alignr_epi8(vb, sw, 8)));
  cmp = _mm256_or_si256(cmp,
                        _mm256_cmpeq_epi32(va, _mm256_alignr_epi8(vb, sw, 12)));
  return static_cast<unsigned>(
      _mm256_movemask_ps(_mm256_castsi256_ps(cmp)));
}

__attribute__((target("avx2,popcnt"))) size_t IntersectAvx2(const uint32_t* a,
                                                            size_t na,
                                                            const uint32_t* b,
                                                            size_t nb,
                                                            uint32_t* out) {
  if (na * kGallopRatio < nb) return IntersectGallop(a, na, b, nb, out);
  if (nb * kGallopRatio < na) return IntersectGallop(b, nb, a, na, out);
  size_t i = 0, j = 0, cnt = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const unsigned m = MatchMask8(va, vb);
    if (m != 0) {
      const __m256i perm = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kCompress.lanes8[m]));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + cnt),
                          _mm256_permutevar8x32_epi32(va, perm));
      cnt += static_cast<size_t>(__builtin_popcount(m));
    }
    const uint32_t amax = a[i + 7];
    const uint32_t bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[cnt++] = a[i];
      ++i;
      ++j;
    }
  }
  return cnt;
}

__attribute__((target("avx2,popcnt"))) size_t IntersectSizeAvx2(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb) {
  if (na * kGallopRatio < nb) return IntersectSizeGallop(a, na, b, nb);
  if (nb * kGallopRatio < na) return IntersectSizeGallop(b, nb, a, na);
  size_t i = 0, j = 0, cnt = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    cnt += static_cast<size_t>(__builtin_popcount(MatchMask8(va, vb)));
    const uint32_t amax = a[i + 7];
    const uint32_t bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++cnt;
      ++i;
      ++j;
    }
  }
  return cnt;
}

__attribute__((target("avx2,popcnt"))) bool IsSubsetAvx2(const uint32_t* a,
                                                         size_t na,
                                                         const uint32_t* b,
                                                         size_t nb) {
  if (na > nb) return false;
  if (na * kGallopRatio < nb) return IsSubsetGallop(a, na, b, nb);
  size_t i = 0, j = 0;
  unsigned acc = 0;  // match bits of the in-flight a block
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    acc |= MatchMask8(va, vb);
    const uint32_t amax = a[i + 7];
    const uint32_t bmax = b[j + 7];
    if (amax <= bmax) {
      // The block is fully resolved: later b values exceed bmax >= amax.
      if (acc != 0xFFu) return false;
      i += 8;
      acc = 0;
    }
    if (bmax <= amax) j += 8;
  }
  for (unsigned l = 0; l < 8 && i + l < na; ++l) {
    if (acc & (1u << l)) continue;
    const uint32_t v = a[i + l];
    while (j < nb && b[j] < v) ++j;
    if (j == nb || b[j] != v) return false;
    ++j;
  }
  i = std::min(i + 8, na);
  return IsSubsetScalar(a + i, na - i, b + j, nb - j);
}

#endif  // K2_SIMD_X86

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

constexpr Kernels kScalarKernels = {
    EpsScanScalar, IntersectScalar, IntersectSizeScalar, IsSubsetScalar,
    Crc32cScalar,
};

#if K2_SIMD_X86
constexpr Kernels kSse42Kernels = {
    EpsScanSse42, IntersectSse42, IntersectSizeSse42, IsSubsetSse42,
    Crc32cSse42,
};

// The crc32 instruction is SSE4.2; AVX2 adds nothing to it, so the AVX2
// table reuses the SSE4.2 CRC.
constexpr Kernels kAvx2Kernels = {
    EpsScanAvx2, IntersectAvx2, IntersectSizeAvx2, IsSubsetAvx2, Crc32cSse42,
};
#endif

Level DetectMaxLevel() {
#if K2_SIMD_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("sse4.2") &&
      __builtin_cpu_supports("popcnt")) {
    return Level::kAvx2;
  }
  if (__builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("popcnt")) {
    return Level::kSse42;
  }
#endif
  return Level::kScalar;
}

Level ResolveActiveLevel() {
  const Level max = MaxSupportedLevel();
  const char* env = std::getenv("K2_SIMD");
  if (env == nullptr || env[0] == '\0') return max;
  Level requested;
  if (std::strcmp(env, "scalar") == 0) {
    requested = Level::kScalar;
  } else if (std::strcmp(env, "sse42") == 0) {
    requested = Level::kSse42;
  } else if (std::strcmp(env, "avx2") == 0) {
    requested = Level::kAvx2;
  } else {
    std::fprintf(stderr,
                 "K2_SIMD=%s not recognized (scalar|sse42|avx2); "
                 "auto-detecting\n",
                 env);
    return max;
  }
  if (requested > max) {
    std::fprintf(stderr, "K2_SIMD=%s unsupported on this CPU; using %s\n", env,
                 LevelName(max));
    return max;
  }
  return requested;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse42:
      return "sse42";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Level MaxSupportedLevel() {
  static const Level max = DetectMaxLevel();
  return max;
}

bool Supported(Level level) { return level <= MaxSupportedLevel(); }

Level ActiveLevel() {
  static const Level active = ResolveActiveLevel();
  return active;
}

const Kernels& At(Level level) {
  K2_CHECK(Supported(level));
#if K2_SIMD_X86
  switch (level) {
    case Level::kScalar:
      return kScalarKernels;
    case Level::kSse42:
      return kSse42Kernels;
    case Level::kAvx2:
      return kAvx2Kernels;
  }
#endif
  return kScalarKernels;
}

const Kernels& Active() {
  static const Kernels& kernels = At(ActiveLevel());
  return kernels;
}

}  // namespace k2::simd
