// Disk-resident B+-tree with the composite clustered key (t, oid): the
// "relational table ... with a multi-column clustering index on timestamp
// and oid" of paper Sec. 5.1. Built bottom-up from sorted data (bulk load),
// then read-only; leaves are chained for range scans.
#ifndef K2_STORAGE_BPTREE_BPTREE_H_
#define K2_STORAGE_BPTREE_BPTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/dataset.h"
#include "storage/bptree/buffer_pool.h"
#include "storage/bptree/pager.h"

namespace k2 {

/// Leaf payload: the planar position of one (t, oid) row.
struct BPTreeValue {
  double x = 0.0;
  double y = 0.0;
};

class BPlusTree {
 public:
  /// `buffer_pool_pages` bounds resident memory (default 256 pages = 1 MiB);
  /// `stats` may be null.
  BPlusTree(std::string path, size_t buffer_pool_pages, IoStats* stats);

  /// Builds the tree from `dataset` (already in key order) bottom-up and
  /// leaves it open for queries.
  Status BuildFrom(const Dataset& dataset);

  /// Opens this (freshly constructed) tree as an independent read-only
  /// replica of `source`'s already-built tree: same file, private pager and
  /// buffer pool, so replica reads never contend with the source. This
  /// tree must have been constructed with source.path(); the replica is
  /// valid while the source's file stays unmodified.
  Status OpenReadReplicaOf(const BPlusTree& source);

  const std::string& path() const { return pager_.path(); }

  /// Point lookup; `*found` is false when the key is absent.
  Status Get(uint64_t key, BPTreeValue* value, bool* found);

  /// Visits all entries with lo <= key <= hi in key order.
  Status ScanRange(uint64_t lo, uint64_t hi,
                   const std::function<void(uint64_t, const BPTreeValue&)>& fn);

  uint32_t height() const { return height_; }
  uint64_t num_records() const { return num_records_; }
  PageId num_pages() const { return pager_.num_pages(); }

  /// Drops every cached page (used by benches to model a cold cache).
  void DropCaches() { pool_.Clear(); }

  // --- page geometry, exposed for white-box tests ------------------------
  // Leaf: 16 B header + n * 24 B entries.
  static constexpr size_t kLeafCapacity = (kPageSize - 16) / 24;  // 170
  // Internal: 16 B header + n * 8 B keys + (n + 1) * 4 B children; the +1
  // child slot must fit inside the page, hence the extra -4.
  static constexpr size_t kInternalCapacity = (kPageSize - 16 - 4) / 12;  // 339

 private:
  // Page layout. Common header: uint16 type, uint16 num_keys, uint32 extra
  // (leaf: next-leaf pid; internal: unused), uint64 reserved.
  // Leaf entries start at byte 16: {uint64 key, double x, double y} * n.
  // Internal: keys (uint64 * kInternalCapacity) at byte 16, children
  // (uint32 * (kInternalCapacity + 1)) after the key array.
  static constexpr uint16_t kLeafType = 1;
  static constexpr uint16_t kInternalType = 2;
  static constexpr size_t kHeaderSize = 16;
  static constexpr size_t kLeafEntrySize = 24;
  static constexpr size_t kInternalChildrenOffset =
      kHeaderSize + 8 * kInternalCapacity;

  /// Descends from the root to the leaf that may hold `key`.
  Status FindLeaf(uint64_t key, PageId* leaf_pid);

  Pager pager_;
  BufferPool pool_;
  PageId root_pid_ = kInvalidPageId;
  uint32_t height_ = 0;  // 1 = root is a leaf
  uint64_t num_records_ = 0;
};

}  // namespace k2

#endif  // K2_STORAGE_BPTREE_BPTREE_H_
