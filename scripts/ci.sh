#!/usr/bin/env bash
# CI sequence: configure + build everything + smoke-tier ctest.
# Usage: scripts/ci.sh [build-dir]   (default: build-ci)
# When ccache is installed it is used automatically (the CI jobs cache its
# directory across runs, so GoogleTest and the benches stop rebuilding from
# scratch on every push).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

LAUNCHER_ARGS=()
if command -v ccache >/dev/null 2>&1; then
  LAUNCHER_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release "${LAUNCHER_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$JOBS"
# Record which kernel implementations this run dispatches to (the K2_SIMD
# env var caps the level; see src/common/simd.h).
"$BUILD_DIR/src/k2_simd_info"
ctest --test-dir "$BUILD_DIR" -L smoke --output-on-failure -j "$JOBS"
