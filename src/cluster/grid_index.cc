#include "cluster/grid_index.h"

#include <algorithm>

#include "common/check.h"
#include "common/simd.h"

namespace k2 {

void GridIndex::Build(std::span<const SnapshotPoint> points,
                      double cell_size) {
  K2_CHECK(cell_size > 0.0);
  requested_cell_ = cell_size;
  const size_t n = points.size();
  px_.resize(n);
  py_.resize(n);
  point_ids_.resize(n);
  xs_.resize(n);
  ys_.resize(n);
  cell_of_.resize(n);
  num_occupied_cells_ = 0;
  if (n == 0) {
    nx_ = ny_ = 0;
    cell_starts_.assign(1, 0);
    return;
  }

  double max_x = points[0].x, max_y = points[0].y;
  min_x_ = points[0].x;
  min_y_ = points[0].y;
  for (size_t i = 0; i < n; ++i) {
    px_[i] = points[i].x;
    py_[i] = points[i].y;
    min_x_ = std::min(min_x_, points[i].x);
    min_y_ = std::min(min_y_, points[i].y);
    max_x = std::max(max_x, points[i].x);
    max_y = std::max(max_y, points[i].y);
  }

  // Grow the cell side until the bounding-box grid is at most ~4n cells, so
  // index memory stays linear in the snapshot for arbitrarily small eps.
  // Queries stay correct: the 3x3 block covers eps for any cell >= eps.
  const double max_cells =
      static_cast<double>(std::max<size_t>(64, 4 * n));
  double cell = cell_size;
  while ((std::floor((max_x - min_x_) / cell) + 1.0) *
             (std::floor((max_y - min_y_) / cell) + 1.0) >
         max_cells) {
    cell *= 2.0;
  }
  inv_cell_ = 1.0 / cell;
  nx_ = static_cast<int64_t>(std::floor((max_x - min_x_) * inv_cell_)) + 1;
  ny_ = static_cast<int64_t>(std::floor((max_y - min_y_) * inv_cell_)) + 1;

  const size_t num_cells = static_cast<size_t>(nx_ * ny_);
  for (size_t i = 0; i < n; ++i) {
    // Clamp against the rounding edge case where max_x lands one past the
    // last column under multiplication by inv_cell_.
    const int64_t cx = std::min(CellX(px_[i]), nx_ - 1);
    const int64_t cy = std::min(CellY(py_[i]), ny_ - 1);
    cell_of_[i] = static_cast<uint32_t>(cy * nx_ + cx);
  }

  // Counting sort, stable within a cell (preserves snapshot order).
  cell_starts_.assign(num_cells + 1, 0);
  for (size_t i = 0; i < n; ++i) ++cell_starts_[cell_of_[i]];
  uint32_t running = 0;
  for (size_t c = 0; c < num_cells; ++c) {
    const uint32_t count = cell_starts_[c];
    cell_starts_[c] = running;
    running += count;
    if (count > 0) ++num_occupied_cells_;
  }
  cell_starts_[num_cells] = running;
  // Scatter advances cell_starts_[c] to the cell's end; the backward shift
  // afterwards restores the CSR start offsets.
  for (size_t i = 0; i < n; ++i) {
    const uint32_t pos = cell_starts_[cell_of_[i]]++;
    point_ids_[pos] = static_cast<uint32_t>(i);
    xs_[pos] = px_[i];
    ys_[pos] = py_[i];
  }
  for (size_t c = num_cells; c > 0; --c) cell_starts_[c] = cell_starts_[c - 1];
  cell_starts_[0] = 0;
}

void GridIndex::NeighborsOf(double x, double y, double eps,
                            std::vector<uint32_t>* out) const {
  // The 3x3 block only covers eps-neighborhoods up to the cell size the
  // caller asked Build() for; beyond that the query silently misses points.
  K2_DCHECK(eps <= requested_cell_);
  if (px_.empty()) return;
  // Compute the 3x1 column range and 1x3 row range around the query cell in
  // floating point first: a far-away query must not overflow the int64 cast.
  const double fcx = std::floor((x - min_x_) * inv_cell_);
  const double fcy = std::floor((y - min_y_) * inv_cell_);
  if (fcx < -1.0 || fcx > static_cast<double>(nx_) ||
      fcy < -1.0 || fcy > static_cast<double>(ny_)) {
    return;
  }
  const int64_t cx = static_cast<int64_t>(fcx);
  const int64_t cy = static_cast<int64_t>(fcy);
  const int64_t x0 = std::max<int64_t>(cx - 1, 0);
  const int64_t x1 = std::min<int64_t>(cx + 1, nx_ - 1);
  const int64_t y0 = std::max<int64_t>(cy - 1, 0);
  const int64_t y1 = std::min<int64_t>(cy + 1, ny_ - 1);
  if (x0 > x1 || y0 > y1) return;

  const double eps2 = eps * eps;
  const auto& kernels = simd::Active();
  for (int64_t ry = y0; ry <= y1; ++ry) {
    // The row's three cells are adjacent in the row-major layout: one
    // contiguous segment of the CSR arrays per row, handed to the
    // dispatched eps-scan kernel as a unit. The kernel needs room for the
    // whole segment (compress-store slack), so the vector is grown to the
    // upper bound and trimmed to the matches written.
    const size_t base = static_cast<size_t>(ry * nx_);
    const uint32_t lo = cell_starts_[base + static_cast<size_t>(x0)];
    const uint32_t hi = cell_starts_[base + static_cast<size_t>(x1) + 1];
    if (lo == hi) continue;
    const size_t written = out->size();
    out->resize(written + (hi - lo));
    const size_t cnt = kernels.eps_scan(xs_.data() + lo, ys_.data() + lo,
                                        point_ids_.data() + lo, hi - lo, x, y,
                                        eps2, out->data() + written);
    out->resize(written + cnt);
  }
}

void GridIndex::NeighborsBatch(std::span<const uint32_t> queries, double eps,
                               std::vector<uint32_t>* flat,
                               std::vector<uint32_t>* offsets) const {
  flat->clear();
  offsets->clear();
  offsets->reserve(queries.size() + 1);
  offsets->push_back(0);
  for (const uint32_t q : queries) {
    NeighborsOf(px_[q], py_[q], eps, flat);
    offsets->push_back(static_cast<uint32_t>(flat->size()));
  }
}

void GridIndex::Region(const Rect& rect, std::vector<uint32_t>* out) const {
  if (px_.empty() || rect.empty()) return;
  // Cell ranges in floating point first, like NeighborsOf: a far-away rect
  // must not overflow the int64 cast.
  const double fx0 = std::floor((rect.min_x - min_x_) * inv_cell_);
  const double fx1 = std::floor((rect.max_x - min_x_) * inv_cell_);
  const double fy0 = std::floor((rect.min_y - min_y_) * inv_cell_);
  const double fy1 = std::floor((rect.max_y - min_y_) * inv_cell_);
  if (fx1 < 0.0 || fy1 < 0.0 || fx0 >= static_cast<double>(nx_) ||
      fy0 >= static_cast<double>(ny_)) {
    return;
  }
  // Clamp in floating point BEFORE the integer cast: a gigantic rect must
  // not overflow the int64 conversion.
  const double last_x = static_cast<double>(nx_ - 1);
  const double last_y = static_cast<double>(ny_ - 1);
  const int64_t x0 = static_cast<int64_t>(std::clamp(fx0, 0.0, last_x));
  const int64_t x1 = static_cast<int64_t>(std::clamp(fx1, 0.0, last_x));
  const int64_t y0 = static_cast<int64_t>(std::clamp(fy0, 0.0, last_y));
  const int64_t y1 = static_cast<int64_t>(std::clamp(fy1, 0.0, last_y));

  for (int64_t ry = y0; ry <= y1; ++ry) {
    // The row's covered cells are adjacent in the row-major layout: one
    // contiguous segment of the CSR arrays per row.
    const size_t base = static_cast<size_t>(ry * nx_);
    const uint32_t lo = cell_starts_[base + static_cast<size_t>(x0)];
    const uint32_t hi = cell_starts_[base + static_cast<size_t>(x1) + 1];
    for (uint32_t j = lo; j < hi; ++j) {
      if (rect.Contains(xs_[j], ys_[j])) out->push_back(point_ids_[j]);
    }
  }
}

}  // namespace k2
