// Unit tests for the clustering substrate: grid index region queries and
// DBSCAN semantics ((m,eps)-clusters of paper Def. 2).
#include <gtest/gtest.h>

#include "cluster/dbscan.h"
#include "cluster/grid_index.h"
#include "common/object_set.h"
#include "common/rng.h"

namespace k2 {
namespace {

std::vector<SnapshotPoint> Points1D(const std::vector<double>& xs) {
  std::vector<SnapshotPoint> pts;
  for (size_t i = 0; i < xs.size(); ++i) {
    pts.push_back(SnapshotPoint{static_cast<ObjectId>(i), xs[i], 0.0});
  }
  return pts;
}

// ---------------------------------------------------------------------------
// GridIndex
// ---------------------------------------------------------------------------

TEST(GridIndexTest, FindsNeighborsIncludingSelf) {
  const auto pts = Points1D({0.0, 0.5, 3.0});
  GridIndex index(pts, 1.0);
  std::vector<uint32_t> out;
  index.Neighbors(0, 1.0, &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 1}));
}

TEST(GridIndexTest, EpsBoundaryIsInclusive) {
  const auto pts = Points1D({0.0, 1.0});
  GridIndex index(pts, 1.0);
  std::vector<uint32_t> out;
  index.Neighbors(0, 1.0, &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(GridIndexTest, NegativeCoordinates) {
  std::vector<SnapshotPoint> pts{{0, -0.4, -0.4}, {1, 0.4, 0.4}, {2, -5, -5}};
  GridIndex index(pts, 2.0);
  std::vector<uint32_t> out;
  index.Neighbors(0, 2.0, &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 1}));
}

TEST(GridIndexTest, NeighborsOfArbitraryLocation) {
  const auto pts = Points1D({0.0, 10.0});
  GridIndex index(pts, 1.0);
  std::vector<uint32_t> out;
  index.NeighborsOf(9.5, 0.0, 1.0, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{1}));
}

std::vector<uint32_t> BruteForceNeighborsOf(
    const std::vector<SnapshotPoint>& pts, double x, double y, double eps) {
  std::vector<uint32_t> out;
  for (size_t j = 0; j < pts.size(); ++j) {
    const double dx = pts[j].x - x;
    const double dy = pts[j].y - y;
    if (dx * dx + dy * dy <= eps * eps) {
      out.push_back(static_cast<uint32_t>(j));
    }
  }
  return out;
}

// Property test for the CSR layout: region queries must match brute force
// over random point sets, eps values, and query locations — including a
// reused (rebuilt) index and an eps far below the coordinate spread, which
// exercises the cell cap.
TEST(GridIndexTest, RandomizedMatchesBruteForce) {
  GridIndex reused;  // rebuilt every round: exercises buffer reuse
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const size_t n = 1 + rng.NextInt(250);
    const double spread = rng.Uniform(1.0, 2000.0);
    std::vector<SnapshotPoint> pts;
    for (size_t i = 0; i < n; ++i) {
      pts.push_back(SnapshotPoint{static_cast<ObjectId>(i),
                                  rng.Uniform(-spread, spread),
                                  rng.Uniform(-spread, spread)});
    }
    const double eps_choices[] = {0.001, 0.9, 7.5, spread / 3.0, 3 * spread};
    const double eps = eps_choices[rng.NextInt(5)];
    reused.Build(pts, eps);
    EXPECT_EQ(reused.num_points(), n);

    for (size_t i = 0; i < std::min<size_t>(n, 40); ++i) {
      std::vector<uint32_t> got;
      reused.Neighbors(i, eps, &got);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, BruteForceNeighborsOf(pts, pts[i].x, pts[i].y, eps))
          << "seed=" << seed << " i=" << i << " eps=" << eps;
    }
    // Arbitrary query locations, including far outside the bounding box.
    for (int q = 0; q < 10; ++q) {
      const double x = rng.Uniform(-3 * spread, 3 * spread);
      const double y = rng.Uniform(-3 * spread, 3 * spread);
      std::vector<uint32_t> got;
      reused.NeighborsOf(x, y, eps, &got);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, BruteForceNeighborsOf(pts, x, y, eps))
          << "seed=" << seed << " query=(" << x << "," << y << ")";
    }
  }
}

std::vector<uint32_t> BruteForceRegion(const std::vector<SnapshotPoint>& pts,
                                       const Rect& rect) {
  std::vector<uint32_t> out;
  for (size_t j = 0; j < pts.size(); ++j) {
    if (rect.Contains(pts[j].x, pts[j].y)) {
      out.push_back(static_cast<uint32_t>(j));
    }
  }
  return out;
}

TEST(GridIndexTest, RegionBoundsAreInclusive) {
  const auto pts = Points1D({0.0, 1.0, 2.0, 3.0});
  GridIndex index(pts, 1.0);
  std::vector<uint32_t> out;
  index.Region(Rect{1.0, 0.0, 2.0, 0.0}, &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<uint32_t>{1, 2}));
}

TEST(GridIndexTest, RegionFarOutsideBoundingBoxIsEmpty) {
  const auto pts = Points1D({0.0, 1.0});
  GridIndex index(pts, 1.0);
  std::vector<uint32_t> out;
  index.Region(Rect{1e12, 1e12, 2e12, 2e12}, &out);
  EXPECT_TRUE(out.empty());
  index.Region(Rect{-2e12, -2e12, -1e12, -1e12}, &out);
  EXPECT_TRUE(out.empty());
  index.Region(Rect{}, &out);  // default rect is empty
  EXPECT_TRUE(out.empty());
}

TEST(GridIndexTest, RandomizedRegionMatchesBruteForce) {
  GridIndex reused;
  for (uint64_t seed = 100; seed <= 115; ++seed) {
    Rng rng(seed);
    const size_t n = 1 + rng.NextInt(250);
    const double spread = rng.Uniform(1.0, 2000.0);
    std::vector<SnapshotPoint> pts;
    for (size_t i = 0; i < n; ++i) {
      pts.push_back(SnapshotPoint{static_cast<ObjectId>(i),
                                  rng.Uniform(-spread, spread),
                                  rng.Uniform(-spread, spread)});
    }
    // The cell size the grid was built for must not matter for Region.
    reused.Build(pts, rng.Uniform(0.001, spread));
    for (int q = 0; q < 25; ++q) {
      const double x0 = rng.Uniform(-2 * spread, 2 * spread);
      const double y0 = rng.Uniform(-2 * spread, 2 * spread);
      const Rect rect{x0, y0, x0 + rng.Uniform(0.0, 2 * spread),
                      y0 + rng.Uniform(0.0, 2 * spread)};
      std::vector<uint32_t> got;
      reused.Region(rect, &got);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, BruteForceRegion(pts, rect))
          << "seed=" << seed << " rect=[" << rect.min_x << "," << rect.min_y
          << "," << rect.max_x << "," << rect.max_y << "]";
    }
  }
}

TEST(GridIndexTest, TinyEpsOnWideSpreadStaysLinear) {
  // 100 points spread over kilometres with eps in millimetres: the cell cap
  // must keep the grid small instead of allocating a bounding-box grid with
  // billions of cells.
  std::vector<SnapshotPoint> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back(SnapshotPoint{static_cast<ObjectId>(i), i * 1000.0,
                                (i % 10) * 2000.0});
  }
  pts.push_back(SnapshotPoint{100, 0.0, 0.0});  // duplicate of point 0
  GridIndex index(pts, 1e-3);
  std::vector<uint32_t> out;
  index.Neighbors(0, 1e-3, &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 100}));
}

TEST(GridIndexTest, DiagonalCellsCovered) {
  // Two points in diagonal cells, within eps of each other.
  std::vector<SnapshotPoint> pts{{0, 0.95, 0.95}, {1, 1.05, 1.05}};
  GridIndex index(pts, 1.0);
  std::vector<uint32_t> out;
  index.Neighbors(0, 1.0, &out);
  EXPECT_EQ(out.size(), 2u);
}

// ---------------------------------------------------------------------------
// DBSCAN
// ---------------------------------------------------------------------------

TEST(DbscanTest, EmptyInput) {
  EXPECT_TRUE(Dbscan({}, 1.0, 2).empty());
}

TEST(DbscanTest, SingleGroupClusters) {
  const auto pts = Points1D({0.0, 0.8, 1.6});
  const auto clusters = Dbscan(pts, 1.0, 2);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0], ObjectSet::Of({0, 1, 2}));
}

TEST(DbscanTest, TwoSeparatedGroups) {
  const auto pts = Points1D({0.0, 0.5, 100.0, 100.5});
  const auto clusters = Dbscan(pts, 1.0, 2);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], ObjectSet::Of({0, 1}));
  EXPECT_EQ(clusters[1], ObjectSet::Of({2, 3}));
}

TEST(DbscanTest, ChainConnectivity) {
  // A chain where only consecutive points are within eps: density-connected
  // into one cluster when every point is core.
  const auto pts = Points1D({0.0, 0.9, 1.8, 2.7, 3.6});
  const auto clusters = Dbscan(pts, 1.0, 2);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].size(), 5u);
}

TEST(DbscanTest, MinPtsCountsSelf) {
  // |NH(p, eps)| >= m includes p itself (Sec. 3.1): two mutual neighbours
  // with m = 2 are both core.
  const auto pts = Points1D({0.0, 0.5});
  EXPECT_EQ(Dbscan(pts, 1.0, 2).size(), 1u);
  // With m = 3, no core points -> no clusters.
  EXPECT_TRUE(Dbscan(pts, 1.0, 3).empty());
}

TEST(DbscanTest, NoisePointsExcluded) {
  const auto pts = Points1D({0.0, 0.5, 50.0});
  const auto clusters = Dbscan(pts, 1.0, 2);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_FALSE(clusters[0].Contains(2));
}

TEST(DbscanTest, BorderPointJoinsCluster) {
  // m = 3: points at 0, 0.5, 1.0 make 0.5 core; 1.4 is border (within eps
  // of the core at 1.0 only after expansion).
  const auto pts = Points1D({0.0, 0.5, 1.0, 1.9});
  const auto clusters = Dbscan(pts, 1.0, 3);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_TRUE(clusters[0].Contains(3));  // border point included
}

TEST(DbscanTest, DuplicatePositionsCluster) {
  std::vector<SnapshotPoint> pts{{0, 5, 5}, {1, 5, 5}, {2, 5, 5}};
  const auto clusters = Dbscan(pts, 0.5, 3);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].size(), 3u);
}

TEST(DbscanTest, SubsetRestrictsClustering) {
  // Objects 0,1,2 are chained through 1; removing 1 disconnects them.
  const auto pts = Points1D({0.0, 0.9, 1.8});
  const auto all = Dbscan(pts, 1.0, 2);
  ASSERT_EQ(all.size(), 1u);
  const auto sub = DbscanSubset(pts, ObjectSet::Of({0, 2}), 1.0, 2);
  EXPECT_TRUE(sub.empty());  // 0 and 2 are 1.8 apart
}

TEST(DbscanTest, LabelledOutputConsistentWithClusters) {
  const auto pts = Points1D({0.0, 0.5, 10.0, 10.5, 50.0});
  const DbscanLabels labels = DbscanLabelled(pts, 1.0, 2);
  EXPECT_EQ(labels.num_clusters, 2);
  EXPECT_EQ(labels.label[0], labels.label[1]);
  EXPECT_EQ(labels.label[2], labels.label[3]);
  EXPECT_NE(labels.label[0], labels.label[2]);
  EXPECT_EQ(labels.label[4], -1);  // noise
}

TEST(DbscanTest, ClustersAreDisjoint) {
  // Randomish blob: every object must appear in at most one cluster.
  std::vector<SnapshotPoint> pts;
  for (int i = 0; i < 40; ++i) {
    pts.push_back(SnapshotPoint{static_cast<ObjectId>(i),
                                (i * 37 % 19) * 0.7, (i * 53 % 23) * 0.7});
  }
  const auto clusters = Dbscan(pts, 1.0, 3);
  std::vector<ObjectId> seen;
  for (const auto& c : clusters) {
    for (ObjectId oid : c) seen.push_back(oid);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(DbscanTest, LargeEpsMergesEverything) {
  const auto pts = Points1D({0.0, 3.0, 6.0, 9.0});
  const auto clusters = Dbscan(pts, 100.0, 2);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].size(), 4u);
}

}  // namespace
}  // namespace k2
