// Fig. 8i — execution time of the k2-LSMT phases (HWMT, merge, extend-left,
// extend-right, validation) per k. Paper: HWMT dominates, extension second,
// the rest negligible.
#include "bench/harness.h"

using namespace k2;
using namespace k2::bench;

int main(int argc, char** argv) {
  ParseArgs(argc, argv);
  PrintBanner("Fig 8i: k2-LSMT phase breakdown (seconds)");
  const Dataset& data = Trucks();
  std::cout << data.DebugString() << "\n\n";
  auto lsmt = BuildStore(StoreKind::kLsm, data, "fig8i");

  TablePrinter table({"k", "benchmark", "candidates", "HWMT", "merge",
                      "extend-right", "extend-left", "validation"});
  for (int k : {200, 400, 600, 800, 1000, 1200}) {
    K2HopStats stats;
    RunK2(lsmt.get(), {3, k, 30.0}, &stats);
    table.AddRow({std::to_string(k), Fmt(stats.phases.Get("benchmark")),
                  Fmt(stats.phases.Get("candidates")),
                  Fmt(stats.phases.Get("HWMT")), Fmt(stats.phases.Get("merge")),
                  Fmt(stats.phases.Get("extend-right")),
                  Fmt(stats.phases.Get("extend-left")),
                  Fmt(stats.phases.Get("validation"))});
  }
  table.Print();
  return 0;
}
