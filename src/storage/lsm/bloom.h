// Bloom filter over packed (t, oid) keys; one filter per SSTable lets point
// reads skip tables that cannot contain the key (counted in IoStats as
// bloom_negative).
#ifndef K2_STORAGE_LSM_BLOOM_H_
#define K2_STORAGE_LSM_BLOOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace k2::lsm {

class BloomFilter {
 public:
  /// Block geometry of the cache-line-blocked layout: all probes of one key
  /// stay inside a single 512-bit (64-byte) block.
  static constexpr size_t kBlockBits = 512;
  static constexpr size_t kBlockWords = kBlockBits / 64;

  /// Flag OR-ed into the serialized num_hashes word (see num_hashes_for_disk)
  /// marking the cache-line-blocked probe layout. Filters persisted before
  /// the blocked layout existed carry a plain hash count and keep the flat
  /// probe order on load.
  static constexpr uint32_t kBlockedLayoutFlag = 0x80000000u;

  BloomFilter() = default;

  /// Sizes the filter for `expected_keys` at `bits_per_key` (default 10
  /// bits/key ~ 1% false positives). Always produces the blocked layout.
  explicit BloomFilter(size_t expected_keys, int bits_per_key = 10);

  void Add(uint64_t key);
  bool MayContain(uint64_t key) const;

  /// Serialized form: the raw word array (for embedding in SSTable files).
  const std::vector<uint64_t>& words() const { return words_; }
  int num_hashes() const { return num_hashes_; }
  /// num_hashes with the layout flag, as written to disk.
  uint32_t num_hashes_for_disk() const {
    return static_cast<uint32_t>(num_hashes_) |
           (blocked_ ? kBlockedLayoutFlag : 0);
  }

  /// Rebuilds from a serialized word array; `num_hashes_word` is the raw
  /// on-disk value, which carries the layout flag for blocked filters.
  static BloomFilter FromWords(std::vector<uint64_t> words,
                               uint32_t num_hashes_word);

  size_t num_bits() const { return words_.size() * 64; }

 private:
  static uint64_t Mix(uint64_t key);

  std::vector<uint64_t> words_;
  int num_hashes_ = 1;
  bool blocked_ = false;
};

}  // namespace k2::lsm

#endif  // K2_STORAGE_LSM_BLOOM_H_
