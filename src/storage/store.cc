#include "storage/store.h"

#include <filesystem>
#include <sstream>

#include "storage/bptree_store.h"
#include "storage/file_store.h"
#include "storage/lsm_store.h"
#include "storage/memory_store.h"

namespace k2 {

namespace {

// out[i] op= in[i] with the shorter vector padded with zeros: per-tier
// counters from stores of different depths must stay comparable.
template <typename Op>
void ZipTiers(std::vector<uint64_t>* out, const std::vector<uint64_t>& in,
              Op op) {
  if (out->size() < in.size()) out->resize(in.size(), 0);
  for (size_t i = 0; i < in.size(); ++i) (*out)[i] = op((*out)[i], in[i]);
}

void AppendTierVector(std::ostringstream& os, const char* label,
                      const std::vector<uint64_t>& v) {
  os << ", " << label << "=[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) os << ", ";
    os << v[i];
  }
  os << "]";
}

}  // namespace

std::string IoStats::DebugString() const {
  std::ostringstream os;
  os << "IoStats{scans=" << snapshot_scans
     << ", scanned_points=" << scanned_points
     << ", point_queries=" << point_queries << ", point_hits=" << point_hits
     << ", bytes_read=" << bytes_read << ", seeks=" << seeks
     << ", pages_read=" << pages_read << ", pages_cached=" << pages_cached
     << ", bloom_negative=" << bloom_negative
     << ", sstables_touched=" << sstables_touched;
  if (!tier_sstables_touched.empty()) {
    AppendTierVector(os, "tier_touched", tier_sstables_touched);
  }
  if (!tier_bloom_skipped.empty()) {
    AppendTierVector(os, "tier_bloom_skipped", tier_bloom_skipped);
  }
  os << "}";
  return os.str();
}

IoStats IoStats::Delta(const IoStats& after, const IoStats& before) {
  IoStats d;
  d.snapshot_scans = after.snapshot_scans - before.snapshot_scans;
  d.scanned_points = after.scanned_points - before.scanned_points;
  d.point_queries = after.point_queries - before.point_queries;
  d.point_hits = after.point_hits - before.point_hits;
  d.bytes_read = after.bytes_read - before.bytes_read;
  d.seeks = after.seeks - before.seeks;
  d.pages_read = after.pages_read - before.pages_read;
  d.pages_cached = after.pages_cached - before.pages_cached;
  d.bloom_negative = after.bloom_negative - before.bloom_negative;
  d.sstables_touched = after.sstables_touched - before.sstables_touched;
  d.tier_sstables_touched = after.tier_sstables_touched;
  ZipTiers(&d.tier_sstables_touched, before.tier_sstables_touched,
           [](uint64_t a, uint64_t b) { return a - b; });
  d.tier_bloom_skipped = after.tier_bloom_skipped;
  ZipTiers(&d.tier_bloom_skipped, before.tier_bloom_skipped,
           [](uint64_t a, uint64_t b) { return a - b; });
  return d;
}

void IoStats::Accumulate(const IoStats& other) {
  snapshot_scans += other.snapshot_scans;
  scanned_points += other.scanned_points;
  point_queries += other.point_queries;
  point_hits += other.point_hits;
  bytes_read += other.bytes_read;
  seeks += other.seeks;
  pages_read += other.pages_read;
  pages_cached += other.pages_cached;
  bloom_negative += other.bloom_negative;
  sstables_touched += other.sstables_touched;
  ZipTiers(&tier_sstables_touched, other.tier_sstables_touched,
           [](uint64_t a, uint64_t b) { return a + b; });
  ZipTiers(&tier_bloom_skipped, other.tier_bloom_skipped,
           [](uint64_t a, uint64_t b) { return a + b; });
}

double PruningRatio(const IoStats& io, uint64_t total_points) {
  if (total_points == 0) return 0.0;
  const double processed = static_cast<double>(io.points_read());
  return processed >= static_cast<double>(total_points)
             ? 0.0
             : 1.0 - processed / static_cast<double>(total_points);
}

Status Store::Append(Timestamp t, const std::vector<SnapshotPoint>& points) {
  (void)t;
  (void)points;
  return Status::NotImplemented("Append is not supported by " + name());
}

namespace {

/// CreateReadSnapshot fallback: a read-only delegate that serializes every
/// access through the parent's fallback mutex. Correct for any engine;
/// concurrent readers make no progress against each other, which is exactly
/// why the built-in engines override the hook with native handles. IO is
/// counted by the parent (inside the locked delegate call); this wrapper's
/// own io_stats() stay zero so callers never double-count.
class SerializedSnapshotStore final : public Store {
 public:
  SerializedSnapshotStore(Store* parent, Mutex* mu)
      : parent_(parent), mu_(mu) {}

  std::string name() const override { return parent_->name(); }

  Status BulkLoad(const Dataset&) override { return ReadOnly(); }
  Status Append(Timestamp, const std::vector<SnapshotPoint>&) override {
    return ReadOnly();
  }

  Status ScanTimestamp(Timestamp t, std::vector<SnapshotPoint>* out) override {
    MutexLock lock(*mu_);
    return parent_->ScanTimestamp(t, out);
  }

  Status GetPoints(Timestamp t, const ObjectSet& objects,
                   std::vector<SnapshotPoint>* out) override {
    MutexLock lock(*mu_);
    return parent_->GetPoints(t, objects, out);
  }

  // Metadata accessors are const on the parent and no writer may be active
  // while snapshots exist (the snapshot contract), so no lock is needed.
  TimeRange time_range() const override { return parent_->time_range(); }
  const std::vector<Timestamp>& timestamps() const override {
    return parent_->timestamps();
  }
  uint64_t num_points() const override { return parent_->num_points(); }

 private:
  Status ReadOnly() const {
    return Status::Invalid("read snapshot of " + parent_->name() +
                           " is read-only");
  }

  Store* parent_;
  Mutex* mu_;
};

}  // namespace

Result<std::unique_ptr<Store>> Store::CreateReadSnapshot() {
  return std::unique_ptr<Store>(
      new SerializedSnapshotStore(this, &fallback_snapshot_mu_));
}

Status Store::CheckAppend(Timestamp t,
                          const std::vector<SnapshotPoint>& points) const {
  if (num_points() > 0 && t <= time_range().end) {
    return Status::Invalid("Append tick " + std::to_string(t) +
                           " is not past the stored range end " +
                           std::to_string(time_range().end));
  }
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].oid <= points[i - 1].oid) {
      return Status::Invalid(
          "Append points must be sorted by oid and duplicate-free");
    }
  }
  return Status::OK();
}

const char* StoreKindName(StoreKind kind) {
  switch (kind) {
    case StoreKind::kMemory:
      return "memory";
    case StoreKind::kFile:
      return "file";
    case StoreKind::kBPlusTree:
      return "rdbms";
    case StoreKind::kLsm:
      return "lsmt";
  }
  return "unknown";
}

Result<std::unique_ptr<Store>> CreateStore(StoreKind kind,
                                           const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec && kind != StoreKind::kMemory) {
    return Status::IOError("cannot create directory " + dir + ": " +
                           ec.message());
  }
  switch (kind) {
    case StoreKind::kMemory:
      return std::unique_ptr<Store>(new MemoryStore());
    case StoreKind::kFile:
      return std::unique_ptr<Store>(new FileStore(dir + "/data.bin"));
    case StoreKind::kBPlusTree:
      return std::unique_ptr<Store>(new BPlusTreeStore(dir + "/tree.db"));
    case StoreKind::kLsm:
      return std::unique_ptr<Store>(new LsmStore(dir + "/lsm"));
  }
  return Status::Invalid("unknown store kind");
}

}  // namespace k2
