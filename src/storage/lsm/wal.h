// Write-ahead log for the LSM store. Records are length-framed and
// checksummed:
//
//   [uint32 crc32c(payload)][uint32 payload_len][payload bytes]
//
// The writer buffers frames in memory and hands them to the Env in large
// appends (on Sync, Close, or when the buffer passes a threshold), so a
// crash can only tear the tail of the file. Replay walks frames from the
// start and stops at the first frame that is short, out of bounds, or fails
// its checksum — recovering exactly the longest valid record prefix, which
// is exactly the set of records that were durable (or luckily persisted)
// when the process died.
#ifndef K2_STORAGE_LSM_WAL_H_
#define K2_STORAGE_LSM_WAL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/env.h"
#include "common/status.h"

namespace k2::lsm {

/// Policy knobs of the WAL write path.
struct WalOptions {
  /// Soft size cap of one WAL segment file, in framed bytes. 0 disables
  /// size-based rotation (segments then rotate only with the memtable).
  /// The cap is checked by the store after each append — a segment may
  /// exceed it by one batch, never more.
  size_t segment_bytes = 0;
};

class WalWriter {
 public:
  static Result<std::unique_ptr<WalWriter>> Create(Env* env,
                                                   const std::string& path);

  /// Frames `payload` and queues it; durable only after the next Sync().
  Status AddRecord(const void* payload, size_t n);

  /// Framed bytes accepted so far (buffered + flushed) — the size this
  /// segment file will have once drained. Drives size-based rotation.
  size_t bytes_written() const { return bytes_written_; }

  /// Flushes queued frames to the Env and fdatasyncs the file: every record
  /// added so far survives a crash once this returns OK.
  Status Sync();

  /// Flushes queued frames and closes the file WITHOUT syncing — records
  /// since the last Sync() may still be lost to a crash.
  Status Close();

  const std::string& path() const { return file_->path(); }

 private:
  explicit WalWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  /// Buffered frames below this stay in memory; Sync/Close always drain.
  static constexpr size_t kFlushThreshold = 64 * 1024;

  Status FlushBuffer();

  std::unique_ptr<WritableFile> file_;
  std::string buffer_;
  size_t bytes_written_ = 0;
};

/// Replays the longest valid record prefix of the WAL at `path`, invoking
/// `fn` once per record. A torn or corrupt tail is NOT an error — replay
/// stops there and reports how many records were delivered. A missing file
/// or unreadable file is an IOError.
Result<size_t> ReplayWal(
    Env* env, const std::string& path,
    const std::function<void(const char* payload, size_t n)>& fn);

}  // namespace k2::lsm

#endif  // K2_STORAGE_LSM_WAL_H_
