// Wall-clock timing utilities: a simple stopwatch and a named phase timer
// used to reproduce the per-phase breakdown of Fig. 8i.
#ifndef K2_COMMON_STOPWATCH_H_
#define K2_COMMON_STOPWATCH_H_

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace k2 {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates wall time into named phases; phases keep insertion order.
class PhaseTimer {
 public:
  /// Adds `seconds` to phase `name`, creating it on first use.
  void Add(const std::string& name, double seconds) {
    for (auto& [n, s] : phases_) {
      if (n == name) {
        s += seconds;
        return;
      }
    }
    phases_.emplace_back(name, seconds);
  }

  /// Runs `fn` and charges its wall time to phase `name`.
  template <typename Fn>
  auto Time(const std::string& name, Fn&& fn) {
    Stopwatch sw;
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      Add(name, sw.ElapsedSeconds());
    } else {
      auto result = fn();
      Add(name, sw.ElapsedSeconds());
      return result;
    }
  }

  double Get(const std::string& name) const {
    for (const auto& [n, s] : phases_) {
      if (n == name) return s;
    }
    return 0.0;
  }

  double Total() const {
    double t = 0.0;
    for (const auto& [n, s] : phases_) t += s;
    return t;
  }

  const std::vector<std::pair<std::string, double>>& phases() const {
    return phases_;
  }

  void Clear() { phases_.clear(); }

 private:
  std::vector<std::pair<std::string, double>> phases_;
};

}  // namespace k2

#endif  // K2_COMMON_STOPWATCH_H_
