// Exhaustive crash-recovery differential matrix (slow tier). For every
// fixture family the streaming differential suite uses — random walks,
// gapped streams, Brinkhoff — the workload is killed at EVERY durability
// operation, under every fault mode (hard crash, torn write, transient op
// failure), then reopened; the contract is that no WAL-durable tick is ever
// lost, the recovered state is an intact prefix, and after re-ingesting the
// lost suffix MineK2Hop returns output byte-identical to the uninterrupted
// run. A randomized background-compaction sweep covers the same matrix with
// the worker thread racing the injected faults.
#include <vector>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/rng.h"
#include "core/k2hop.h"
#include "gen/brinkhoff.h"
#include "gen/synthetic.h"
#include "tests/lsm_crash_util.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::CountCleanOps;
using ::k2::testing::CrashFixture;
using ::k2::testing::MakeMemStore;
using ::k2::testing::RunCrashIteration;
using FaultMode = FaultInjectionEnv::FaultMode;

constexpr FaultMode kAllModes[] = {FaultMode::kCrash, FaultMode::kTornWrite,
                                   FaultMode::kFailOp};

std::vector<Convoy> Reference(const CrashFixture& fix) {
  auto store = MakeMemStore(fix.data);
  auto result = MineK2Hop(store.get(), fix.params);
  K2_CHECK(result.ok());
  return result.MoveValue();
}

/// Drops ticks with t % modulus == 1 — the gap idiom of the streaming
/// differential tests (objects absent, benchmarks landing in holes).
Dataset PunchGaps(const Dataset& data, int modulus) {
  DatasetBuilder builder;
  for (const PointRecord& rec : data.records()) {
    if (rec.t % modulus == 1) continue;
    builder.Add(rec.t, rec.oid, rec.x, rec.y);
  }
  return builder.Build();
}

CrashFixture WalkFixture() {
  RandomWalkSpec spec;
  spec.seed = 31;
  spec.num_objects = 16;
  spec.num_ticks = 44;
  spec.area = 60.0;
  spec.step = 60.0 / 8.0;
  return {"walk", GenerateRandomWalk(spec), MiningParams{3, 4, 9.0}};
}

CrashFixture GappedFixture() {
  RandomWalkSpec spec;
  spec.seed = 42;
  spec.num_objects = 14;
  spec.num_ticks = 40;
  spec.area = 50.0;
  spec.step = 6.0;
  return {"gapped", PunchGaps(GenerateRandomWalk(spec), 5),
          MiningParams{2, 5, 9.0}};
}

CrashFixture BrinkhoffFixture() {
  BrinkhoffParams params;
  params.grid.nx = 6;
  params.grid.ny = 6;
  params.grid.spacing = 500.0;
  params.max_time = 60;
  params.obj_begin = 36;
  params.obj_time = 1;
  params.seed = 9;
  return {"brinkhoff", GenerateBrinkhoff(params), MiningParams{3, 10, 60.0}};
}

/// Every failpoint × every fault mode, deterministic synchronous jobs.
void FullSweep(const CrashFixture& fix) {
  const std::vector<Convoy> expected = Reference(fix);
  const uint64_t total = CountCleanOps(fix, fix.name, /*background=*/false);
  ASSERT_GT(total, 20u) << "fixture too small to exercise flush/compaction";
  for (FaultMode mode : kAllModes) {
    // total + 2 covers "fault armed but never reached" (clean completion).
    for (uint64_t fp = 0; fp <= total + 1; ++fp) {
      RunCrashIteration(fix, mode, fp, expected, /*background=*/false,
                        fix.name + "_sweep");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(LsmCrashDifferentialTest, EveryFailpointRandomWalk) {
  FullSweep(WalkFixture());
}

TEST(LsmCrashDifferentialTest, EveryFailpointGappedStream) {
  FullSweep(GappedFixture());
}

TEST(LsmCrashDifferentialTest, EveryFailpointBrinkhoff) {
  FullSweep(BrinkhoffFixture());
}

// Background compaction active: the injected fault can land on either
// thread, at rotation backpressure, or inside an in-flight flush. Failpoints
// are sampled (the op schedule is nondeterministic anyway); the recovery
// contract must hold regardless of which thread hits the fault.
TEST(LsmCrashDifferentialTest, BackgroundWorkerRandomFailpoints) {
  const CrashFixture fixtures[] = {WalkFixture(), GappedFixture()};
  Rng rng(20260807);
  for (const CrashFixture& fix : fixtures) {
    const std::vector<Convoy> expected = Reference(fix);
    const uint64_t total =
        CountCleanOps(fix, fix.name + "_bg", /*background=*/true);
    for (int i = 0; i < 25; ++i) {
      const auto mode = kAllModes[rng.NextInt(3)];
      const uint64_t fp = rng.NextInt(total + 2);
      RunCrashIteration(fix, mode, fp, expected, /*background=*/true,
                        fix.name + "_bg");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace k2
