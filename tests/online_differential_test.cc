// Streaming-vs-batch differential: ingesting a dataset tick by tick through
// OnlineK2HopMiner and then calling Finalize() must produce a convoy set
// IDENTICAL (same vector, canonical order) to batch MineK2Hop over the
// bulk-loaded data with the same parameters — on every storage engine, on
// adversarial dense random walks, on datasets whose length is not a
// multiple of ⌊k/2⌋, on tick streams with gaps, and on Brinkhoff data.
#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "baselines/gold.h"
#include "core/k2hop.h"
#include "core/online.h"
#include "gen/brinkhoff.h"
#include "gen/synthetic.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::MakeMemStore;
using ::k2::testing::ScratchDir;
using ::k2::testing::Str;


std::vector<Convoy> BatchMine(const Dataset& data, const MiningParams& params) {
  auto store = MakeMemStore(data);
  auto result = MineK2Hop(store.get(), params);
  K2_CHECK(result.ok());
  return result.MoveValue();
}

/// Streams `data` into a fresh store of `kind` and finalizes; checks the
/// exact batch equality and returns the miner's closed-convoy count.
void ExpectStreamingMatchesBatch(const Dataset& data,
                                 const MiningParams& params, StoreKind kind,
                                 const std::string& tag) {
  const std::vector<Convoy> expected = BatchMine(data, params);
  auto store_result = CreateStore(kind, ScratchDir("online_diff_" + tag) + "/" +
                                            StoreKindName(kind));
  ASSERT_TRUE(store_result.ok()) << store_result.status().ToString();
  std::unique_ptr<Store> store = store_result.MoveValue();

  OnlineK2HopMiner miner(store.get(), params);
  for (Timestamp t : data.timestamps()) {
    ASSERT_TRUE(miner.AppendTick(t, SnapshotPoints(data, t)).ok()) << "tick " << t;
  }
  auto streamed = miner.Finalize();
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  // Byte-exact: both sides are in canonical sorted order.
  EXPECT_EQ(streamed.value(), expected)
      << "engine: " << StoreKindName(kind) << "\nstreamed:\n"
      << Str(streamed.value()) << "batch:\n"
      << Str(expected);
}

struct StreamCase {
  uint64_t seed;
  int num_objects;
  int num_ticks;
  double area;
  int m;
  int k;
  double eps;
  int gap_modulus;  // 0 = no gaps; else drop ticks with t % gap_modulus == 1
};

std::string CaseName(const ::testing::TestParamInfo<StreamCase>& info) {
  const StreamCase& c = info.param;
  return "seed" + std::to_string(c.seed) + "_n" +
         std::to_string(c.num_objects) + "_t" + std::to_string(c.num_ticks) +
         "_m" + std::to_string(c.m) + "_k" + std::to_string(c.k) +
         (c.gap_modulus > 0 ? "_gap" + std::to_string(c.gap_modulus) : "");
}

class OnlineDifferentialTest : public ::testing::TestWithParam<StreamCase> {
 protected:
  Dataset MakeData() const {
    const StreamCase& c = GetParam();
    RandomWalkSpec spec;
    spec.seed = c.seed;
    spec.num_objects = c.num_objects;
    spec.num_ticks = c.num_ticks;
    spec.area = c.area;
    spec.step = c.area / 8.0;
    Dataset walk = GenerateRandomWalk(spec);
    if (c.gap_modulus <= 0) return walk;
    // Punch gaps into the tick stream: drop whole ticks, as if no object
    // reported during them.
    DatasetBuilder builder;
    for (const PointRecord& rec : walk.records()) {
      if (rec.t % c.gap_modulus == 1) continue;
      builder.Add(rec);
    }
    return builder.Build();
  }
  MiningParams Params() const {
    const StreamCase& c = GetParam();
    return MiningParams{c.m, c.k, c.eps};
  }
};

TEST_P(OnlineDifferentialTest, StreamingMatchesBatchOnEveryStore) {
  const Dataset data = MakeData();
  const MiningParams params = Params();
  const std::string tag = CaseName(::testing::TestParamInfo<StreamCase>(
      GetParam(), 0));
  for (StoreKind kind : {StoreKind::kMemory, StoreKind::kFile,
                         StoreKind::kBPlusTree, StoreKind::kLsm}) {
    ExpectStreamingMatchesBatch(data, params, kind, tag);
  }
}

TEST_P(OnlineDifferentialTest, StreamingMatchesGoldFullyConnected) {
  // Anchor the streaming path to the brute-force oracle as well, so a bug
  // shared by both miners cannot hide behind the batch comparison.
  const Dataset data = MakeData();
  const MiningParams params = Params();
  MemoryStore store;
  OnlineK2HopMiner miner(&store, params);
  for (Timestamp t : data.timestamps()) {
    ASSERT_TRUE(miner.AppendTick(t, SnapshotPoints(data, t)).ok());
  }
  auto streamed = miner.Finalize();
  ASSERT_TRUE(streamed.ok());
  EXPECT_SAME_CONVOYS(streamed.value(),
                      GoldFullyConnectedConvoys(data, params));
}

// Dense walks: chance convoys, splits, merges — the adversarial input.
INSTANTIATE_TEST_SUITE_P(
    DenseRandomWalks, OnlineDifferentialTest,
    ::testing::Values(
        StreamCase{1, 8, 14, 40.0, 2, 3, 8.0, 0},
        StreamCase{2, 8, 14, 40.0, 2, 4, 8.0, 0},
        StreamCase{3, 9, 12, 50.0, 3, 3, 10.0, 0},
        StreamCase{4, 10, 16, 60.0, 2, 5, 9.0, 0},
        StreamCase{5, 10, 10, 45.0, 3, 4, 12.0, 0},
        StreamCase{6, 7, 20, 35.0, 2, 6, 7.0, 0},
        StreamCase{7, 12, 12, 70.0, 2, 4, 10.0, 0},
        StreamCase{8, 12, 15, 55.0, 3, 5, 11.0, 0}),
    CaseName);

// Tick counts that are not multiples of ⌊k/2⌋ leave a tail after the last
// benchmark point; wide hop-windows stress suspended walks.
INSTANTIATE_TEST_SUITE_P(
    RaggedLengthsAndWideWindows, OnlineDifferentialTest,
    ::testing::Values(
        StreamCase{31, 8, 23, 45.0, 2, 10, 8.0, 0},
        StreamCase{32, 8, 29, 45.0, 2, 12, 8.0, 0},
        StreamCase{33, 10, 25, 55.0, 3, 9, 10.0, 0},
        StreamCase{34, 9, 22, 50.0, 2, 7, 9.0, 0},
        StreamCase{35, 10, 27, 50.0, 2, 11, 9.0, 0}),
    CaseName);

// Gapped tick streams: whole ticks missing from the data.
INSTANTIATE_TEST_SUITE_P(
    GappedStreams, OnlineDifferentialTest,
    ::testing::Values(
        StreamCase{41, 8, 20, 40.0, 2, 4, 8.0, 5},
        StreamCase{42, 10, 24, 50.0, 2, 5, 9.0, 7},
        StreamCase{43, 9, 26, 45.0, 3, 6, 10.0, 4},
        StreamCase{44, 8, 30, 40.0, 2, 9, 8.0, 6}),
    CaseName);

// ---------------------------------------------------------------------------
// Brinkhoff workload (network-based movement, objects appearing over time)
// ---------------------------------------------------------------------------

TEST(OnlineBrinkhoffTest, StreamingMatchesBatchOnMemoryAndLsm) {
  BrinkhoffParams params;
  params.grid.nx = 6;
  params.grid.ny = 6;
  params.grid.spacing = 500.0;
  params.max_time = 120;
  params.obj_begin = 60;
  params.obj_time = 1;
  params.seed = 9;
  const Dataset data = GenerateBrinkhoff(params);
  ASSERT_GT(data.num_points(), 0u);
  const MiningParams mining{3, 10, 60.0};
  for (StoreKind kind : {StoreKind::kMemory, StoreKind::kLsm}) {
    ExpectStreamingMatchesBatch(data, mining, kind, "brinkhoff");
  }
}

// ---------------------------------------------------------------------------
// Planted ground truth: the closed/open split is visible in the stream
// ---------------------------------------------------------------------------

TEST(OnlinePlantedTest, PlantedConvoysAreRecoveredAndEagerlyClosed) {
  PlantedConvoySpec spec;
  spec.num_noise_objects = 15;
  spec.num_ticks = 60;
  spec.seed = 5;
  // Group 0 ends mid-stream (closed eagerly); group 1 runs to the end.
  spec.groups.push_back(PlantedGroup{4, 5, 25, 8.0});
  spec.groups.push_back(PlantedGroup{3, 30, 59, 8.0});
  const Dataset data = GeneratePlantedConvoys(spec);
  const MiningParams params{3, 12, 3.0};

  MemoryStore store;
  OnlineK2HopMiner miner(&store, params);
  for (Timestamp t : data.timestamps()) {
    ASSERT_TRUE(miner.AppendTick(t, SnapshotPoints(data, t)).ok());
  }
  // The first planted group died at t=25 and the stream ran long past it:
  // its convoy must already be closed before Finalize().
  const std::vector<Convoy>& closed = miner.closed_convoys();
  const Convoy group0(ObjectSet::Of({0, 1, 2, 3}), 5, 25);
  EXPECT_NE(std::find(closed.begin(), closed.end(), group0), closed.end())
      << Str(closed);

  auto streamed = miner.Finalize();
  ASSERT_TRUE(streamed.ok());
  EXPECT_GT(miner.stats().open_convoys, 0u);  // group 1 was alive at the end
  EXPECT_EQ(streamed.value(), BatchMine(data, params));
  // Both planted groups are in the final answer.
  const Convoy group1(ObjectSet::Of({4, 5, 6}), 30, 59);
  EXPECT_NE(std::find(streamed.value().begin(), streamed.value().end(),
                      group0),
            streamed.value().end());
  EXPECT_NE(std::find(streamed.value().begin(), streamed.value().end(),
                      group1),
            streamed.value().end());
}

}  // namespace
}  // namespace k2
