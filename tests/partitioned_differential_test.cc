// Partitioned-vs-batch differential: mining a store through
// PartitionedK2HopMiner must produce a convoy set IDENTICAL (same vector,
// canonical order) to batch MineK2Hop with the same parameters — for every
// storage engine, every shard count in {1, 2, 3, 7} plus a prime count vs.
// k, on adversarial dense random walks, gapped tick streams, and Brinkhoff
// data. A gold-oracle anchor keeps a shared batch/partitioned bug from
// hiding behind the mutual comparison.
#include <memory>

#include <gtest/gtest.h>

#include "baselines/gold.h"
#include "core/partition.h"
#include "gen/brinkhoff.h"
#include "gen/synthetic.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::MakeMemStore;
using ::k2::testing::ScratchDir;
using ::k2::testing::Str;

std::vector<Convoy> BatchMine(const Dataset& data, const MiningParams& params) {
  auto store = MakeMemStore(data);
  auto result = MineK2Hop(store.get(), params);
  K2_CHECK(result.ok());
  return result.MoveValue();
}

/// Bulk-loads `data` into a fresh store of `kind` and asserts exact batch
/// equality for every shard count (the store is read-only during mining,
/// so all shard counts run against the same instance).
void ExpectPartitionedMatchesBatch(const Dataset& data,
                                   const MiningParams& params, StoreKind kind,
                                   const std::string& tag,
                                   const std::vector<int>& shard_counts) {
  const std::vector<Convoy> expected = BatchMine(data, params);
  auto store_result = CreateStore(
      kind, ScratchDir("part_diff_" + tag) + "/" + StoreKindName(kind));
  ASSERT_TRUE(store_result.ok()) << store_result.status().ToString();
  std::unique_ptr<Store> store = store_result.MoveValue();
  ASSERT_TRUE(store->BulkLoad(data).ok());

  for (int shards : shard_counts) {
    PartitionedK2HopOptions options;
    options.num_shards = shards;
    options.num_threads = shards > 1 ? 3 : 1;  // exercise the pool path
    auto mined = MinePartitionedK2Hop(store.get(), params, options);
    ASSERT_TRUE(mined.ok()) << mined.status().ToString();
    // Byte-exact: both sides are in canonical sorted order.
    EXPECT_EQ(mined.value(), expected)
        << "engine: " << StoreKindName(kind) << " shards: " << shards
        << "\npartitioned:\n"
        << Str(mined.value()) << "batch:\n"
        << Str(expected);
  }
}

struct PartitionCase {
  uint64_t seed;
  int num_objects;
  int num_ticks;
  double area;
  int m;
  int k;
  double eps;
  int gap_modulus;  // 0 = no gaps; else drop ticks with t % gap_modulus == 1
};

std::string CaseName(const ::testing::TestParamInfo<PartitionCase>& info) {
  const PartitionCase& c = info.param;
  return "seed" + std::to_string(c.seed) + "_n" +
         std::to_string(c.num_objects) + "_t" + std::to_string(c.num_ticks) +
         "_m" + std::to_string(c.m) + "_k" + std::to_string(c.k) +
         (c.gap_modulus > 0 ? "_gap" + std::to_string(c.gap_modulus) : "");
}

class PartitionedDifferentialTest
    : public ::testing::TestWithParam<PartitionCase> {
 protected:
  Dataset MakeData() const {
    const PartitionCase& c = GetParam();
    RandomWalkSpec spec;
    spec.seed = c.seed;
    spec.num_objects = c.num_objects;
    spec.num_ticks = c.num_ticks;
    spec.area = c.area;
    spec.step = c.area / 8.0;
    Dataset walk = GenerateRandomWalk(spec);
    if (c.gap_modulus <= 0) return walk;
    DatasetBuilder builder;
    for (const PointRecord& rec : walk.records()) {
      if (rec.t % c.gap_modulus == 1) continue;
      builder.Add(rec);
    }
    return builder.Build();
  }
  MiningParams Params() const {
    const PartitionCase& c = GetParam();
    return MiningParams{c.m, c.k, c.eps};
  }
};

TEST_P(PartitionedDifferentialTest, MatchesBatchOnEveryStore) {
  const Dataset data = MakeData();
  const MiningParams params = Params();
  const std::string tag =
      CaseName(::testing::TestParamInfo<PartitionCase>(GetParam(), 0));
  for (StoreKind kind : {StoreKind::kMemory, StoreKind::kFile,
                         StoreKind::kBPlusTree, StoreKind::kLsm}) {
    ExpectPartitionedMatchesBatch(data, params, kind, tag, {1, 2, 3, 7});
  }
}

TEST_P(PartitionedDifferentialTest, MatchesGoldFullyConnected) {
  // Anchor to the brute-force oracle as well, with a prime shard count
  // chosen to be coprime with every k in the sweep (prime-vs-k seams).
  const Dataset data = MakeData();
  const MiningParams params = Params();
  auto store = MakeMemStore(data);
  PartitionedK2HopOptions options;
  options.num_shards = 5;
  options.num_threads = 2;
  auto mined = MinePartitionedK2Hop(store.get(), params, options);
  ASSERT_TRUE(mined.ok());
  EXPECT_SAME_CONVOYS(mined.value(), GoldFullyConnectedConvoys(data, params));
}

// Dense walks: chance convoys, splits, merges — the adversarial input.
INSTANTIATE_TEST_SUITE_P(
    DenseRandomWalks, PartitionedDifferentialTest,
    ::testing::Values(
        PartitionCase{1, 8, 14, 40.0, 2, 3, 8.0, 0},
        PartitionCase{2, 8, 14, 40.0, 2, 4, 8.0, 0},
        PartitionCase{3, 9, 12, 50.0, 3, 3, 10.0, 0},
        PartitionCase{4, 10, 16, 60.0, 2, 5, 9.0, 0},
        PartitionCase{5, 10, 10, 45.0, 3, 4, 12.0, 0},
        PartitionCase{6, 7, 20, 35.0, 2, 6, 7.0, 0},
        PartitionCase{7, 12, 12, 70.0, 2, 4, 10.0, 0},
        PartitionCase{8, 12, 15, 55.0, 3, 5, 11.0, 0}),
    CaseName);

// Long streams and wide hop-windows: many shards per convoy lifetime, and
// tick counts that are not multiples of ⌊k/2⌋ (ragged final windows).
INSTANTIATE_TEST_SUITE_P(
    RaggedLengthsAndWideWindows, PartitionedDifferentialTest,
    ::testing::Values(
        PartitionCase{31, 8, 23, 45.0, 2, 10, 8.0, 0},
        PartitionCase{32, 8, 29, 45.0, 2, 12, 8.0, 0},
        PartitionCase{33, 10, 25, 55.0, 3, 9, 10.0, 0},
        PartitionCase{34, 9, 40, 50.0, 2, 7, 9.0, 0},
        PartitionCase{35, 10, 27, 50.0, 2, 11, 9.0, 0}),
    CaseName);

// Gapped tick streams: whole ticks missing from the data, so some shards
// contain partial or no benchmark data.
INSTANTIATE_TEST_SUITE_P(
    GappedStreams, PartitionedDifferentialTest,
    ::testing::Values(
        PartitionCase{41, 8, 20, 40.0, 2, 4, 8.0, 5},
        PartitionCase{42, 10, 24, 50.0, 2, 5, 9.0, 7},
        PartitionCase{43, 9, 26, 45.0, 3, 6, 10.0, 4},
        PartitionCase{44, 8, 30, 40.0, 2, 9, 8.0, 6}),
    CaseName);

// ---------------------------------------------------------------------------
// Brinkhoff workload (network-based movement, objects appearing over time)
// ---------------------------------------------------------------------------

TEST(PartitionedBrinkhoffTest, MatchesBatchOnMemoryAndLsm) {
  BrinkhoffParams params;
  params.grid.nx = 6;
  params.grid.ny = 6;
  params.grid.spacing = 500.0;
  params.max_time = 120;
  params.obj_begin = 60;
  params.obj_time = 1;
  params.seed = 9;
  const Dataset data = GenerateBrinkhoff(params);
  ASSERT_GT(data.num_points(), 0u);
  const MiningParams mining{3, 10, 60.0};
  for (StoreKind kind : {StoreKind::kMemory, StoreKind::kLsm}) {
    ExpectPartitionedMatchesBatch(data, mining, kind, "brinkhoff",
                                  {2, 3, 7});
  }
}

}  // namespace
}  // namespace k2
