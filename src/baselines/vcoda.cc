#include "baselines/vcoda.h"

#include "baselines/cmc.h"
#include "cluster/clusterer.h"

namespace k2 {

Result<std::vector<Convoy>> MineVcoda(Store* store, const MiningParams& params,
                                      bool corrected, VcodaStats* stats) {
  K2_RETURN_NOT_OK(ValidateMiningParams(params));
  const IoStats io_before = store->io_stats();
  VcodaStats local;
  VcodaStats* s = stats != nullptr ? stats : &local;

  Stopwatch sw;
  K2_ASSIGN_OR_RETURN(std::vector<Convoy> candidates, MinePccd(store, params));
  s->phases.Add("cluster+sweep", sw.ElapsedSeconds());
  s->prevalidation_convoys = candidates.size();

  sw.Restart();
  K2_ASSIGN_OR_RETURN(
      std::vector<Convoy> result,
      ValidateFullyConnected(store, std::move(candidates), params, corrected,
                             &s->validation));
  s->phases.Add("validation", sw.ElapsedSeconds());
  s->io = IoStats::Delta(store->io_stats(), io_before);
  return result;
}

}  // namespace k2
