// Fig. 8h — Brinkhoff: effect of varying eps (k2-* only; VCoDA DNF).
#include "bench/effect_sweep_common.h"
int main() {
  std::vector<k2::MiningParams> sweep;
  for (double eps : {12.0, 60.0, 300.0}) sweep.push_back({3, 200, eps});
  return k2::bench::RunEffectSweep("Fig 8h: Brinkhoff — effect of eps (seconds)",
                                   k2::bench::Brinkhoff(), "fig8h", "eps", sweep);
}
