// Log-Structured Merge-tree store ("k2-LSMT", paper Sec. 5.2): skip-list
// memtable, immutable SSTables, size-tiered compaction. Because the composite
// key is (t, oid), all rows of a timestamp are co-located, so a benchmark
// scan is one range read with a single seek, while point reads use per-table
// bloom filters — precisely the access mix k/2-hop generates.
//
// Crash safety: every mutation is framed into a write-ahead log before it
// touches the memtable (Append fdatasyncs the WAL per tick by default), the
// MANIFEST records the live SSTables per tier plus the WAL segments still
// holding unflushed data, and SSTables are published atomically (tmp + fsync
// + rename). Reopening a directory replays the longest valid WAL prefix on
// top of the MANIFEST's tables — the recovery path the fault-injection crash
// matrix in tests/lsm_crash_*.cc sweeps op by op.
//
// Tail latency: a full memtable is handed off as an immutable run to a
// background thread that builds the SSTable and runs the compaction cascade,
// so the foreground Put/Append path never absorbs a flush or merge spike
// (LsmStoreOptions::background_compaction, on by default).
#ifndef K2_STORAGE_LSM_STORE_H_
#define K2_STORAGE_LSM_STORE_H_

#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "storage/lsm/manifest.h"
#include "storage/lsm/skiplist.h"
#include "storage/lsm/sstable.h"
#include "storage/lsm/wal.h"
#include "storage/store.h"

namespace k2 {

struct LsmStoreOptions {
  /// Memtable entries before an automatic flush.
  size_t memtable_limit = 128 * 1024;
  /// Tables per tier before they are merged into the next tier.
  size_t tier_fanout = 4;
  /// Ablation switch: disable bloom filters on the read path.
  bool use_bloom = true;
  /// File-system shim for every write-path IO (WAL, SSTable build,
  /// MANIFEST); nullptr = Env::Default(). The fault-injection tests
  /// substitute a FaultInjectionEnv here.
  Env* env = nullptr;
  /// fdatasync the WAL once per Append() tick, making the tick durable
  /// before Append returns (~1 ms on commodity storage). Put() never syncs;
  /// its records become durable at the next Append, Flush, or rotation
  /// sync. Disabling trades per-tick durability for raw ingest speed.
  bool wal_sync_every_append = true;
  /// Run flush + compaction on a background thread (immutable-memtable
  /// handoff). Disabled, the same jobs run synchronously inside the write
  /// path — the deterministic mode the crash-matrix tests sweep.
  bool background_compaction = true;
  /// Ingest backpressure: a write that needs to rotate blocks while this
  /// many immutable memtables are already queued for flush.
  size_t max_pending_memtables = 2;
  /// WAL policy. wal.segment_bytes > 0 enables size-based segment rotation:
  /// the active segment is sealed and a new one chained onto the same
  /// memtable once it passes the cap, bounding single-file size (and torn
  /// tails to the last segment) independently of memtable_limit. With the
  /// default 0, segments rotate only with the memtable.
  lsm::WalOptions wal;
};

class LsmStore final : public Store {
 public:
  using Options = LsmStoreOptions;

  /// Opens (or creates) the store in `dir`, recovering MANIFEST + WAL state
  /// left by a previous process. A recovery failure is sticky: every
  /// subsequent operation returns it (see init_status()).
  explicit LsmStore(std::string dir, Options options = {});
  ~LsmStore() override;

  std::string name() const override { return "lsmt"; }
  /// Replaces all content with `dataset`, routing rows through the normal
  /// write path (flushes and compactions happen for real) but WITHOUT WAL
  /// logging: a bulk rebuild has nothing durable to promise until it
  /// returns, at which point the final Flush has published every row as
  /// SSTables + MANIFEST — stronger than WAL durability. A crash mid-load
  /// recovers some clean prefix of the dataset's rows.
  Status BulkLoad(const Dataset& dataset) override K2_EXCLUDES(mu_);
  Status Append(Timestamp t, const std::vector<SnapshotPoint>& points) override
      K2_EXCLUDES(mu_);
  Status ScanTimestamp(Timestamp t, std::vector<SnapshotPoint>* out) override
      K2_EXCLUDES(mu_);
  Status GetPoints(Timestamp t, const ObjectSet& objects,
                   std::vector<SnapshotPoint>* out) override K2_EXCLUDES(mu_);
  TimeRange time_range() const override;
  const std::vector<Timestamp>& timestamps() const override;
  // Invariant (analysis off): num_points_ is written only by the external
  // writer thread (Put/Append/BulkLoad, all under mu_) — the background
  // worker never touches it — and the Store contract forbids calling const
  // metadata accessors while a writer is active, so this unlocked read
  // cannot race. See docs/ARCHITECTURE.md, "Lock discipline".
  uint64_t num_points() const override K2_NO_THREAD_SAFETY_ANALYSIS {
    return num_points_;
  }

  /// Native snapshot: drains background work, then opens a private SSTable
  /// handle (own mmap, block cache, bloom, IO accounting) per immutable
  /// table file and freezes the memtable into a sorted run, so concurrent
  /// readers share nothing mutable.
  Result<std::unique_ptr<Store>> CreateReadSnapshot() override
      K2_EXCLUDES(mu_);

  /// Single-row insert ("fast data inserts" requirement (3) of Sec. 5);
  /// WAL-logged, rotates the memtable automatically when full.
  Status Put(Timestamp t, ObjectId oid, double x, double y) K2_EXCLUDES(mu_);

  /// Rotates a non-empty memtable out and blocks until every queued flush
  /// and compaction has completed (and been committed to the MANIFEST).
  Status Flush() K2_EXCLUDES(mu_);

  /// First error of recovery-on-open, sticky across all operations.
  const Status& init_status() const { return init_status_; }
  /// First unrecovered write-path error (WAL, flush, compaction, MANIFEST),
  /// sticky: later writes fail with it, reads keep working.
  Status write_error() const K2_EXCLUDES(mu_);

  size_t num_sstables() const K2_EXCLUDES(mu_);
  size_t num_tiers() const K2_EXCLUDES(mu_);
  /// WAL segments feeding the active memtable (>= 1 once writable; grows
  /// with size-based rotation, resets when the memtable rotates).
  size_t active_wal_segments() const K2_EXCLUDES(mu_);
  /// Entries in the active (mutable) memtable.
  size_t memtable_entries() const K2_EXCLUDES(mu_);
  uint64_t compactions_run() const K2_EXCLUDES(mu_);
  /// IO performed by flush/compaction reading their merge inputs — kept out
  /// of io_stats() so query-path pruning accounting stays clean.
  IoStats background_io_stats() const K2_EXCLUDES(mu_);

 private:
  /// An immutable memtable queued for flush, together with the WAL segments
  /// whose records it holds (deleted once the flush is committed).
  struct PendingMemtable {
    std::shared_ptr<const lsm::SkipList> mem;
    std::vector<uint64_t> wal_seqs;
  };

  // All Locked methods require mu_ held (K2_REQUIRES — a call without the
  // lock is a compile error under clang); the job methods (FlushFrontLocked,
  // CompactLocked) drop it around file IO and re-take it to install results.
  Status Recover() K2_EXCLUDES(mu_);
  Status WritableLocked() const K2_REQUIRES(mu_);
  std::string TableFilePath(uint64_t seq) const;
  std::string WalFilePath(uint64_t seq) const;
  lsm::ManifestState ManifestSnapshotLocked() const K2_REQUIRES(mu_);
  Status WriteManifestLocked() K2_REQUIRES(mu_);
  Status OpenActiveWalLocked(bool fresh_wal_set) K2_REQUIRES(mu_);
  Status WalAppendLocked(Timestamp t, const std::vector<SnapshotPoint>& points,
                         bool sync) K2_REQUIRES(mu_);
  void ApplyPutLocked(Timestamp t, ObjectId oid, double x, double y)
      K2_REQUIRES(mu_);
  Status MaybeRotateLocked() K2_REQUIRES(mu_);
  Status RotateMemtableLocked() K2_REQUIRES(mu_);
  Status RotateWalSegmentLocked() K2_REQUIRES(mu_);
  /// Blocks until queued work is done (background) or runs it inline (sync
  /// mode); returns the sticky write error if one surfaced.
  Status DrainLocked() K2_REQUIRES(mu_);
  Status FlushFrontLocked() K2_REQUIRES(mu_);
  Status CompactLocked() K2_REQUIRES(mu_);
  void RebuildFlatViewLocked() K2_REQUIRES(mu_);
  /// Fills `mems` (active memtable first, then pending newest-first) and
  /// returns the count. The caller must size `mems` for 1 + pending_.size();
  /// reads use a stack buffer since backpressure bounds the pending queue.
  size_t CollectMemsLocked(const lsm::SkipList** mems) const K2_REQUIRES(mu_);
  void StartWorker() K2_EXCLUDES(mu_);
  void StopWorker() K2_EXCLUDES(mu_);
  void WorkerMain() K2_EXCLUDES(mu_);

  std::string dir_;
  Options options_;
  Env* env_;
  Status init_status_;  ///< Written once in the constructor, then read-only.

  /// One lock guards every piece of shared LSM state below. Foreground
  /// reads hold it across the whole read (the store contract already
  /// serializes readers externally; this lock only fences the background
  /// thread), the worker holds it only while installing results.
  mutable Mutex mu_;
  CondVar work_cv_;   ///< Signals the worker: work or stop.
  CondVar drain_cv_;  ///< Signals waiters: job finished.

  /// Active, foreground-written memtable.
  std::unique_ptr<lsm::SkipList> memtable_ K2_GUARDED_BY(mu_);
  /// WAL segments feeding the active memtable.
  std::vector<uint64_t> active_wal_seqs_ K2_GUARDED_BY(mu_);
  std::unique_ptr<lsm::WalWriter> wal_ K2_GUARDED_BY(mu_);
  /// Oldest first, awaiting flush.
  std::deque<PendingMemtable> pending_ K2_GUARDED_BY(mu_);

  /// tiers_[i] = tables of tier i, oldest first. Tier number grows with
  /// table size (size-tiered compaction).
  std::vector<std::vector<std::unique_ptr<lsm::SSTable>>> tiers_
      K2_GUARDED_BY(mu_);
  /// All tables, newest first; rebuilt when the tier structure changes.
  std::vector<lsm::SSTable*> flat_newest_first_ K2_GUARDED_BY(mu_);
  uint64_t next_seq_ K2_GUARDED_BY(mu_) = 1;
  /// Written only by the external writer thread (under mu_); see
  /// num_points() for the unlocked const-read invariant.
  uint64_t num_points_ K2_GUARDED_BY(mu_) = 0;
  uint64_t compactions_run_ K2_GUARDED_BY(mu_) = 0;
  Status write_error_ K2_GUARDED_BY(mu_);
  /// True while BulkLoad streams rows in: WAL logging is skipped (see
  /// BulkLoad's durability note), everything else behaves normally.
  bool bulk_loading_ K2_GUARDED_BY(mu_) = false;
  /// Merge-input reads of flush/compaction jobs.
  IoStats bg_io_ K2_GUARDED_BY(mu_);

  std::thread worker_;
  bool worker_started_ K2_GUARDED_BY(mu_) = false;
  bool worker_busy_ K2_GUARDED_BY(mu_) = false;
  bool stop_ K2_GUARDED_BY(mu_) = false;

  /// Sorted, duplicate-free tick list, maintained eagerly on mutation
  /// (Put/BulkLoad) so the const read path never writes shared state —
  /// timestamps() used to rebuild a cache lazily inside a const method, a
  /// data race under the parallel mining pipeline's concurrent metadata
  /// reads. Unlocked const reads follow the num_points() invariant.
  std::vector<Timestamp> tick_cache_ K2_GUARDED_BY(mu_);

  /// Reused per-Append WAL record serialization buffer.
  std::string wal_scratch_ K2_GUARDED_BY(mu_);
};

}  // namespace k2

#endif  // K2_STORAGE_LSM_STORE_H_
