#include "io/proximity_io.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace k2 {

namespace {

constexpr uint64_t kProximityMagic = 0x6b32686f70707278ULL;  // "k2hopprx"

std::string Trim(const std::string& s) {
  const char* ws = " \t\r\n";
  const size_t begin = s.find_first_not_of(ws);
  if (begin == std::string::npos) return "";
  const size_t end = s.find_last_not_of(ws);
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> SplitComma(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) fields.push_back(Trim(field));
  return fields;
}

// Whole-field integer parse via std::from_chars; same contract as io/csv.cc
// (no trailing junk, optional leading '+').
template <typename T>
bool ParseField(const std::string& field, T* out) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  if (begin != end && *begin == '+' && begin + 1 != end &&
      *(begin + 1) != '-') {
    ++begin;
  }
  if (begin == end) return false;
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

Status RowParseError(const std::string& path, size_t line_no,
                     const char* column, const std::string& field) {
  return Status::Invalid(path + ":" + std::to_string(line_no) + ": column '" +
                         column + "': cannot parse '" + field +
                         "' as a number");
}

}  // namespace

Status WriteProximityCsv(const ProximityLog& log, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot create " + path);
  out << "t,oid_a,oid_b\n";
  for (const PairRecord& rec : log.ToRecords()) {
    out << rec.t << ',' << rec.a << ',' << rec.b << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<ProximityLog> ReadProximityCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) return Status::Invalid(path + " is empty");

  const std::vector<std::string> header = SplitComma(line);
  int col_t = -1, col_a = -1, col_b = -1;
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == "t" || header[i] == "timestamp") col_t = i;
    if (header[i] == "oid_a" || header[i] == "a") col_a = i;
    if (header[i] == "oid_b" || header[i] == "b") col_b = i;
  }
  if (col_t < 0 || col_a < 0 || col_b < 0) {
    return Status::Invalid(path +
                           ": header must name t, oid_a, oid_b columns");
  }

  std::vector<PairRecord> records;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r\n") == std::string::npos) continue;
    const std::vector<std::string> fields = SplitComma(line);
    const size_t needed = static_cast<size_t>(
        std::max(col_t, std::max(col_a, col_b)) + 1);
    if (fields.size() < needed) {
      return Status::Invalid(path + ":" + std::to_string(line_no) +
                             ": too few fields");
    }
    PairRecord rec;
    if (!ParseField(fields[col_t], &rec.t)) {
      return RowParseError(path, line_no, "t", fields[col_t]);
    }
    if (!ParseField(fields[col_a], &rec.a)) {
      return RowParseError(path, line_no, "oid_a", fields[col_a]);
    }
    if (!ParseField(fields[col_b], &rec.b)) {
      return RowParseError(path, line_no, "oid_b", fields[col_b]);
    }
    if (rec.a == rec.b) {
      return Status::Invalid(path + ":" + std::to_string(line_no) +
                             ": self-loop pair (oid_a == oid_b == " +
                             std::to_string(rec.a) + ")");
    }
    records.push_back(rec);
  }
  return ProximityLog::FromRecords(std::move(records));
}

Status WriteProximityBinary(const ProximityLog& log, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    return Status::IOError("cannot create " + path + ": " +
                           std::strerror(errno));
  }
  const std::vector<PairRecord> records = log.ToRecords();
  const uint64_t count = records.size();
  bool ok = std::fwrite(&kProximityMagic, 8, 1, out) == 1 &&
            std::fwrite(&count, 8, 1, out) == 1;
  if (ok && count > 0) {
    ok = std::fwrite(records.data(), sizeof(PairRecord), count, out) == count;
  }
  std::fclose(out);
  if (!ok) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<ProximityLog> ReadProximityBinary(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return Status::IOError("cannot open " + path + ": " + std::strerror(errno));
  }
  uint64_t magic = 0, count = 0;
  if (std::fread(&magic, 8, 1, in) != 1 || std::fread(&count, 8, 1, in) != 1 ||
      magic != kProximityMagic) {
    std::fclose(in);
    return Status::Invalid(path + ": not a k2hop binary proximity log");
  }
  // Same header-vs-file-size validation as io/csv.cc: never size a buffer
  // from an unvalidated header count.
  std::error_code ec;
  const uint64_t file_size = std::filesystem::file_size(path, ec);
  constexpr uint64_t kHeaderBytes = 16;
  if (ec || file_size < kHeaderBytes ||
      count > (file_size - kHeaderBytes) / sizeof(PairRecord)) {
    std::fclose(in);
    return Status::Invalid(path + ": header claims " + std::to_string(count) +
                           " records but the file has only " +
                           std::to_string(file_size) + " bytes");
  }
  std::vector<PairRecord> records(count);
  if (count > 0 &&
      std::fread(records.data(), sizeof(PairRecord), count, in) != count) {
    std::fclose(in);
    return Status::IOError("short read from " + path);
  }
  std::fclose(in);
  return ProximityLog::FromRecords(std::move(records));
}

}  // namespace k2
