#include "common/status.h"

#include <sstream>

namespace k2 {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalid:
      return "Invalid";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::ostringstream os;
  os << StatusCodeName(code_) << ": " << message_;
  return os.str();
}

}  // namespace k2
