// Traffic-jam detection — the paper's second motivating use case: "to detect
// all traffic jams of duration more than 15 mins and involving 50 cars or
// more, set m = 50 and k = 15 (at 1-minute sampling)" (Sec. 1).
//
// We simulate network traffic with a Brinkhoff-style generator, inject a
// jam (a blocked highway segment where vehicles crawl bumper-to-bumper),
// and mine with a large m and short k to find it.
#include <iostream>

#include "common/convoy.h"
#include "common/rng.h"
#include "core/k2hop.h"
#include "gen/brinkhoff.h"
#include "storage/memory_store.h"

int main() {
  // Background traffic.
  k2::BrinkhoffParams params;
  params.grid.nx = 12;
  params.grid.ny = 12;
  params.max_time = 120;  // two hours at 1-minute sampling
  params.obj_begin = 150;
  params.obj_time = 2;
  params.seed = 31;
  k2::BrinkhoffStats gen_stats;
  const k2::Dataset traffic = k2::GenerateBrinkhoff(params, &gen_stats);

  // Inject the jam: 60 vehicles stuck on one stretch between minutes 30-75,
  // creeping forward a couple of metres per minute at 5 m headway.
  k2::DatasetBuilder builder;
  for (const k2::PointRecord& rec : traffic.records()) builder.Add(rec);
  k2::Rng rng(7);
  const double jam_x0 = 2000.0, jam_y = 3300.0;
  const k2::ObjectId jam_base = 100000;
  for (int car = 0; car < 60; ++car) {
    const double queue_pos = jam_x0 + car * 5.0;  // 5 m headway
    for (k2::Timestamp t = 30; t <= 75; ++t) {
      builder.Add(t, jam_base + car,
                  queue_pos + (t - 30) * 2.0 + rng.Gaussian(0, 0.5),
                  jam_y + rng.Gaussian(0, 0.5));
    }
  }
  const k2::Dataset dataset = builder.Build();
  std::cout << "monitoring " << dataset.DebugString() << "\n";

  // Jam query: >= 40 vehicles for >= 15 minutes. Density: DBSCAN's minPts
  // equals m, so eps must cover >= m cars of a queue — the paper's "few
  // hundred meters" for road-scale convoys (Sec. 1); 40 cars at 5 m headway
  // span 200 m, so eps = 250 m sees the whole queue.
  const k2::MiningParams jam_query{40, 15, 250.0};
  k2::MemoryStore store(dataset);
  k2::K2HopStats stats;
  auto result = k2::MineK2Hop(&store, jam_query, {}, &stats);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }

  if (result.value().empty()) {
    std::cout << "no jams detected\n";
    return 0;
  }
  for (const k2::Convoy& jam : result.value()) {
    std::cout << "JAM: " << jam.objects.size() << " vehicles stuck from minute "
              << jam.start << " to " << jam.end << " ("
              << jam.length() << " minutes)\n";
  }
  std::cout << "(k/2-hop pruned " << stats.pruning_ratio() * 100.0
            << "% of the data while watching)\n";
  return 0;
}
