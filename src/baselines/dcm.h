// DCM — Distributed Convoy Mining (Orakzai et al., MDM 2016). The time axis
// is split into contiguous partitions; each partition is mined independently
// (CMC-style sweep, keeping pieces that touch partition borders), and the
// per-partition results are folded left-to-right with the DCM merge — the
// same merge k/2-hop reuses for its spanning convoys (Sec. 4.4). Workers
// emulate cluster nodes with threads (DESIGN.md substitution table).
#ifndef K2_BASELINES_DCM_H_
#define K2_BASELINES_DCM_H_

#include <vector>

#include "common/convoy.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/types.h"
#include "storage/store.h"

namespace k2 {

struct DcmOptions {
  int num_partitions = 4;  ///< temporal splits ("nodes" of Fig. 7g)
  int num_workers = 1;     ///< threads mining partitions concurrently
};

struct DcmStats {
  PhaseTimer phases;  ///< "materialize", "partition-mining", "merge"
  size_t partition_convoys = 0;  ///< pieces produced by all partitions
};

/// Mines maximal partially connected convoys with lifespan >= k (same
/// specification as PCCD, hence differentially testable against it).
Result<std::vector<Convoy>> MineDcm(Store* store, const MiningParams& params,
                                    const DcmOptions& options = {},
                                    DcmStats* stats = nullptr);

/// The merge step alone, exposed for tests: folds per-partition maximal
/// convoys (partition p covers `ranges[p]`) into global maximal convoys.
std::vector<Convoy> DcmMergePartitions(
    std::vector<std::vector<Convoy>> partition_results,
    const std::vector<TimeRange>& ranges, const MiningParams& params);

}  // namespace k2

#endif  // K2_BASELINES_DCM_H_
