#include "storage/lsm/sstable.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define K2_SSTABLE_HAS_MMAP 1
#endif

#include "storage/store.h"

namespace k2::lsm {

namespace {

// One on-disk entry: key + x + y, 24 bytes, written field-wise.
constexpr size_t kEntrySize = 24;

Status WriteRaw(std::FILE* f, const void* data, size_t n,
                const std::string& path) {
  if (std::fwrite(data, 1, n, f) != n) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// SSTableBuilder
// ---------------------------------------------------------------------------

SSTableBuilder::SSTableBuilder(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    deferred_error_ = Status::IOError("cannot create " + path_ + ": " +
                                      std::strerror(errno));
  }
}

void SSTableBuilder::Reserve(size_t expected_keys) {
  bloom_reserve_ = expected_keys;
  all_entries_.reserve(expected_keys);
}

Status SSTableBuilder::Add(uint64_t key, const LsmValue& value) {
  K2_RETURN_NOT_OK(deferred_error_);
  if (has_last_key_ && key <= last_key_) {
    return Status::Invalid("SSTable keys must be strictly increasing");
  }
  last_key_ = key;
  has_last_key_ = true;
  block_.emplace_back(key, value);
  all_entries_.emplace_back(key, value);
  ++num_entries_;
  if (block_.size() >= kBlockEntries) return FlushBlock();
  return Status::OK();
}

Status SSTableBuilder::FlushBlock() {
  if (block_.empty()) return Status::OK();
  IndexEntry entry;
  entry.first_key = block_.front().first;
  entry.last_key = block_.back().first;
  entry.offset = offset_;
  entry.count = static_cast<uint32_t>(block_.size());
  for (const auto& [key, value] : block_) {
    K2_RETURN_NOT_OK(WriteRaw(file_, &key, 8, path_));
    K2_RETURN_NOT_OK(WriteRaw(file_, &value.x, 8, path_));
    K2_RETURN_NOT_OK(WriteRaw(file_, &value.y, 8, path_));
  }
  offset_ += block_.size() * kEntrySize;
  index_.push_back(entry);
  block_.clear();
  return Status::OK();
}

Status SSTableBuilder::Finish() {
  K2_RETURN_NOT_OK(deferred_error_);
  K2_RETURN_NOT_OK(FlushBlock());

  const uint64_t index_offset = offset_;
  for (const IndexEntry& e : index_) {
    K2_RETURN_NOT_OK(WriteRaw(file_, &e.first_key, 8, path_));
    K2_RETURN_NOT_OK(WriteRaw(file_, &e.last_key, 8, path_));
    K2_RETURN_NOT_OK(WriteRaw(file_, &e.offset, 8, path_));
    K2_RETURN_NOT_OK(WriteRaw(file_, &e.count, 4, path_));
  }
  const uint64_t bloom_offset = index_offset + index_.size() * 28;

  BloomFilter bloom(std::max<size_t>(bloom_reserve_, all_entries_.size()));
  for (const auto& [key, value] : all_entries_) bloom.Add(key);
  const uint32_t num_hashes = bloom.num_hashes_for_disk();
  const uint32_t num_words = static_cast<uint32_t>(bloom.words().size());
  K2_RETURN_NOT_OK(WriteRaw(file_, &num_hashes, 4, path_));
  K2_RETURN_NOT_OK(WriteRaw(file_, &num_words, 4, path_));
  K2_RETURN_NOT_OK(WriteRaw(file_, bloom.words().data(), num_words * 8, path_));

  K2_RETURN_NOT_OK(WriteRaw(file_, &index_offset, 8, path_));
  K2_RETURN_NOT_OK(WriteRaw(file_, &bloom_offset, 8, path_));
  K2_RETURN_NOT_OK(WriteRaw(file_, &num_entries_, 8, path_));
  K2_RETURN_NOT_OK(WriteRaw(file_, &kSstMagic, 8, path_));

  std::fclose(file_);
  file_ = nullptr;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SSTable (reader)
// ---------------------------------------------------------------------------

SSTable::~SSTable() {
#ifdef K2_SSTABLE_HAS_MMAP
  if (map_ != nullptr) {
    munmap(const_cast<char*>(map_), map_size_);
  }
#endif
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<SSTable>> SSTable::Open(const std::string& path,
                                               uint64_t seq, IoStats* stats) {
  std::unique_ptr<SSTable> table(new SSTable());
  table->path_ = path;
  table->seq_ = seq;
  table->stats_ = stats;
  table->file_ = std::fopen(path.c_str(), "rb");
  if (table->file_ == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::FILE* f = table->file_;
  if (std::fseek(f, -32, SEEK_END) != 0) {
    return Status::IOError("footer seek failed on " + path);
  }
  uint64_t index_offset, bloom_offset, num_entries, magic;
  if (std::fread(&index_offset, 8, 1, f) != 1 ||
      std::fread(&bloom_offset, 8, 1, f) != 1 ||
      std::fread(&num_entries, 8, 1, f) != 1 ||
      std::fread(&magic, 8, 1, f) != 1) {
    return Status::IOError("footer read failed on " + path);
  }
  if (magic != kSstMagic) {
    return Status::Invalid("bad SSTable magic in " + path);
  }
  table->num_entries_ = num_entries;

  const size_t num_blocks = (bloom_offset - index_offset) / 28;
  table->index_.resize(num_blocks);
  if (std::fseek(f, static_cast<long>(index_offset), SEEK_SET) != 0) {
    return Status::IOError("index seek failed on " + path);
  }
  for (IndexEntry& e : table->index_) {
    if (std::fread(&e.first_key, 8, 1, f) != 1 ||
        std::fread(&e.last_key, 8, 1, f) != 1 ||
        std::fread(&e.offset, 8, 1, f) != 1 ||
        std::fread(&e.count, 4, 1, f) != 1) {
      return Status::IOError("index read failed on " + path);
    }
  }

  uint32_t num_hashes, num_words;
  if (std::fread(&num_hashes, 4, 1, f) != 1 ||
      std::fread(&num_words, 4, 1, f) != 1) {
    return Status::IOError("bloom header read failed on " + path);
  }
  std::vector<uint64_t> words(num_words);
  if (num_words > 0 && std::fread(words.data(), 8, num_words, f) != num_words) {
    return Status::IOError("bloom read failed on " + path);
  }
  table->bloom_ = BloomFilter::FromWords(std::move(words), num_hashes);

  if (!table->index_.empty()) {
    table->min_key_ = table->index_.front().first_key;
    table->max_key_ = table->index_.back().last_key;
  }

#ifdef K2_SSTABLE_HAS_MMAP
  // Tables are immutable once built: map the whole file read-only so block
  // fetches are page-cache copies instead of fseek+fread syscall pairs. On
  // mapping failure the stdio handle stays as the fallback read path.
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long size = std::ftell(f);
    if (size > 0) {
      void* map = mmap(nullptr, static_cast<size_t>(size), PROT_READ,
                       MAP_PRIVATE, fileno(f), 0);
      if (map != MAP_FAILED) {
        table->map_ = static_cast<const char*>(map);
        table->map_size_ = static_cast<size_t>(size);
      }
    }
  }
#endif
  return table;
}

Result<const std::vector<SSTable::Entry>*> SSTable::GetBlock(size_t b) {
  if (CachedBlock* cb = FindCached(b)) {
    cb->last_used = ++cache_clock_;
    if (stats_ != nullptr) ++stats_->pages_cached;
    return &cb->entries;
  }
  return LoadBlock(b);
}

Result<const std::vector<SSTable::Entry>*> SSTable::LoadBlock(size_t b) {
  // Evict the least recently used slot (empty slots sort first).
  CachedBlock* victim = &cache_[0];
  for (CachedBlock& cb : cache_) {
    if (cb.last_used < victim->last_used) victim = &cb;
  }
  const IndexEntry& e = index_[b];
  victim->index = -1;  // invalid while being overwritten
  victim->entries.resize(e.count);
  // Entry mirrors the on-disk block byte-for-byte, so the block decodes
  // with a single copy straight into the entry array.
  static_assert(sizeof(Entry) == kEntrySize &&
                std::is_trivially_copyable_v<Entry>);
  const size_t nbytes = e.count * kEntrySize;
  if (map_ != nullptr) {
    if (e.offset + nbytes > map_size_) {
      return Status::IOError("block out of mapped range on " + path_);
    }
    std::memcpy(victim->entries.data(), map_ + e.offset, nbytes);
  } else {
    if (std::fseek(file_, static_cast<long>(e.offset), SEEK_SET) != 0) {
      return Status::IOError("block seek failed on " + path_);
    }
    if (std::fread(victim->entries.data(), kEntrySize, e.count, file_) !=
        e.count) {
      return Status::IOError("block read failed on " + path_);
    }
  }
  if (stats_ != nullptr) {
    // A fetch of anything but the next contiguous block repositions the
    // medium; sequential scans charge one seek for the whole run.
    if (static_cast<int64_t>(b) != last_fetched_block_ + 1) ++stats_->seeks;
    ++stats_->pages_read;
    stats_->bytes_read += nbytes;
  }
  last_fetched_block_ = static_cast<int64_t>(b);
  victim->index = static_cast<int64_t>(b);
  victim->last_used = ++cache_clock_;
  return &victim->entries;
}

Result<bool> SSTable::Get(uint64_t key, LsmValue* value, bool use_bloom) {
  if (num_entries_ == 0 || key < min_key_ || key > max_key_) return false;
  // Binary search the resident index for the block whose last_key >= key.
  size_t lo = 0, hi = index_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (index_[mid].last_key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == index_.size() || index_[lo].first_key > key) return false;
  // The bloom filter gates only the block fetch: when the candidate block
  // is already cached, probing the block directly is cheaper than probing
  // the filter — and the point queries of one GetPoints batch land in the
  // same block almost every time.
  const std::vector<Entry>* entries;
  if (CachedBlock* cb = FindCached(lo)) {
    cb->last_used = ++cache_clock_;
    if (stats_ != nullptr) ++stats_->pages_cached;
    entries = &cb->entries;
  } else {
    if (use_bloom && !bloom_.MayContain(key)) {
      if (stats_ != nullptr) ++stats_->bloom_negative;
      return false;
    }
    K2_ASSIGN_OR_RETURN(entries, LoadBlock(lo));
  }
  if (stats_ != nullptr) ++stats_->sstables_touched;
  auto it = std::lower_bound(
      entries->begin(), entries->end(), key,
      [](const Entry& entry, uint64_t k) { return entry.key < k; });
  if (it != entries->end() && it->key == key) {
    *value = it->value;
    return true;
  }
  return false;
}

Status SSTable::Scan(uint64_t lo, uint64_t hi,
                     const std::function<void(uint64_t, const LsmValue&)>& fn) {
  if (!Overlaps(lo, hi)) return Status::OK();
  if (stats_ != nullptr) ++stats_->sstables_touched;
  // First block that can contain lo.
  size_t b = 0, b_hi = index_.size();
  while (b < b_hi) {
    const size_t mid = (b + b_hi) / 2;
    if (index_[mid].last_key < lo) {
      b = mid + 1;
    } else {
      b_hi = mid;
    }
  }
  for (; b < index_.size() && index_[b].first_key <= hi; ++b) {
    K2_ASSIGN_OR_RETURN(const std::vector<Entry>* entries, GetBlock(b));
    for (const Entry& entry : *entries) {
      if (entry.key < lo) continue;
      if (entry.key > hi) return Status::OK();
      fn(entry.key, entry.value);
    }
  }
  return Status::OK();
}

}  // namespace k2::lsm
