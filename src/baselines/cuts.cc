#include "baselines/cuts.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "baselines/sweep.h"
#include "baselines/trajectory.h"
#include "cluster/clusterer.h"
#include "cluster/dbscan.h"
#include "model/dataset.h"

namespace k2 {

namespace {

/// DBSCAN over objects of one frame using the polyline distance; returns the
/// ids of objects belonging to a cluster of size >= m. O(n^2) pairwise, as
/// in the original (trajectories per frame are few).
std::vector<ObjectId> FrameSurvivors(
    const std::vector<std::pair<ObjectId, std::vector<TrajPoint>>>& subs,
    double eps, int m) {
  const size_t n = subs.size();
  std::vector<std::vector<uint32_t>> neighbors(n);
  for (size_t i = 0; i < n; ++i) {
    neighbors[i].push_back(static_cast<uint32_t>(i));  // self
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (PolylineDistance(subs[i].second, subs[j].second) <= eps) {
        neighbors[i].push_back(static_cast<uint32_t>(j));
        neighbors[j].push_back(static_cast<uint32_t>(i));
      }
    }
  }
  // Density-connect: BFS from core polylines.
  std::vector<int32_t> label(n, -1);
  int32_t next_label = 0;
  std::vector<uint32_t> queue;
  for (size_t i = 0; i < n; ++i) {
    if (label[i] >= 0 || neighbors[i].size() < static_cast<size_t>(m)) continue;
    const int32_t cluster = next_label++;
    label[i] = cluster;
    queue.assign(neighbors[i].begin(), neighbors[i].end());
    for (size_t q = 0; q < queue.size(); ++q) {
      const uint32_t v = queue[q];
      if (label[v] < 0) {
        label[v] = cluster;
        if (neighbors[v].size() >= static_cast<size_t>(m)) {
          queue.insert(queue.end(), neighbors[v].begin(), neighbors[v].end());
        }
      }
    }
  }
  std::vector<size_t> cluster_size(next_label, 0);
  for (size_t i = 0; i < n; ++i) {
    if (label[i] >= 0) ++cluster_size[label[i]];
  }
  std::vector<ObjectId> survivors;
  for (size_t i = 0; i < n; ++i) {
    if (label[i] >= 0 && cluster_size[label[i]] >= static_cast<size_t>(m)) {
      survivors.push_back(subs[i].first);
    }
  }
  std::sort(survivors.begin(), survivors.end());
  return survivors;
}

}  // namespace

Result<std::vector<Convoy>> MineCuts(Store* store, const MiningParams& params,
                                     const CutsOptions& options,
                                     CutsStats* stats) {
  K2_RETURN_NOT_OK(ValidateMiningParams(params));
  CutsStats local;
  CutsStats* s = stats != nullptr ? stats : &local;
  const int lambda = options.lambda > 0 ? options.lambda : params.k;
  const double delta =
      options.dp_tolerance > 0.0 ? options.dp_tolerance : params.eps / 4.0;

  // Materialize trajectories (CuTS' trajectory-major access pattern: the
  // paper stresses that this cannot reuse DBSCAN's spatial index).
  Stopwatch sw;
  std::map<ObjectId, std::vector<TrajPoint>> trajectories;
  std::vector<SnapshotPoint> points;
  const TimeRange range = store->time_range();
  for (Timestamp t : store->timestamps()) {
    K2_RETURN_NOT_OK(store->ScanTimestamp(t, &points));
    for (const SnapshotPoint& p : points) {
      trajectories[p.oid].push_back(TrajPoint{t, p.x, p.y});
    }
  }
  std::map<ObjectId, std::vector<TrajPoint>> simplified;
  for (const auto& [oid, traj] : trajectories) {
    s->input_vertices += traj.size();
    simplified[oid] = DouglasPeucker(traj, delta);
    s->simplified_vertices += simplified[oid].size();
  }
  s->phases.Add("simplify", sw.ElapsedSeconds());

  // Filter: per λ-frame, cluster simplified sub-trajectories with the
  // inflated threshold; record the surviving objects of each frame.
  sw.Restart();
  const int64_t num_frames = (range.length() + lambda - 1) / lambda;
  std::vector<std::vector<ObjectId>> frame_survivors(
      static_cast<size_t>(num_frames));
  std::unordered_set<ObjectId> any_survivor;
  for (int64_t f = 0; f < num_frames; ++f) {
    const Timestamp fs = range.start + static_cast<Timestamp>(f * lambda);
    const Timestamp fe =
        std::min<Timestamp>(fs + lambda - 1, range.end);
    std::vector<std::pair<ObjectId, std::vector<TrajPoint>>> subs;
    for (const auto& [oid, traj] : simplified) {
      if (traj.empty() || traj.front().t > fe || traj.back().t < fs) continue;
      // Vertices inside the frame plus one bracketing vertex on each side:
      // a long straight leg may have no vertex inside the frame at all, yet
      // its segment still crosses it.
      auto lo_it = std::lower_bound(
          traj.begin(), traj.end(), fs,
          [](const TrajPoint& p, Timestamp t) { return p.t < t; });
      auto hi_it = std::upper_bound(
          traj.begin(), traj.end(), fe,
          [](Timestamp t, const TrajPoint& p) { return t < p.t; });
      if (lo_it != traj.begin()) --lo_it;
      if (hi_it != traj.end()) ++hi_it;
      subs.emplace_back(oid, std::vector<TrajPoint>(lo_it, hi_it));
    }
    frame_survivors[f] =
        FrameSurvivors(subs, params.eps + 2.0 * delta, params.m);
    for (ObjectId oid : frame_survivors[f]) any_survivor.insert(oid);
  }
  s->surviving_objects = any_survivor.size();
  s->phases.Add("filter", sw.ElapsedSeconds());

  // Refine: per-tick sweep over the frame's surviving objects only.
  sw.Restart();
  auto clusters_at = [&](Timestamp t, std::vector<ObjectSet>* out) -> Status {
    out->clear();
    const int64_t f = (t - range.start) / lambda;
    const std::vector<ObjectId>& survivors = frame_survivors[f];
    if (survivors.size() < static_cast<size_t>(params.m)) return Status::OK();
    std::vector<SnapshotPoint> pts;
    K2_RETURN_NOT_OK(
        store->GetPoints(t, ObjectSet::FromSorted(survivors), &pts));
    *out = Dbscan(pts, params.eps, params.m);
    return Status::OK();
  };
  SweepOptions sweep;
  sweep.min_length = params.k;
  auto result = MaximalConvoySweep(clusters_at, range, params.m, sweep);
  s->phases.Add("refine", sw.ElapsedSeconds());
  return result;
}

}  // namespace k2
