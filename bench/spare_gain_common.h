// Shared driver for Figs. 7d/7e/7f: k/2-hop (sequential, k2-RDBMS) gain over
// SPARE running with a sweep of worker counts on all three workloads.
// Workers emulate cluster cores with threads (DESIGN.md substitutions); on a
// machine with fewer physical cores than workers the curve flattens rather
// than falls, which the output banner calls out.
#ifndef K2_BENCH_SPARE_GAIN_COMMON_H_
#define K2_BENCH_SPARE_GAIN_COMMON_H_

#include <thread>

#include "bench/harness.h"

namespace k2::bench {

inline int RunSpareGainFigure(const std::string& title,
                              const std::vector<int>& worker_counts) {
  PrintBanner(title);
  // k2-lint: allow(bench-key-hardware-independent): banner print only;
  // worker counts in the recorded rows come from the explicit sweep list.
  std::cout << "hardware threads available: "
            << std::thread::hardware_concurrency() << "\n\n";

  struct Workload {
    const char* name;
    const Dataset* data;
    MiningParams params;
  };
  const std::vector<Workload> workloads = {
      {"Trucks", &Trucks(), {3, 200, 30.0}},
      {"Brinkhoff", &Brinkhoff(), {3, 200, 60.0}},
      {"TDrive", &TDrive(), {3, 200, 60.0}},
  };

  TablePrinter table({"workers", "Trucks", "Brinkhoff", "TDrive"});
  // SPARE emits partially connected convoys, so k/2-hop runs without the
  // final FC validation here — the same output class (PCCD-equivalent).
  K2HopOptions k2_options;
  k2_options.validate = false;
  std::vector<double> k2_seconds;
  std::vector<std::unique_ptr<Store>> stores;
  for (const Workload& w : workloads) {
    auto rdbms = BuildStore(StoreKind::kBPlusTree, *w.data, "sparegain");
    k2_seconds.push_back(RunK2(rdbms.get(), w.params, nullptr, k2_options).seconds);
    stores.push_back(BuildStore(StoreKind::kMemory, *w.data, "sparegain"));
  }
  for (int workers : worker_counts) {
    std::vector<std::string> row{std::to_string(workers)};
    for (size_t i = 0; i < workloads.size(); ++i) {
      const MineOutcome spare =
          RunSpare(stores[i].get(), workloads[i].params, workers);
      if (spare.dnf) {
        row.push_back("DNF(" + spare.note + ")");
      } else {
        row.push_back(Fmt(spare.seconds / std::max(1e-6, k2_seconds[i]), 1) +
                      "x");
      }
    }
    table.AddRow(row);
  }
  table.Print();
  std::cout << "(gain = SPARE time at N workers / sequential k2-RDBMS time;\n"
               " both sides mine partially connected convoys)\n";
  return 0;
}

}  // namespace k2::bench

#endif  // K2_BENCH_SPARE_GAIN_COMMON_H_
