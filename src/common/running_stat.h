// Streaming scalar summary (count / total / min / max / mean) with O(1)
// state — used by the online mining path to report per-tick latencies
// without retaining a sample per tick.
#ifndef K2_COMMON_RUNNING_STAT_H_
#define K2_COMMON_RUNNING_STAT_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"

namespace k2 {

class RunningStat {
 public:
  void Add(double v) {
    ++count_;
    total_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  size_t count() const { return count_; }
  double total() const { return total_; }
  double mean() const {
    return count_ == 0 ? 0.0 : total_ / static_cast<double>(count_);
  }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  void Clear() { *this = RunningStat(); }

  /// "n=120 total=0.5 mean=0.004 min=0.001 max=0.02".
  std::string DebugString() const {
    std::ostringstream os;
    os << "n=" << count_ << " total=" << total_ << " mean=" << mean()
       << " min=" << min() << " max=" << max();
    return os.str();
  }

 private:
  size_t count_ = 0;
  double total_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-capacity uniform sample (Vitter's algorithm R) for tail-latency
/// percentiles. Exact while the observation count stays within capacity —
/// which covers every bench in this repo at default scale — and an unbiased
/// estimate beyond it, with O(capacity) memory however long the stream runs.
/// Deterministic: replacement uses the seeded SplitMix64 Rng.
class PercentileReservoir {
 public:
  explicit PercentileReservoir(size_t capacity = 4096,
                               uint64_t seed = 0x9e3779b9ULL)
      : capacity_(capacity == 0 ? 1 : capacity), rng_(seed) {
    samples_.reserve(capacity_);
  }

  void Add(double v) {
    ++count_;
    if (samples_.size() < capacity_) {
      samples_.push_back(v);
      return;
    }
    const uint64_t j = rng_.NextInt(count_);
    if (j < capacity_) samples_[j] = v;
  }

  /// Nearest-rank percentile of the sampled values; `p` in [0, 100].
  /// Returns 0 when nothing was observed.
  double Percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double frac = std::min(std::max(p, 0.0), 100.0) / 100.0;
    size_t rank =
        static_cast<size_t>(std::ceil(frac * static_cast<double>(sorted.size())));
    if (rank == 0) rank = 1;
    if (rank > sorted.size()) rank = sorted.size();
    return sorted[rank - 1];
  }

  size_t count() const { return count_; }
  size_t sample_count() const { return samples_.size(); }

  void Clear() {
    samples_.clear();
    count_ = 0;
  }

 private:
  size_t capacity_;
  Rng rng_;
  std::vector<double> samples_;
  size_t count_ = 0;
};

}  // namespace k2

#endif  // K2_COMMON_RUNNING_STAT_H_
