#include "common/crc32c.h"

#include "common/simd.h"

namespace k2 {

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  // The scalar table-driven implementation lives in simd.cc as the dispatch
  // fallback and differential oracle; SSE4.2 machines get the crc32
  // instruction with 3-way stream interleave.
  return simd::Active().crc32c(data, n, seed);
}

}  // namespace k2
