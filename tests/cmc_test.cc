// CMC vs PCCD: reproduces the published recall bug of CMC that PCCD (and
// our shared sweep) fix, plus agreement on easy inputs.
#include <gtest/gtest.h>

#include "baselines/cmc.h"
#include "baselines/gold.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::C;
using ::k2::testing::MakeMemStore;
using ::k2::testing::MakeTracks;

TEST(CmcTest, FindsAnIsolatedConvoy) {
  // Two objects together for the whole span, far from everything else.
  auto store = MakeMemStore(
      MakeTracks({{0, 0, 0, 0}, {0.5, 0.5, 0.5, 0.5}, {90, 91, 92, 93}}));
  auto out = MineCmc(store.get(), {2, 3, 1.0});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value()[0], C({0, 1}, 0, 3));
}

TEST(CmcTest, MissesConvoyStartingInsideBiggerCluster) {
  // Ticks 0-1: objects 0..4 form one big cluster. From tick 2 only {3,4}
  // stay together through tick 5. The convoy ({3,4},[0,5]) exists, but CMC
  // never opens a candidate for the cluster {3,4} at ticks 2+ because that
  // cluster "matched" the shrinking candidate — so CMC reports a shorter
  // convoy than PCCD. This is the accuracy problem Yoon & Shahabi document.
  auto store = MakeMemStore(MakeTracks({
      {0.0, 0.0, 50.0, 60.0, 70.0, 80.0},   // 0 leaves after tick 1
      {0.5, 0.5, 55.0, 65.0, 75.0, 85.0},   // 1 leaves
      {1.0, 1.0, 58.0, 68.0, 78.0, 88.0},   // 2 leaves
      {1.5, 1.5, 1.5, 1.5, 1.5, 1.5},       // 3 stays
      {2.0, 2.0, 2.0, 2.0, 2.0, 2.0},       // 4 stays
  }));
  const MiningParams params{2, 6, 1.0};

  auto pccd = MinePccd(store.get(), params);
  ASSERT_TRUE(pccd.ok());
  ASSERT_EQ(pccd.value().size(), 1u);
  EXPECT_EQ(pccd.value()[0], C({3, 4}, 0, 5));  // full-length convoy found

  auto cmc = MineCmc(store.get(), params);
  ASSERT_TRUE(cmc.ok());
  // CMC's candidate shrinks to {3,4} correctly here (the intersection chain
  // carries it), so build the sharper counterexample: the convoy must START
  // at tick 2, where its cluster is absorbed by a candidate match.
  auto store2 = MakeMemStore(MakeTracks({
      // 0,1: together ticks 0..3 then gone far away.
      {0.0, 0.0, 0.0, 0.0, 90.0, 95.0, 99.0, 93.0},
      {0.5, 0.5, 0.5, 0.5, 80.0, 85.0, 89.0, 83.0},
      // 2,3: join the {0,1} cluster at ticks 2..3 (one big cluster), then
      // keep going together through tick 7 elsewhere.
      {200, 210, 1.0, 1.0, 30.0, 30.0, 30.0, 30.0},
      {220, 230, 1.5, 1.5, 30.5, 30.5, 30.5, 30.5},
  }));
  const MiningParams params2{2, 6, 1.0};
  auto pccd2 = MinePccd(store2.get(), params2);
  ASSERT_TRUE(pccd2.ok());
  // PCCD finds ({2,3},[2,7]) — six ticks.
  EXPECT_SAME_CONVOYS(pccd2.value(), std::vector<Convoy>{C({2, 3}, 2, 7)});
  EXPECT_SAME_CONVOYS(pccd2.value(),
                      GoldMaximalConvoys(
                          ::k2::testing::MakeMemStore(store2->dataset())
                              ->dataset(),
                          params2));
  auto cmc2 = MineCmc(store2.get(), params2);
  ASSERT_TRUE(cmc2.ok());
  // CMC misses it: at ticks 2-3 the cluster {0,1,2,3} matches the live
  // candidate {0,1}, so no fresh candidate for the full cluster is opened;
  // the {2,3} convoy is only tracked from tick 4 => length 4 < k.
  EXPECT_TRUE(cmc2.value().empty());
}

TEST(CmcTest, AgreesWithPccdWhenClustersAreStable) {
  auto store = MakeMemStore(MakeTracks({
      {0, 0, 0, 0, 0},
      {0.5, 0.5, 0.5, 0.5, 0.5},
      {100, 100, 100, 100, 100},
      {100.5, 100.5, 100.5, 100.5, 100.5},
  }));
  const MiningParams params{2, 4, 1.0};
  auto cmc = MineCmc(store.get(), params);
  auto pccd = MinePccd(store.get(), params);
  ASSERT_TRUE(cmc.ok() && pccd.ok());
  EXPECT_SAME_CONVOYS(cmc.value(), pccd.value());
  EXPECT_EQ(pccd.value().size(), 2u);
}

TEST(CmcTest, EmptyDataset) {
  auto store = MakeMemStore(DatasetBuilder().Build());
  auto out = MineCmc(store.get(), {2, 2, 1.0});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
}

}  // namespace
}  // namespace k2
