// Persistent-storage abstraction of paper Sec. 5. k/2-hop touches data in
// exactly two ways: (1) full snapshot scans at benchmark points and (2)
// random point reads `(t, oid)` for candidate objects inside hop-windows.
// Every engine implements both and maintains IO statistics so the benches
// can attribute performance to access-path behaviour.
#ifndef K2_STORAGE_STORE_H_
#define K2_STORAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/object_set.h"
#include "common/status.h"
#include "common/types.h"
#include "model/dataset.h"

namespace k2 {

/// Counters accumulated by a store across queries; reset with Clear().
struct IoStats {
  uint64_t snapshot_scans = 0;   ///< ScanTimestamp calls.
  uint64_t scanned_points = 0;   ///< Rows returned by snapshot scans.
  uint64_t point_queries = 0;    ///< (t, oid) lookups issued.
  uint64_t point_hits = 0;       ///< Rows found by point lookups.
  uint64_t bytes_read = 0;       ///< Bytes fetched from the medium.
  uint64_t seeks = 0;            ///< Random repositionings of the medium.
  uint64_t pages_read = 0;       ///< Buffer-pool misses (page stores).
  uint64_t pages_cached = 0;     ///< Buffer-pool hits (page stores).
  uint64_t bloom_negative = 0;   ///< LSM lookups short-circuited by bloom.
  uint64_t sstables_touched = 0; ///< LSM tables consulted.

  /// Per-tier LSM read fan-out: entry [t] counts events against tier-t
  /// SSTables (tier 0 = fresh flushes; higher tiers = older, compacted
  /// data). `tier_sstables_touched` splits `sstables_touched` by tier;
  /// `tier_bloom_skipped` splits `bloom_negative`. Vectors grow lazily to
  /// the deepest tier observed, so two IoStats with different lengths just
  /// mean the shorter one never read past its last tier; Delta/Accumulate
  /// treat the missing entries as zero.
  std::vector<uint64_t> tier_sstables_touched;
  std::vector<uint64_t> tier_bloom_skipped;

  /// Total rows materialized for the caller (the paper's "points processed").
  uint64_t points_read() const { return scanned_points + point_hits; }

  void Clear() { *this = IoStats(); }
  std::string DebugString() const;

  /// Component-wise difference (after - before), for measuring the IO cost
  /// of one mining run.
  static IoStats Delta(const IoStats& after, const IoStats& before);

  /// Component-wise sum, for folding per-phase deltas into a total (the
  /// online miner attributes ingest and mining IO separately this way).
  void Accumulate(const IoStats& other);
};

/// Fraction of `total_points` never materialized by `io` — the paper's
/// Table-5 pruning %. Shared by every miner's stats type so batch, online,
/// and partitioned pruning numbers stay defined identically.
double PruningRatio(const IoStats& io, uint64_t total_points);

/// Abstract trajectory store keyed by the composite clustered key (t, oid).
///
/// Thread-safety contract: stores are single-writer, and reads are NOT
/// internally synchronized — concurrent readers (the parallel mining
/// pipeline) must serialize every access through one external mutex (see
/// `store_mu` in cluster/store_clustering.h). In return, no const accessor
/// (`time_range`, `timestamps`, `num_points`) mutates internal state, so
/// const snapshots of the metadata may be taken without the store lock as
/// long as no writer is active. Writers (`BulkLoad`, `Append`) must have
/// exclusive access — "single-writer" means one *external* writer thread;
/// the contract says nothing about what the engine does internally.
///
/// Engines MAY run internal background threads (the LSM store's
/// flush/compaction worker) as long as that is invisible under this
/// contract: every externally observable operation, including the const
/// accessors, must be correctly synchronized against the engine's own
/// threads by the engine itself (the LSM store fences all shared state
/// with one internal mutex; the TSan CI job enforces this). Destruction
/// and `BulkLoad` must quiesce internal workers before returning.
///
/// The full mutex/capability inventory — what each lock guards, the
/// acquisition order, and the invariants the clang thread-safety analyzer
/// cannot see (this contract's unlocked const-read path among them) — is
/// tabulated in docs/ARCHITECTURE.md, section "Lock discipline".
///
/// For lock-free concurrent reads, `CreateReadSnapshot` hands out
/// independent read-only handles (one per reader thread) instead of sharing
/// the store under a mutex — the access path the partitioned miner uses to
/// keep shards from serializing on one store. Snapshot creation drains any
/// internal background work first, so a snapshot is a stable point-in-time
/// view.
class Store {
 public:
  virtual ~Store() = default;

  /// Engine name used in reports ("memory", "file", "rdbms", "lsmt").
  virtual std::string name() const = 0;

  /// Replaces the store content with `dataset` (records already in
  /// (t, oid) order). Called once before mining. Resets io_stats() on
  /// completion, so load-time flush/compaction IO never pollutes the first
  /// mining run's counters.
  virtual Status BulkLoad(const Dataset& dataset) = 0;

  /// Appends one complete tick of data: all points of tick `t`, which must
  /// be strictly greater than every tick already stored (movement data
  /// arrives in time order). `points` must be sorted by oid and
  /// duplicate-free; an empty `points` is a no-op. Unlike BulkLoad, Append
  /// does NOT reset io_stats(): ingestion cost is part of the streaming
  /// workload and stays observable.
  virtual Status Append(Timestamp t, const std::vector<SnapshotPoint>& points);

  /// Fetches all points at tick `t` into `*out` (cleared first), in oid
  /// order. A tick without data yields an empty result and OK status.
  virtual Status ScanTimestamp(Timestamp t,
                               std::vector<SnapshotPoint>* out) = 0;

  /// Fetches the points of the given objects at tick `t` into `*out`
  /// (cleared first), in oid order; objects absent at `t` are skipped.
  virtual Status GetPoints(Timestamp t, const ObjectSet& objects,
                           std::vector<SnapshotPoint>* out) = 0;

  /// Inclusive tick range present in the store.
  virtual TimeRange time_range() const = 0;

  /// Distinct ticks that carry data, ascending.
  virtual const std::vector<Timestamp>& timestamps() const = 0;

  /// Total number of stored rows.
  virtual uint64_t num_points() const = 0;

  /// Creates an independent read-only view of the store's current content
  /// for one concurrent reader thread (the partitioned miner opens one per
  /// shard slot). Contract:
  ///
  ///  * the snapshot borrows the parent: it must not outlive the parent
  ///    store, and the parent must not be mutated (BulkLoad/Append/Put)
  ///    while snapshots are alive;
  ///  * one snapshot serves one thread at a time; distinct snapshots may
  ///    read concurrently with each other without any external lock;
  ///  * writes through a snapshot fail with kInvalid;
  ///  * IO is accounted once: engines with a native snapshot (all four
  ///    built-ins) count reads in the snapshot's own io_stats(); the
  ///    base-class fallback delegates under an internal parent-wide mutex
  ///    and counts in the parent's io_stats(). Callers fold parent delta
  ///    plus every snapshot's stats to get the total.
  ///
  /// The base implementation is the serialized fallback — correct for any
  /// engine, concurrent for none. Engines override it with handles that
  /// own their read path (file descriptors, caches, scratch), which is what
  /// makes shards scale.
  virtual Result<std::unique_ptr<Store>> CreateReadSnapshot();

  IoStats& io_stats() { return io_stats_; }
  const IoStats& io_stats() const { return io_stats_; }

 protected:
  /// Shared Append precondition check: `t` past the stored range, `points`
  /// sorted by oid and duplicate-free.
  Status CheckAppend(Timestamp t,
                     const std::vector<SnapshotPoint>& points) const;

  IoStats io_stats_;

 private:
  /// Serializes every fallback snapshot of this store (see
  /// CreateReadSnapshot); engines with native snapshots never touch it.
  /// Guards no fields directly: it fences the parent's whole read path
  /// (ScanTimestamp/GetPoints) for the serialized-snapshot delegates.
  Mutex fallback_snapshot_mu_;
};

/// Factory helpers used by benches and examples; `dir` is a scratch
/// directory for the disk-backed engines.
enum class StoreKind { kMemory, kFile, kBPlusTree, kLsm };

const char* StoreKindName(StoreKind kind);

/// Creates an empty store of the given kind; disk engines place their files
/// under `dir` (created if needed).
Result<std::unique_ptr<Store>> CreateStore(StoreKind kind,
                                           const std::string& dir);

}  // namespace k2

#endif  // K2_STORAGE_STORE_H_
