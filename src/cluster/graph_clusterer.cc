#include "cluster/graph_clusterer.h"

#include <algorithm>

namespace k2 {

namespace {

// Same cutoff as dbscan.cc: below it, scanning all points beats building a
// grid for the tiny re-clusterings that dominate the pruned access paths.
constexpr size_t kBruteForceThreshold = 32;

// CSR eps-graph of `points` (self excluded) into scratch->graph.
void BuildEpsAdjacency(std::span<const SnapshotPoint> points, double eps,
                       SnapshotScratch* scratch) {
  GraphClusterScratch& g = scratch->graph;
  const size_t n = points.size();
  g.adj.clear();
  g.adj_offsets.assign(1, 0);
  if (n > kBruteForceThreshold) {
    scratch->dbscan.grid.Build(points, eps);
    std::vector<uint32_t>& nbrs = scratch->dbscan.neighbors;
    for (size_t i = 0; i < n; ++i) {
      nbrs.clear();
      scratch->dbscan.grid.Neighbors(i, eps, &nbrs);
      for (const uint32_t j : nbrs) {
        if (j != static_cast<uint32_t>(i)) g.adj.push_back(j);
      }
      g.adj_offsets.push_back(static_cast<uint32_t>(g.adj.size()));
    }
  } else {
    const double eps2 = eps * eps;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double dx = points[i].x - points[j].x;
        const double dy = points[i].y - points[j].y;
        if (dx * dx + dy * dy <= eps2) {
          g.adj.push_back(static_cast<uint32_t>(j));
        }
      }
      g.adj_offsets.push_back(static_cast<uint32_t>(g.adj.size()));
    }
  }
}

// Induced co-location adjacency: edges of `edges` restricted to the fetched
// (oid-sorted) points, into scratch->graph. Neighbour oids outside the
// fetched set are dropped — the graph form of the restriction DB[t]|O.
void BuildInducedAdjacency(std::span<const SnapshotPoint> points,
                           const SnapshotEdges& edges,
                           SnapshotScratch* scratch) {
  GraphClusterScratch& g = scratch->graph;
  const size_t n = points.size();
  g.oids.resize(n);
  for (size_t i = 0; i < n; ++i) g.oids[i] = points[i].oid;
  g.adj.clear();
  g.adj_offsets.assign(1, 0);
  for (size_t i = 0; i < n; ++i) {
    const size_t row = edges.empty() ? SnapshotEdges::npos
                                     : edges.IndexOf(g.oids[i]);
    if (row != SnapshotEdges::npos) {
      for (const ObjectId nbr : edges.Row(row)) {
        const auto it = std::lower_bound(g.oids.begin(), g.oids.end(), nbr);
        if (it != g.oids.end() && *it == nbr) {
          g.adj.push_back(static_cast<uint32_t>(it - g.oids.begin()));
        }
      }
    }
    g.adj_offsets.push_back(static_cast<uint32_t>(g.adj.size()));
  }
}

std::vector<ObjectSet> ClusterFetched(std::span<const SnapshotPoint> points,
                                      int min_pts, SnapshotScratch* scratch) {
  GraphClusterScratch& g = scratch->graph;
  g.oids.resize(points.size());
  for (size_t i = 0; i < points.size(); ++i) g.oids[i] = points[i].oid;
  return GraphClusters(g.oids, g.adj_offsets, g.adj, min_pts, &g);
}

}  // namespace

Result<std::vector<ObjectSet>> CoLocationGraphClusterer::Cluster(
    Store* store, Timestamp t, const MiningParams& params,
    SnapshotScratch* scratch, Mutex* store_mu) const {
  K2_RETURN_NOT_OK(LockedScanTimestamp(store, t, &scratch->points, store_mu));
  BuildInducedAdjacency(scratch->points, log_->EdgesAt(t), scratch);
  return GraphClusters(scratch->graph.oids, scratch->graph.adj_offsets,
                       scratch->graph.adj, params.m, &scratch->graph);
}

Result<std::vector<ObjectSet>> CoLocationGraphClusterer::ReCluster(
    Store* store, Timestamp t, const ObjectSet& objects,
    const MiningParams& params, SnapshotScratch* scratch,
    Mutex* store_mu) const {
  K2_RETURN_NOT_OK(
      LockedGetPoints(store, t, objects, &scratch->points, store_mu));
  BuildInducedAdjacency(scratch->points, log_->EdgesAt(t), scratch);
  return GraphClusters(scratch->graph.oids, scratch->graph.adj_offsets,
                       scratch->graph.adj, params.m, &scratch->graph);
}

Status EpsGraphClusterer::ValidateParams(const MiningParams& params) const {
  if (!(params.eps > 0.0)) {
    return Status::Invalid(
        "MiningParams: eps must be > 0 for the epsgraph clusterer, got eps=" +
        std::to_string(params.eps));
  }
  return Status::OK();
}

Result<std::vector<ObjectSet>> EpsGraphClusterer::Cluster(
    Store* store, Timestamp t, const MiningParams& params,
    SnapshotScratch* scratch, Mutex* store_mu) const {
  K2_RETURN_NOT_OK(LockedScanTimestamp(store, t, &scratch->points, store_mu));
  return EpsGraphClusters(scratch->points, params.eps, params.m, scratch);
}

Result<std::vector<ObjectSet>> EpsGraphClusterer::ReCluster(
    Store* store, Timestamp t, const ObjectSet& objects,
    const MiningParams& params, SnapshotScratch* scratch,
    Mutex* store_mu) const {
  K2_RETURN_NOT_OK(
      LockedGetPoints(store, t, objects, &scratch->points, store_mu));
  return EpsGraphClusters(scratch->points, params.eps, params.m, scratch);
}

std::vector<ObjectSet> EpsGraphClusters(std::span<const SnapshotPoint> points,
                                        double eps, int min_pts,
                                        SnapshotScratch* scratch) {
  BuildEpsAdjacency(points, eps, scratch);
  return ClusterFetched(points, min_pts, scratch);
}

}  // namespace k2
