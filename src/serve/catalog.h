// Serving layer: ConvoyCatalog materializes mined convoys behind three
// read-optimized indexes — an interval index over lifespans (max-end
// segment tree over the canonical start-sorted order), an inverted
// object-id → convoy index (CSR postings), and a spatial footprint grid
// (the flat CSR GridIndex from cluster/, fed with member positions sampled
// over each convoy's lifespan) — so the questions users ask of mined
// convoys (Jeung et al.: which convoys contain object o? overlap window
// [a,b]? pass through region R?) are index lookups instead of rescans of a
// flat result vector.
//
// Concurrency model (epoch/RCU, left-right flavour): the write side
// (AddConvoys / ReplaceAll / Publish, single writer, internally serialized)
// builds a fresh immutable CatalogSnapshot and publishes it through a
// two-slot SnapshotCell. Readers never take a lock: they pick the active
// slot, announce themselves with a monotonic ingress counter, re-check the
// slot, copy the shared_ptr out, and retire via the egress counter — a few
// uncontended atomic RMWs. The writer toggles the active slot and, before
// reusing the retired one on a LATER publish, waits for its straggler
// readers to drain, so at most two epochs are live beyond what readers
// hold. A snapshot never changes after publication: a reader is
// snapshot-consistent across any number of queries and never blocks or is
// blocked by an ingest. (std::atomic<std::shared_ptr> would express the
// same swap, but libstdc++'s implementation makes readers spin on a lock
// bit and trips TSan; the explicit cell is genuinely reader-lock-free and
// exactly models the happens-before the CI TSan gate verifies.)
//
// The catalog is miner-agnostic: bulk-fed from batch MineK2Hop /
// PartitionedK2HopMiner output, or incrementally from OnlineK2HopMiner via
// the OnClosedHook adapter (with ReplaceAll as the reconcile step after
// Finalize()). Catalogs fed the same convoys from any source answer every
// query identically (asserted by tests/serve_differential_test.cc).
#ifndef K2_SERVE_CATALOG_H_
#define K2_SERVE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cluster/grid_index.h"
#include "common/convoy.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "storage/store.h"

namespace k2 {

/// Index of a convoy inside one CatalogSnapshot. Ids are snapshot-local:
/// convoys are numbered 0..size-1 in canonical convoy order, so equal
/// snapshots assign equal ids, but ids must not be carried across epochs.
using ConvoyId = uint32_t;

/// Ranking metric of TopK queries.
enum class ConvoyRank {
  kLongest,  ///< by lifespan length, descending
  kLargest,  ///< by object count, descending
};

/// One sampled member position of a convoy's spatial footprint.
struct FootprintPoint {
  double x = 0.0;
  double y = 0.0;
};

struct CatalogOptions {
  /// Tick stride of footprint sampling: a convoy's footprint is its member
  /// positions at ticks start, start+stride, start+2*stride, ... plus
  /// always the final tick. 1 = every tick of the lifespan.
  int footprint_stride = 1;
  /// Requested cell side of the footprint grid; 0 = derived from the
  /// footprint bounding box so the grid has about one point per cell (the
  /// GridIndex auto-grow bounds memory either way).
  double grid_cell_size = 0.0;
};

/// An immutable, fully indexed view of the catalog at one publish epoch.
/// Obtained via ConvoyCatalog::snapshot() (a lock-free atomic load) and
/// queried without any synchronization; the snapshot stays valid and
/// unchanged for as long as the reader holds the pointer, regardless of
/// concurrent ingests. All id-list results are ascending — i.e. canonical
/// convoy order — which makes conjunctions sorted-list intersections.
class CatalogSnapshot {
 public:
  uint64_t epoch() const { return epoch_; }
  size_t size() const { return convoys_.size(); }
  bool empty() const { return convoys_.empty(); }
  /// Canonical order; ConvoyId indexes into this.
  const std::vector<Convoy>& convoys() const { return convoys_; }
  const Convoy& convoy(ConvoyId id) const { return convoys_[id]; }
  /// Total sampled footprint points behind the spatial index.
  size_t footprint_points() const { return fp_convoy_.size(); }

  /// Convoys whose object set contains `oid`.
  void ByObject(ObjectId oid, std::vector<ConvoyId>* out) const;
  /// Convoys whose lifespan overlaps `window` (inclusive on both ends).
  void ByTimeWindow(TimeRange window, std::vector<ConvoyId>* out) const;
  /// Convoys with at least one sampled footprint point inside `region`.
  void ByRegion(const Rect& region, std::vector<ConvoyId>* out) const;

  /// All ids ranked by `rank`: metric descending, ties by ascending id.
  const std::vector<ConvoyId>& Ranked(ConvoyRank rank) const {
    return rank == ConvoyRank::kLongest ? by_length_ : by_size_;
  }
  /// The strict weak order behind Ranked(), for ranking filtered subsets.
  bool RankBefore(ConvoyRank rank, ConvoyId a, ConvoyId b) const;

 private:
  friend class ConvoyCatalog;
  CatalogSnapshot() = default;

  /// Reports every i < limit with convoys_[i].end >= min_end from the
  /// max-end segment tree node covering [lo, hi), ascending.
  void ReportOverlaps(size_t node, size_t lo, size_t hi, Timestamp min_end,
                      size_t limit, std::vector<ConvoyId>* out) const;

  uint64_t epoch_ = 0;
  std::vector<Convoy> convoys_;

  // Interval index: convoys_ is start-sorted (canonical order), so the
  // overlap query "start <= b AND end >= a" is a prefix cut by start plus a
  // descent of this max-end segment tree (seg_size_ is the padded pow2 leaf
  // count; unpopulated leaves hold kInvalidTimestamp).
  size_t seg_size_ = 0;
  std::vector<Timestamp> seg_max_end_;

  // Inverted object index: postings of oid obj_oids_[i] occupy
  // [obj_starts_[i], obj_starts_[i+1]) of obj_postings_, ids ascending.
  std::vector<ObjectId> obj_oids_;
  std::vector<uint32_t> obj_starts_;
  std::vector<ConvoyId> obj_postings_;

  // Spatial footprint grid: grid_ indexes the concatenated footprint
  // points; fp_convoy_[p] is the convoy that owns point p.
  GridIndex grid_;
  std::vector<ConvoyId> fp_convoy_;

  std::vector<ConvoyId> by_length_;
  std::vector<ConvoyId> by_size_;
};

namespace detail {

/// Left-right publication cell: single writer, any number of lock-free
/// readers. Two slots hold the two most recent epochs; `active_` names the
/// one readers should enter. A reader announces itself on a slot's ingress
/// counter, re-checks `active_` (backing out if the writer toggled
/// mid-entry), copies the slot's shared_ptr, and retires via egress. The
/// writer stores into the INACTIVE slot — after spinning until that slot's
/// straggler readers drained — then toggles. All counters and the slot
/// index are seq_cst: the egress increment / drain load pair puts every
/// reader's copy strictly before the writer's overwrite, and the toggle
/// store / re-check load pair publishes the new snapshot to late entrants.
///
/// What the thread-safety analyzer sees of this: each Slot is a capability
/// that is deliberately never acquirable, and `snap` is guarded by it — so
/// under clang, the ONLY functions allowed to touch a slot's shared_ptr
/// are Load() and Store() below, whose definitions carry an explicit
/// K2_NO_THREAD_SAFETY_ANALYSIS plus the prose invariant that makes the
/// unchecked access safe. The epoch protocol has exactly two doors, and
/// adding a third is a compile error, not a review comment. Store()
/// additionally demands the catalog's writer mutex as a capability token,
/// machine-checking the single-writer half of the contract.
class SnapshotCell {
 public:
  /// Wait-free unless the writer is toggling at this exact moment (then
  /// one retry). Never returns null once Store ran with a non-null value.
  std::shared_ptr<const CatalogSnapshot> Load() const;

  /// Single writer only: `writer_mu` is the catalog's writer mutex, taken
  /// as a capability token so unserialized stores fail to compile. Blocks
  /// until the retired slot's readers — those that entered before the
  /// PREVIOUS toggle — have left; readers only hold a slot for a pointer
  /// copy.
  void Store(std::shared_ptr<const CatalogSnapshot> next,
             const Mutex& writer_mu) K2_REQUIRES(writer_mu);

 private:
  struct K2_CAPABILITY("epoch-slot") Slot {
    /// Readable/writable only through the counter protocol above; the
    /// guard makes any access outside Load()/Store() a compile error.
    std::shared_ptr<const CatalogSnapshot> snap K2_GUARDED_BY(this);
    mutable std::atomic<uint64_t> ingress{0};
    mutable std::atomic<uint64_t> egress{0};
  };
  Slot slots_[2];
  std::atomic<int> active_{0};
};

}  // namespace detail

/// The write side. Single-writer by contract of the miners feeding it, but
/// all mutators serialize on an internal mutex anyway (the OnClosedHook and
/// a manual Publish may race benignly); readers never take any lock.
class ConvoyCatalog {
 public:
  explicit ConvoyCatalog(CatalogOptions options = {});

  /// Adds convoys to the writer state, computing each NEW convoy's spatial
  /// footprint from `store` (GetPoints reads of the member objects over the
  /// sampled lifespan ticks); re-adding a known convoy is a no-op. Not
  /// visible to readers until Publish().
  Status AddConvoys(std::span<const Convoy> convoys, Store* store)
      K2_EXCLUDES(writer_mu_);
  Status AddConvoy(const Convoy& convoy, Store* store)
      K2_EXCLUDES(writer_mu_);

  /// Replaces the entire content with `convoys` — the reconcile step after
  /// OnlineK2HopMiner::Finalize(), whose authoritative result may drop an
  /// eagerly emitted convoy that ended up dominated. Footprints of convoys
  /// already in the catalog are reused, not recomputed. On error the
  /// catalog is unchanged. Publish() afterwards to expose the new content.
  Status ReplaceAll(std::span<const Convoy> convoys, Store* store)
      K2_EXCLUDES(writer_mu_);

  /// Builds a snapshot of the current writer state and atomically swaps it
  /// in as the new epoch; returns the published snapshot.
  std::shared_ptr<const CatalogSnapshot> Publish() K2_EXCLUDES(writer_mu_);

  /// The latest published snapshot (never null: epoch 0 is an empty
  /// snapshot). Lock-free; hold the pointer for snapshot-consistent reads.
  std::shared_ptr<const CatalogSnapshot> snapshot() const {
    return snapshot_.Load();
  }

  /// Convoys in the writer state (>= the published snapshot's size until
  /// the next Publish()).
  size_t pending_size() const K2_EXCLUDES(writer_mu_);

  /// First error swallowed by OnClosedHook (hooks cannot propagate Status);
  /// OK when none occurred.
  Status hook_status() const K2_EXCLUDES(writer_mu_);

  /// An OnlineK2HopOptions::on_closed adapter: ingests every closed convoy
  /// (footprints read from `store`, the miner's own store — safe because
  /// the hook runs on the ingest thread between appends) and republishes
  /// every `publish_every` ingests. Errors are sticky in hook_status().
  /// The returned callable borrows this catalog and `store`.
  ///
  /// Each publish rebuilds the full snapshot — O(catalog) in convoys and
  /// footprint points — so publish_every=1 ("live" dashboards) makes a
  /// long stream's total ingest cost quadratic in catalog size; raise
  /// publish_every (or publish on a timer) for heavy streams.
  std::function<void(const Convoy&)> OnClosedHook(Store* store,
                                                  size_t publish_every = 1);

 private:
  Status AddLocked(const Convoy& convoy, Store* store)
      K2_REQUIRES(writer_mu_);
  std::shared_ptr<const CatalogSnapshot> PublishLocked()
      K2_REQUIRES(writer_mu_);
  Status ComputeFootprint(const Convoy& convoy, Store* store,
                          std::vector<FootprintPoint>* out) const;

  CatalogOptions options_;
  mutable Mutex writer_mu_;
  /// Master state: convoy -> sampled footprint, in canonical order (which
  /// is what makes snapshot ids deterministic).
  std::map<Convoy, std::vector<FootprintPoint>> entries_
      K2_GUARDED_BY(writer_mu_);
  uint64_t epoch_ K2_GUARDED_BY(writer_mu_) = 0;
  Status hook_status_ K2_GUARDED_BY(writer_mu_) = Status::OK();
  detail::SnapshotCell snapshot_;
};

}  // namespace k2

#endif  // K2_SERVE_CATALOG_H_
