#!/usr/bin/env bash
# Runs the perf-snapshot benches (Fig. 8i phase breakdown, Fig. 8l
# scalability, streaming ingest, partitioned shard sweep, catalog serving,
# coordinate-free proximity mining, SIMD kernel microbenches) in --json
# mode and merges their records into one snapshot file, so MineK2Hop's
# end-to-end wall time, the online miner's amortized per-tick cost, the
# sharded miner's seam behaviour, the ConvoyCatalog's queries/sec, the
# graph-clusterer path, and the kernel-layer speedups are tracked PR over
# PR.
#
# Usage: scripts/bench_snapshot.sh [output.json]
#   BUILD_DIR       build tree with the bench binaries (default: build)
#   K2_BENCH_SCALE  workload scale forwarded to the benches (default: 1)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_k2hop.json}
SCALE=${K2_BENCH_SCALE:-1}

for bench in bench_fig8i_phases bench_fig8l_scalability bench_streaming \
             bench_partitioned bench_serving bench_serving_net \
             bench_proximity bench_kernels; do
  if [[ ! -x "$BUILD_DIR/bench/$bench" ]]; then
    echo "error: $BUILD_DIR/bench/$bench not found; build with -DK2_BUILD_BENCH=ON" >&2
    exit 1
  fi
done

# Record the kernel dispatch level alongside the numbers it produced.
if [[ -x "$BUILD_DIR/src/k2_simd_info" ]]; then
  "$BUILD_DIR/src/k2_simd_info"
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

K2_BENCH_SCALE=$SCALE "$BUILD_DIR/bench/bench_fig8i_phases" --json "$tmp/fig8i.json"
K2_BENCH_SCALE=$SCALE "$BUILD_DIR/bench/bench_fig8l_scalability" --json "$tmp/fig8l.json"
K2_BENCH_SCALE=$SCALE "$BUILD_DIR/bench/bench_streaming" --json "$tmp/streaming.json"
K2_BENCH_SCALE=$SCALE "$BUILD_DIR/bench/bench_partitioned" --json "$tmp/partitioned.json"
K2_BENCH_SCALE=$SCALE "$BUILD_DIR/bench/bench_serving" --json "$tmp/serving.json"
K2_BENCH_SCALE=$SCALE "$BUILD_DIR/bench/bench_serving_net" --json "$tmp/serving_net.json"
K2_BENCH_SCALE=$SCALE "$BUILD_DIR/bench/bench_proximity" --json "$tmp/proximity.json"
K2_BENCH_SCALE=$SCALE "$BUILD_DIR/bench/bench_kernels" --json "$tmp/kernels.json"

python3 - "$OUT" "$SCALE" "$tmp"/fig8i.json "$tmp"/fig8l.json "$tmp"/streaming.json "$tmp"/partitioned.json "$tmp"/serving.json "$tmp"/serving_net.json "$tmp"/proximity.json "$tmp"/kernels.json <<'EOF'
import datetime
import json
import platform
import subprocess
import sys

out, scale, *files = sys.argv[1:]
records = []
for f in files:
    with open(f) as fh:
        records.extend(json.load(fh))
git = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                     capture_output=True, text=True).stdout.strip()
doc = {
    "generated": datetime.datetime.now(datetime.timezone.utc)
                 .isoformat(timespec="seconds"),
    "host": platform.node(),
    "machine": platform.machine(),
    "scale": float(scale),
    "git": git or None,
    "records": records,
}
with open(out, "w") as fh:
    json.dump(doc, fh, indent=1)
    fh.write("\n")
print(f"wrote {out}: {len(records)} records at scale {scale}")
EOF
