// Ablations of the design choices DESIGN.md calls out:
//   1. HWMT probe order: binary-subdivision (farthest-first) vs naive
//      left-to-right — the farthest-first order kills coincidental
//      togetherness earlier (Sec. 4.3).
//   2. Candidate-cluster pruning (Lemma 5 intersection) on vs off.
//   3. LSM bloom filters on vs off for the HWMT point-read path.
#include "bench/harness.h"
#include "common/check.h"
#include "storage/lsm_store.h"

using namespace k2;
using namespace k2::bench;

int main() {
  PrintBanner("Ablations: HWMT order, candidate pruning, LSM bloom filters");
  const Dataset& data = Trucks();
  const MiningParams params{3, 200, 30.0};
  std::cout << data.DebugString() << "  " << params.DebugString() << "\n\n";

  auto rdbms = BuildStore(StoreKind::kBPlusTree, data, "ablation");

  {
    TablePrinter table({"HWMT order", "seconds", "points processed"});
    for (bool binary : {true, false}) {
      K2HopOptions options;
      options.hwmt_binary_order = binary;
      K2HopStats stats;
      const MineOutcome out = RunK2(rdbms.get(), params, &stats, options);
      table.AddRow({binary ? "binary-subdivision" : "left-to-right",
                    Fmt(out.seconds),
                    std::to_string(stats.points_processed())});
    }
    table.Print();
  }
  std::cout << '\n';
  {
    TablePrinter table({"candidate pruning", "seconds", "points processed"});
    for (bool pruning : {true, false}) {
      K2HopOptions options;
      options.candidate_pruning = pruning;
      K2HopStats stats;
      const MineOutcome out = RunK2(rdbms.get(), params, &stats, options);
      table.AddRow({pruning ? "on (Lemma 5)" : "off", Fmt(out.seconds),
                    std::to_string(stats.points_processed())});
    }
    table.Print();
  }
  std::cout << '\n';
  {
    TablePrinter table({"LSM bloom", "seconds", "bloom skips", "seeks"});
    for (bool bloom : {true, false}) {
      LsmStore::Options options;
      options.use_bloom = bloom;
      LsmStore store("/tmp/k2hop_bench/stores/ablation_bloom", options);
      K2_CHECK_OK(store.BulkLoad(data));
      K2HopStats stats;
      const MineOutcome out = RunK2(&store, params, &stats);
      table.AddRow({bloom ? "on" : "off", Fmt(out.seconds),
                    std::to_string(stats.io.bloom_negative),
                    std::to_string(stats.io.seeks)});
    }
    table.Print();
  }
  return 0;
}
