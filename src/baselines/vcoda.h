// VCoDA — Valid Convoy Discovery (Yoon & Shahabi 2009): PCCD to find the
// maximal partially connected convoys, then DCVal validation to reduce them
// to fully connected ones. `corrected = true` is the paper's VCoDA* (the
// recursive validation correction proposed in Sec. 1/4.6); `false` is the
// original one-pass DCVal.
#ifndef K2_BASELINES_VCODA_H_
#define K2_BASELINES_VCODA_H_

#include <vector>

#include "baselines/validation.h"
#include "common/convoy.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/types.h"
#include "storage/store.h"

namespace k2 {

struct VcodaStats {
  PhaseTimer phases;  ///< "cluster+sweep", "validation"
  size_t prevalidation_convoys = 0;  ///< Fig. 8j series
  ValidationStats validation;
  IoStats io;  ///< store IO consumed by this run
};

Result<std::vector<Convoy>> MineVcoda(Store* store, const MiningParams& params,
                                      bool corrected = true,
                                      VcodaStats* stats = nullptr);

}  // namespace k2

#endif  // K2_BASELINES_VCODA_H_
