#include "cluster/clusterer.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cluster/graph_clusterer.h"

namespace k2 {

Status LockedScanTimestamp(Store* store, Timestamp t,
                           std::vector<SnapshotPoint>* out,
                           Mutex* store_mu) {
  if (store_mu == nullptr) return store->ScanTimestamp(t, out);
  MutexLock lock(*store_mu);
  return store->ScanTimestamp(t, out);
}

Status LockedGetPoints(Store* store, Timestamp t, const ObjectSet& objects,
                       std::vector<SnapshotPoint>* out, Mutex* store_mu) {
  if (store_mu == nullptr) return store->GetPoints(t, objects, out);
  MutexLock lock(*store_mu);
  return store->GetPoints(t, objects, out);
}

Status GeometricClusterer::ValidateParams(const MiningParams& params) const {
  if (!(params.eps > 0.0)) {
    return Status::Invalid(
        "MiningParams: eps must be > 0 for the geometric (DBSCAN) clusterer, "
        "got eps=" +
        std::to_string(params.eps));
  }
  return Status::OK();
}

Result<std::vector<ObjectSet>> GeometricClusterer::Cluster(
    Store* store, Timestamp t, const MiningParams& params,
    SnapshotScratch* scratch, Mutex* store_mu) const {
  K2_RETURN_NOT_OK(LockedScanTimestamp(store, t, &scratch->points, store_mu));
  return Dbscan(scratch->points, params.eps, params.m, &scratch->dbscan);
}

Result<std::vector<ObjectSet>> GeometricClusterer::ReCluster(
    Store* store, Timestamp t, const ObjectSet& objects,
    const MiningParams& params, SnapshotScratch* scratch,
    Mutex* store_mu) const {
  K2_RETURN_NOT_OK(
      LockedGetPoints(store, t, objects, &scratch->points, store_mu));
  return Dbscan(scratch->points, params.eps, params.m, &scratch->dbscan);
}

const SnapshotClusterer* DefaultClusterer() {
  static const GeometricClusterer geometric;
  static const EpsGraphClusterer epsgraph;
  static const SnapshotClusterer* chosen = [&]() -> const SnapshotClusterer* {
    const char* env = std::getenv("K2_CLUSTERER");
    if (env == nullptr || env[0] == '\0') return &geometric;
    const std::string name(env);
    if (name == "geometric") return &geometric;
    if (name == "epsgraph") return &epsgraph;
    std::fprintf(stderr,
                 "K2_CLUSTERER=%s is not a registered clusterer "
                 "(want geometric|epsgraph)\n",
                 env);
    std::abort();
  }();
  return chosen;
}

const SnapshotClusterer* ResolveClusterer(const MiningParams& params) {
  return params.clusterer != nullptr ? params.clusterer : DefaultClusterer();
}

Status ValidateMiningParams(const MiningParams& params) {
  if (params.m < 2) {
    return Status::Invalid(
        "MiningParams: m must be >= 2 (a convoy needs at least two objects), "
        "got m=" +
        std::to_string(params.m));
  }
  if (params.k < 2) {
    return Status::Invalid(
        "MiningParams: k must be >= 2 (a convoy needs a multi-tick lifespan), "
        "got k=" +
        std::to_string(params.k));
  }
  return ResolveClusterer(params)->ValidateParams(params);
}

}  // namespace k2
