// The per-timestamp candidate sweep shared by PCCD, VCoDA, DCM partitions
// and the validation fallback: given the clusters of every tick, maintain
// candidate convoys by intersecting them with the clusters of the next tick
// and emit candidates that can no longer be extended (Yoon & Shahabi's
// corrected candidate maintenance — every cluster always opens a fresh
// candidate, which is the fix over CMC).
#ifndef K2_BASELINES_SWEEP_H_
#define K2_BASELINES_SWEEP_H_

#include <functional>
#include <vector>

#include "common/convoy.h"
#include "common/object_set.h"
#include "common/status.h"
#include "common/types.h"

namespace k2 {

/// Supplies the (m,eps)-clusters of tick `t` (empty vector for a tick
/// without data).
using ClustersAtFn =
    std::function<Status(Timestamp t, std::vector<ObjectSet>* clusters)>;

class Dataset;

/// ClustersAtFn over an in-memory dataset (no store IO). The dataset must
/// outlive the callable; safe for concurrent use from several threads.
ClustersAtFn DatasetClustersFn(const Dataset* dataset,
                               const MiningParams& params);

struct SweepOptions {
  /// Minimum lifespan of emitted convoys.
  int min_length = 2;
  /// Additionally keep convoys that touch the left/right edge of the range
  /// regardless of length — required by DCM partitions, whose border pieces
  /// are merged with neighbouring partitions later.
  bool keep_left_border = false;
  bool keep_right_border = false;
};

/// Mines all maximal convoys inside `range` (every tick in the range is
/// consulted; ticks without clusters terminate every candidate). The result
/// is maximal (no element is a sub-convoy of another) and canonically
/// sorted.
Result<std::vector<Convoy>> MaximalConvoySweep(const ClustersAtFn& clusters_at,
                                               TimeRange range, int m,
                                               const SweepOptions& options);

}  // namespace k2

#endif  // K2_BASELINES_SWEEP_H_
