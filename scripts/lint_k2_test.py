#!/usr/bin/env python3
"""Unit tests for scripts/lint_k2.py.

Each case materializes a miniature repo tree in a temp directory (fixtures
are inline strings, so the real build never sees them) and asserts which
rules fire — one passing and one failing fixture per rule, plus the
allowance and comment-stripping edge cases that make the linter trustable.

Run directly (python3 scripts/lint_k2_test.py) or via scripts/ci.sh --lint.
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint_k2  # noqa: E402


def run_on(tree):
    """tree: {relpath: contents}. Returns the list of findings."""
    with tempfile.TemporaryDirectory() as root:
        for rel, contents in tree.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(contents)
        return lint_k2.run(root)


def rules(findings):
    return sorted({f.rule for f in findings})


class ValidateMiningParamsTest(unittest.TestCase):
    def test_entry_without_validation_fails(self):
        findings = run_on({
            "src/core/m.cc": (
                "Result<std::vector<Convoy>> MineFoo(Store* s) {\n"
                "  return Convoys(s);\n"
                "}\n")})
        self.assertEqual(rules(findings), ["validate-mining-params"])

    def test_entry_with_validation_passes(self):
        findings = run_on({
            "src/core/m.cc": (
                "Result<std::vector<Convoy>> MineFoo(Store* s,\n"
                "                                    const MiningParams& p) {\n"
                "  K2_RETURN_NOT_OK(ValidateMiningParams(p));\n"
                "  return Convoys(s);\n"
                "}\n")})
        self.assertEqual(findings, [])

    def test_declaration_is_not_an_entry(self):
        findings = run_on({
            "src/core/m.cc":
                "Status MineFoo(Store* s, const MiningParams& p);\n"})
        self.assertEqual(findings, [])

    def test_allowance_covers_the_definition(self):
        findings = run_on({
            "src/core/m.cc": (
                "// k2-lint: allow(validate-mining-params): validated by\n"
                "// the public wrapper one frame up.\n"
                "Status MineFooInner(Store* s) {\n"
                "  return Status::OK();\n"
                "}\n")})
        self.assertEqual(findings, [])


class AtomicSharedPtrTest(unittest.TestCase):
    def test_atomic_shared_ptr_fails(self):
        findings = run_on({
            "src/serve/c.h":
                "std::atomic<std::shared_ptr<const Snapshot>> snap_;\n"})
        self.assertEqual(rules(findings), ["no-atomic-shared-ptr"])

    def test_mention_in_comment_passes(self):
        findings = run_on({
            "src/serve/c.h":
                "// std::atomic<std::shared_ptr> would spinlock here.\n"
                "SnapshotCell snapshot_;\n"})
        self.assertEqual(findings, [])


class LsmRawIoTest(unittest.TestCase):
    def test_fopen_in_lsm_fails(self):
        findings = run_on({
            "src/storage/lsm/w.cc":
                'void F() { std::fopen("x", "wb"); }\n'})
        self.assertEqual(rules(findings), ["lsm-io-through-env"])

    def test_fopen_outside_lsm_passes(self):
        findings = run_on({
            "src/common/env.cc": 'void F() { std::fopen("x", "wb"); }\n'})
        self.assertEqual(findings, [])

    def test_allowed_fopen_passes(self):
        findings = run_on({
            "src/storage/lsm/r.cc": (
                "// k2-lint: allow(lsm-io-through-env): read path, outside\n"
                "// the write-path fault-injection seam.\n"
                'void F() { std::fopen("x", "rb"); }\n')})
        self.assertEqual(findings, [])


class BenchHardwareKeyTest(unittest.TestCase):
    def test_unjustified_hardware_concurrency_fails(self):
        findings = run_on({
            "bench/b.cc": (
                "int main() {\n"
                "  Row(std::thread::hardware_concurrency());\n"
                "}\n")})
        self.assertEqual(rules(findings),
                         ["bench-key-hardware-independent"])

    def test_src_usage_is_out_of_scope(self):
        findings = run_on({
            "src/common/tp.cc":
                "unsigned n = std::thread::hardware_concurrency();\n"})
        self.assertEqual(findings, [])


class NolintFormatTest(unittest.TestCase):
    def test_bare_nolint_fails(self):
        findings = run_on({
            "src/a.cc": "int x = y;  // NOLINT\n"})
        self.assertEqual(rules(findings), ["nolint-format"])

    def test_check_without_reason_fails(self):
        findings = run_on({
            "src/a.cc": "int x = y;  // NOLINT(bugprone-foo)\n"})
        self.assertEqual(rules(findings), ["nolint-format"])

    def test_check_with_reason_passes(self):
        findings = run_on({
            "src/a.cc":
                "int x = y;  // NOLINT(bugprone-foo): y is checked above\n"})
        self.assertEqual(findings, [])

    def test_malformed_allowance_fails(self):
        findings = run_on({
            "src/a.cc": "// k2-lint: allow(some-rule)\nint x;\n"})
        self.assertEqual(rules(findings), ["nolint-format"])


class NoAnalysisInvariantTest(unittest.TestCase):
    def test_naked_no_analysis_fails(self):
        findings = run_on({
            "src/s.cc":
                "int Load() K2_NO_THREAD_SAFETY_ANALYSIS { return v_; }\n"})
        self.assertEqual(rules(findings), ["no-naked-no-analysis"])

    def test_prose_invariant_passes(self):
        findings = run_on({
            "src/s.cc": (
                "// Invariant (analysis off): v_ is written only before\n"
                "// the reader thread starts; this read cannot race.\n"
                "int Load() K2_NO_THREAD_SAFETY_ANALYSIS { return v_; }\n")})
        self.assertEqual(findings, [])


class ProtocolCoverageTest(unittest.TestCase):
    HEADER = (
        "enum class MessageType : uint8_t {\n"
        "  kHello = 1,\n"
        "  kError = 2,\n"
        "};\n"
        "enum class WireError : uint8_t {\n"
        "  kBadCrc = 1,\n"
        "};\n")

    def test_missing_handler_fails(self):
        findings = run_on({
            "src/serve/net/protocol.h": self.HEADER,
            "src/serve/net/protocol.cc": (
                "case MessageType::kHello: return;\n"
                "case WireError::kBadCrc: return;\n")})
        self.assertEqual(rules(findings), ["protocol-enum-coverage"])
        self.assertIn("MessageType::kError", findings[0].message)

    def test_full_coverage_passes(self):
        findings = run_on({
            "src/serve/net/protocol.h": self.HEADER,
            "src/serve/net/protocol.cc": (
                "case MessageType::kHello: case MessageType::kError:\n"
                "case WireError::kBadCrc: return;\n")})
        self.assertEqual(findings, [])


class CommentStrippingTest(unittest.TestCase):
    def test_string_literal_slashes_are_not_comments(self):
        code = 'const char* url = "http://x";  // NOLINT\n'
        stripped = lint_k2.strip_comments(code)
        self.assertIn('http://x', stripped)
        self.assertNotIn("NOLINT", stripped)

    def test_block_comment_preserves_line_numbers(self):
        code = "a\n/* b\nc */\nd\n"
        self.assertEqual(lint_k2.strip_comments(code).count("\n"),
                         code.count("\n"))


class SelfCheckTest(unittest.TestCase):
    def test_the_real_tree_is_clean(self):
        root = os.path.dirname(
            os.path.dirname(os.path.abspath(lint_k2.__file__)))
        findings = lint_k2.run(root)
        self.assertEqual([str(f) for f in findings], [])


if __name__ == "__main__":
    unittest.main()
