#include "storage/lsm_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "storage/key.h"

namespace k2 {

using lsm::LsmValue;
using lsm::SSTable;
using lsm::SSTableBuilder;

namespace {

// Read path shared by the store and its snapshots, templated over the
// memtable representation: the live store reads its SkipList, a snapshot
// reads a frozen sorted run. `tables` is newest first; per-table IO is
// charged to whatever IoStats each SSTable handle was opened with.

template <typename MemtableT>
Status LsmScanTimestamp(const MemtableT& memtable,
                        const std::vector<SSTable*>& tables, Timestamp t,
                        std::vector<SnapshotPoint>* out, IoStats* stats) {
  out->clear();
  ++stats->snapshot_scans;
  const uint64_t lo = MinKeyOf(t);
  const uint64_t hi = MaxKeyOf(t);

  // Collect versions from every overlapping source, newest-wins per key.
  struct Row {
    uint64_t key;
    uint64_t seq;
    LsmValue value;
  };
  std::vector<Row> rows;
  memtable.Scan(lo, hi, [&](uint64_t key, const LsmValue& value) {
    rows.push_back(Row{key, ~0ULL, value});
  });
  for (SSTable* table : tables) {
    if (!table->Overlaps(lo, hi)) continue;
    K2_RETURN_NOT_OK(
        table->Scan(lo, hi, [&](uint64_t key, const LsmValue& value) {
          rows.push_back(Row{key, table->seq(), value});
        }));
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.seq > b.seq;
  });
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0 && rows[i].key == rows[i - 1].key) continue;
    out->push_back(
        SnapshotPoint{KeyOid(rows[i].key), rows[i].value.x, rows[i].value.y});
  }
  stats->scanned_points += out->size();
  return Status::OK();
}

template <typename MemtableT>
Status LsmGetPoints(const MemtableT& memtable,
                    const std::vector<SSTable*>& tables, bool use_bloom,
                    Timestamp t, const ObjectSet& objects,
                    std::vector<SnapshotPoint>* out, IoStats* stats) {
  out->clear();
  stats->point_queries += objects.size();
  const bool have_memtable = !memtable.empty();
  for (ObjectId oid : objects) {
    const uint64_t key = MakeKey(t, oid);
    LsmValue value;
    if (have_memtable && memtable.Get(key, &value)) {
      out->push_back(SnapshotPoint{oid, value.x, value.y});
      continue;
    }
    bool found = false;
    for (SSTable* table : tables) {
      K2_ASSIGN_OR_RETURN(found, table->Get(key, &value, use_bloom));
      if (found) {
        out->push_back(SnapshotPoint{oid, value.x, value.y});
        break;
      }
    }
  }
  stats->point_hits += out->size();
  return Status::OK();
}

/// Frozen memtable: the SkipList contents as one sorted run, exposing the
/// subset of the SkipList read API the shared helpers use.
class SortedRun {
 public:
  void Add(uint64_t key, const LsmValue& value) {
    rows_.emplace_back(key, value);
  }

  bool empty() const { return rows_.empty(); }

  bool Get(uint64_t key, LsmValue* value) const {
    auto it = std::lower_bound(
        rows_.begin(), rows_.end(), key,
        [](const auto& row, uint64_t k) { return row.first < k; });
    if (it == rows_.end() || it->first != key) return false;
    *value = it->second;
    return true;
  }

  template <typename Fn>
  void Scan(uint64_t lo, uint64_t hi, Fn&& fn) const {
    auto it = std::lower_bound(
        rows_.begin(), rows_.end(), lo,
        [](const auto& row, uint64_t k) { return row.first < k; });
    for (; it != rows_.end() && it->first <= hi; ++it) fn(it->first, it->second);
  }

 private:
  std::vector<std::pair<uint64_t, LsmValue>> rows_;
};

/// Read-only view over the immutable table files: private SSTable handles
/// (own mmap, cache, bloom, stats) plus the frozen memtable run.
class LsmReadSnapshot final : public Store {
 public:
  LsmReadSnapshot(SortedRun memtable, bool use_bloom,
                  std::vector<Timestamp> timestamps, uint64_t num_points)
      : memtable_(std::move(memtable)),
        use_bloom_(use_bloom),
        timestamps_(std::move(timestamps)),
        num_points_(num_points) {}

  Status AddTable(const std::string& path, uint64_t seq) {
    K2_ASSIGN_OR_RETURN(std::unique_ptr<SSTable> table,
                        SSTable::Open(path, seq, &io_stats_));
    tables_.push_back(std::move(table));
    flat_.push_back(tables_.back().get());
    return Status::OK();
  }

  std::string name() const override { return "lsmt"; }
  Status BulkLoad(const Dataset&) override {
    return Status::Invalid("read snapshot of lsmt is read-only");
  }
  Status Append(Timestamp, const std::vector<SnapshotPoint>&) override {
    return Status::Invalid("read snapshot of lsmt is read-only");
  }
  Status ScanTimestamp(Timestamp t, std::vector<SnapshotPoint>* out) override {
    return LsmScanTimestamp(memtable_, flat_, t, out, &io_stats_);
  }
  Status GetPoints(Timestamp t, const ObjectSet& objects,
                   std::vector<SnapshotPoint>* out) override {
    return LsmGetPoints(memtable_, flat_, use_bloom_, t, objects, out,
                        &io_stats_);
  }
  TimeRange time_range() const override {
    if (timestamps_.empty()) return TimeRange{0, -1};
    return TimeRange{timestamps_.front(), timestamps_.back()};
  }
  const std::vector<Timestamp>& timestamps() const override {
    return timestamps_;
  }
  uint64_t num_points() const override { return num_points_; }

 private:
  std::vector<std::unique_ptr<SSTable>> tables_;
  std::vector<SSTable*> flat_;  // newest first, mirrors the parent's order
  SortedRun memtable_;
  bool use_bloom_;
  std::vector<Timestamp> timestamps_;
  uint64_t num_points_;
};

}  // namespace

LsmStore::LsmStore(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
}

std::string LsmStore::NextTablePath() {
  return dir_ + "/sstable_" + std::to_string(next_seq_) + ".sst";
}

Status LsmStore::Put(Timestamp t, ObjectId oid, double x, double y) {
  memtable_.Put(MakeKey(t, oid), LsmValue{x, y});
  // Keep the flat tick list sorted and unique as ticks arrive; time-ordered
  // ingest hits the cheap push_back path.
  if (tick_cache_.empty() || t > tick_cache_.back()) {
    tick_cache_.push_back(t);
  } else {
    auto it = std::lower_bound(tick_cache_.begin(), tick_cache_.end(), t);
    if (it == tick_cache_.end() || *it != t) tick_cache_.insert(it, t);
  }
  ++num_points_;
  return MaybeFlush();
}

Status LsmStore::Append(Timestamp t, const std::vector<SnapshotPoint>& points) {
  K2_RETURN_NOT_OK(CheckAppend(t, points));
  for (const SnapshotPoint& p : points) {
    K2_RETURN_NOT_OK(Put(t, p.oid, p.x, p.y));
  }
  return Status::OK();
}

Status LsmStore::BulkLoad(const Dataset& dataset) {
  // Reset any previous content.
  memtable_.Clear();
  for (auto& tier : tiers_) {
    for (auto& table : tier) std::remove(table->path().c_str());
  }
  tiers_.clear();
  flat_newest_first_.clear();
  tick_cache_.clear();
  num_points_ = 0;

  // Route every row through the write path so that flushes and compactions
  // actually happen — the generators emit in time order, which mirrors how
  // movement data arrives in an operational store.
  for (const PointRecord& rec : dataset.records()) {
    K2_RETURN_NOT_OK(Put(rec.t, rec.oid, rec.x, rec.y));
  }
  K2_RETURN_NOT_OK(Flush());
  num_points_ = dataset.num_points();
  // Loading routed every row through Put, so flush/compaction IO landed in
  // io_stats_ — reset, or the first mining run's pruning_ratio() would be
  // polluted by ingest reads (Table 5 numbers).
  io_stats_.Clear();
  return Status::OK();
}

Status LsmStore::MaybeFlush() {
  if (memtable_.size() < options_.memtable_limit) return Status::OK();
  return Flush();
}

Status LsmStore::Flush() {
  if (memtable_.empty()) return Status::OK();
  const std::string path = NextTablePath();
  SSTableBuilder builder(path);
  builder.Reserve(memtable_.size());
  Status status = Status::OK();
  memtable_.ForEach([&](uint64_t key, const LsmValue& value) {
    if (status.ok()) status = builder.Add(key, value);
  });
  K2_RETURN_NOT_OK(status);
  K2_RETURN_NOT_OK(builder.Finish());
  K2_ASSIGN_OR_RETURN(std::unique_ptr<SSTable> table,
                      SSTable::Open(path, next_seq_, &io_stats_));
  ++next_seq_;
  if (tiers_.empty()) tiers_.emplace_back();
  tiers_[0].push_back(std::move(table));
  memtable_.Clear();
  K2_RETURN_NOT_OK(MaybeCompact());
  RebuildFlatView();
  return Status::OK();
}

Status LsmStore::MaybeCompact() {
  for (size_t tier = 0; tier < tiers_.size(); ++tier) {
    if (tiers_[tier].size() < options_.tier_fanout) continue;
    K2_ASSIGN_OR_RETURN(std::unique_ptr<SSTable> merged,
                        MergeTables(tiers_[tier]));
    for (auto& table : tiers_[tier]) std::remove(table->path().c_str());
    tiers_[tier].clear();
    if (tier + 1 >= tiers_.size()) tiers_.emplace_back();
    tiers_[tier + 1].push_back(std::move(merged));
    ++compactions_run_;
    // A cascade may now be due in tier+1; the loop continues upward.
  }
  return Status::OK();
}

Result<std::unique_ptr<SSTable>> LsmStore::MergeTables(
    const std::vector<std::unique_ptr<SSTable>>& tables) {
  // Sort-based merge: materialize (key, seq, value), keep the newest version
  // of each key. Table sizes at our scales fit comfortably in memory; a
  // streaming k-way heap merge would replace this for out-of-core tables.
  struct Row {
    uint64_t key;
    uint64_t seq;
    LsmValue value;
  };
  std::vector<Row> rows;
  uint64_t total = 0;
  for (const auto& table : tables) total += table->num_entries();
  rows.reserve(total);
  for (const auto& table : tables) {
    const uint64_t seq = table->seq();
    K2_RETURN_NOT_OK(
        table->Scan(0, ~0ULL, [&](uint64_t key, const LsmValue& value) {
          rows.push_back(Row{key, seq, value});
        }));
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.seq > b.seq;  // newest first within a key
  });

  const std::string path = NextTablePath();
  SSTableBuilder builder(path);
  builder.Reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0 && rows[i].key == rows[i - 1].key) continue;  // older version
    K2_RETURN_NOT_OK(builder.Add(rows[i].key, rows[i].value));
  }
  K2_RETURN_NOT_OK(builder.Finish());
  K2_ASSIGN_OR_RETURN(std::unique_ptr<SSTable> merged,
                      SSTable::Open(path, next_seq_, &io_stats_));
  ++next_seq_;
  return merged;
}

void LsmStore::RebuildFlatView() {
  flat_newest_first_.clear();
  for (auto& tier : tiers_) {
    for (auto& table : tier) flat_newest_first_.push_back(table.get());
  }
  std::sort(flat_newest_first_.begin(), flat_newest_first_.end(),
            [](const SSTable* a, const SSTable* b) { return a->seq() > b->seq(); });
}

Status LsmStore::ScanTimestamp(Timestamp t, std::vector<SnapshotPoint>* out) {
  return LsmScanTimestamp(memtable_, flat_newest_first_, t, out, &io_stats_);
}

Status LsmStore::GetPoints(Timestamp t, const ObjectSet& objects,
                           std::vector<SnapshotPoint>* out) {
  return LsmGetPoints(memtable_, flat_newest_first_, options_.use_bloom, t,
                      objects, out, &io_stats_);
}

Result<std::unique_ptr<Store>> LsmStore::CreateReadSnapshot() {
  SortedRun run;
  // ForEach visits in key order, so the run is born sorted.
  memtable_.ForEach(
      [&](uint64_t key, const LsmValue& value) { run.Add(key, value); });
  auto snapshot = std::make_unique<LsmReadSnapshot>(
      std::move(run), options_.use_bloom, tick_cache_, num_points_);
  // Open a private handle per immutable table, preserving newest-first
  // order; re-reading each table's resident index and bloom is the
  // per-snapshot setup cost, charged to the snapshot's io_stats().
  for (SSTable* table : flat_newest_first_) {
    K2_RETURN_NOT_OK(snapshot->AddTable(table->path(), table->seq()));
  }
  return std::unique_ptr<Store>(std::move(snapshot));
}

TimeRange LsmStore::time_range() const {
  if (tick_cache_.empty()) return TimeRange{0, -1};
  return TimeRange{tick_cache_.front(), tick_cache_.back()};
}

const std::vector<Timestamp>& LsmStore::timestamps() const {
  return tick_cache_;
}

size_t LsmStore::num_sstables() const {
  size_t n = 0;
  for (const auto& tier : tiers_) n += tier.size();
  return n;
}

}  // namespace k2
