// Seeded proximity-log generator with planted convoys: the coordinate-free
// analogue of GeneratePlantedConvoys. Ground truth is exact — a planted
// group is a clique at every tick of its interval, so the miners must
// recover it verbatim — while noise pairs are sparse random co-locations
// among the non-grouped objects.
#ifndef K2_GEN_PROXIMITY_GEN_H_
#define K2_GEN_PROXIMITY_GEN_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "model/proximity.h"

namespace k2 {

struct PlantedProximityGroup {
  int size = 3;         // objects in the group (pairwise co-located)
  Timestamp start = 0;  // first tick the clique holds
  Timestamp end = 0;    // last tick (inclusive)
};

struct PlantedProximitySpec {
  int num_noise_objects = 20;
  int num_ticks = 50;
  // Per-tick probability that any given unordered pair of currently
  // non-grouped objects registers a spurious co-location. Keep it low
  // enough that noise clusters of size >= m almost never persist k ticks.
  double noise_pair_prob = 0.01;
  std::vector<PlantedProximityGroup> groups;
  uint64_t seed = 1;
};

/// Planted-clique proximity log. Object ids mirror GeneratePlantedConvoys:
/// group members first (group 0 gets ids 0..size-1, etc.), then noise
/// objects. During [start, end] a group emits all its member pairs each
/// tick; outside the interval its members fall back into the noise pool.
ProximityLog GeneratePlantedProximity(const PlantedProximitySpec& spec);

}  // namespace k2

#endif  // K2_GEN_PROXIMITY_GEN_H_
