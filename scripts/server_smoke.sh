#!/usr/bin/env bash
# End-to-end smoke of the network serving layer: starts a real k2_server on
# an ephemeral loopback port, then drives k2_server_smoke against it — full
# ingest over the wire, every query type (and a conjunction) diff-checked
# byte-for-byte against an in-process reference engine (including after a
# mid-stream snapshot swap), the malformed-frame error paths, and finally a
# kShutdown message whose graceful drain must bring the server process to a
# clean exit 0.
#
# Usage: scripts/server_smoke.sh
#   BUILD_DIR  build tree with k2_server + k2_server_smoke (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
SERVER="$BUILD_DIR/src/k2_server"
SMOKE="$BUILD_DIR/src/k2_server_smoke"

for bin in "$SERVER" "$SMOKE"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found; build the default targets first" >&2
    exit 1
  fi
done

# Mining params must match on both sides: the smoke binary rebuilds the
# same catalog in-process and compares raw reply bytes.
M=3 K=4 EPS=120 PUBLISH_EVERY=2

log=$(mktemp)
trap 'rm -f "$log"; kill "$server_pid" 2>/dev/null || true' EXIT

"$SERVER" --host 127.0.0.1 --port 0 --m "$M" --k "$K" --eps "$EPS" \
  --publish-every "$PUBLISH_EVERY" > "$log" 2>&1 &
server_pid=$!

# The server prints "k2_server: listening on 127.0.0.1:PORT (...)" once
# every worker's listener is bound; wait for that line, then parse the
# kernel-chosen port out of it.
port=""
for _ in $(seq 1 100); do
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "error: k2_server exited before listening:" >&2
    cat "$log" >&2
    exit 1
  fi
  port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log")
  [[ -n "$port" ]] && break
  sleep 0.1
done
if [[ -z "$port" ]]; then
  echo "error: k2_server never reported a listening port:" >&2
  cat "$log" >&2
  exit 1
fi
echo "k2_server up on 127.0.0.1:$port (pid $server_pid)"

"$SMOKE" --host 127.0.0.1 --port "$port" --m "$M" --k "$K" --eps "$EPS" \
  --publish-every "$PUBLISH_EVERY" --shutdown

# --shutdown sent kShutdown: the daemon must drain and exit 0 on its own.
if ! wait "$server_pid"; then
  echo "error: k2_server did not shut down cleanly:" >&2
  cat "$log" >&2
  exit 1
fi
grep -q "drained and shut down cleanly" "$log"
echo "server smoke passed: wire answers byte-identical, drain clean"
