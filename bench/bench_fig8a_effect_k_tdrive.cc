// Fig. 8a — T-Drive: effect of varying k on runtime (five miners).
#include "bench/effect_sweep_common.h"
int main() {
  std::vector<k2::MiningParams> sweep;
  for (int k : {200, 400, 600, 800, 1000, 1200}) sweep.push_back({3, k, 60.0});
  return k2::bench::RunEffectSweep("Fig 8a: T-Drive — effect of k (seconds)",
                                   k2::bench::TDrive(), "fig8a", "k", sweep);
}
