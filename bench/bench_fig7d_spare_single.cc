// Fig. 7d — k/2 gain over SPARE on a single machine, 1..8 cores.
#include "bench/spare_gain_common.h"

int main() {
  return k2::bench::RunSpareGainFigure(
      "Fig 7d: k/2 gain over SPARE, single machine (workers 1-8)",
      {1, 2, 4, 8});
}
