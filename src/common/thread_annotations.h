// Clang thread-safety-analysis attribute macros (K2_GUARDED_BY and
// friends). Under clang, `-Wthread-safety` turns these into compile-time
// lock-discipline checks: a K2_GUARDED_BY(mu) field read without mu held, a
// K2_REQUIRES(mu) function called without the lock, or a forgotten release
// is a build error in the CI `thread-safety` job (-Werror=thread-safety).
// Under every other compiler the macros expand to nothing, so gcc builds
// are byte-identical to the unannotated code.
//
// The analysis only understands capabilities it can see: annotate with the
// k2::Mutex / k2::MutexLock / k2::CondVar wrappers from common/mutex.h
// (std::mutex itself carries no capability attributes, so locking it is
// invisible to the analyzer). The attribute vocabulary and semantics are
// the ones documented at
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html; the macro set
// mirrors Abseil's base/thread_annotations.h so the patterns the analyzer
// was built against apply verbatim.
//
// What the analysis can NOT see — single-writer contracts enforced by
// counters instead of locks (serve/catalog.h's SnapshotCell), or
// const-read paths that rely on external serialization (storage/store.h)
// — is marked K2_NO_THREAD_SAFETY_ANALYSIS with a prose invariant at each
// site and catalogued in docs/ARCHITECTURE.md ("Lock discipline").
#ifndef K2_COMMON_THREAD_ANNOTATIONS_H_
#define K2_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define K2_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define K2_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

/// Declares a class to be a capability (lockable type). The string is the
/// capability kind used in diagnostics, e.g. K2_CAPABILITY("mutex").
#define K2_CAPABILITY(x) K2_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor (std::lock_guard shape).
#define K2_SCOPED_CAPABILITY K2_THREAD_ANNOTATION__(scoped_lockable)

/// Field/variable may only be accessed while holding the given capability.
#define K2_GUARDED_BY(x) K2_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field: the pointed-to DATA (not the pointer itself) may only be
/// dereferenced while holding the given capability.
#define K2_PT_GUARDED_BY(x) K2_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention); attach to the mutex
/// member that must be acquired before/after the listed ones.
#define K2_ACQUIRED_BEFORE(...) \
  K2_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define K2_ACQUIRED_AFTER(...) \
  K2_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Caller must hold the capability (exclusively) on entry; the function
/// neither acquires nor releases it. The "Locked" method suffix convention
/// maps to this attribute.
#define K2_REQUIRES(...) \
  K2_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define K2_REQUIRES_SHARED(...) \
  K2_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past the return.
#define K2_ACQUIRE(...) K2_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define K2_ACQUIRE_SHARED(...) \
  K2_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases a capability the caller held on entry.
#define K2_RELEASE(...) K2_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define K2_RELEASE_SHARED(...) \
  K2_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function attempts to acquire the capability; the first argument is the
/// return value that means success, e.g. K2_TRY_ACQUIRE(true).
#define K2_TRY_ACQUIRE(...) \
  K2_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrancy / deadlock guard).
#define K2_EXCLUDES(...) K2_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (fatal if not); tells the
/// analyzer to treat it as held from here on.
#define K2_ASSERT_CAPABILITY(x) \
  K2_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the given capability (accessor pattern).
#define K2_RETURN_CAPABILITY(x) K2_THREAD_ANNOTATION__(lock_returned(x))

/// Turns the analysis off inside one function body. Every use MUST carry a
/// prose comment stating the invariant that makes the unchecked access safe
/// (scripts/lint_k2.py rejects naked uses), and the invariant belongs in
/// the docs/ARCHITECTURE.md lock-discipline table.
#define K2_NO_THREAD_SAFETY_ANALYSIS \
  K2_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // K2_COMMON_THREAD_ANNOTATIONS_H_
