#include "common/object_set.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace k2 {

ObjectSet::ObjectSet(std::vector<ObjectId> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

ObjectSet ObjectSet::FromSorted(std::vector<ObjectId> ids) {
  assert(std::is_sorted(ids.begin(), ids.end()));
  assert(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  ObjectSet s;
  s.ids_ = std::move(ids);
  return s;
}

ObjectSet ObjectSet::Of(std::initializer_list<ObjectId> ids) {
  return ObjectSet(std::vector<ObjectId>(ids));
}

bool ObjectSet::Contains(ObjectId oid) const {
  return std::binary_search(ids_.begin(), ids_.end(), oid);
}

bool ObjectSet::IsSubsetOf(const ObjectSet& other) const {
  if (size() > other.size()) return false;
  return std::includes(other.ids_.begin(), other.ids_.end(), ids_.begin(),
                       ids_.end());
}

ObjectSet ObjectSet::Intersect(const ObjectSet& a, const ObjectSet& b) {
  std::vector<ObjectId> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.ids_.begin(), a.ids_.end(), b.ids_.begin(),
                        b.ids_.end(), std::back_inserter(out));
  return FromSorted(std::move(out));
}

ObjectSet ObjectSet::Union(const ObjectSet& a, const ObjectSet& b) {
  std::vector<ObjectId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.ids_.begin(), a.ids_.end(), b.ids_.begin(), b.ids_.end(),
                 std::back_inserter(out));
  return FromSorted(std::move(out));
}

ObjectSet ObjectSet::Difference(const ObjectSet& a, const ObjectSet& b) {
  std::vector<ObjectId> out;
  out.reserve(a.size());
  std::set_difference(a.ids_.begin(), a.ids_.end(), b.ids_.begin(),
                      b.ids_.end(), std::back_inserter(out));
  return FromSorted(std::move(out));
}

size_t ObjectSet::IntersectionSize(const ObjectSet& a, const ObjectSet& b) {
  size_t n = 0;
  auto ia = a.ids_.begin();
  auto ib = b.ids_.begin();
  while (ia != a.ids_.end() && ib != b.ids_.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++n;
      ++ia;
      ++ib;
    }
  }
  return n;
}

std::string ObjectSet::DebugString() const {
  std::ostringstream os;
  os << '{';
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (i > 0) os << ", ";
    os << ids_[i];
  }
  os << '}';
  return os.str();
}

size_t ObjectSet::Hash() const {
  // FNV-1a over the raw id bytes.
  size_t h = 1469598103934665603ULL;
  for (ObjectId id : ids_) {
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (id >> shift) & 0xffu;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace k2
