// Flat-file store: one binary log of fixed-width rows in (t, oid) order plus
// an in-memory extent directory per timestamp. Snapshot scans are a single
// seek + sequential read; point reads have no index and must scan the whole
// timestamp extent — the paper's observation that "flat files are good for
// scans but are not suitable for random access" (Sec. 5).
#ifndef K2_STORAGE_FILE_STORE_H_
#define K2_STORAGE_FILE_STORE_H_

#include <cstdio>
#include <string>
#include <vector>

#include "storage/store.h"

namespace k2 {

class FileStore final : public Store {
 public:
  /// Rows are stored at `path`; the file is created on BulkLoad.
  explicit FileStore(std::string path);
  ~FileStore() override;

  FileStore(const FileStore&) = delete;
  FileStore& operator=(const FileStore&) = delete;

  std::string name() const override { return "file"; }
  Status BulkLoad(const Dataset& dataset) override;
  Status Append(Timestamp t, const std::vector<SnapshotPoint>& points) override;
  Status ScanTimestamp(Timestamp t, std::vector<SnapshotPoint>* out) override;
  Status GetPoints(Timestamp t, const ObjectSet& objects,
                   std::vector<SnapshotPoint>* out) override;
  TimeRange time_range() const override { return time_range_; }
  const std::vector<Timestamp>& timestamps() const override {
    return timestamps_;
  }
  uint64_t num_points() const override { return num_points_; }

  /// Native snapshot: its own read handle on the backing file plus a copy
  /// of the (small) extent directory, so concurrent readers never share a
  /// file position or scratch buffer.
  Result<std::unique_ptr<Store>> CreateReadSnapshot() override;

  /// Size of the backing file in bytes (0 before BulkLoad).
  uint64_t file_size_bytes() const;

  /// Row extent of one timestamp in the backing file. Public so read
  /// snapshots can copy the directory.
  struct Extent {
    uint64_t row_offset = 0;  // first row index
    uint64_t count = 0;
  };

 private:
  std::string path_;
  std::FILE* file_ = nullptr;         ///< read handle (seeks before reads)
  std::FILE* append_file_ = nullptr;  ///< persistent write handle for Append
  std::vector<Timestamp> timestamps_;
  std::vector<Extent> extents_;  // parallel to timestamps_
  std::vector<PointRecord> scratch_;
  TimeRange time_range_{0, -1};
  uint64_t num_points_ = 0;
};

}  // namespace k2

#endif  // K2_STORAGE_FILE_STORE_H_
