// Fig. 8l — data-size scalability: the same mining job on a ~4x pair of
// Brinkhoff datasets. Paper: VCoDA* grows sharply and crashes on the larger
// dataset; the k2-* engines grow sub-linearly.
#include "bench/harness.h"

#include "common/check.h"

using namespace k2;
using namespace k2::bench;

namespace {

void Measure(const Dataset& data, const std::string& tag,
             TablePrinter* table) {
  const MiningParams params{3, 200, 60.0};
  std::string vcoda = "DNF(mem)";
  if (!VcodaExceedsMemoryBudget(data)) {
    auto file_store = BuildStore(StoreKind::kFile, data, tag);
    vcoda = Fmt(RunVcoda(file_store.get(), params, true).seconds);
  }
  // Mine each engine directly after building it, with one untimed warmup
  // mine first: the initial read of a freshly built store pays one-time
  // costs unrelated to the engine (first-touch page faults on just-written
  // tables, allocator growth after the previous engine's teardown) that
  // dwarf the millisecond-scale mines on the small dataset. The recorded
  // number is the steady state, measured identically for both engines.
  auto rdbms = BuildStore(StoreKind::kBPlusTree, data, tag);
  K2_CHECK(MineK2Hop(rdbms.get(), params).ok());  // warmup, untimed
  const std::string rdbms_s = Fmt(RunK2(rdbms.get(), params).seconds);
  rdbms.reset();
  auto lsmt = BuildStore(StoreKind::kLsm, data, tag);
  K2_CHECK(MineK2Hop(lsmt.get(), params).ok());  // warmup, untimed
  const std::string lsmt_s = Fmt(RunK2(lsmt.get(), params).seconds);
  table->AddRow(
      {std::to_string(data.num_points()), vcoda, rdbms_s, lsmt_s});
}

}  // namespace

int main(int argc, char** argv) {
  ParseArgs(argc, argv);
  PrintBanner("Fig 8l: data size scalability (Brinkhoff pair)");
  TablePrinter table({"points", "VCoDA*", "k2-RDBMS", "k2-LSMT"});
  Measure(BrinkhoffSmall(), "fig8l_small", &table);
  Measure(Brinkhoff(), "fig8l_big", &table);
  table.Print();
  return 0;
}
