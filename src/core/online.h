// Online / streaming k/2-hop mining. The batch miner (core/k2hop.h) assumes
// the whole trajectory history is loaded before mining starts; an
// operational store ingests movement data tick by tick instead. The
// OnlineK2HopMiner accepts ticks append-only, routes them through the
// store's Append path, and keeps the k/2-hop pipeline hot at the ingest
// frontier:
//
//   * the ⌊k/2⌋ benchmark schedule is maintained incrementally — a
//     benchmark snapshot is clustered the moment its tick becomes final;
//   * each hop-window is mined (CandidateClusters + HwmtSpanning) the
//     moment its right benchmark lands;
//   * spanning convoys fold through a SpanningConvoyMerger; merged convoys
//     that die start resumable right-extension walks (ConvoyExtensionWalk)
//     which advance with the frontier and suspend when they catch up;
//   * a walk that completes strictly before the frontier yields convoys
//     whose left-extension and FC validation touch only final ticks, so
//     they are computed eagerly and emitted as *closed* convoys.
//
// Finalize() ends the stream: it flushes the merge and the suspended walks
// at the dataset boundary (their survivors are the *open*, still-alive
// convoys) and then replays the batch pipeline's global maximality barriers
// over the accumulated per-convoy results — reusing everything computed
// eagerly — so the returned convoy set is IDENTICAL to running batch
// MineK2Hop over the fully loaded store with the same parameters (asserted
// by the streaming differential tests).
#ifndef K2_CORE_ONLINE_H_
#define K2_CORE_ONLINE_H_

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/running_stat.h"
#include "core/k2hop.h"

namespace k2 {

struct OnlineK2HopOptions {
  /// Same ablation switches as K2HopOptions; keep them equal to the batch
  /// run being compared against.
  bool hwmt_binary_order = true;
  bool candidate_pruning = true;
  bool validate = true;
  /// Compute left-extension + FC validation eagerly whenever a right walk
  /// completes, emitting closed convoys before Finalize(). With false, all
  /// extension/validation work beyond the right walks is deferred to
  /// Finalize() — the result is identical either way.
  bool eager = true;
  /// Invoked once per closed convoy as it is discovered (only when `eager`).
  /// Closed convoys are final in all but one rare case: a convoy whose
  /// lifespan ends later may subsume an earlier emission; Finalize()
  /// resolves such dominance, so its result is the authoritative set.
  std::function<void(const Convoy&)> on_closed;
};

struct OnlineK2HopStats {
  /// Wall time per phase, same vocabulary as K2HopStats ("benchmark",
  /// "candidates", "HWMT", "merge", "extend-right", "extend-left",
  /// "validation") plus "ingest" for Store::Append.
  PhaseTimer phases;
  size_t ticks_ingested = 0;
  uint64_t points_ingested = 0;
  size_t empty_ticks = 0;  ///< AppendTick calls with no points (no-ops)
  size_t benchmark_points = 0;
  size_t hop_windows = 0;
  size_t hop_windows_mined = 0;
  size_t candidate_clusters = 0;
  size_t spanning_convoys = 0;
  size_t merged_convoys = 0;
  size_t walks_started = 0;
  size_t open_walks_peak = 0;  ///< most walks ever suspended at the frontier
  size_t closed_convoys = 0;   ///< emitted through the eager channel
  size_t open_convoys = 0;     ///< walk branches still alive at Finalize()
  ValidationStats validation;
  /// Per-AppendTick wall time (the amortized ingest+mine cost per tick).
  RunningStat append_latency;
  /// Tail view of the same per-tick latencies (p50/p99/p999); exact up to
  /// 4096 ticks, a uniform reservoir estimate beyond.
  PercentileReservoir append_percentiles;
  /// Store IO split by cause: Append calls vs. mining reads.
  IoStats ingest_io;
  IoStats mining_io;
  uint64_t total_points = 0;  ///< rows ingested

  uint64_t points_processed() const { return mining_io.points_read(); }
  /// Fraction of the ingested data never touched by mining reads.
  double pruning_ratio() const { return PruningRatio(mining_io, total_points); }
  std::string DebugString() const;
};

/// Incremental miner over an append-only store. Single-threaded; the store
/// must be empty at construction and be mutated only through AppendTick for
/// the lifetime of the miner (see the Store thread-safety contract).
class OnlineK2HopMiner {
 public:
  /// `store` is borrowed and must outlive the miner.
  OnlineK2HopMiner(Store* store, const MiningParams& params,
                   OnlineK2HopOptions options = {});

  /// Ingests the complete snapshot of tick `t` (all points observed at
  /// `t`, any order; normalized internally). `t` must be strictly greater
  /// than every previously appended tick; gaps are allowed and mean "no
  /// object reported during those ticks". An empty `points` is a no-op.
  /// Errors are sticky: once an append or a mining step fails, the miner
  /// refuses further work.
  Status AppendTick(Timestamp t, std::vector<SnapshotPoint> points);

  /// Ends the stream and returns the complete convoy set — equal to batch
  /// MineK2Hop over the same data and parameters. Idempotent; AppendTick
  /// is rejected afterwards. Convoys still alive at the frontier ("open")
  /// are closed at the final tick and included.
  Result<std::vector<Convoy>> Finalize();

  bool finalized() const { return final_result_.has_value(); }
  /// Latest ingested tick, or kInvalidTimestamp before the first append.
  Timestamp frontier() const { return frontier_; }
  /// Right-extension walks currently suspended at the frontier.
  size_t open_walks() const { return walks_.size(); }
  /// Convoys emitted through the eager channel so far, in emission order.
  const std::vector<Convoy>& closed_convoys() const { return closed_; }
  const OnlineK2HopStats& stats() const { return stats_; }

 private:
  /// Clusters every due benchmark and advances the walks to the frontier.
  Status Drain();
  Status ProcessBenchmark(Timestamp b);
  /// Mines the hop-window [b_left, b_right] and folds it into the merge.
  Status CloseWindow(Timestamp b_left, Timestamp b_right,
                     const std::vector<ObjectSet>& left,
                     const std::vector<ObjectSet>& right);
  Status AdvanceWalks(Timestamp upto);
  /// Registers a completed right-extension result; when `eager`, computes
  /// its left pieces and validated convoys and emits them as closed.
  Status OnRightResult(Convoy r);
  void Emit(const Convoy& closed);
  /// Cached per-convoy tails of the pipeline (deterministic given the data
  /// left of / inside the convoy, which is final).
  Result<const std::vector<Convoy>*> LeftPieces(const Convoy& r);
  Result<const std::vector<Convoy>*> ValidatedPieces(const Convoy& f);

  /// Runs `fn`, charging its wall time to `phase` and its store IO to
  /// stats_.mining_io.
  Status Mined(const char* phase, const std::function<Status()>& fn);

  Store* store_;
  MiningParams params_;
  OnlineK2HopOptions options_;
  Timestamp hop_ = 1;

  Status status_ = Status::OK();  ///< sticky failure state
  Timestamp start_ = kInvalidTimestamp;
  Timestamp frontier_ = kInvalidTimestamp;
  Timestamp next_benchmark_ = kInvalidTimestamp;
  Timestamp last_benchmark_ = kInvalidTimestamp;
  bool have_prev_benchmark_ = false;
  Timestamp prev_benchmark_ = kInvalidTimestamp;
  std::vector<ObjectSet> prev_benchmark_clusters_;

  SpanningConvoyMerger merger_;
  std::vector<ConvoyExtensionWalk> walks_;
  /// Deduplicated completed right-extension results, consumed by the
  /// Finalize barriers.
  std::set<Convoy> right_seen_;

  std::map<Convoy, std::vector<Convoy>> left_cache_;
  std::map<Convoy, std::vector<Convoy>> validate_cache_;

  std::vector<Convoy> closed_;
  std::set<Convoy> emitted_;

  SnapshotScratch scratch_;
  OnlineK2HopStats stats_;
  bool finalizing_ = false;  ///< silences the eager channel during Finalize
  std::optional<std::vector<Convoy>> final_result_;
};

}  // namespace k2

#endif  // K2_CORE_ONLINE_H_
