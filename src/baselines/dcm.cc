#include "baselines/dcm.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "baselines/sweep.h"
#include "cluster/clusterer.h"
#include "common/check.h"
#include "model/dataset.h"

namespace k2 {

namespace {

/// Splits `range` into `n` contiguous, non-overlapping chunks.
std::vector<TimeRange> SplitRange(TimeRange range, int n) {
  std::vector<TimeRange> out;
  const int64_t total = range.length();
  if (total <= 0 || n <= 0) return out;
  const int64_t chunks = std::min<int64_t>(n, total);
  for (int64_t i = 0; i < chunks; ++i) {
    const Timestamp s = range.start + static_cast<Timestamp>(i * total / chunks);
    const Timestamp e =
        range.start + static_cast<Timestamp>((i + 1) * total / chunks) - 1;
    out.push_back(TimeRange{s, e});
  }
  return out;
}

}  // namespace

std::vector<Convoy> DcmMergePartitions(
    std::vector<std::vector<Convoy>> partition_results,
    const std::vector<TimeRange>& ranges, const MiningParams& params) {
  if (partition_results.empty()) return {};
  std::vector<Convoy> merged = std::move(partition_results[0]);
  for (size_t p = 1; p < partition_results.size(); ++p) {
    const Timestamp boundary = ranges[p].start;
    std::vector<Convoy>& incoming = partition_results[p];
    std::vector<Convoy> fused;
    for (const Convoy& v : merged) {
      if (v.end != boundary - 1) continue;
      for (const Convoy& w : incoming) {
        if (w.start != boundary) continue;
        ObjectSet x = ObjectSet::Intersect(v.objects, w.objects);
        if (x.size() < static_cast<size_t>(params.m)) continue;
        fused.emplace_back(std::move(x), v.start, w.end);
      }
    }
    merged.reserve(merged.size() + incoming.size() + fused.size());
    std::move(incoming.begin(), incoming.end(), std::back_inserter(merged));
    std::move(fused.begin(), fused.end(), std::back_inserter(merged));
    merged = FilterMaximal(std::move(merged));
  }
  return FilterMaximal(
      FilterMinLength(std::move(merged), params.k));
}

Result<std::vector<Convoy>> MineDcm(Store* store, const MiningParams& params,
                                    const DcmOptions& options,
                                    DcmStats* stats) {
  K2_RETURN_NOT_OK(ValidateMiningParams(params));
  DcmStats local;
  DcmStats* s = stats != nullptr ? stats : &local;

  // DCM is CMC-based: it reads the complete dataset (this is the cost the
  // paper contrasts with k/2-hop's pruning). Materialize it once — the
  // MapReduce implementation similarly streams every split off HDFS.
  Stopwatch sw;
  DatasetBuilder builder;
  std::vector<SnapshotPoint> points;
  const TimeRange range = store->time_range();
  for (Timestamp t : store->timestamps()) {
    K2_RETURN_NOT_OK(store->ScanTimestamp(t, &points));
    for (const SnapshotPoint& p : points) builder.Add(t, p.oid, p.x, p.y);
  }
  const Dataset dataset = builder.Build();
  s->phases.Add("materialize", sw.ElapsedSeconds());

  sw.Restart();
  const std::vector<TimeRange> ranges =
      SplitRange(range, options.num_partitions);
  std::vector<std::vector<Convoy>> partition_results(ranges.size());
  std::vector<Status> partition_status(ranges.size(), Status::OK());
  std::atomic<size_t> next_partition{0};
  auto worker = [&]() {
    for (;;) {
      const size_t p = next_partition.fetch_add(1);
      if (p >= ranges.size()) return;
      SweepOptions sweep;
      sweep.min_length = params.k;
      sweep.keep_left_border = p > 0;
      sweep.keep_right_border = p + 1 < ranges.size();
      auto result = MaximalConvoySweep(DatasetClustersFn(&dataset, params),
                                       ranges[p], params.m, sweep);
      if (result.ok()) {
        partition_results[p] = result.MoveValue();
      } else {
        partition_status[p] = result.status();
      }
    }
  };
  const int workers = std::max(1, options.num_workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  for (const Status& st : partition_status) K2_RETURN_NOT_OK(st);
  for (const auto& pr : partition_results) s->partition_convoys += pr.size();
  s->phases.Add("partition-mining", sw.ElapsedSeconds());

  sw.Restart();
  std::vector<Convoy> result =
      DcmMergePartitions(std::move(partition_results), ranges, params);
  s->phases.Add("merge", sw.ElapsedSeconds());
  return result;
}

}  // namespace k2
