// Quickstart: build a small movement dataset, mine fully connected convoys
// with k/2-hop, and inspect the result.
//
//   $ ./examples/quickstart
#include <iostream>

#include "common/convoy.h"
#include "core/k2hop.h"
#include "gen/synthetic.h"
#include "storage/memory_store.h"

int main() {
  // 1. Get a dataset. Here: 3 friends walking together for ticks 10..39,
  //    among 20 independently wandering objects. In a real application you
  //    would load a CSV with k2::ReadCsv("trace.csv").
  k2::PlantedConvoySpec spec;
  spec.num_noise_objects = 20;
  spec.num_ticks = 60;
  spec.groups = {k2::PlantedGroup{/*size=*/3, /*start=*/10, /*end=*/39,
                                  /*speed=*/5.0}};
  spec.seed = 2024;
  const k2::Dataset dataset = k2::GeneratePlantedConvoys(spec);
  std::cout << "dataset: " << dataset.DebugString() << "\n";

  // 2. Load it into a store. MemoryStore is the zero-setup choice; swap in
  //    BPlusTreeStore / LsmStore for disk-resident data (see the
  //    storage_backends example).
  k2::MemoryStore store(dataset);

  // 3. Pick the mining parameters (Def. 8 of the paper): at least m objects,
  //    within eps metres (density-connected), for at least k ticks.
  const k2::MiningParams params{/*m=*/3, /*k=*/20, /*eps=*/3.0};

  // 4. Mine. The stats object reports what the pruning achieved.
  k2::K2HopStats stats;
  auto result = k2::MineK2Hop(&store, params, {}, &stats);
  if (!result.ok()) {
    std::cerr << "mining failed: " << result.status().ToString() << "\n";
    return 1;
  }

  // 5. Use the convoys.
  std::cout << k2::ConvoysDebugString(result.value());
  std::cout << "pruned " << stats.pruning_ratio() * 100.0
            << "% of the data (processed " << stats.points_processed()
            << " of " << stats.total_points << " points)\n";
  return 0;
}
