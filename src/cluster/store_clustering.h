// Clustering primitives expressed against the Store interface — the two data
// access patterns of k/2-hop (Sec. 5): full-snapshot clustering at benchmark
// points and restricted re-clustering of candidate objects elsewhere.
#ifndef K2_CLUSTER_STORE_CLUSTERING_H_
#define K2_CLUSTER_STORE_CLUSTERING_H_

#include <vector>

#include "common/object_set.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/store.h"

namespace k2 {

/// Scans the full snapshot at `t` and returns its (m,eps)-clusters.
Result<std::vector<ObjectSet>> ClusterSnapshot(Store* store, Timestamp t,
                                               const MiningParams& params);

/// reCluster(DB[t]|O): fetches only the points of `objects` at `t` (random
/// point reads) and clusters them. This is the pruned access path.
Result<std::vector<ObjectSet>> ReCluster(Store* store, Timestamp t,
                                         const ObjectSet& objects,
                                         const MiningParams& params);

}  // namespace k2

#endif  // K2_CLUSTER_STORE_CLUSTERING_H_
