// Table 5 — k/2-hop data pruning performance: min/max points processed and
// pruning percentage over a grid of mining parameters, for all three
// datasets. The paper reports >99 % pruning in most cases on the larger
// datasets.
#include <limits>

#include "bench/harness.h"

using namespace k2;
using namespace k2::bench;

namespace {

struct PruningRow {
  uint64_t total = 0;
  uint64_t min_processed = std::numeric_limits<uint64_t>::max();
  uint64_t max_processed = 0;
};

PruningRow Measure(const Dataset& data, const std::string& tag,
                   const std::vector<MiningParams>& grid) {
  PruningRow row;
  row.total = data.num_points();
  auto store = BuildStore(StoreKind::kBPlusTree, data, "table5_" + tag);
  for (const MiningParams& params : grid) {
    K2HopStats stats;
    RunK2(store.get(), params, &stats);
    row.min_processed = std::min(row.min_processed, stats.points_processed());
    row.max_processed = std::max(row.max_processed, stats.points_processed());
  }
  return row;
}

std::string Pct(uint64_t processed, uint64_t total) {
  if (total == 0) return "-";
  return Fmt(100.0 * (1.0 - static_cast<double>(processed) /
                                static_cast<double>(total)),
             2) +
         "%";
}

}  // namespace

int main() {
  PrintBanner("Table 5: k/2-hop data pruning performance");

  const std::vector<MiningParams> trucks_grid = {
      {3, 200, 30.0}, {3, 600, 30.0}, {6, 400, 30.0}, {3, 400, 120.0}};
  const std::vector<MiningParams> tdrive_grid = {
      {3, 200, 60.0}, {3, 600, 60.0}, {6, 400, 60.0}, {3, 400, 200.0}};
  const std::vector<MiningParams> brinkhoff_grid = {
      {3, 200, 60.0}, {3, 600, 60.0}, {6, 400, 60.0}, {3, 400, 200.0}};

  const PruningRow trucks = Measure(Trucks(), "trucks", trucks_grid);
  const PruningRow tdrive = Measure(TDrive(), "tdrive", tdrive_grid);
  const PruningRow brinkhoff = Measure(Brinkhoff(), "brinkhoff", brinkhoff_grid);

  TablePrinter table({"", "Trucks", "T-Drive", "Brinkhoff"});
  table.AddRow({"Total Number of Points", std::to_string(trucks.total),
                std::to_string(tdrive.total), std::to_string(brinkhoff.total)});
  table.AddRow({"Min Points Processed", std::to_string(trucks.min_processed),
                std::to_string(tdrive.min_processed),
                std::to_string(brinkhoff.min_processed)});
  table.AddRow({"Max Points Processed", std::to_string(trucks.max_processed),
                std::to_string(tdrive.max_processed),
                std::to_string(brinkhoff.max_processed)});
  table.AddRow({"Min Pruning", Pct(trucks.max_processed, trucks.total),
                Pct(tdrive.max_processed, tdrive.total),
                Pct(brinkhoff.max_processed, brinkhoff.total)});
  table.AddRow({"Max Pruning", Pct(trucks.min_processed, trucks.total),
                Pct(tdrive.min_processed, tdrive.total),
                Pct(brinkhoff.min_processed, brinkhoff.total)});
  table.Print();
  return 0;
}
