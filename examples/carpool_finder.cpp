// Carpool candidate finder — the paper's introductory use case: "persons /
// vehicles forming convoys repeatedly every morning ... could be good
// candidates for car-pooling" (Sec. 1).
//
// We simulate a work week of commuters on a road network. Some share a
// suburb and a workplace, so they drive the same corridor at the same time
// every morning. We mine each morning for (m=2, k)-convoys, then report the
// pairs that convoy on several distinct days.
#include <iostream>
#include <map>
#include <set>

#include "common/convoy.h"
#include "common/rng.h"
#include "core/k2hop.h"
#include "gen/road_network.h"
#include "model/dataset.h"
#include "storage/memory_store.h"

namespace {

/// One simulated weekday morning: commuters drive home -> work starting in
/// a small departure window. Returns ticks [0, 240).
k2::Dataset SimulateMorning(const k2::RoadNetwork& net,
                            const std::vector<uint32_t>& homes,
                            const std::vector<uint32_t>& works,
                            uint64_t seed) {
  k2::Rng rng(seed);
  k2::DatasetBuilder builder;
  std::vector<uint32_t> path;
  for (k2::ObjectId person = 0; person < homes.size(); ++person) {
    if (!net.FindPath(homes[person], works[person], &path)) continue;
    // Same household leaves at a similar time each day, +- a few minutes.
    k2::Timestamp depart = 20 + (person % 4) * 10 +
                           static_cast<k2::Timestamp>(rng.NextInt(4));
    k2::PathMover mover(&net, path);
    for (k2::Timestamp t = 0; t < 240; ++t) {
      k2::RoadNode pos = t < depart ? mover.Position() : mover.Step();
      // Parked at home before departure: spread out, no fake convoys.
      const double dx = t < depart ? (person % 8) * 60.0 : 0.0;
      builder.Add(t, person, pos.x + dx + rng.Gaussian(0, 3.0),
                  pos.y + rng.Gaussian(0, 3.0));
    }
  }
  return builder.Build();
}

}  // namespace

int main() {
  const int kPeople = 40;
  const int kDays = 5;
  // k = 60 ticks of co-driving per morning qualifies as a shared leg;
  // eps = 40 m means "same stretch of road".
  const k2::MiningParams params{2, 60, 40.0};

  k2::RoadNetwork::GridSpec grid;
  grid.nx = 14;
  grid.ny = 14;
  grid.side_speed = 60.0;
  grid.main_speed = 110.0;
  grid.highway_speed = 180.0;
  const k2::RoadNetwork net = k2::RoadNetwork::MakeGrid(grid, 99);

  // Households cluster in two suburbs; workplaces in two business parks.
  k2::Rng rng(5);
  std::vector<uint32_t> suburbs{net.NearestNode(0, 0),
                                net.NearestNode(net.width(), 0)};
  std::vector<uint32_t> parks{net.NearestNode(0, net.height()),
                              net.NearestNode(net.width(), net.height())};
  std::vector<uint32_t> homes, works;
  for (int p = 0; p < kPeople; ++p) {
    homes.push_back(suburbs[p % 2]);
    works.push_back(parks[(p / 2) % 2]);
  }

  // Mine every morning separately and count co-occurring pairs.
  std::map<std::pair<k2::ObjectId, k2::ObjectId>, std::set<int>> pair_days;
  for (int day = 0; day < kDays; ++day) {
    const k2::Dataset morning =
        SimulateMorning(net, homes, works, 1000 + day);
    k2::MemoryStore store(morning);
    auto result = k2::MineK2Hop(&store, params);
    if (!result.ok()) {
      std::cerr << "day " << day << ": " << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << "day " << day << ": " << result.value().size()
              << " convoy(s)\n";
    for (const k2::Convoy& convoy : result.value()) {
      const auto& ids = convoy.objects.ids();
      for (size_t i = 0; i < ids.size(); ++i) {
        for (size_t j = i + 1; j < ids.size(); ++j) {
          pair_days[{ids[i], ids[j]}].insert(day);
        }
      }
    }
  }

  std::cout << "\ncarpool candidates (pairs convoying on >= 3 of " << kDays
            << " mornings):\n";
  int found = 0;
  for (const auto& [pair, days] : pair_days) {
    if (days.size() >= 3) {
      std::cout << "  person " << pair.first << " + person " << pair.second
                << "  (" << days.size() << " mornings)\n";
      ++found;
    }
  }
  if (found == 0) std::cout << "  none\n";
  return 0;
}
