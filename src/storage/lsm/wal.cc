#include "storage/lsm/wal.h"

#include <cstring>

#include "common/crc32c.h"

namespace k2::lsm {

namespace {
constexpr size_t kFrameHeader = 8;  // crc32 + len
}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Create(Env* env,
                                                     const std::string& path) {
  K2_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                      env->NewWritableFile(path));
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(file)));
}

Status WalWriter::AddRecord(const void* payload, size_t n) {
  const uint32_t crc = Crc32c(payload, n);
  const uint32_t len = static_cast<uint32_t>(n);
  buffer_.append(reinterpret_cast<const char*>(&crc), 4);
  buffer_.append(reinterpret_cast<const char*>(&len), 4);
  buffer_.append(static_cast<const char*>(payload), n);
  bytes_written_ += kFrameHeader + n;
  if (buffer_.size() >= kFlushThreshold) return FlushBuffer();
  return Status::OK();
}

Status WalWriter::FlushBuffer() {
  if (buffer_.empty()) return Status::OK();
  K2_RETURN_NOT_OK(file_->Append(buffer_.data(), buffer_.size()));
  buffer_.clear();
  return Status::OK();
}

Status WalWriter::Sync() {
  K2_RETURN_NOT_OK(FlushBuffer());
  return file_->Sync();
}

Status WalWriter::Close() {
  K2_RETURN_NOT_OK(FlushBuffer());
  return file_->Close();
}

Result<size_t> ReplayWal(
    Env* env, const std::string& path,
    const std::function<void(const char* payload, size_t n)>& fn) {
  K2_ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(path));
  size_t offset = 0;
  size_t records = 0;
  while (data.size() - offset >= kFrameHeader) {
    uint32_t crc, len;
    std::memcpy(&crc, data.data() + offset, 4);
    std::memcpy(&len, data.data() + offset + 4, 4);
    if (len > data.size() - offset - kFrameHeader) break;  // torn tail
    const char* payload = data.data() + offset + kFrameHeader;
    if (Crc32c(payload, len) != crc) break;  // corrupt frame: stop here
    fn(payload, len);
    offset += kFrameHeader + len;
    ++records;
  }
  return records;
}

}  // namespace k2::lsm
