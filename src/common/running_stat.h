// Streaming scalar summary (count / total / min / max / mean) with O(1)
// state — used by the online mining path to report per-tick latencies
// without retaining a sample per tick.
#ifndef K2_COMMON_RUNNING_STAT_H_
#define K2_COMMON_RUNNING_STAT_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <sstream>
#include <string>

namespace k2 {

class RunningStat {
 public:
  void Add(double v) {
    ++count_;
    total_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  size_t count() const { return count_; }
  double total() const { return total_; }
  double mean() const {
    return count_ == 0 ? 0.0 : total_ / static_cast<double>(count_);
  }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  void Clear() { *this = RunningStat(); }

  /// "n=120 total=0.5 mean=0.004 min=0.001 max=0.02".
  std::string DebugString() const {
    std::ostringstream os;
    os << "n=" << count_ << " total=" << total_ << " mean=" << mean()
       << " min=" << min() << " max=" << max();
    return os.str();
  }

 private:
  size_t count_ = 0;
  double total_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace k2

#endif  // K2_COMMON_RUNNING_STAT_H_
