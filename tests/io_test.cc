// CSV / binary dataset interchange tests.
#include <fstream>

#include <gtest/gtest.h>

#include "gen/synthetic.h"
#include "io/csv.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::MakeDataset;
using ::k2::testing::ScratchDir;

TEST(CsvTest, RoundTrip) {
  const Dataset ds =
      MakeDataset({{0, 1, 1.5, -2.25}, {0, 2, 3.0, 4.0}, {7, 1, 0.125, 9.0}});
  const std::string path = ScratchDir("csv_rt") + "/data.csv";
  ASSERT_TRUE(WriteCsv(ds, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().records(), ds.records());
}

TEST(CsvTest, HeaderColumnOrderIsFlexible) {
  const std::string path = ScratchDir("csv_cols") + "/data.csv";
  {
    std::ofstream out(path);
    out << "oid,x,y,t\n7,1.0,2.0,3\n8,4.0,5.0,3\n";
  }
  auto ds = ReadCsv(path);
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(ds.value().num_points(), 2u);
  const PointRecord* rec = ds.value().Find(3, 7);
  ASSERT_NE(rec, nullptr);
  EXPECT_DOUBLE_EQ(rec->x, 1.0);
}

TEST(CsvTest, CrlfFileParses) {
  // Windows-exported CSVs end every line with \r\n; the header match used
  // to reject them because the last column name kept its '\r'.
  const std::string path = ScratchDir("csv_crlf") + "/data.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "t,oid,x,y\r\n0,1,1.5,-2.25\r\n0,2,3.0,4.0\r\n7,1,0.125,9.0\r\n";
  }
  auto ds = ReadCsv(path);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  const Dataset expected =
      MakeDataset({{0, 1, 1.5, -2.25}, {0, 2, 3.0, 4.0}, {7, 1, 0.125, 9.0}});
  EXPECT_EQ(ds.value().records(), expected.records());
}

TEST(CsvTest, CrlfRoundTrip) {
  // Write with WriteCsv, convert to CRLF line endings, read back.
  const Dataset ds =
      MakeDataset({{0, 1, 1.5, -2.25}, {0, 2, 3.0, 4.0}, {7, 1, 0.125, 9.0}});
  const std::string dir = ScratchDir("csv_crlf_rt");
  const std::string unix_path = dir + "/unix.csv";
  const std::string dos_path = dir + "/dos.csv";
  ASSERT_TRUE(WriteCsv(ds, unix_path).ok());
  {
    std::ifstream in(unix_path);
    std::ofstream out(dos_path, std::ios::binary);
    std::string line;
    while (std::getline(in, line)) out << line << "\r\n";
  }
  auto back = ReadCsv(dos_path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().records(), ds.records());
}

TEST(CsvTest, WhitespacePaddedFieldsParse) {
  const std::string path = ScratchDir("csv_ws") + "/data.csv";
  {
    std::ofstream out(path);
    out << " t , oid , x , y \n 3 , 7 , 1.0 , 2.0 \n";
  }
  auto ds = ReadCsv(path);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  ASSERT_EQ(ds.value().num_points(), 1u);
  const PointRecord* rec = ds.value().Find(3, 7);
  ASSERT_NE(rec, nullptr);
  EXPECT_DOUBLE_EQ(rec->y, 2.0);
}

TEST(CsvTest, MissingColumnIsError) {
  const std::string path = ScratchDir("csv_missing") + "/data.csv";
  {
    std::ofstream out(path);
    out << "oid,x,y\n1,2,3\n";
  }
  auto ds = ReadCsv(path);
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalid);
}

TEST(CsvTest, MalformedRowIsError) {
  const std::string path = ScratchDir("csv_bad") + "/data.csv";
  {
    std::ofstream out(path);
    out << "t,oid,x,y\n1,2,3.0,4.0\nnot,a,row,!\n";
  }
  auto ds = ReadCsv(path);
  EXPECT_FALSE(ds.ok());
}

TEST(CsvTest, MalformedFieldErrorNamesRowAndColumn) {
  const std::string path = ScratchDir("csv_bad_field") + "/data.csv";
  {
    std::ofstream out(path);
    out << "t,oid,x,y\n1,2,3.0,4.0\n2,7,oops,4.0\n";
  }
  auto ds = ReadCsv(path);
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalid);
  EXPECT_NE(ds.status().message().find(":3"), std::string::npos)
      << ds.status().message();
  EXPECT_NE(ds.status().message().find("column 'x'"), std::string::npos)
      << ds.status().message();
  EXPECT_NE(ds.status().message().find("oops"), std::string::npos)
      << ds.status().message();
}

TEST(CsvTest, TrailingJunkInNumericFieldIsError) {
  // std::stol used to stop at the junk and silently parse "5abc" as 5.
  const std::string path = ScratchDir("csv_junk") + "/data.csv";
  {
    std::ofstream out(path);
    out << "t,oid,x,y\n5abc,2,3.0,4.0\n";
  }
  auto ds = ReadCsv(path);
  ASSERT_FALSE(ds.ok());
  EXPECT_NE(ds.status().message().find("column 't'"), std::string::npos)
      << ds.status().message();
}

TEST(CsvTest, LeadingPlusSignStillParses) {
  // std::stod/stol accepted an explicit '+'; the from_chars rewrite keeps
  // that compatibility (but "+-3" stays invalid).
  const std::string path = ScratchDir("csv_plus") + "/data.csv";
  {
    std::ofstream out(path);
    out << "t,oid,x,y\n+1,+2,+3.5,-4.0\n2,3,+-5.0,0\n";
  }
  auto ds = ReadCsv(path);
  ASSERT_FALSE(ds.ok());  // row 3 has the "+-5.0" field
  EXPECT_NE(ds.status().message().find(":3"), std::string::npos)
      << ds.status().message();

  {
    std::ofstream out(path);
    out << "t,oid,x,y\n+1,+2,+3.5,-4.0\n";
  }
  auto good = ReadCsv(path);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  ASSERT_EQ(good.value().num_points(), 1u);
  EXPECT_EQ(good.value().records()[0].t, 1);
  EXPECT_EQ(good.value().records()[0].oid, 2u);
  EXPECT_EQ(good.value().records()[0].x, 3.5);
  EXPECT_EQ(good.value().records()[0].y, -4.0);
}

TEST(CsvTest, OutOfRangeValueIsError) {
  const std::string path = ScratchDir("csv_range") + "/data.csv";
  {
    std::ofstream out(path);
    out << "t,oid,x,y\n99999999999999999999,2,3.0,4.0\n";
  }
  auto ds = ReadCsv(path);
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalid);
}

TEST(CsvTest, NegativeObjectIdIsError) {
  // oid is unsigned; std::stoul used to wrap "-1" around to 4294967295.
  const std::string path = ScratchDir("csv_negoid") + "/data.csv";
  {
    std::ofstream out(path);
    out << "t,oid,x,y\n1,-1,3.0,4.0\n";
  }
  auto ds = ReadCsv(path);
  ASSERT_FALSE(ds.ok());
  EXPECT_NE(ds.status().message().find("column 'oid'"), std::string::npos)
      << ds.status().message();
}

TEST(CsvTest, MissingFileIsIOError) {
  auto ds = ReadCsv("/nonexistent/nowhere.csv");
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kIOError);
}

TEST(BinaryTest, RoundTripLargeDataset) {
  RandomWalkSpec spec;
  spec.num_objects = 50;
  spec.num_ticks = 100;
  spec.seed = 33;
  const Dataset ds = GenerateRandomWalk(spec);
  const std::string path = ScratchDir("bin_rt") + "/data.bin";
  ASSERT_TRUE(WriteBinary(ds, path).ok());
  auto back = ReadBinary(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().records(), ds.records());
}

TEST(BinaryTest, EmptyDatasetRoundTrip) {
  const std::string path = ScratchDir("bin_empty") + "/data.bin";
  ASSERT_TRUE(WriteBinary(DatasetBuilder().Build(), path).ok());
  auto back = ReadBinary(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(BinaryTest, RejectsForeignFile) {
  const std::string path = ScratchDir("bin_bad") + "/garbage.bin";
  {
    std::ofstream out(path);
    out << "this is not a k2hop dataset";
  }
  EXPECT_FALSE(ReadBinary(path).ok());
}

TEST(BinaryTest, RejectsHeaderCountLargerThanFile) {
  // A header claiming a huge record count must be rejected by validating
  // against the file size — not by attempting a multi-GB allocation.
  const std::string path = ScratchDir("bin_huge") + "/huge.bin";
  {
    const uint64_t magic = 0x6b32686f70646174ULL;  // "k2hopdat"
    const uint64_t count = 1ULL << 50;              // ~27 PB of records
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(&magic), 8);
    out.write(reinterpret_cast<const char*>(&count), 8);
  }
  auto ds = ReadBinary(path);
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalid);
}

TEST(BinaryTest, RejectsTruncatedPayload) {
  // Valid header for 100 records, but only one record of payload.
  const std::string path = ScratchDir("bin_trunc") + "/trunc.bin";
  {
    const uint64_t magic = 0x6b32686f70646174ULL;
    const uint64_t count = 100;
    const PointRecord rec{1, 2, 3.0, 4.0};
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(&magic), 8);
    out.write(reinterpret_cast<const char*>(&count), 8);
    out.write(reinterpret_cast<const char*>(&rec), sizeof(rec));
  }
  auto ds = ReadBinary(path);
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalid);
}

}  // namespace
}  // namespace k2
