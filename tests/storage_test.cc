// Parameterized conformance tests: every storage engine must behave exactly
// like the in-memory oracle for scans and point reads, and must account IO.
#include <memory>
#include <numeric>
#include <thread>

#include <gtest/gtest.h>

#include <fstream>

#include "gen/synthetic.h"
#include "storage/file_store.h"
#include "storage/lsm_store.h"
#include "storage/store.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::MakeDataset;
using ::k2::testing::ScratchDir;

class StoreConformanceTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  std::unique_ptr<Store> Make(const std::string& tag) {
    auto result = CreateStore(
        GetParam(), ScratchDir(std::string("store_") + tag + "_" +
                               StoreKindName(GetParam())));
    K2_CHECK(result.ok());
    return result.MoveValue();
  }
};

TEST_P(StoreConformanceTest, NameMatchesKind) {
  auto store = Make("name");
  EXPECT_EQ(store->name(), StoreKindName(GetParam()));
}

TEST_P(StoreConformanceTest, EmptyStoreBehaviour) {
  auto store = Make("empty");
  ASSERT_TRUE(store->BulkLoad(DatasetBuilder().Build()).ok());
  EXPECT_EQ(store->num_points(), 0u);
  EXPECT_TRUE(store->time_range().empty());
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(store->ScanTimestamp(0, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(store->GetPoints(0, ObjectSet::Of({1, 2}), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_P(StoreConformanceTest, ScanReturnsSnapshotInOidOrder) {
  auto store = Make("scan");
  const Dataset ds =
      MakeDataset({{0, 3, 3, 0}, {0, 1, 1, 0}, {1, 2, 2, 0}, {3, 1, 9, 9}});
  ASSERT_TRUE(store->BulkLoad(ds).ok());
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(store->ScanTimestamp(0, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].oid, 1u);
  EXPECT_EQ(out[1].oid, 3u);
  EXPECT_DOUBLE_EQ(out[1].x, 3.0);
  // Missing tick scans come back empty but OK.
  ASSERT_TRUE(store->ScanTimestamp(2, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_P(StoreConformanceTest, GetPointsSkipsAbsentObjects) {
  auto store = Make("get");
  const Dataset ds = MakeDataset({{0, 1, 1, 0}, {0, 5, 5, 0}, {1, 5, 6, 0}});
  ASSERT_TRUE(store->BulkLoad(ds).ok());
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(store->GetPoints(0, ObjectSet::Of({1, 2, 5, 9}), &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].oid, 1u);
  EXPECT_EQ(out[1].oid, 5u);
  EXPECT_DOUBLE_EQ(out[1].x, 5.0);
}

TEST_P(StoreConformanceTest, MatchesMemoryOracleOnRandomData) {
  RandomWalkSpec spec;
  spec.num_objects = 25;
  spec.num_ticks = 40;
  spec.seed = 77;
  const Dataset ds = GenerateRandomWalk(spec);
  auto store = Make("oracle");
  ASSERT_TRUE(store->BulkLoad(ds).ok());
  auto oracle = ::k2::testing::MakeMemStore(ds);

  EXPECT_EQ(store->num_points(), oracle->num_points());
  EXPECT_EQ(store->time_range(), oracle->time_range());
  EXPECT_EQ(store->timestamps(), oracle->timestamps());

  std::vector<SnapshotPoint> got, want;
  for (Timestamp t = -1; t <= 41; ++t) {
    ASSERT_TRUE(store->ScanTimestamp(t, &got).ok());
    ASSERT_TRUE(oracle->ScanTimestamp(t, &want).ok());
    ASSERT_EQ(got.size(), want.size()) << "tick " << t;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].oid, want[i].oid);
      EXPECT_DOUBLE_EQ(got[i].x, want[i].x);
      EXPECT_DOUBLE_EQ(got[i].y, want[i].y);
    }
    const ObjectSet probe = ObjectSet::Of({0, 3, 7, 11, 24, 99});
    ASSERT_TRUE(store->GetPoints(t, probe, &got).ok());
    ASSERT_TRUE(oracle->GetPoints(t, probe, &want).ok());
    ASSERT_EQ(got.size(), want.size()) << "tick " << t;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].oid, want[i].oid);
      EXPECT_DOUBLE_EQ(got[i].x, want[i].x);
    }
  }
}

TEST_P(StoreConformanceTest, IoStatsAdvanceOnQueries) {
  auto store = Make("stats");
  const Dataset ds = MakeDataset({{0, 1, 1, 0}, {0, 2, 2, 0}});
  ASSERT_TRUE(store->BulkLoad(ds).ok());
  store->io_stats().Clear();
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(store->ScanTimestamp(0, &out).ok());
  EXPECT_EQ(store->io_stats().snapshot_scans, 1u);
  EXPECT_EQ(store->io_stats().scanned_points, 2u);
  ASSERT_TRUE(store->GetPoints(0, ObjectSet::Of({1}), &out).ok());
  EXPECT_EQ(store->io_stats().point_queries, 1u);
  EXPECT_EQ(store->io_stats().point_hits, 1u);
}

// Per-tier read fan-out accounting: the vector algebra must tolerate stats
// of different tier depths (a shallow store vs one that compacted deeper).
TEST(IoStatsTierTest, DeltaAndAccumulateHandleDifferentDepths) {
  IoStats shallow;  // never read past tier 0
  shallow.sstables_touched = 3;
  shallow.tier_sstables_touched = {3};
  IoStats deep;  // reads reached tier 1
  deep.sstables_touched = 8;
  deep.tier_sstables_touched = {5, 3};
  deep.tier_bloom_skipped = {0, 2};

  const IoStats d = IoStats::Delta(deep, shallow);
  ASSERT_EQ(d.tier_sstables_touched.size(), 2u);
  EXPECT_EQ(d.tier_sstables_touched[0], 2u);
  EXPECT_EQ(d.tier_sstables_touched[1], 3u);
  ASSERT_EQ(d.tier_bloom_skipped.size(), 2u);
  EXPECT_EQ(d.tier_bloom_skipped[0], 0u);
  EXPECT_EQ(d.tier_bloom_skipped[1], 2u);

  IoStats total = shallow;
  total.Accumulate(deep);
  EXPECT_EQ(total.sstables_touched, 11u);
  ASSERT_EQ(total.tier_sstables_touched.size(), 2u);
  EXPECT_EQ(total.tier_sstables_touched[0], 8u);
  EXPECT_EQ(total.tier_sstables_touched[1], 3u);
}

// End-to-end on a real multi-tier LSM store: the per-tier split must tie
// out exactly with the flat sstables_touched / bloom_negative counters.
TEST(IoStatsTierTest, LsmReadFanOutSplitsByTier) {
  LsmStore::Options options;
  options.memtable_limit = 64;
  options.tier_fanout = 2;
  LsmStore store(ScratchDir("lsm_tier_stats"), options);
  for (Timestamp t = 0; t < 100; ++t) {
    for (ObjectId o = 0; o < 8; ++o) ASSERT_TRUE(store.Put(t, o, t, o).ok());
  }
  ASSERT_TRUE(store.Flush().ok());
  ASSERT_GT(store.num_tiers(), 1u);  // compaction must have promoted tables
  ASSERT_GT(store.compactions_run(), 0u);

  store.io_stats().Clear();
  std::vector<SnapshotPoint> out;
  for (Timestamp t = 0; t < 100; t += 7) {
    ASSERT_TRUE(store.GetPoints(t, ObjectSet::Of({0, 5, 7}), &out).ok());
    // Absent oids exercise the bloom-skip path against every table probed.
    ASSERT_TRUE(store.GetPoints(t, ObjectSet::Of({1000, 2000}), &out).ok());
  }
  const IoStats& stats = store.io_stats();
  EXPECT_GT(stats.sstables_touched, 0u);
  EXPECT_LE(stats.tier_sstables_touched.size(), store.num_tiers());
  EXPECT_EQ(std::accumulate(stats.tier_sstables_touched.begin(),
                            stats.tier_sstables_touched.end(), uint64_t{0}),
            stats.sstables_touched);
  EXPECT_EQ(std::accumulate(stats.tier_bloom_skipped.begin(),
                            stats.tier_bloom_skipped.end(), uint64_t{0}),
            stats.bloom_negative);
}

TEST_P(StoreConformanceTest, BulkLoadReplacesContent) {
  auto store = Make("reload");
  ASSERT_TRUE(store->BulkLoad(MakeDataset({{0, 1, 1, 1}})).ok());
  ASSERT_TRUE(store->BulkLoad(MakeDataset({{5, 9, 2, 2}})).ok());
  EXPECT_EQ(store->num_points(), 1u);
  EXPECT_EQ(store->time_range(), (TimeRange{5, 5}));
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(store->ScanTimestamp(0, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(store->ScanTimestamp(5, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].oid, 9u);
}

TEST_P(StoreConformanceTest, NegativeTimestamps) {
  auto store = Make("negative");
  const Dataset ds = MakeDataset({{-10, 1, 1, 0}, {-9, 1, 2, 0}, {0, 1, 3, 0}});
  ASSERT_TRUE(store->BulkLoad(ds).ok());
  EXPECT_EQ(store->time_range(), (TimeRange{-10, 0}));
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(store->ScanTimestamp(-9, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].x, 2.0);
  ASSERT_TRUE(store->GetPoints(-10, ObjectSet::Of({1}), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].x, 1.0);
}

TEST_P(StoreConformanceTest, BulkLoadResetsIoStats) {
  // Loading may flush/compact (LSM) or write pages; none of that may leak
  // into the first mining run's counters (Table 5 pruning numbers).
  auto store = Make("loadstats");
  RandomWalkSpec spec;
  spec.num_objects = 20;
  spec.num_ticks = 30;
  spec.seed = 5;
  ASSERT_TRUE(store->BulkLoad(GenerateRandomWalk(spec)).ok());
  const IoStats& stats = store->io_stats();
  EXPECT_EQ(stats.points_read(), 0u);
  EXPECT_EQ(stats.snapshot_scans, 0u);
  EXPECT_EQ(stats.point_queries, 0u);
  EXPECT_EQ(stats.bytes_read, 0u);
  EXPECT_EQ(stats.seeks, 0u);
  EXPECT_EQ(stats.pages_read, 0u);
  EXPECT_EQ(stats.pages_cached, 0u);

  // Reloading after queries resets again.
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(store->ScanTimestamp(0, &out).ok());
  EXPECT_GT(store->io_stats().snapshot_scans, 0u);
  ASSERT_TRUE(store->BulkLoad(GenerateRandomWalk(spec)).ok());
  EXPECT_EQ(store->io_stats().snapshot_scans, 0u);
  EXPECT_EQ(store->io_stats().points_read(), 0u);
}

TEST_P(StoreConformanceTest, AppendedStoreMatchesBulkLoadedStore) {
  RandomWalkSpec spec;
  spec.num_objects = 18;
  spec.num_ticks = 25;
  spec.seed = 11;
  const Dataset ds = GenerateRandomWalk(spec);

  auto bulk = Make("append_bulk");
  ASSERT_TRUE(bulk->BulkLoad(ds).ok());

  auto appended = Make("append_inc");
  for (Timestamp t : ds.timestamps()) {
    ASSERT_TRUE(appended->Append(t, ::k2::SnapshotPoints(ds, t)).ok())
        << "tick " << t;
  }

  EXPECT_EQ(appended->num_points(), bulk->num_points());
  EXPECT_EQ(appended->time_range(), bulk->time_range());
  EXPECT_EQ(appended->timestamps(), bulk->timestamps());
  std::vector<SnapshotPoint> got, want;
  const ObjectSet probe = ObjectSet::Of({0, 2, 5, 9, 17, 40});
  for (Timestamp t = -1; t <= 26; ++t) {
    ASSERT_TRUE(appended->ScanTimestamp(t, &got).ok());
    ASSERT_TRUE(bulk->ScanTimestamp(t, &want).ok());
    EXPECT_EQ(got, want) << "scan tick " << t;
    ASSERT_TRUE(appended->GetPoints(t, probe, &got).ok());
    ASSERT_TRUE(bulk->GetPoints(t, probe, &want).ok());
    EXPECT_EQ(got, want) << "point reads tick " << t;
  }
}

TEST_P(StoreConformanceTest, AppendAfterBulkLoadExtendsTheStore) {
  auto store = Make("append_mixed");
  ASSERT_TRUE(
      store->BulkLoad(MakeDataset({{0, 1, 1, 0}, {1, 1, 2, 0}})).ok());
  ASSERT_TRUE(store->Append(3, {{1, 3.0, 0.0}, {2, 4.0, 0.0}}).ok());
  ASSERT_TRUE(store->Append(4, {{2, 5.0, 0.0}}).ok());
  EXPECT_EQ(store->num_points(), 5u);
  EXPECT_EQ(store->time_range(), (TimeRange{0, 4}));
  EXPECT_EQ(store->timestamps(), (std::vector<Timestamp>{0, 1, 3, 4}));
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(store->ScanTimestamp(3, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].oid, 1u);
  EXPECT_DOUBLE_EQ(out[1].x, 4.0);
  ASSERT_TRUE(store->GetPoints(4, ObjectSet::Of({1, 2}), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].oid, 2u);
  // The bulk-loaded half still reads fine.
  ASSERT_TRUE(store->ScanTimestamp(1, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].x, 2.0);
}

TEST_P(StoreConformanceTest, AppendValidatesItsPreconditions) {
  auto store = Make("append_bad");
  ASSERT_TRUE(store->Append(5, {{1, 1.0, 0.0}}).ok());
  // Not past the stored range.
  EXPECT_EQ(store->Append(5, {{2, 1.0, 0.0}}).code(), StatusCode::kInvalid);
  EXPECT_EQ(store->Append(4, {{2, 1.0, 0.0}}).code(), StatusCode::kInvalid);
  // Unsorted / duplicate oids.
  EXPECT_EQ(store->Append(6, {{3, 1.0, 0.0}, {2, 1.0, 0.0}}).code(),
            StatusCode::kInvalid);
  EXPECT_EQ(store->Append(6, {{2, 1.0, 0.0}, {2, 2.0, 0.0}}).code(),
            StatusCode::kInvalid);
  // Empty appends are no-ops.
  ASSERT_TRUE(store->Append(7, {}).ok());
  EXPECT_EQ(store->num_points(), 1u);
  EXPECT_EQ(store->time_range(), (TimeRange{5, 5}));
}

TEST_P(StoreConformanceTest, ReadSnapshotMatchesParent) {
  RandomWalkSpec spec;
  spec.num_objects = 20;
  spec.num_ticks = 30;
  spec.seed = 11;
  const Dataset ds = GenerateRandomWalk(spec);
  auto store = Make("snapshot");
  ASSERT_TRUE(store->BulkLoad(ds).ok());

  auto snapshot_result = store->CreateReadSnapshot();
  ASSERT_TRUE(snapshot_result.ok()) << snapshot_result.status().ToString();
  std::unique_ptr<Store> snapshot = snapshot_result.MoveValue();

  EXPECT_EQ(snapshot->name(), store->name());
  EXPECT_EQ(snapshot->num_points(), store->num_points());
  EXPECT_EQ(snapshot->time_range(), store->time_range());
  EXPECT_EQ(snapshot->timestamps(), store->timestamps());

  std::vector<SnapshotPoint> got, want;
  for (Timestamp t = -1; t <= 31; ++t) {
    ASSERT_TRUE(snapshot->ScanTimestamp(t, &got).ok());
    ASSERT_TRUE(store->ScanTimestamp(t, &want).ok());
    EXPECT_EQ(got, want) << "tick " << t;
    const ObjectSet probe = ObjectSet::Of({0, 2, 5, 13, 19, 77});
    ASSERT_TRUE(snapshot->GetPoints(t, probe, &got).ok());
    ASSERT_TRUE(store->GetPoints(t, probe, &want).ok());
    EXPECT_EQ(got, want) << "tick " << t;
  }
}

TEST_P(StoreConformanceTest, ReadSnapshotOfEmptyLoadedStoreReadsEmpty) {
  // A loaded-but-empty parent answers reads with empty results; so must
  // its snapshots (snapshot/parent conformance, not an error).
  auto store = Make("snapshot_empty");
  ASSERT_TRUE(store->BulkLoad(DatasetBuilder().Build()).ok());
  auto snapshot_result = store->CreateReadSnapshot();
  ASSERT_TRUE(snapshot_result.ok()) << snapshot_result.status().ToString();
  std::unique_ptr<Store> snapshot = snapshot_result.MoveValue();
  EXPECT_EQ(snapshot->num_points(), 0u);
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(snapshot->ScanTimestamp(0, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(snapshot->GetPoints(0, ObjectSet::Of({1, 2}), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_P(StoreConformanceTest, ReadSnapshotSeesAppendedDelta) {
  // Snapshots must cover data that arrived through Append (memtable / delta
  // contents), not just the bulk-loaded base.
  auto store = Make("snapshot_delta");
  ASSERT_TRUE(
      store->BulkLoad(MakeDataset({{0, 1, 1, 0}, {1, 1, 2, 0}})).ok());
  ASSERT_TRUE(store->Append(2, {{1, 3.0, 0.0}, {4, 7.0, 7.0}}).ok());

  auto snapshot_result = store->CreateReadSnapshot();
  ASSERT_TRUE(snapshot_result.ok()) << snapshot_result.status().ToString();
  std::unique_ptr<Store> snapshot = snapshot_result.MoveValue();

  EXPECT_EQ(snapshot->num_points(), 4u);
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(snapshot->ScanTimestamp(2, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].oid, 1u);
  EXPECT_DOUBLE_EQ(out[0].x, 3.0);
  EXPECT_EQ(out[1].oid, 4u);
  ASSERT_TRUE(snapshot->GetPoints(2, ObjectSet::Of({4}), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].y, 7.0);
}

TEST_P(StoreConformanceTest, ReadSnapshotIsReadOnlyAndIsolatesIo) {
  auto store = Make("snapshot_ro");
  const Dataset ds = MakeDataset({{0, 1, 1, 0}, {0, 2, 2, 0}, {1, 1, 3, 0}});
  ASSERT_TRUE(store->BulkLoad(ds).ok());

  auto snapshot_result = store->CreateReadSnapshot();
  ASSERT_TRUE(snapshot_result.ok());
  std::unique_ptr<Store> snapshot = snapshot_result.MoveValue();

  EXPECT_FALSE(snapshot->BulkLoad(ds).ok());
  EXPECT_FALSE(snapshot->Append(9, {{1, 0.0, 0.0}}).ok());

  // Native snapshots charge their own io_stats(); the parent's counters
  // must not move for snapshot reads.
  const IoStats parent_before = store->io_stats();
  const IoStats snap_before = snapshot->io_stats();
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(snapshot->ScanTimestamp(0, &out).ok());
  ASSERT_TRUE(snapshot->GetPoints(1, ObjectSet::Of({1}), &out).ok());
  const IoStats parent_delta =
      IoStats::Delta(store->io_stats(), parent_before);
  const IoStats snap_delta =
      IoStats::Delta(snapshot->io_stats(), snap_before);
  EXPECT_EQ(parent_delta.points_read() + parent_delta.snapshot_scans, 0u);
  EXPECT_EQ(snap_delta.snapshot_scans, 1u);
  EXPECT_EQ(snap_delta.point_queries, 1u);
}

TEST_P(StoreConformanceTest, ConcurrentSnapshotsReadConsistently) {
  // Each snapshot is single-threaded, but distinct snapshots must be able
  // to read concurrently without external locks (the partitioned miner's
  // access pattern). Run under TSan in CI.
  RandomWalkSpec spec;
  spec.num_objects = 12;
  spec.num_ticks = 20;
  spec.seed = 23;
  const Dataset ds = GenerateRandomWalk(spec);
  auto store = Make("snapshot_conc");
  ASSERT_TRUE(store->BulkLoad(ds).ok());

  constexpr int kReaders = 4;
  std::vector<std::unique_ptr<Store>> snapshots;
  for (int i = 0; i < kReaders; ++i) {
    auto result = store->CreateReadSnapshot();
    ASSERT_TRUE(result.ok());
    snapshots.push_back(result.MoveValue());
  }
  std::vector<uint64_t> rows_seen(kReaders, 0);
  std::vector<std::thread> threads;
  for (int i = 0; i < kReaders; ++i) {
    threads.emplace_back([&, i] {
      std::vector<SnapshotPoint> out;
      for (int round = 0; round < 3; ++round) {
        for (Timestamp t = 0; t < 20; ++t) {
          if (!snapshots[i]->ScanTimestamp(t, &out).ok()) return;
          rows_seen[i] += out.size();
          if (!snapshots[i]
                   ->GetPoints(t, ObjectSet::Of({0, 3, 7}), &out)
                   .ok()) {
            return;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int i = 0; i < kReaders; ++i) {
    EXPECT_EQ(rows_seen[i], 3 * ds.num_points()) << "reader " << i;
  }
}

TEST(FileStoreTest, FirstAppendTruncatesAStaleFile) {
  // A leftover data file from a crashed earlier run must not shift the
  // extent directory off its physical offsets.
  const std::string path = ScratchDir("file_stale") + "/data.bin";
  {
    std::ofstream stale(path, std::ios::binary);
    stale << "stale bytes from a previous run";
  }
  FileStore store(path);
  ASSERT_TRUE(store.Append(0, {{7, 1.5, 2.5}}).ok());
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(store.ScanTimestamp(0, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].oid, 7u);
  EXPECT_DOUBLE_EQ(out[0].x, 1.5);
  EXPECT_EQ(store.file_size_bytes(), sizeof(PointRecord));
}

INSTANTIATE_TEST_SUITE_P(AllEngines, StoreConformanceTest,
                         ::testing::Values(StoreKind::kMemory, StoreKind::kFile,
                                           StoreKind::kBPlusTree,
                                           StoreKind::kLsm),
                         [](const ::testing::TestParamInfo<StoreKind>& info) {
                           return StoreKindName(info.param);
                         });

}  // namespace
}  // namespace k2
