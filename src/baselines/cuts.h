// CuTS — Convoy discovery using Trajectory Simplification (Jeung et al.,
// VLDB 2008): the filter-and-refine family. Filter: simplify trajectories
// with Douglas-Peucker, partition time into λ-frames, cluster the simplified
// sub-trajectories with an inflated threshold eps + 2δ (the DP error bound),
// and keep only objects that fall in a sub-trajectory cluster. Refine: run
// the per-tick sweep on the surviving objects only. The paper (Sec. 2) notes
// the CuTS family inherits CMC's accuracy issues; our refine step uses the
// corrected sweep so the output is comparable to PCCD.
#ifndef K2_BASELINES_CUTS_H_
#define K2_BASELINES_CUTS_H_

#include <vector>

#include "common/convoy.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/types.h"
#include "storage/store.h"

namespace k2 {

struct CutsOptions {
  /// Frame length λ in ticks; 0 = use k (the CuTS default).
  int lambda = 0;
  /// Douglas-Peucker tolerance δ; 0 = eps / 4.
  double dp_tolerance = 0.0;
};

struct CutsStats {
  PhaseTimer phases;  ///< "simplify", "filter", "refine"
  uint64_t input_vertices = 0;
  uint64_t simplified_vertices = 0;
  size_t surviving_objects = 0;  ///< objects that pass the filter anywhere
};

Result<std::vector<Convoy>> MineCuts(Store* store, const MiningParams& params,
                                     const CutsOptions& options = {},
                                     CutsStats* stats = nullptr);

}  // namespace k2

#endif  // K2_BASELINES_CUTS_H_
