// Coordinate-free convoy mining benchmark: a planted proximity log (pair
// observations only, no positions) is bridged into a presence store and
// mined through the co-location graph clusterer — batch, online, and
// partitioned. The three convoy sets are differential-checked in-process,
// so the bench doubles as an end-to-end smoke of the pluggable clustering
// substrate; the rows feed the same JSON snapshot / drift gate as the
// geometric benches.
#include "bench/harness.h"

#include <filesystem>

#include "cluster/graph_clusterer.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "core/online.h"
#include "core/partition.h"
#include "gen/proximity_gen.h"
#include "model/proximity.h"
#include "storage/lsm_store.h"

using namespace k2;
using namespace k2::bench;

namespace {

/// Planted proximity workload at bench scale: a few long-lived cliques in a
/// sea of noisy pair sightings. Deterministic per scale.
ProximityLog MakeLog() {
  const double scale = ScaleFactor();
  PlantedProximitySpec spec;
  spec.num_noise_objects = static_cast<int>(220 * scale);
  spec.num_ticks = static_cast<int>(360 * scale);
  spec.noise_pair_prob = 0.004;
  spec.seed = 7;
  const Timestamp last = spec.num_ticks - 1;
  spec.groups = {{5, 10, last - 20},
                 {4, 0, last / 2},
                 {6, last / 3, last},
                 {3, last / 4, 3 * last / 4}};
  return GeneratePlantedProximity(spec);
}

std::string FreshDir(const std::string& tag) {
  const std::string dir = "/tmp/k2hop_bench/stores/proximity_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace

int main(int argc, char** argv) {
  ParseArgs(argc, argv);
  PrintBanner("Proximity: coordinate-free mining via co-location graphs");
  const ProximityLog log = MakeLog();
  const Dataset presence = log.PresenceDataset();
  std::cout << "proximity log: " << log.num_pairs() << " pairs, "
            << log.num_objects() << " objects, "
            << log.timestamps().size() << " ticks ("
            << presence.num_points() << " presence rows)\n\n";

  const CoLocationGraphClusterer colocation(&log);
  MiningParams params{3, 12, /*eps=*/0.0};
  params.clusterer = &colocation;

  TablePrinter table({"store", "miner", "wall_s", "convoys"});
  std::vector<Convoy> batch_convoys;
  for (StoreKind kind : {StoreKind::kMemory, StoreKind::kLsm}) {
    auto store = BuildStore(kind, presence, "proximity");

    K2HopStats stats;
    Stopwatch sw;
    auto batch = MineK2Hop(store.get(), params, {}, &stats);
    const double batch_seconds = sw.ElapsedSeconds();
    K2_CHECK(batch.ok());
    if (batch_convoys.empty()) {
      batch_convoys = batch.value();
    } else {
      K2_CHECK(batch.value() == batch_convoys);  // engines agree
    }
    RecordMiningRun("k2hop-prox", *store, params, batch_seconds,
                    batch.value().size(), stats.io);
    table.AddRow({StoreKindName(kind), "k2hop-prox", Fmt(batch_seconds),
                  std::to_string(batch.value().size())});

    PartitionedK2HopStats part_stats;
    Stopwatch part_sw;
    auto partitioned =
        MinePartitionedK2Hop(store.get(), params, {}, &part_stats);
    const double part_seconds = part_sw.ElapsedSeconds();
    K2_CHECK(partitioned.ok());
    K2_CHECK(partitioned.value() == batch_convoys);
    RecordMiningRun("k2hop-prox-partitioned", *store, params, part_seconds,
                    partitioned.value().size(), part_stats.io);
    table.AddRow({StoreKindName(kind), "k2hop-prox-partitioned",
                  Fmt(part_seconds), std::to_string(partitioned.value().size())});
  }

  // Online: stream the presence rows tick by tick into an empty LSM store.
  {
    LsmStoreOptions options;
    options.wal_sync_every_append = false;
    LsmStore store(FreshDir("lsmt_online") + "/lsm", options);
    OnlineK2HopMiner miner(&store, params);
    Stopwatch sw;
    for (Timestamp t : presence.timestamps()) {
      K2_CHECK_OK(miner.AppendTick(t, SnapshotPoints(presence, t)));
    }
    auto online = miner.Finalize();
    const double online_seconds = sw.ElapsedSeconds();
    K2_CHECK(online.ok());
    K2_CHECK(online.value() == batch_convoys);
    RecordMiningRun("k2hop-prox-online", store, params, online_seconds,
                    online.value().size(), miner.stats().mining_io);
    table.AddRow({store.name(), "k2hop-prox-online", Fmt(online_seconds),
                  std::to_string(online.value().size())});
  }

  table.Print();
  std::cout << "\nbatch == partitioned == online convoy sets (checked "
               "in-process); the clusterer never sees a coordinate.\n";
  return 0;
}
