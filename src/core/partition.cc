#include "core/partition.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "common/mutex.h"
#include "common/thread_pool.h"

namespace k2 {

std::string PartitionedK2HopStats::DebugString() const {
  std::ostringstream os;
  os << "PartitionedK2HopStats{shards=" << shards
     << ", windows=" << hop_windows << ", seams=" << seams << " (crossed "
     << seams_crossed << ")"
     << ", adopted_folds=" << adopted_folds
     << ", stitch_replays=" << stitch_replays
     << ", spanning=" << spanning_convoys << ", merged=" << merged_convoys
     << ", prevalidation=" << prevalidation_convoys
     << ", points_processed=" << points_processed() << "/" << total_points
     << " (pruned " << pruning_ratio() * 100.0 << "%)}";
  return os.str();
}

std::vector<ShardPlan> PlanShards(const std::vector<Timestamp>& benchmarks,
                                  int num_shards) {
  std::vector<ShardPlan> plan;
  if (benchmarks.size() < 2) return plan;
  const size_t windows = benchmarks.size() - 1;
  const size_t shards =
      std::min(windows, static_cast<size_t>(std::max(num_shards, 1)));
  const size_t base = windows / shards;
  const size_t remainder = windows % shards;
  size_t next = 0;
  for (size_t s = 0; s < shards; ++s) {
    ShardPlan p;
    p.first_window = next;
    p.num_windows = base + (s < remainder ? 1 : 0);
    next += p.num_windows;
    p.ticks = TimeRange{benchmarks[p.first_window],
                        benchmarks[p.first_window + p.num_windows]};
    plan.push_back(p);
  }
  return plan;
}

PartitionedK2HopMiner::PartitionedK2HopMiner(Store* store,
                                             const MiningParams& params,
                                             PartitionedK2HopOptions options)
    : store_(store), params_(params), options_(options) {}

Result<std::vector<Convoy>> PartitionedK2HopMiner::Mine() {
  K2_RETURN_NOT_OK(ValidateMiningParams(params_));
  stats_ = PartitionedK2HopStats();
  const IoStats parent_before = store_->io_stats();
  stats_.total_points = store_->num_points();

  const TimeRange range = store_->time_range();
  if (range.length() < params_.k) return std::vector<Convoy>{};

  // --- plan: shard the benchmark grid, open per-slot read snapshots ------
  Stopwatch sw;
  const std::vector<Timestamp> benchmarks =
      BenchmarkPoints(range, params_.k);
  stats_.benchmark_points = benchmarks.size();

  const int threads =
      options_.num_threads > 0
          ? options_.num_threads
          : std::max(1,
                     static_cast<int>(std::thread::hardware_concurrency()));
  const int want_shards =
      options_.num_shards > 0 ? options_.num_shards : threads;
  const std::vector<ShardPlan> plan = PlanShards(benchmarks, want_shards);
  if (plan.empty()) return std::vector<Convoy>{};
  stats_.shards = plan.size();
  stats_.hop_windows = benchmarks.size() - 1;
  stats_.seams = plan.size() - 1;

  // One read snapshot per concurrent runner: shards (and later per-convoy
  // walks) on different slots never share a store handle, so they fetch
  // concurrently instead of serializing on one store mutex. Handles are
  // created lazily on a slot's first task — snapshot setup can be real IO
  // (the LSM engine re-reads every table's index and bloom), so idle slots
  // (more cores than shards on a small mine) must not pay it. A slot's
  // snapshot is only ever touched by the task currently holding that slot;
  // the mutex merely serializes concurrent *creations* against the shared
  // parent store. Setup IO is excluded from stats_.io by capturing each
  // handle's counters right after creation.
  const size_t slots = static_cast<size_t>(threads);
  std::vector<std::unique_ptr<Store>> snapshots(slots);
  std::vector<IoStats> snapshot_before(slots);
  std::vector<std::vector<SnapshotScratch>> slot_scratch(slots);
  for (size_t i = 0; i < slots; ++i) slot_scratch[i].resize(1);
  Mutex snapshot_create_mu;
  auto slot_store = [&](size_t slot) -> Result<Store*> {
    if (snapshots[slot] == nullptr) {
      MutexLock lock(snapshot_create_mu);
      K2_ASSIGN_OR_RETURN(snapshots[slot], store_->CreateReadSnapshot());
      snapshot_before[slot] = snapshots[slot]->io_stats();
    }
    return snapshots[slot].get();
  };

  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads - 1);

  // Runs fn(slot, i) for i in [0, n): on the pool when present, inline
  // otherwise. Two items on the same slot never run concurrently, so
  // slot-indexed snapshots and scratches stay single-threaded.
  auto for_each_indexed =
      [&](size_t n,
          const std::function<Status(size_t, size_t)>& fn) -> Status {
    if (!pool.has_value()) {
      for (size_t i = 0; i < n; ++i) K2_RETURN_NOT_OK(fn(0, i));
      return Status::OK();
    }
    std::vector<Status> statuses(n);
    pool->ParallelFor(n, [&](size_t slot, size_t i) {
      statuses[i] = fn(slot, i);
    });
    for (Status& status : statuses) K2_RETURN_NOT_OK(status);
    return Status::OK();
  };
  stats_.phases.Add("plan", sw.ElapsedSeconds());

  // --- shards: full per-window pipeline + local DCM merge, concurrently --
  sw.Restart();
  K2HopOptions shard_options;
  shard_options.hwmt_binary_order = options_.hwmt_binary_order;
  shard_options.candidate_pruning = options_.candidate_pruning;
  std::vector<std::vector<std::vector<ObjectSet>>> spanning(plan.size());
  std::vector<std::vector<Convoy>> local_died(plan.size());
  std::vector<SpanningConvoyMerger::StartMap> local_active(plan.size());
  stats_.shard_runs.assign(plan.size(), {});
  K2_RETURN_NOT_OK(for_each_indexed(
      plan.size(), [&](size_t slot, size_t i) -> Status {
        Stopwatch shard_sw;
        const ShardPlan& shard = plan[i];
        ShardRunStats& run = stats_.shard_runs[i];
        run.ticks = shard.ticks;
        K2_ASSIGN_OR_RETURN(Store* shard_store, slot_store(slot));
        const IoStats before = shard_store->io_stats();
        const std::span<const Timestamp> shard_benchmarks(
            benchmarks.data() + shard.first_window, shard.num_benchmarks());
        K2_RETURN_NOT_OK(MineHopWindows(
            shard_store, params_, shard_benchmarks, shard_options,
            &spanning[i], &run.pipeline, /*pool=*/nullptr,
            /*store_mu=*/nullptr, &slot_scratch[slot]));
        // Local DCM merge. The fold starts empty, so deaths are only
        // locally maximal and starts are only locally earliest; the stitch
        // below decides whether that local view is globally valid (nothing
        // crossed the left seam) or must be replayed. Entries still
        // spanning the right boundary are exported, not closed.
        SpanningConvoyMerger merger(params_.m);
        for (size_t w = 0; w < shard.num_windows; ++w) {
          merger.AddWindow(shard_benchmarks[w], spanning[i][w],
                           &local_died[i]);
        }
        local_active[i] = merger.TakeActive();
        run.local_merged = local_died[i].size();
        run.seam_active = local_active[i].size();
        run.seconds = shard_sw.ElapsedSeconds();
        run.io = IoStats::Delta(shard_store->io_stats(), before);
        return Status::OK();
      }));
  for (const ShardRunStats& run : stats_.shard_runs) {
    stats_.spanning_convoys += run.pipeline.spanning_convoys;
  }
  stats_.phases.Add("shards", sw.ElapsedSeconds());

  // --- stitch: carry the spanning-convoy fold across the seams ----------
  // Invariant: entering shard i, `global` holds the true fold state of all
  // windows left of the shard. When that state is empty, the shard's local
  // fold (which started empty) IS the global fold over its windows — its
  // deaths and exported active map are adopted wholesale, an O(1) seam.
  // Otherwise convoys cross the seam: their continuations are intersection
  // chains the local fold cannot see (and the local fold's own entries may
  // inherit earlier starts from them), so the shard's windows are replayed
  // through the global merger — pure set algebra over the already-mined
  // spanning sets, no store IO.
  sw.Restart();
  std::vector<Convoy> died;
  SpanningConvoyMerger global(params_.m);
  for (size_t i = 0; i < plan.size(); ++i) {
    if (global.active_size() == 0) {
      ++stats_.adopted_folds;
      for (Convoy& v : local_died[i]) died.push_back(std::move(v));
      global.SetActive(std::move(local_active[i]));
    } else {
      ++stats_.stitch_replays;
      const ShardPlan& shard = plan[i];
      for (size_t w = 0; w < shard.num_windows; ++w) {
        global.AddWindow(benchmarks[shard.first_window + w], spanning[i][w],
                         &died);
      }
    }
    if (i + 1 < plan.size() && global.active_size() > 0) {
      ++stats_.seams_crossed;
    }
  }
  global.Finish(benchmarks.back(), &died);
  // First batch maximality barrier (the one inside MergeSpanningConvoys).
  MaximalConvoySet merged_set;
  for (Convoy& v : died) merged_set.Insert(std::move(v));
  std::vector<Convoy> merged = merged_set.TakeSorted();
  stats_.merged_convoys = merged.size();
  stats_.phases.Add("stitch", sw.ElapsedSeconds());

  // --- extension: per-convoy resumable walks, concurrently --------------
  // Walks read arbitrary ticks through the slot's snapshot and freely cross
  // shard seams. Results are gathered by seed index and folded through the
  // same MaximalConvoySet barrier as batch ExtendRight/ExtendLeft, so the
  // outcome is identical for every slot count.
  auto extend_all = [&](std::vector<Convoy> seeds, Timestamp limit, int dir,
                        const char* phase) -> Result<std::vector<Convoy>> {
    Stopwatch phase_sw;
    std::vector<std::vector<Convoy>> completed(seeds.size());
    K2_RETURN_NOT_OK(for_each_indexed(
        seeds.size(), [&](size_t slot, size_t i) -> Status {
          K2_ASSIGN_OR_RETURN(Store* walk_store, slot_store(slot));
          ConvoyExtensionWalk walk(seeds[i], dir);
          K2_RETURN_NOT_OK(walk.Advance(walk_store, params_, limit,
                                        &completed[i],
                                        &slot_scratch[slot][0]));
          walk.Flush(limit, &completed[i]);
          return Status::OK();
        }));
    MaximalConvoySet results;
    for (std::vector<Convoy>& pieces : completed) {
      for (Convoy& c : pieces) results.Insert(std::move(c));
    }
    stats_.phases.Add(phase, phase_sw.ElapsedSeconds());
    return results.TakeSorted();
  };
  K2_ASSIGN_OR_RETURN(
      merged, extend_all(std::move(merged), range.end, +1, "extend-right"));
  K2_ASSIGN_OR_RETURN(
      merged, extend_all(std::move(merged), range.start, -1, "extend-left"));
  merged = FilterMinLength(std::move(merged), params_.k);
  stats_.prevalidation_convoys = merged.size();

  // --- validation: per-convoy FC checks, concurrently -------------------
  std::vector<Convoy> result;
  if (!options_.validate) {
    result = std::move(merged);
  } else {
    Stopwatch validate_sw;
    std::vector<std::vector<Convoy>> validated(merged.size());
    std::vector<ValidationStats> validation_stats(merged.size());
    K2_RETURN_NOT_OK(for_each_indexed(
        merged.size(), [&](size_t slot, size_t i) -> Status {
          K2_ASSIGN_OR_RETURN(Store* validate_store, slot_store(slot));
          auto piece_result = ValidateFullyConnected(
              validate_store, {merged[i]}, params_,
              /*recursive=*/true, &validation_stats[i]);
          K2_RETURN_NOT_OK(piece_result.status());
          validated[i] = piece_result.MoveValue();
          return Status::OK();
        }));
    // Second batch barrier: global maximality over the validated pieces.
    MaximalConvoySet out;
    for (std::vector<Convoy>& pieces : validated) {
      for (Convoy& c : pieces) out.Insert(std::move(c));
    }
    for (const ValidationStats& vs : validation_stats) {
      stats_.validation.candidates_in += vs.candidates_in;
      stats_.validation.fc_accepted += vs.fc_accepted;
      stats_.validation.split_rounds += vs.split_rounds;
      stats_.validation.reclusterings += vs.reclusterings;
    }
    result = out.TakeSorted();
    stats_.phases.Add("validation", validate_sw.ElapsedSeconds());
  }

  // IO total: parent delta (fallback snapshots delegate there) plus every
  // native snapshot's own counters since creation.
  stats_.io = IoStats::Delta(store_->io_stats(), parent_before);
  for (size_t i = 0; i < slots; ++i) {
    if (snapshots[i] == nullptr) continue;  // slot never ran a task
    stats_.io.Accumulate(
        IoStats::Delta(snapshots[i]->io_stats(), snapshot_before[i]));
  }
  return result;
}

// k2-lint: allow(validate-mining-params): the wrapped
// PartitionedK2HopMiner::Mine() validates as its first statement.
Result<std::vector<Convoy>> MinePartitionedK2Hop(
    Store* store, const MiningParams& params,
    const PartitionedK2HopOptions& options, PartitionedK2HopStats* stats) {
  PartitionedK2HopMiner miner(store, params, options);
  auto result = miner.Mine();
  if (stats != nullptr) *stats = miner.stats();
  return result;
}

}  // namespace k2
