// Unit tests for the serving layer: ConvoyCatalog index correctness
// (interval, inverted object, spatial footprint), the typed query API and
// its conjunctions, RCU snapshot semantics (readers keep their epoch while
// the writer publishes new ones), the OnlineK2HopMiner on_closed adapter,
// and concurrent readers hammering the catalog during ingest (run under
// TSan in CI).
#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "core/k2hop.h"
#include "core/online.h"
#include "serve/catalog.h"
#include "serve/query.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::C;
using ::k2::testing::MakeDataset;
using ::k2::testing::MakeMemStore;

// Three convoys with hand-picked lifespans and positions:
//   A = ({1, 2}, [0, 5])    along y = 0, x in [0, 51]
//   B = ({2, 3}, [6, 11])   along y = 100, x in [0, 51] (oid 2 moves on)
//   C = ({4, 5, 6}, [20, 23]) parked near (1000, 1000)
class ServeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<std::tuple<Timestamp, ObjectId, double, double>> rows;
    for (Timestamp t = 0; t <= 5; ++t) {
      rows.push_back({t, 1, t * 10.0, 0.0});
      rows.push_back({t, 2, t * 10.0 + 1.0, 0.0});
    }
    for (Timestamp t = 6; t <= 11; ++t) {
      rows.push_back({t, 2, (t - 6) * 10.0, 100.0});
      rows.push_back({t, 3, (t - 6) * 10.0 + 1.0, 100.0});
    }
    for (Timestamp t = 20; t <= 23; ++t) {
      for (ObjectId oid = 4; oid <= 6; ++oid) {
        rows.push_back({t, oid, 1000.0 + oid, 1000.0});
      }
    }
    store_ = MakeMemStore(MakeDataset(rows));
    a_ = C({1, 2}, 0, 5);
    b_ = C({2, 3}, 6, 11);
    c_ = C({4, 5, 6}, 20, 23);
    ASSERT_TRUE(
        catalog_.AddConvoys(std::vector<Convoy>{a_, b_, c_}, store_.get())
            .ok());
    catalog_.Publish();
  }

  std::unique_ptr<MemoryStore> store_;
  ConvoyCatalog catalog_;
  Convoy a_, b_, c_;
};

TEST(ServeEmptyTest, EmptyCatalogAnswersNothing) {
  ConvoyCatalog catalog;
  ConvoyQueryEngine engine(&catalog);
  EXPECT_EQ(catalog.snapshot()->epoch(), 0u);
  EXPECT_TRUE(engine.ByObject(1).empty());
  EXPECT_TRUE(engine.ByTimeWindow({0, 100}).empty());
  EXPECT_TRUE(engine.ByRegion(Rect{-1e9, -1e9, 1e9, 1e9}).empty());
  EXPECT_TRUE(engine.TopK(ConvoyRank::kLongest, 5).empty());
  EXPECT_TRUE(engine.Find({}).empty());
}

TEST_F(ServeFixture, ByObjectFindsContainingConvoys) {
  ConvoyQueryEngine engine(&catalog_);
  EXPECT_EQ(engine.ByObject(1), (std::vector<Convoy>{a_}));
  EXPECT_EQ(engine.ByObject(2), (std::vector<Convoy>{a_, b_}));
  EXPECT_EQ(engine.ByObject(5), (std::vector<Convoy>{c_}));
  EXPECT_TRUE(engine.ByObject(99).empty());
}

TEST_F(ServeFixture, ByTimeWindowOverlapSemantics) {
  ConvoyQueryEngine engine(&catalog_);
  // Overlap is inclusive on both ends.
  EXPECT_EQ(engine.ByTimeWindow({5, 6}), (std::vector<Convoy>{a_, b_}));
  EXPECT_EQ(engine.ByTimeWindow({5, 5}), (std::vector<Convoy>{a_}));
  EXPECT_EQ(engine.ByTimeWindow({0, 3}), (std::vector<Convoy>{a_}));
  EXPECT_EQ(engine.ByTimeWindow({11, 20}), (std::vector<Convoy>{b_, c_}));
  EXPECT_EQ(engine.ByTimeWindow({0, 100}), (std::vector<Convoy>{a_, b_, c_}));
  EXPECT_TRUE(engine.ByTimeWindow({12, 19}).empty());
  EXPECT_TRUE(engine.ByTimeWindow({24, 3}).empty());  // empty window
}

TEST_F(ServeFixture, ByRegionFindsConvoysPassingThrough) {
  ConvoyQueryEngine engine(&catalog_);
  // y = 0 corridor: only A.
  EXPECT_EQ(engine.ByRegion(Rect{-10.0, -1.0, 60.0, 1.0}),
            (std::vector<Convoy>{a_}));
  // The parked cluster.
  EXPECT_EQ(engine.ByRegion(Rect{990.0, 990.0, 1010.0, 1010.0}),
            (std::vector<Convoy>{c_}));
  // Both corridors.
  EXPECT_EQ(engine.ByRegion(Rect{-10.0, -1.0, 60.0, 101.0}),
            (std::vector<Convoy>{a_, b_}));
  EXPECT_TRUE(engine.ByRegion(Rect{-500.0, -500.0, -400.0, -400.0}).empty());
}

TEST_F(ServeFixture, TopKRanksAndTruncates) {
  ConvoyQueryEngine engine(&catalog_);
  // Longest: A (6) == B (6) tie-broken by canonical order, then C (4).
  EXPECT_EQ(engine.TopK(ConvoyRank::kLongest, 2),
            (std::vector<Convoy>{a_, b_}));
  // Largest: C (3 objects) first.
  EXPECT_EQ(engine.TopK(ConvoyRank::kLargest, 1), (std::vector<Convoy>{c_}));
  // k beyond size returns everything.
  EXPECT_EQ(engine.TopK(ConvoyRank::kLargest, 10).size(), 3u);
}

TEST_F(ServeFixture, ConjunctionsIntersect) {
  ConvoyQueryEngine engine(&catalog_);
  ConvoyQuery query;
  query.object = 2;
  query.time_window = TimeRange{6, 9};
  EXPECT_EQ(engine.Find(query), (std::vector<Convoy>{b_}));

  query.region = Rect{-10.0, -1.0, 60.0, 1.0};  // y = 0 corridor: A only
  EXPECT_TRUE(engine.Find(query).empty());

  ConvoyQuery by_region_and_time;
  by_region_and_time.time_window = TimeRange{0, 30};
  by_region_and_time.region = Rect{900.0, 900.0, 1100.0, 1100.0};
  EXPECT_EQ(engine.Find(by_region_and_time), (std::vector<Convoy>{c_}));

  // TopK over a filtered set.
  ConvoyQuery contains2;
  contains2.object = 2;
  EXPECT_EQ(engine.TopK(contains2, ConvoyRank::kLargest, 1),
            (std::vector<Convoy>{a_}));
}

TEST_F(ServeFixture, SnapshotsAreImmutableAcrossPublishes) {
  const auto pinned = catalog_.snapshot();
  const uint64_t pinned_epoch = pinned->epoch();
  ASSERT_EQ(pinned->size(), 3u);

  const Convoy extra = C({7, 8}, 0, 9);
  // Give the new objects some positions so the footprint read succeeds.
  // (They are absent from the store, which is also fine: GetPoints skips
  // absent objects, yielding an empty footprint.)
  ASSERT_TRUE(catalog_.AddConvoy(extra, store_.get()).ok());
  EXPECT_EQ(catalog_.pending_size(), 4u);
  // Not yet published: readers still see the old epoch.
  EXPECT_EQ(catalog_.snapshot()->epoch(), pinned_epoch);

  const auto next = catalog_.Publish();
  EXPECT_EQ(next->epoch(), pinned_epoch + 1);
  EXPECT_EQ(next->size(), 4u);
  // The pinned snapshot is unchanged — snapshot consistency under ingest.
  EXPECT_EQ(pinned->size(), 3u);
  std::vector<ConvoyId> ids;
  pinned->ByObject(7, &ids);
  EXPECT_TRUE(ids.empty());
  next->ByObject(7, &ids);
  EXPECT_EQ(ids.size(), 1u);
}

TEST_F(ServeFixture, ReplaceAllDropsStaleConvoys) {
  // Keep A and C, drop B — the reconcile path after Finalize().
  ASSERT_TRUE(
      catalog_.ReplaceAll(std::vector<Convoy>{a_, c_}, store_.get()).ok());
  const auto snap = catalog_.Publish();
  EXPECT_EQ(snap->convoys(), (std::vector<Convoy>{a_, c_}));
  std::vector<ConvoyId> ids;
  snap->ByObject(3, &ids);
  EXPECT_TRUE(ids.empty());
}

TEST_F(ServeFixture, DuplicateAddIsNoOp) {
  ASSERT_TRUE(catalog_.AddConvoy(a_, store_.get()).ok());
  EXPECT_EQ(catalog_.pending_size(), 3u);
}

TEST(ServeOnlineTest, OnClosedHookMatchesBulkFedCatalog) {
  // A dataset with two disjoint convoys that both end well before the
  // stream does, so the eager channel closes them mid-stream.
  std::vector<std::tuple<Timestamp, ObjectId, double, double>> rows;
  for (Timestamp t = 0; t <= 7; ++t) {
    rows.push_back({t, 1, t * 5.0, 0.0});
    rows.push_back({t, 2, t * 5.0 + 1.0, 0.0});
  }
  for (Timestamp t = 2; t <= 11; ++t) {
    rows.push_back({t, 3, t * 5.0, 200.0});
    rows.push_back({t, 4, t * 5.0 + 1.0, 200.0});
  }
  for (Timestamp t = 0; t <= 30; ++t) {
    rows.push_back({t, 9, 5000.0 + 40.0 * t, 5000.0});  // lone straggler
  }
  const Dataset data = MakeDataset(rows);
  const MiningParams params{2, 3, 2.0};

  // Batch reference catalog.
  auto batch_store = MakeMemStore(data);
  auto batch = MineK2Hop(batch_store.get(), params);
  ASSERT_TRUE(batch.ok());
  ASSERT_FALSE(batch.value().empty());
  ConvoyCatalog batch_catalog;
  ASSERT_TRUE(batch_catalog.AddConvoys(batch.value(), batch_store.get()).ok());
  batch_catalog.Publish();

  // Online-fed catalog: hook publishes per closed convoy; ReplaceAll with
  // the authoritative Finalize() result reconciles.
  MemoryStore stream_store;
  ConvoyCatalog online_catalog;
  OnlineK2HopOptions options;
  options.on_closed = online_catalog.OnClosedHook(&stream_store, 1);
  OnlineK2HopMiner miner(&stream_store, params, options);
  for (Timestamp t : data.timestamps()) {
    ASSERT_TRUE(miner.AppendTick(t, SnapshotPoints(data, t)).ok());
  }
  // Both convoys end long before the final tick: the eager channel must
  // have published them already.
  EXPECT_GE(online_catalog.snapshot()->size(), 2u);
  auto final_result = miner.Finalize();
  ASSERT_TRUE(final_result.ok());
  ASSERT_TRUE(online_catalog.hook_status().ok());
  ASSERT_TRUE(
      online_catalog.ReplaceAll(final_result.value(), &stream_store).ok());
  const auto online_snap = online_catalog.Publish();

  const auto batch_snap = batch_catalog.snapshot();
  EXPECT_EQ(online_snap->convoys(), batch_snap->convoys());
  EXPECT_EQ(online_snap->footprint_points(), batch_snap->footprint_points());
}

TEST(ServeConcurrencyTest, ConcurrentReadersDuringIngest) {
  // Writer ingests convoy batches and republishes; readers hammer the
  // catalog through the engine the whole time. Run under TSan in CI: the
  // only shared mutable state on the read path must be the atomic
  // shared_ptr swap.
  std::vector<std::tuple<Timestamp, ObjectId, double, double>> rows;
  constexpr int kConvoys = 40;
  for (ObjectId pair = 0; pair < kConvoys; ++pair) {
    for (Timestamp t = 0; t <= 6; ++t) {
      rows.push_back({t, 2 * pair, pair * 100.0 + t, 0.0});
      rows.push_back({t, 2 * pair + 1, pair * 100.0 + t + 0.5, 0.0});
    }
  }
  auto store = MakeMemStore(MakeDataset(rows));
  std::vector<Convoy> convoys;
  for (ObjectId pair = 0; pair < kConvoys; ++pair) {
    convoys.push_back(C({2 * pair, 2 * pair + 1}, 0, 6));
  }

  ConvoyCatalog catalog;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&catalog, &done, &failures, r] {
      ConvoyQueryEngine engine(&catalog);
      uint64_t last_epoch = 0;
      ObjectId probe = static_cast<ObjectId>(r);
      while (!done.load(std::memory_order_acquire)) {
        const auto snap = engine.Pin();
        // Epochs may only move forward.
        if (snap->epoch() < last_epoch) ++failures;
        last_epoch = snap->epoch();
        // Any answer must be internally consistent with the pinned
        // snapshot: ids ascending and within range.
        std::vector<ConvoyId> ids;
        ConvoyQuery query;
        query.time_window = TimeRange{0, 100};
        ConvoyQueryEngine::FindIds(*snap, query, &ids);
        if (ids.size() != snap->size()) ++failures;
        for (size_t i = 0; i < ids.size(); ++i) {
          if (ids[i] != i) ++failures;
        }
        snap->ByObject(probe, &ids);
        for (ConvoyId id : ids) {
          if (!snap->convoy(id).objects.Contains(probe)) ++failures;
        }
        probe = (probe + 7) % (2 * kConvoys);
        std::vector<ConvoyId> top;
        ConvoyQueryEngine::TopKIds(*snap, {}, ConvoyRank::kLongest,
                                   5, &top);
        if (top.size() > 5) ++failures;
      }
    });
  }

  // Ingest in batches of 4, publishing after every batch.
  for (size_t at = 0; at < convoys.size(); at += 4) {
    const size_t n = std::min<size_t>(4, convoys.size() - at);
    ASSERT_TRUE(catalog
                    .AddConvoys(std::span<const Convoy>(&convoys[at], n),
                                store.get())
                    .ok());
    catalog.Publish();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(catalog.snapshot()->size(), convoys.size());
}

}  // namespace
}  // namespace k2
