#include "bench/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iomanip>
#include <numeric>
#include <sstream>

#include "baselines/dcm.h"
#include "baselines/spare.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "gen/tdrive.h"
#include "gen/trucks.h"
#include "io/csv.h"

namespace k2::bench {

namespace {

const char* kCacheDir = "/tmp/k2hop_bench";

/// --json sink: collects one JSON object per timed mining run and writes
/// them as an array when the process exits.
struct JsonSink {
  std::string path;
  std::string bench;  // argv[0] basename
  std::vector<std::string> records;

  ~JsonSink() {
    if (path.empty()) return;
    std::ofstream out(path);
    out << "[\n";
    for (size_t i = 0; i < records.size(); ++i) {
      out << "  " << records[i] << (i + 1 < records.size() ? ",\n" : "\n");
    }
    out << "]\n";
  }
};

JsonSink& Sink() {
  static JsonSink sink;
  return sink;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Appends one mining-run record to the sink (no-op without --json).
void RecordRun(const std::string& miner, const Store& store,
               const MiningParams& params, double seconds, size_t convoys,
               const IoStats& io) {
  RecordMiningRun(miner, store, params, seconds, convoys, io);
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}

/// Loads a cached dataset or generates + caches it.
Dataset CachedDataset(const std::string& name,
                      const std::function<Dataset()>& generate) {
  std::filesystem::create_directories(kCacheDir);
  const std::string path = std::string(kCacheDir) + "/" + name + ".bin";
  if (std::filesystem::exists(path)) {
    auto loaded = ReadBinary(path);
    if (loaded.ok()) return loaded.MoveValue();
  }
  Dataset ds = generate();
  K2_CHECK_OK(WriteBinary(ds, path));
  return ds;
}

std::string ScaleTag() {
  std::ostringstream os;
  os << "s" << ScaleFactor();
  return os.str();
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonFields& JsonFields::Num(const std::string& key, double value) {
  json_ += ",\"" + JsonEscape(key) + "\":" + JsonNumber(value);
  return *this;
}

JsonFields& JsonFields::Int(const std::string& key, uint64_t value) {
  json_ += ",\"" + JsonEscape(key) + "\":" + std::to_string(value);
  return *this;
}

JsonFields& JsonFields::Str(const std::string& key, const std::string& value) {
  json_ += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
  return *this;
}

void RecordMiningRun(const std::string& miner, const Store& store,
                     const MiningParams& params, double seconds,
                     size_t convoys, const IoStats& io,
                     const JsonFields& extra) {
  RecordBenchRow(miner, store.name(), params, seconds, convoys, io, extra);
}

void RecordBenchRow(const std::string& miner, const std::string& store_name,
                    const MiningParams& params, double seconds,
                    size_t convoys, const IoStats& io,
                    const JsonFields& extra) {
  JsonSink& sink = Sink();
  if (sink.path.empty()) return;
  std::ostringstream os;
  os << "{\"bench\":\"" << JsonEscape(sink.bench) << "\",\"miner\":\""
     << JsonEscape(miner) << "\",\"store\":\"" << JsonEscape(store_name)
     << "\",\"params\":{\"m\":" << params.m << ",\"k\":" << params.k
     << ",\"eps\":" << JsonNumber(params.eps) << "},\"wall_ms\":"
     << JsonNumber(seconds * 1e3) << ",\"convoys\":" << convoys
     << ",\"io_stats\":{\"points_read\":" << io.points_read()
     << ",\"point_queries\":" << io.point_queries
     << ",\"scanned_points\":" << io.scanned_points
     << ",\"bytes_read\":" << io.bytes_read << ",\"seeks\":" << io.seeks
     << ",\"pages_read\":" << io.pages_read
     << ",\"pages_cached\":" << io.pages_cached
     << ",\"bloom_negative\":" << io.bloom_negative << "}" << extra.json()
     << "}";
  sink.records.push_back(os.str());
}

void ParseArgs(int argc, char** argv) {
  if (argc > 0) {
    Sink().bench = std::filesystem::path(argv[0]).filename().string();
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "--json requires a path argument\n";
        std::exit(2);
      }
      Sink().path = argv[++i];
    } else {
      std::cerr << "unknown bench flag: " << arg
                << " (supported: --json <path>)\n";
      std::exit(2);
    }
  }
}

double ScaleFactor() {
  static const double scale = std::max(0.05, EnvDouble("K2_BENCH_SCALE", 1.0));
  return scale;
}

const Dataset& Trucks() {
  static const Dataset ds = CachedDataset("trucks_" + ScaleTag(), [] {
    TrucksParams params;
    params.num_trajectories =
        std::max(20, static_cast<int>(276 * ScaleFactor()));
    params.ticks = 1320;
    // Slow urban speeds so delivery round trips span a few hundred ticks,
    // like the paper's 30 s sampled truck-days (DESIGN.md substitutions).
    params.grid.side_speed = 18.0;
    params.grid.main_speed = 30.0;
    params.grid.highway_speed = 45.0;
    return GenerateTrucks(params);
  });
  return ds;
}

const Dataset& TDrive() {
  static const Dataset ds = CachedDataset("tdrive_" + ScaleTag(), [] {
    TDriveParams params;
    params.scale = ScaleFactor() / 24.0;  // ~430 taxis at scale 1
    params.ticks = 1900;
    params.grid.side_speed = 150.0;
    params.grid.main_speed = 300.0;
    params.grid.highway_speed = 550.0;
    return GenerateTDrive(params);
  });
  return ds;
}

namespace {

BrinkhoffParams BrinkhoffConfig(double size_factor) {
  BrinkhoffParams params;
  params.grid.nx = 20;
  params.grid.ny = 20;
  params.grid.spacing = 650.0;
  params.grid.side_speed = 90.0;
  params.grid.main_speed = 180.0;
  params.grid.highway_speed = 320.0;
  params.max_time = 1800;
  params.obj_begin = std::max(50, static_cast<int>(2400 * size_factor));
  params.obj_time = std::max(1, static_cast<int>(26 * size_factor));
  return params;
}

}  // namespace

const Dataset& Brinkhoff() {
  static const Dataset ds = CachedDataset("brinkhoff_" + ScaleTag(), [] {
    return GenerateBrinkhoff(BrinkhoffConfig(ScaleFactor()));
  });
  return ds;
}

const Dataset& BrinkhoffSmall() {
  static const Dataset ds = CachedDataset("brinkhoff_small_" + ScaleTag(), [] {
    return GenerateBrinkhoff(BrinkhoffConfig(ScaleFactor() / 4.0));
  });
  return ds;
}

BrinkhoffStats BrinkhoffProperties() {
  BrinkhoffStats stats;
  GenerateBrinkhoff(BrinkhoffConfig(ScaleFactor()), &stats);
  return stats;
}

std::unique_ptr<Store> BuildStore(StoreKind kind, const Dataset& data,
                                  const std::string& tag) {
  const std::string dir =
      std::string(kCacheDir) + "/stores/" + tag + "_" + StoreKindName(kind);
  std::filesystem::remove_all(dir);
  auto store_result = CreateStore(kind, dir);
  K2_CHECK(store_result.ok());
  std::unique_ptr<Store> store = store_result.MoveValue();
  K2_CHECK_OK(store->BulkLoad(data));
  return store;
}

MineOutcome RunK2(Store* store, const MiningParams& params, K2HopStats* stats,
                  const K2HopOptions& options) {
  MineOutcome outcome;
  K2HopStats local;
  K2HopStats* s = stats != nullptr ? stats : &local;
  Stopwatch sw;
  auto result = MineK2Hop(store, params, options, s);
  outcome.seconds = sw.ElapsedSeconds();
  K2_CHECK(result.ok());
  outcome.convoys = result.value().size();
  RecordRun("k2hop", *store, params, outcome.seconds, outcome.convoys, s->io);
  return outcome;
}

MineOutcome RunVcoda(Store* store, const MiningParams& params, bool corrected,
                     VcodaStats* stats) {
  MineOutcome outcome;
  const IoStats before = store->io_stats();
  Stopwatch sw;
  auto result = MineVcoda(store, params, corrected, stats);
  outcome.seconds = sw.ElapsedSeconds();
  K2_CHECK(result.ok());
  outcome.convoys = result.value().size();
  RecordRun(corrected ? "vcoda*" : "vcoda", *store, params, outcome.seconds,
            outcome.convoys, IoStats::Delta(store->io_stats(), before));
  return outcome;
}

MineOutcome RunSpare(Store* store, const MiningParams& params, int workers) {
  MineOutcome outcome;
  SpareOptions options;
  options.num_workers = workers;
  SpareStats stats;
  const IoStats before = store->io_stats();
  Stopwatch sw;
  auto result = MineSpare(store, params, options, &stats);
  outcome.seconds = sw.ElapsedSeconds();
  K2_CHECK(result.ok());
  outcome.convoys = result.value().size();
  if (stats.budget_exhausted) {
    outcome.dnf = true;
    outcome.note = "enum-budget";
  }
  RecordRun("spare", *store, params, outcome.seconds, outcome.convoys,
            IoStats::Delta(store->io_stats(), before));
  return outcome;
}

MineOutcome RunDcm(Store* store, const MiningParams& params, int partitions,
                   int workers) {
  MineOutcome outcome;
  DcmOptions options;
  options.num_partitions = partitions;
  options.num_workers = workers;
  const IoStats before = store->io_stats();
  Stopwatch sw;
  auto result = MineDcm(store, params, options);
  outcome.seconds = sw.ElapsedSeconds();
  K2_CHECK(result.ok());
  outcome.convoys = result.value().size();
  RecordRun("dcm", *store, params, outcome.seconds, outcome.convoys,
            IoStats::Delta(store->io_stats(), before));
  return outcome;
}

bool VcodaExceedsMemoryBudget(const Dataset& data) {
  const double budget = EnvDouble("K2_VCODA_ROW_BUDGET", 1.5e6);
  return static_cast<double>(data.num_points()) > budget;
}

GainBand Band(std::vector<double> gains) {
  GainBand band;
  if (gains.empty()) return band;
  std::sort(gains.begin(), gains.end());
  band.min = gains.front();
  band.max = gains.back();
  band.mean = std::accumulate(gains.begin(), gains.end(), 0.0) /
              static_cast<double>(gains.size());
  const size_t mid = gains.size() / 2;
  band.median = gains.size() % 2 == 1
                    ? gains[mid]
                    : 0.5 * (gains[mid - 1] + gains[mid]);
  return band;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(widths[c]))
         << (c < row.size() ? row[c] : "");
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = headers_.size() * 2;
  for (size_t w : widths) total += w;
  os << "  " << std::string(total - 2, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void PrintBanner(const std::string& title) {
  std::cout << "==== " << title << " ====\n"
            << "scale=" << ScaleFactor() << "  (set K2_BENCH_SCALE to change)\n";
}

}  // namespace k2::bench
