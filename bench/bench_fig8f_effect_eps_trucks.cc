// Fig. 8f — Trucks: effect of varying eps; larger eps => more clusters that
// never become convoys => less pruning => k2-* get slower.
#include "bench/effect_sweep_common.h"
int main() {
  std::vector<k2::MiningParams> sweep;
  for (double eps : {6.0, 30.0, 150.0}) sweep.push_back({3, 200, eps});
  return k2::bench::RunEffectSweep("Fig 8f: Trucks — effect of eps (seconds)",
                                   k2::bench::Trucks(), "fig8f", "eps", sweep);
}
