#include "storage/bptree/bptree.h"

#include <cstring>

#include "common/check.h"
#include "storage/key.h"
#include "storage/store.h"

namespace k2 {

namespace {

// Little helpers for reading/writing page fields through memcpy (safe w.r.t.
// alignment and strict aliasing).
template <typename T>
T LoadAt(const std::byte* page, size_t offset) {
  T v;
  std::memcpy(&v, page + offset, sizeof(T));
  return v;
}

template <typename T>
void StoreAt(std::byte* page, size_t offset, T v) {
  std::memcpy(page + offset, &v, sizeof(T));
}

uint16_t PageType(const std::byte* page) { return LoadAt<uint16_t>(page, 0); }
uint16_t NumKeys(const std::byte* page) { return LoadAt<uint16_t>(page, 2); }
uint32_t LeafNext(const std::byte* page) { return LoadAt<uint32_t>(page, 4); }

}  // namespace

BPlusTree::BPlusTree(std::string path, size_t buffer_pool_pages,
                     IoStats* stats)
    : pager_(std::move(path), stats),
      pool_(&pager_, buffer_pool_pages, stats) {}

Status BPlusTree::OpenReadReplicaOf(const BPlusTree& source) {
  if (path() != source.path()) {
    return Status::Invalid("read replica path " + path() +
                           " does not match source tree " + source.path());
  }
  K2_RETURN_NOT_OK(pager_.Open());
  pool_.Clear();
  // The tree shape lives only in memory (the file has no meta page yet), so
  // the replica copies it from the source handle.
  root_pid_ = source.root_pid_;
  height_ = source.height_;
  num_records_ = source.num_records_;
  return Status::OK();
}

Status BPlusTree::BuildFrom(const Dataset& dataset) {
  K2_RETURN_NOT_OK(pager_.Create());
  pool_.Clear();
  num_records_ = dataset.num_points();

  // Page 0 is reserved as a (currently unused) meta page so that pid 0 can
  // serve as the "no next leaf" sentinel.
  K2_ASSIGN_OR_RETURN(PageId meta_pid, pager_.AllocatePage());
  K2_CHECK(meta_pid == 0);

  std::vector<std::byte> page(kPageSize);
  const auto& records = dataset.records();

  // --- Level 0: leaves -----------------------------------------------------
  // Entries per leaf are balanced so the last leaf is not pathologically
  // small: fill ceil(n / num_leaves) per leaf.
  std::vector<std::pair<uint64_t, PageId>> level;  // (first key, pid)
  size_t i = 0;
  PageId prev_leaf = kInvalidPageId;
  size_t prev_offset_in_file = 0;
  (void)prev_offset_in_file;
  while (i < records.size() || level.empty()) {
    const size_t count =
        std::min(kLeafCapacity, records.size() - i);
    std::memset(page.data(), 0, kPageSize);
    StoreAt<uint16_t>(page.data(), 0, kLeafType);
    StoreAt<uint16_t>(page.data(), 2, static_cast<uint16_t>(count));
    StoreAt<uint32_t>(page.data(), 4, 0);  // next filled below
    for (size_t e = 0; e < count; ++e) {
      const PointRecord& rec = records[i + e];
      const size_t off = kHeaderSize + e * kLeafEntrySize;
      StoreAt<uint64_t>(page.data(), off, MakeKey(rec.t, rec.oid));
      StoreAt<double>(page.data(), off + 8, rec.x);
      StoreAt<double>(page.data(), off + 16, rec.y);
    }
    K2_ASSIGN_OR_RETURN(PageId pid, pager_.AllocatePage());
    K2_RETURN_NOT_OK(pager_.WritePage(pid, page.data()));
    const uint64_t first_key =
        count > 0 ? MakeKey(records[i].t, records[i].oid) : 0;
    level.emplace_back(first_key, pid);
    // Chain the previous leaf to this one.
    if (prev_leaf != kInvalidPageId) {
      std::vector<std::byte> prev(kPageSize);
      K2_RETURN_NOT_OK(pager_.ReadPage(prev_leaf, prev.data()));
      StoreAt<uint32_t>(prev.data(), 4, pid);
      K2_RETURN_NOT_OK(pager_.WritePage(prev_leaf, prev.data()));
    }
    prev_leaf = pid;
    i += count;
    if (records.empty()) break;  // single empty leaf for an empty dataset
  }
  height_ = 1;

  // --- Internal levels ------------------------------------------------------
  while (level.size() > 1) {
    std::vector<std::pair<uint64_t, PageId>> next_level;
    size_t pos = 0;
    while (pos < level.size()) {
      const size_t fanout =
          std::min(kInternalCapacity + 1, level.size() - pos);
      std::memset(page.data(), 0, kPageSize);
      StoreAt<uint16_t>(page.data(), 0, kInternalType);
      StoreAt<uint16_t>(page.data(), 2, static_cast<uint16_t>(fanout - 1));
      for (size_t c = 0; c < fanout; ++c) {
        StoreAt<uint32_t>(page.data(), kInternalChildrenOffset + c * 4,
                          level[pos + c].second);
        if (c > 0) {
          // Separator key c-1 = first key of child c.
          StoreAt<uint64_t>(page.data(), kHeaderSize + (c - 1) * 8,
                            level[pos + c].first);
        }
      }
      K2_ASSIGN_OR_RETURN(PageId pid, pager_.AllocatePage());
      K2_RETURN_NOT_OK(pager_.WritePage(pid, page.data()));
      next_level.emplace_back(level[pos].first, pid);
      pos += fanout;
    }
    level = std::move(next_level);
    ++height_;
  }
  root_pid_ = level.front().second;

  // Reopen read-only so queries cannot mutate the file.
  K2_RETURN_NOT_OK(pager_.Open());
  return Status::OK();
}

Status BPlusTree::FindLeaf(uint64_t key, PageId* leaf_pid) {
  PageId pid = root_pid_;
  for (uint32_t lvl = height_; lvl > 1; --lvl) {
    K2_ASSIGN_OR_RETURN(const std::byte* page, pool_.Fetch(pid));
    K2_CHECK(PageType(page) == kInternalType);
    const uint16_t n = NumKeys(page);
    // Find the first separator > key; descend into that child slot.
    uint16_t lo = 0, hi = n;
    while (lo < hi) {
      const uint16_t mid = (lo + hi) / 2;
      const uint64_t sep = LoadAt<uint64_t>(page, kHeaderSize + mid * 8);
      if (key < sep) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    pid = LoadAt<uint32_t>(page, kInternalChildrenOffset + lo * 4);
  }
  *leaf_pid = pid;
  return Status::OK();
}

Status BPlusTree::Get(uint64_t key, BPTreeValue* value, bool* found) {
  *found = false;
  if (num_records_ == 0) return Status::OK();
  PageId leaf_pid;
  K2_RETURN_NOT_OK(FindLeaf(key, &leaf_pid));
  K2_ASSIGN_OR_RETURN(const std::byte* page, pool_.Fetch(leaf_pid));
  K2_CHECK(PageType(page) == kLeafType);
  const uint16_t n = NumKeys(page);
  uint16_t lo = 0, hi = n;
  while (lo < hi) {
    const uint16_t mid = (lo + hi) / 2;
    const uint64_t k = LoadAt<uint64_t>(page, kHeaderSize + mid * kLeafEntrySize);
    if (k < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < n) {
    const size_t off = kHeaderSize + lo * kLeafEntrySize;
    if (LoadAt<uint64_t>(page, off) == key) {
      value->x = LoadAt<double>(page, off + 8);
      value->y = LoadAt<double>(page, off + 16);
      *found = true;
    }
  }
  return Status::OK();
}

Status BPlusTree::ScanRange(
    uint64_t lo, uint64_t hi,
    const std::function<void(uint64_t, const BPTreeValue&)>& fn) {
  if (num_records_ == 0 || lo > hi) return Status::OK();
  PageId leaf_pid;
  K2_RETURN_NOT_OK(FindLeaf(lo, &leaf_pid));
  while (leaf_pid != 0 && leaf_pid != kInvalidPageId) {
    K2_ASSIGN_OR_RETURN(const std::byte* page, pool_.Fetch(leaf_pid));
    K2_CHECK(PageType(page) == kLeafType);
    const uint16_t n = NumKeys(page);
    for (uint16_t e = 0; e < n; ++e) {
      const size_t off = kHeaderSize + e * kLeafEntrySize;
      const uint64_t key = LoadAt<uint64_t>(page, off);
      if (key < lo) continue;
      if (key > hi) return Status::OK();
      BPTreeValue v{LoadAt<double>(page, off + 8),
                    LoadAt<double>(page, off + 16)};
      fn(key, v);
    }
    leaf_pid = LeafNext(page);
  }
  return Status::OK();
}

}  // namespace k2
