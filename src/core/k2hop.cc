#include "core/k2hop.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/check.h"
#include "common/thread_pool.h"

namespace k2 {

std::string K2HopStats::DebugString() const {
  std::ostringstream os;
  os << "K2HopStats{benchmarks=" << benchmark_points
     << ", windows=" << hop_windows << " (mined " << hop_windows_mined << ")"
     << ", candidate_clusters=" << candidate_clusters
     << ", spanning=" << spanning_convoys << ", merged=" << merged_convoys
     << ", prevalidation=" << prevalidation_convoys
     << ", points_processed=" << points_processed() << "/" << total_points
     << " (pruned " << pruning_ratio() * 100.0 << "%)}";
  return os.str();
}

std::vector<Timestamp> BenchmarkPoints(TimeRange range, int k) {
  std::vector<Timestamp> points;
  if (range.empty() || k < 2) return points;
  const Timestamp hop = std::max(1, k / 2);
  for (Timestamp b = range.start; b <= range.end; b += hop) {
    points.push_back(b);
  }
  return points;
}

std::vector<ObjectSet> CandidateClusters(const std::vector<ObjectSet>& left,
                                         const std::vector<ObjectSet>& right,
                                         int m) {
  std::vector<ObjectSet> out;
  if (left.empty() || right.empty()) return out;
  // Clusters of one tick are pairwise disjoint, so every object id belongs
  // to at most one right cluster: one oid -> right-cluster-index map turns
  // the all-pairs O(|left|·|right|) set intersections into a single
  // O(total ids) hash join. The ids of a left cluster bucketed by right
  // cluster ARE Intersect(left, right[r]) — and they arrive in the left
  // cluster's sorted order, so each bucket is already a valid ObjectSet.
  size_t total_right_ids = 0;
  for (const ObjectSet& b : right) total_right_ids += b.size();
  std::unordered_map<ObjectId, uint32_t> right_of;
  right_of.reserve(total_right_ids);
  for (uint32_t r = 0; r < right.size(); ++r) {
    for (ObjectId oid : right[r]) right_of.emplace(oid, r);
  }

  std::vector<std::vector<ObjectId>> buckets(right.size());
  std::vector<uint32_t> touched;
  for (const ObjectSet& a : left) {
    touched.clear();
    for (ObjectId oid : a) {
      const auto it = right_of.find(oid);
      if (it == right_of.end()) continue;
      std::vector<ObjectId>& bucket = buckets[it->second];
      if (bucket.empty()) touched.push_back(it->second);
      bucket.push_back(oid);
    }
    for (uint32_t r : touched) {
      std::vector<ObjectId>& bucket = buckets[r];
      if (bucket.size() >= static_cast<size_t>(m)) {
        out.push_back(ObjectSet::FromSorted(std::move(bucket)));
        bucket = {};
      } else {
        bucket.clear();
      }
    }
  }
  // The surviving intersections are pairwise disjoint; canonical order only.
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<ObjectSet>> HwmtSpanning(
    Store* store, const MiningParams& params, Timestamp b_left,
    Timestamp b_right, const std::vector<ObjectSet>& candidates,
    bool binary_order, bool verify_right_benchmark, SnapshotScratch* scratch,
    Mutex* store_mu) {
  std::vector<ObjectSet> surviving = candidates;
  if (surviving.empty()) return surviving;
  std::optional<SnapshotScratch> local_scratch;
  if (scratch == nullptr) scratch = &local_scratch.emplace();

  // Probe order over the window interior (the HWMT of Fig. 4, processed
  // level by level == BinarySubdivisionOrder minus the endpoints).
  std::vector<Timestamp> order;
  if (binary_order) {
    const std::vector<Timestamp> with_endpoints =
        BinarySubdivisionOrder({b_left, b_right});
    order.assign(with_endpoints.begin() + std::min<size_t>(
                                              2, with_endpoints.size()),
                 with_endpoints.end());
  } else {
    for (Timestamp t = b_left + 1; t < b_right; ++t) order.push_back(t);
  }
  if (verify_right_benchmark) order.insert(order.begin(), b_right);

  for (Timestamp t : order) {
    std::vector<ObjectSet> next;
    for (const ObjectSet& candidate : surviving) {
      K2_ASSIGN_OR_RETURN(
          std::vector<ObjectSet> clusters,
          ReCluster(store, t, candidate, params, scratch, store_mu));
      for (ObjectSet& c : clusters) next.push_back(std::move(c));
    }
    if (next.empty()) return next;  // no spanning convoy in this window
    surviving = std::move(next);
  }
  std::sort(surviving.begin(), surviving.end());
  return surviving;
}

namespace {

void AddEarliest(SpanningConvoyMerger::StartMap* map, ObjectSet set,
                 Timestamp start);

}  // namespace

void SpanningConvoyMerger::AddWindow(Timestamp window_start,
                                     const std::vector<ObjectSet>& spanning,
                                     std::vector<Convoy>* died) {
  StartMap next;
  // Deaths of one window can dominate each other (active entries overlap);
  // deaths of different windows never can, so a per-window maximal set is
  // enough to reproduce the global merge result.
  MaximalConvoySet window_died;
  for (const auto& [set, start] : active_) {
    bool fully_extended = false;
    for (const ObjectSet& s : spanning) {
      ObjectSet x = ObjectSet::Intersect(set, s);
      if (x.size() < static_cast<size_t>(m_)) continue;
      if (x == set) fully_extended = true;
      AddEarliest(&next, std::move(x), start);
    }
    if (!fully_extended) {
      window_died.Insert(Convoy(set, start, window_start));
    }
  }
  for (const ObjectSet& s : spanning) {
    AddEarliest(&next, s, window_start);
  }
  active_ = std::move(next);
  for (Convoy& v : window_died.TakeSorted()) died->push_back(std::move(v));
}

void SpanningConvoyMerger::Finish(Timestamp last_benchmark,
                                  std::vector<Convoy>* died) {
  MaximalConvoySet closing;
  for (auto& [set, start] : active_) {
    closing.Insert(Convoy(set, start, last_benchmark));
  }
  active_.clear();
  for (Convoy& v : closing.TakeSorted()) died->push_back(std::move(v));
}

std::vector<Convoy> MergeSpanningConvoys(
    const std::vector<std::vector<ObjectSet>>& spanning,
    const std::vector<Timestamp>& benchmarks, int m) {
  MaximalConvoySet results;
  SpanningConvoyMerger merger(m);
  std::vector<Convoy> died;
  for (size_t w = 0; w < spanning.size(); ++w) {
    merger.AddWindow(benchmarks[w], spanning[w], &died);
  }
  if (!benchmarks.empty()) merger.Finish(benchmarks.back(), &died);
  for (Convoy& v : died) results.Insert(std::move(v));
  return results.TakeSorted();
}

namespace {

/// Merge/extension bookkeeping: object set -> earliest start seen.
void AddEarliest(SpanningConvoyMerger::StartMap* map, ObjectSet set,
                 Timestamp start) {
  auto [it, inserted] = map->try_emplace(std::move(set), start);
  if (!inserted && start < it->second) it->second = start;
}

}  // namespace

ConvoyExtensionWalk::ConvoyExtensionWalk(const Convoy& seed, int dir)
    : dir_(dir),
      other_side_(dir > 0 ? seed.start : seed.end),
      next_t_(dir > 0 ? seed.end + 1 : seed.start - 1),
      frontier_{seed.objects} {}

Status ConvoyExtensionWalk::Advance(Store* store, const MiningParams& params,
                                    Timestamp upto,
                                    std::vector<Convoy>* completed,
                                    SnapshotScratch* scratch) {
  std::optional<SnapshotScratch> local_scratch;
  if (scratch == nullptr) scratch = &local_scratch.emplace();
  while (!frontier_.empty() && (dir_ > 0 ? next_t_ <= upto : next_t_ >= upto)) {
    const Timestamp t = next_t_;
    std::vector<ObjectSet> next;
    for (ObjectSet& set : frontier_) {
      K2_ASSIGN_OR_RETURN(std::vector<ObjectSet> clusters,
                          ReCluster(store, t, set, params, scratch));
      bool found_self = false;
      for (ObjectSet& c : clusters) {
        if (c == set) found_self = true;
        next.push_back(std::move(c));
      }
      if (!found_self) {
        // The branch could not be extended in its current shape: emit it.
        const Timestamp cur_end = t - dir_;
        completed->push_back(dir_ > 0
                                 ? Convoy(std::move(set), other_side_, cur_end)
                                 : Convoy(std::move(set), cur_end, other_side_));
      }
    }
    // All branches of one walk share other_side_, so deduplication is by
    // object set alone.
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier_ = std::move(next);
    next_t_ += dir_;
  }
  return Status::OK();
}

void ConvoyExtensionWalk::Flush(Timestamp limit,
                                std::vector<Convoy>* completed) {
  for (ObjectSet& set : frontier_) {
    completed->push_back(dir_ > 0 ? Convoy(std::move(set), other_side_, limit)
                                  : Convoy(std::move(set), limit, other_side_));
  }
  frontier_.clear();
}

namespace {

/// Shared walker for ExtendRight / ExtendLeft. `dir` = +1 walks toward
/// `limit` on the right, -1 toward the left. Each convoy is walked
/// independently; the shared MaximalConvoySet only deduplicates results.
Result<std::vector<Convoy>> ExtendDirected(Store* store,
                                           const MiningParams& params,
                                           std::vector<Convoy> convoys,
                                           Timestamp limit, int dir) {
  MaximalConvoySet results;
  SnapshotScratch scratch;
  std::vector<Convoy> completed;
  for (Convoy& v : convoys) {
    completed.clear();
    ConvoyExtensionWalk walk(v, dir);
    K2_RETURN_NOT_OK(walk.Advance(store, params, limit, &completed, &scratch));
    walk.Flush(limit, &completed);
    for (Convoy& c : completed) results.Insert(std::move(c));
  }
  return results.TakeSorted();
}

}  // namespace

Result<std::vector<Convoy>> ExtendRight(Store* store,
                                        const MiningParams& params,
                                        std::vector<Convoy> convoys,
                                        Timestamp dataset_end) {
  return ExtendDirected(store, params, std::move(convoys), dataset_end, +1);
}

Result<std::vector<Convoy>> ExtendLeft(Store* store, const MiningParams& params,
                                       std::vector<Convoy> convoys,
                                       Timestamp dataset_start) {
  return ExtendDirected(store, params, std::move(convoys), dataset_start, -1);
}

// k2-lint: allow(validate-mining-params): internal pipeline stage — the
// public entries (MineK2Hop, MinePartitionedK2Hop) validate before
// dispatching here, and the DCHECK below restates the contract.
Status MineHopWindows(Store* store, const MiningParams& params,
                      std::span<const Timestamp> benchmarks,
                      const K2HopOptions& options,
                      std::vector<std::vector<ObjectSet>>* spanning,
                      HopWindowPipelineStats* stats, ThreadPool* pool,
                      Mutex* store_mu,
                      std::vector<SnapshotScratch>* scratches) {
  // Entry-point validation (ValidateMiningParams) happened in the caller;
  // shard drivers reaching this directly must uphold the same contract.
  K2_DCHECK(params.m >= 2 && params.k >= 2);
  HopWindowPipelineStats local_stats;
  HopWindowPipelineStats* s = stats != nullptr ? stats : &local_stats;
  std::vector<SnapshotScratch> local_scratches;
  if (scratches == nullptr) {
    local_scratches.resize(pool != nullptr ? pool->num_workers() + 1 : 1);
    scratches = &local_scratches;
  }

  // Runs fn(slot, i) for i in [0, n): on the pool when present, inline
  // otherwise. Statuses are collected per item; the first failure wins.
  auto for_each_indexed =
      [&](size_t n,
          const std::function<Status(size_t, size_t)>& fn) -> Status {
    if (pool == nullptr) {
      for (size_t i = 0; i < n; ++i) K2_RETURN_NOT_OK(fn(0, i));
      return Status::OK();
    }
    std::vector<Status> statuses(n);
    pool->ParallelFor(n, [&](size_t slot, size_t i) {
      statuses[i] = fn(slot, i);
    });
    for (Status& status : statuses) K2_RETURN_NOT_OK(status);
    return Status::OK();
  };

  // Step 1: cluster the benchmark points, concurrently across points.
  Stopwatch sw;
  s->benchmark_points = benchmarks.size();
  std::vector<std::vector<ObjectSet>> benchmark_clusters(benchmarks.size());
  K2_RETURN_NOT_OK(
      for_each_indexed(benchmarks.size(), [&](size_t slot, size_t i) {
        auto result = ClusterSnapshot(store, benchmarks[i], params,
                                      &(*scratches)[slot], store_mu);
        K2_RETURN_NOT_OK(result.status());
        benchmark_clusters[i] = result.MoveValue();
        return Status::OK();
      }));
  s->phases.Add("benchmark", sw.ElapsedSeconds());

  // Step 2: candidate clusters per hop-window.
  sw.Restart();
  const size_t num_windows =
      benchmarks.empty() ? 0 : benchmarks.size() - 1;
  s->hop_windows = num_windows;
  std::vector<std::vector<ObjectSet>> candidates(num_windows);
  for (size_t w = 0; w < num_windows; ++w) {
    if (options.candidate_pruning) {
      candidates[w] = CandidateClusters(benchmark_clusters[w],
                                        benchmark_clusters[w + 1], params.m);
    } else {
      candidates[w] = benchmark_clusters[w];  // ablation: no intersection
    }
    s->candidate_clusters += candidates[w].size();
    if (!candidates[w].empty()) ++s->hop_windows_mined;
  }
  s->phases.Add("candidates", sw.ElapsedSeconds());

  // Step 3: HWMT inside each window, concurrently across windows.
  sw.Restart();
  spanning->assign(num_windows, {});
  K2_RETURN_NOT_OK(for_each_indexed(num_windows, [&](size_t slot, size_t w) {
    if (candidates[w].empty()) return Status::OK();
    auto result =
        HwmtSpanning(store, params, benchmarks[w], benchmarks[w + 1],
                     candidates[w], options.hwmt_binary_order,
                     /*verify_right_benchmark=*/!options.candidate_pruning,
                     &(*scratches)[slot], store_mu);
    K2_RETURN_NOT_OK(result.status());
    (*spanning)[w] = result.MoveValue();
    return Status::OK();
  }));
  for (size_t w = 0; w < num_windows; ++w) {
    s->spanning_convoys += (*spanning)[w].size();
  }
  s->phases.Add("HWMT", sw.ElapsedSeconds());
  return Status::OK();
}

Result<std::vector<Convoy>> MineK2Hop(Store* store, const MiningParams& params,
                                      const K2HopOptions& options,
                                      K2HopStats* stats) {
  K2_RETURN_NOT_OK(ValidateMiningParams(params));
  K2HopStats local;
  K2HopStats* s = stats != nullptr ? stats : &local;
  const IoStats io_before = store->io_stats();
  s->total_points = store->num_points();

  const TimeRange range = store->time_range();
  if (range.length() < params.k) return std::vector<Convoy>{};

  // Threading setup. With T = num_threads (default hardware_concurrency),
  // the two embarrassingly parallel phases run on the calling thread plus
  // T - 1 pool workers; T = 1 is the exact sequential path. Stores are not
  // thread-safe, so fetches are serialized by `store_mu` while clustering
  // runs concurrently on per-slot scratches. Outputs are gathered by
  // benchmark/window index, so results are identical for every T.
  int threads =
      options.num_threads > 0
          ? options.num_threads
          : std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  // Spawning the pool costs a thread create/join per worker. An explicit
  // num_threads is always honored, but the default skips the pool for jobs
  // too small to amortize it (sub-millisecond mines in tests and sweeps).
  if (options.num_threads <= 0 && store->num_points() < 65536) threads = 1;
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads - 1);
  Mutex store_mu;
  std::vector<SnapshotScratch> scratches(static_cast<size_t>(threads));

  // Steps 1–3: the per-window pipeline over the full benchmark grid.
  const std::vector<Timestamp> benchmarks = BenchmarkPoints(range, params.k);
  std::vector<std::vector<ObjectSet>> spanning;
  HopWindowPipelineStats hw;
  K2_RETURN_NOT_OK(MineHopWindows(
      store, params, benchmarks, options, &spanning, &hw,
      pool.has_value() ? &*pool : nullptr,
      pool.has_value() ? &store_mu : nullptr, &scratches));
  s->benchmark_points = hw.benchmark_points;
  s->hop_windows = hw.hop_windows;
  s->hop_windows_mined = hw.hop_windows_mined;
  s->candidate_clusters = hw.candidate_clusters;
  s->spanning_convoys = hw.spanning_convoys;
  for (const auto& [name, seconds] : hw.phases.phases()) {
    s->phases.Add(name, seconds);
  }

  // Step 4: merge into maximal spanning convoys.
  Stopwatch sw;
  std::vector<Convoy> merged =
      MergeSpanningConvoys(spanning, benchmarks, params.m);
  s->merged_convoys = merged.size();
  s->phases.Add("merge", sw.ElapsedSeconds());

  // Step 5: extension to exact lifespans (right first, then left, as in
  // Sec. 4.5); the k filter applies only after the left pass.
  sw.Restart();
  K2_ASSIGN_OR_RETURN(merged, ExtendRight(store, params, std::move(merged),
                                          range.end));
  s->phases.Add("extend-right", sw.ElapsedSeconds());
  sw.Restart();
  K2_ASSIGN_OR_RETURN(merged, ExtendLeft(store, params, std::move(merged),
                                         range.start));
  merged = FilterMinLength(std::move(merged), params.k);
  s->phases.Add("extend-left", sw.ElapsedSeconds());
  s->prevalidation_convoys = merged.size();

  // Step 6: fully connected validation.
  std::vector<Convoy> result;
  if (options.validate) {
    sw.Restart();
    K2_ASSIGN_OR_RETURN(result,
                        ValidateFullyConnected(store, std::move(merged), params,
                                               /*recursive=*/true,
                                               &s->validation));
    s->phases.Add("validation", sw.ElapsedSeconds());
  } else {
    result = std::move(merged);
  }
  s->io = IoStats::Delta(store->io_stats(), io_before);
  return result;
}

}  // namespace k2
