// Relational-style store ("k2-RDBMS"): rows clustered in a disk B+-tree on
// the composite key (t, oid). Snapshot scans are leaf-chain range scans;
// point reads are index descents, mostly served from the buffer pool.
//
// The tree itself is bulk-built and read-only; Append() lands in an
// in-memory delta of strictly-newer ticks (the write-optimized side of a
// read-optimized base, as in any delta-main design). Because appends are
// time-ordered, base and delta never share a tick, so each read is served
// entirely by one side.
#ifndef K2_STORAGE_BPTREE_STORE_H_
#define K2_STORAGE_BPTREE_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/bptree/bptree.h"
#include "storage/store.h"

namespace k2 {

class BPlusTreeStore final : public Store {
 public:
  /// Tree file lives at `path`; `buffer_pool_pages` bounds cache memory.
  explicit BPlusTreeStore(std::string path, size_t buffer_pool_pages = 256);

  std::string name() const override { return "rdbms"; }
  Status BulkLoad(const Dataset& dataset) override;
  Status Append(Timestamp t, const std::vector<SnapshotPoint>& points) override;
  Status ScanTimestamp(Timestamp t, std::vector<SnapshotPoint>* out) override;
  Status GetPoints(Timestamp t, const ObjectSet& objects,
                   std::vector<SnapshotPoint>* out) override;
  TimeRange time_range() const override { return time_range_; }
  const std::vector<Timestamp>& timestamps() const override {
    return timestamps_;
  }
  uint64_t num_points() const override {
    return tree_.num_records() + delta_.num_points();
  }

  /// Native snapshot: a read replica of the tree file with its own pager
  /// and buffer pool (see BPlusTree::OpenReadReplicaOf); the append delta
  /// is shared read-only.
  Result<std::unique_ptr<Store>> CreateReadSnapshot() override;

  BPlusTree& tree() { return tree_; }
  /// Appended rows not yet in the tree.
  uint64_t delta_points() const { return delta_.num_points(); }

 private:
  /// True when tick `t` can only live in the delta (it is newer than
  /// everything that was bulk-loaded into the tree).
  bool InDelta(Timestamp t) const {
    return tree_.num_records() == 0 || t > tree_range_.end;
  }

  BPlusTree tree_;
  size_t buffer_pool_pages_;  ///< replicated into read snapshots
  Dataset delta_;
  std::vector<Timestamp> timestamps_;
  TimeRange tree_range_{0, -1};  ///< tick range covered by the tree
  TimeRange time_range_{0, -1};  ///< tree plus delta
};

}  // namespace k2

#endif  // K2_STORAGE_BPTREE_STORE_H_
